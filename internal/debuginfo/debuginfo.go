// Package debuginfo is the reproduction's stand-in for DWARF. It
// records, per compiled program image, (a) a line table mapping each
// machine instruction to its (file, line, column) source key — the
// tuple CARE uses to match a faulting instruction to its recovery
// kernel — and (b) variable location lists in the style of
// DW_AT_location loclists: for a named IR value, a set of code ranges
// each saying "within these PCs the value lives in register N / at
// frame-pointer offset K". Safeguard uses these to fetch recovery-kernel
// arguments out of the stalled process.
package debuginfo

import "fmt"

// LC is the (line, column) part of a source key; the file comes from the
// enclosing function.
type LC struct {
	Line int32
	Col  int32
}

// Key is a full (file, line, column) source key.
type Key struct {
	File string
	Line int32
	Col  int32
}

// String renders the key in file:line:col form — exactly the string that
// is MD5-hashed into a recovery-table key.
func (k Key) String() string { return fmt.Sprintf("%s:%d:%d", k.File, k.Line, k.Col) }

// LocKind says where a variable lives.
type LocKind uint8

const (
	// LocNone marks an invalid location.
	LocNone LocKind = iota
	// LocReg: an integer register.
	LocReg
	// LocFReg: a float register.
	LocFReg
	// LocFPOff: memory at frame-pointer + Off.
	LocFPOff
)

// String renders the kind.
func (k LocKind) String() string {
	switch k {
	case LocReg:
		return "reg"
	case LocFReg:
		return "freg"
	case LocFPOff:
		return "fp+off"
	}
	return "none"
}

// LocEntry is one loclist entry: within code indices [Start, End) the
// variable is at the described location.
type LocEntry struct {
	Start, End int
	Kind       LocKind
	Reg        uint8
	Off        int64
}

// FuncInfo describes one function's code range and frame.
type FuncInfo struct {
	Name      string
	File      string
	Start     int // first code index
	End       int // one past last code index
	FrameSize int64
	NumParams int
}

// Info is the debug information for one compiled program image.
type Info struct {
	// Lines holds one LC per machine instruction (parallel to the code
	// array). The file component is the enclosing function's File.
	Lines []LC
	// Funcs holds the function directory sorted by Start.
	Funcs []FuncInfo
	// Vars maps "funcName\x00varName" to the variable's loclist.
	Vars map[string][]LocEntry
}

// New returns an empty Info.
func New() *Info { return &Info{Vars: map[string][]LocEntry{}} }

// FuncAt returns the function containing code index idx, or nil.
func (in *Info) FuncAt(idx int) *FuncInfo {
	// Funcs is sorted by Start; linear scan is fine for the dozens of
	// functions a workload has, but use binary search for libraries
	// with thousands of kernels.
	lo, hi := 0, len(in.Funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		f := &in.Funcs[mid]
		switch {
		case idx < f.Start:
			hi = mid
		case idx >= f.End:
			lo = mid + 1
		default:
			return f
		}
	}
	return nil
}

// KeyAt returns the (file,line,col) source key of the instruction at
// code index idx.
func (in *Info) KeyAt(idx int) (Key, bool) {
	if idx < 0 || idx >= len(in.Lines) {
		return Key{}, false
	}
	f := in.FuncAt(idx)
	if f == nil {
		return Key{}, false
	}
	lc := in.Lines[idx]
	return Key{File: f.File, Line: lc.Line, Col: lc.Col}, true
}

// VarKey builds the Vars map key.
func VarKey(fn, name string) string { return fn + "\x00" + name }

// AddVar appends a loclist entry for a variable.
func (in *Info) AddVar(fn, name string, e LocEntry) {
	k := VarKey(fn, name)
	in.Vars[k] = append(in.Vars[k], e)
}

// Lookup finds the location of variable name of function fn valid at
// code index idx. It returns the entry and true, or false when the
// variable has no location there (optimised away or dead) — the case in
// which CARE must declare the fault unrecoverable.
func (in *Info) Lookup(fn, name string, idx int) (LocEntry, bool) {
	for _, e := range in.Vars[VarKey(fn, name)] {
		if idx >= e.Start && idx < e.End {
			return e, true
		}
	}
	return LocEntry{}, false
}

// NumVars returns the number of described variables (for stats).
func (in *Info) NumVars() int { return len(in.Vars) }
