package debuginfo

import "testing"

func sample() *Info {
	in := New()
	in.Funcs = []FuncInfo{
		{Name: "main", File: "m/main", Start: 0, End: 10, FrameSize: 64},
		{Name: "helper", File: "m/helper", Start: 10, End: 16, FrameSize: 32},
	}
	in.Lines = make([]LC, 16)
	for i := range in.Lines {
		in.Lines[i] = LC{Line: int32(i + 1), Col: 1}
	}
	in.AddVar("main", "v1", LocEntry{Start: 0, End: 10, Kind: LocFPOff, Off: -8})
	in.AddVar("main", "v2", LocEntry{Start: 2, End: 6, Kind: LocReg, Reg: 5})
	in.AddVar("main", "v2", LocEntry{Start: 6, End: 9, Kind: LocFPOff, Off: -16})
	in.AddVar("helper", "v1", LocEntry{Start: 10, End: 16, Kind: LocFReg, Reg: 7})
	return in
}

func TestFuncAt(t *testing.T) {
	in := sample()
	cases := []struct {
		idx  int
		want string
	}{{0, "main"}, {9, "main"}, {10, "helper"}, {15, "helper"}}
	for _, c := range cases {
		f := in.FuncAt(c.idx)
		if f == nil || f.Name != c.want {
			t.Errorf("FuncAt(%d) = %v, want %s", c.idx, f, c.want)
		}
	}
	if in.FuncAt(16) != nil || in.FuncAt(-1) != nil {
		t.Error("out-of-range FuncAt not nil")
	}
}

func TestKeyAt(t *testing.T) {
	in := sample()
	k, ok := in.KeyAt(3)
	if !ok || k.File != "m/main" || k.Line != 4 || k.Col != 1 {
		t.Fatalf("KeyAt(3) = %+v %v", k, ok)
	}
	k, ok = in.KeyAt(12)
	if !ok || k.File != "m/helper" {
		t.Fatalf("KeyAt(12) = %+v %v", k, ok)
	}
	if _, ok := in.KeyAt(99); ok {
		t.Error("KeyAt out of range succeeded")
	}
	if k.String() != "m/helper:13:1" {
		t.Errorf("key string %q", k.String())
	}
}

// TestLookupRanges checks the DW_AT_location-style range semantics: the
// same variable can live in a register over one PC range and on the
// stack over another, and is unavailable outside both — the situation
// that makes optimised-code parameters unfetchable (§3.3).
func TestLookupRanges(t *testing.T) {
	in := sample()
	if e, ok := in.Lookup("main", "v2", 3); !ok || e.Kind != LocReg || e.Reg != 5 {
		t.Errorf("v2@3 = %+v %v", e, ok)
	}
	if e, ok := in.Lookup("main", "v2", 7); !ok || e.Kind != LocFPOff || e.Off != -16 {
		t.Errorf("v2@7 = %+v %v", e, ok)
	}
	if _, ok := in.Lookup("main", "v2", 9); ok {
		t.Error("v2 available outside its ranges")
	}
	if _, ok := in.Lookup("main", "nope", 3); ok {
		t.Error("unknown var available")
	}
	// Scoping: helper's v1 is distinct from main's v1.
	if e, ok := in.Lookup("helper", "v1", 12); !ok || e.Kind != LocFReg {
		t.Errorf("helper v1 = %+v %v", e, ok)
	}
	if e, ok := in.Lookup("main", "v1", 5); !ok || e.Kind != LocFPOff {
		t.Errorf("main v1 = %+v %v", e, ok)
	}
}

func TestLocKindStrings(t *testing.T) {
	for k, want := range map[LocKind]string{LocReg: "reg", LocFReg: "freg", LocFPOff: "fp+off", LocNone: "none"} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}

func TestNumVars(t *testing.T) {
	in := sample()
	if in.NumVars() != 3 { // main/v1, main/v2, helper/v1
		t.Errorf("NumVars = %d", in.NumVars())
	}
}
