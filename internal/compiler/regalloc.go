package compiler

import (
	"sort"

	"care/internal/ir"
	"care/internal/machine"
)

// homeKind says where an IR value lives between uses.
type homeKind uint8

const (
	// hkNone: the value is rematerialised at each use (constants,
	// globals, allocas, fold-only GEPs) or never needed.
	hkNone homeKind = iota
	// hkSlot: a frame slot at FP-relative offset assigned by lowering.
	hkSlot
	// hkArg: the incoming argument slot at positive FP offset.
	hkArg
	// hkReg: a callee-saved integer register (O1).
	hkReg
	// hkFReg: a callee-saved float register (O1).
	hkFReg
)

// home is a value's assigned storage.
type home struct {
	kind homeKind
	reg  machine.Reg
	freg machine.FReg
}

// interval is a live range in IR instruction-ID space.
type interval struct {
	v          ir.Value
	start, end int
	isFloat    bool
}

// allocation is the per-function result of storage assignment.
type allocation struct {
	homes map[ir.Value]home
	// intervals records live ranges (used for O1 debug location ranges).
	intervals map[ir.Value][2]int
	// usedInt/usedFloat are the callee-saved registers the function
	// touches and must preserve.
	usedInt   []machine.Reg
	usedFloat []machine.FReg
}

// Allocatable register pools (R0-R3/F0-F3 are scratch; FP/SP reserved;
// R0/F0 double as return registers).
var (
	intPool   = []machine.Reg{machine.R4, machine.R5, machine.R6, machine.R7, machine.R8, machine.R9, machine.R10, machine.R11, machine.R12, machine.R13}
	floatPool = []machine.FReg{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
)

// foldOnlyGEP reports whether every use of g is as the pointer operand
// of a load/store, in which case instruction selection folds it into the
// memory operands and it needs no home (the x86 "CISC merge" the paper
// discusses).
func foldOnlyGEP(l *ir.Liveness, g *ir.Instr) bool {
	if g.Op != ir.OpGEP {
		return false
	}
	uses := l.Uses(g)
	if len(uses) == 0 {
		return false // dead; needsHome will reject anyway
	}
	for _, u := range uses {
		p, ok := u.PointerOperand()
		if !ok || p != g {
			return false
		}
	}
	return true
}

// needsHome reports whether an instruction's result must be stored
// somewhere between definition and uses.
func needsHome(l *ir.Liveness, in *ir.Instr) bool {
	if in.Typ == ir.Void || in.Op == ir.OpAlloca {
		return false
	}
	if len(l.Uses(in)) == 0 {
		return false
	}
	return !foldOnlyGEP(l, in)
}

// allocateO0 assigns a frame slot to every value needing a home, the
// clang -O0 discipline.
func allocateO0(f *ir.Func, l *ir.Liveness) *allocation {
	a := &allocation{homes: map[ir.Value]home{}, intervals: map[ir.Value][2]int{}}
	for _, p := range f.Params {
		a.homes[p] = home{kind: hkArg}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if needsHome(l, in) {
				a.homes[in] = home{kind: hkSlot}
			}
		}
	}
	return a
}

// buildIntervals computes conservative bounding-box live intervals in
// instruction-ID space. Phi incoming copies happen at predecessor block
// ends, so both the phi and its incoming values have their intervals
// extended to those positions; this is what lets phi homes be written
// there safely.
func buildIntervals(f *ir.Func, l *ir.Liveness) []interval {
	f.Renumber()
	blockStart := map[*ir.Block]int{}
	blockEnd := map[*ir.Block]int{}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		blockStart[b] = b.Instrs[0].ID
		blockEnd[b] = b.Instrs[len(b.Instrs)-1].ID
	}
	iv := map[ir.Value]*interval{}
	extend := func(v ir.Value, p int) {
		switch v.(type) {
		case *ir.Instr, *ir.Arg:
		default:
			return
		}
		e, ok := iv[v]
		if !ok {
			e = &interval{v: v, start: p, end: p, isFloat: v.Type() == ir.F64}
			iv[v] = e
			return
		}
		if p < e.start {
			e.start = p
		}
		if p > e.end {
			e.end = p
		}
	}
	// extendUse records a use of v at position p. GEPs are folded into
	// the memory operands of their users, so instruction selection
	// re-reads a GEP's operands at every use site of the GEP — their
	// intervals must reach those sites too (recursively, for chained
	// GEPs).
	var extendUse func(v ir.Value, p int)
	extendUse = func(v ir.Value, p int) {
		extend(v, p)
		if g, ok := v.(*ir.Instr); ok && g.Op == ir.OpGEP {
			for _, op := range g.Ops {
				extendUse(op, p)
			}
		}
	}
	for _, b := range f.Blocks {
		for v := range l.LiveIn(b) {
			extend(v, blockStart[b])
		}
		for v := range l.LiveOut(b) {
			extendUse(v, blockEnd[b])
		}
		for _, in := range b.Instrs {
			if in.Typ != ir.Void {
				extend(in, in.ID)
			}
			if in.Op == ir.OpPhi {
				for oi, v := range in.Ops {
					p := in.Blocks[oi]
					extend(in, blockEnd[p])
					extendUse(v, blockEnd[p])
				}
				continue
			}
			for _, v := range in.Ops {
				extendUse(v, in.ID)
			}
		}
	}
	// Args are defined at function entry.
	for _, p := range f.Params {
		if e, ok := iv[p]; ok {
			e.start = 0
		}
	}
	out := make([]interval, 0, len(iv))
	for _, e := range iv {
		out = append(out, *e)
	}
	name := func(v ir.Value) string {
		switch x := v.(type) {
		case *ir.Instr:
			return x.Name
		case *ir.Arg:
			return x.Name
		}
		return ""
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		if out[i].end != out[j].end {
			return out[i].end > out[j].end
		}
		return name(out[i].v) < name(out[j].v) // stable across builds
	})
	return out
}

// allocateO1 runs linear-scan register allocation. Arguments keep their
// incoming stack slots (they are reloaded at each use); instruction
// results compete for the callee-saved pools and spill to frame slots.
func allocateO1(f *ir.Func, l *ir.Liveness) *allocation {
	a := &allocation{homes: map[ir.Value]home{}, intervals: map[ir.Value][2]int{}}
	for _, p := range f.Params {
		a.homes[p] = home{kind: hkArg}
	}
	eligible := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if needsHome(l, in) {
				eligible[in] = true
				a.homes[in] = home{kind: hkSlot} // default: spilled
			}
		}
	}
	ivs := buildIntervals(f, l)
	type active struct {
		end  int
		v    ir.Value
		reg  machine.Reg
		freg machine.FReg
	}
	var actInt, actFloat []active
	freeInt := append([]machine.Reg(nil), intPool...)
	freeFloat := append([]machine.FReg(nil), floatPool...)
	usedInt := map[machine.Reg]bool{}
	usedFloat := map[machine.FReg]bool{}

	expire := func(pos int) {
		out := actInt[:0]
		for _, x := range actInt {
			if x.end < pos {
				freeInt = append(freeInt, x.reg)
			} else {
				out = append(out, x)
			}
		}
		actInt = out
		outF := actFloat[:0]
		for _, x := range actFloat {
			if x.end < pos {
				freeFloat = append(freeFloat, x.freg)
			} else {
				outF = append(outF, x)
			}
		}
		actFloat = outF
	}

	for _, e := range ivs {
		if !eligible[e.v] {
			continue
		}
		a.intervals[e.v] = [2]int{e.start, e.end}
		expire(e.start)
		if e.isFloat {
			if len(freeFloat) > 0 {
				r := freeFloat[len(freeFloat)-1]
				freeFloat = freeFloat[:len(freeFloat)-1]
				a.homes[e.v] = home{kind: hkFReg, freg: r}
				usedFloat[r] = true
				actFloat = append(actFloat, active{end: e.end, v: e.v, freg: r})
				continue
			}
			// Spill the active interval with the furthest end if it
			// outlives the current one.
			far := -1
			for i, x := range actFloat {
				if far == -1 || x.end > actFloat[far].end {
					far = i
				}
			}
			if far >= 0 && actFloat[far].end > e.end {
				victim := actFloat[far]
				a.homes[victim.v] = home{kind: hkSlot}
				a.homes[e.v] = home{kind: hkFReg, freg: victim.freg}
				actFloat[far] = active{end: e.end, v: e.v, freg: victim.freg}
			}
			continue
		}
		if len(freeInt) > 0 {
			r := freeInt[len(freeInt)-1]
			freeInt = freeInt[:len(freeInt)-1]
			a.homes[e.v] = home{kind: hkReg, reg: r}
			usedInt[r] = true
			actInt = append(actInt, active{end: e.end, v: e.v, reg: r})
			continue
		}
		far := -1
		for i, x := range actInt {
			if far == -1 || x.end > actInt[far].end {
				far = i
			}
		}
		if far >= 0 && actInt[far].end > e.end {
			victim := actInt[far]
			a.homes[victim.v] = home{kind: hkSlot}
			a.homes[e.v] = home{kind: hkReg, reg: victim.reg}
			actInt[far] = active{end: e.end, v: e.v, reg: victim.reg}
		}
	}
	for _, r := range intPool {
		if usedInt[r] {
			a.usedInt = append(a.usedInt, r)
		}
	}
	for _, r := range floatPool {
		if usedFloat[r] {
			a.usedFloat = append(a.usedFloat, r)
		}
	}
	return a
}
