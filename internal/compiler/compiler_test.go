package compiler

import (
	"testing"

	"care/internal/hostenv"
	"care/internal/ir"
	"care/internal/machine"
)

// buildSumProgram constructs:
//
//	func main() i64 {
//	  p = malloc(10*8)
//	  for i = 0..9 { p[i] = float(i*i) }
//	  s = 0.0
//	  for i = 0..9 { s += p[i] }
//	  result_f64(s)
//	  return 0
//	}
func buildSumProgram(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("sum")
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)

	p := b.HostCall("malloc", ir.Ptr, ir.ConstInt(80))

	loop1 := b.NewBlock("loop1")
	body1 := b.NewBlock("body1")
	after1 := b.NewBlock("after1")
	b.Br(loop1)

	b.SetBlock(loop1)
	i1 := b.Phi(ir.I64)
	c1 := b.ICmp(ir.OpICmpSLT, i1, ir.ConstInt(10))
	b.CondBr(c1, body1, after1)

	b.SetBlock(body1)
	sq := b.Mul(i1, i1)
	fv := b.IToF(sq)
	gep := b.GEP(p, i1, 8)
	b.Store(fv, gep)
	i1n := b.Add(i1, ir.ConstInt(1))
	b.Br(loop1)
	ir.AddIncoming(i1, ir.ConstInt(0), m.Func("main").Entry())
	ir.AddIncoming(i1, i1n, body1)

	b.SetBlock(after1)
	loop2 := b.NewBlock("loop2")
	body2 := b.NewBlock("body2")
	after2 := b.NewBlock("after2")
	b.Br(loop2)

	b.SetBlock(loop2)
	i2 := b.Phi(ir.I64)
	s := b.Phi(ir.F64)
	c2 := b.ICmp(ir.OpICmpSLT, i2, ir.ConstInt(10))
	b.CondBr(c2, body2, after2)

	b.SetBlock(body2)
	g2 := b.GEP(p, i2, 8)
	v := b.Load(ir.F64, g2)
	s2 := b.FAdd(s, v)
	i2n := b.Add(i2, ir.ConstInt(1))
	b.Br(loop2)
	ir.AddIncoming(i2, ir.ConstInt(0), after1)
	ir.AddIncoming(i2, i2n, body2)
	ir.AddIncoming(s, ir.ConstFloat(0), after1)
	ir.AddIncoming(s, s2, body2)

	b.SetBlock(after2)
	b.HostCall("result_f64", ir.Void, s)
	b.Ret(ir.ConstInt(0))

	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

// runMain compiles and executes a module's main, returning the host env.
func runMain(t *testing.T, m *ir.Module, opt int) (*hostenv.Env, *machine.CPU) {
	t.Helper()
	prog, err := Compile(m, AppOptions(opt))
	if err != nil {
		t.Fatalf("compile O%d: %v", opt, err)
	}
	mem := machine.NewMemory()
	img, err := machine.Load(mem, prog)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	env := hostenv.NewEnv()
	cpu := machine.NewCPU(mem, env)
	cpu.Attach(img)
	if err := cpu.InitStack(); err != nil {
		t.Fatalf("stack: %v", err)
	}
	if err := cpu.Start(img, "_start"); err != nil {
		t.Fatalf("start: %v", err)
	}
	st := cpu.Run(10_000_000)
	if st != machine.StatusExited {
		t.Fatalf("O%d: run status %v (trap=%v, pc=0x%x, dyn=%d)", opt, st, cpu.PendingTrap, cpu.PC, cpu.Dyn)
	}
	return env, cpu
}

func TestCompileAndRunSum(t *testing.T) {
	want := 0.0
	for i := 0; i < 10; i++ {
		want += float64(i * i)
	}
	for _, opt := range []int{0, 1} {
		m := buildSumProgram(t)
		env, cpu := runMain(t, m, opt)
		if len(env.Results) != 1 || env.Results[0] != want {
			t.Errorf("O%d: results = %v, want [%v]", opt, env.Results, want)
		}
		if cpu.ExitCode != 0 {
			t.Errorf("O%d: exit code %d", opt, cpu.ExitCode)
		}
		t.Logf("O%d: dyn=%d instrs", opt, cpu.Dyn)
	}
}

func TestO1ExecutesFewerInstructions(t *testing.T) {
	m0 := buildSumProgram(t)
	_, cpu0 := runMain(t, m0, 0)
	m1 := buildSumProgram(t)
	_, cpu1 := runMain(t, m1, 1)
	if cpu1.Dyn >= cpu0.Dyn {
		t.Errorf("O1 dyn=%d not less than O0 dyn=%d", cpu1.Dyn, cpu0.Dyn)
	}
}

func TestDebugInfoPresent(t *testing.T) {
	m := buildSumProgram(t)
	prog, err := Compile(m, AppOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Debug.Lines) != len(prog.Code) {
		t.Fatalf("line table has %d entries for %d instructions", len(prog.Debug.Lines), len(prog.Code))
	}
	// Every memory-access instruction originating from an IR load/store
	// must carry a nonzero source key; frame traffic must not.
	foundKeyed := 0
	for i := range prog.Code {
		in := &prog.Code[i]
		if in.Op.IsMemAccess() && in.Base != machine.FP && in.Base != machine.SP {
			if in.Line == 0 {
				t.Errorf("array access at %d has no source key: %s", i, machine.Disassemble(in))
			}
			foundKeyed++
		}
	}
	if foundKeyed == 0 {
		t.Fatal("no keyed memory accesses found")
	}
}
