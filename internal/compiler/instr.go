package compiler

import (
	"fmt"

	"care/internal/debuginfo"
	"care/internal/hostenv"
	"care/internal/ir"
	"care/internal/machine"
)

func condOf(op ir.Op) machine.Cond {
	switch op {
	case ir.OpICmpEQ, ir.OpFCmpOEQ:
		return machine.CondEQ
	case ir.OpICmpNE, ir.OpFCmpONE:
		return machine.CondNE
	case ir.OpICmpSLT, ir.OpFCmpOLT:
		return machine.CondLT
	case ir.OpICmpSLE, ir.OpFCmpOLE:
		return machine.CondLE
	case ir.OpICmpSGT, ir.OpFCmpOGT:
		return machine.CondGT
	case ir.OpICmpSGE, ir.OpFCmpOGE:
		return machine.CondGE
	}
	panic("compiler: not a comparison: " + op.String())
}

func aluOp(op ir.Op) machine.MOp {
	switch op {
	case ir.OpAdd:
		return machine.MAdd
	case ir.OpSub:
		return machine.MSub
	case ir.OpMul:
		return machine.MMul
	case ir.OpSDiv:
		return machine.MDiv
	case ir.OpSRem:
		return machine.MRem
	case ir.OpAnd:
		return machine.MAnd
	case ir.OpOr:
		return machine.MOr
	case ir.OpXor:
		return machine.MXor
	case ir.OpShl:
		return machine.MShl
	case ir.OpAShr:
		return machine.MShr
	}
	panic("compiler: not an ALU op: " + op.String())
}

func faluOp(op ir.Op) machine.MOp {
	switch op {
	case ir.OpFAdd:
		return machine.MFAdd
	case ir.OpFSub:
		return machine.MFSub
	case ir.OpFMul:
		return machine.MFMul
	case ir.OpFDiv:
		return machine.MFDiv
	}
	panic("compiler: not an FALU op: " + op.String())
}

func (lw *lowering) lowerInstr(in *ir.Instr) error {
	lw.curLoc = in.Loc
	switch {
	case in.Op == ir.OpAlloca:
		lw.allocaOff[in] = lw.reserve(in.Size)
		return nil

	case in.Op.IsIntBinary():
		a := lw.getInt(in.Ops[0], machine.R0)
		mi := machine.MInstr{Op: aluOp(in.Op), Ra: a}
		if k, ok := in.Ops[1].(*ir.Const); ok {
			mi.UseImm, mi.Imm = true, k.I
		} else {
			mi.Rb = lw.getInt(in.Ops[1], machine.R1)
		}
		rd := lw.destInt(in, machine.R0)
		mi.Rd = rd
		lw.emit(mi)
		lw.finishInt(in, rd)
		return nil

	case in.Op.IsICmp():
		a := lw.getInt(in.Ops[0], machine.R0)
		mi := machine.MInstr{Op: machine.MSet, Cond: condOf(in.Op), Ra: a}
		if k, ok := in.Ops[1].(*ir.Const); ok {
			mi.UseImm, mi.Imm = true, k.I
		} else {
			mi.Rb = lw.getInt(in.Ops[1], machine.R1)
		}
		rd := lw.destInt(in, machine.R0)
		mi.Rd = rd
		lw.emit(mi)
		lw.finishInt(in, rd)
		return nil

	case in.Op.IsFloatBinary():
		a := lw.getFloat(in.Ops[0], 0)
		b := lw.getFloat(in.Ops[1], 1)
		fd := lw.destFloat(in, 0)
		lw.emit(machine.MInstr{Op: faluOp(in.Op), Fd: fd, Fa: a, Fb: b})
		lw.finishFloat(in, fd)
		return nil

	case in.Op.IsFCmp():
		a := lw.getFloat(in.Ops[0], 0)
		b := lw.getFloat(in.Ops[1], 1)
		rd := lw.destInt(in, machine.R0)
		lw.emit(machine.MInstr{Op: machine.MFSet, Cond: condOf(in.Op), Rd: rd, Fa: a, Fb: b})
		lw.finishInt(in, rd)
		return nil

	case in.Op == ir.OpIToF:
		a := lw.getInt(in.Ops[0], machine.R0)
		fd := lw.destFloat(in, 0)
		lw.emit(machine.MInstr{Op: machine.MCvtIF, Fd: fd, Ra: a})
		lw.finishFloat(in, fd)
		return nil

	case in.Op == ir.OpFToI:
		a := lw.getFloat(in.Ops[0], 0)
		rd := lw.destInt(in, machine.R0)
		lw.emit(machine.MInstr{Op: machine.MCvtFI, Rd: rd, Fa: a})
		lw.finishInt(in, rd)
		return nil

	case in.Op == ir.OpGEP:
		if foldOnlyGEP(lw.live, in) {
			return nil // folded into each memory access
		}
		rd := lw.destInt(in, machine.R0)
		lw.emitAddr(in.Ops[0], in.Ops[1], in.Size, rd)
		lw.finishInt(in, rd)
		return nil

	case in.Op == ir.OpLoad:
		base, index, scale, disp := lw.memOperand(in.Ops[0])
		if in.Typ == ir.F64 {
			fd := lw.destFloat(in, 0)
			lw.emit(machine.MInstr{Op: machine.MFLoad, Fd: fd, Base: base, Index: index, Scale: scale, Disp: disp})
			lw.finishFloat(in, fd)
		} else {
			rd := lw.destInt(in, machine.R0)
			lw.emit(machine.MInstr{Op: machine.MLoad, Rd: rd, Base: base, Index: index, Scale: scale, Disp: disp})
			lw.finishInt(in, rd)
		}
		return nil

	case in.Op == ir.OpStore:
		if in.Ops[0].Type() == ir.F64 {
			v := lw.getFloat(in.Ops[0], 0)
			base, index, scale, disp := lw.memOperand(in.Ops[1])
			lw.emit(machine.MInstr{Op: machine.MFStore, Fa: v, Base: base, Index: index, Scale: scale, Disp: disp})
		} else {
			v := lw.getInt(in.Ops[0], machine.R0)
			base, index, scale, disp := lw.memOperand(in.Ops[1])
			lw.emit(machine.MInstr{Op: machine.MStore, Ra: v, Base: base, Index: index, Scale: scale, Disp: disp})
		}
		return nil

	case in.Op == ir.OpPhi:
		return nil // materialised by predecessor edge copies

	case in.Op == ir.OpBr:
		lw.phiCopies(in)
		fx := lw.emit(machine.MInstr{Op: machine.MJmp})
		lw.branchFix = append(lw.branchFix, struct {
			idx int
			blk *ir.Block
		}{fx, in.Blocks[0]})
		return nil

	case in.Op == ir.OpCondBr:
		lw.phiCopies(in)
		cond := lw.getInt(in.Ops[0], machine.R0)
		fx1 := lw.emit(machine.MInstr{Op: machine.MJnz, Ra: cond})
		lw.branchFix = append(lw.branchFix, struct {
			idx int
			blk *ir.Block
		}{fx1, in.Blocks[0]})
		fx2 := lw.emit(machine.MInstr{Op: machine.MJmp})
		lw.branchFix = append(lw.branchFix, struct {
			idx int
			blk *ir.Block
		}{fx2, in.Blocks[1]})
		return nil

	case in.Op == ir.OpRet:
		if len(in.Ops) == 1 {
			if in.Ops[0].Type() == ir.F64 {
				v := lw.getFloat(in.Ops[0], 0)
				if v != 0 {
					lw.emitHome(machine.MInstr{Op: machine.MFMov, Fd: 0, Fa: v})
				}
			} else {
				v := lw.getInt(in.Ops[0], machine.R0)
				if v != machine.R0 {
					lw.emitHome(machine.MInstr{Op: machine.MMov, Rd: machine.R0, Ra: v})
				}
			}
		}
		lw.epilogue()
		return nil

	case in.Op == ir.OpCall:
		return lw.lowerCall(in)
	}
	return fmt.Errorf("compiler: cannot lower %s", in.Op)
}

// emitAddr computes base + index*size into rd via MLea (multiplying the
// index first when the scale does not fit the addressing mode).
func (lw *lowering) emitAddr(baseV, idxV ir.Value, size int64, rd machine.Reg) {
	base := lw.getInt(baseV, machine.R1)
	if k, ok := idxV.(*ir.Const); ok {
		lw.emit(machine.MInstr{Op: machine.MLea, Rd: rd, Base: base, Index: machine.NoReg, Disp: k.I * size})
		return
	}
	idx := lw.getInt(idxV, machine.R2)
	if size <= 255 {
		lw.emit(machine.MInstr{Op: machine.MLea, Rd: rd, Base: base, Index: idx, Scale: uint8(size)})
		return
	}
	lw.emit(machine.MInstr{Op: machine.MMul, Rd: machine.R2, Ra: idx, UseImm: true, Imm: size})
	lw.emit(machine.MInstr{Op: machine.MLea, Rd: rd, Base: base, Index: machine.R2, Scale: 1})
}

// memOperand materialises the address registers for a load/store pointer
// and returns the machine memory operand, folding a fold-only GEP into
// base+index*scale+disp form.
func (lw *lowering) memOperand(ptr ir.Value) (base, index machine.Reg, scale uint8, disp int64) {
	if g, ok := ptr.(*ir.Instr); ok && g.Op == ir.OpGEP && foldOnlyGEP(lw.live, g) {
		base = lw.getInt(g.Ops[0], machine.R1)
		if k, isK := g.Ops[1].(*ir.Const); isK {
			return base, machine.NoReg, 0, k.I * g.Size
		}
		idx := lw.getInt(g.Ops[1], machine.R2)
		if g.Size <= 255 {
			return base, idx, uint8(g.Size), 0
		}
		lw.emit(machine.MInstr{Op: machine.MMul, Rd: machine.R2, Ra: idx, UseImm: true, Imm: g.Size})
		return base, machine.R2, 1, 0
	}
	return lw.getInt(ptr, machine.R1), machine.NoReg, 0, 0
}

// lowerCall emits argument pushes, the call, stack cleanup, and result
// capture for direct and host calls.
func (lw *lowering) lowerCall(in *ir.Instr) error {
	for _, a := range in.Ops {
		if a.Type() == ir.F64 {
			v := lw.getFloat(a, 0)
			lw.emit(machine.MInstr{Op: machine.MFPush, Fa: v})
		} else {
			v := lw.getInt(a, machine.R0)
			lw.emit(machine.MInstr{Op: machine.MPush, Ra: v})
		}
	}
	n := int64(len(in.Ops))
	if in.Callee != nil {
		fx := lw.emit(machine.MInstr{Op: machine.MCall, Sym: in.Callee.Name})
		lw.c.callFix = append(lw.c.callFix, callFixup{idx: fx, name: in.Callee.Name})
		if n > 0 {
			lw.emitHome(machine.MInstr{Op: machine.MAdd, Rd: machine.SP, Ra: machine.SP, UseImm: true, Imm: 8 * n})
		}
		if in.Typ != ir.Void && len(lw.live.Uses(in)) > 0 {
			if in.Typ == ir.F64 {
				lw.finishFloat(in, 0)
			} else {
				lw.finishInt(in, machine.R0)
			}
		}
		return nil
	}
	sig, ok := hostenv.Signatures[in.Host]
	if !ok {
		return fmt.Errorf("compiler: unknown host function %q", in.Host)
	}
	if sig.NArgs != len(in.Ops) {
		return fmt.Errorf("compiler: host %q wants %d args, got %d", in.Host, sig.NArgs, len(in.Ops))
	}
	lw.emit(machine.MInstr{Op: machine.MHost, Host: in.Host, HostArgs: len(in.Ops), HostFloatRet: sig.FloatRet})
	if n > 0 {
		lw.emitHome(machine.MInstr{Op: machine.MAdd, Rd: machine.SP, Ra: machine.SP, UseImm: true, Imm: 8 * n})
	}
	if in.Typ != ir.Void && len(lw.live.Uses(in)) > 0 {
		if in.Typ == ir.F64 {
			lw.emitHome(machine.MInstr{Op: machine.MBitIF, Fd: 0, Ra: machine.R0})
			lw.finishFloat(in, 0)
		} else {
			lw.finishInt(in, machine.R0)
		}
	}
	return nil
}

// loc is a storage location key used by the parallel-copy resolver.
type locKey struct {
	kind homeKind
	n    int64
}

func (lw *lowering) valueLoc(v ir.Value) (locKey, bool) {
	switch x := v.(type) {
	case *ir.Arg:
		return locKey{hkArg, lw.argOff(x.Index)}, true
	case *ir.Instr:
		h := lw.alloc.homes[x]
		switch h.kind {
		case hkReg:
			return locKey{hkReg, int64(h.reg)}, true
		case hkFReg:
			return locKey{hkFReg, int64(h.freg)}, true
		case hkSlot:
			return locKey{hkSlot, lw.slot(x)}, true
		}
	}
	return locKey{}, false
}

type phiCopy struct {
	phi *ir.Instr // destination phi (its home is the copy target)
	src ir.Value  // nil when the value was moved to tempOff
	// tempOff holds a cycle-breaking frame temp when src is nil.
	tempOff int64
}

// phiCopies emits the parallel copies materialising the phis of every
// successor of the terminator term. All successor edges are resolved as
// one parallel-copy set, which is safe because phi homes are uniquely
// owned, and necessary because a successor's incoming value can be
// another successor's phi.
func (lw *lowering) phiCopies(term *ir.Instr) {
	from := term.Parent
	var copies []phiCopy
	for _, s := range term.Blocks {
		for _, p := range s.Instrs {
			if p.Op != ir.OpPhi {
				break
			}
			if _, homed := lw.alloc.homes[p]; !homed {
				continue // dead phi
			}
			for k, pb := range p.Blocks {
				if pb == from {
					copies = append(copies, phiCopy{phi: p, src: p.Ops[k]})
				}
			}
		}
	}
	lw.resolveCopies(copies)
}

func (lw *lowering) resolveCopies(pending []phiCopy) {
	dstLoc := func(c phiCopy) locKey {
		k, ok := lw.valueLoc(c.phi)
		if !ok {
			panic("compiler: phi without home in copy set")
		}
		return k
	}
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			c := pending[i]
			dl := dstLoc(c)
			conflict := false
			for j := range pending {
				if j == i || pending[j].src == nil {
					continue
				}
				if sl, ok := lw.valueLoc(pending[j].src); ok && sl == dl {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			lw.emitCopy(c)
			pending = append(pending[:i], pending[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			// Cycle: stash the first pending source in a frame temp.
			c := &pending[0]
			off := lw.reserve(8)
			if c.phi.Typ == ir.F64 {
				v := lw.getFloat(c.src, 0)
				lw.emitHome(machine.MInstr{Op: machine.MFStore, Base: machine.FP, Index: machine.NoReg, Disp: off, Fa: v})
			} else {
				v := lw.getInt(c.src, machine.R0)
				lw.emitHome(machine.MInstr{Op: machine.MStore, Base: machine.FP, Index: machine.NoReg, Disp: off, Ra: v})
			}
			c.src = nil
			c.tempOff = off
		}
	}
}

func (lw *lowering) emitCopy(c phiCopy) {
	h := lw.alloc.homes[c.phi]
	if c.phi.Typ == ir.F64 {
		var v machine.FReg
		if c.src == nil {
			lw.emitHome(machine.MInstr{Op: machine.MFLoad, Fd: 0, Base: machine.FP, Index: machine.NoReg, Disp: c.tempOff})
			v = 0
		} else {
			v = lw.getFloat(c.src, 0)
		}
		switch h.kind {
		case hkFReg:
			if h.freg != v {
				lw.emitHome(machine.MInstr{Op: machine.MFMov, Fd: h.freg, Fa: v})
			}
		case hkSlot:
			lw.emitHome(machine.MInstr{Op: machine.MFStore, Base: machine.FP, Index: machine.NoReg, Disp: lw.slot(c.phi), Fa: v})
		}
		return
	}
	var v machine.Reg
	if c.src == nil {
		lw.emitHome(machine.MInstr{Op: machine.MLoad, Rd: machine.R0, Base: machine.FP, Index: machine.NoReg, Disp: c.tempOff})
		v = machine.R0
	} else {
		v = lw.getInt(c.src, machine.R0)
	}
	switch h.kind {
	case hkReg:
		if h.reg != v {
			lw.emitHome(machine.MInstr{Op: machine.MMov, Rd: h.reg, Ra: v})
		}
	case hkSlot:
		lw.emitHome(machine.MInstr{Op: machine.MStore, Base: machine.FP, Index: machine.NoReg, Disp: lw.slot(c.phi), Ra: v})
	}
}

// emitVarDebug writes the location lists for every homed value of the
// function: the DW_AT_location analogue that lets Safeguard retrieve
// recovery-kernel parameters from the stalled process.
func (lw *lowering) emitVarDebug(start, end int) {
	dbg := lw.c.prog.Debug
	fn := lw.f.Name
	for v, h := range lw.alloc.homes {
		var name string
		switch x := v.(type) {
		case *ir.Arg:
			name = x.Name
		case *ir.Instr:
			name = x.Name
		default:
			continue
		}
		switch h.kind {
		case hkArg:
			dbg.AddVar(fn, name, debuginfo.LocEntry{
				Start: start, End: end, Kind: debuginfo.LocFPOff,
				Off: lw.argOff(v.(*ir.Arg).Index),
			})
		case hkSlot:
			off, ok := lw.slotOff[v]
			if !ok {
				continue // never materialised
			}
			dbg.AddVar(fn, name, debuginfo.LocEntry{
				Start: start, End: end, Kind: debuginfo.LocFPOff, Off: off,
			})
		case hkReg, hkFReg:
			ms, me := start, end
			if iv, ok := lw.alloc.intervals[v]; ok {
				if s, ok2 := lw.irStart[iv[0]]; ok2 {
					ms = s
				}
				if e, ok2 := lw.irStart[iv[1]+1]; ok2 {
					me = e
				}
			}
			entry := debuginfo.LocEntry{Start: ms, End: me}
			if h.kind == hkReg {
				entry.Kind, entry.Reg = debuginfo.LocReg, uint8(h.reg)
			} else {
				entry.Kind, entry.Reg = debuginfo.LocFReg, uint8(h.freg)
			}
			dbg.AddVar(fn, name, entry)
		}
	}
}
