package compiler

import "care/internal/ir"

// licm hoists loop-invariant pure computations into the loop preheader.
// Beyond being a standard O1 pass, it matters to CARE the way the
// paper's Figure 8 describes: hoisted address arithmetic becomes a
// loop-invariant value with a non-local use, which both removes
// per-iteration recomputation (fewer injection targets on the address
// path) and extends the coverage scope of recovery kernels.
//
// Conservatism: only speculatable instructions are hoisted — integer
// and float arithmetic except division/remainder (which may trap), GEPs
// and conversions. Loads are never hoisted (no alias analysis).
func licm(f *ir.Func) int {
	f.Renumber()
	dom := ir.Dominators(f)
	dominates := func(a, b *ir.Block) bool {
		if a == b {
			return true
		}
		for x := dom[b]; x != nil; {
			if x == a {
				return true
			}
			nx := dom[x]
			if nx == x {
				break
			}
			x = nx
		}
		return false
	}

	// Natural loops from back edges (tail -> header where the header
	// dominates the tail).
	type loop struct {
		header    *ir.Block
		body      map[*ir.Block]bool
		preheader *ir.Block
	}
	var loops []loop
	preds := f.Preds()
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if !dominates(s, b) {
				continue
			}
			// Collect the natural loop of back edge b -> s.
			body := map[*ir.Block]bool{s: true}
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, p := range preds[x] {
					stack = append(stack, p)
				}
			}
			// A usable preheader: exactly one predecessor outside the
			// loop, ending in an unconditional branch to the header.
			var outside []*ir.Block
			for _, p := range preds[s] {
				if !body[p] {
					outside = append(outside, p)
				}
			}
			if len(outside) != 1 {
				continue
			}
			ph := outside[0]
			t := ph.Terminator()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			loops = append(loops, loop{header: s, body: body, preheader: ph})
		}
	}

	speculatable := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpSDiv, ir.OpSRem:
			return false // may trap; do not speculate
		case ir.OpGEP, ir.OpIToF, ir.OpFToI:
			return true
		}
		return in.Op.IsBinary()
	}

	hoisted := 0
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, lp := range loops {
			// A value is invariant if every operand is a constant,
			// global, argument, or an instruction defined outside the
			// loop in a block dominating the preheader (which includes
			// previously hoisted instructions in the preheader itself).
			invariantOperand := func(v ir.Value) bool {
				switch x := v.(type) {
				case *ir.Const, *ir.Global, *ir.Arg:
					return true
				case *ir.Instr:
					if x.Parent == nil || lp.body[x.Parent] {
						return false
					}
					return dominates(x.Parent, lp.preheader) || x.Parent == lp.preheader
				}
				return false
			}
			// Iterate the body in function layout order so hoisting is
			// deterministic (the body set is a map).
			for _, blk := range f.Blocks {
				if !lp.body[blk] {
					continue
				}
				kept := blk.Instrs[:0]
				for _, in := range blk.Instrs {
					if !speculatable(in) || in.Typ == ir.Void {
						kept = append(kept, in)
						continue
					}
					inv := true
					for _, op := range in.Ops {
						if !invariantOperand(op) {
							inv = false
							break
						}
					}
					if !inv {
						kept = append(kept, in)
						continue
					}
					// Hoist: insert before the preheader terminator.
					ph := lp.preheader
					term := ph.Instrs[len(ph.Instrs)-1]
					ph.Instrs = append(ph.Instrs[:len(ph.Instrs)-1], in, term)
					in.Parent = ph
					hoisted++
					changed = true
				}
				blk.Instrs = kept
			}
		}
		if !changed {
			break
		}
	}
	if hoisted > 0 {
		f.Renumber()
	}
	return hoisted
}
