package compiler

import (
	"testing"

	"care/internal/ir"
	"care/internal/irbuild"
)

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestConstFoldAndDCE(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	a := fb.Add(irbuild.I(2), irbuild.I(3)) // foldable
	bv := fb.Mul(a, irbuild.I(4))           // folds transitively to 20
	c := fb.Add(bv, irbuild.I(0))           // identity
	fb.Result(c)
	fb.Ret(irbuild.I(0))
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	stats := Optimize(m)
	f := m.Func("main")
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("post-opt verify: %v", err)
	}
	if countOp(f, ir.OpAdd)+countOp(f, ir.OpMul) != 0 {
		t.Errorf("constant arithmetic survived: %s (stats %v)", f, stats)
	}
	// The folded value must be the constant 20.
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpCall && in.Host == "result_f64" {
			// result takes itof of the value; find the itof operand.
		}
	}
}

func TestDivNotConstFolded(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	d := fb.SDiv(irbuild.I(10), irbuild.I(0)) // must trap at run time
	fb.Result(d)
	fb.Ret(irbuild.I(0))
	Optimize(m)
	if countOp(m.Func("main"), ir.OpSDiv) != 1 {
		t.Fatal("trapping division folded away")
	}
}

func TestCSEMergesPureDuplicates(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal(&ir.Global{Name: "g", Size: 64})
	fb := irbuild.New(ir.NewBuilder(m))
	f := fb.NewFunc("f", ir.F64, ir.Param("i", ir.I64))
	i := f.Params[0]
	v1 := fb.LoadAt(ir.F64, g, fb.Mul(i, irbuild.I(2)))
	v2 := fb.LoadAt(ir.F64, g, fb.Mul(i, irbuild.I(2))) // duplicate mul + gep
	fb.Ret(fb.FAdd(v1, v2))
	nMulBefore := countOp(f, ir.OpMul)
	Optimize(m)
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
	if got := countOp(f, ir.OpMul); got >= nMulBefore {
		t.Errorf("CSE left %d muls (was %d)", got, nMulBefore)
	}
	// The two loads must NOT merge (loads are not pure).
	if countOp(f, ir.OpLoad) != 2 {
		t.Errorf("loads merged: %d", countOp(f, ir.OpLoad))
	}
}

func TestDCERemovesUnusedChains(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	f := fb.NewFunc("f", ir.I64, ir.Param("x", ir.I64))
	x := f.Params[0]
	dead1 := fb.Mul(x, irbuild.I(3))
	_ = fb.Add(dead1, irbuild.I(1)) // whole chain dead
	fb.Ret(x)
	Optimize(m)
	if n := f.NumInstrs(); n != 1 { // just the ret
		t.Errorf("dead chain survived: %d instrs\n%s", n, f)
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// Build a loop whose exit block has a phi fed by the loop variable
	// — the classic critical edge (latch condbr -> header w/ multiple
	// preds).
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	f := b.NewFunc("f", ir.I64, ir.Param("n", ir.I64))
	entry := f.Entry()
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	i := b.Phi(ir.I64)
	c := b.ICmp(ir.OpICmpSLT, i, f.Params[0])
	b.CondBr(c, body, exit)
	b.SetBlock(body)
	in := b.Add(i, ir.ConstInt(1))
	cc := b.ICmp(ir.OpICmpSLT, in, ir.ConstInt(100))
	b.CondBr(cc, header, exit) // both edges critical
	ir.AddIncoming(i, ir.ConstInt(0), entry)
	ir.AddIncoming(i, in, body)
	b.SetBlock(exit)
	r := b.Phi(ir.I64)
	ir.AddIncoming(r, i, header)
	ir.AddIncoming(r, in, body)
	b.Ret(r)
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
	before := len(f.Blocks)
	SplitCriticalEdges(f)
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("post-split verify: %v", err)
	}
	if len(f.Blocks) <= before {
		t.Fatal("no edges split")
	}
	// No remaining critical edges.
	preds := f.Preds()
	for _, blk := range f.Blocks {
		term := blk.Terminator()
		if term == nil || len(term.Blocks) < 2 {
			continue
		}
		for _, s := range term.Blocks {
			if len(preds[s]) > 1 {
				t.Errorf("critical edge %s -> %s remains", blk.Name, s.Name)
			}
		}
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	m := buildSumProgram(t)
	Optimize(m)
	s1 := m.String()
	Optimize(m)
	if s2 := m.String(); s1 != s2 {
		t.Fatal("second Optimize changed the module")
	}
}

func TestLICMHoistsInvariantAddressMath(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal(&ir.Global{Name: "g", Size: 64 * 8})
	fb := irbuild.New(ir.NewBuilder(m))
	f := fb.NewFunc("f", ir.F64, ir.Param("a", ir.I64), ir.Param("b", ir.I64))
	a, b := f.Params[0], f.Params[1]
	out := fb.For(irbuild.I(0), irbuild.I(8), 1, []ir.Value{irbuild.F(0)},
		func(i ir.Value, c []ir.Value) []ir.Value {
			base := fb.Mul(a, b)              // invariant
			off := fb.Add(base, irbuild.I(2)) // invariant
			idx := fb.Add(off, i)             // variant
			return []ir.Value{fb.FAdd(c[0], fb.LoadAt(ir.F64, g, idx))}
		})
	fb.Ret(out[0])
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
	if n := licm(f); n < 2 {
		t.Fatalf("hoisted %d instrs, want >=2", n)
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("post-licm verify: %v", err)
	}
	// The invariant mul must now live outside the loop body blocks.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpMul && blk.Name != f.Entry().Name {
				// mul(a,b) should be in entry (the preheader).
				t.Errorf("invariant mul still in %s", blk.Name)
			}
		}
	}
}

func TestLICMDoesNotSpeculateDivision(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	f := fb.NewFunc("f", ir.I64, ir.Param("a", ir.I64), ir.Param("b", ir.I64))
	a, b := f.Params[0], f.Params[1]
	// The division only executes if the loop runs; hoisting it would
	// introduce a trap for b==0 even when the loop is zero-trip.
	out := fb.For(irbuild.I(0), a, 1, []ir.Value{irbuild.I(0)},
		func(i ir.Value, c []ir.Value) []ir.Value {
			q := fb.SDiv(irbuild.I(100), b)
			return []ir.Value{fb.Add(c[0], q)}
		})
	fb.Ret(out[0])
	licm(f)
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
	entry := f.Entry()
	for _, in := range entry.Instrs {
		if in.Op == ir.OpSDiv {
			t.Fatal("division speculated into the preheader")
		}
	}
}
