// Package compiler lowers the mini-IR of internal/ir to the simulated
// machine of internal/machine. It provides two pipelines mirroring the
// paper's evaluation configurations:
//
//   - O0: every IR value is assigned a frame slot ("home") and is loaded
//     and stored around each use, as clang -O0 does. Recovery-kernel
//     parameters are therefore always retrievable from the stack.
//   - O1: constant folding, local CSE and dead-code elimination run on
//     the IR, then a linear-scan register allocator keeps values — in
//     particular loop induction variables — in registers that are
//     updated in place. This reproduces the coverage effects the paper
//     reports for optimised code.
//
// The compiler also emits the debug information (line table + variable
// location lists) that the CARE runtime depends on.
package compiler

import (
	"fmt"

	"care/internal/ir"
)

// replaceUses substitutes new for old in all instruction operands of f.
func replaceUses(f *ir.Func, old, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, op := range in.Ops {
				if op == old {
					in.Ops[i] = new
				}
			}
		}
	}
}

// foldConst evaluates a binary op over two constants, returning nil when
// the operation cannot be folded (e.g. division by zero must trap at run
// time, not at compile time).
func foldConst(in *ir.Instr) *ir.Const {
	if len(in.Ops) != 2 {
		return nil
	}
	a, okA := in.Ops[0].(*ir.Const)
	b, okB := in.Ops[1].(*ir.Const)
	if !okA || !okB {
		return nil
	}
	op := in.Op
	switch {
	case op.IsIntBinary() || op.IsICmp():
		x, y := a.I, b.I
		var r int64
		switch op {
		case ir.OpAdd:
			r = x + y
		case ir.OpSub:
			r = x - y
		case ir.OpMul:
			r = x * y
		case ir.OpSDiv, ir.OpSRem:
			return nil // may trap
		case ir.OpAnd:
			r = x & y
		case ir.OpOr:
			r = x | y
		case ir.OpXor:
			r = x ^ y
		case ir.OpShl:
			r = x << (uint64(y) & 63)
		case ir.OpAShr:
			r = x >> (uint64(y) & 63)
		case ir.OpICmpEQ:
			r = b2i(x == y)
		case ir.OpICmpNE:
			r = b2i(x != y)
		case ir.OpICmpSLT:
			r = b2i(x < y)
		case ir.OpICmpSLE:
			r = b2i(x <= y)
		case ir.OpICmpSGT:
			r = b2i(x > y)
		case ir.OpICmpSGE:
			r = b2i(x >= y)
		default:
			return nil
		}
		return ir.ConstInt(r)
	case op.IsFloatBinary():
		x, y := a.F, b.F
		var r float64
		switch op {
		case ir.OpFAdd:
			r = x + y
		case ir.OpFSub:
			r = x - y
		case ir.OpFMul:
			r = x * y
		case ir.OpFDiv:
			r = x / y
		default:
			return nil
		}
		return ir.ConstFloat(r)
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// isPure reports whether an instruction has no side effects and can be
// CSE'd or dead-code-eliminated.
func isPure(in *ir.Instr) bool {
	switch {
	case in.Op.IsBinary(), in.Op == ir.OpGEP, in.Op == ir.OpIToF, in.Op == ir.OpFToI:
		return true
	}
	return false
}

// constFoldFunc folds constants to fixpoint (one sweep then a DCE pass
// cleans up).
func constFoldFunc(f *ir.Func) int {
	n := 0
	for changed := true; changed; {
		changed = false
		// Only instructions that still have uses are worth folding; a
		// previously folded instruction has none and would otherwise be
		// re-folded forever.
		used := map[ir.Value]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, op := range in.Ops {
					used[op] = true
				}
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !isPure(in) || !used[in] {
					continue
				}
				if c := foldConst(in); c != nil {
					replaceUses(f, in, c)
					changed = true
					n++
				}
				// Algebraic identities: x+0, x*1, x*0, x-0.
				if simp := simplify(in); simp != nil {
					replaceUses(f, in, simp)
					changed = true
					n++
				}
			}
		}
	}
	return n
}

func simplify(in *ir.Instr) ir.Value {
	c := func(v ir.Value) (int64, bool) {
		k, ok := v.(*ir.Const)
		if !ok || k.Typ == ir.F64 {
			return 0, false
		}
		return k.I, true
	}
	switch in.Op {
	case ir.OpAdd:
		if k, ok := c(in.Ops[1]); ok && k == 0 {
			return in.Ops[0]
		}
		if k, ok := c(in.Ops[0]); ok && k == 0 {
			return in.Ops[1]
		}
	case ir.OpSub:
		if k, ok := c(in.Ops[1]); ok && k == 0 {
			return in.Ops[0]
		}
	case ir.OpMul:
		if k, ok := c(in.Ops[1]); ok && k == 1 {
			return in.Ops[0]
		}
		if k, ok := c(in.Ops[0]); ok && k == 1 {
			return in.Ops[1]
		}
		if k, ok := c(in.Ops[1]); ok && k == 0 {
			return ir.ConstInt(0)
		}
		if k, ok := c(in.Ops[0]); ok && k == 0 {
			return ir.ConstInt(0)
		}
	}
	return nil
}

// cseKey builds a structural key for pure instructions.
func cseKey(in *ir.Instr) string {
	k := fmt.Sprintf("%d/%d", in.Op, in.Size)
	for _, op := range in.Ops {
		switch v := op.(type) {
		case *ir.Instr:
			k += fmt.Sprintf("|i%p", v)
		case *ir.Arg:
			k += fmt.Sprintf("|a%p", v)
		case *ir.Global:
			k += fmt.Sprintf("|g%p", v)
		case *ir.Const:
			k += "|c" + v.Ref() + v.Typ.String()
		}
	}
	return k
}

// localCSE removes redundant pure computations within each block.
func localCSE(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		seen := map[string]*ir.Instr{}
		for _, in := range b.Instrs {
			if !isPure(in) {
				continue
			}
			k := cseKey(in)
			if prev, ok := seen[k]; ok {
				replaceUses(f, in, prev)
				n++
				continue
			}
			seen[k] = in
		}
	}
	return n
}

// dce removes pure instructions (and phis) with no remaining uses,
// iterating to fixpoint.
func dce(f *ir.Func) int {
	removed := 0
	for changed := true; changed; {
		changed = false
		used := map[ir.Value]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, op := range in.Ops {
					used[op] = true
				}
			}
		}
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead := (isPure(in) || in.Op == ir.OpPhi) && in.Typ != ir.Void && !used[in]
				if dead {
					removed++
					changed = true
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
	}
	return removed
}

// Optimize runs the O1 IR pipeline over every defined function in the
// module, in place. It returns per-pass rewrite counts for logging.
func Optimize(m *ir.Module) map[string]int {
	stats := map[string]int{}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		stats["constfold"] += constFoldFunc(f)
		stats["cse"] += localCSE(f)
		stats["licm"] += licm(f)
		stats["dce"] += dce(f)
		f.Renumber()
	}
	return stats
}

// SplitCriticalEdges inserts an empty forwarding block on every edge
// whose source has multiple successors and whose destination has
// multiple predecessors, so that phi-resolution copies can always be
// placed on the edge. Lowering requires this normal form.
func SplitCriticalEdges(f *ir.Func) {
	if len(f.Blocks) == 0 {
		return
	}
	preds := f.Preds()
	// Collect first: mutating while iterating invalidates Preds.
	type edge struct {
		from *ir.Block
		si   int // successor slot in terminator
	}
	var crit []edge
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || len(t.Blocks) < 2 {
			continue
		}
		for si, s := range t.Blocks {
			if len(preds[s]) > 1 {
				crit = append(crit, edge{b, si})
			}
		}
	}
	for _, e := range crit {
		t := e.from.Terminator()
		dst := t.Blocks[e.si]
		mid := &ir.Block{Name: fmt.Sprintf("crit%d_%s", len(f.Blocks), dst.Name), Fn: f}
		br := &ir.Instr{Op: ir.OpBr, Typ: ir.Void, Blocks: []*ir.Block{dst}, Parent: mid, Loc: t.Loc}
		mid.Instrs = []*ir.Instr{br}
		f.Blocks = append(f.Blocks, mid)
		t.Blocks[e.si] = mid
		// Redirect phi incoming blocks.
		for _, in := range dst.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			for i, pb := range in.Blocks {
				if pb == e.from {
					in.Blocks[i] = mid
				}
			}
		}
	}
	f.Renumber()
}
