package compiler

import (
	"fmt"
	"math"

	"care/internal/debuginfo"
	"care/internal/ir"
	"care/internal/machine"
)

// Options configures a compilation. Images are prelinked: code and data
// bases are fixed here, and references to other images are resolved
// through the extern maps.
type Options struct {
	// OptLevel is 0 (every value in a frame slot) or 1 (optimise +
	// register-allocate).
	OptLevel int
	// CodeBase/GlobalBase position the image.
	CodeBase   machine.Word
	GlobalBase machine.Word
	// ExternFuncs maps declared-but-undefined function names to their
	// absolute entry addresses in other images.
	ExternFuncs map[string]machine.Word
	// ExternGlobals maps extern global names to absolute addresses.
	ExternGlobals map[string]machine.Word
	// SkipOptimize suppresses the O1 IR pipeline inside Compile; used
	// when the caller already ran Optimize (e.g. because Armor must
	// analyse the optimised IR, as an in-pipeline LLVM pass would).
	SkipOptimize bool
}

// AppOptions returns the conventional layout for a main executable.
func AppOptions(opt int) Options {
	return Options{OptLevel: opt, CodeBase: machine.AppCodeBase, GlobalBase: machine.AppGlobalBase}
}

// LibOptions returns the layout for the n'th shared library image.
func LibOptions(opt, n int) Options {
	return Options{
		OptLevel:   opt,
		CodeBase:   machine.LibCodeBase + machine.Word(n)*machine.LibStride,
		GlobalBase: machine.LibCodeBase + machine.Word(n)*machine.LibStride + machine.LibStride/2,
	}
}

// Compile lowers a verified module into a machine program. The module is
// mutated in place by O1 optimisation passes and by critical-edge
// splitting, mirroring a real in-pipeline compiler.
func Compile(m *ir.Module, opts Options) (*machine.Program, error) {
	if err := ir.VerifyModule(m); err != nil {
		return nil, err
	}
	if opts.OptLevel >= 1 && !opts.SkipOptimize {
		Optimize(m)
	}
	c := &compilation{
		m:    m,
		opts: opts,
		prog: &machine.Program{
			Name:       m.Name,
			CodeBase:   opts.CodeBase,
			GlobalBase: opts.GlobalBase,
			Debug:      debuginfo.New(),
			OptLevel:   opts.OptLevel,
		},
		globalAddr: map[string]machine.Word{},
	}
	if err := c.layoutGlobals(); err != nil {
		return nil, err
	}
	// A _start stub precedes everything when the module has a main.
	if m.Func("main") != nil {
		c.emitStart()
	}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			continue // declaration resolved via ExternFuncs
		}
		if err := c.lowerFunc(f); err != nil {
			return nil, fmt.Errorf("compiler: %s: %w", f.Name, err)
		}
	}
	if err := c.resolveCalls(); err != nil {
		return nil, err
	}
	c.prog.Debug.Lines = c.lines
	// Seal the packed code image now, while the program is still
	// private to this build: every process that loads it afterwards
	// (campaign trials run many concurrently) shares the one read-only
	// backing array.
	c.prog.SealCode()
	return c.prog, nil
}

type callFixup struct {
	idx  int
	name string
}

type compilation struct {
	m    *ir.Module
	opts Options
	prog *machine.Program

	lines      []debuginfo.LC
	globalAddr map[string]machine.Word
	callFix    []callFixup
}

func (c *compilation) layoutGlobals() error {
	var off machine.Word
	var initW []machine.Word
	for _, g := range c.m.Globals {
		if g.Extern {
			addr, ok := c.opts.ExternGlobals[g.Name]
			if !ok {
				return fmt.Errorf("compiler: unresolved extern global %q", g.Name)
			}
			c.globalAddr[g.Name] = addr
			c.prog.Globals = append(c.prog.Globals, machine.GlobalSym{
				Name: g.Name, Extern: true, Addr: addr, Size: machine.Word(g.Size),
			})
			continue
		}
		addr := c.opts.GlobalBase + off
		c.globalAddr[g.Name] = addr
		c.prog.Globals = append(c.prog.Globals, machine.GlobalSym{
			Name: g.Name, Off: off, Addr: addr, Size: machine.Word(g.Size),
		})
		words := make([]machine.Word, g.Size/8)
		for i, v := range g.InitI64 {
			if i < len(words) {
				words[i] = machine.Word(v)
			}
		}
		for i, v := range g.InitF64 {
			if i < len(words) {
				words[i] = math.Float64bits(v)
			}
		}
		initW = append(initW, words...)
		off += machine.Word(g.Size)
	}
	if off > 0 {
		c.prog.GlobalInit = make([]byte, off)
		for i, w := range initW {
			putWord(c.prog.GlobalInit[8*i:], w)
		}
	}
	return nil
}

func putWord(b []byte, w machine.Word) {
	for i := 0; i < 8; i++ {
		b[i] = byte(w >> (8 * i))
	}
}

func (c *compilation) emit(in machine.MInstr, loc ir.Loc) int {
	in.Line, in.Col = loc.Line, loc.Col
	c.prog.Code = append(c.prog.Code, in)
	c.lines = append(c.lines, debuginfo.LC{Line: loc.Line, Col: loc.Col})
	return len(c.prog.Code) - 1
}

// emitStart emits the process entry stub: call main, halt with its
// return code.
func (c *compilation) emitStart() {
	start := len(c.prog.Code)
	c.prog.Funcs = append(c.prog.Funcs, machine.FuncSym{Name: "_start", Entry: start})
	c.callFix = append(c.callFix, callFixup{idx: c.emit(machine.MInstr{Op: machine.MCall, Sym: "main"}, ir.Loc{}), name: "main"})
	c.emit(machine.MInstr{Op: machine.MHalt, Ra: machine.R0}, ir.Loc{})
	c.prog.Debug.Funcs = append(c.prog.Debug.Funcs, debuginfo.FuncInfo{
		Name: "_start", File: c.m.Name + "/_start", Start: start, End: len(c.prog.Code),
	})
}

func (c *compilation) resolveCalls() error {
	entries := map[string]machine.Word{}
	for _, f := range c.prog.Funcs {
		entries[f.Name] = c.prog.AddrOf(f.Entry)
	}
	for _, fx := range c.callFix {
		addr, ok := entries[fx.name]
		if !ok {
			addr, ok = c.opts.ExternFuncs[fx.name]
		}
		if !ok {
			return fmt.Errorf("compiler: unresolved call target %q", fx.name)
		}
		c.prog.Code[fx.idx].Target = addr
	}
	return nil
}

// lowering is the per-function state.
type lowering struct {
	c     *compilation
	f     *ir.Func
	live  *ir.Liveness
	alloc *allocation

	curLoc ir.Loc
	noLoc  bool // home/prologue traffic carries no source key

	frameBytes int64
	slotOff    map[ir.Value]int64
	allocaOff  map[*ir.Instr]int64
	savedOff   map[machine.Reg]int64
	savedFOff  map[machine.FReg]int64

	blockStart map[*ir.Block]int
	branchFix  []struct {
		idx int
		blk *ir.Block
	}
	prologueSub int // index of the SP-adjust instruction to patch

	irStart map[int]int // IR instruction ID -> first machine index
}

func (c *compilation) lowerFunc(f *ir.Func) error {
	SplitCriticalEdges(f)
	if err := ir.VerifyFunc(f); err != nil {
		return fmt.Errorf("after edge split: %w", err)
	}
	live := ir.ComputeLiveness(f)
	var alloc *allocation
	if c.opts.OptLevel >= 1 {
		alloc = allocateO1(f, live)
	} else {
		alloc = allocateO0(f, live)
	}
	lw := &lowering{
		c: c, f: f, live: live, alloc: alloc,
		slotOff:    map[ir.Value]int64{},
		allocaOff:  map[*ir.Instr]int64{},
		savedOff:   map[machine.Reg]int64{},
		savedFOff:  map[machine.FReg]int64{},
		blockStart: map[*ir.Block]int{},
		irStart:    map[int]int{},
	}
	start := len(c.prog.Code)
	c.prog.Funcs = append(c.prog.Funcs, machine.FuncSym{Name: f.Name, Entry: start})
	lw.prologue()
	for _, b := range f.Blocks {
		lw.blockStart[b] = len(c.prog.Code)
		for _, in := range b.Instrs {
			lw.irStart[in.ID] = len(c.prog.Code)
			if err := lw.lowerInstr(in); err != nil {
				return err
			}
		}
	}
	// Patch intra-function branches.
	for _, fx := range lw.branchFix {
		tgt, ok := lw.blockStart[fx.blk]
		if !ok {
			return fmt.Errorf("branch to unlowered block %s", fx.blk.Name)
		}
		c.prog.Code[fx.idx].Target = c.prog.AddrOf(tgt)
	}
	// Patch the frame size.
	frame := (lw.frameBytes + 15) &^ 15
	c.prog.Code[lw.prologueSub].Imm = frame
	end := len(c.prog.Code)
	c.prog.Debug.Funcs = append(c.prog.Debug.Funcs, debuginfo.FuncInfo{
		Name: f.Name, File: f.File, Start: start, End: end,
		FrameSize: frame, NumParams: len(f.Params),
	})
	lw.emitVarDebug(start, end)
	return nil
}

// reserve grabs n bytes of frame and returns the FP-relative offset of
// their lowest address.
func (lw *lowering) reserve(n int64) int64 {
	lw.frameBytes += n
	return -lw.frameBytes
}

func (lw *lowering) slot(v ir.Value) int64 {
	off, ok := lw.slotOff[v]
	if !ok {
		off = lw.reserve(8)
		lw.slotOff[v] = off
	}
	return off
}

// argOff returns the FP-relative offset of parameter i. Arguments are
// pushed left to right, so argument 0 is deepest.
func (lw *lowering) argOff(i int) int64 {
	n := len(lw.f.Params)
	return 16 + 8*int64(n-1-i)
}

func (lw *lowering) emit(in machine.MInstr) int {
	loc := lw.curLoc
	if lw.noLoc {
		loc = ir.Loc{}
	}
	return lw.c.emit(in, loc)
}

// emitHome emits home-traffic (spill/reload/moves) with no source key so
// that a fault raised by frame accesses never aliases a recovery-kernel
// key.
func (lw *lowering) emitHome(in machine.MInstr) int {
	was := lw.noLoc
	lw.noLoc = true
	idx := lw.emit(in)
	lw.noLoc = was
	return idx
}

func (lw *lowering) prologue() {
	lw.noLoc = true
	defer func() { lw.noLoc = false }()
	lw.emit(machine.MInstr{Op: machine.MPush, Ra: machine.FP})
	lw.emit(machine.MInstr{Op: machine.MMov, Rd: machine.FP, Ra: machine.SP})
	lw.prologueSub = lw.emit(machine.MInstr{Op: machine.MSub, Rd: machine.SP, Ra: machine.SP, UseImm: true, Imm: 0})
	// Save callee-saved registers this function will use.
	for _, r := range lw.alloc.usedInt {
		off := lw.reserve(8)
		lw.savedOff[r] = off
		lw.emit(machine.MInstr{Op: machine.MStore, Base: machine.FP, Index: machine.NoReg, Disp: off, Ra: r})
	}
	for _, r := range lw.alloc.usedFloat {
		off := lw.reserve(8)
		lw.savedFOff[r] = off
		lw.emit(machine.MInstr{Op: machine.MFStore, Base: machine.FP, Index: machine.NoReg, Disp: off, Fa: r})
	}
}

func (lw *lowering) epilogue() {
	for _, r := range lw.alloc.usedInt {
		lw.emitHome(machine.MInstr{Op: machine.MLoad, Rd: r, Base: machine.FP, Index: machine.NoReg, Disp: lw.savedOff[r]})
	}
	for _, r := range lw.alloc.usedFloat {
		lw.emitHome(machine.MInstr{Op: machine.MFLoad, Fd: r, Base: machine.FP, Index: machine.NoReg, Disp: lw.savedFOff[r]})
	}
	lw.emitHome(machine.MInstr{Op: machine.MMov, Rd: machine.SP, Ra: machine.FP})
	lw.emitHome(machine.MInstr{Op: machine.MPop, Rd: machine.FP})
	lw.emitHome(machine.MInstr{Op: machine.MRet})
}

// getInt materialises an integer/pointer value and returns the register
// holding it. Values homed in registers are returned in place — callers
// must not mutate the returned register unless it equals the suggested
// scratch.
func (lw *lowering) getInt(v ir.Value, scratch machine.Reg) machine.Reg {
	switch x := v.(type) {
	case *ir.Const:
		lw.emit(machine.MInstr{Op: machine.MMovImm, Rd: scratch, Imm: x.I})
		return scratch
	case *ir.Global:
		addr, ok := lw.c.globalAddr[x.Name]
		if !ok {
			panic("compiler: unknown global " + x.Name)
		}
		lw.emit(machine.MInstr{Op: machine.MMovImm, Rd: scratch, Imm: int64(addr)})
		return scratch
	case *ir.Arg:
		lw.emitHome(machine.MInstr{Op: machine.MLoad, Rd: scratch, Base: machine.FP, Index: machine.NoReg, Disp: lw.argOff(x.Index)})
		return scratch
	case *ir.Instr:
		if x.Op == ir.OpAlloca {
			off := lw.allocaOff[x]
			lw.emit(machine.MInstr{Op: machine.MLea, Rd: scratch, Base: machine.FP, Index: machine.NoReg, Disp: off})
			return scratch
		}
		h := lw.alloc.homes[x]
		switch h.kind {
		case hkReg:
			return h.reg
		case hkSlot:
			lw.emitHome(machine.MInstr{Op: machine.MLoad, Rd: scratch, Base: machine.FP, Index: machine.NoReg, Disp: lw.slot(x)})
			return scratch
		}
		panic(fmt.Sprintf("compiler: %s: no int home for %%%s (%s)", lw.f.Name, x.Name, x.Op))
	}
	panic("compiler: getInt on unexpected value")
}

// getFloat materialises a float value into a float register.
func (lw *lowering) getFloat(v ir.Value, scratch machine.FReg) machine.FReg {
	switch x := v.(type) {
	case *ir.Const:
		lw.emit(machine.MInstr{Op: machine.MFMovImm, Fd: scratch, Imm: int64(math.Float64bits(x.F))})
		return scratch
	case *ir.Arg:
		lw.emitHome(machine.MInstr{Op: machine.MFLoad, Fd: scratch, Base: machine.FP, Index: machine.NoReg, Disp: lw.argOff(x.Index)})
		return scratch
	case *ir.Instr:
		h := lw.alloc.homes[x]
		switch h.kind {
		case hkFReg:
			return h.freg
		case hkSlot:
			lw.emitHome(machine.MInstr{Op: machine.MFLoad, Fd: scratch, Base: machine.FP, Index: machine.NoReg, Disp: lw.slot(x)})
			return scratch
		}
		panic(fmt.Sprintf("compiler: %s: no float home for %%%s (%s)", lw.f.Name, x.Name, x.Op))
	}
	panic("compiler: getFloat on unexpected value")
}

// destInt returns the register an integer-producing instruction should
// compute into (the home register when there is one, else scratch), and
// finish stores scratch results into slot homes.
func (lw *lowering) destInt(in *ir.Instr, scratch machine.Reg) machine.Reg {
	if h := lw.alloc.homes[in]; h.kind == hkReg {
		return h.reg
	}
	return scratch
}

func (lw *lowering) finishInt(in *ir.Instr, r machine.Reg) {
	h := lw.alloc.homes[in]
	switch h.kind {
	case hkReg:
		if h.reg != r {
			lw.emitHome(machine.MInstr{Op: machine.MMov, Rd: h.reg, Ra: r})
		}
	case hkSlot:
		lw.emitHome(machine.MInstr{Op: machine.MStore, Base: machine.FP, Index: machine.NoReg, Disp: lw.slot(in), Ra: r})
	}
}

func (lw *lowering) destFloat(in *ir.Instr, scratch machine.FReg) machine.FReg {
	if h := lw.alloc.homes[in]; h.kind == hkFReg {
		return h.freg
	}
	return scratch
}

func (lw *lowering) finishFloat(in *ir.Instr, r machine.FReg) {
	h := lw.alloc.homes[in]
	switch h.kind {
	case hkFReg:
		if h.freg != r {
			lw.emitHome(machine.MInstr{Op: machine.MFMov, Fd: h.freg, Fa: r})
		}
	case hkSlot:
		lw.emitHome(machine.MInstr{Op: machine.MFStore, Base: machine.FP, Index: machine.NoReg, Disp: lw.slot(in), Fa: r})
	}
}
