package core

import (
	"testing"

	"care/internal/debuginfo"
	"care/internal/ir"
	"care/internal/machine"
	"care/internal/rtable"
	"care/internal/safeguard"
)

// buildStencil builds a module with the paper's Figure 2 access pattern:
//
//	for i in 0..ni-1:
//	  for k in 0..mzeta:
//	    sum += phitmp[(mzeta+1)*(igrid[i]-igrid_in) + k]
//
// mzeta and igrid_in are runtime values loaded from globals so that O1
// cannot fold the address computation away.
func buildStencil(t testing.TB) *ir.Module {
	const ni = 8
	m := ir.NewModule("stencil")
	igrid := m.AddGlobal(&ir.Global{Name: "igrid", Size: ni * 8,
		InitI64: []int64{10, 13, 16, 19, 22, 25, 28, 31}})
	phitmp := m.AddGlobal(&ir.Global{Name: "phitmp", Size: 64 * 8})
	gmz := m.AddGlobal(&ir.Global{Name: "mzeta", Size: 8, InitI64: []int64{2}})
	gin := m.AddGlobal(&ir.Global{Name: "igrid_in", Size: 8, InitI64: []int64{10}})

	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	entry := m.Func("main").Entry()

	// Fill phitmp[j] = j * 0.5.
	fillLoop := b.NewBlock("fill")
	fillBody := b.NewBlock("fillbody")
	fillDone := b.NewBlock("filldone")
	b.Br(fillLoop)
	b.SetBlock(fillLoop)
	j := b.Phi(ir.I64)
	cj := b.ICmp(ir.OpICmpSLT, j, ir.ConstInt(64))
	b.CondBr(cj, fillBody, fillDone)
	b.SetBlock(fillBody)
	fj := b.IToF(j)
	half := b.FMul(fj, ir.ConstFloat(0.5))
	b.Store(half, b.GEP(phitmp, j, 8))
	jn := b.Add(j, ir.ConstInt(1))
	b.Br(fillLoop)
	ir.AddIncoming(j, ir.ConstInt(0), entry)
	ir.AddIncoming(j, jn, fillBody)

	b.SetBlock(fillDone)
	mz := b.Load(ir.I64, gmz)
	igin := b.Load(ir.I64, gin)
	mzp1 := b.Add(mz, ir.ConstInt(1))

	oLoop := b.NewBlock("iloop")
	oBody := b.NewBlock("ibody")
	kLoop := b.NewBlock("kloop")
	kBody := b.NewBlock("kbody")
	kDone := b.NewBlock("kdone")
	done := b.NewBlock("done")
	b.Br(oLoop)

	b.SetBlock(oLoop)
	i := b.Phi(ir.I64)
	sumO := b.Phi(ir.F64)
	ci := b.ICmp(ir.OpICmpSLT, i, ir.ConstInt(ni))
	b.CondBr(ci, oBody, done)

	b.SetBlock(oBody)
	b.Br(kLoop)

	b.SetBlock(kLoop)
	k := b.Phi(ir.I64)
	sumK := b.Phi(ir.F64)
	ck := b.ICmp(ir.OpICmpSLE, k, mz)
	b.CondBr(ck, kBody, kDone)

	b.SetBlock(kBody)
	b.NewLine()
	gv := b.Load(ir.I64, b.GEP(igrid, i, 8))
	diff := b.Sub(gv, igin)
	row := b.Mul(mzp1, diff)
	idx := b.Add(row, k)
	b.NewLine()
	val := b.Load(ir.F64, b.GEP(phitmp, idx, 8)) // the protected access
	ns := b.FAdd(sumK, val)
	kn := b.Add(k, ir.ConstInt(1))
	b.Br(kLoop)

	b.SetBlock(kDone)
	in2 := b.Add(i, ir.ConstInt(1))
	b.Br(oLoop)

	ir.AddIncoming(i, ir.ConstInt(0), fillDone)
	ir.AddIncoming(i, in2, kDone)
	ir.AddIncoming(sumO, ir.ConstFloat(0), fillDone)
	ir.AddIncoming(sumO, sumK, kDone)
	ir.AddIncoming(k, ir.ConstInt(0), oBody)
	ir.AddIncoming(k, kn, kBody)
	ir.AddIncoming(sumK, sumO, oBody)
	ir.AddIncoming(sumK, ns, kBody)

	b.SetBlock(done)
	b.HostCall("result_f64", ir.Void, sumO)
	b.Ret(ir.ConstInt(0))

	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func goldenRun(t testing.TB, opt int) []float64 {
	bin, err := Build(buildStencil(t), BuildOptions{OptLevel: opt})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	p, err := NewProcess(ProcessConfig{App: bin})
	if err != nil {
		t.Fatalf("process: %v", err)
	}
	if st := p.Run(10_000_000); st != machine.StatusExited {
		t.Fatalf("golden run: %v (%v)", st, p.CPU.PendingTrap)
	}
	return append([]float64(nil), p.Results()...)
}

func TestBuildProducesArtifacts(t *testing.T) {
	for _, opt := range []int{0, 1} {
		bin, err := Build(buildStencil(t), BuildOptions{OptLevel: opt, Defenses: []string{"care"}})
		if err != nil {
			t.Fatalf("O%d build: %v", opt, err)
		}
		if !bin.Protected() {
			t.Fatalf("O%d: no recovery artifacts", opt)
		}
		if bin.DefenseStats["care"].NumKernels == 0 {
			t.Fatalf("O%d: no kernels built", opt)
		}
		t.Logf("O%d: kernels=%d avg=%.2f mem=%d table=%dB lib=%dB",
			opt, bin.DefenseStats["care"].NumKernels, bin.DefenseStats["care"].AvgKernelInstrs(),
			bin.DefenseStats["care"].NumMemAccesses, len(bin.RecoveryTable), len(bin.RecoveryLib))
	}
}

// findProtectedLoad locates the machine index of the float stencil load
// (an indexed MFLoad with a source key).
func findProtectedLoad(t testing.TB, bin *Binary) int {
	t.Helper()
	for i := range bin.Prog.Code {
		in := &bin.Prog.Code[i]
		if in.Op == machine.MFLoad && in.Index != machine.NoReg && in.Line != 0 {
			return i
		}
	}
	t.Fatal("no indexed protected MFLoad found")
	return -1
}

func TestRecoveryFromCorruptedIndex(t *testing.T) {
	for _, opt := range []int{0, 1} {
		golden := goldenRun(t, opt)
		bin, err := Build(buildStencil(t), BuildOptions{OptLevel: opt, Defenses: []string{"care"}})
		if err != nil {
			t.Fatalf("O%d build: %v", opt, err)
		}
		p, err := NewProcess(ProcessConfig{App: bin, Protected: true})
		if err != nil {
			t.Fatalf("process: %v", err)
		}
		li := findProtectedLoad(t, bin)
		target := bin.Prog.AddrOf(li)
		corrupted := false
		p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
			if !corrupted && c.PC == target && c.Dyn > 500 {
				corrupted = true
				mi := &bin.Prog.Code[li]
				c.R[mi.Index] ^= 1 << 41 // transient flip in the index register
			}
		}
		st := p.Run(10_000_000)
		if st != machine.StatusExited {
			t.Fatalf("O%d: status %v trap=%v", opt, st, p.CPU.PendingTrap)
		}
		if !corrupted {
			t.Fatalf("O%d: corruption never armed", opt)
		}
		if p.SG.Stats().Recovered != 1 {
			t.Fatalf("O%d: safeguard stats %+v", opt, p.SG.Stats())
		}
		if len(p.Results()) != len(golden) || p.Results()[0] != golden[0] {
			t.Fatalf("O%d: results %v != golden %v", opt, p.Results(), golden)
		}
		ev := p.SG.Stats().Events[0]
		if ev.Outcome != safeguard.Recovered {
			t.Fatalf("O%d: outcome %s", opt, ev.Outcome)
		}
		t.Logf("O%d: recovered in %v (prep %v, kernel %v)", opt, ev.Total(), ev.Prep(), ev.Kernel)
	}
}

func TestScopeCheckDetectsContaminatedInput(t *testing.T) {
	// Corrupt a recovery-kernel *parameter* in its frame slot (the raw
	// data): the next iteration computes a wild address from it, and
	// the kernel — recomputing from the same contaminated slot —
	// reproduces exactly the faulting address. Safeguard must declare
	// the fault out of scope rather than resume (the paper's no-SDC
	// guarantee).
	bin, err := Build(buildStencil(t), BuildOptions{OptLevel: 0, Defenses: []string{"care"}})
	if err != nil {
		t.Fatal(err)
	}
	li := findProtectedLoad(t, bin)
	key, ok := bin.Prog.Debug.KeyAt(li)
	if !ok {
		t.Fatal("no key at protected load")
	}
	tab, err := rtable.Decode(bin.RecoveryTable)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := tab.LookupSource(key)
	if !ok {
		t.Fatal("no recovery entry for protected load")
	}
	if len(entry.Params) == 0 {
		t.Fatal("kernel has no parameters")
	}
	p, err := NewProcess(ProcessConfig{App: bin, Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	target := bin.Prog.AddrOf(li)
	corrupted := false
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if corrupted || c.PC != target || c.Dyn < 500 {
			return
		}
		// Flip a high bit in the frame slot of the first integer param.
		for _, prm := range entry.Params {
			if prm.IsFloat {
				continue
			}
			loc, ok := bin.Prog.Debug.Lookup(entry.Func, prm.Name, li)
			if !ok || loc.Kind != debuginfo.LocFPOff {
				continue
			}
			a := c.R[machine.FP] + machine.Word(loc.Off)
			v, f := c.Mem.Read(a)
			if f != nil {
				t.Errorf("param slot unreadable: %v", f)
				return
			}
			if werr := c.Mem.Write(a, v^(1<<63)); werr != nil {
				t.Errorf("param slot unwritable: %v", werr)
				return
			}
			corrupted = true
			return
		}
	}
	st := p.Run(10_000_000)
	if !corrupted {
		t.Fatal("corruption never armed")
	}
	if st != machine.StatusTrapped {
		t.Fatalf("expected trapped status, got %v (events %+v)", st, p.SG.Stats().Events)
	}
	found := false
	for _, ev := range p.SG.Stats().Events {
		if ev.Outcome == safeguard.OutOfScope {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected out-of-scope outcome, events: %+v", p.SG.Stats().Events)
	}
}

func TestHeuristicModeTradesCrashForPossibleSDC(t *testing.T) {
	// Same contamination as the scope-check test, but with the
	// LetGo-style heuristic enabled: the process survives by reading a
	// bit bucket, at the cost of (likely) wrong output.
	bin, err := Build(buildStencil(t), BuildOptions{OptLevel: 0, Defenses: []string{"care"}})
	if err != nil {
		t.Fatal(err)
	}
	li := findProtectedLoad(t, bin)
	target := bin.Prog.AddrOf(li)
	p, err := NewProcess(ProcessConfig{
		App: bin, Protected: true,
		Safeguard: safeguard.Config{Heuristic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if !corrupted && c.PC == target && c.Dyn > 500 {
			corrupted = true
			mi := &bin.Prog.Code[li]
			c.R[mi.Index] += 1 << 50 // beyond any recovery: base+index wild
			c.R[mi.Base] += 1 << 51  // contaminate base too so the kernel result mismatches structure
		}
	}
	st := p.Run(10_000_000)
	if st != machine.StatusExited {
		t.Fatalf("heuristic mode should survive, got %v (events %+v)", st, p.SG.Stats().Events)
	}
	sawHeuristic := false
	for _, ev := range p.SG.Stats().Events {
		if ev.Outcome == safeguard.HeuristicPatched {
			sawHeuristic = true
		}
	}
	if !sawHeuristic && p.SG.Stats().Recovered == 0 {
		t.Fatalf("expected heuristic patch or recovery, events: %+v", p.SG.Stats().Events)
	}
}
