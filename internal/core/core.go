// Package core is the public face of the CARE reproduction: it ties the
// compiler, the Armor pass and the Safeguard runtime together behind a
// small API.
//
//	bin, _ := core.Build(module, core.BuildOptions{OptLevel: 1})
//	p, _ := core.NewProcess(core.ProcessConfig{App: bin, Protected: true})
//	status := p.Run(0)
//
// Build compiles an IR module into a prelinked machine image, runs Armor
// over it to produce the recovery library and recovery table, and
// packages everything a process needs. NewProcess assembles the
// simulated process (memory, stack, images) and — when Protected —
// attaches Safeguard exactly the way LD_PRELOAD would.
package core

import (
	"fmt"
	"time"

	"care/internal/armor"
	"care/internal/checkpoint"
	"care/internal/compiler"
	"care/internal/defense"
	"care/internal/hostenv"
	"care/internal/ir"
	"care/internal/machine"
	"care/internal/safeguard"

	// Pull the rival defense passes into every build's registry so a
	// plain name list selects them.
	_ "care/internal/defense/presage"
	_ "care/internal/defense/sfi"
)

// BuildOptions configures Build.
type BuildOptions struct {
	// OptLevel is 0 or 1 (the paper's evaluated configurations).
	OptLevel int
	// Defenses names the registered defense passes to run over the
	// optimised module, in list order (see internal/defense). Nil or
	// empty means an undefended baseline build; "care" selects CARE's
	// armor (recovery kernels + table), "presage"/"sfi" the detection
	// rivals, and lists compose ("care,presage").
	Defenses []string
	// Armor tunes the "care" pass (forwarded as its Tuning).
	Armor armor.Options
	// LibIndex positions a shared-library image; -1 (or 0 with IsLib
	// false) means the main executable. Use BuildLib for libraries.
	LibIndex int
	// IsLib marks a shared-library build.
	IsLib bool
}

// Binary is a built image plus its defense artifacts.
type Binary struct {
	Name string
	// Prog is the compiled image.
	Prog *machine.Program
	// RecoveryTable and RecoveryLib are the encoded CARE artifacts
	// (empty unless a repair pass such as "care" ran).
	RecoveryTable []byte
	RecoveryLib   []byte
	// DefenseStats describes each defense pass's run, keyed by pass
	// name ("care", "presage", ...).
	DefenseStats map[string]defense.Stats
	// Detects marks a binary instrumented by at least one
	// detection-only defense: its checks raise SIGTRAP traps, so a
	// Safeguard should be attached even without a recovery table.
	Detects bool
	// CompileTime is the plain compilation time (excluding defenses),
	// the paper's "Normal Compilation" column.
	CompileTime time.Duration
	// Census is the address-computation census of the (optimised)
	// module (Table 5).
	Census armor.CensusRow
	// Module is the post-defense IR (for analyses).
	Module *ir.Module
}

// Protected reports whether the binary carries recovery artifacts.
func (b *Binary) Protected() bool { return len(b.RecoveryTable) > 0 }

// Defended reports whether the binary needs a Safeguard attached:
// either it can repair (recovery table) or it can detect (SIGTRAP
// checks feeding the escalation chain).
func (b *Binary) Defended() bool { return b.Protected() || b.Detects }

// Build compiles a main-executable module with CARE. deps are
// previously built library binaries the module links against.
func Build(m *ir.Module, opts BuildOptions, deps ...*Binary) (*Binary, error) {
	var copts compiler.Options
	if opts.IsLib {
		copts = compiler.LibOptions(opts.OptLevel, opts.LibIndex)
	} else {
		copts = compiler.AppOptions(opts.OptLevel)
	}
	copts.ExternFuncs = map[string]machine.Word{}
	copts.ExternGlobals = map[string]machine.Word{}
	for _, d := range deps {
		for _, f := range d.Prog.Funcs {
			copts.ExternFuncs[f.Name] = d.Prog.AddrOf(f.Entry)
		}
		for _, g := range d.Prog.Globals {
			if !g.Extern {
				copts.ExternGlobals[g.Name] = g.Addr
			}
		}
	}

	// Run the optimisation pipeline up front so that every defense pass
	// analyses (and instruments) the same IR the code generator lowers.
	if opts.OptLevel >= 1 {
		compiler.Optimize(m)
	}
	copts.SkipOptimize = true

	passes, err := defense.Resolve(opts.Defenses)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	bin := &Binary{Name: m.Name, Module: m}
	// Census before instrumentation: the census describes the program's
	// own address computations, not the checks a defense inserts.
	bin.Census = armor.Census(m)

	var kernels *ir.Module
	var table []byte
	for _, pass := range passes {
		res, err := pass.Apply(m, defense.Options{
			OptLevel: opts.OptLevel,
			IsLib:    opts.IsLib,
			Tuning:   opts.Armor,
		})
		if err != nil {
			return nil, fmt.Errorf("core: defense %s: %w", pass.Name(), err)
		}
		if bin.DefenseStats == nil {
			bin.DefenseStats = map[string]defense.Stats{}
		}
		bin.DefenseStats[pass.Name()] = res.Stats
		if res.Kernels != nil {
			if kernels != nil {
				return nil, fmt.Errorf("core: defenses %v: more than one repair pass emitted recovery kernels", opts.Defenses)
			}
			kernels = res.Kernels
			table = res.Table
		}
		if d, ok := pass.(defense.Detector); ok && d.Detects() {
			bin.Detects = true
		}
	}

	t0 := time.Now()
	prog, err := compiler.Compile(m, copts)
	if err != nil {
		return nil, fmt.Errorf("core: compile %s: %w", m.Name, err)
	}
	bin.CompileTime = time.Since(t0)
	bin.Prog = prog

	if kernels != nil {
		// The recovery library is its own image, linked against the
		// application's globals and simple functions.
		kopts := compiler.LibOptions(opts.OptLevel, recoveryLibIndex(opts))
		kopts.ExternFuncs = map[string]machine.Word{}
		kopts.ExternGlobals = map[string]machine.Word{}
		for _, f := range prog.Funcs {
			kopts.ExternFuncs[f.Name] = prog.AddrOf(f.Entry)
		}
		for _, g := range prog.Globals {
			kopts.ExternGlobals[g.Name] = g.Addr
		}
		kprog, err := compiler.Compile(kernels, kopts)
		if err != nil {
			return nil, fmt.Errorf("core: compile recovery kernels: %w", err)
		}
		lib, err := kprog.Encode()
		if err != nil {
			return nil, err
		}
		bin.RecoveryLib = lib
		bin.RecoveryTable = table
	}
	return bin, nil
}

// BuildLib compiles a shared-library module (e.g. BLAS) with the given
// defense list. Library images occupy slot index (0-based).
func BuildLib(m *ir.Module, opt int, index int, defenses []string, deps ...*Binary) (*Binary, error) {
	return Build(m, BuildOptions{OptLevel: opt, IsLib: true, LibIndex: index, Defenses: defenses}, deps...)
}

// recoveryLibIndex maps an image to the library slot of its recovery
// library: main executable -> 64, library i -> 65+i. Slots below 64 are
// reserved for ordinary libraries.
func recoveryLibIndex(opts BuildOptions) int {
	if !opts.IsLib {
		return 64
	}
	return 65 + opts.LibIndex
}

// ProcessConfig assembles a process.
type ProcessConfig struct {
	// App is the main executable.
	App *Binary
	// Libs are additional images the app links against.
	Libs []*Binary
	// Protected attaches Safeguard.
	Protected bool
	// Safeguard tunes the runtime (zero value = paper configuration).
	Safeguard safeguard.Config
	// Env overrides the host environment (nil = fresh single-rank env).
	Env *hostenv.Env
	// Checkpoint, when non-nil and Protected, is wired into Safeguard's
	// rollback stage: an initial snapshot is saved at _start and, when
	// CheckpointEveryResults > 0, another each time the result stream
	// grows by that many values.
	Checkpoint             *checkpoint.Store
	CheckpointEveryResults int
	// Tier selects the interpreter tier for the process CPU: the fused
	// superblock engine (the zero-value default), the per-µop block
	// engine, or the legacy per-instruction Step loop. Results are
	// identical on every tier (the CI smoke diffs them); the knob
	// exists for that check and for timing comparisons.
	Tier machine.InterpTier
}

// Process is one simulated process: a CPU, its memory and images, and
// optionally the Safeguard runtime.
type Process struct {
	Mem    *machine.Memory
	CPU    *machine.CPU
	Env    *hostenv.Env
	App    *machine.Image
	Images []*machine.Image
	SG     *safeguard.Safeguard
	// Store is the checkpoint store backing the rollback stage (nil
	// unless ProcessConfig.Checkpoint was set).
	Store *checkpoint.Store
}

// newLoadedProcess assembles the address space shared by the cold and
// warm process paths: a fresh memory with every image loaded (read-only
// .text shared across processes, globals mapped copy-on-write) and
// attached to a new CPU, plus the Safeguard units of protected images.
func newLoadedProcess(cfg ProcessConfig) (*Process, []*safeguard.Unit, error) {
	if cfg.App == nil {
		return nil, nil, fmt.Errorf("core: no app binary")
	}
	mem := machine.NewMemory()
	env := cfg.Env
	if env == nil {
		env = hostenv.NewEnv()
	}
	cpu := machine.NewCPU(mem, env)
	cpu.Tier = cfg.Tier
	p := &Process{Mem: mem, CPU: cpu, Env: env}

	var units []*safeguard.Unit
	loadOne := func(b *Binary) (*machine.Image, error) {
		img, err := machine.Load(mem, b.Prog)
		if err != nil {
			return nil, err
		}
		cpu.Attach(img)
		p.Images = append(p.Images, img)
		if b.Protected() {
			units = append(units, &safeguard.Unit{
				Image:      img,
				TableBytes: b.RecoveryTable,
				LibBytes:   b.RecoveryLib,
			})
		}
		return img, nil
	}
	for _, lb := range cfg.Libs {
		if _, err := loadOne(lb); err != nil {
			return nil, nil, err
		}
	}
	app, err := loadOne(cfg.App)
	if err != nil {
		return nil, nil, err
	}
	p.App = app
	return p, units, nil
}

// NewProcess loads the binaries into a fresh address space and prepares
// execution at _start.
func NewProcess(cfg ProcessConfig) (*Process, error) {
	p, units, err := newLoadedProcess(cfg)
	if err != nil {
		return nil, err
	}
	cpu := p.CPU
	if err := cpu.InitStack(); err != nil {
		return nil, err
	}
	if err := cpu.Start(p.App, "_start"); err != nil {
		return nil, err
	}
	if cfg.Protected {
		p.SG = safeguard.Attach(cpu, units, cfg.Safeguard)
		if cfg.Checkpoint != nil {
			p.Store = cfg.Checkpoint
			p.SG.UseCheckpoints(cfg.Checkpoint)
			cfg.Checkpoint.Save(cpu, 0)
			checkpoint.AutoSave(cfg.Checkpoint, cpu, cfg.CheckpointEveryResults)
		}
	}
	return p, nil
}

// NewProcessFromSnapshot builds a process warm-started from a golden-run
// snapshot of the same binaries: images are loaded as usual (sharing the
// read-only code segments), then the snapshot's memory image, registers
// and host-environment streams are applied in place of InitStack/Start,
// so the process resumes mid-run at snapshot.CPU.Dyn. Because the
// snapshot's segments alias frozen bytes copy-on-write, any number of
// concurrent processes may warm-start from one snapshot.
//
// The golden prefix is fault-free, so a Safeguard attached after the
// restore holds exactly the state it would have held at that point of a
// cold run (no activations yet). A checkpoint store cannot be seeded
// this way — its _start snapshot would capture mid-run state and turn
// rollback into a semantic no-op — so cfg.Checkpoint must be nil.
func NewProcessFromSnapshot(cfg ProcessConfig, sn *checkpoint.Snapshot) (*Process, error) {
	if sn == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if cfg.Checkpoint != nil {
		return nil, fmt.Errorf("core: warm start cannot seed a checkpoint store (its initial snapshot would capture mid-run state)")
	}
	p, units, err := newLoadedProcess(cfg)
	if err != nil {
		return nil, err
	}
	sn.Apply(p.CPU)
	// Apply replaced every writable segment with the snapshot's, so the
	// images' global-segment handles must be re-resolved.
	for _, im := range p.Images {
		if im.GlobalSeg != nil {
			im.GlobalSeg = p.Mem.Find(im.Prog.GlobalBase)
		}
	}
	if cfg.Protected {
		p.SG = safeguard.Attach(p.CPU, units, cfg.Safeguard)
	}
	return p, nil
}

// Run executes until exit/trap/block/limit.
func (p *Process) Run(limit uint64) machine.RunStatus {
	return p.CPU.Run(limit)
}

// Results returns the values the program reported via result_f64 — the
// output stream used for golden comparison (SDC detection).
func (p *Process) Results() []float64 { return p.Env.Results }
