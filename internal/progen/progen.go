// Package progen generates random — but deterministic, seeded —
// mini-IR programs for differential testing: any generated program must
// produce bit-identical result streams under the IR interpreter, the O0
// image and the O1 image. The generator exercises nested loops,
// conditionals, loop-carried scalars, array loads/stores through GEPs,
// integer and float arithmetic, host math calls and direct calls to a
// generated helper function — with enough simultaneously-live values to
// force the register allocator to spill.
package progen

import (
	"fmt"
	"math/rand"

	"care/internal/ir"
	"care/internal/irbuild"
)

// Options bounds the generated program.
type Options struct {
	// Arrays is the number of global f64 arrays (default 3).
	Arrays int
	// ArrayLen is each array's element count (default 24).
	ArrayLen int
	// MaxDepth bounds control-flow nesting (default 3).
	MaxDepth int
	// Stmts is the number of statements per block (default 5).
	Stmts int
	// DenseBranches appends that many single-statement conditionals to
	// main — back-to-back short fallthrough chains split by branches,
	// the worst case for superblock formation (default 0).
	DenseBranches int
	// CallLadderDepth chains that many single-call helper functions,
	// so call/ret traffic walks deep and returns unwind through the
	// stack-segment inline cache (default 0).
	CallLadderDepth int
	// TightLoops appends that many two-or-three-instruction counted
	// self-loops — taken-branch dominated code with almost no
	// straight-line work between back edges (default 0).
	TightLoops int
}

func (o Options) def() Options {
	if o.Arrays == 0 {
		o.Arrays = 3
	}
	if o.ArrayLen == 0 {
		o.ArrayLen = 24
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 3
	}
	if o.Stmts == 0 {
		o.Stmts = 5
	}
	return o
}

type gen struct {
	rng    *rand.Rand
	fb     *irbuild.FB
	opts   Options
	arrays []*ir.Global
	// ints/floats are in-scope SSA values usable as operands.
	ints   []ir.Value
	floats []ir.Value
	helper *ir.Func
	// ladder is the top rung of the call ladder (nil unless
	// Options.CallLadderDepth > 0).
	ladder *ir.Func
}

// Generate builds a random module named progen<seed>.
func Generate(seed int64, opts Options) *ir.Module {
	opts = opts.def()
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule(fmt.Sprintf("progen%d", seed))
	g := &gen{rng: rng, opts: opts}
	for i := 0; i < opts.Arrays; i++ {
		init := make([]float64, opts.ArrayLen)
		for j := range init {
			init[j] = 2*rng.Float64() - 1
		}
		g.arrays = append(g.arrays, m.AddGlobal(&ir.Global{
			Name: fmt.Sprintf("arr%d", i), Size: int64(opts.ArrayLen) * 8, InitF64: init,
		}))
	}
	b := ir.NewBuilder(m)
	g.fb = irbuild.New(b)

	// A pure helper function callable from generated code (and treated
	// as a simple function by Armor).
	g.helper = b.NewFunc("mix", ir.I64, ir.Param("a", ir.I64), ir.Param("b", ir.I64))
	{
		a, bb := g.helper.Params[0], g.helper.Params[1]
		t := g.fb.Xor(g.fb.Mul(a, irbuild.I(31)), bb)
		g.fb.Ret(g.fb.And(t, irbuild.I(1<<20-1)))
	}

	// Each rung makes one call down and a little arithmetic, so a
	// single call at the top exercises a deep call/ret unwind.
	if opts.CallLadderDepth > 0 {
		prev := g.helper
		for i := 0; i < opts.CallLadderDepth; i++ {
			f := b.NewFunc(fmt.Sprintf("rung%d", i), ir.I64, ir.Param("a", ir.I64))
			a := f.Params[0]
			var v ir.Value
			if i == 0 {
				v = g.fb.Call(prev, a, irbuild.I(1)) // helper takes two args
			} else {
				v = g.fb.Call(prev, g.fb.Add(a, irbuild.I(int64(i))))
			}
			g.fb.Ret(g.fb.And(g.fb.Add(v, a), irbuild.I(1<<20-1)))
			prev = f
		}
		g.ladder = prev
	}

	b.NewFunc("main", ir.I64)
	g.ints = []ir.Value{irbuild.I(1), irbuild.I(7)}
	g.floats = []ir.Value{irbuild.F(0.5), irbuild.F(-1.25)}
	g.block(opts.MaxDepth)
	g.shapes()

	// Emit checksums of every array plus the live scalars.
	for _, a := range g.arrays {
		s := g.fb.For(irbuild.I(0), irbuild.I(int64(opts.ArrayLen)), 1,
			[]ir.Value{irbuild.F(0)}, func(i ir.Value, c []ir.Value) []ir.Value {
				return []ir.Value{g.fb.FAdd(c[0], g.fb.LoadAt(ir.F64, a, i))}
			})
		g.fb.Result(s[0])
	}
	g.fb.Result(g.intOperand())
	g.fb.Result(g.floatOperand())
	g.fb.Ret(irbuild.I(0))

	if err := ir.VerifyModule(m); err != nil {
		panic("progen: generated invalid module: " + err.Error())
	}
	return m
}

// shapes appends the dispatch-stressing constructs the Options ask for:
// dense branch chains, tight self-loops and a call into the ladder.
func (g *gen) shapes() {
	for i := 0; i < g.opts.DenseBranches; i++ {
		g.fb.NewLine()
		cond := g.fb.ICmp(ir.OpICmpSLT, g.intOperand(), g.intOperand())
		out := g.fb.If(cond, func() []ir.Value {
			return []ir.Value{g.fb.Add(g.intOperand(), irbuild.I(int64(i+1)))}
		}, func() []ir.Value {
			return []ir.Value{g.fb.Xor(g.intOperand(), irbuild.I(int64(2*i+1)))}
		})
		g.ints = append(g.ints, g.fb.And(out[0], irbuild.I(1<<24-1)))
	}
	for i := 0; i < g.opts.TightLoops; i++ {
		g.fb.NewLine()
		out := g.fb.For(irbuild.I(0), irbuild.I(int64(3+i%5)), 1,
			[]ir.Value{g.intOperand()}, func(j ir.Value, c []ir.Value) []ir.Value {
				return []ir.Value{g.fb.And(g.fb.Add(c[0], j), irbuild.I(1<<24-1))}
			})
		g.ints = append(g.ints, out[0])
	}
	if g.ladder != nil {
		g.fb.NewLine()
		g.ints = append(g.ints, g.fb.Call(g.ladder, g.intOperand()))
	}
}

// scope snapshots the operand pools; the returned func restores them,
// dropping values that would not dominate code after the construct.
func (g *gen) scope() func() {
	ni, nf := len(g.ints), len(g.floats)
	return func() {
		g.ints = g.ints[:ni]
		g.floats = g.floats[:nf]
	}
}

func (g *gen) intOperand() ir.Value   { return g.ints[g.rng.Intn(len(g.ints))] }
func (g *gen) floatOperand() ir.Value { return g.floats[g.rng.Intn(len(g.floats))] }
func (g *gen) array() *ir.Global      { return g.arrays[g.rng.Intn(len(g.arrays))] }

// safeIndex wraps an arbitrary integer value into [0, ArrayLen) so the
// fault-free program never faults.
func (g *gen) safeIndex(v ir.Value) ir.Value {
	n := int64(g.opts.ArrayLen)
	r := g.fb.SRem(v, irbuild.I(n))
	return g.fb.SRem(g.fb.Add(r, irbuild.I(n)), irbuild.I(n))
}

func (g *gen) block(depth int) {
	for s := 0; s < g.opts.Stmts; s++ {
		g.fb.NewLine()
		switch k := g.rng.Intn(10); {
		case k < 3: // integer arithmetic
			ops := []func(a, b ir.Value) *ir.Instr{g.fb.Add, g.fb.Sub, g.fb.Mul, g.fb.And, g.fb.Or, g.fb.Xor}
			v := ops[g.rng.Intn(len(ops))](g.intOperand(), g.intOperand())
			g.ints = append(g.ints, g.fb.And(v, irbuild.I(1<<24-1)))
		case k < 5: // float arithmetic / math call
			switch g.rng.Intn(4) {
			case 0:
				g.floats = append(g.floats, g.fb.FAdd(g.floatOperand(), g.floatOperand()))
			case 1:
				g.floats = append(g.floats, g.fb.FMul(g.floatOperand(), irbuild.F(0.75)))
			case 2:
				g.floats = append(g.floats, g.fb.FSub(g.floatOperand(), g.floatOperand()))
			case 3:
				g.floats = append(g.floats, g.fb.HostCall("fabs", ir.F64, g.floatOperand()))
			}
		case k < 6: // helper call
			g.ints = append(g.ints, g.fb.Call(g.helper, g.intOperand(), g.intOperand()))
		case k < 7: // array load
			idx := g.safeIndex(g.intOperand())
			g.floats = append(g.floats, g.fb.LoadAt(ir.F64, g.array(), idx))
		case k < 8: // array store
			idx := g.safeIndex(g.intOperand())
			g.fb.StoreAt(g.floatOperand(), g.array(), idx)
		case k < 9 && depth > 0: // conditional with joined values
			cond := g.fb.ICmp(ir.OpICmpSLT, g.intOperand(), g.intOperand())
			a1, a2 := g.intOperand(), g.intOperand()
			f1, f2 := g.floatOperand(), g.floatOperand()
			out := g.fb.If(cond, func() []ir.Value {
				// Values defined inside the branch do not dominate the
				// join; scope the operand pools.
				defer g.scope()()
				g.block(depth - 1)
				return []ir.Value{g.fb.Add(a1, irbuild.I(3)), f1}
			}, func() []ir.Value {
				defer g.scope()()
				return []ir.Value{a2, g.fb.FMul(f2, irbuild.F(0.5))}
			})
			g.ints = append(g.ints, out[0])
			g.floats = append(g.floats, out[1])
		default: // loop with carried scalars
			if depth == 0 {
				g.ints = append(g.ints, g.fb.Add(g.intOperand(), irbuild.I(1)))
				continue
			}
			n := int64(2 + g.rng.Intn(5))
			carried := []ir.Value{g.intOperand(), g.floatOperand()}
			out := g.fb.For(irbuild.I(0), irbuild.I(n), 1, carried,
				func(i ir.Value, c []ir.Value) []ir.Value {
					defer g.scope()()
					// The loop-carried phis dominate the body; make
					// them available as operands within it.
					g.ints = append(g.ints, c[0])
					g.floats = append(g.floats, c[1])
					g.block(depth - 1)
					ni := g.fb.And(g.fb.Add(c[0], i), irbuild.I(1<<24-1))
					nf := g.fb.FAdd(c[1], irbuild.F(0.125))
					return []ir.Value{ni, nf}
				})
			g.ints = append(g.ints, out[0])
			g.floats = append(g.floats, out[1])
		}
	}
}
