package progen

import (
	"testing"

	"care/internal/core"
	"care/internal/defense"
	"care/internal/interp"
	"care/internal/machine"
)

// TestDifferentialFuzz is the compiler's strongest correctness check:
// randomly generated programs (nested loops, conditionals, carried
// scalars, array traffic, calls) must produce bit-identical result
// streams under the IR interpreter, the O0 image and the O1 image, and
// must also build and run with Armor enabled without behavioural change.
func TestDifferentialFuzz(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		m := Generate(seed, Options{})
		want, err := interp.Run(1<<28, m)
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		if len(want) == 0 {
			t.Fatalf("seed %d: no results", seed)
		}
		for _, opt := range []int{0, 1} {
			for _, withArmor := range []bool{false, true} {
				m2 := Generate(seed, Options{})
				bin, err := core.Build(m2, core.BuildOptions{OptLevel: opt, Defenses: defense.If(withArmor, "care")})
				if err != nil {
					t.Fatalf("seed %d O%d armor=%v: build: %v", seed, opt, withArmor, err)
				}
				p, err := core.NewProcess(core.ProcessConfig{App: bin, Protected: withArmor})
				if err != nil {
					t.Fatal(err)
				}
				if st := p.Run(100_000_000); st != machine.StatusExited {
					t.Fatalf("seed %d O%d armor=%v: %v (trap %v)", seed, opt, withArmor, st, p.CPU.PendingTrap)
				}
				got := p.Results()
				if len(got) != len(want) {
					t.Fatalf("seed %d O%d: %d results, want %d", seed, opt, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d O%d armor=%v: result[%d] = %v, want %v",
							seed, opt, withArmor, i, got[i], want[i])
					}
				}
				if withArmor && p.SG.Stats().Activations != 0 {
					t.Fatalf("seed %d: safeguard activated on a fault-free run", seed)
				}
			}
		}
	}
}

// TestGenerateDeterministic: the same seed yields the same module text.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, Options{}).String()
	b := Generate(42, Options{}).String()
	if a != b {
		t.Fatal("generator not deterministic")
	}
	c := Generate(43, Options{}).String()
	if a == c {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// TestSpillPressure generates a program with many simultaneously-live
// values and verifies the O1 register allocator spills correctly.
func TestSpillPressure(t *testing.T) {
	m := Generate(7, Options{Stmts: 40, MaxDepth: 2})
	want, err := interp.Run(1<<28, m)
	if err != nil {
		t.Fatal(err)
	}
	m2 := Generate(7, Options{Stmts: 40, MaxDepth: 2})
	bin, err := core.Build(m2, core.BuildOptions{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProcess(core.ProcessConfig{App: bin})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Run(100_000_000); st != machine.StatusExited {
		t.Fatalf("%v (%v)", st, p.CPU.PendingTrap)
	}
	got := p.Results()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
