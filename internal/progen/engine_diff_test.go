package progen

import (
	"fmt"
	"testing"

	"care/internal/core"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/trace"
)

// buildSeed compiles the progen module for one seed (fresh module per
// call — Build mutates the IR in place).
func buildSeed(t *testing.T, seed int64, opt int) *core.Binary {
	t.Helper()
	bin, err := core.Build(Generate(seed, Options{}), core.BuildOptions{OptLevel: opt, NoArmor: true})
	if err != nil {
		t.Fatalf("seed %d O%d: build: %v", seed, opt, err)
	}
	return bin
}

// newProc assembles a fresh process on the chosen interpreter loop.
func newProc(t *testing.T, bin *core.Binary, stepLoop bool) *core.Process {
	t.Helper()
	p, err := core.NewProcess(core.ProcessConfig{App: bin, StepLoop: stepLoop})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// requireSameMachineState compares the full architectural outcome of
// two runs: status, exit code, registers, PC, Dyn, result stream, trap
// identity, and every writable memory segment.
func requireSameMachineState(t *testing.T, block, step *core.Process) {
	t.Helper()
	bc, sc := block.CPU, step.CPU
	if bc.Status != sc.Status {
		t.Fatalf("status: block %v step %v", bc.Status, sc.Status)
	}
	if bc.Dyn != sc.Dyn {
		t.Errorf("Dyn: block %d step %d", bc.Dyn, sc.Dyn)
	}
	if bc.PC != sc.PC {
		t.Errorf("PC: block 0x%x step 0x%x", bc.PC, sc.PC)
	}
	if bc.ExitCode != sc.ExitCode {
		t.Errorf("exit code: block %d step %d", bc.ExitCode, sc.ExitCode)
	}
	if bc.R != sc.R {
		t.Errorf("R: block %v step %v", bc.R, sc.R)
	}
	if bc.F != sc.F {
		t.Errorf("F: block %v step %v", bc.F, sc.F)
	}
	bt, st := bc.PendingTrap, sc.PendingTrap
	if (bt == nil) != (st == nil) {
		t.Fatalf("trap: block %v step %v", bt, st)
	}
	if bt != nil && (bt.Sig != st.Sig || bt.PC != st.PC || bt.Addr != st.Addr || bt.Idx != st.Idx) {
		t.Errorf("trap identity differs:\n block %+v\n step  %+v", bt, st)
	}
	bres, sres := block.Results(), step.Results()
	if len(bres) != len(sres) {
		t.Fatalf("result count: block %d step %d", len(bres), len(sres))
	}
	for i := range bres {
		if bres[i] != sres[i] {
			t.Errorf("result[%d]: block %v step %v", i, bres[i], sres[i])
		}
	}
	bsegs, ssegs := block.Mem.Segments(), step.Mem.Segments()
	if len(bsegs) != len(ssegs) {
		t.Fatalf("segment count: block %d step %d", len(bsegs), len(ssegs))
	}
	for i := range bsegs {
		if bsegs[i].ReadOnly() {
			continue
		}
		if bsegs[i].Base != ssegs[i].Base || len(bsegs[i].Data) != len(ssegs[i].Data) {
			t.Fatalf("segment %d layout mismatch", i)
		}
		for j := range bsegs[i].Data {
			if bsegs[i].Data[j] != ssegs[i].Data[j] {
				t.Errorf("segment %s byte 0x%x differs", bsegs[i].Name, bsegs[i].Base+machine.Word(j))
				break
			}
		}
	}
}

// TestEngineDifferentialClean drives generated programs — loops,
// conditionals, array traffic, helper calls, host math calls — through
// the block engine and the legacy Step loop at O0 and O1, requiring
// identical machine state at exit.
func TestEngineDifferentialClean(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, opt := range []int{0, 1} {
			t.Run(fmt.Sprintf("seed%d/O%d", seed, opt), func(t *testing.T) {
				block := newProc(t, buildSeed(t, seed, opt), false)
				step := newProc(t, buildSeed(t, seed, opt), true)
				block.Run(100_000_000)
				step.Run(100_000_000)
				requireSameMachineState(t, block, step)
			})
		}
	}
}

// TestEngineDifferentialFaulted arms the same bit flip on both loops:
// the corrupted suffix (often ending in a trap) must diverge from the
// golden run identically, including the trap trace spans.
func TestEngineDifferentialFaulted(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	// High bits of an integer register make corrupted addresses
	// non-canonical (SIGSEGV); low bits skew values (SDC/benign).
	flips := [][]int{{41}, {3}, {62, 17}}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		bin0 := buildSeed(t, seed, 0)
		bin1 := buildSeed(t, seed, 1)
		for fi, bits := range flips {
			for _, bin := range []*core.Binary{bin0, bin1} {
				t.Run(fmt.Sprintf("seed%d/O%d/flip%d", seed, bin.Prog.OptLevel, fi), func(t *testing.T) {
					run := func(stepLoop bool) (*core.Process, *trace.Recorder) {
						p := newProc(t, bin, stepLoop)
						rec := trace.New(16)
						p.CPU.Trace = rec
						faultinject.Arm(p.CPU, faultinject.Trigger{AtDyn: 500 + uint64(seed)*137}, bits)
						p.Run(10_000_000)
						return p, rec
					}
					block, brec := run(false)
					step, srec := run(true)
					requireSameMachineState(t, block, step)
					bsp, ssp := brec.Spans(), srec.Spans()
					if len(bsp) != len(ssp) {
						t.Fatalf("trace spans: block %d step %d", len(bsp), len(ssp))
					}
					for i := range bsp {
						if bsp[i] != ssp[i] {
							t.Errorf("span %d differs:\n block %+v\n step  %+v", i, bsp[i], ssp[i])
						}
					}
				})
			}
		}
	}
}

// TestEngineDifferentialStopPC plants the stop sentinel at a PC sampled
// mid-run: both loops must exit on the same retirement with the same
// state (the Safeguard recovery-kernel return path depends on this).
func TestEngineDifferentialStopPC(t *testing.T) {
	for _, opt := range []int{0, 1} {
		// Sample a mid-run PC from a sliced step-loop run; scan seeds for
		// a program long enough to still be running at the probe point.
		var bin *core.Binary
		var stop machine.Word
		for seed := int64(1); seed <= 20; seed++ {
			b := buildSeed(t, seed, opt)
			probe := newProc(t, b, true)
			if probe.Run(2000) == machine.StatusLimit {
				bin, stop = b, probe.CPU.PC
				break
			}
		}
		if bin == nil {
			t.Fatal("no generated program runs past the probe point")
		}
		t.Run(fmt.Sprintf("O%d", opt), func(t *testing.T) {
			run := func(stepLoop bool) *core.Process {
				p := newProc(t, bin, stepLoop)
				p.CPU.StopPC = stop
				p.CPU.StopPCSet = true
				p.Run(10_000_000)
				return p
			}
			block, step := run(false), run(true)
			if block.CPU.Status != machine.StatusExited {
				t.Fatalf("stop sentinel not taken: %v", block.CPU.Status)
			}
			requireSameMachineState(t, block, step)
		})
	}
}
