package progen

import (
	"bytes"
	"fmt"
	"testing"

	"care/internal/core"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/trace"
)

// diffTiers are the fast engine tiers checked against the Step-loop
// reference.
var diffTiers = []machine.InterpTier{machine.TierSuperblock, machine.TierBlock}

// buildSeed compiles the progen module for one seed (fresh module per
// call — Build mutates the IR in place).
func buildSeed(t *testing.T, seed int64, opt int) *core.Binary {
	t.Helper()
	return buildOpts(t, seed, opt, Options{})
}

func buildOpts(t *testing.T, seed int64, opt int, gopts Options) *core.Binary {
	t.Helper()
	bin, err := core.Build(Generate(seed, gopts), core.BuildOptions{OptLevel: opt})
	if err != nil {
		t.Fatalf("seed %d O%d: build: %v", seed, opt, err)
	}
	return bin
}

// newProc assembles a fresh process on the chosen interpreter tier.
func newProc(t *testing.T, bin *core.Binary, tier machine.InterpTier) *core.Process {
	t.Helper()
	p, err := core.NewProcess(core.ProcessConfig{App: bin, Tier: tier})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// requireSameMachineState compares the full architectural outcome of
// two runs: status, exit code, registers, PC, Dyn, result stream, trap
// identity, and every writable memory segment.
func requireSameMachineState(t *testing.T, fast, step *core.Process) {
	t.Helper()
	bc, sc := fast.CPU, step.CPU
	if bc.Status != sc.Status {
		t.Fatalf("status: %v vs step %v", bc.Status, sc.Status)
	}
	if bc.Dyn != sc.Dyn {
		t.Errorf("Dyn: %d vs step %d", bc.Dyn, sc.Dyn)
	}
	if bc.PC != sc.PC {
		t.Errorf("PC: 0x%x vs step 0x%x", bc.PC, sc.PC)
	}
	if bc.ExitCode != sc.ExitCode {
		t.Errorf("exit code: %d vs step %d", bc.ExitCode, sc.ExitCode)
	}
	if bc.R != sc.R {
		t.Errorf("R: %v vs step %v", bc.R, sc.R)
	}
	if bc.F != sc.F {
		t.Errorf("F: %v vs step %v", bc.F, sc.F)
	}
	bt, st := bc.PendingTrap, sc.PendingTrap
	if (bt == nil) != (st == nil) {
		t.Fatalf("trap: %v vs step %v", bt, st)
	}
	if bt != nil && (bt.Sig != st.Sig || bt.PC != st.PC || bt.Addr != st.Addr || bt.Idx != st.Idx) {
		t.Errorf("trap identity differs:\n fast %+v\n step %+v", bt, st)
	}
	bres, sres := fast.Results(), step.Results()
	if len(bres) != len(sres) {
		t.Fatalf("result count: %d vs step %d", len(bres), len(sres))
	}
	for i := range bres {
		if bres[i] != sres[i] {
			t.Errorf("result[%d]: %v vs step %v", i, bres[i], sres[i])
		}
	}
	bsegs, ssegs := fast.Mem.Segments(), step.Mem.Segments()
	if len(bsegs) != len(ssegs) {
		t.Fatalf("segment count: %d vs step %d", len(bsegs), len(ssegs))
	}
	for i := range bsegs {
		if bsegs[i].ReadOnly() {
			continue
		}
		if bsegs[i].Base != ssegs[i].Base || len(bsegs[i].Data) != len(ssegs[i].Data) {
			t.Fatalf("segment %d layout mismatch", i)
		}
		for j := range bsegs[i].Data {
			if bsegs[i].Data[j] != ssegs[i].Data[j] {
				t.Errorf("segment %s byte 0x%x differs", bsegs[i].Name, bsegs[i].Base+machine.Word(j))
				break
			}
		}
	}
}

// requireSameTraceJSONL byte-compares the exported trace streams.
func requireSameTraceJSONL(t *testing.T, fast, step *trace.Recorder, tier machine.InterpTier) {
	t.Helper()
	var fj, sj bytes.Buffer
	if err := fast.WriteJSONL(&fj); err != nil {
		t.Fatal(err)
	}
	if err := step.WriteJSONL(&sj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fj.Bytes(), sj.Bytes()) {
		t.Errorf("trace JSONL differs between %v engine and step loop", tier)
	}
}

// TestEngineDifferentialClean drives generated programs — loops,
// conditionals, array traffic, helper calls, host math calls — through
// every fast tier and the legacy Step loop at O0 and O1, requiring
// identical machine state at exit.
func TestEngineDifferentialClean(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, opt := range []int{0, 1} {
			t.Run(fmt.Sprintf("seed%d/O%d", seed, opt), func(t *testing.T) {
				step := newProc(t, buildSeed(t, seed, opt), machine.TierStep)
				step.Run(100_000_000)
				for _, tier := range diffTiers {
					fast := newProc(t, buildSeed(t, seed, opt), tier)
					fast.Run(100_000_000)
					requireSameMachineState(t, fast, step)
				}
			})
		}
	}
}

// TestEngineDifferentialFaulted arms the same bit flip on every tier:
// the corrupted suffix (often ending in a trap) must diverge from the
// golden run identically, including byte-identical trace JSONL.
func TestEngineDifferentialFaulted(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	// High bits of an integer register make corrupted addresses
	// non-canonical (SIGSEGV); low bits skew values (SDC/benign).
	flips := [][]int{{41}, {3}, {62, 17}}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		bin0 := buildSeed(t, seed, 0)
		bin1 := buildSeed(t, seed, 1)
		for fi, bits := range flips {
			for _, bin := range []*core.Binary{bin0, bin1} {
				t.Run(fmt.Sprintf("seed%d/O%d/flip%d", seed, bin.Prog.OptLevel, fi), func(t *testing.T) {
					run := func(tier machine.InterpTier) (*core.Process, *trace.Recorder) {
						p := newProc(t, bin, tier)
						rec := trace.New(16)
						p.CPU.Trace = rec
						faultinject.Arm(p.CPU, faultinject.Trigger{AtDyn: 500 + uint64(seed)*137}, bits)
						p.Run(10_000_000)
						return p, rec
					}
					step, srec := run(machine.TierStep)
					for _, tier := range diffTiers {
						fast, frec := run(tier)
						requireSameMachineState(t, fast, step)
						requireSameTraceJSONL(t, frec, srec, tier)
					}
				})
			}
		}
	}
}

// TestEngineDifferentialStopPC plants the stop sentinel at a PC sampled
// mid-run: every tier must exit on the same retirement with the same
// state (the Safeguard recovery-kernel return path depends on this).
func TestEngineDifferentialStopPC(t *testing.T) {
	for _, opt := range []int{0, 1} {
		// Sample a mid-run PC from a sliced step-loop run; scan seeds for
		// a program long enough to still be running at the probe point.
		var bin *core.Binary
		var stop machine.Word
		for seed := int64(1); seed <= 20; seed++ {
			b := buildSeed(t, seed, opt)
			probe := newProc(t, b, machine.TierStep)
			if probe.Run(2000) == machine.StatusLimit {
				bin, stop = b, probe.CPU.PC
				break
			}
		}
		if bin == nil {
			t.Fatal("no generated program runs past the probe point")
		}
		t.Run(fmt.Sprintf("O%d", opt), func(t *testing.T) {
			run := func(tier machine.InterpTier) *core.Process {
				p := newProc(t, bin, tier)
				p.CPU.StopPC = stop
				p.CPU.StopPCSet = true
				p.Run(10_000_000)
				return p
			}
			step := run(machine.TierStep)
			for _, tier := range diffTiers {
				fast := run(tier)
				if fast.CPU.Status != machine.StatusExited {
					t.Fatalf("%v: stop sentinel not taken: %v", tier, fast.CPU.Status)
				}
				requireSameMachineState(t, fast, step)
			}
		})
	}
}

// TestEngineDifferentialShapes generates the dispatch-stressing shapes
// — dense branch chains, call/ret ladders, tight self-loops — that
// specifically exercise superblock entry/exit and the stack-segment
// inline cache, and runs each clean, faulted, and with a StopPC probe
// through all three tiers.
func TestEngineDifferentialShapes(t *testing.T) {
	shapes := Options{DenseBranches: 24, CallLadderDepth: 6, TightLoops: 8}
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, opt := range []int{0, 1} {
			bin := buildOpts(t, seed, opt, shapes)
			t.Run(fmt.Sprintf("seed%d/O%d/clean", seed, opt), func(t *testing.T) {
				run := func(tier machine.InterpTier) (*core.Process, *trace.Recorder) {
					p := newProc(t, bin, tier)
					rec := trace.New(16)
					p.CPU.Trace = rec
					p.Run(100_000_000)
					return p, rec
				}
				step, srec := run(machine.TierStep)
				for _, tier := range diffTiers {
					fast, frec := run(tier)
					requireSameMachineState(t, fast, step)
					requireSameTraceJSONL(t, frec, srec, tier)
				}
			})
			t.Run(fmt.Sprintf("seed%d/O%d/faulted", seed, opt), func(t *testing.T) {
				run := func(tier machine.InterpTier) (*core.Process, *trace.Recorder) {
					p := newProc(t, bin, tier)
					rec := trace.New(16)
					p.CPU.Trace = rec
					faultinject.Arm(p.CPU, faultinject.Trigger{AtDyn: 400 + uint64(seed)*91}, []int{41})
					p.Run(10_000_000)
					return p, rec
				}
				step, srec := run(machine.TierStep)
				for _, tier := range diffTiers {
					fast, frec := run(tier)
					requireSameMachineState(t, fast, step)
					requireSameTraceJSONL(t, frec, srec, tier)
				}
			})
			t.Run(fmt.Sprintf("seed%d/O%d/stop-pc", seed, opt), func(t *testing.T) {
				probe := newProc(t, bin, machine.TierStep)
				if probe.Run(1500) != machine.StatusLimit {
					t.Skip("program too short for the probe point")
				}
				stop := probe.CPU.PC
				run := func(tier machine.InterpTier) *core.Process {
					p := newProc(t, bin, tier)
					p.CPU.StopPC = stop
					p.CPU.StopPCSet = true
					p.Run(10_000_000)
					return p
				}
				step := run(machine.TierStep)
				for _, tier := range diffTiers {
					fast := run(tier)
					if fast.CPU.Status != machine.StatusExited {
						t.Fatalf("%v: stop sentinel not taken: %v", tier, fast.CPU.Status)
					}
					requireSameMachineState(t, fast, step)
				}
			})
		}
	}
}
