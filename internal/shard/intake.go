package shard

import (
	"fmt"

	"care/internal/faultinject"
)

// intake is the coordinator's batch/flush funnel: shard runners feed
// trial batches through a channel as they stream off the wire, and a
// single collector goroutine slots them by trial index. Batching
// decouples worker read loops from merge work, and the single collector
// makes index bookkeeping race-free without locks. Once every runner
// has finished, finish() hands the fully-ordered trial slice to
// Campaign.MergeResults — the in-order merge that keeps a sharded
// campaign byte-identical to a single-process one.
type intake struct {
	ch       chan []faultinject.TrialResult
	done     chan struct{}
	n        int
	trials   []faultinject.TrialResult
	got      []bool
	count    int
	progress func(done, total int)
	err      error
}

func newIntake(n int, progress func(done, total int)) *intake {
	in := &intake{
		ch:       make(chan []faultinject.TrialResult, 16),
		done:     make(chan struct{}),
		n:        n,
		trials:   make([]faultinject.TrialResult, n),
		got:      make([]bool, n),
		progress: progress,
	}
	go in.collect()
	return in
}

func (in *intake) collect() {
	defer close(in.done)
	for batch := range in.ch {
		for i := range batch {
			t := &batch[i]
			switch {
			case t.Index < 0 || t.Index >= in.n:
				in.setErr(fmt.Errorf("shard: trial index %d outside campaign [0,%d)", t.Index, in.n))
			case in.got[t.Index]:
				in.setErr(fmt.Errorf("shard: trial %d delivered twice", t.Index))
			default:
				in.got[t.Index] = true
				in.trials[t.Index] = *t
				in.count++
				if in.progress != nil {
					in.progress(in.count, in.n)
				}
			}
		}
	}
}

// setErr keeps the first failure; later batches still drain so feeders
// never block on a dead collector.
func (in *intake) setErr(err error) {
	if in.err == nil {
		in.err = err
	}
}

// feed hands one batch to the collector. Safe from multiple goroutines.
func (in *intake) feed(batch []faultinject.TrialResult) {
	if len(batch) > 0 {
		in.ch <- batch
	}
}

// finish closes the funnel, waits for the collector to drain, and
// returns the index-ordered results. Every index must have arrived
// exactly once.
func (in *intake) finish() ([]faultinject.TrialResult, error) {
	close(in.ch)
	<-in.done
	if in.err != nil {
		return nil, in.err
	}
	if in.count != in.n {
		return nil, fmt.Errorf("shard: %d of %d trials delivered", in.count, in.n)
	}
	return in.trials, nil
}
