package shard

import (
	"bytes"
	"io"
	"runtime"
	"testing"
)

// bigBatchFrame builds a batch frame carrying ~1 MiB of trial trace
// payload, the shape that dominates the wire in a real campaign.
func bigBatchFrame() (*frame, int) {
	payload := bytes.Repeat([]byte(`{"type":"span","kind":"trial","id":0}`+"\n"), 1<<15)
	f := &frame{Type: frameBatch}
	for i := 0; i < 2; i++ {
		f.Trials = append(f.Trials, wireTrial{Index: i, TraceJSONL: payload})
	}
	return f, 2 * len(payload)
}

// allocBytesPerOp measures heap bytes allocated per call of fn.
func allocBytesPerOp(t *testing.T, runs int, fn func()) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / uint64(runs)
}

// TestWriteFramePooledAllocation pins the sync.Pool reuse in
// writeFrame: encoding a ~1 MiB frame must not allocate a fresh
// payload-sized buffer per call once the pool is warm.
func TestWriteFramePooledAllocation(t *testing.T) {
	f, payload := bigBatchFrame()
	// Warm the pool.
	for i := 0; i < 4; i++ {
		if err := writeFrame(io.Discard, f); err != nil {
			t.Fatal(err)
		}
	}
	got := allocBytesPerOp(t, 50, func() {
		if err := writeFrame(io.Discard, f); err != nil {
			t.Fatal(err)
		}
	})
	// The encoder's base64 output (~4/3 x payload) lands in the pooled
	// buffer; per-op garbage must stay well under one payload. Without
	// the pool this measures >1.3x payload.
	if limit := uint64(payload) / 2; got > limit {
		t.Fatalf("writeFrame allocates %d B/op, want <= %d (pool not reused?)", got, limit)
	}
}

// TestReadFramePooledAllocation pins the pooled decode body: per-op
// allocation must cover only the decoded fields handed to the caller
// (~1x payload), not also a fresh frame-sized read buffer (~2.3x).
func TestReadFramePooledAllocation(t *testing.T) {
	f, payload := bigBatchFrame()
	var buf bytes.Buffer
	if err := writeFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	read := func() {
		g, err := readFrame(bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Trials) != len(f.Trials) {
			t.Fatalf("round trip lost trials")
		}
	}
	for i := 0; i < 4; i++ {
		read() // warm the pool
	}
	got := allocBytesPerOp(t, 50, read)
	if limit := uint64(payload) * 2; got > limit {
		t.Fatalf("readFrame allocates %d B/op, want <= %d (body pool not reused?)", got, limit)
	}
}

// TestSmallFrameSteadyStateAllocs pins the control-plane frames (run /
// done / exit) to a near-zero allocation budget per round trip.
func TestSmallFrameSteadyStateAllocs(t *testing.T) {
	f := &frame{Type: frameRun, Lo: 10, Hi: 20}
	var buf bytes.Buffer
	for i := 0; i < 4; i++ {
		buf.Reset()
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		if _, err := readFrame(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf.Reset()
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		g, err := readFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if g.Lo != 10 || g.Hi != 20 {
			t.Fatal("round trip corrupted range")
		}
	})
	// Encoder + decoder scratch and the returned frame; anything above
	// this means a per-frame buffer crept back in.
	if allocs > 16 {
		t.Fatalf("small frame round trip allocates %.0f objects/op, want <= 16", allocs)
	}
}

// TestFrameRoundTripAfterPooling guards the correctness edge of reuse:
// interleaved frames of different sizes must never leak bytes from a
// previous (larger) frame into a later one.
func TestFrameRoundTripAfterPooling(t *testing.T) {
	big, _ := bigBatchFrame()
	small := &frame{Type: frameDone, Lo: 1, Hi: 2}
	for i := 0; i < 8; i++ {
		var buf bytes.Buffer
		if err := writeFrame(&buf, big); err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(&buf, small); err != nil {
			t.Fatal(err)
		}
		r := bytes.NewReader(buf.Bytes())
		g1, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if g1.Type != frameBatch || len(g1.Trials) != 2 {
			t.Fatalf("big frame corrupted: %+v", g1.Type)
		}
		if g2.Type != frameDone || g2.Lo != 1 || g2.Hi != 2 || len(g2.Trials) != 0 {
			t.Fatalf("small frame corrupted after pooled reuse: %+v", g2)
		}
	}
}
