package shard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"care/internal/faultinject"
	"care/internal/parallel"
	"care/internal/profiler"
)

// Range is one shard's contiguous slice of an index space.
type Range struct{ Lo, Hi int }

// Ranges partitions [0, n) into count contiguous shards with the
// balanced s*n/count boundaries (shard sizes differ by at most one).
func Ranges(n, count int) []Range {
	rs := make([]Range, count)
	for s := 0; s < count; s++ {
		rs[s] = Range{Lo: s * n / count, Hi: (s + 1) * n / count}
	}
	return rs
}

// shardCount clamps a Shards knob to [1, n].
func shardCount(shards, n int) int {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	return shards
}

// RunCampaign executes a campaign under the shard coordinator: the
// golden profile is captured once here, the trial index space splits
// into c.Shards contiguous ranges, and each range runs either in a
// spawned c.ShardExec subprocess (the worker rebuilds the binary from
// build, skips the golden run, and streams results back) or in-process.
// Either way every trial result round-trips the wire encoding, and the
// intake re-orders them by trial index before Campaign.MergeResults —
// so the CampaignResult, trace included, is byte-identical to
// c.Run()'s for every shard × worker combination.
func RunCampaign(c *faultinject.Campaign, build BuildSpec) (*faultinject.CampaignResult, error) {
	prof, err := c.Prepare()
	if err != nil {
		return nil, err
	}
	shards := shardCount(c.Shards, c.N)
	ranges := Ranges(c.N, shards)
	in := newIntake(c.N, c.Progress)

	var spec *WorkerSpec
	if len(c.ShardExec) > 0 {
		// With a store attached, snapshot memory ships as hash references
		// and every worker fetches (verified) bytes from the shared
		// directory — one copy on disk instead of one payload per worker.
		wp, deduped := encodeProfileDedup(prof, c.Store)
		spec = &WorkerSpec{Build: build, Campaign: campaignSpecOf(c), Profile: wp}
		if deduped {
			spec.StoreDir = c.Store.Dir()
		}
	}
	runErr := parallel.ForEach(shards, shards, func(s int) error {
		r := ranges[s]
		if r.Lo == r.Hi {
			return nil
		}
		if spec != nil {
			return runCampaignShardProc(c.ShardExec, spec, r, in)
		}
		return runCampaignShardLocal(c, prof, r, in)
	})
	trials, inErr := in.finish()
	if runErr != nil {
		return nil, runErr
	}
	if inErr != nil {
		return nil, inErr
	}
	return c.MergeResults(prof, trials)
}

// runCampaignShardLocal runs one shard in-process. Results still
// round-trip the wire encoding (encode → decode) so the in-process mode
// exercises the exact fidelity the subprocess path depends on — tests
// that pass here and fail in subprocess mode can only be blaming the
// transport, not the encoding.
func runCampaignShardLocal(c *faultinject.Campaign, prof *profiler.Profile, r Range, in *intake) error {
	trials, err := c.RunTrialRange(prof, r.Lo, r.Hi)
	if err != nil {
		return err
	}
	out := make([]faultinject.TrialResult, 0, len(trials))
	for i := range trials {
		wt, err := encodeTrial(&trials[i])
		if err != nil {
			return err
		}
		t, err := decodeTrial(&wt)
		if err != nil {
			return err
		}
		out = append(out, t)
	}
	in.feed(out)
	return nil
}

// runCampaignShardProc spawns one worker subprocess for the shard and
// streams its batches into the intake.
func runCampaignShardProc(argv []string, spec *WorkerSpec, r Range, in *intake) error {
	p, err := startWorker(argv, spec)
	if err != nil {
		return err
	}
	defer p.kill()
	err = p.run(r, func(f *frame) error {
		batch := make([]faultinject.TrialResult, 0, len(f.Trials))
		for i := range f.Trials {
			t, err := decodeTrial(&f.Trials[i])
			if err != nil {
				return err
			}
			batch = append(batch, t)
		}
		in.feed(batch)
		return nil
	})
	if err != nil {
		return err
	}
	return p.close()
}

// RunCoverage executes a coverage experiment under the shard
// coordinator. Waves of the attempt index space are split contiguously
// across the shard pool (persistent subprocesses in ShardExec mode,
// direct calls in-process); each wave's attempts merge strictly in
// index order with the early-stop check before every merge, so the
// result is identical to CoverageExperiment.Run for any shard layout —
// the stop index is a property of the attempt sequence, not of how the
// waves were cut.
func RunCoverage(e *faultinject.CoverageExperiment, build BuildSpec) (*faultinject.CoverageResult, error) {
	prof, err := e.Prepare()
	if err != nil {
		return nil, err
	}
	budget := e.AttemptBudget()
	shards := shardCount(e.Shards, budget)
	res := e.NewResult()

	// Per-shard wave chunk mirrors the single-process speculation chunk
	// (4 attempts per worker slot), so a one-shard run does the same
	// waves Run would.
	chunk := 4 * parallel.Workers(e.Workers, budget)
	var pool []*workerProc
	if len(e.ShardExec) > 0 {
		wp, deduped := encodeProfileDedup(prof, e.Store)
		spec := &WorkerSpec{Build: build, Coverage: coverageSpecOf(e), Profile: wp}
		if deduped {
			spec.StoreDir = e.Store.Dir()
		}
		pool = make([]*workerProc, shards)
		defer func() {
			for _, p := range pool {
				if p != nil {
					p.kill()
				}
			}
		}()
		for s := range pool {
			if pool[s], err = startWorker(e.ShardExec, spec); err != nil {
				return nil, err
			}
		}
	}

	var done int
	for base := 0; base < budget && res.SigsegvTrials < e.Trials; base += shards * chunk {
		hi := base + shards*chunk
		if hi > budget {
			hi = budget
		}
		atts := make([]faultinject.AttemptResult, hi-base)
		waveRanges := Ranges(hi-base, shards)
		err := parallel.ForEach(shards, shards, func(s int) error {
			r := Range{Lo: base + waveRanges[s].Lo, Hi: base + waveRanges[s].Hi}
			if r.Lo == r.Hi {
				return nil
			}
			if pool != nil {
				return pool[s].run(r, func(f *frame) error {
					for i := range f.Attempts {
						a, err := decodeAttempt(&f.Attempts[i])
						if err != nil {
							return err
						}
						if a.Index < base || a.Index >= hi {
							return fmt.Errorf("shard: attempt index %d outside wave [%d,%d)", a.Index, base, hi)
						}
						atts[a.Index-base] = a
					}
					return nil
				})
			}
			part, err := e.RunAttemptRange(prof, r.Lo, r.Hi)
			if err != nil {
				return err
			}
			for i := range part {
				// The loopback wire round trip, as in the campaign path.
				wa, err := encodeAttempt(&part[i])
				if err != nil {
					return err
				}
				a, err := decodeAttempt(&wa)
				if err != nil {
					return err
				}
				atts[a.Index-base] = a
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := range atts {
			if res.SigsegvTrials >= e.Trials {
				break // speculative overshoot; discard to stay deterministic
			}
			res.MergeAttempt(&atts[i], e.RecordInjections)
			done++
			if e.Progress != nil {
				e.Progress(done, budget)
			}
		}
	}
	for _, p := range pool {
		if err := p.close(); err != nil {
			return nil, err
		}
	}
	if res.SigsegvTrials < e.Trials {
		return res, fmt.Errorf("faultinject: only %d/%d SIGSEGV trials after %d attempts",
			res.SigsegvTrials, e.Trials, res.Attempts)
	}
	return res, nil
}

// workerProc is one live worker subprocess speaking the shard protocol
// on its stdin/stdout; its stderr passes through to ours.
type workerProc struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	out  *bufio.Reader
	once sync.Once
}

// startWorker spawns argv, wires the pipes, and sends the spec frame.
func startWorker(argv []string, spec *WorkerSpec) (*workerProc, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("shard: empty worker command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("shard: start worker %v: %w", argv, err)
	}
	p := &workerProc{cmd: cmd, in: stdin, out: bufio.NewReaderSize(stdout, 1<<16)}
	if err := writeFrame(p.in, &frame{Type: frameSpec, Spec: spec}); err != nil {
		p.kill()
		return nil, fmt.Errorf("shard: send spec: %w", err)
	}
	return p, nil
}

// run dispatches one range to the worker and hands every batch frame to
// onBatch until the worker's done frame.
func (p *workerProc) run(r Range, onBatch func(*frame) error) error {
	if err := writeFrame(p.in, &frame{Type: frameRun, Lo: r.Lo, Hi: r.Hi}); err != nil {
		return fmt.Errorf("shard: send run [%d,%d): %w", r.Lo, r.Hi, err)
	}
	for {
		f, err := readFrame(p.out)
		if err != nil {
			return fmt.Errorf("shard: worker stream: %w", err)
		}
		switch f.Type {
		case frameBatch:
			if err := onBatch(f); err != nil {
				return err
			}
		case frameDone:
			if f.Lo != r.Lo || f.Hi != r.Hi {
				return fmt.Errorf("shard: worker finished [%d,%d), expected [%d,%d)", f.Lo, f.Hi, r.Lo, r.Hi)
			}
			return nil
		case frameError:
			return fmt.Errorf("shard: worker: %s", f.Err)
		default:
			return fmt.Errorf("shard: unexpected %q frame from worker", f.Type)
		}
	}
}

// close asks the worker to exit and reaps it.
func (p *workerProc) close() error {
	var err error
	p.once.Do(func() {
		if werr := writeFrame(p.in, &frame{Type: frameExit}); werr != nil {
			err = werr
		}
		p.in.Close()
		if werr := p.cmd.Wait(); werr != nil && err == nil {
			err = fmt.Errorf("shard: worker exit: %w", werr)
		}
	})
	return err
}

// kill tears the worker down without ceremony (error paths; close is
// the graceful shutdown and makes kill a no-op afterwards).
func (p *workerProc) kill() {
	p.once.Do(func() {
		p.in.Close()
		_ = p.cmd.Process.Kill()
		_ = p.cmd.Wait()
	})
}
