package shard

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"care/internal/faultinject"
	"care/internal/store"
)

func openStoreT(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestProfileWireDedupRoundTrip: the store-backed encoding must decode
// to the same profile the inline encoding does, bit for bit.
func TestProfileWireDedupRoundTrip(t *testing.T) {
	build := BuildSpec{Workload: "HPCCG"}
	bin := buildSpecOrDie(t, build)
	c := &faultinject.Campaign{App: bin, N: 4, Seed: 3, WarmStart: true}
	prof, err := c.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Snaps) == 0 {
		t.Fatal("warm-start profile has no snapshots")
	}
	st := openStoreT(t)
	wp, ok := encodeProfileDedup(prof, st)
	if !ok {
		t.Fatal("encodeProfileDedup fell back with a healthy store")
	}
	for i := range wp.Snaps {
		if wp.Snaps[i].State.Mem != nil {
			t.Fatalf("snap %d still ships inline memory", i)
		}
		if len(wp.Snaps[i].State.SegRefs) == 0 {
			t.Fatalf("snap %d ships no segment refs", i)
		}
	}
	got, err := decodeProfile(&wp, st)
	if err != nil {
		t.Fatal(err)
	}
	inline := encodeProfile(prof)
	want, err := decodeProfile(&inline, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalDyn != want.TotalDyn || len(got.Snaps) != len(want.Snaps) {
		t.Fatalf("deduped profile shape differs: %d/%d snaps", len(got.Snaps), len(want.Snaps))
	}
	for i := range got.Snaps {
		g, w := got.Snaps[i].State, want.Snaps[i].State
		if g.CPU != w.CPU || g.Mem.HeapNext != w.Mem.HeapNext {
			t.Fatalf("snap %d header differs", i)
		}
		if !reflect.DeepEqual(g.Mem.Segs, w.Mem.Segs) {
			t.Fatalf("snap %d memory differs", i)
		}
	}
	for i := range got.Golden {
		if math.Float64bits(got.Golden[i]) != math.Float64bits(want.Golden[i]) {
			t.Fatalf("golden[%d] bits differ", i)
		}
	}
	if st.Counter(store.CounterBlobPuts) == 0 {
		t.Fatal("no blobs written")
	}
}

// TestProfileWireDedupSharesBlobs: a second coordinator encoding into
// the same store (shards 1 then shards 4 of the same campaign) must
// dedup every segment blob.
func TestProfileWireDedupSharesBlobs(t *testing.T) {
	build := BuildSpec{Workload: "HPCCG"}
	bin := buildSpecOrDie(t, build)
	c := &faultinject.Campaign{App: bin, N: 4, Seed: 3, WarmStart: true}
	prof, err := c.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := encodeProfileDedup(prof, s1); !ok {
		t.Fatal("first encode fell back")
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := encodeProfileDedup(prof, s2); !ok {
		t.Fatal("second encode fell back")
	}
	if n := s2.Counter(store.CounterBlobPuts); n != 0 {
		t.Fatalf("second encode wrote %d fresh blobs, want 0", n)
	}
	if n := s2.Counter(store.CounterBlobDedup); n == 0 {
		t.Fatal("second encode recorded no dedup hits")
	}
}

// TestDecodeProfileRefsWithoutStore: segment references without a
// store are a loud error, not a silent empty profile.
func TestDecodeProfileRefsWithoutStore(t *testing.T) {
	build := BuildSpec{Workload: "HPCCG"}
	bin := buildSpecOrDie(t, build)
	c := &faultinject.Campaign{App: bin, N: 4, Seed: 3, WarmStart: true}
	prof, err := c.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	st := openStoreT(t)
	wp, ok := encodeProfileDedup(prof, st)
	if !ok {
		t.Fatal("encode fell back")
	}
	if _, err := decodeProfile(&wp, nil); err == nil {
		t.Fatal("decode without store must error")
	}
}

// TestDecodeProfileCorruptBlobFailsLoudly: a worker that cannot verify
// a fetched segment must error, never run on unverified memory.
func TestDecodeProfileCorruptBlobFailsLoudly(t *testing.T) {
	build := BuildSpec{Workload: "HPCCG"}
	bin := buildSpecOrDie(t, build)
	c := &faultinject.Campaign{App: bin, N: 4, Seed: 3, WarmStart: true}
	prof, err := c.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	st := openStoreT(t)
	wp, ok := encodeProfileDedup(prof, st)
	if !ok {
		t.Fatal("encode fell back")
	}
	// Flip a byte in every blob.
	filepath.Walk(filepath.Join(st.Dir(), "blobs"), func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		b[0] ^= 0x01
		return os.WriteFile(path, b, 0o644)
	})
	if _, err := decodeProfile(&wp, st); err == nil {
		t.Fatal("decode of corrupt blobs must error")
	}
}

// TestCampaignShardStoreEquivalence is the wire-dedup contract end to
// end: subprocess workers fetching segments from a shared store produce
// byte-identical results to the single-process cold run.
func TestCampaignShardStoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	t.Setenv("CARE_SHARD_SERVE", "1")
	build := BuildSpec{Workload: "HPCCG"}
	bin := buildSpecOrDie(t, build)
	base := func() *faultinject.Campaign {
		return &faultinject.Campaign{
			App: bin, N: 18, Model: faultinject.SingleBit, Seed: 11,
			Workers: 1, Trace: true, WarmStart: true,
		}
	}
	single, err := base().Run()
	if err != nil {
		t.Fatal(err)
	}
	st := openStoreT(t)
	c := base()
	c.Shards = 3
	c.ShardExec = selfExec()
	c.Store = st
	c.StoreKey = store.Key{Kind: "campaign", Workload: "HPCCG", Seed: 11}
	res, err := RunCampaign(c, build)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := scrubCampaign(single), scrubCampaign(res); !reflect.DeepEqual(a, b) {
		t.Fatalf("store-sharded result differs from single-process:\n%+v\nvs\n%+v", b, a)
	}
	if want, got := scrubJSONL(t, single.Trace), scrubJSONL(t, res.Trace); got != want {
		t.Fatalf("store-sharded trace JSONL differs (%d vs %d bytes)", len(got), len(want))
	}
	if st.Counter(store.CounterBlobPuts) == 0 {
		t.Fatal("coordinator shipped no blobs through the store")
	}
	// A second identical sharded campaign into the same store is a
	// golden cache hit AND pure wire dedup.
	c2 := base()
	c2.Shards = 3
	c2.ShardExec = selfExec()
	c2.Store = st
	c2.StoreKey = c.StoreKey
	res2, err := RunCampaign(c2, build)
	if err != nil {
		t.Fatal(err)
	}
	if want, got := scrubJSONL(t, res.Trace), scrubJSONL(t, res2.Trace); got != want {
		t.Fatalf("cache-hit sharded trace differs from first run")
	}
	if st.Counter(store.CounterGoldenHits) == 0 {
		t.Fatal("second campaign did not hit the golden cache")
	}
}
