package shard

import (
	"fmt"
	"testing"

	"care/internal/faultinject"
)

// BenchmarkCampaignSharded is the coordinator's scaling record: one
// HPCCG campaign split over worker subprocesses (the -shards CLI path,
// workers re-exec this test binary in Serve mode), swept over shard ×
// per-shard-worker combinations against the single-process baseline.
// Every row computes the identical CampaignResult — the speedup column
// is the only thing allowed to move. On a multi-core runner the 4-shard
// row should clear 1.5x the single-process trials/s; on a single
// hardware thread sharding only adds process overhead, so the absolute
// numbers in BENCH_shard.json are honest only together with the
// recorded CPU line.
func BenchmarkCampaignSharded(b *testing.B) {
	b.Setenv("CARE_SHARD_SERVE", "1")
	build := BuildSpec{Workload: "HPCCG"}
	bin := buildSpecOrDie(b, build)
	const n = 96
	base := func() *faultinject.Campaign {
		return &faultinject.Campaign{App: bin, N: n, Model: faultinject.SingleBit, Seed: 1, Workers: 1}
	}
	b.Run("single-process", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := base().Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	})
	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {2, 1}, {4, 1}, {8, 1}, {4, 2},
	} {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", tc.shards, tc.workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := base()
				c.Shards = tc.shards
				c.Workers = tc.workers
				c.ShardExec = selfExec()
				res, err := RunCampaign(c, build)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Injections) != n {
					b.Fatalf("%d injections", len(res.Injections))
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}
