// Package shard is the campaign coordinator: it partitions a
// fault-injection index space (campaign trials or coverage attempts)
// into contiguous shards, executes each shard in a spawned worker
// subprocess — or in-process for tests — and merges the shipped results
// in index order, so a sharded run is byte-identical to a
// single-process run at any shard × worker combination.
//
// The determinism argument is the same one Campaign.Workers already
// makes, lifted across process boundaries: every trial seeds its RNG
// from (Seed, index) alone, the golden profile is captured once by the
// coordinator and shipped to every worker, and trace recorders survive
// the JSONL wire format with full merge fidelity (trace.ReadJSONL
// restores the ID allocator and drop counts). Merging shipped results
// in index order therefore reproduces the single-process merge bit for
// bit.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Frame types. A worker conversation is:
//
//	coordinator → worker: spec, then any number of run frames, then exit
//	worker → coordinator: per run frame, batch* then done; error aborts
const (
	frameSpec  = "spec"
	frameRun   = "run"
	frameBatch = "batch"
	frameDone  = "done"
	frameError = "error"
	frameExit  = "exit"
)

// frame is the single message shape of the worker protocol,
// discriminated by Type. Length-prefixed JSON keeps the transport
// trivially debuggable (pipe through jq) while framing cleanly over
// stdin/stdout.
type frame struct {
	Type string `json:"type"`
	// Spec configures the worker (frameSpec).
	Spec *WorkerSpec `json:"spec,omitempty"`
	// Lo/Hi bound an index range (frameRun, frameDone).
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// Trials/Attempts carry results (frameBatch; mode-dependent).
	Trials   []wireTrial   `json:"trials,omitempty"`
	Attempts []wireAttempt `json:"attempts,omitempty"`
	// Err describes a worker failure (frameError).
	Err string `json:"err,omitempty"`
}

// maxFrame bounds a single frame (a batch of trial traces or the spec
// with its snapshots); 1 GiB is far above anything legitimate and far
// below the point where a corrupt length prefix could wedge the host.
const maxFrame = 1 << 30

// writeFrame emits one length-prefixed JSON frame.
func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("shard: encode %s frame: %w", f.Type, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("shard: %s frame of %d bytes exceeds limit", f.Type, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON frame.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("shard: frame length %d exceeds limit (corrupt stream?)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("shard: decode frame: %w", err)
	}
	return &f, nil
}
