// Package shard is the campaign coordinator: it partitions a
// fault-injection index space (campaign trials or coverage attempts)
// into contiguous shards, executes each shard in a spawned worker
// subprocess — or in-process for tests — and merges the shipped results
// in index order, so a sharded run is byte-identical to a
// single-process run at any shard × worker combination.
//
// The determinism argument is the same one Campaign.Workers already
// makes, lifted across process boundaries: every trial seeds its RNG
// from (Seed, index) alone, the golden profile is captured once by the
// coordinator and shipped to every worker, and trace recorders survive
// the JSONL wire format with full merge fidelity (trace.ReadJSONL
// restores the ID allocator and drop counts). Merging shipped results
// in index order therefore reproduces the single-process merge bit for
// bit.
package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Frame types. A worker conversation is:
//
//	coordinator → worker: spec, then any number of run frames, then exit
//	worker → coordinator: per run frame, batch* then done; error aborts
const (
	frameSpec  = "spec"
	frameRun   = "run"
	frameBatch = "batch"
	frameDone  = "done"
	frameError = "error"
	frameExit  = "exit"
)

// frame is the single message shape of the worker protocol,
// discriminated by Type. Length-prefixed JSON keeps the transport
// trivially debuggable (pipe through jq) while framing cleanly over
// stdin/stdout.
type frame struct {
	Type string `json:"type"`
	// Spec configures the worker (frameSpec).
	Spec *WorkerSpec `json:"spec,omitempty"`
	// Lo/Hi bound an index range (frameRun, frameDone).
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// Trials/Attempts carry results (frameBatch; mode-dependent).
	Trials   []wireTrial   `json:"trials,omitempty"`
	Attempts []wireAttempt `json:"attempts,omitempty"`
	// Err describes a worker failure (frameError).
	Err string `json:"err,omitempty"`
}

// maxFrame bounds a single frame (a batch of trial traces or the spec
// with its snapshots); 1 GiB is far above anything legitimate and far
// below the point where a corrupt length prefix could wedge the host.
const maxFrame = 1 << 30

// maxPooled caps the capacity a buffer may keep when returned to its
// pool: steady-state batch frames reuse their buffer, while the rare
// giant frame (a spec with inline snapshots) is released to the GC
// rather than pinned for the life of the process.
const maxPooled = 4 << 20

// frameBufPool recycles encode buffers across writeFrame calls, and
// frameBodyPool recycles decode bodies across readFrame calls. Safe
// because writeFrame flushes the buffer before putting it back and
// json.Unmarshal copies every field (including base64 []byte fields)
// out of the input, so nothing aliases a pooled body after return.
var frameBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

var frameBodyPool = sync.Pool{New: func() any { return new([]byte) }}

// writeFrame emits one length-prefixed JSON frame. The body is encoded
// into a pooled buffer behind a reserved 4-byte header, the header is
// patched once the length is known, and the whole frame goes out in a
// single Write — zero per-frame allocation in steady state.
func writeFrame(w io.Writer, f *frame) error {
	buf := frameBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxPooled {
			buf.Reset()
			frameBufPool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	// Encoder appends a trailing newline after the JSON value; it is
	// counted in the length prefix and ignored by the decoder.
	if err := json.NewEncoder(buf).Encode(f); err != nil {
		return fmt.Errorf("shard: encode %s frame: %w", f.Type, err)
	}
	body := buf.Bytes()[4:]
	if len(body) > maxFrame {
		return fmt.Errorf("shard: %s frame of %d bytes exceeds limit", f.Type, len(body))
	}
	binary.BigEndian.PutUint32(buf.Bytes()[:4], uint32(len(body)))
	_, err := w.Write(buf.Bytes())
	return err
}

// readFrame reads one length-prefixed JSON frame into a pooled body.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("shard: frame length %d exceeds limit (corrupt stream?)", n)
	}
	bp := frameBodyPool.Get().(*[]byte)
	if uint32(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	defer func() {
		if cap(*bp) <= maxPooled {
			frameBodyPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("shard: decode frame: %w", err)
	}
	return &f, nil
}
