package shard

import (
	"fmt"
	"io"

	"care/internal/faultinject"
	"care/internal/profiler"
	"care/internal/store"
)

// batchSize bounds results per batch frame: large enough to amortise
// framing, small enough that the coordinator's intake sees steady
// progress on long shards.
const batchSize = 64

// Serve runs the worker side of the shard protocol over (r, w) —
// `care-inject -shard-serve` wires it to stdin/stdout. The worker
// receives one spec frame (build recipe, campaign or coverage config,
// golden profile), rebuilds the binary with the deterministic compiler
// pipeline, then answers run frames with batch/done streams until the
// exit frame. Anything written to w must be protocol frames, so worker
// diagnostics belong on stderr.
func Serve(r io.Reader, w io.Writer) error {
	f, err := readFrame(r)
	if err != nil {
		return fmt.Errorf("shard: worker handshake: %w", err)
	}
	if f.Type != frameSpec || f.Spec == nil {
		return fmt.Errorf("shard: worker expected spec frame, got %q", f.Type)
	}
	spec := f.Spec
	app, err := spec.Build.Build()
	if err != nil {
		return sendErr(w, err)
	}
	var st *store.Store
	if spec.StoreDir != "" {
		if st, err = store.Open(spec.StoreDir); err != nil {
			return sendErr(w, err)
		}
	}
	prof, err := decodeProfile(&spec.Profile, st)
	if err != nil {
		return sendErr(w, err)
	}
	var runRange func(lo, hi int) error
	switch {
	case spec.Campaign != nil:
		c := spec.Campaign.campaign(app, nil)
		runRange = func(lo, hi int) error { return serveCampaignRange(w, c, prof, lo, hi) }
	case spec.Coverage != nil:
		e := spec.Coverage.experiment(app, nil)
		runRange = func(lo, hi int) error { return serveCoverageRange(w, e, prof, lo, hi) }
	default:
		return sendErr(w, fmt.Errorf("shard: spec frame names neither campaign nor coverage"))
	}
	for {
		f, err := readFrame(r)
		if err != nil {
			if err == io.EOF {
				return nil // coordinator closed the pipe; treat as exit
			}
			return fmt.Errorf("shard: worker read: %w", err)
		}
		switch f.Type {
		case frameRun:
			if err := runRange(f.Lo, f.Hi); err != nil {
				return err
			}
		case frameExit:
			return nil
		default:
			return sendErr(w, fmt.Errorf("shard: worker got unexpected %q frame", f.Type))
		}
	}
}

// sendErr reports a worker failure to the coordinator and returns the
// original error so the worker process exits non-zero.
func sendErr(w io.Writer, err error) error {
	_ = writeFrame(w, &frame{Type: frameError, Err: err.Error()})
	return err
}

// serveCampaignRange runs trials [lo, hi) and streams them back in
// index order as batch frames, closing with a done frame.
func serveCampaignRange(w io.Writer, c *faultinject.Campaign, prof *profiler.Profile, lo, hi int) error {
	trials, err := c.RunTrialRange(prof, lo, hi)
	if err != nil {
		return sendErr(w, err)
	}
	for base := 0; base < len(trials); base += batchSize {
		end := base + batchSize
		if end > len(trials) {
			end = len(trials)
		}
		wt := make([]wireTrial, 0, end-base)
		for i := base; i < end; i++ {
			t, err := encodeTrial(&trials[i])
			if err != nil {
				return sendErr(w, err)
			}
			wt = append(wt, t)
		}
		if err := writeFrame(w, &frame{Type: frameBatch, Trials: wt}); err != nil {
			return err
		}
	}
	return writeFrame(w, &frame{Type: frameDone, Lo: lo, Hi: hi})
}

// serveCoverageRange runs attempts [lo, hi) and streams them back in
// index order as batch frames, closing with a done frame.
func serveCoverageRange(w io.Writer, e *faultinject.CoverageExperiment, prof *profiler.Profile, lo, hi int) error {
	atts, err := e.RunAttemptRange(prof, lo, hi)
	if err != nil {
		return sendErr(w, err)
	}
	for base := 0; base < len(atts); base += batchSize {
		end := base + batchSize
		if end > len(atts) {
			end = len(atts)
		}
		wa := make([]wireAttempt, 0, end-base)
		for i := base; i < end; i++ {
			a, err := encodeAttempt(&atts[i])
			if err != nil {
				return sendErr(w, err)
			}
			wa = append(wa, a)
		}
		if err := writeFrame(w, &frame{Type: frameBatch, Attempts: wa}); err != nil {
			return err
		}
	}
	return writeFrame(w, &frame{Type: frameDone, Lo: lo, Hi: hi})
}
