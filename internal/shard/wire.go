package shard

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/faultinject"
	"care/internal/fbits"
	"care/internal/machine"
	"care/internal/profiler"
	"care/internal/safeguard"
	"care/internal/store"
	"care/internal/trace"
	"care/internal/workloads"
)

// The wire layer round-trips every value a worker needs through JSON
// without losing a bit. Two kinds of fields need care:
//
//   - float64 streams (golden results, FPU registers) are shipped as
//     raw IEEE-754 bit patterns, because encoding/json rejects NaN/Inf
//     and a decimal round trip is not guaranteed bit-exact;
//   - trace recorders ship as their JSONL export, whose decoder
//     restores the ID allocator and drop counts, so a shipped recorder
//     merges exactly like the original (the byte-identity contract).

// BuildSpec tells a worker how to rebuild the campaign binary. The
// compiler pipeline is deterministic, so a worker's build is identical
// to the coordinator's — only the spec crosses the process boundary,
// never the binary itself.
type BuildSpec struct {
	// Workload names the registered workload (workloads.Get).
	Workload string
	// Params are the workload's build parameters.
	Params workloads.Params
	// OptLevel is the compiler optimisation level (0 or 1).
	OptLevel int
	// Defenses names the defense passes, in list order (nil =
	// undefended).
	Defenses []string
}

// Build compiles the spec's binary. Exposed so CLIs can share the
// exact build path the workers use.
func (b BuildSpec) Build() (*core.Binary, error) {
	w, err := workloads.Get(b.Workload)
	if err != nil {
		return nil, err
	}
	return core.Build(w.Module(b.Params), core.BuildOptions{OptLevel: b.OptLevel, Defenses: b.Defenses})
}

// CampaignSpec is the process-portable subset of faultinject.Campaign:
// everything except the binary (rebuilt from BuildSpec), the profile
// (shipped separately), and the coordinator-only knobs (Shards,
// ShardExec, Progress, WarmStart — the worker never re-profiles).
type CampaignSpec struct {
	N                int
	FaultsPerTrial   int
	Model            faultinject.Model
	Seed             int64
	HangFactor       uint64
	TrackPropagation bool
	Workers          int
	Trace            bool
	Tier             machine.InterpTier
	Domains          bool
	Protected        bool
	Safeguard        safeguard.Config
}

// campaignSpecOf extracts the portable subset of c.
func campaignSpecOf(c *faultinject.Campaign) *CampaignSpec {
	return &CampaignSpec{
		N: c.N, FaultsPerTrial: c.FaultsPerTrial, Model: c.Model,
		Seed: c.Seed, HangFactor: c.HangFactor,
		TrackPropagation: c.TrackPropagation, Workers: c.Workers,
		Trace: c.Trace, Tier: c.Tier, Domains: c.Domains,
		Protected: c.Protected, Safeguard: c.Safeguard,
	}
}

// campaign rebuilds a runnable Campaign around a worker-built binary.
func (s *CampaignSpec) campaign(app *core.Binary, libs []*core.Binary) *faultinject.Campaign {
	return &faultinject.Campaign{
		App: app, Libs: libs,
		N: s.N, FaultsPerTrial: s.FaultsPerTrial, Model: s.Model,
		Seed: s.Seed, HangFactor: s.HangFactor,
		TrackPropagation: s.TrackPropagation, Workers: s.Workers,
		Trace: s.Trace, Tier: s.Tier, Domains: s.Domains,
		Protected: s.Protected, Safeguard: s.Safeguard,
	}
}

// CoverageSpec is the process-portable subset of
// faultinject.CoverageExperiment, mirroring CampaignSpec.
type CoverageSpec struct {
	TargetImages           []string
	Trials                 int
	MaxAttempts            int
	FaultsPerTrial         int
	Model                  faultinject.Model
	Seed                   int64
	Safeguard              safeguard.Config
	CheckpointEveryResults int
	CheckpointModel        checkpoint.CostModel
	HangFactor             uint64
	RecordInjections       bool
	Workers                int
	Trace                  bool
	Tier                   machine.InterpTier
}

func coverageSpecOf(e *faultinject.CoverageExperiment) *CoverageSpec {
	return &CoverageSpec{
		TargetImages: e.TargetImages, Trials: e.Trials,
		MaxAttempts: e.MaxAttempts, FaultsPerTrial: e.FaultsPerTrial,
		Model: e.Model, Seed: e.Seed, Safeguard: e.Safeguard,
		CheckpointEveryResults: e.CheckpointEveryResults,
		CheckpointModel:        e.CheckpointModel,
		HangFactor:             e.HangFactor,
		RecordInjections:       e.RecordInjections,
		Workers:                e.Workers, Trace: e.Trace, Tier: e.Tier,
	}
}

func (s *CoverageSpec) experiment(app *core.Binary, libs []*core.Binary) *faultinject.CoverageExperiment {
	return &faultinject.CoverageExperiment{
		App: app, Libs: libs,
		TargetImages: s.TargetImages, Trials: s.Trials,
		MaxAttempts: s.MaxAttempts, FaultsPerTrial: s.FaultsPerTrial,
		Model: s.Model, Seed: s.Seed, Safeguard: s.Safeguard,
		CheckpointEveryResults: s.CheckpointEveryResults,
		CheckpointModel:        s.CheckpointModel,
		HangFactor:             s.HangFactor,
		RecordInjections:       s.RecordInjections,
		Workers:                s.Workers, Trace: s.Trace, Tier: s.Tier,
	}
}

// WorkerSpec is the one-time configuration frame a worker receives
// before any run frames. Exactly one of Campaign/Coverage is set.
// When StoreDir is set, the profile's snapshot memory ships as segment
// hash references and the worker fetches the bytes from the shared
// content-addressed store instead of the spec frame — deduping the
// wire the same way the store dedups the disk.
type WorkerSpec struct {
	Build    BuildSpec     `json:"build"`
	Campaign *CampaignSpec `json:"campaign,omitempty"`
	Coverage *CoverageSpec `json:"coverage,omitempty"`
	Profile  wireProfile   `json:"profile"`
	StoreDir string        `json:"store_dir,omitempty"`
}

// wireProfile ships a profiler.Profile, snapshots included, so workers
// skip the golden-run replay entirely (and warm-started shards clone
// the coordinator's snapshots through the frozen-COW restore path).
type wireProfile struct {
	TotalDyn   uint64              `json:"total_dyn"`
	Counts     map[string][]uint64 `json:"counts,omitempty"`
	GoldenBits []uint64            `json:"golden_bits"`
	ExitCode   uint64              `json:"exit_code"`
	Snaps      []wireSnap          `json:"snaps,omitempty"`
}

type wireSnap struct {
	Dyn    uint64              `json:"dyn"`
	State  wireSnapshot        `json:"state"`
	Counts map[string][]uint64 `json:"counts,omitempty"`
}

// wireSnapshot ships a checkpoint.Snapshot. Memory segments are
// JSON-native ([]byte images encode as base64) when shipped inline, or
// collapse to content-address references (SegRefs + HeapNext, Mem nil)
// when both ends share a store; the FPU register file and the result
// stream go as bit patterns.
type wireSnapshot struct {
	Mem        *machine.Snapshot `json:"mem,omitempty"`
	SegRefs    []wireSegRef      `json:"seg_refs,omitempty"`
	HeapNext   uint64            `json:"heap_next,omitempty"`
	R          []uint64          `json:"r"`
	FBits      []uint64          `json:"f_bits"`
	PC         uint64            `json:"pc"`
	Dyn        uint64            `json:"dyn"`
	Step       int               `json:"step"`
	ResultBits []uint64          `json:"result_bits,omitempty"`
	Printed    []string          `json:"printed,omitempty"`
}

// wireSegRef points at one segment's bytes in the shared store, as an
// ordered list of ChunkSize page hashes (the store's dedup granularity).
type wireSegRef struct {
	Base   uint64   `json:"base"`
	Name   string   `json:"name"`
	Pages  []string `json:"pages,omitempty"`
	Len    int      `json:"len"`
	Domain uint8    `json:"domain,omitempty"`
}

// encodeSnapHeader fills the snapshot fields every transport shares
// (registers, env streams); the memory image is the caller's choice of
// inline bytes or store references.
func encodeSnapHeader(st *checkpoint.Snapshot) wireSnapshot {
	ws := wireSnapshot{
		R:          make([]uint64, len(st.CPU.R)),
		FBits:      fbits.Of(st.CPU.F[:]),
		PC:         uint64(st.CPU.PC),
		Dyn:        st.CPU.Dyn,
		Step:       st.Step,
		ResultBits: fbits.Of(st.EnvResults),
		Printed:    st.EnvPrinted,
	}
	for j, r := range st.CPU.R {
		ws.R[j] = uint64(r)
	}
	return ws
}

func encodeProfile(p *profiler.Profile) wireProfile {
	wp := wireProfile{
		TotalDyn:   p.TotalDyn,
		Counts:     p.Counts,
		GoldenBits: fbits.Of(p.Golden),
		ExitCode:   p.ExitCode,
	}
	for i := range p.Snaps {
		sp := &p.Snaps[i]
		ws := encodeSnapHeader(sp.State)
		ws.Mem = sp.State.Mem
		wp.Snaps = append(wp.Snaps, wireSnap{Dyn: sp.Dyn, State: ws, Counts: sp.Counts})
	}
	return wp
}

// encodeProfileDedup encodes a profile with snapshot memory hoisted
// into the store as content-addressed blobs: the spec frame carries
// hashes, the worker fetches bytes. Segments shared across snapshots
// (frozen COW aliases) are recognised by backing-array identity and
// stored once. Returns ok=false — with the full inline encoding — when
// there is no store or a blob write failed (the store charges
// store.fallback); the coordinator then ships payloads as before, so a
// broken store can never lose a campaign.
func encodeProfileDedup(p *profiler.Profile, st *store.Store) (wireProfile, bool) {
	if st == nil {
		return encodeProfile(p), false
	}
	wp := wireProfile{
		TotalDyn:   p.TotalDyn,
		Counts:     p.Counts,
		GoldenBits: fbits.Of(p.Golden),
		ExitCode:   p.ExitCode,
	}
	type ref struct {
		pages []string
		n     int
	}
	seen := map[*byte]ref{}
	for i := range p.Snaps {
		sp := &p.Snaps[i]
		ws := encodeSnapHeader(sp.State)
		ws.HeapNext = uint64(sp.State.Mem.HeapNext)
		for _, seg := range sp.State.Mem.Segs {
			var r ref
			if len(seg.Data) > 0 {
				if c, ok := seen[&seg.Data[0]]; ok && c.n == len(seg.Data) {
					r = c
				} else {
					pages, err := st.PutChunked(seg.Data)
					if err != nil {
						st.AddFallback()
						return encodeProfile(p), false
					}
					r = ref{pages: pages, n: len(seg.Data)}
					seen[&seg.Data[0]] = r
				}
			}
			ws.SegRefs = append(ws.SegRefs, wireSegRef{
				Base: uint64(seg.Base), Name: seg.Name,
				Pages: r.pages, Len: r.n, Domain: uint8(seg.Domain),
			})
		}
		wp.Snaps = append(wp.Snaps, wireSnap{Dyn: sp.Dyn, State: ws, Counts: sp.Counts})
	}
	return wp, true
}

// decodeProfile reconstructs a profile on the worker side. st is the
// shared store opened from the spec's StoreDir (nil when snapshots
// shipped inline); fetched blobs are verified against their hash and
// cached per call, so segments shared across snapshots alias one byte
// slice exactly as they did in the coordinator. A reference the store
// cannot verify is an error — the worker reports it and the shard
// fails loudly rather than running on unverified memory.
func decodeProfile(wp *wireProfile, st *store.Store) (*profiler.Profile, error) {
	p := &profiler.Profile{
		TotalDyn: wp.TotalDyn,
		Counts:   wp.Counts,
		Golden:   fbits.Floats(wp.GoldenBits),
		ExitCode: wp.ExitCode,
	}
	pageCache := map[string][]byte{}
	segCache := map[string][]byte{}
	for i := range wp.Snaps {
		ws := &wp.Snaps[i]
		mem := ws.State.Mem
		if mem == nil && len(ws.State.SegRefs) > 0 {
			if st == nil {
				return nil, fmt.Errorf("shard: snapshot %d ships segment references but no store directory", i)
			}
			mem = &machine.Snapshot{HeapNext: machine.Word(ws.State.HeapNext)}
			for _, r := range ws.State.SegRefs {
				segKey := strings.Join(r.Pages, "")
				data, ok := segCache[segKey]
				if !ok || len(data) != r.Len {
					var err error
					if data, err = st.GetChunked(r.Pages, r.Len, pageCache); err != nil {
						return nil, fmt.Errorf("shard: snapshot %d: %w", i, err)
					}
					segCache[segKey] = data
				}
				mem.Segs = append(mem.Segs, machine.SegSnapshot{
					Base: machine.Word(r.Base), Name: r.Name,
					Data: data, Domain: machine.DomainID(r.Domain),
				})
			}
		}
		if mem == nil {
			return nil, fmt.Errorf("shard: snapshot %d shipped without a memory image", i)
		}
		snap := &checkpoint.Snapshot{
			Mem:        mem,
			Step:       ws.State.Step,
			EnvResults: fbits.Floats(ws.State.ResultBits),
			EnvPrinted: ws.State.Printed,
		}
		if len(ws.State.R) != len(snap.CPU.R) || len(ws.State.FBits) != len(snap.CPU.F) {
			return nil, fmt.Errorf("shard: snapshot %d register file has %d/%d slots, machine has %d/%d",
				i, len(ws.State.R), len(ws.State.FBits), len(snap.CPU.R), len(snap.CPU.F))
		}
		for j, r := range ws.State.R {
			snap.CPU.R[j] = machine.Word(r)
		}
		copy(snap.CPU.F[:], fbits.Floats(ws.State.FBits))
		snap.CPU.PC = machine.Word(ws.State.PC)
		snap.CPU.Dyn = ws.State.Dyn
		p.Snaps = append(p.Snaps, profiler.SnapPoint{Dyn: ws.Dyn, State: snap, Counts: ws.Counts})
	}
	return p, nil
}

// wireTrial ships one faultinject.TrialResult; the recorder goes as
// its JSONL export (base64 inside the JSON frame).
type wireTrial struct {
	Index      int                   `json:"index"`
	Inj        faultinject.Injection `json:"inj"`
	Fired      bool                  `json:"fired,omitempty"`
	SkippedDyn uint64                `json:"skipped_dyn,omitempty"`
	TraceJSONL []byte                `json:"trace_jsonl"`
}

func encodeTrial(t *faultinject.TrialResult) (wireTrial, error) {
	var buf bytes.Buffer
	if err := t.Rec.WriteJSONL(&buf); err != nil {
		return wireTrial{}, err
	}
	return wireTrial{
		Index: t.Index, Inj: t.Inj, Fired: t.Fired,
		SkippedDyn: t.SkippedDyn, TraceJSONL: buf.Bytes(),
	}, nil
}

func decodeTrial(w *wireTrial) (faultinject.TrialResult, error) {
	rec, err := trace.ReadJSONL(bytes.NewReader(w.TraceJSONL))
	if err != nil {
		return faultinject.TrialResult{}, fmt.Errorf("shard: trial %d trace: %w", w.Index, err)
	}
	return faultinject.TrialResult{
		Index: w.Index, Inj: w.Inj, Fired: w.Fired,
		SkippedDyn: w.SkippedDyn, Rec: rec,
	}, nil
}

// wireAttempt ships one faultinject.AttemptResult. Uncounted attempts
// carry no trace (nil recorder on both ends).
type wireAttempt struct {
	Index       int                           `json:"index"`
	Counted     bool                          `json:"counted,omitempty"`
	Events      []safeguard.Event             `json:"events,omitempty"`
	TraceJSONL  []byte                        `json:"trace_jsonl,omitempty"`
	Recovered   bool                          `json:"recovered,omitempty"`
	Clean       bool                          `json:"clean,omitempty"`
	RecTimeNs   int64                         `json:"rec_time_ns,omitempty"`
	Activations int                           `json:"activations,omitempty"`
	Failure     safeguard.Outcome             `json:"failure,omitempty"`
	Rec         faultinject.RecordedInjection `json:"rec,omitempty"`
}

func encodeAttempt(a *faultinject.AttemptResult) (wireAttempt, error) {
	w := wireAttempt{
		Index: a.Index, Counted: a.Counted, Events: a.Events,
		Recovered: a.Recovered, Clean: a.Clean,
		RecTimeNs: a.RecTime.Nanoseconds(), Activations: a.Activations,
		Failure: a.Failure, Rec: a.Rec,
	}
	if a.Trace != nil {
		var buf bytes.Buffer
		if err := a.Trace.WriteJSONL(&buf); err != nil {
			return wireAttempt{}, err
		}
		w.TraceJSONL = buf.Bytes()
	}
	return w, nil
}

func decodeAttempt(w *wireAttempt) (faultinject.AttemptResult, error) {
	a := faultinject.AttemptResult{
		Index: w.Index, Counted: w.Counted, Events: w.Events,
		Recovered: w.Recovered, Clean: w.Clean,
		RecTime: time.Duration(w.RecTimeNs), Activations: w.Activations,
		Failure: w.Failure, Rec: w.Rec,
	}
	if len(w.TraceJSONL) > 0 {
		rec, err := trace.ReadJSONL(bytes.NewReader(w.TraceJSONL))
		if err != nil {
			return faultinject.AttemptResult{}, fmt.Errorf("shard: attempt %d trace: %w", w.Index, err)
		}
		a.Trace = rec
	}
	return a, nil
}
