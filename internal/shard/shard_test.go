package shard

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"care/internal/core"
	"care/internal/faultinject"
	"care/internal/trace"
)

// TestShardServeHelper is not a test: it is the worker subprocess the
// subprocess-mode tests spawn by re-executing this test binary with
// -test.run pinned here and CARE_SHARD_SERVE=1 in the environment —
// the same self-exec trick the standard library uses for exec tests.
func TestShardServeHelper(t *testing.T) {
	if os.Getenv("CARE_SHARD_SERVE") != "1" {
		t.Skip("worker-mode helper; spawned by subprocess tests")
	}
	if err := Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0) // keep test-framework chatter off the protocol stream
}

// selfExec is the worker argv for subprocess tests.
func selfExec() []string {
	return []string{os.Args[0], "-test.run=^TestShardServeHelper$"}
}

func buildSpecOrDie(t testing.TB, b BuildSpec) *core.Binary {
	t.Helper()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// scrubJSONL zeroes the wall-clock fields of an exported trace — the
// same scrub the CI determinism job applies before byte-diffing.
var wallRe = regexp.MustCompile(`"wall_ns":-?[0-9]+`)
var nsCounterRe = regexp.MustCompile(`("name":"[a-z.-]+-ns","value":)-?[0-9]+`)

func scrubJSONL(t testing.TB, rec *trace.Recorder) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	s := wallRe.ReplaceAllString(buf.String(), `"wall_ns":0`)
	return nsCounterRe.ReplaceAllString(s, "${1}0")
}

// scrubCampaign drops the trace (compared separately via scrubbed
// JSONL) so the remaining fields DeepEqual-compare.
func scrubCampaign(r *faultinject.CampaignResult) faultinject.CampaignResult {
	c := *r
	c.Trace = nil
	return c
}

// TestRanges pins the contiguous balanced partition.
func TestRanges(t *testing.T) {
	for _, tc := range []struct {
		n, shards int
	}{{10, 1}, {10, 3}, {7, 7}, {23, 5}, {4, 8}} {
		rs := Ranges(tc.n, tc.shards)
		if rs[0].Lo != 0 || rs[len(rs)-1].Hi != tc.n {
			t.Fatalf("Ranges(%d,%d) does not cover: %v", tc.n, tc.shards, rs)
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].Lo != rs[i-1].Hi {
				t.Fatalf("Ranges(%d,%d) not contiguous: %v", tc.n, tc.shards, rs)
			}
		}
		for _, r := range rs {
			if sz := r.Hi - r.Lo; sz < tc.n/tc.shards || sz > tc.n/tc.shards+1 {
				t.Fatalf("Ranges(%d,%d) unbalanced: %v", tc.n, tc.shards, rs)
			}
		}
	}
}

// TestCampaignShardEquivalenceInProcess is the core contract: a
// campaign run through the shard coordinator — any shard × worker
// combination, results round-tripping the wire encoding — produces a
// CampaignResult DeepEqual to the single-process run and byte-identical
// scrubbed trace JSONL.
func TestCampaignShardEquivalenceInProcess(t *testing.T) {
	build := BuildSpec{Workload: "HPCCG"}
	bin := buildSpecOrDie(t, build)
	base := func() *faultinject.Campaign {
		return &faultinject.Campaign{
			App: bin, N: 24, Model: faultinject.SingleBit, Seed: 7,
			Workers: 2, Trace: true, Domains: true,
		}
	}
	single, err := base().Run()
	if err != nil {
		t.Fatal(err)
	}
	wantJSONL := scrubJSONL(t, single.Trace)
	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {2, 1}, {3, 2}, {8, 1}, {24, 1}, {64, 2},
	} {
		t.Run(fmt.Sprintf("shards=%d,workers=%d", tc.shards, tc.workers), func(t *testing.T) {
			c := base()
			c.Shards = tc.shards
			c.Workers = tc.workers
			res, err := RunCampaign(c, build)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := scrubCampaign(single), scrubCampaign(res); !reflect.DeepEqual(a, b) {
				t.Fatalf("sharded result differs from single-process:\n%+v\nvs\n%+v", b, a)
			}
			if got := scrubJSONL(t, res.Trace); got != wantJSONL {
				t.Fatalf("sharded trace JSONL differs (%d vs %d bytes)", len(got), len(wantJSONL))
			}
		})
	}
}

// TestCampaignShardSubprocess runs the same contract through real
// worker subprocesses speaking the stdin/stdout frame protocol, with
// warm-start on so the coordinator's golden snapshots ship over the
// wire and workers skip the golden-run replay.
func TestCampaignShardSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	t.Setenv("CARE_SHARD_SERVE", "1")
	build := BuildSpec{Workload: "HPCCG"}
	bin := buildSpecOrDie(t, build)
	base := func() *faultinject.Campaign {
		return &faultinject.Campaign{
			App: bin, N: 18, Model: faultinject.SingleBit, Seed: 11,
			Workers: 1, Trace: true, WarmStart: true,
		}
	}
	single, err := base().Run()
	if err != nil {
		t.Fatal(err)
	}
	c := base()
	c.Shards = 3
	c.ShardExec = selfExec()
	res, err := RunCampaign(c, build)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := scrubCampaign(single), scrubCampaign(res); !reflect.DeepEqual(a, b) {
		t.Fatalf("subprocess-sharded result differs from single-process:\n%+v\nvs\n%+v", b, a)
	}
	if want, got := scrubJSONL(t, single.Trace), scrubJSONL(t, res.Trace); got != want {
		t.Fatalf("subprocess-sharded trace JSONL differs (%d vs %d bytes)", len(got), len(want))
	}
	if res.WarmStart == nil || res.WarmStart.WarmTrials == 0 {
		t.Fatalf("warm-start stats lost in sharded run: %+v", res.WarmStart)
	}
}

// scrubCoverage drops the wall-clock-bearing fields (compared
// structurally instead) so the rest DeepEqual-compares.
func scrubCoverage(r *faultinject.CoverageResult) faultinject.CoverageResult {
	c := *r
	c.Events = nil
	c.TrialRecoveryTimes = nil
	c.Trace = nil
	return c
}

func requireCoverageEqual(t *testing.T, single, res *faultinject.CoverageResult) {
	t.Helper()
	if a, b := scrubCoverage(single), scrubCoverage(res); !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded coverage differs from single-process:\n%+v\nvs\n%+v", b, a)
	}
	if len(single.Events) != len(res.Events) {
		t.Fatalf("event count differs: %d vs %d", len(res.Events), len(single.Events))
	}
	for i := range single.Events {
		if single.Events[i].Outcome != res.Events[i].Outcome {
			t.Fatalf("event %d outcome %s vs %s", i, res.Events[i].Outcome, single.Events[i].Outcome)
		}
	}
	if want, got := scrubJSONL(t, single.Trace), scrubJSONL(t, res.Trace); got != want {
		t.Fatalf("sharded coverage trace differs (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCoverageShardEquivalence: the early-stopping coverage experiment
// is invariant to how the attempt waves are cut across shards, both
// in-process and through worker subprocesses.
func TestCoverageShardEquivalence(t *testing.T) {
	build := BuildSpec{Workload: "HPCCG", Defenses: []string{"care"}}
	bin := buildSpecOrDie(t, build)
	base := func() *faultinject.CoverageExperiment {
		return &faultinject.CoverageExperiment{
			App: bin, Trials: 6, Model: faultinject.SingleBit, Seed: 5,
			Workers: 2, RecordInjections: true,
		}
	}
	single, err := base().Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("inproc-shards=%d", shards), func(t *testing.T) {
			e := base()
			e.Shards = shards
			res, err := RunCoverage(e, build)
			if err != nil {
				t.Fatal(err)
			}
			requireCoverageEqual(t, single, res)
		})
	}
	if testing.Short() {
		return
	}
	t.Setenv("CARE_SHARD_SERVE", "1")
	t.Run("subprocess-shards=2", func(t *testing.T) {
		e := base()
		e.Shards = 2
		e.ShardExec = selfExec()
		res, err := RunCoverage(e, build)
		if err != nil {
			t.Fatal(err)
		}
		requireCoverageEqual(t, single, res)
	})
}

// TestWorkerErrorPropagates: a worker that cannot honour the spec
// reports through an error frame instead of wedging the coordinator.
func TestWorkerErrorPropagates(t *testing.T) {
	t.Setenv("CARE_SHARD_SERVE", "1")
	build := BuildSpec{Workload: "no-such-workload"}
	bin := buildSpecOrDie(t, BuildSpec{Workload: "HPCCG"})
	c := &faultinject.Campaign{
		App: bin, N: 4, Model: faultinject.SingleBit, Seed: 1,
		Shards: 2, ShardExec: selfExec(),
	}
	_, err := RunCampaign(c, build)
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("want workload build error from worker, got %v", err)
	}
}

// TestFrameRoundTrip pins the transport encoding.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &frame{Type: frameRun, Lo: 3, Hi: 9}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("frame round trip: %+v vs %+v", out, in)
	}
	if _, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized length prefix must error")
	}
}
