package checkpoint_test

import (
	"errors"
	"testing"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/machine"
	"care/internal/trace"
	"care/internal/workloads"
)

func buildProc(t *testing.T) (*core.Binary, *core.Process) {
	t.Helper()
	w, err := workloads.Get("HPCCG")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProcess(core.ProcessConfig{App: bin})
	if err != nil {
		t.Fatal(err)
	}
	return bin, p
}

// TestMidRunRestoreReproducesGolden: snapshot the process mid-flight,
// let it diverge (run to completion), restore, and verify the restored
// continuation reproduces the golden results exactly.
func TestMidRunRestoreReproducesGolden(t *testing.T) {
	_, golden := buildProc(t)
	if st := golden.Run(0); st != machine.StatusExited {
		t.Fatal(st)
	}
	want := append([]float64(nil), golden.Results()...)

	for _, cut := range []uint64{1_000, 25_000, 120_000} {
		_, p := buildProc(t)
		p.CPU.Run(cut)
		store := checkpoint.NewStore(checkpoint.DefaultCostModel())
		snap := store.Save(p.CPU, 1)
		// Diverge: run to completion once.
		if st := p.CPU.Run(0); st != machine.StatusExited {
			t.Fatalf("cut %d: first completion %v", cut, st)
		}
		// Restore and re-run the tail.
		if _, err := store.Restore(p.CPU, snap); err != nil {
			t.Fatal(err)
		}
		if p.CPU.Dyn != snap.CPU.Dyn {
			t.Fatalf("dyn not restored: %d vs %d", p.CPU.Dyn, snap.CPU.Dyn)
		}
		if st := p.CPU.Run(0); st != machine.StatusExited {
			t.Fatalf("cut %d: restored completion %v (%v)", cut, st, p.CPU.PendingTrap)
		}
		got := p.Results()
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d results, want %d", cut, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d: result[%d] = %v, want %v", cut, i, got[i], want[i])
			}
		}
	}
}

func TestRestoreRejectsNil(t *testing.T) {
	_, p := buildProc(t)
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	if _, err := store.Restore(p.CPU, nil); err == nil {
		t.Fatal("nil snapshot restored")
	}
	if store.Latest() != nil {
		t.Fatal("empty store has a latest snapshot")
	}
}

func TestCostModelScalesWithSize(t *testing.T) {
	_, p := buildProc(t)
	p.CPU.Run(10_000)
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	s := store.Save(p.CPU, 1)
	if s.Bytes() <= 0 {
		t.Fatal("empty snapshot")
	}
	m := checkpoint.DefaultCostModel()
	w1 := m.WriteCost(s)
	if w1 <= m.WriteLatency {
		t.Fatal("write cost ignores size")
	}
	if m.ReadCost(s) <= m.ReadLatency {
		t.Fatal("read cost ignores size")
	}
	if store.Saves() != 1 || store.ModeledWriteTime() != w1 {
		t.Fatalf("store accounting: %d saves, %v modeled", store.Saves(), store.ModeledWriteTime())
	}
}

func TestLatestWins(t *testing.T) {
	_, p := buildProc(t)
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	p.CPU.Run(1000)
	store.Save(p.CPU, 1)
	p.CPU.Run(1000)
	s2 := store.Save(p.CPU, 2)
	if store.Latest() != s2 {
		t.Fatal("latest snapshot is not the newest")
	}
	if store.Latest().Step != 2 {
		t.Fatal("step not recorded")
	}
}

// TestEnvResultsRestored: the result stream is part of the checkpoint —
// a restored run must not duplicate the results emitted before the
// snapshot.
func TestEnvResultsRestored(t *testing.T) {
	_, golden := buildProc(t)
	golden.Run(0)
	want := len(golden.Results())

	_, p := buildProc(t)
	// Run until at least one result is out.
	for len(p.Results()) == 0 && p.CPU.Status == machine.StatusRunning {
		p.CPU.Run(50_000)
	}
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	snap := store.Save(p.CPU, 1)
	if st := p.CPU.Run(0); st != machine.StatusExited {
		t.Fatal(st)
	}
	if _, err := store.Restore(p.CPU, snap); err != nil {
		t.Fatal(err)
	}
	if st := p.CPU.Run(0); st != machine.StatusExited {
		t.Fatal(st)
	}
	if len(p.Results()) != want {
		t.Fatalf("restored run emitted %d results, want %d", len(p.Results()), want)
	}
}

// domainAddr finds the base of the first writable segment of a domain
// (the HPCCG address space has writable heap and stack segments only —
// its globals are folded into the heap arrays).
func domainAddr(t *testing.T, p *core.Process, d machine.DomainID) machine.Word {
	t.Helper()
	for _, s := range p.CPU.Mem.Segments() {
		if !s.ReadOnly() && s.Domain == d {
			return s.Base
		}
	}
	t.Fatalf("no writable %v segment", d)
	return 0
}

// TestDomainRewindRestoresOnlyThatDomain: a full save refreshes every
// domain generation; rewinding one domain brings back exactly its bytes
// while the CPU state and the other domains stay live. The rewind
// charges the domain counters and a domain-rewind span.
func TestDomainRewindRestoresOnlyThatDomain(t *testing.T) {
	_, p := buildProc(t)
	p.CPU.Run(50_000)
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	store.Save(p.CPU, 1)
	if store.LatestDomain(machine.DomainHeap) == nil || store.LatestDomain(machine.DomainStack) == nil {
		t.Fatal("full save did not populate the heap/stack domain generations")
	}
	if store.LatestDomain(machine.DomainScratch) != nil {
		t.Fatal("unprotected process grew a scratch-domain generation")
	}

	ha, sa := domainAddr(t, p, machine.DomainHeap), domainAddr(t, p, machine.DomainStack)
	hWant, f := p.CPU.Mem.Read(ha)
	if f != nil {
		t.Fatal(f)
	}
	// Diverge heap and stack after the save.
	if f := p.CPU.Mem.Write(ha, hWant+99); f != nil {
		t.Fatal(f)
	}
	if f := p.CPU.Mem.Write(sa, 123); f != nil {
		t.Fatal(f)
	}
	regs, pc, dyn := p.CPU.R, p.CPU.PC, p.CPU.Dyn

	cost, err := store.RestoreDomain(p.CPU, machine.DomainHeap)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("domain rewind cost not modelled under the default cost model")
	}
	if v, _ := p.CPU.Mem.Read(ha); v != hWant {
		t.Errorf("heap reads %d after rewind, want the saved %d", v, hWant)
	}
	if v, _ := p.CPU.Mem.Read(sa); v != 123 {
		t.Errorf("stack reads %d after a heap rewind, want the live 123", v)
	}
	if p.CPU.R != regs || p.CPU.PC != pc || p.CPU.Dyn != dyn {
		t.Error("domain rewind touched architectural state")
	}
	if got := store.Trace().Counter(checkpoint.CounterDomainRestores); got != 1 {
		t.Errorf("%s = %d, want 1", checkpoint.CounterDomainRestores, got)
	}
	if store.Trace().Counter(checkpoint.CounterDomainReadNs) <= 0 {
		t.Errorf("%s not charged", checkpoint.CounterDomainReadNs)
	}
	// A domain rewind discards no retired work.
	if got := store.Trace().Counter(checkpoint.CounterLostDyn); got != 0 {
		t.Errorf("%s = %d after a domain rewind, want 0", checkpoint.CounterLostDyn, got)
	}
	found := false
	for _, sp := range store.Trace().Spans() {
		if sp.Kind == trace.KindDomainRewind {
			found = true
			if sp.Outcome != machine.DomainHeap.String() {
				t.Errorf("rewind span names domain %q, want %q", sp.Outcome, machine.DomainHeap)
			}
			if sp.StartDyn != dyn || sp.EndDyn != dyn {
				t.Errorf("rewind span moves the virtual clock: %+v", sp)
			}
		}
	}
	if !found {
		t.Error("no domain-rewind span emitted")
	}
}

// TestSaveDomainRefreshesOneGeneration: SaveDomain captures a single
// domain without freezing the rest, and generations order across saves
// (the safeguard rewinds to the latest consistent one).
func TestSaveDomainRefreshesOneGeneration(t *testing.T) {
	_, p := buildProc(t)
	p.CPU.Run(50_000)
	store := checkpoint.NewStore(checkpoint.CostModel{})
	store.Save(p.CPU, 1)
	h1 := store.LatestDomain(machine.DomainHeap)
	s1 := store.LatestDomain(machine.DomainStack)

	ha := domainAddr(t, p, machine.DomainHeap)
	if f := p.CPU.Mem.Write(ha, 77); f != nil {
		t.Fatal(f)
	}
	ds := store.SaveDomain(p.CPU, machine.DomainHeap, 2)
	if ds == nil || store.LatestDomain(machine.DomainHeap) != ds {
		t.Fatal("SaveDomain did not become the domain's latest generation")
	}
	if ds.Gen <= h1.Gen {
		t.Errorf("new generation %d does not supersede %d", ds.Gen, h1.Gen)
	}
	if store.LatestDomain(machine.DomainStack) != s1 {
		t.Error("a heap-only save refreshed the stack generation")
	}
	if got := store.Trace().Counter(checkpoint.CounterDomainSaves); got != 1 {
		t.Errorf("%s = %d, want 1", checkpoint.CounterDomainSaves, got)
	}
	if _, err := store.RestoreDomain(p.CPU, machine.DomainHeap); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.CPU.Mem.Read(ha); v != 77 {
		t.Errorf("rewind to the newer generation reads %d, want 77", v)
	}
}

// TestRestoreDomainEscalations: rewinding a domain with no snapshot
// errors descriptively, and a stale allocation epoch surfaces
// machine.ErrDomainInconsistent so the safeguard chain escalates to a
// whole-process rollback instead of silently proceeding.
func TestRestoreDomainEscalations(t *testing.T) {
	_, p := buildProc(t)
	p.CPU.Run(50_000)
	store := checkpoint.NewStore(checkpoint.CostModel{})
	if _, err := store.RestoreDomain(p.CPU, machine.DomainHeap); err == nil {
		t.Fatal("rewind without any snapshot succeeded")
	}
	store.Save(p.CPU, 1)
	if _, err := p.CPU.Mem.Alloc(64); err != nil {
		t.Fatal(err)
	}
	_, err := store.RestoreDomain(p.CPU, machine.DomainHeap)
	if !errors.Is(err, machine.ErrDomainInconsistent) {
		t.Fatalf("heap rewind across an allocation epoch: %v, want ErrDomainInconsistent", err)
	}
	// The stack generation is unaffected by the heap's stale epoch (the
	// post-save allocation is not in the capture census, so proof 1
	// holds; proof 2 only scans the rewound domain).
	if _, err := store.RestoreDomain(p.CPU, machine.DomainStack); err != nil {
		t.Fatalf("stack rewind refused by an unrelated heap epoch: %v", err)
	}
}

// TestFullRestoreChargesLostWork: the policy study's lost-work metric —
// a whole-process restore books the discarded virtual-clock work, which
// domain rewinds (tested above) never do.
func TestFullRestoreChargesLostWork(t *testing.T) {
	_, p := buildProc(t)
	p.CPU.Run(10_000)
	store := checkpoint.NewStore(checkpoint.CostModel{})
	snap := store.Save(p.CPU, 1)
	p.CPU.Run(5_000)
	pre := p.CPU.Dyn
	if _, err := store.Restore(p.CPU, snap); err != nil {
		t.Fatal(err)
	}
	want := int64(pre - snap.CPU.Dyn)
	if want <= 0 {
		t.Fatal("test degenerate: no work to lose")
	}
	if got := store.Trace().Counter(checkpoint.CounterLostDyn); got != want {
		t.Errorf("%s = %d, want %d", checkpoint.CounterLostDyn, got, want)
	}
}
