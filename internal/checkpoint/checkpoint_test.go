package checkpoint_test

import (
	"testing"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/machine"
	"care/internal/workloads"
)

func buildProc(t *testing.T) (*core.Binary, *core.Process) {
	t.Helper()
	w, err := workloads.Get("HPCCG")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 0, NoArmor: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProcess(core.ProcessConfig{App: bin})
	if err != nil {
		t.Fatal(err)
	}
	return bin, p
}

// TestMidRunRestoreReproducesGolden: snapshot the process mid-flight,
// let it diverge (run to completion), restore, and verify the restored
// continuation reproduces the golden results exactly.
func TestMidRunRestoreReproducesGolden(t *testing.T) {
	_, golden := buildProc(t)
	if st := golden.Run(0); st != machine.StatusExited {
		t.Fatal(st)
	}
	want := append([]float64(nil), golden.Results()...)

	for _, cut := range []uint64{1_000, 25_000, 120_000} {
		_, p := buildProc(t)
		p.CPU.Run(cut)
		store := checkpoint.NewStore(checkpoint.DefaultCostModel())
		snap := store.Save(p.CPU, 1)
		// Diverge: run to completion once.
		if st := p.CPU.Run(0); st != machine.StatusExited {
			t.Fatalf("cut %d: first completion %v", cut, st)
		}
		// Restore and re-run the tail.
		if _, err := store.Restore(p.CPU, snap); err != nil {
			t.Fatal(err)
		}
		if p.CPU.Dyn != snap.CPU.Dyn {
			t.Fatalf("dyn not restored: %d vs %d", p.CPU.Dyn, snap.CPU.Dyn)
		}
		if st := p.CPU.Run(0); st != machine.StatusExited {
			t.Fatalf("cut %d: restored completion %v (%v)", cut, st, p.CPU.PendingTrap)
		}
		got := p.Results()
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d results, want %d", cut, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d: result[%d] = %v, want %v", cut, i, got[i], want[i])
			}
		}
	}
}

func TestRestoreRejectsNil(t *testing.T) {
	_, p := buildProc(t)
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	if _, err := store.Restore(p.CPU, nil); err == nil {
		t.Fatal("nil snapshot restored")
	}
	if store.Latest() != nil {
		t.Fatal("empty store has a latest snapshot")
	}
}

func TestCostModelScalesWithSize(t *testing.T) {
	_, p := buildProc(t)
	p.CPU.Run(10_000)
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	s := store.Save(p.CPU, 1)
	if s.Bytes() <= 0 {
		t.Fatal("empty snapshot")
	}
	m := checkpoint.DefaultCostModel()
	w1 := m.WriteCost(s)
	if w1 <= m.WriteLatency {
		t.Fatal("write cost ignores size")
	}
	if m.ReadCost(s) <= m.ReadLatency {
		t.Fatal("read cost ignores size")
	}
	if store.Saves() != 1 || store.ModeledWriteTime() != w1 {
		t.Fatalf("store accounting: %d saves, %v modeled", store.Saves(), store.ModeledWriteTime())
	}
}

func TestLatestWins(t *testing.T) {
	_, p := buildProc(t)
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	p.CPU.Run(1000)
	store.Save(p.CPU, 1)
	p.CPU.Run(1000)
	s2 := store.Save(p.CPU, 2)
	if store.Latest() != s2 {
		t.Fatal("latest snapshot is not the newest")
	}
	if store.Latest().Step != 2 {
		t.Fatal("step not recorded")
	}
}

// TestEnvResultsRestored: the result stream is part of the checkpoint —
// a restored run must not duplicate the results emitted before the
// snapshot.
func TestEnvResultsRestored(t *testing.T) {
	_, golden := buildProc(t)
	golden.Run(0)
	want := len(golden.Results())

	_, p := buildProc(t)
	// Run until at least one result is out.
	for len(p.Results()) == 0 && p.CPU.Status == machine.StatusRunning {
		p.CPU.Run(50_000)
	}
	store := checkpoint.NewStore(checkpoint.DefaultCostModel())
	snap := store.Save(p.CPU, 1)
	if st := p.CPU.Run(0); st != machine.StatusExited {
		t.Fatal(st)
	}
	if _, err := store.Restore(p.CPU, snap); err != nil {
		t.Fatal(err)
	}
	if st := p.CPU.Run(0); st != machine.StatusExited {
		t.Fatal(st)
	}
	if len(p.Results()) != want {
		t.Fatalf("restored run emitted %d results, want %d", len(p.Results()), want)
	}
}
