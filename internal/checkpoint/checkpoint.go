// Package checkpoint implements the Checkpoint/Restart substrate that
// CARE is compared against (§5.4): full-process snapshots (memory,
// registers, program counter), restart from the latest snapshot, and an
// I/O cost model that converts snapshot sizes into the write/read times
// a parallel filesystem would charge.
package checkpoint

import (
	"fmt"
	"time"

	"care/internal/machine"
	"care/internal/trace"
)

// CPUState is the architectural part of a snapshot.
type CPUState struct {
	R   [machine.NumReg]machine.Word
	F   [machine.NumFReg]float64
	PC  machine.Word
	Dyn uint64
}

// Snapshot is a full process checkpoint.
type Snapshot struct {
	Mem *machine.Snapshot
	CPU CPUState
	// Step is the application step at which the snapshot was taken.
	Step int
	// EnvResults preserves the result stream position.
	EnvResults []float64
	// EnvPrinted preserves the diagnostic print stream (not priced by
	// Bytes; it never influences execution, but restoring it keeps a
	// resumed process's observable output identical to a cold run's).
	EnvPrinted []string
}

// Capture snapshots a CPU: its memory (frozen copy-on-write, so the
// capture itself copies nothing), architectural context, and host-
// environment output streams. It is the accounting-free core of
// Store.Save, shared with the campaign warm-start path.
func Capture(c *machine.CPU, step int) *Snapshot {
	s := &Snapshot{
		Mem:  c.Mem.Snapshot(),
		CPU:  CPUState{R: c.R, F: c.F, PC: c.PC, Dyn: c.Dyn},
		Step: step,
	}
	if c.Env != nil {
		s.EnvResults = append([]float64(nil), c.Env.Results...)
		s.EnvPrinted = append([]string(nil), c.Env.Printed...)
	}
	return s
}

// Apply restores the snapshot into a CPU: memory segments come back as
// copy-on-write aliases of the frozen image (so applying one snapshot
// to many processes shares the bytes until they diverge), and the
// architectural state and output streams are rewound. It is the
// accounting-free core of Store.Restore. The CPU must have the same
// images attached (code is immutable and not part of the snapshot, as
// with ordinary C/R).
func (s *Snapshot) Apply(c *machine.CPU) {
	c.Mem.Restore(s.Mem)
	c.SetContext(machine.Context{R: s.CPU.R, F: s.CPU.F, PC: s.CPU.PC, Dyn: s.CPU.Dyn})
	if c.Env != nil {
		c.Env.Results = append(c.Env.Results[:0], s.EnvResults...)
		c.Env.Printed = append(c.Env.Printed[:0], s.EnvPrinted...)
	}
}

// Bytes is the serialised checkpoint size: memory, register file,
// PC/Dyn/Step header, and the preserved result stream (8 bytes per
// element — omitting it undercounts snapshot I/O for result-heavy
// workloads).
func (s *Snapshot) Bytes() int {
	return s.Mem.Bytes() + (machine.NumReg+machine.NumFReg)*8 + 16 + 8*len(s.EnvResults)
}

// CostModel converts checkpoint sizes into modelled I/O time.
type CostModel struct {
	// WriteBandwidth and ReadBandwidth in bytes/second.
	WriteBandwidth float64
	ReadBandwidth  float64
	// WriteLatency/ReadLatency are fixed per-operation costs.
	WriteLatency time.Duration
	ReadLatency  time.Duration
	// RequeueDelay models the batch-queue wait before a restarted job
	// runs again (the paper's "wait in the job queue").
	RequeueDelay time.Duration
	// DomainRewindBandwidth prices a domain-scoped partial rollback, in
	// bytes/second. A domain rewind is an in-process memory swap — no
	// parallel-filesystem read and no requeue — so it is charged as a
	// plain memory copy of the domain image. 0 means free.
	DomainRewindBandwidth float64
}

// DefaultCostModel approximates a modest parallel filesystem share.
func DefaultCostModel() CostModel {
	return CostModel{
		WriteBandwidth: 200e6,
		ReadBandwidth:  400e6,
		WriteLatency:   5 * time.Millisecond,
		ReadLatency:    5 * time.Millisecond,
		RequeueDelay:   2 * time.Second,
		// ~DDR-class copy bandwidth; a rewound domain costs microseconds
		// where a full rollback pays filesystem latency plus requeue.
		DomainRewindBandwidth: 10e9,
	}
}

// WriteCost models writing a snapshot.
func (m CostModel) WriteCost(s *Snapshot) time.Duration {
	return m.WriteLatency + time.Duration(float64(s.Bytes())/m.WriteBandwidth*1e9)
}

// ReadCost models reading a snapshot back.
func (m CostModel) ReadCost(s *Snapshot) time.Duration {
	return m.ReadLatency + time.Duration(float64(s.Bytes())/m.ReadBandwidth*1e9)
}

// DomainRewindCost models swapping one domain's image back in place.
func (m CostModel) DomainRewindCost(bytes int) time.Duration {
	if m.DomainRewindBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / m.DomainRewindBandwidth * 1e9)
}

// Trace counter names charged by the store. Durations are charged in
// nanoseconds so I/O totals stay exact even when the span ring drops
// old spans.
const (
	CounterSaves    = "checkpoint.saves"
	CounterWriteNs  = "checkpoint.write-ns"
	CounterRestores = "checkpoint.restores"
	CounterReadNs   = "checkpoint.read-ns"
	// CounterDomainSaves/CounterDomainRestores/CounterDomainReadNs account
	// for domain-scoped captures and rewinds.
	CounterDomainSaves    = "checkpoint.domain-saves"
	CounterDomainRestores = "checkpoint.domain-restores"
	CounterDomainReadNs   = "checkpoint.domain-read-ns"
	// CounterLostDyn accumulates the virtual-clock work discarded by full
	// restores (pre-restore Dyn minus restored Dyn) — the deterministic
	// "lost work" metric the policy study compares. Domain rewinds charge
	// nothing here: they discard no retired instructions.
	CounterLostDyn = "checkpoint.lost-work-dyn"
)

// Store keeps a process's checkpoints (latest-wins, as with rotating
// checkpoint files). All I/O accounting — save/restore counts and
// modelled write/read time — lives on the store's trace recorder; the
// Saves/ModeledWriteTime/... accessors are views over it.
type Store struct {
	Model  CostModel
	rec    *trace.Recorder
	latest *Snapshot
	// domains holds the latest consistent per-domain generation. Full
	// saves refresh every populated domain (as zero-copy views over the
	// frozen snapshot); SaveDomain refreshes one.
	domains [machine.NumDomains]*DomainSnap
	gen     int
}

// DomainSnap is one domain's snapshot generation in a store.
type DomainSnap struct {
	Mem *machine.DomainSnapshot
	// Gen orders generations across domains; Step/Dyn locate the capture.
	Gen  int
	Step int
	Dyn  uint64
}

// NewStore builds a store with the given cost model.
func NewStore(m CostModel) *Store {
	return &Store{Model: m, rec: trace.New(trace.DefaultSpanCap)}
}

// Trace exposes the store's recorder (one span per save/restore plus
// the I/O counters). Callers merge it into campaign or job traces.
func (st *Store) Trace() *trace.Recorder { return st.rec }

// Save checkpoints the CPU (and its memory) at the given step, charging
// the modelled write cost to the trace.
func (st *Store) Save(c *machine.CPU, step int) *Snapshot {
	s := Capture(c, step)
	st.latest = s
	cost := st.Model.WriteCost(s)
	st.rec.Emit(trace.Span{
		Kind: trace.KindCheckpointSave, Parent: trace.NoParent,
		StartDyn: c.Dyn, EndDyn: c.Dyn,
		Wall: cost, Val: int64(s.Bytes()),
	})
	st.rec.Add(CounterSaves, 1)
	st.rec.Add(CounterWriteNs, cost.Nanoseconds())
	st.noteDomains(s, step)
	return s
}

// noteDomains refreshes every domain generation from a just-taken full
// snapshot. The views alias the snapshot's frozen segments, so this
// copies nothing.
func (st *Store) noteDomains(s *Snapshot, step int) {
	st.gen++
	for d := machine.DomainID(0); d < machine.NumDomains; d++ {
		if v := s.Mem.DomainView(d); v != nil {
			st.domains[d] = &DomainSnap{Mem: v, Gen: st.gen, Step: step, Dyn: s.CPU.Dyn}
		}
	}
}

// SaveDomain captures one domain's current state (freezing only that
// domain's segments) as its newest generation. Returns nil when the
// domain has no writable segments.
func (st *Store) SaveDomain(c *machine.CPU, d machine.DomainID, step int) *DomainSnap {
	v := c.Mem.SnapshotDomain(d)
	if v == nil {
		return nil
	}
	st.gen++
	ds := &DomainSnap{Mem: v, Gen: st.gen, Step: step, Dyn: c.Dyn}
	st.domains[d] = ds
	st.rec.Add(CounterDomainSaves, 1)
	return ds
}

// LatestDomain returns the domain's latest generation, or nil.
func (st *Store) LatestDomain(d machine.DomainID) *DomainSnap { return st.domains[d] }

// RestoreDomain rewinds one domain to its latest generation, leaving
// every other domain and all architectural state in place, and returns
// the modelled swap cost. The rewind's consistency proofs are
// machine.Memory.RestoreDomain's; a machine.ErrDomainInconsistent error
// means the caller must escalate. The span's Dyn stamps do not move:
// a domain rewind discards no retired instructions.
func (st *Store) RestoreDomain(c *machine.CPU, d machine.DomainID) (time.Duration, error) {
	ds := st.domains[d]
	if ds == nil {
		return 0, fmt.Errorf("checkpoint: no %v-domain snapshot to rewind to", d)
	}
	if err := c.Mem.RestoreDomain(ds.Mem); err != nil {
		return 0, err
	}
	bytes := ds.Mem.Bytes()
	cost := st.Model.DomainRewindCost(bytes)
	st.rec.Emit(trace.Span{
		Kind: trace.KindDomainRewind, Parent: trace.NoParent,
		StartDyn: c.Dyn, EndDyn: c.Dyn,
		Wall: cost, Val: int64(bytes), Outcome: d.String(),
	})
	st.rec.Add(CounterDomainRestores, 1)
	st.rec.Add(CounterDomainReadNs, cost.Nanoseconds())
	return cost, nil
}

// Saves reports how many checkpoints were written.
func (st *Store) Saves() int { return int(st.rec.Counter(CounterSaves)) }

// Restores reports how many snapshots were read back.
func (st *Store) Restores() int { return int(st.rec.Counter(CounterRestores)) }

// ModeledWriteTime is the accumulated modelled cost of every Save.
func (st *Store) ModeledWriteTime() time.Duration {
	return time.Duration(st.rec.Counter(CounterWriteNs))
}

// ModeledReadTime is the accumulated modelled cost of every Restore.
func (st *Store) ModeledReadTime() time.Duration {
	return time.Duration(st.rec.Counter(CounterReadNs))
}

// Latest returns the most recent snapshot, or nil.
func (st *Store) Latest() *Snapshot { return st.latest }

// Restore rolls the CPU back to the snapshot and returns the modelled
// read cost. The CPU must have the same images attached (code is
// immutable and not part of the snapshot, as with ordinary C/R). The
// restore span's Dyn stamps run from the pre-restore clock to the
// (earlier) restored clock, making the virtual-time rewind visible.
func (st *Store) Restore(c *machine.CPU, s *Snapshot) (time.Duration, error) {
	if s == nil {
		return 0, fmt.Errorf("checkpoint: no snapshot to restore")
	}
	preDyn := c.Dyn
	s.Apply(c)
	cost := st.Model.ReadCost(s)
	st.rec.Emit(trace.Span{
		Kind: trace.KindCheckpointRestore, Parent: trace.NoParent,
		StartDyn: preDyn, EndDyn: s.CPU.Dyn,
		Wall: cost, Val: int64(s.Bytes()),
	})
	st.rec.Add(CounterRestores, 1)
	st.rec.Add(CounterReadNs, cost.Nanoseconds())
	if preDyn > s.CPU.Dyn {
		st.rec.Add(CounterLostDyn, int64(preDyn-s.CPU.Dyn))
	}
	return cost, nil
}

// AutoSave installs a retire hook that checkpoints the CPU each time
// its result stream grows past another `every` result values (the
// simulation's observable notion of an application step). The
// high-water mark is monotonic, so re-execution after a rollback does
// not re-write checkpoints it already paid for. The returned function
// removes the hook.
func AutoSave(st *Store, c *machine.CPU, every int) (remove func()) {
	if every <= 0 {
		return func() {}
	}
	saved := 0 // highest result count already checkpointed
	return c.AddAfterStep(func(cc *machine.CPU, _ *machine.Image, _ int, _ *machine.MInstr) {
		if cc.Env == nil {
			return
		}
		if n := len(cc.Env.Results); n >= saved+every {
			saved = n - n%every
			st.Save(cc, saved)
		}
	})
}
