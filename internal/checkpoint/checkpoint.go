// Package checkpoint implements the Checkpoint/Restart substrate that
// CARE is compared against (§5.4): full-process snapshots (memory,
// registers, program counter), restart from the latest snapshot, and an
// I/O cost model that converts snapshot sizes into the write/read times
// a parallel filesystem would charge.
package checkpoint

import (
	"fmt"
	"time"

	"care/internal/machine"
)

// CPUState is the architectural part of a snapshot.
type CPUState struct {
	R   [machine.NumReg]machine.Word
	F   [machine.NumFReg]float64
	PC  machine.Word
	Dyn uint64
}

// Snapshot is a full process checkpoint.
type Snapshot struct {
	Mem *machine.Snapshot
	CPU CPUState
	// Step is the application step at which the snapshot was taken.
	Step int
	// EnvResults preserves the result stream position.
	EnvResults []float64
}

// Bytes is the serialised checkpoint size: memory, register file,
// PC/Dyn/Step header, and the preserved result stream (8 bytes per
// element — omitting it undercounts snapshot I/O for result-heavy
// workloads).
func (s *Snapshot) Bytes() int {
	return s.Mem.Bytes() + (machine.NumReg+machine.NumFReg)*8 + 16 + 8*len(s.EnvResults)
}

// CostModel converts checkpoint sizes into modelled I/O time.
type CostModel struct {
	// WriteBandwidth and ReadBandwidth in bytes/second.
	WriteBandwidth float64
	ReadBandwidth  float64
	// WriteLatency/ReadLatency are fixed per-operation costs.
	WriteLatency time.Duration
	ReadLatency  time.Duration
	// RequeueDelay models the batch-queue wait before a restarted job
	// runs again (the paper's "wait in the job queue").
	RequeueDelay time.Duration
}

// DefaultCostModel approximates a modest parallel filesystem share.
func DefaultCostModel() CostModel {
	return CostModel{
		WriteBandwidth: 200e6,
		ReadBandwidth:  400e6,
		WriteLatency:   5 * time.Millisecond,
		ReadLatency:    5 * time.Millisecond,
		RequeueDelay:   2 * time.Second,
	}
}

// WriteCost models writing a snapshot.
func (m CostModel) WriteCost(s *Snapshot) time.Duration {
	return m.WriteLatency + time.Duration(float64(s.Bytes())/m.WriteBandwidth*1e9)
}

// ReadCost models reading a snapshot back.
func (m CostModel) ReadCost(s *Snapshot) time.Duration {
	return m.ReadLatency + time.Duration(float64(s.Bytes())/m.ReadBandwidth*1e9)
}

// Store keeps a process's checkpoints (latest-wins, as with rotating
// checkpoint files).
type Store struct {
	Model CostModel
	// ModeledWriteTime accumulates the modelled cost of every Save.
	ModeledWriteTime time.Duration
	latest           *Snapshot
	saves            int
}

// NewStore builds a store with the given cost model.
func NewStore(m CostModel) *Store { return &Store{Model: m} }

// Save checkpoints the CPU (and its memory) at the given step.
func (st *Store) Save(c *machine.CPU, step int) *Snapshot {
	s := &Snapshot{
		Mem:  c.Mem.Snapshot(),
		CPU:  CPUState{R: c.R, F: c.F, PC: c.PC, Dyn: c.Dyn},
		Step: step,
	}
	if c.Env != nil {
		s.EnvResults = append([]float64(nil), c.Env.Results...)
	}
	st.latest = s
	st.saves++
	st.ModeledWriteTime += st.Model.WriteCost(s)
	return s
}

// Saves reports how many checkpoints were written.
func (st *Store) Saves() int { return st.saves }

// Latest returns the most recent snapshot, or nil.
func (st *Store) Latest() *Snapshot { return st.latest }

// Restore rolls the CPU back to the snapshot and returns the modelled
// read cost. The CPU must have the same images attached (code is
// immutable and not part of the snapshot, as with ordinary C/R).
func (st *Store) Restore(c *machine.CPU, s *Snapshot) (time.Duration, error) {
	if s == nil {
		return 0, fmt.Errorf("checkpoint: no snapshot to restore")
	}
	c.Mem.Restore(s.Mem)
	c.SetContext(machine.Context{R: s.CPU.R, F: s.CPU.F, PC: s.CPU.PC, Dyn: s.CPU.Dyn})
	if c.Env != nil {
		c.Env.Results = append(c.Env.Results[:0], s.EnvResults...)
	}
	return st.Model.ReadCost(s), nil
}

// AutoSave installs a retire hook that checkpoints the CPU each time
// its result stream grows past another `every` result values (the
// simulation's observable notion of an application step). The
// high-water mark is monotonic, so re-execution after a rollback does
// not re-write checkpoints it already paid for. The returned function
// removes the hook.
func AutoSave(st *Store, c *machine.CPU, every int) (remove func()) {
	if every <= 0 {
		return func() {}
	}
	saved := 0 // highest result count already checkpointed
	return c.AddAfterStep(func(cc *machine.CPU, _ *machine.Image, _ int, _ *machine.MInstr) {
		if cc.Env == nil {
			return
		}
		if n := len(cc.Env.Results); n >= saved+every {
			saved = n - n%every
			st.Save(cc, saved)
		}
	})
}
