// Package armor implements CARE's compile-time front end: for every
// crash-prone memory-access instruction it extracts the backward slice
// of the address computation (stopping at Terminal Values per the
// paper's Figure 5 algorithm), clones it into a stand-alone recovery
// kernel function, and registers the kernel in a Recovery Table keyed by
// the instruction's (file,line,column) debug tuple.
//
// The kernels of an application are collected into a separate IR module
// that is compiled into its own "shared library" image, loaded lazily by
// Safeguard only when a fault must be repaired.
package armor

import (
	"fmt"
	"time"

	"care/internal/debuginfo"
	"care/internal/hostenv"
	"care/internal/ir"
	"care/internal/rtable"
)

// Stats summarises an Armor run (the paper's Table 8 columns).
type Stats struct {
	// NumMemAccesses is the number of load/store IR instructions seen.
	NumMemAccesses int
	// NumKernels is the number of recovery kernels constructed.
	NumKernels int
	// TotalKernelInstrs is the summed kernel body size (IR instructions,
	// excluding the final ret).
	TotalKernelInstrs int
	// SkippedDirect counts accesses straight to an alloca or global
	// (no address computation to protect).
	SkippedDirect int
	// SkippedUnavailable counts accesses whose Terminal Values are not
	// guaranteed retrievable (dead or local-only at the access), for
	// which no kernel is registered.
	SkippedUnavailable int
	// NumEquivalences counts induction-variable equivalences attached
	// to kernel parameters (the Figure-11 extension).
	NumEquivalences int
	// LivenessTime is the time spent in liveness analysis; the paper
	// reports >90% of Armor overhead there.
	LivenessTime time.Duration
	// TotalTime is the end-to-end Armor time.
	TotalTime time.Duration
}

// AvgKernelInstrs returns the mean kernel body size.
func (s Stats) AvgKernelInstrs() float64 {
	if s.NumKernels == 0 {
		return 0
	}
	return float64(s.TotalKernelInstrs) / float64(s.NumKernels)
}

// Result bundles Armor's outputs.
type Result struct {
	// Kernels is the recovery-kernel module (compile with
	// compiler.LibOptions into the recovery library).
	Kernels *ir.Module
	// Table is the recovery table describing every kernel.
	Table *rtable.Table
	// Stats describes the run.
	Stats Stats
}

// Options tunes Armor.
type Options struct {
	// Disabled liveness restriction (ablation): when true, Armor treats
	// every value as an acceptable Terminal Value regardless of
	// liveness, modelling a naive extractor whose parameters may be
	// unfetchable at run time.
	IgnoreLiveness bool
	// MaxKernelInstrs caps the cloned slice size; 0 means unlimited.
	MaxKernelInstrs int
	// NoEquivalences disables the Figure-11 extension: induction
	// variables then carry no affine-equivalence metadata and remain
	// unrecoverable when corrupted (the paper's published behaviour).
	NoEquivalences bool
}

// Run executes the Armor pass over an application module. The module is
// not mutated; kernels are emitted into a fresh module named
// <app>_rk.
func Run(app *ir.Module, opts Options) (*Result, error) {
	t0 := time.Now()
	res := &Result{
		Kernels: ir.NewModule(app.Name + "_rk"),
		Table:   &rtable.Table{},
	}
	simple := simpleFuncs(app)
	kb := ir.NewBuilder(res.Kernels)
	seen := map[rtable.Key]string{}
	kn := 0
	for _, f := range app.Funcs {
		if len(f.Blocks) == 0 || f.Kernel {
			continue
		}
		tl := time.Now()
		live := ir.ComputeLiveness(f)
		res.Stats.LivenessTime += time.Since(tl)
		ex := &extractor{live: live, simple: simple, opts: opts}
		var eqIdx *equivIndex
		if !opts.NoEquivalences {
			eqIdx = buildEquivIndex(f)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsMemAccess() {
					continue
				}
				res.Stats.NumMemAccesses++
				ptr, _ := in.PointerOperand()
				if isDirect(ptr) {
					res.Stats.SkippedDirect++
					continue
				}
				params, stmts, ok := ex.extract(in)
				if !ok {
					res.Stats.SkippedUnavailable++
					continue
				}
				if opts.MaxKernelInstrs > 0 && len(stmts) > opts.MaxKernelInstrs {
					res.Stats.SkippedUnavailable++
					continue
				}
				key := rtable.KeyOf(debuginfo.Key{File: f.File, Line: in.Loc.Line, Col: in.Loc.Col})
				if prev, dup := seen[key]; dup {
					return nil, fmt.Errorf("armor: duplicate debug key for %s/%s (%s) and %s",
						f.Name, in.Name, in.Op, prev)
				}
				symbol := fmt.Sprintf("__care_k%d", kn)
				kn++
				nInstr, err := buildKernel(kb, res.Kernels, symbol, ptr, params, stmts)
				if err != nil {
					return nil, fmt.Errorf("armor: %s: %w", f.Name, err)
				}
				seen[key] = symbol
				entry := rtable.Entry{Key: key, Symbol: symbol, Func: f.Name}
				for _, p := range params {
					rp := rtable.Param{
						Name:    nameOf(p),
						IsFloat: p.Type() == ir.F64,
					}
					if eqIdx != nil {
						rp.Equivs = eqIdx.equivsFor(p, in, live)
						res.Stats.NumEquivalences += len(rp.Equivs)
					}
					entry.Params = append(entry.Params, rp)
				}
				res.Table.Add(entry)
				res.Stats.NumKernels++
				res.Stats.TotalKernelInstrs += nInstr
			}
		}
	}
	res.Stats.TotalTime = time.Since(t0)
	return res, nil
}

// isDirect reports whether the pointer operand is an alloca or global
// accessed without any address computation.
func isDirect(ptr ir.Value) bool {
	if _, ok := ptr.(*ir.Global); ok {
		return true
	}
	if in, ok := ptr.(*ir.Instr); ok && in.Op == ir.OpAlloca {
		return true
	}
	return false
}

func nameOf(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Arg:
		return x.Name
	case *ir.Instr:
		return x.Name
	}
	return ""
}

// simpleFuncs finds functions Armor may treat as plain operators: pure
// computations that never store, allocate, or call anything but simple
// math host functions (paper §3.2 item 5).
func simpleFuncs(m *ir.Module) map[*ir.Func]bool {
	simple := map[*ir.Func]bool{}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 || f.RetType == ir.Void {
			continue
		}
		ok := true
	scan:
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStore, ir.OpAlloca:
					ok = false
					break scan
				case ir.OpCall:
					if in.Callee != nil || !hostenv.SimpleMathFuncs[in.Host] {
						ok = false
						break scan
					}
				}
			}
		}
		if ok {
			simple[f] = true
		}
	}
	return simple
}

// extractor implements the Figure 5 slice extraction for one function.
type extractor struct {
	live   *ir.Liveness
	simple map[*ir.Func]bool
	opts   Options
}

// availableAt reports whether v is a legal Terminal Value for the memory
// access at: constants and globals are compile-time constants, arguments
// persist in their incoming stack slots, and other values must be live
// at the access with a non-local use (the property that guarantees the
// machine-dependent lowering keeps them materialised).
func (x *extractor) availableAt(v ir.Value, at *ir.Instr) bool {
	switch v.(type) {
	case *ir.Const, *ir.Global, *ir.Arg:
		return true
	}
	if x.opts.IgnoreLiveness {
		return true
	}
	return x.live.LiveAt(v, at) && x.live.HasNonLocalUse(v)
}

// expandable implements isExpandable from the paper's Figure 5: v can be
// cloned into the kernel when it is a computation whose operands are all
// either retrievable at the access or themselves expandable.
func (x *extractor) expandable(v ir.Value, at *ir.Instr) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return false // alloca/global/argument/constant: stop points
	}
	switch in.Op {
	case ir.OpAlloca, ir.OpPhi:
		return false
	case ir.OpCall:
		if in.Callee != nil {
			if !x.simple[in.Callee] {
				return false
			}
		} else if !hostenv.SimpleMathFuncs[in.Host] {
			return false
		}
	case ir.OpLoad, ir.OpGEP, ir.OpIToF, ir.OpFToI:
		// Clonable: loads re-read (intact) memory at recovery time.
	default:
		if !in.Op.IsBinary() {
			return false
		}
	}
	for _, op := range in.Ops {
		if !x.availableAt(op, at) && !x.expandable(op, at) {
			return false
		}
	}
	return true
}

// extract computes the kernel parameters and cloned statements for the
// access at (the paper's getParamsAndStmts). It returns ok=false when
// some required parameter is not retrievable at run time, in which case
// no kernel is registered for the instruction.
func (x *extractor) extract(at *ir.Instr) (params []ir.Value, stmts []*ir.Instr, ok bool) {
	addr, _ := at.PointerOperand()
	inStmts := map[*ir.Instr]bool{}
	inParams := map[ir.Value]bool{}
	work := []ir.Value{addr}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		switch v.(type) {
		case *ir.Const, *ir.Global:
			continue // inlined into the kernel
		}
		if x.expandable(v, at) {
			in := v.(*ir.Instr)
			if inStmts[in] {
				continue
			}
			inStmts[in] = true
			stmts = append(stmts, in)
			for _, op := range in.Ops {
				work = append(work, op)
			}
			continue
		}
		if inParams[v] {
			continue
		}
		if !x.availableAt(v, at) {
			return nil, nil, false
		}
		inParams[v] = true
		params = append(params, v)
	}
	return params, stmts, true
}

// buildKernel clones the extracted slice into a fresh function of the
// kernel module and returns the body instruction count.
func buildKernel(kb *ir.Builder, kmod *ir.Module, symbol string, addr ir.Value, params []ir.Value, stmts []*ir.Instr) (int, error) {
	var fps []*ir.Arg
	for i, p := range params {
		t := p.Type()
		fps = append(fps, ir.Param(fmt.Sprintf("p%d_%s", i, nameOf(p)), t))
	}
	kf := kb.NewFunc(symbol, ir.Ptr, fps...)
	kf.Kernel = true

	inStmts := map[*ir.Instr]bool{}
	for _, s := range stmts {
		inStmts[s] = true
	}
	vmap := map[ir.Value]ir.Value{}
	for i, p := range params {
		vmap[p] = kf.Params[i]
	}
	n := 0
	var clone func(v ir.Value) (ir.Value, error)
	clone = func(v ir.Value) (ir.Value, error) {
		if nv, ok := vmap[v]; ok {
			return nv, nil
		}
		switch x := v.(type) {
		case *ir.Const:
			return x, nil
		case *ir.Global:
			g := kmod.Global(x.Name)
			if g == nil {
				g = kmod.AddGlobal(&ir.Global{Name: x.Name, Size: x.Size, Extern: true})
			}
			vmap[v] = g
			return g, nil
		case *ir.Instr:
			if !inStmts[x] {
				return nil, fmt.Errorf("kernel %s: value %%%s (%s) is neither param nor statement", symbol, x.Name, x.Op)
			}
			nops := make([]ir.Value, len(x.Ops))
			for i, op := range x.Ops {
				c, err := clone(op)
				if err != nil {
					return nil, err
				}
				nops[i] = c
			}
			ni := &ir.Instr{
				Op: x.Op, Typ: x.Typ, Ops: nops, Size: x.Size, Host: x.Host,
				Name: fmt.Sprintf("c%d", n),
			}
			if x.Callee != nil {
				ni.Callee = ensureDecl(kmod, x.Callee)
			}
			appendInstr(kb, ni)
			n++
			vmap[v] = ni
			return ni, nil
		}
		return nil, fmt.Errorf("kernel %s: unexpected value kind", symbol)
	}
	rv, err := clone(addr)
	if err != nil {
		return 0, err
	}
	kb.Ret(rv)
	return n, nil
}

// appendInstr emits a pre-built instruction through the builder's
// current block, preserving builder location bookkeeping.
func appendInstr(kb *ir.Builder, in *ir.Instr) {
	in.Parent = kb.Blk
	in.Loc = ir.Loc{Line: 1, Col: int32(len(kb.Blk.Instrs) + 1)}
	kb.Blk.Instrs = append(kb.Blk.Instrs, in)
}

// ensureDecl mirrors a callee as an extern declaration in the kernel
// module so the recovery library can be linked against the application's
// simple functions (the paper's "link with binary source files" step).
func ensureDecl(kmod *ir.Module, callee *ir.Func) *ir.Func {
	if f := kmod.Func(callee.Name); f != nil {
		return f
	}
	decl := &ir.Func{Name: callee.Name, File: kmod.Name + "/" + callee.Name, RetType: callee.RetType, Module: kmod}
	for _, p := range callee.Params {
		decl.Params = append(decl.Params, ir.Param(p.Name, p.Typ))
	}
	for i, p := range decl.Params {
		p.Index = i
		p.Fn = decl
	}
	kmod.Funcs = append(kmod.Funcs, decl)
	return decl
}
