package armor

import "care/internal/ir"

// CensusRow is one workload's address-computation census (the paper's
// Table 5): how many memory accesses involve multiple binary operations
// in their address calculation, and how many operations on average.
type CensusRow struct {
	Module string
	// MemAccesses is the total number of load/store instructions.
	MemAccesses int
	// MultiOp counts accesses whose address computation has >= 2
	// binary operations.
	MultiOp int
	// OpsInMulti sums the operation counts over the MultiOp accesses.
	OpsInMulti int
}

// PctMulti returns the percentage of accesses with multi-op address
// computations (Table 5 row "No. Insts").
func (c CensusRow) PctMulti() float64 {
	if c.MemAccesses == 0 {
		return 0
	}
	return 100 * float64(c.MultiOp) / float64(c.MemAccesses)
}

// AvgOps returns the average operation count among multi-op accesses
// (Table 5 row "Avg. No. ops").
func (c CensusRow) AvgOps() float64 {
	if c.MultiOp == 0 {
		return 0
	}
	return float64(c.OpsInMulti) / float64(c.MultiOp)
}

// Census walks every memory access of the module and counts the binary
// operations in its address-computation backward slice. The walk stops
// at slice leaves (constants, globals, arguments, allocas, phis) and
// does not descend through loads: an inner load's own address math
// belongs to that load's census entry.
func Census(m *ir.Module) CensusRow {
	row := CensusRow{Module: m.Name}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsMemAccess() {
					continue
				}
				row.MemAccesses++
				ptr, _ := in.PointerOperand()
				ops := countAddrOps(ptr, map[ir.Value]bool{})
				if ops >= 2 {
					row.MultiOp++
					row.OpsInMulti += ops
				}
			}
		}
	}
	return row
}

func countAddrOps(v ir.Value, seen map[ir.Value]bool) int {
	in, ok := v.(*ir.Instr)
	if !ok || seen[in] {
		return 0
	}
	seen[in] = true
	switch in.Op {
	case ir.OpAlloca, ir.OpPhi, ir.OpLoad:
		return 0
	case ir.OpGEP:
		n := 1 // the implicit add
		if _, isConst := in.Ops[1].(*ir.Const); !isConst {
			n = 2 // scale multiply + add
		}
		return n + countAddrOps(in.Ops[0], seen) + countAddrOps(in.Ops[1], seen)
	case ir.OpCall:
		n := 1
		for _, op := range in.Ops {
			n += countAddrOps(op, seen)
		}
		return n
	case ir.OpIToF, ir.OpFToI:
		return countAddrOps(in.Ops[0], seen)
	default:
		if !in.Op.IsBinary() {
			return 0
		}
		return 1 + countAddrOps(in.Ops[0], seen) + countAddrOps(in.Ops[1], seen)
	}
}
