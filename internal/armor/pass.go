package armor

import (
	"care/internal/defense"
	"care/internal/ir"
)

// carePass adapts Run to the defense.Pass interface so CARE's armor is
// the first registered defense ("care"). It is a repair pass: the
// module is left untouched and the recovery kernels plus encoded
// recovery table come back through the Result for core to link.
type carePass struct{}

func (carePass) Name() string { return "care" }

func (carePass) Apply(m *ir.Module, opt defense.Options) (*defense.Result, error) {
	var aopts Options
	if t, ok := opt.Tuning.(Options); ok {
		aopts = t
	}
	res, err := Run(m, aopts)
	if err != nil {
		return nil, err
	}
	return &defense.Result{
		Stats: defense.Stats{
			Pass:              "care",
			NumMemAccesses:    res.Stats.NumMemAccesses,
			Protected:         res.Stats.NumKernels,
			Skipped:           res.Stats.SkippedDirect + res.Stats.SkippedUnavailable,
			NumKernels:        res.Stats.NumKernels,
			TotalKernelInstrs: res.Stats.TotalKernelInstrs,
			NumEquivalences:   res.Stats.NumEquivalences,
			AnalysisTime:      res.Stats.LivenessTime,
			TotalTime:         res.Stats.TotalTime,
		},
		Kernels: res.Kernels,
		Table:   res.Table.Encode(),
	}, nil
}

func init() { defense.Register(carePass{}) }
