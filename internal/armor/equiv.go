package armor

import (
	"care/internal/ir"
	"care/internal/rtable"
)

// inductionVar is a loop-header phi with an affine update:
//
//	p = phi [init, preheader], [p + step, latch]
//
// step is restricted to loop-invariant values Safeguard can fetch or
// embed (constants and function arguments).
type inductionVar struct {
	phi   *ir.Instr
	init  ir.Value
	step  ir.Value
	latch *ir.Block
}

// inductionKey groups siblings that advance in lockstep: phis of the
// same header updated along the same latch edge.
type inductionKey struct {
	header *ir.Block
	latch  *ir.Block
}

// findInductionVars detects affine induction variables per loop. Two
// variables in the same group satisfy, at every point in the loop body,
//
//	(p - pInit) * qStep == (q - qInit) * pStep
//
// which is the equivalence Figure 11 proposes exploiting to reconstruct
// a corrupted induction variable from an intact sibling.
func findInductionVars(f *ir.Func) map[inductionKey][]inductionVar {
	groups := map[inductionKey][]inductionVar{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			if in.Typ != ir.I64 && in.Typ != ir.Ptr {
				continue
			}
			if len(in.Ops) != 2 {
				continue
			}
			for upd := 0; upd < 2; upd++ {
				uv, ok := in.Ops[upd].(*ir.Instr)
				if !ok || uv.Op != ir.OpAdd {
					continue
				}
				var step ir.Value
				if uv.Ops[0] == ir.Value(in) {
					step = uv.Ops[1]
				} else if uv.Ops[1] == ir.Value(in) {
					step = uv.Ops[0]
				} else {
					continue
				}
				if !invariantRefOK(step) {
					continue
				}
				iv := inductionVar{
					phi:   in,
					init:  in.Ops[1-upd],
					step:  step,
					latch: in.Blocks[upd],
				}
				k := inductionKey{header: b, latch: iv.latch}
				groups[k] = append(groups[k], iv)
				break
			}
		}
	}
	return groups
}

// invariantRefOK accepts quantities representable as a rtable.ValRef:
// constants (embedded) and named values (fetched via debug info at
// recovery time; arguments always have locations, other values may not
// — Safeguard skips the equivalence if a fetch fails).
func invariantRefOK(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Const:
		return x.Typ != ir.F64
	case *ir.Arg:
		return x.Typ == ir.I64 || x.Typ == ir.Ptr
	case *ir.Instr:
		return (x.Typ == ir.I64 || x.Typ == ir.Ptr) && x.Name != ""
	}
	return false
}

func valRefOf(v ir.Value) (rtable.ValRef, bool) {
	switch x := v.(type) {
	case *ir.Const:
		if x.Typ == ir.F64 {
			return rtable.ValRef{}, false
		}
		return rtable.ConstRef(x.I), true
	case *ir.Arg:
		return rtable.NameRef(x.Name), true
	case *ir.Instr:
		if x.Name == "" {
			return rtable.ValRef{}, false
		}
		return rtable.NameRef(x.Name), true
	}
	return rtable.ValRef{}, false
}

// equivIndex precomputes, per phi, its induction record and siblings.
type equivIndex struct {
	byPhi  map[*ir.Instr]inductionVar
	groups map[inductionKey][]inductionVar
	keyOf  map[*ir.Instr]inductionKey
}

func buildEquivIndex(f *ir.Func) *equivIndex {
	idx := &equivIndex{
		byPhi:  map[*ir.Instr]inductionVar{},
		groups: findInductionVars(f),
		keyOf:  map[*ir.Instr]inductionKey{},
	}
	for k, ivs := range idx.groups {
		for _, iv := range ivs {
			idx.byPhi[iv.phi] = iv
			idx.keyOf[iv.phi] = k
		}
	}
	return idx
}

// equivsFor returns the Figure-11 equivalences for parameter value p at
// memory access I: one per intact sibling induction variable that is
// live at I.
func (idx *equivIndex) equivsFor(p ir.Value, at *ir.Instr, live *ir.Liveness) []rtable.Equiv {
	phi, ok := p.(*ir.Instr)
	if !ok {
		return nil
	}
	iv, ok := idx.byPhi[phi]
	if !ok {
		return nil
	}
	pInit, ok := valRefOf(iv.init)
	if !ok {
		return nil
	}
	pStep, ok := valRefOf(iv.step)
	if !ok {
		return nil
	}
	var out []rtable.Equiv
	for _, sib := range idx.groups[idx.keyOf[phi]] {
		if sib.phi == phi || sib.phi.Typ == ir.F64 {
			continue
		}
		if !live.LiveAt(sib.phi, at) {
			continue // the sibling must be fetchable at the fault
		}
		qInit, ok := valRefOf(sib.init)
		if !ok {
			continue
		}
		qStep, ok := valRefOf(sib.step)
		if !ok {
			continue
		}
		out = append(out, rtable.Equiv{
			Other: sib.phi.Name,
			PInit: pInit, QInit: qInit,
			PStep: pStep, QStep: qStep,
		})
	}
	return out
}
