package armor

import (
	"strings"
	"testing"

	"care/internal/ir"
	"care/internal/irbuild"
)

// buildFixture constructs a function with a spectrum of memory accesses:
//
//	direct global access          -> no kernel
//	direct alloca access          -> no kernel
//	simple indexed access         -> kernel(param: phi)
//	deep chain with inner load    -> kernel cloning the inner load
//	access via a dead temporary   -> extraction stops per liveness
func buildFixture(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("fixture")
	data := m.AddGlobal(&ir.Global{Name: "data", Size: 64 * 8})
	idxs := m.AddGlobal(&ir.Global{Name: "idxs", Size: 16 * 8, InitI64: make([]int64, 16)})
	scalar := m.AddGlobal(&ir.Global{Name: "scalar", Size: 8, InitI64: []int64{3}})

	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	buf := fb.Alloca(8)
	fb.Store(irbuild.I(42), buf) // direct alloca store
	s := fb.Load(ir.I64, scalar) // direct global load
	fb.ForN(irbuild.I(0), irbuild.I(8), 1, func(i ir.Value) {
		fb.NewLine()
		iv := fb.LoadAt(ir.I64, idxs, i) // indexed via induction var
		fb.NewLine()
		off := fb.Add(fb.Mul(iv, s), i)
		v := fb.LoadAt(ir.F64, data, off) // deep chain w/ inner load
		fb.StoreAt(fb.FAdd(v, irbuild.F(1)), data, off)
	})
	fb.Result(fb.Load(ir.F64, fb.GEP(data, irbuild.I(0), 8)))
	fb.Ret(irbuild.I(0))
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDirectAccessesSkipped(t *testing.T) {
	res, err := Run(buildFixture(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.SkippedDirect < 2 {
		t.Errorf("expected >=2 direct accesses skipped, got %d", s.SkippedDirect)
	}
	if s.NumKernels+s.SkippedDirect+s.SkippedUnavailable != s.NumMemAccesses {
		t.Errorf("accounting broken: %+v", s)
	}
	if s.NumKernels == 0 {
		t.Fatal("no kernels")
	}
}

func TestKernelModuleIsValidAndIsolated(t *testing.T) {
	app := buildFixture(t)
	res, err := Run(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(res.Kernels); err != nil {
		t.Fatalf("kernel module invalid: %v", err)
	}
	for _, f := range res.Kernels.Funcs {
		if len(f.Blocks) == 0 {
			continue // declarations
		}
		if !f.Kernel {
			t.Errorf("%s not flagged as kernel", f.Name)
		}
		if f.RetType != ir.Ptr {
			t.Errorf("%s returns %s, want ptr", f.Name, f.RetType)
		}
		if len(f.Blocks) != 1 {
			t.Errorf("%s has %d blocks; kernels are straight-line", f.Name, len(f.Blocks))
		}
		// Kernels must not write memory or branch.
		for _, in := range f.Blocks[0].Instrs {
			switch in.Op {
			case ir.OpStore, ir.OpBr, ir.OpCondBr, ir.OpPhi, ir.OpAlloca:
				t.Errorf("%s contains %s", f.Name, in.Op)
			}
		}
	}
	// Referenced globals are extern mirrors of the app's.
	for _, g := range res.Kernels.Globals {
		if !g.Extern {
			t.Errorf("kernel global %s not extern", g.Name)
		}
		if app.Global(g.Name) == nil {
			t.Errorf("kernel global %s has no app counterpart", g.Name)
		}
	}
	// The app module itself must be unchanged by Armor (no mutation).
	if err := ir.VerifyModule(app); err != nil {
		t.Fatalf("app module damaged: %v", err)
	}
}

func TestTableEntriesConsistent(t *testing.T) {
	res, err := Run(buildFixture(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range res.Table.Entries {
		if seen[e.Symbol] {
			t.Errorf("duplicate symbol %s", e.Symbol)
		}
		seen[e.Symbol] = true
		kf := res.Kernels.Func(e.Symbol)
		if kf == nil {
			t.Fatalf("table references missing kernel %s", e.Symbol)
		}
		if len(kf.Params) != len(e.Params) {
			t.Errorf("%s: table lists %d params, kernel has %d", e.Symbol, len(e.Params), len(kf.Params))
		}
		for i, p := range e.Params {
			if p.Name == "" {
				t.Errorf("%s: empty param name", e.Symbol)
			}
			if p.IsFloat != (kf.Params[i].Typ == ir.F64) {
				t.Errorf("%s param %d: float flag mismatch", e.Symbol, i)
			}
		}
	}
	if len(res.Table.Entries) != res.Stats.NumKernels {
		t.Errorf("table has %d entries for %d kernels", len(res.Table.Entries), res.Stats.NumKernels)
	}
}

func TestInnerLoadsAreCloned(t *testing.T) {
	res, err := Run(buildFixture(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At least one kernel must contain a cloned load (the idxs[i]
	// indirection feeding the data[] address).
	found := false
	for _, f := range res.Kernels.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		for _, in := range f.Blocks[0].Instrs {
			if in.Op == ir.OpLoad {
				found = true
			}
		}
	}
	if !found {
		t.Error("no kernel clones an inner load; extraction stops too early")
	}
}

func TestIgnoreLivenessRegistersMoreKernels(t *testing.T) {
	normal, err := Run(buildFixture(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(buildFixture(t), Options{IgnoreLiveness: true})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Stats.NumKernels < normal.Stats.NumKernels {
		t.Errorf("ignoring liveness reduced kernels: %d < %d",
			loose.Stats.NumKernels, normal.Stats.NumKernels)
	}
	if loose.Stats.SkippedUnavailable > normal.Stats.SkippedUnavailable {
		t.Errorf("ignoring liveness increased unavailable skips")
	}
}

func TestMaxKernelInstrsCap(t *testing.T) {
	res, err := Run(buildFixture(t), Options{MaxKernelInstrs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Kernels.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		if n := len(f.Blocks[0].Instrs) - 1; n > 1 { // minus the ret
			t.Errorf("%s has %d instrs despite cap", f.Name, n)
		}
	}
}

func TestDuplicateKeysRejected(t *testing.T) {
	m := buildFixture(t)
	// Force two memory accesses to share a debug key.
	var accesses []*ir.Instr
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.IsMemAccess() {
					accesses = append(accesses, in)
				}
			}
		}
	}
	if len(accesses) < 2 {
		t.Skip("not enough accesses")
	}
	// Find two protected (non-direct) accesses and alias their Locs.
	var prot []*ir.Instr
	for _, in := range accesses {
		ptr, _ := in.PointerOperand()
		if !isDirect(ptr) {
			prot = append(prot, in)
		}
	}
	if len(prot) < 2 {
		t.Skip("not enough protected accesses")
	}
	prot[1].Loc = prot[0].Loc
	_, err := Run(m, Options{})
	if err == nil || !strings.Contains(err.Error(), "duplicate debug key") {
		t.Fatalf("duplicate keys accepted: %v", err)
	}
}

func TestSimpleFunctionDetection(t *testing.T) {
	m := ir.NewModule("sf")
	fb := irbuild.New(ir.NewBuilder(m))
	b := fb.Builder

	pure := b.NewFunc("pure", ir.I64, ir.Param("x", ir.I64))
	fb.Ret(fb.Mul(pure.Params[0], irbuild.I(3)))

	impure := b.NewFunc("impure", ir.I64, ir.Param("p", ir.Ptr))
	fb.Store(irbuild.I(1), impure.Params[0])
	fb.Ret(irbuild.I(0))

	mathy := b.NewFunc("mathy", ir.F64, ir.Param("x", ir.F64))
	fb.Ret(fb.Sqrt(mathy.Params[0]))

	simple := simpleFuncs(m)
	if !simple[pure] {
		t.Error("pure function not simple")
	}
	if simple[impure] {
		t.Error("storing function marked simple")
	}
	if !simple[mathy] {
		t.Error("sqrt-calling function not simple")
	}
}

func TestInductionEquivalenceDetection(t *testing.T) {
	m := ir.NewModule("ind")
	data := m.AddGlobal(&ir.Global{Name: "data", Size: 128 * 8})
	b := ir.NewBuilder(m)
	fb := irbuild.New(b)
	f := fb.NewFunc("main", ir.I64, ir.Param("stride", ir.I64))
	stride := f.Params[0]
	entry := f.Entry()
	header := fb.NewBlock("loop")
	body := fb.NewBlock("body")
	done := fb.NewBlock("done")
	fb.Br(header)
	fb.SetBlock(header)
	i := fb.Phi(ir.I64)
	ix := fb.Phi(ir.I64)
	cond := fb.ICmp(ir.OpICmpSLT, i, irbuild.I(10))
	fb.CondBr(cond, body, done)
	fb.SetBlock(body)
	fb.NewLine()
	_ = fb.LoadAt(ir.F64, data, ix)
	in := fb.Add(i, irbuild.I(1))
	ixn := fb.Add(ix, stride) // argument-valued step
	fb.Br(header)
	ir.AddIncoming(i, irbuild.I(0), entry)
	ir.AddIncoming(i, in, body)
	ir.AddIncoming(ix, irbuild.I(7), entry)
	ir.AddIncoming(ix, ixn, body)
	fb.SetBlock(done)
	fb.Ret(irbuild.I(0))
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}

	groups := findInductionVars(m.Func("main"))
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 2 {
		t.Fatalf("found %d induction vars, want 2", total)
	}

	res, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumEquivalences == 0 {
		t.Fatal("no equivalences registered")
	}
	// The ix parameter's equivalence must reference i with the right
	// step refs (pStep = stride arg by name, qStep = const 1).
	found := false
	for _, e := range res.Table.Entries {
		for _, p := range e.Params {
			for _, q := range p.Equivs {
				found = true
				if q.PStep.IsConst || q.PStep.Name != "stride" {
					t.Errorf("pStep ref = %+v, want name stride", q.PStep)
				}
				if !q.QStep.IsConst || q.QStep.Const != 1 {
					t.Errorf("qStep ref = %+v, want const 1", q.QStep)
				}
				if !q.PInit.IsConst || q.PInit.Const != 7 {
					t.Errorf("pInit ref = %+v, want const 7", q.PInit)
				}
			}
		}
	}
	if !found {
		t.Fatal("no equivalence on any parameter")
	}

	// With NoEquivalences, nothing is registered.
	res2, err := Run(m, Options{NoEquivalences: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.NumEquivalences != 0 {
		t.Fatal("NoEquivalences ignored")
	}
}
