// Package rtable implements CARE's Recovery Table: the compile-time
// artifact that tells the Safeguard runtime, for each protected memory
// access instruction, which recovery kernel to run and which values to
// feed it. Entries are keyed by the MD5 hash of the instruction's
// (file:line:column) debug tuple, exactly as in the paper (which used
// protobuf for the encoding and mhash for the digest; this package
// provides a compact custom binary codec instead).
package rtable

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"

	"care/internal/debuginfo"
)

// Key is the 16-byte MD5 digest of a source key.
type Key [16]byte

// KeyOf hashes a (file, line, column) tuple.
func KeyOf(k debuginfo.Key) Key {
	return md5.Sum([]byte(k.String()))
}

// Param names one input of a recovery kernel: an SSA value of the
// function containing the protected instruction, fetched at recovery
// time through the debug-info location lists.
type Param struct {
	// Name is the SSA value (or argument) name within Func.
	Name string
	// IsFloat marks F64 values (fetched from float registers).
	IsFloat bool
	// Equivs lists affine equivalences usable to *reconstruct* this
	// parameter when it is the corrupted value — the paper's Figure 11
	// induction-variable recovery (implemented here as an extension;
	// the paper lists it as future work).
	Equivs []Equiv
}

// ValRef names a runtime-fetchable quantity: either an embedded
// constant or another SSA value fetched via debug info.
type ValRef struct {
	IsConst bool
	Const   int64
	Name    string
}

// ConstRef builds a constant reference.
func ConstRef(v int64) ValRef { return ValRef{IsConst: true, Const: v} }

// NameRef builds a named-value reference.
func NameRef(n string) ValRef { return ValRef{Name: n} }

// Equiv describes how to reconstruct an induction variable p from a
// sibling induction variable q of the same loop:
//
//	p = pInit + (q - qInit) * pStep / qStep
//
// All four auxiliary quantities are loop-invariant; under the
// single-fault model, when the coverage-scope check proves some kernel
// input was corrupted and the relation yields a p different from the
// fetched one, the reconstructed p is the true value.
type Equiv struct {
	// Other is the sibling induction variable q.
	Other string
	// PInit/QInit are the entry values of p and q.
	PInit, QInit ValRef
	// PStep/QStep are the per-iteration increments.
	PStep, QStep ValRef
}

// Entry describes one recovery kernel.
type Entry struct {
	Key Key
	// Symbol is the kernel's function name in the recovery library.
	Symbol string
	// Func is the application function containing the protected
	// instruction (scopes the parameter names).
	Func string
	// Params are the kernel inputs, in call order.
	Params []Param
}

// Table is the full recovery table of one image.
type Table struct {
	Entries []Entry

	index map[Key]int
}

// Add appends an entry.
func (t *Table) Add(e Entry) { t.Entries = append(t.Entries, e) }

// buildIndex (re)builds the lookup map.
func (t *Table) buildIndex() {
	t.index = make(map[Key]int, len(t.Entries))
	for i, e := range t.Entries {
		t.index[e.Key] = i
	}
}

// Lookup finds the entry for a hashed key.
func (t *Table) Lookup(k Key) (*Entry, bool) {
	if t.index == nil {
		t.buildIndex()
	}
	i, ok := t.index[k]
	if !ok {
		return nil, false
	}
	return &t.Entries[i], true
}

// LookupSource hashes and looks up a source key.
func (t *Table) LookupSource(k debuginfo.Key) (*Entry, bool) {
	return t.Lookup(KeyOf(k))
}

const magic = "CARERTB2"

// Encode serialises the table.
func (t *Table) Encode() []byte {
	var b []byte
	b = append(b, magic...)
	b = binary.AppendUvarint(b, uint64(len(t.Entries)))
	appendStr := func(s string) {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	appendRef := func(r ValRef) {
		if r.IsConst {
			b = append(b, 1)
			b = binary.AppendVarint(b, r.Const)
		} else {
			b = append(b, 0)
			appendStr(r.Name)
		}
	}
	for _, e := range t.Entries {
		b = append(b, e.Key[:]...)
		appendStr(e.Symbol)
		appendStr(e.Func)
		b = binary.AppendUvarint(b, uint64(len(e.Params)))
		for _, p := range e.Params {
			appendStr(p.Name)
			if p.IsFloat {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.AppendUvarint(b, uint64(len(p.Equivs)))
			for _, q := range p.Equivs {
				appendStr(q.Other)
				appendRef(q.PInit)
				appendRef(q.QInit)
				appendRef(q.PStep)
				appendRef(q.QStep)
			}
		}
	}
	return b
}

// Decode deserialises a table; Safeguard does this lazily at the first
// fault, which is why decode cost shows up in the recovery-time
// breakdown rather than in normal execution.
func Decode(b []byte) (*Table, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("rtable: bad magic")
	}
	b = b[len(magic):]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("rtable: truncated varint")
		}
		b = b[n:]
		return v, nil
	}
	readStr := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if uint64(len(b)) < n {
			return "", fmt.Errorf("rtable: truncated string")
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	n, err := readUvarint()
	if err != nil {
		return nil, err
	}
	t := &Table{Entries: make([]Entry, 0, n)}
	for i := uint64(0); i < n; i++ {
		var e Entry
		if len(b) < 16 {
			return nil, fmt.Errorf("rtable: truncated key")
		}
		copy(e.Key[:], b[:16])
		b = b[16:]
		if e.Symbol, err = readStr(); err != nil {
			return nil, err
		}
		if e.Func, err = readStr(); err != nil {
			return nil, err
		}
		np, err := readUvarint()
		if err != nil {
			return nil, err
		}
		readRef := func() (ValRef, error) {
			if len(b) < 1 {
				return ValRef{}, fmt.Errorf("rtable: truncated valref")
			}
			isConst := b[0] == 1
			b = b[1:]
			if isConst {
				v, n := binary.Varint(b)
				if n <= 0 {
					return ValRef{}, fmt.Errorf("rtable: truncated const ref")
				}
				b = b[n:]
				return ValRef{IsConst: true, Const: v}, nil
			}
			name, err := readStr()
			if err != nil {
				return ValRef{}, err
			}
			return ValRef{Name: name}, nil
		}
		for j := uint64(0); j < np; j++ {
			var p Param
			if p.Name, err = readStr(); err != nil {
				return nil, err
			}
			if len(b) < 1 {
				return nil, fmt.Errorf("rtable: truncated param flag")
			}
			p.IsFloat = b[0] == 1
			b = b[1:]
			nq, err := readUvarint()
			if err != nil {
				return nil, err
			}
			for k := uint64(0); k < nq; k++ {
				var q Equiv
				if q.Other, err = readStr(); err != nil {
					return nil, err
				}
				if q.PInit, err = readRef(); err != nil {
					return nil, err
				}
				if q.QInit, err = readRef(); err != nil {
					return nil, err
				}
				if q.PStep, err = readRef(); err != nil {
					return nil, err
				}
				if q.QStep, err = readRef(); err != nil {
					return nil, err
				}
				p.Equivs = append(p.Equivs, q)
			}
			e.Params = append(e.Params, p)
		}
		t.Entries = append(t.Entries, e)
	}
	t.buildIndex()
	return t, nil
}
