package rtable

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"care/internal/debuginfo"
)

func TestKeyOfIsStable(t *testing.T) {
	k1 := KeyOf(debuginfo.Key{File: "m/f", Line: 3, Col: 7})
	k2 := KeyOf(debuginfo.Key{File: "m/f", Line: 3, Col: 7})
	if k1 != k2 {
		t.Fatal("hashing not deterministic")
	}
	k3 := KeyOf(debuginfo.Key{File: "m/f", Line: 3, Col: 8})
	if k1 == k3 {
		t.Fatal("distinct tuples collide trivially")
	}
	// The key string form feeds MD5 exactly as the paper's
	// (file,line,col) tuple.
	if (debuginfo.Key{File: "a", Line: 1, Col: 2}).String() != "a:1:2" {
		t.Fatal("key string form changed")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tb := &Table{}
	tb.Add(Entry{
		Key:    KeyOf(debuginfo.Key{File: "w/main", Line: 4, Col: 2}),
		Symbol: "__care_k0", Func: "main",
		Params: []Param{{Name: "v1"}, {Name: "v2", IsFloat: true}},
	})
	tb.Add(Entry{
		Key:    KeyOf(debuginfo.Key{File: "w/helper", Line: 9, Col: 1}),
		Symbol: "__care_k1", Func: "helper",
	})
	dec, err := Decode(tb.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Entries, tb.Entries) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", dec.Entries, tb.Entries)
	}
	e, ok := dec.LookupSource(debuginfo.Key{File: "w/main", Line: 4, Col: 2})
	if !ok || e.Symbol != "__care_k0" || len(e.Params) != 2 {
		t.Fatalf("lookup after decode: %+v %v", e, ok)
	}
	if _, ok := dec.LookupSource(debuginfo.Key{File: "w/main", Line: 4, Col: 3}); ok {
		t.Fatal("lookup of absent key succeeded")
	}
}

// TestRoundTripProperty: random tables round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := &Table{}
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			var k Key
			rng.Read(k[:])
			e := Entry{Key: k, Symbol: randStr(rng), Func: randStr(rng)}
			for j := rng.Intn(5); j > 0; j-- {
				e.Params = append(e.Params, Param{Name: randStr(rng), IsFloat: rng.Intn(2) == 1})
			}
			tb.Add(e)
		}
		dec, err := Decode(tb.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec.Entries, tb.Entries) ||
			(len(dec.Entries) == 0 && len(tb.Entries) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randStr(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz_0123456789"
	b := make([]byte, 1+rng.Intn(12))
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
		append([]byte("CARERTB1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff), // giant count then truncation
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated valid table.
	tb := &Table{}
	tb.Add(Entry{Symbol: "s", Func: "f", Params: []Param{{Name: "p"}}})
	enc := tb.Encode()
	for cut := len(enc) - 1; cut > 8; cut -= 3 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLookupIndexRebuild(t *testing.T) {
	tb := &Table{}
	k := KeyOf(debuginfo.Key{File: "x", Line: 1, Col: 1})
	tb.Add(Entry{Key: k, Symbol: "s", Func: "f"})
	// Lookup without an explicit decode must build the index lazily.
	if _, ok := tb.Lookup(k); !ok {
		t.Fatal("lazy index lookup failed")
	}
}
