package workloads

import (
	"math"
	"testing"

	"care/internal/core"
	"care/internal/interp"
	"care/internal/ir"
	"care/internal/machine"
)

// runCompiled executes a workload's compiled image and returns its
// result stream.
func runCompiled(t *testing.T, m *ir.Module, opt int) []float64 {
	t.Helper()
	bin, err := core.Build(m, core.BuildOptions{OptLevel: opt})
	if err != nil {
		t.Fatalf("build O%d: %v", opt, err)
	}
	p, err := core.NewProcess(core.ProcessConfig{App: bin})
	if err != nil {
		t.Fatalf("process: %v", err)
	}
	if st := p.Run(500_000_000); st != machine.StatusExited {
		t.Fatalf("O%d run: %v (trap %v at pc=0x%x)", opt, st, p.CPU.PendingTrap, p.CPU.PC)
	}
	return append([]float64(nil), p.Results()...)
}

// TestWorkloadsDifferential cross-checks every workload three ways: the
// IR interpreter, the O0 compiled image, and the O1 compiled image must
// produce bit-identical result streams.
func TestWorkloadsDifferential(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mi := w.Module(Params{})
			want, err := interp.Run(1<<32, mi)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			if len(want) == 0 {
				t.Fatal("workload produced no results")
			}
			for _, v := range want {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite result in golden stream: %v", want)
				}
			}
			for _, opt := range []int{0, 1} {
				got := runCompiled(t, w.Module(Params{}), opt)
				if len(got) != len(want) {
					t.Fatalf("O%d: %d results, want %d", opt, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("O%d: result[%d] = %v, want %v", opt, i, got[i], want[i])
					}
				}
			}
			t.Logf("%s: %d results, first=%g last=%g", w.Name, len(want), want[0], want[len(want)-1])
		})
	}
}

// TestWorkloadsBuildWithArmor ensures Armor handles every workload and
// produces kernels for most memory accesses.
func TestWorkloadsBuildWithArmor(t *testing.T) {
	for _, w := range All() {
		for _, opt := range []int{0, 1} {
			bin, err := core.Build(w.Module(Params{}), core.BuildOptions{OptLevel: opt, Defenses: []string{"care"}})
			if err != nil {
				t.Fatalf("%s O%d: %v", w.Name, opt, err)
			}
			s := bin.DefenseStats["care"]
			if s.NumKernels == 0 {
				t.Errorf("%s O%d: no kernels", w.Name, opt)
			}
			cov := float64(s.NumKernels) / float64(s.NumMemAccesses)
			t.Logf("%s O%d: mem=%d kernels=%d (%.0f%%) avg=%.2f instrs, census: %.1f%% multi-op avg %.2f ops",
				w.Name, opt, s.NumMemAccesses, s.NumKernels, 100*cov,
				s.AvgKernelInstrs(), bin.Census.PctMulti(), bin.Census.AvgOps())
		}
	}
}

// TestDeterministicBuild double-builds each workload and checks the
// machine code is identical (campaign reproducibility depends on it).
func TestDeterministicBuild(t *testing.T) {
	for _, w := range All() {
		a, err := core.Build(w.Module(Params{}), core.BuildOptions{OptLevel: 1, Defenses: []string{"care"}})
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Build(w.Module(Params{}), core.BuildOptions{OptLevel: 1, Defenses: []string{"care"}})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Prog.Code) != len(b.Prog.Code) {
			t.Fatalf("%s: nondeterministic code size %d vs %d", w.Name, len(a.Prog.Code), len(b.Prog.Code))
		}
		for i := range a.Prog.Code {
			if machine.Disassemble(&a.Prog.Code[i]) != machine.Disassemble(&b.Prog.Code[i]) {
				t.Fatalf("%s: instruction %d differs between builds", w.Name, i)
			}
		}
	}
}
