package workloads

import (
	"care/internal/ir"
	. "care/internal/irbuild"
)

func init() {
	register(&Workload{
		Name: "miniMD",
		Lang: "C++",
		Description: "A simple, parallel molecular dynamics (MD) code. It performs " +
			"parallel molecular dynamics simulation of a Lennard-Jones or a EAM system.",
		Defaults:       Params{NX: 3, NY: 3, NZ: 3, Steps: 2, NParticles: 36, Seed: 23},
		ResultsPerStep: 2,
		Build:          buildMiniMD,
		InEvaluation:   true,
	})
}

// buildMiniMD constructs the neighbor-list variant of Lennard-Jones MD
// (miniMD's force kernel): atoms are binned, an explicit neighbor list
// neigh[i*MAXN + k] of atom *indices* is built with a skin radius, and
// the force loop walks the list with two levels of indirection —
// x[3*neigh[i*MAXN+k] + d] — the most address-computation-dense pattern
// of the suite. Positions are stored interleaved (x0 y0 z0 x1 ...),
// unlike CoMD's per-cell SoA, for layout diversity.
func buildMiniMD(p Params) *ir.Module {
	nbx, nby, nbz := int64(p.NX), int64(p.NY), int64(p.NZ)
	nbins := nbx * nby * nbz
	natoms := int64(p.NParticles)
	steps := int64(p.Steps)
	const maxb = 10 // atoms per bin
	const maxn = 24 // neighbors per atom
	binSize := 1.45
	lx, ly, lz := float64(nbx)*binSize, float64(nby)*binSize, float64(nbz)*binSize
	cut2 := 1.21      // force cutoff^2
	cutNeigh2 := 1.69 // (cutoff+skin)^2

	rng := newLCG(p.Seed)
	rawpos := make([]float64, 3*natoms)
	rawvel := make([]float64, 3*natoms)
	side := int64(1)
	for side*side*side < natoms {
		side++
	}
	for i := int64(0); i < natoms; i++ {
		ix, iy, iz := i%side, (i/side)%side, i/(side*side)
		rawpos[3*i+0] = (float64(ix) + 0.3 + 0.4*rng.f64()) * lx / float64(side)
		rawpos[3*i+1] = (float64(iy) + 0.3 + 0.4*rng.f64()) * ly / float64(side)
		rawpos[3*i+2] = (float64(iz) + 0.3 + 0.4*rng.f64()) * lz / float64(side)
		for d := 0; d < 3; d++ {
			rawvel[3*i+int64(d)] = 0.25 * (rng.f64() - 0.5)
		}
	}

	m := ir.NewModule("miniMD")
	gX := m.AddGlobal(&ir.Global{Name: "x", Size: 3 * natoms * 8, InitF64: rawpos})
	gV := m.AddGlobal(&ir.Global{Name: "v", Size: 3 * natoms * 8, InitF64: rawvel})
	gF := m.AddGlobal(&ir.Global{Name: "f", Size: 3 * natoms * 8})
	gBinCnt := m.AddGlobal(&ir.Global{Name: "bincnt", Size: nbins * 8})
	gBins := m.AddGlobal(&ir.Global{Name: "bins", Size: nbins * maxb * 8})
	gNumNeigh := m.AddGlobal(&ir.Global{Name: "numneigh", Size: natoms * 8})
	gNeigh := m.AddGlobal(&ir.Global{Name: "neigh", Size: natoms * maxn * 8})
	gPot := m.AddGlobal(&ir.Global{Name: "epot", Size: 8})

	b := ir.NewBuilder(m)
	fb := New(b)

	// bin_index(bx,by,bz) with periodic wrap (simple function).
	binIndex := b.NewFunc("bin_index", ir.I64,
		ir.Param("bx", ir.I64), ir.Param("by", ir.I64), ir.Param("bz", ir.I64))
	{
		bx, by, bz := binIndex.Params[0], binIndex.Params[1], binIndex.Params[2]
		wx := fb.SRem(fb.Add(bx, I(nbx)), I(nbx))
		wy := fb.SRem(fb.Add(by, I(nby)), I(nby))
		wz := fb.SRem(fb.Add(bz, I(nbz)), I(nbz))
		fb.Ret(fb.Add(wx, fb.Mul(I(nbx), fb.Add(wy, fb.Mul(I(nby), wz)))))
	}

	b.NewFunc("main", ir.I64)
	na := I(natoms)
	dt := F(0.004)

	coord := func(i ir.Value, d int64) ir.Value {
		return fb.LoadAt(ir.F64, gX, fb.Add(fb.Mul(i, I(3)), I(d)))
	}
	minImage := func(d ir.Value, l float64) ir.Value {
		d1 := fb.If(fb.FCmp(ir.OpFCmpOGT, d, F(l/2)),
			func() []ir.Value { return []ir.Value{fb.FSub(d, F(l))} },
			func() []ir.Value { return []ir.Value{d} })[0]
		return fb.If(fb.FCmp(ir.OpFCmpOLT, d1, F(-l/2)),
			func() []ir.Value { return []ir.Value{fb.FAdd(d1, F(l))} },
			func() []ir.Value { return []ir.Value{d1} })[0]
	}

	// buildNeighbors: bin all atoms, then for each atom scan the 27
	// surrounding bins and record indices within the skin radius.
	buildNeighbors := func() {
		fb.ForN(I(0), I(nbins), 1, func(bin ir.Value) {
			fb.StoreAt(I(0), gBinCnt, bin)
		})
		fb.ForN(I(0), na, 1, func(i ir.Value) {
			fb.NewLine()
			bx := fb.FToI(fb.FDiv(coord(i, 0), F(binSize)))
			by := fb.FToI(fb.FDiv(coord(i, 1), F(binSize)))
			bz := fb.FToI(fb.FDiv(coord(i, 2), F(binSize)))
			bin := fb.Call(binIndex, bx, by, bz)
			cnt := fb.LoadAt(ir.I64, gBinCnt, bin)
			fb.Assert(fb.ICmp(ir.OpICmpSLT, cnt, I(maxb)), 41)
			fb.StoreAt(i, gBins, fb.Add(fb.Mul(bin, I(maxb)), cnt))
			fb.StoreAt(fb.Add(cnt, I(1)), gBinCnt, bin)
		})
		fb.ForN(I(0), na, 1, func(i ir.Value) {
			fb.NewLine()
			xi := coord(i, 0)
			yi := coord(i, 1)
			zi := coord(i, 2)
			bx := fb.FToI(fb.FDiv(xi, F(binSize)))
			by := fb.FToI(fb.FDiv(yi, F(binSize)))
			bz := fb.FToI(fb.FDiv(zi, F(binSize)))
			nn := fb.For(I(-1), I(2), 1, []ir.Value{I(0)}, func(dz ir.Value, c []ir.Value) []ir.Value {
				return fb.For(I(-1), I(2), 1, c, func(dy ir.Value, c []ir.Value) []ir.Value {
					return fb.For(I(-1), I(2), 1, c, func(dx ir.Value, c []ir.Value) []ir.Value {
						bin := fb.Call(binIndex, fb.Add(bx, dx), fb.Add(by, dy), fb.Add(bz, dz))
						cnt := fb.LoadAt(ir.I64, gBinCnt, bin)
						return fb.For(I(0), cnt, 1, c, func(k ir.Value, c []ir.Value) []ir.Value {
							fb.NewLine()
							j := fb.LoadAt(ir.I64, gBins, fb.Add(fb.Mul(bin, I(maxb)), k))
							skip := fb.ICmp(ir.OpICmpEQ, i, j)
							return fb.If(skip, func() []ir.Value { return c }, func() []ir.Value {
								fb.NewLine()
								ddx := minImage(fb.FSub(xi, coord(j, 0)), lx)
								ddy := minImage(fb.FSub(yi, coord(j, 1)), ly)
								ddz := minImage(fb.FSub(zi, coord(j, 2)), lz)
								r2 := fb.FAdd(fb.FMul(ddx, ddx), fb.FAdd(fb.FMul(ddy, ddy), fb.FMul(ddz, ddz)))
								in := fb.FCmp(ir.OpFCmpOLT, r2, F(cutNeigh2))
								return fb.If(in, func() []ir.Value {
									fb.Assert(fb.ICmp(ir.OpICmpSLT, c[0], I(maxn)), 42)
									fb.StoreAt(j, gNeigh, fb.Add(fb.Mul(i, I(maxn)), c[0]))
									return []ir.Value{fb.Add(c[0], I(1))}
								}, func() []ir.Value { return c })
							})
						})
					})
				})
			})
			fb.StoreAt(nn[0], gNumNeigh, i)
		})
	}

	// force: walk the neighbor list with full double-counting (miniMD's
	// half-neighbor optimisation is omitted; energies are halved).
	force := func() {
		fb.ForN(I(0), I(3*natoms), 1, func(s ir.Value) {
			fb.StoreAt(F(0), gF, s)
		})
		fb.Store(F(0), gPot)
		fb.ForN(I(0), na, 1, func(i ir.Value) {
			fb.NewLine()
			xi := coord(i, 0)
			yi := coord(i, 1)
			zi := coord(i, 2)
			cnt := fb.LoadAt(ir.I64, gNumNeigh, i)
			acc := fb.For(I(0), cnt, 1, []ir.Value{F(0), F(0), F(0), F(0)}, func(k ir.Value, acc []ir.Value) []ir.Value {
				fb.NewLine()
				// The miniMD double indirection: j = neigh[i*MAXN+k],
				// then x[3*j+d].
				j := fb.LoadAt(ir.I64, gNeigh, fb.Add(fb.Mul(i, I(maxn)), k))
				ddx := minImage(fb.FSub(xi, coord(j, 0)), lx)
				ddy := minImage(fb.FSub(yi, coord(j, 1)), ly)
				ddz := minImage(fb.FSub(zi, coord(j, 2)), lz)
				r2 := fb.FAdd(fb.FMul(ddx, ddx), fb.FAdd(fb.FMul(ddy, ddy), fb.FMul(ddz, ddz)))
				ok := fb.And(fb.FCmp(ir.OpFCmpOLT, r2, F(cut2)), fb.FCmp(ir.OpFCmpOGT, r2, F(0.36)))
				return fb.If(ok, func() []ir.Value {
					r2i := fb.FDiv(F(1), r2)
					r6 := fb.FMul(r2i, fb.FMul(r2i, r2i))
					fmag := fb.FMul(F(48), fb.FMul(r6, fb.FMul(fb.FSub(r6, F(0.5)), r2i)))
					e := fb.FMul(F(2), fb.FMul(r6, fb.FSub(r6, F(1)))) // half of 4eps
					return []ir.Value{
						fb.FAdd(acc[0], fb.FMul(fmag, ddx)),
						fb.FAdd(acc[1], fb.FMul(fmag, ddy)),
						fb.FAdd(acc[2], fb.FMul(fmag, ddz)),
						fb.FAdd(acc[3], e),
					}
				}, func() []ir.Value { return acc })
			})
			fb.NewLine()
			base := fb.Mul(i, I(3))
			fb.StoreAt(acc[0], gF, base)
			fb.StoreAt(acc[1], gF, fb.Add(base, I(1)))
			fb.StoreAt(acc[2], gF, fb.Add(base, I(2)))
			fb.AddF(gPot, I(0), acc[3])
		})
	}

	buildNeighbors()
	force()

	wrap := func(x ir.Value, l float64) ir.Value {
		x1 := fb.If(fb.FCmp(ir.OpFCmpOGE, x, F(l)),
			func() []ir.Value { return []ir.Value{fb.FSub(x, F(l))} },
			func() []ir.Value { return []ir.Value{x} })[0]
		return fb.If(fb.FCmp(ir.OpFCmpOLT, x1, F(0)),
			func() []ir.Value { return []ir.Value{fb.FAdd(x1, F(l))} },
			func() []ir.Value { return []ir.Value{x1} })[0]
	}

	fb.ForN(I(0), I(steps), 1, func(step ir.Value) {
		kick := func() {
			fb.ForN(I(0), I(3*natoms), 1, func(s ir.Value) {
				fb.NewLine()
				v := fb.LoadAt(ir.F64, gV, s)
				f := fb.LoadAt(ir.F64, gF, s)
				fb.StoreAt(fb.FAdd(v, fb.FMul(F(0.5), fb.FMul(dt, f))), gV, s)
			})
		}
		kick()
		ls := [3]float64{lx, ly, lz}
		fb.ForN(I(0), na, 1, func(i ir.Value) {
			for d := int64(0); d < 3; d++ {
				fb.NewLine()
				s := fb.Add(fb.Mul(i, I(3)), I(d))
				x := fb.LoadAt(ir.F64, gX, s)
				v := fb.LoadAt(ir.F64, gV, s)
				fb.StoreAt(wrap(fb.FAdd(x, fb.FMul(dt, v)), ls[d]), gX, s)
			}
		})
		buildNeighbors()
		force()
		kick()

		ke := fb.For(I(0), I(3*natoms), 1, []ir.Value{F(0)}, func(s ir.Value, c []ir.Value) []ir.Value {
			v := fb.LoadAt(ir.F64, gV, s)
			return []ir.Value{fb.FAdd(c[0], fb.FMul(F(0.5), fb.FMul(v, v)))}
		})
		fb.Result(fb.HostCall("mpi_allreduce_sum_f64", ir.F64, fb.Load(ir.F64, gPot)))
		fb.Result(fb.HostCall("mpi_allreduce_sum_f64", ir.F64, ke[0]))
	})
	fb.Ret(I(0))

	if err := ir.VerifyModule(m); err != nil {
		panic("workloads: miniMD: " + err.Error())
	}
	return m
}
