package workloads

import (
	"care/internal/ir"
	. "care/internal/irbuild"
)

func init() {
	register(&Workload{
		Name: "GTC-P",
		Lang: "C",
		Description: "A 2D domain decomposition version of the GTC global " +
			"gyrokinetic PIC code for studying micro-turbulent core transport.",
		Defaults:       Params{NX: 6 /* mpsi */, NZ: 2 /* mzeta */, Steps: 2, NParticles: 150, Seed: 7},
		ResultsPerStep: 2,
		Build:          buildGTCP,
		InEvaluation:   true,
	})
}

// buildGTCP constructs a particle-in-cell charge/field/push cycle with
// the exact field-array indexing of the paper's Figure 2:
//
//	phitmp[(mzeta+1)*(igrid[ip]-igrid_in) + k]
//
// The poloidal grid is non-uniform (mtheta varies per flux surface), so
// grid offsets really do come from the igrid[] indirection table, and
// the raw inputs of the address computation (igrid, mzeta, igrid_in)
// are initialised once and never written again — the paper's
// "infrequently updated raw data" property.
func buildGTCP(p Params) *ir.Module {
	mpsi := p.NX  // flux surfaces 0..mpsi
	mzeta := p.NZ // toroidal planes per rank
	npart := p.NParticles
	steps := p.Steps
	ghost := int64(3) // igrid ghost offset; igrid_in = igrid[0]

	// Precompute the non-uniform poloidal grid.
	mtheta := make([]int64, mpsi+1)
	igrid := make([]int64, mpsi+1)
	off := ghost
	for i := 0; i <= mpsi; i++ {
		mtheta[i] = int64(8 + 2*i)
		igrid[i] = off
		off += mtheta[i]
	}
	mgrid := off - ghost // interior grid points
	fieldLen := (int64(mzeta) + 1) * (mgrid + ghost + 4)

	// Deterministic particle load.
	rng := newLCG(p.Seed)
	zion0 := make([]float64, npart) // radial surface coordinate [0, mpsi)
	zion1 := make([]float64, npart) // poloidal coordinate [0, 1)
	zion2 := make([]float64, npart) // toroidal coordinate [0, mzeta)
	zion3 := make([]float64, npart) // particle weight
	for i := 0; i < npart; i++ {
		zion0[i] = rng.f64() * float64(mpsi)
		zion1[i] = rng.f64()
		zion2[i] = rng.f64() * float64(mzeta)
		zion3[i] = 0.5 + rng.f64()
	}

	m := ir.NewModule("GTC-P")
	gZ0 := m.AddGlobal(&ir.Global{Name: "zion0", Size: int64(npart) * 8, InitF64: zion0})
	gZ1 := m.AddGlobal(&ir.Global{Name: "zion1", Size: int64(npart) * 8, InitF64: zion1})
	gZ2 := m.AddGlobal(&ir.Global{Name: "zion2", Size: int64(npart) * 8, InitF64: zion2})
	gZ3 := m.AddGlobal(&ir.Global{Name: "zion3", Size: int64(npart) * 8, InitF64: zion3})
	gMtheta := m.AddGlobal(&ir.Global{Name: "mtheta", Size: int64(mpsi+1) * 8, InitI64: mtheta})
	gIgrid := m.AddGlobal(&ir.Global{Name: "igrid", Size: int64(mpsi+1) * 8, InitI64: igrid})
	gMzeta := m.AddGlobal(&ir.Global{Name: "mzeta", Size: 8, InitI64: []int64{int64(mzeta)}})
	gIgridIn := m.AddGlobal(&ir.Global{Name: "igrid_in", Size: 8, InitI64: []int64{ghost}})
	gPhitmp := m.AddGlobal(&ir.Global{Name: "phitmp", Size: fieldLen * 8})
	gPhi := m.AddGlobal(&ir.Global{Name: "phi", Size: fieldLen * 8})

	b := ir.NewBuilder(m)
	fb := New(b)

	// fieldIndex(cell, k, mzetap1, igridIn) — the Figure 1 recovery
	// kernel's computation as a real (simple, hence clonable) function.
	fieldIndex := b.NewFunc("field_index", ir.I64,
		ir.Param("cell", ir.I64), ir.Param("k", ir.I64),
		ir.Param("mzetap1", ir.I64), ir.Param("igrid_in", ir.I64))
	{
		cell, k, mzp1, gin := fieldIndex.Params[0], fieldIndex.Params[1], fieldIndex.Params[2], fieldIndex.Params[3]
		fb.Ret(fb.Add(fb.Mul(mzp1, fb.Sub(cell, gin)), k))
	}

	b.NewFunc("main", ir.I64)
	mz := fb.Load(ir.I64, gMzeta)
	gin := fb.Load(ir.I64, gIgridIn)
	mzp1 := fb.Add(mz, I(1))
	np := I(int64(npart))
	flen := I(fieldLen)
	dt := F(0.04)

	// locate(p) inlined per loop: surface, poloidal cell, toroidal cell.
	locate := func(ip ir.Value) (ipr, cell, k0 ir.Value, frac, zeta ir.Value) {
		fb.NewLine()
		r := fb.LoadAt(ir.F64, gZ0, ip)
		iprV := fb.FToI(r)
		fb.Assert(fb.And(
			fb.ICmp(ir.OpICmpSGE, iprV, I(0)),
			fb.ICmp(ir.OpICmpSLE, iprV, I(int64(mpsi)))), 71)
		mt := fb.LoadAt(ir.I64, gMtheta, iprV)
		tpos := fb.LoadAt(ir.F64, gZ1, ip)
		jt := fb.FToI(fb.FMul(tpos, fb.IToF(mt)))
		jt = fb.SRem(jt, mt)
		base := fb.LoadAt(ir.I64, gIgrid, iprV)
		cellV := fb.Add(base, jt)
		z := fb.LoadAt(ir.F64, gZ2, ip)
		k0V := fb.FToI(z)
		fb.Assert(fb.And(
			fb.ICmp(ir.OpICmpSGE, k0V, I(0)),
			fb.ICmp(ir.OpICmpSLT, k0V, I(int64(mzeta)+1))), 72)
		fr := fb.FSub(z, fb.IToF(k0V))
		return iprV, cellV, k0V, fr, z
	}

	fb.ForN(I(0), I(int64(steps)), 1, func(step ir.Value) {
		// chargei: zero the density array, then deposit every particle
		// with linear weighting between toroidal planes.
		fb.ForN(I(0), flen, 1, func(j ir.Value) {
			fb.StoreAt(F(0), gPhitmp, j)
		})
		fb.ForN(I(0), np, 1, func(ip ir.Value) {
			_, cell, k0, frac, _ := locate(ip)
			w := fb.LoadAt(ir.F64, gZ3, ip)
			fb.NewLine()
			idx0 := fb.Call(fieldIndex, cell, k0, mzp1, gin)
			fb.AddF(gPhitmp, idx0, fb.FMul(w, fb.FSub(F(1), frac)))
			fb.NewLine()
			k1 := fb.Add(k0, I(1))
			idx1 := fb.Call(fieldIndex, cell, k1, mzp1, gin)
			fb.AddF(gPhitmp, idx1, fb.FMul(w, frac))
		})

		// smooth/poisson stand-in: poloidal three-point smoothing into
		// phi, with wraparound indexing inside each flux surface.
		fb.ForN(I(0), I(int64(mpsi)+1), 1, func(is ir.Value) {
			mt := fb.LoadAt(ir.I64, gMtheta, is)
			base := fb.LoadAt(ir.I64, gIgrid, is)
			fb.ForN(I(0), mt, 1, func(j ir.Value) {
				jl := fb.SRem(fb.Add(j, fb.Sub(mt, I(1))), mt)
				jr := fb.SRem(fb.Add(j, I(1)), mt)
				fb.ForN(I(0), mzp1, 1, func(k ir.Value) {
					fb.NewLine()
					c := fb.Call(fieldIndex, fb.Add(base, j), k, mzp1, gin)
					l := fb.Call(fieldIndex, fb.Add(base, jl), k, mzp1, gin)
					r := fb.Call(fieldIndex, fb.Add(base, jr), k, mzp1, gin)
					cv := fb.LoadAt(ir.F64, gPhitmp, c)
					lv := fb.LoadAt(ir.F64, gPhitmp, l)
					rv := fb.LoadAt(ir.F64, gPhitmp, r)
					s := fb.FAdd(fb.FMul(F(0.5), cv), fb.FMul(F(0.25), fb.FAdd(lv, rv)))
					fb.StoreAt(s, gPhi, c)
				})
			})
		})

		// pushi: gather the poloidal electric field at the particle and
		// advance the poloidal/toroidal coordinates.
		fb.ForN(I(0), np, 1, func(ip ir.Value) {
			ipr, cell, k0, _, zeta := locate(ip)
			mt := fb.LoadAt(ir.I64, gMtheta, ipr)
			base := fb.LoadAt(ir.I64, gIgrid, ipr)
			jt := fb.Sub(cell, base)
			jl := fb.SRem(fb.Add(jt, fb.Sub(mt, I(1))), mt)
			jr := fb.SRem(fb.Add(jt, I(1)), mt)
			fb.NewLine()
			il := fb.Call(fieldIndex, fb.Add(base, jl), k0, mzp1, gin)
			irx := fb.Call(fieldIndex, fb.Add(base, jr), k0, mzp1, gin)
			ef := fb.FMul(F(0.5), fb.FSub(fb.LoadAt(ir.F64, gPhi, irx), fb.LoadAt(ir.F64, gPhi, il)))
			// theta advance with wraparound into [0,1).
			tpos := fb.LoadAt(ir.F64, gZ1, ip)
			tnew := fb.FAdd(tpos, fb.FMul(dt, ef))
			tnew = fb.FSub(tnew, fb.HostCall("floor", ir.F64, tnew))
			fb.StoreAt(tnew, gZ1, ip)
			// toroidal drift with periodic wrap into [0, mzeta).
			zdrift := fb.FAdd(zeta, F(0.35))
			zmax := fb.IToF(mz)
			znew := fb.If(fb.FCmp(ir.OpFCmpOGE, zdrift, zmax),
				func() []ir.Value { return []ir.Value{fb.FSub(zdrift, zmax)} },
				func() []ir.Value { return []ir.Value{zdrift} })[0]
			fb.StoreAt(znew, gZ2, ip)
		})

		// Diagnostics: total deposited charge and field energy.
		sums := fb.For(I(0), flen, 1, []ir.Value{F(0), F(0)}, func(j ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			d := fb.LoadAt(ir.F64, gPhitmp, j)
			f := fb.LoadAt(ir.F64, gPhi, j)
			return []ir.Value{fb.FAdd(c[0], d), fb.FAdd(c[1], fb.FMul(f, f))}
		})
		charge := fb.HostCall("mpi_allreduce_sum_f64", ir.F64, sums[0])
		energy := fb.HostCall("mpi_allreduce_sum_f64", ir.F64, sums[1])
		fb.Result(charge)
		fb.Result(energy)
	})

	// Final particle-weight checksum.
	wsum := fb.For(I(0), np, 1, []ir.Value{F(0)}, func(ip ir.Value, c []ir.Value) []ir.Value {
		return []ir.Value{fb.FAdd(c[0], fb.LoadAt(ir.F64, gZ3, ip))}
	})
	fb.Result(wsum[0])
	fb.Ret(I(0))

	if err := ir.VerifyModule(m); err != nil {
		panic("workloads: GTC-P: " + err.Error())
	}
	return m
}
