package workloads

import (
	"care/internal/ir"
	. "care/internal/irbuild"
)

func init() {
	register(&Workload{
		Name: "CoMD",
		Lang: "C",
		Description: "A reference implementation of typical classical " +
			"molecular dynamics algorithms and workloads as used in materials science.",
		Defaults:       Params{NX: 3, NY: 3, NZ: 3, Steps: 2, NParticles: 32, Seed: 11},
		ResultsPerStep: 2,
		Build:          buildCoMD,
		InEvaluation:   true,
	})
}

// buildCoMD constructs a link-cell Lennard-Jones molecular dynamics
// step: atoms live in per-cell SoA arrays (the CoMD layout), forces are
// computed by sweeping each cell's 27 periodic neighbors, and velocity
// Verlet advances the system with a cell redistribution every step.
// Per-cell addressing (cell*MAXA + slot) and the periodic neighbor-cell
// index arithmetic give the dense multi-op address computations the
// paper measures for CoMD.
func buildCoMD(p Params) *ir.Module {
	ncx, ncy, ncz := int64(p.NX), int64(p.NY), int64(p.NZ)
	ncells := ncx * ncy * ncz
	natoms := p.NParticles
	steps := int64(p.Steps)
	const maxa = 8 // atoms per cell capacity
	cellSize := 1.6
	lx, ly, lz := float64(ncx)*cellSize, float64(ncy)*cellSize, float64(ncz)*cellSize
	rcut2 := 1.44 // (1.2)^2 cutoff

	// Deterministic initial lattice with jitter; velocities from the
	// same stream.
	rng := newLCG(p.Seed)
	rawx := make([]float64, natoms)
	rawy := make([]float64, natoms)
	rawz := make([]float64, natoms)
	rawvx := make([]float64, natoms)
	rawvy := make([]float64, natoms)
	rawvz := make([]float64, natoms)
	side := 1
	for side*side*side < natoms {
		side++
	}
	for i := 0; i < natoms; i++ {
		ix, iy, iz := i%side, (i/side)%side, i/(side*side)
		rawx[i] = (float64(ix) + 0.3 + 0.4*rng.f64()) * lx / float64(side)
		rawy[i] = (float64(iy) + 0.3 + 0.4*rng.f64()) * ly / float64(side)
		rawz[i] = (float64(iz) + 0.3 + 0.4*rng.f64()) * lz / float64(side)
		rawvx[i] = 0.2 * (rng.f64() - 0.5)
		rawvy[i] = 0.2 * (rng.f64() - 0.5)
		rawvz[i] = 0.2 * (rng.f64() - 0.5)
	}

	m := ir.NewModule("CoMD")
	gRX := m.AddGlobal(&ir.Global{Name: "rawx", Size: int64(natoms) * 8, InitF64: rawx})
	gRY := m.AddGlobal(&ir.Global{Name: "rawy", Size: int64(natoms) * 8, InitF64: rawy})
	gRZ := m.AddGlobal(&ir.Global{Name: "rawz", Size: int64(natoms) * 8, InitF64: rawz})
	gRVX := m.AddGlobal(&ir.Global{Name: "rawvx", Size: int64(natoms) * 8, InitF64: rawvx})
	gRVY := m.AddGlobal(&ir.Global{Name: "rawvy", Size: int64(natoms) * 8, InitF64: rawvy})
	gRVZ := m.AddGlobal(&ir.Global{Name: "rawvz", Size: int64(natoms) * 8, InitF64: rawvz})

	slots := ncells * maxa
	gCnt := m.AddGlobal(&ir.Global{Name: "cellcnt", Size: ncells * 8})
	mk := func(n string) *ir.Global { return m.AddGlobal(&ir.Global{Name: n, Size: slots * 8}) }
	gPX, gPY, gPZ := mk("px"), mk("py"), mk("pz")
	gVX, gVY, gVZ := mk("vx"), mk("vy"), mk("vz")
	gFX, gFY, gFZ := mk("fx"), mk("fy"), mk("fz")
	// Scratch copies used during redistribution.
	gTX, gTY, gTZ := mk("tpx"), mk("tpy"), mk("tpz")
	gTVX, gTVY, gTVZ := mk("tvx"), mk("tvy"), mk("tvz")
	gPot := m.AddGlobal(&ir.Global{Name: "epot", Size: 8})

	b := ir.NewBuilder(m)
	fb := New(b)

	// cell_index(cx, cy, cz) with periodic wrap — a simple function the
	// recovery kernels can call back into.
	cellIndex := b.NewFunc("cell_index", ir.I64,
		ir.Param("cx", ir.I64), ir.Param("cy", ir.I64), ir.Param("cz", ir.I64))
	{
		cx, cy, cz := cellIndex.Params[0], cellIndex.Params[1], cellIndex.Params[2]
		wx := fb.SRem(fb.Add(cx, I(ncx)), I(ncx))
		wy := fb.SRem(fb.Add(cy, I(ncy)), I(ncy))
		wz := fb.SRem(fb.Add(cz, I(ncz)), I(ncz))
		fb.Ret(fb.Add(wx, fb.Mul(I(ncx), fb.Add(wy, fb.Mul(I(ncy), wz)))))
	}

	b.NewFunc("main", ir.I64)
	np := I(int64(natoms))
	dt := F(0.004)

	// redistribute(fromRaw): place atoms into cells from the given
	// coordinate arrays.
	redistribute := func(sx, sy, sz, svx, svy, svz ir.Value, n ir.Value) {
		fb.ForN(I(0), I(ncells), 1, func(c ir.Value) {
			fb.StoreAt(I(0), gCnt, c)
		})
		fb.ForN(I(0), n, 1, func(i ir.Value) {
			fb.NewLine()
			x := fb.LoadAt(ir.F64, sx, i)
			y := fb.LoadAt(ir.F64, sy, i)
			z := fb.LoadAt(ir.F64, sz, i)
			cx := fb.FToI(fb.FDiv(x, F(cellSize)))
			cy := fb.FToI(fb.FDiv(y, F(cellSize)))
			cz := fb.FToI(fb.FDiv(z, F(cellSize)))
			cell := fb.Call(cellIndex, cx, cy, cz)
			fb.Assert(fb.And(fb.ICmp(ir.OpICmpSGE, cell, I(0)), fb.ICmp(ir.OpICmpSLT, cell, I(ncells))), 31)
			cnt := fb.LoadAt(ir.I64, gCnt, cell)
			fb.Assert(fb.ICmp(ir.OpICmpSLT, cnt, I(maxa)), 32)
			fb.NewLine()
			slot := fb.Add(fb.Mul(cell, I(maxa)), cnt)
			fb.StoreAt(x, gPX, slot)
			fb.StoreAt(y, gPY, slot)
			fb.StoreAt(z, gPZ, slot)
			fb.StoreAt(fb.LoadAt(ir.F64, svx, i), gVX, slot)
			fb.StoreAt(fb.LoadAt(ir.F64, svy, i), gVY, slot)
			fb.StoreAt(fb.LoadAt(ir.F64, svz, i), gVZ, slot)
			fb.StoreAt(fb.Add(cnt, I(1)), gCnt, cell)
		})
	}
	redistribute(gRX, gRY, gRZ, gRVX, gRVY, gRVZ, np)

	// minimum-image displacement helper (periodic box).
	minImage := func(d ir.Value, l float64) ir.Value {
		d1 := fb.If(fb.FCmp(ir.OpFCmpOGT, d, F(l/2)),
			func() []ir.Value { return []ir.Value{fb.FSub(d, F(l))} },
			func() []ir.Value { return []ir.Value{d} })[0]
		return fb.If(fb.FCmp(ir.OpFCmpOLT, d1, F(-l/2)),
			func() []ir.Value { return []ir.Value{fb.FAdd(d1, F(l))} },
			func() []ir.Value { return []ir.Value{d1} })[0]
	}

	// computeForce: zero forces, then sweep cell pairs.
	computeForce := func() {
		fb.ForN(I(0), I(slots), 1, func(s ir.Value) {
			fb.StoreAt(F(0), gFX, s)
			fb.StoreAt(F(0), gFY, s)
			fb.StoreAt(F(0), gFZ, s)
		})
		fb.Store(F(0), gPot)
		fb.ForN(I(0), I(ncz), 1, func(cz ir.Value) {
			fb.ForN(I(0), I(ncy), 1, func(cy ir.Value) {
				fb.ForN(I(0), I(ncx), 1, func(cx ir.Value) {
					c1 := fb.Call(cellIndex, cx, cy, cz)
					n1 := fb.LoadAt(ir.I64, gCnt, c1)
					fb.ForN(I(0), n1, 1, func(a ir.Value) {
						fb.NewLine()
						s1 := fb.Add(fb.Mul(c1, I(maxa)), a)
						x1 := fb.LoadAt(ir.F64, gPX, s1)
						y1 := fb.LoadAt(ir.F64, gPY, s1)
						z1 := fb.LoadAt(ir.F64, gPZ, s1)
						acc := []ir.Value{F(0), F(0), F(0), F(0)} // fx, fy, fz, pot
						acc = fb.For(I(-1), I(2), 1, acc, func(dz ir.Value, acc []ir.Value) []ir.Value {
							return fb.For(I(-1), I(2), 1, acc, func(dy ir.Value, acc []ir.Value) []ir.Value {
								return fb.For(I(-1), I(2), 1, acc, func(dx ir.Value, acc []ir.Value) []ir.Value {
									c2 := fb.Call(cellIndex, fb.Add(cx, dx), fb.Add(cy, dy), fb.Add(cz, dz))
									n2 := fb.LoadAt(ir.I64, gCnt, c2)
									return fb.For(I(0), n2, 1, acc, func(bb ir.Value, acc []ir.Value) []ir.Value {
										same := fb.And(fb.ICmp(ir.OpICmpEQ, c1, c2), fb.ICmp(ir.OpICmpEQ, a, bb))
										return fb.If(same, func() []ir.Value {
											return acc
										}, func() []ir.Value {
											fb.NewLine()
											s2 := fb.Add(fb.Mul(c2, I(maxa)), bb)
											ddx := minImage(fb.FSub(x1, fb.LoadAt(ir.F64, gPX, s2)), lx)
											ddy := minImage(fb.FSub(y1, fb.LoadAt(ir.F64, gPY, s2)), ly)
											ddz := minImage(fb.FSub(z1, fb.LoadAt(ir.F64, gPZ, s2)), lz)
											r2 := fb.FAdd(fb.FMul(ddx, ddx), fb.FAdd(fb.FMul(ddy, ddy), fb.FMul(ddz, ddz)))
											ok := fb.And(fb.FCmp(ir.OpFCmpOLT, r2, F(rcut2)), fb.FCmp(ir.OpFCmpOGT, r2, F(0.36)))
											return fb.If(ok, func() []ir.Value {
												r2i := fb.FDiv(F(1), r2)
												r6 := fb.FMul(r2i, fb.FMul(r2i, r2i))
												fmag := fb.FMul(F(48), fb.FMul(r6, fb.FMul(fb.FSub(r6, F(0.5)), r2i)))
												e := fb.FMul(F(4), fb.FMul(r6, fb.FSub(r6, F(1))))
												return []ir.Value{
													fb.FAdd(acc[0], fb.FMul(fmag, ddx)),
													fb.FAdd(acc[1], fb.FMul(fmag, ddy)),
													fb.FAdd(acc[2], fb.FMul(fmag, ddz)),
													fb.FAdd(acc[3], fb.FMul(F(0.5), e)),
												}
											}, func() []ir.Value { return acc })
										})
									})
								})
							})
						})
						fb.NewLine()
						fb.StoreAt(acc[0], gFX, s1)
						fb.StoreAt(acc[1], gFY, s1)
						fb.StoreAt(acc[2], gFZ, s1)
						fb.AddF(gPot, I(0), acc[3])
					})
				})
			})
		})
	}

	computeForce()

	fb.ForN(I(0), I(steps), 1, func(step ir.Value) {
		// Velocity Verlet: kick, drift (with periodic wrap), gather
		// back to raw order, redistribute, re-force, kick.
		kick := func() {
			fb.ForN(I(0), I(ncells), 1, func(c ir.Value) {
				n := fb.LoadAt(ir.I64, gCnt, c)
				fb.ForN(I(0), n, 1, func(a ir.Value) {
					fb.NewLine()
					s := fb.Add(fb.Mul(c, I(maxa)), a)
					for _, pr := range [][2]*ir.Global{{gVX, gFX}, {gVY, gFY}, {gVZ, gFZ}} {
						v := fb.LoadAt(ir.F64, pr[0], s)
						f := fb.LoadAt(ir.F64, pr[1], s)
						fb.StoreAt(fb.FAdd(v, fb.FMul(F(0.5), fb.FMul(dt, f))), pr[0], s)
					}
				})
			})
		}
		kick()
		// Drift into scratch arrays (compacted order) for rebinning.
		idx0 := fb.Malloc(1)
		fb.Store(I(0), idx0)
		wrap := func(x ir.Value, l float64) ir.Value {
			x1 := fb.If(fb.FCmp(ir.OpFCmpOGE, x, F(l)),
				func() []ir.Value { return []ir.Value{fb.FSub(x, F(l))} },
				func() []ir.Value { return []ir.Value{x} })[0]
			return fb.If(fb.FCmp(ir.OpFCmpOLT, x1, F(0)),
				func() []ir.Value { return []ir.Value{fb.FAdd(x1, F(l))} },
				func() []ir.Value { return []ir.Value{x1} })[0]
		}
		fb.ForN(I(0), I(ncells), 1, func(c ir.Value) {
			n := fb.LoadAt(ir.I64, gCnt, c)
			fb.ForN(I(0), n, 1, func(a ir.Value) {
				fb.NewLine()
				s := fb.Add(fb.Mul(c, I(maxa)), a)
				j := fb.Load(ir.I64, idx0)
				x := wrap(fb.FAdd(fb.LoadAt(ir.F64, gPX, s), fb.FMul(dt, fb.LoadAt(ir.F64, gVX, s))), lx)
				y := wrap(fb.FAdd(fb.LoadAt(ir.F64, gPY, s), fb.FMul(dt, fb.LoadAt(ir.F64, gVY, s))), ly)
				z := wrap(fb.FAdd(fb.LoadAt(ir.F64, gPZ, s), fb.FMul(dt, fb.LoadAt(ir.F64, gVZ, s))), lz)
				fb.StoreAt(x, gTX, j)
				fb.StoreAt(y, gTY, j)
				fb.StoreAt(z, gTZ, j)
				fb.StoreAt(fb.LoadAt(ir.F64, gVX, s), gTVX, j)
				fb.StoreAt(fb.LoadAt(ir.F64, gVY, s), gTVY, j)
				fb.StoreAt(fb.LoadAt(ir.F64, gVZ, s), gTVZ, j)
				fb.Store(fb.Add(j, I(1)), idx0)
			})
		})
		redistribute(gTX, gTY, gTZ, gTVX, gTVY, gTVZ, np)
		computeForce()
		kick()

		// Diagnostics: potential and kinetic energy.
		ke := fb.For(I(0), I(ncells), 1, []ir.Value{F(0)}, func(c ir.Value, acc []ir.Value) []ir.Value {
			n := fb.LoadAt(ir.I64, gCnt, c)
			return fb.For(I(0), n, 1, acc, func(a ir.Value, acc []ir.Value) []ir.Value {
				fb.NewLine()
				s := fb.Add(fb.Mul(c, I(maxa)), a)
				vx := fb.LoadAt(ir.F64, gVX, s)
				vy := fb.LoadAt(ir.F64, gVY, s)
				vz := fb.LoadAt(ir.F64, gVZ, s)
				sq := fb.FAdd(fb.FMul(vx, vx), fb.FAdd(fb.FMul(vy, vy), fb.FMul(vz, vz)))
				return []ir.Value{fb.FAdd(acc[0], fb.FMul(F(0.5), sq))}
			})
		})
		pot := fb.Load(ir.F64, gPot)
		fb.Result(fb.HostCall("mpi_allreduce_sum_f64", ir.F64, pot))
		fb.Result(fb.HostCall("mpi_allreduce_sum_f64", ir.F64, ke[0]))
	})
	fb.Ret(I(0))

	if err := ir.VerifyModule(m); err != nil {
		panic("workloads: CoMD: " + err.Error())
	}
	return m
}
