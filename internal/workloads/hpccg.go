package workloads

import (
	"care/internal/ir"
	. "care/internal/irbuild"
)

func init() {
	register(&Workload{
		Name: "HPCCG",
		Lang: "C++",
		Description: "A simple conjugate gradient benchmark code for a 3D " +
			"chimney domain on an arbitrary number of processors.",
		Defaults:       Params{NX: 4, NY: 4, NZ: 3, Steps: 6, Seed: 1},
		ResultsPerStep: 1,
		Build:          buildHPCCG,
		InEvaluation:   true,
	})
}

// buildHPCCG constructs the HPCCG mini-app: generate a 27-point sparse
// matrix for an nx*ny*nz chimney domain in ELL layout, then run Steps
// iterations of unpreconditioned conjugate gradient. Dot products go
// through mpi_allreduce_sum_f64 so the same module runs single-rank or
// in the cluster simulator.
func buildHPCCG(p Params) *ir.Module {
	nx, ny, nz := int64(p.NX), int64(p.NY), int64(p.NZ)
	nrows := nx * ny * nz
	iters := int64(p.Steps)

	m := ir.NewModule("HPCCG")
	b := ir.NewBuilder(m)
	fb := New(b)

	// ddot(x, y, n) -> global dot product.
	ddot := b.NewFunc("ddot", ir.F64, ir.Param("x", ir.Ptr), ir.Param("y", ir.Ptr), ir.Param("n", ir.I64))
	{
		x, y, n := ddot.Params[0], ddot.Params[1], ddot.Params[2]
		sum := fb.For(I(0), n, 1, []ir.Value{F(0)}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			xv := fb.LoadAt(ir.F64, x, i)
			yv := fb.LoadAt(ir.F64, y, i)
			return []ir.Value{fb.FAdd(c[0], fb.FMul(xv, yv))}
		})
		g := fb.HostCall("mpi_allreduce_sum_f64", ir.F64, sum[0])
		fb.Ret(g)
	}

	// waxpby(w, alpha, x, beta, y, n): w = alpha*x + beta*y.
	waxpby := b.NewFunc("waxpby", ir.Void,
		ir.Param("w", ir.Ptr), ir.Param("alpha", ir.F64), ir.Param("x", ir.Ptr),
		ir.Param("beta", ir.F64), ir.Param("y", ir.Ptr), ir.Param("n", ir.I64))
	{
		w, alpha, x, beta, y, n := waxpby.Params[0], waxpby.Params[1], waxpby.Params[2], waxpby.Params[3], waxpby.Params[4], waxpby.Params[5]
		fb.ForN(I(0), n, 1, func(i ir.Value) {
			fb.NewLine()
			xv := fb.LoadAt(ir.F64, x, i)
			yv := fb.LoadAt(ir.F64, y, i)
			fb.StoreAt(fb.FAdd(fb.FMul(alpha, xv), fb.FMul(beta, yv)), w, i)
		})
		fb.Ret(nil)
	}

	// sparsemv(q, vals, inds, nnz, p, n): q = A*p over the ELL layout:
	// row entries live at vals[27*row + j], columns at inds[27*row + j].
	sparsemv := b.NewFunc("sparsemv", ir.Void,
		ir.Param("q", ir.Ptr), ir.Param("vals", ir.Ptr), ir.Param("inds", ir.Ptr),
		ir.Param("nnz", ir.Ptr), ir.Param("pv", ir.Ptr), ir.Param("n", ir.I64))
	{
		q, vals, inds, nnz, pv, n := sparsemv.Params[0], sparsemv.Params[1], sparsemv.Params[2], sparsemv.Params[3], sparsemv.Params[4], sparsemv.Params[5]
		fb.ForN(I(0), n, 1, func(row ir.Value) {
			cnt := fb.LoadAt(ir.I64, nnz, row)
			rowBase := fb.Mul(row, I(27))
			sum := fb.For(I(0), cnt, 1, []ir.Value{F(0)}, func(j ir.Value, c []ir.Value) []ir.Value {
				fb.NewLine()
				// The two-level indirection the paper's insight rests
				// on: vals[27*row+j] * p[inds[27*row+j]].
				at := fb.Add(rowBase, j)
				av := fb.LoadAt(ir.F64, vals, at)
				col := fb.LoadAt(ir.I64, inds, at)
				pvv := fb.LoadAt(ir.F64, pv, col)
				return []ir.Value{fb.FAdd(c[0], fb.FMul(av, pvv))}
			})
			fb.StoreAt(sum[0], q, row)
		})
		fb.Ret(nil)
	}

	// main: matrix generation + CG iterations.
	b.NewFunc("main", ir.I64)
	vals := fb.Malloc(nrows * 27)
	inds := fb.Malloc(nrows * 27)
	nnz := fb.Malloc(nrows)
	xv := fb.Malloc(nrows)
	bv := fb.Malloc(nrows)
	pvec := fb.Malloc(nrows)
	qvec := fb.Malloc(nrows)
	rvec := fb.Malloc(nrows)

	// generate_matrix: 27-point stencil on the chimney domain.
	fb.ForN(I(0), I(nz), 1, func(iz ir.Value) {
		fb.ForN(I(0), I(ny), 1, func(iy ir.Value) {
			fb.ForN(I(0), I(nx), 1, func(ix ir.Value) {
				fb.NewLine()
				row := fb.Add(ix, fb.Mul(I(nx), fb.Add(iy, fb.Mul(I(ny), iz))))
				rowBase := fb.Mul(row, I(27))
				out := fb.For(I(-1), I(2), 1, []ir.Value{I(0), F(0)}, func(sz ir.Value, c []ir.Value) []ir.Value {
					return fb.For(I(-1), I(2), 1, c, func(sy ir.Value, c []ir.Value) []ir.Value {
						return fb.For(I(-1), I(2), 1, c, func(sx ir.Value, c []ir.Value) []ir.Value {
							cnt, rowsum := c[0], c[1]
							cz := fb.Add(iz, sz)
							cy := fb.Add(iy, sy)
							cx := fb.Add(ix, sx)
							inZ := fb.And(fb.ICmp(ir.OpICmpSGE, cz, I(0)), fb.ICmp(ir.OpICmpSLT, cz, I(nz)))
							inY := fb.And(fb.ICmp(ir.OpICmpSGE, cy, I(0)), fb.ICmp(ir.OpICmpSLT, cy, I(ny)))
							inX := fb.And(fb.ICmp(ir.OpICmpSGE, cx, I(0)), fb.ICmp(ir.OpICmpSLT, cx, I(nx)))
							in := fb.And(inZ, fb.And(inY, inX))
							return fb.If(in, func() []ir.Value {
								fb.NewLine()
								col := fb.Add(cx, fb.Mul(I(nx), fb.Add(cy, fb.Mul(I(ny), cz))))
								diag := fb.ICmp(ir.OpICmpEQ, col, row)
								v := fb.Select(diag, fb.IToF(I(27)), fb.IToF(I(-1)))
								slot := fb.Add(rowBase, cnt)
								fb.StoreAt(v, vals, slot)
								fb.StoreAt(col, inds, slot)
								return []ir.Value{fb.Add(cnt, I(1)), fb.FAdd(rowsum, v)}
							}, func() []ir.Value {
								return []ir.Value{cnt, rowsum}
							})
						})
					})
				})
				fb.NewLine()
				fb.StoreAt(out[0], nnz, row)
				fb.StoreAt(out[1], bv, row) // b = A * ones
				fb.StoreAt(F(0), xv, row)
			})
		})
	})

	// r = b; p = r (x = 0).
	n := I(nrows)
	fb.Call(waxpby, rvec, F(1), bv, F(0), bv, n)
	fb.Call(waxpby, pvec, F(1), rvec, F(0), rvec, n)
	rtrans0 := fb.Call(ddot, rvec, rvec, n)

	final := fb.For(I(0), I(iters), 1, []ir.Value{ir.Value(rtrans0)}, func(it ir.Value, c []ir.Value) []ir.Value {
		rtrans := c[0]
		fb.Call(sparsemv, qvec, vals, inds, nnz, pvec, n)
		pq := fb.Call(ddot, pvec, qvec, n)
		alpha := fb.FDiv(rtrans, pq)
		fb.Call(waxpby, xv, F(1), xv, alpha, pvec, n)
		nalpha := fb.FSub(F(0), alpha)
		fb.Call(waxpby, rvec, F(1), rvec, nalpha, qvec, n)
		newr := fb.Call(ddot, rvec, rvec, n)
		beta := fb.FDiv(newr, rtrans)
		fb.Call(waxpby, pvec, F(1), rvec, beta, pvec, n)
		fb.Result(fb.Sqrt(newr))
		return []ir.Value{newr}
	})
	_ = final
	fb.Result(fb.Call(ddot, xv, xv, n))
	fb.Ret(I(0))

	if err := ir.VerifyModule(m); err != nil {
		panic("workloads: HPCCG: " + err.Error())
	}
	return m
}
