// Package workloads implements the five scientific mini-apps of the
// paper's Table 1 — HPCCG, CoMD, miniMD, miniFE and GTC-P — as programs
// in the mini-IR. Each reproduces the algorithmic structure that makes
// CARE effective on the originals: stencil sweeps, indirect neighbor
// indexing, and multi-operation address arithmetic over infrequently
// updated raw values.
//
// Builders are deterministic: the same Params yield the same module and
// the same golden result stream, which is what fault-injection outcome
// classification compares against.
package workloads

import (
	"fmt"
	"sort"

	"care/internal/ir"
)

// Params sizes a workload. The zero value selects the workload's
// default (small but non-trivial) problem.
type Params struct {
	// NX, NY, NZ size grid-based problems.
	NX, NY, NZ int
	// Steps is the number of time steps / solver iterations.
	Steps int
	// NParticles sizes particle-based problems.
	NParticles int
	// Seed varies deterministic pseudo-random initial data.
	Seed int64
}

func (p Params) or(def Params) Params {
	if p.NX == 0 {
		p.NX = def.NX
	}
	if p.NY == 0 {
		p.NY = def.NY
	}
	if p.NZ == 0 {
		p.NZ = def.NZ
	}
	if p.Steps == 0 {
		p.Steps = def.Steps
	}
	if p.NParticles == 0 {
		p.NParticles = def.NParticles
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	return p
}

// Workload is one registered mini-app.
type Workload struct {
	Name string
	// Lang is the source language of the original (Table 1).
	Lang string
	// Description is the paper's one-line description.
	Description string
	// Defaults are the default Params.
	Defaults Params
	// Build constructs the IR module.
	Build func(p Params) *ir.Module
	// ResultsPerStep is how many result_f64 values the workload emits
	// per time step / solver iteration (checkpoint-interval bookkeeping).
	ResultsPerStep int
	// InEvaluation marks the workloads used in §5 (miniFE is only in
	// the §2 manifestation study; its C++/STL dependence excluded it
	// from the paper's coverage evaluation).
	InEvaluation bool
}

// Module builds the workload with p (zero fields defaulted).
func (w *Workload) Module(p Params) *ir.Module { return w.Build(p.or(w.Defaults)) }

var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// Get returns a workload by name.
func Get(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// All returns the registered workloads in a stable order.
func All() []*Workload {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Workload, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Evaluated returns the four §5 workloads (Table 8 / Figures 7, 9, 10).
func Evaluated() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.InEvaluation {
			out = append(out, w)
		}
	}
	return out
}

// lcg is the deterministic generator used to precompute initial data in
// the builders (the originals read input decks; we bake equivalent
// deterministic state into globals).
type lcg struct{ s uint64 }

func newLCG(seed int64) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

// f64 returns a uniform value in [0,1).
func (l *lcg) f64() float64 { return float64(l.next()>>11) / float64(1<<53) }
