package workloads

import (
	"care/internal/ir"
	. "care/internal/irbuild"
)

func init() {
	register(&Workload{
		Name: "miniFE",
		Lang: "C++",
		Description: "A Finite Element mini-application which assembles a sparse " +
			"linear-system from the steady-state conduction equation on a brick-shaped " +
			"problem domain of linear 8-node hex elements, then solves it with " +
			"un-preconditioned conjugate gradient.",
		Defaults:       Params{NX: 2, NY: 2, NZ: 2, Steps: 6, Seed: 3},
		ResultsPerStep: 1,
		Build:          buildMiniFE,
		// The paper evaluates miniFE only in the §2 manifestation study
		// (its heavy C++/STL use excluded it from the §5 prototype
		// evaluation).
		InEvaluation: false,
	})
}

// buildMiniFE constructs the miniFE pipeline: build a CSR sparsity
// structure for the nodes of an nx*ny*nz hex-8 mesh (27-point
// connectivity), assemble a graph-Laplacian element stiffness with a
// find-column scatter-add — the CSR search loop is miniFE's hallmark
// memory-access pattern — apply Dirichlet conditions on the z=0 face,
// and run CG on the assembled system.
func buildMiniFE(p Params) *ir.Module {
	ex, ey, ez := int64(p.NX), int64(p.NY), int64(p.NZ)
	nnx, nny, nnz := ex+1, ey+1, ez+1
	nnodes := nnx * nny * nnz
	iters := int64(p.Steps)
	const maxRow = 27

	m := ir.NewModule("miniFE")
	// Element stiffness: graph Laplacian of the 8-node clique (row sums
	// zero; SPD once Dirichlet rows are pinned).
	elemK := make([]float64, 64)
	for a := 0; a < 8; a++ {
		for bb := 0; bb < 8; bb++ {
			if a == bb {
				elemK[8*a+bb] = 7
			} else {
				elemK[8*a+bb] = -1
			}
		}
	}
	gElemK := m.AddGlobal(&ir.Global{Name: "elemK", Size: 64 * 8, InitF64: elemK})
	gSrc := m.AddGlobal(&ir.Global{Name: "srcQ", Size: 8, InitF64: []float64{1.25}})

	b := ir.NewBuilder(m)
	fb := New(b)

	// node_id(ix,iy,iz) — simple function used in address computations.
	nodeID := b.NewFunc("node_id", ir.I64,
		ir.Param("ix", ir.I64), ir.Param("iy", ir.I64), ir.Param("iz", ir.I64))
	{
		ix, iy, iz := nodeID.Params[0], nodeID.Params[1], nodeID.Params[2]
		fb.Ret(fb.Add(ix, fb.Mul(I(nnx), fb.Add(iy, fb.Mul(I(nny), iz)))))
	}

	// find_col(row, col): scan the CSR row for the column slot — the
	// assembly search loop. Returns the position in vals/cols.
	findCol := b.NewFunc("find_col", ir.I64,
		ir.Param("rowptr", ir.Ptr), ir.Param("cols", ir.Ptr),
		ir.Param("row", ir.I64), ir.Param("col", ir.I64))
	{
		rp, cl, row, col := findCol.Params[0], findCol.Params[1], findCol.Params[2], findCol.Params[3]
		lo := fb.LoadAt(ir.I64, rp, row)
		hi := fb.LoadAt(ir.I64, rp, fb.Add(row, I(1)))
		pos := fb.For(lo, hi, 1, []ir.Value{I(-1)}, func(k ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			cv := fb.LoadAt(ir.I64, cl, k)
			hit := fb.ICmp(ir.OpICmpEQ, cv, col)
			return []ir.Value{fb.Select(hit, k, c[0])}
		})
		fb.Assert(fb.ICmp(ir.OpICmpSGE, pos[0], I(0)), 51)
		fb.Ret(pos[0])
	}

	b.NewFunc("main", ir.I64)
	n := I(nnodes)
	rowptr := fb.Malloc(nnodes + 1)
	cols := fb.Malloc(nnodes * maxRow)
	vals := fb.Malloc(nnodes * maxRow)
	bvec := fb.Malloc(nnodes)
	xvec := fb.Malloc(nnodes)
	rvec := fb.Malloc(nnodes)
	pvec := fb.Malloc(nnodes)
	qvec := fb.Malloc(nnodes)

	// Symbolic phase: CSR structure from 27-point node connectivity.
	cursor := fb.Malloc(1)
	fb.Store(I(0), cursor)
	fb.ForN(I(0), I(nnz), 1, func(iz ir.Value) {
		fb.ForN(I(0), I(nny), 1, func(iy ir.Value) {
			fb.ForN(I(0), I(nnx), 1, func(ix ir.Value) {
				fb.NewLine()
				row := fb.Call(nodeID, ix, iy, iz)
				start := fb.Load(ir.I64, cursor)
				fb.StoreAt(start, rowptr, row)
				fb.For(I(-1), I(2), 1, nil, func(sz ir.Value, _ []ir.Value) []ir.Value {
					fb.For(I(-1), I(2), 1, nil, func(sy ir.Value, _ []ir.Value) []ir.Value {
						fb.For(I(-1), I(2), 1, nil, func(sx ir.Value, _ []ir.Value) []ir.Value {
							cz := fb.Add(iz, sz)
							cy := fb.Add(iy, sy)
							cx := fb.Add(ix, sx)
							inZ := fb.And(fb.ICmp(ir.OpICmpSGE, cz, I(0)), fb.ICmp(ir.OpICmpSLT, cz, I(nnz)))
							inY := fb.And(fb.ICmp(ir.OpICmpSGE, cy, I(0)), fb.ICmp(ir.OpICmpSLT, cy, I(nny)))
							inX := fb.And(fb.ICmp(ir.OpICmpSGE, cx, I(0)), fb.ICmp(ir.OpICmpSLT, cx, I(nnx)))
							fb.IfThen(fb.And(inZ, fb.And(inY, inX)), func() {
								fb.NewLine()
								col := fb.Call(nodeID, cx, cy, cz)
								cur := fb.Load(ir.I64, cursor)
								fb.StoreAt(col, cols, cur)
								fb.StoreAt(F(0), vals, cur)
								fb.Store(fb.Add(cur, I(1)), cursor)
							})
							return nil
						})
						return nil
					})
					return nil
				})
			})
		})
	})
	fb.StoreAt(fb.Load(ir.I64, cursor), rowptr, n)

	// Assembly: for each element, gather its 8 node ids and scatter the
	// element stiffness into the CSR matrix.
	fb.ForN(I(0), I(ez), 1, func(z ir.Value) {
		fb.ForN(I(0), I(ey), 1, func(y ir.Value) {
			fb.ForN(I(0), I(ex), 1, func(x ir.Value) {
				// Local node a = (ax, ay, az) in {0,1}^3, id = ax+2*ay+4*az.
				fb.For(I(0), I(8), 1, nil, func(a ir.Value, _ []ir.Value) []ir.Value {
					fb.NewLine()
					ax := fb.And(a, I(1))
					ay := fb.And(fb.AShr(a, I(1)), I(1))
					az := fb.And(fb.AShr(a, I(2)), I(1))
					row := fb.Call(nodeID, fb.Add(x, ax), fb.Add(y, ay), fb.Add(z, az))
					fb.For(I(0), I(8), 1, nil, func(bbv ir.Value, _ []ir.Value) []ir.Value {
						fb.NewLine()
						bx := fb.And(bbv, I(1))
						by := fb.And(fb.AShr(bbv, I(1)), I(1))
						bz := fb.And(fb.AShr(bbv, I(2)), I(1))
						col := fb.Call(nodeID, fb.Add(x, bx), fb.Add(y, by), fb.Add(z, bz))
						pos := fb.Call(findCol, rowptr, cols, row, col)
						kab := fb.LoadAt(ir.F64, gElemK, fb.Add(fb.Mul(a, I(8)), bbv))
						fb.AddF(vals, pos, kab)
						return nil
					})
					// RHS source contribution.
					q := fb.Load(ir.F64, gSrc)
					fb.AddF(bvec, row, fb.FMul(q, F(0.125)))
					return nil
				})
			})
		})
	})

	// Dirichlet on the z=0 face: zero the row, unit diagonal, zero RHS.
	fb.ForN(I(0), I(nny), 1, func(iy ir.Value) {
		fb.ForN(I(0), I(nnx), 1, func(ix ir.Value) {
			fb.NewLine()
			row := fb.Call(nodeID, ix, iy, I(0))
			lo := fb.LoadAt(ir.I64, rowptr, row)
			hi := fb.LoadAt(ir.I64, rowptr, fb.Add(row, I(1)))
			fb.ForN(lo, hi, 1, func(k ir.Value) {
				fb.NewLine()
				cv := fb.LoadAt(ir.I64, cols, k)
				diag := fb.ICmp(ir.OpICmpEQ, cv, row)
				fb.StoreAt(fb.Select(diag, fb.IToF(I(1)), fb.IToF(I(0))), vals, k)
			})
			fb.StoreAt(F(0), bvec, row)
		})
	})

	// CG solve (CSR matvec via rowptr, unlike HPCCG's ELL).
	ddot := func(xv, yv ir.Value) ir.Value {
		s := fb.For(I(0), n, 1, []ir.Value{F(0)}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			return []ir.Value{fb.FAdd(c[0], fb.FMul(fb.LoadAt(ir.F64, xv, i), fb.LoadAt(ir.F64, yv, i)))}
		})
		return fb.HostCall("mpi_allreduce_sum_f64", ir.F64, s[0])
	}
	matvec := func(dst, src ir.Value) {
		fb.ForN(I(0), n, 1, func(row ir.Value) {
			lo := fb.LoadAt(ir.I64, rowptr, row)
			hi := fb.LoadAt(ir.I64, rowptr, fb.Add(row, I(1)))
			s := fb.For(lo, hi, 1, []ir.Value{F(0)}, func(k ir.Value, c []ir.Value) []ir.Value {
				fb.NewLine()
				col := fb.LoadAt(ir.I64, cols, k)
				return []ir.Value{fb.FAdd(c[0], fb.FMul(fb.LoadAt(ir.F64, vals, k), fb.LoadAt(ir.F64, src, col)))}
			})
			fb.StoreAt(s[0], dst, row)
		})
	}
	axpyInto := func(dst, xv ir.Value, alpha ir.Value, yv ir.Value) {
		// dst = x + alpha*y
		fb.ForN(I(0), n, 1, func(i ir.Value) {
			fb.NewLine()
			fb.StoreAt(fb.FAdd(fb.LoadAt(ir.F64, xv, i), fb.FMul(alpha, fb.LoadAt(ir.F64, yv, i))), dst, i)
		})
	}

	fb.ForN(I(0), n, 1, func(i ir.Value) {
		fb.StoreAt(F(0), xvec, i)
		bv := fb.LoadAt(ir.F64, bvec, i)
		fb.StoreAt(bv, rvec, i)
		fb.StoreAt(bv, pvec, i)
	})
	rtr0 := ddot(rvec, rvec)
	fb.For(I(0), I(iters), 1, []ir.Value{ir.Value(rtr0)}, func(it ir.Value, c []ir.Value) []ir.Value {
		rtr := c[0]
		matvec(qvec, pvec)
		pq := ddot(pvec, qvec)
		alpha := fb.FDiv(rtr, pq)
		axpyInto(xvec, xvec, alpha, pvec)
		axpyInto(rvec, rvec, fb.FSub(F(0), alpha), qvec)
		newrtr := ddot(rvec, rvec)
		beta := fb.FDiv(newrtr, rtr)
		// p = r + beta*p.
		fb.ForN(I(0), n, 1, func(i ir.Value) {
			fb.NewLine()
			fb.StoreAt(fb.FAdd(fb.LoadAt(ir.F64, rvec, i), fb.FMul(beta, fb.LoadAt(ir.F64, pvec, i))), pvec, i)
		})
		fb.Result(fb.Sqrt(newrtr))
		return []ir.Value{newrtr}
	})
	fb.Result(ddot(xvec, xvec))
	fb.Ret(I(0))

	if err := ir.VerifyModule(m); err != nil {
		panic("workloads: miniFE: " + err.Error())
	}
	return m
}
