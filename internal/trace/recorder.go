package trace

import "sort"

// Recorder collects spans into a bounded ring buffer plus two families
// of named counters: additive counters (Add, summed on Merge) and
// high-water marks (Max, maxed on Merge). Counters are exact even when
// the ring has dropped old spans, so aggregate statistics never degrade
// — only per-span detail does.
//
// A nil *Recorder is the disabled recorder: every method is a no-op
// that allocates nothing, so instrumentation sites call it
// unconditionally. A Recorder is not safe for concurrent use; the
// campaign engines give every trial its own recorder and merge them in
// trial-index order, which is also what keeps traced campaigns
// bit-identical for any worker count.
type Recorder struct {
	cap     int
	spans   []Span
	next    int // ring write index once len(spans) == cap
	wrapped bool
	dropped int
	nextID  int32
	adds    map[string]int64
	maxes   map[string]int64
}

// DefaultSpanCap is the ring size used when New is given a
// non-positive capacity.
const DefaultSpanCap = 8192

// New builds an enabled recorder whose ring holds up to capSpans spans
// (<=0 means DefaultSpanCap). The ring grows lazily, so small traces
// pay only for what they emit.
func New(capSpans int) *Recorder {
	if capSpans <= 0 {
		capSpans = DefaultSpanCap
	}
	return &Recorder{cap: capSpans}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records a span, assigns its ID (emission order, monotonic even
// across ring drops) and returns it. On a nil recorder it returns
// NoParent and records nothing.
func (r *Recorder) Emit(s Span) int32 {
	if r == nil {
		return NoParent
	}
	s.ID = r.nextID
	r.nextID++
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, s)
		return s.ID
	}
	// Ring full: overwrite the oldest span.
	r.spans[r.next] = s
	r.next = (r.next + 1) % r.cap
	r.wrapped = true
	r.dropped++
	return s.ID
}

// Add increments the named additive counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	if r.adds == nil {
		r.adds = map[string]int64{}
	}
	r.adds[name] += delta
}

// Max raises the named high-water mark to v if v is larger.
func (r *Recorder) Max(name string, v int64) {
	if r == nil {
		return
	}
	if r.maxes == nil {
		r.maxes = map[string]int64{}
	}
	if v > r.maxes[name] {
		r.maxes[name] = v
	}
}

// Counter returns the value of the named additive counter (0 when
// absent or on a nil recorder).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.adds[name]
}

// MaxCounter returns the named high-water mark (0 when absent).
func (r *Recorder) MaxCounter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.maxes[name]
}

// CounterNames returns the additive counter names in sorted order
// (deterministic export and aggregation).
func (r *Recorder) CounterNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.adds))
	for n := range r.adds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MaxNames returns the high-water-mark names in sorted order.
func (r *Recorder) MaxNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.maxes))
	for n := range r.maxes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spans returns the retained spans oldest-first. The slice is a copy;
// mutating it does not affect the recorder.
func (r *Recorder) Spans() []Span {
	if r == nil || len(r.spans) == 0 {
		return nil
	}
	if !r.wrapped {
		return append([]Span(nil), r.spans...)
	}
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}

// Len reports how many spans are retained in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Emitted reports how many spans were ever emitted (retained+dropped).
func (r *Recorder) Emitted() int {
	if r == nil {
		return 0
	}
	return int(r.nextID)
}

// Dropped reports how many spans the ring has overwritten.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Merge appends o's spans (oldest-first) onto r, rebasing span IDs and
// parent links so they stay consistent, and folds o's counters in
// (additive counters sum, high-water marks max). Merging the per-trial
// recorders of a campaign in trial-index order yields a combined trace
// that is identical for any worker count. A nil o (or nil r) is a
// no-op.
func (r *Recorder) Merge(o *Recorder) { r.mergeRank(o, false, 0) }

// MergeAs is Merge with rank attribution: every span merged in has its
// Rank set to rank, so a job trace can tell which rank (or which trial)
// a sub-trace's spans came from.
func (r *Recorder) MergeAs(o *Recorder, rank int32) { r.mergeRank(o, true, rank) }

func (r *Recorder) mergeRank(o *Recorder, setRank bool, rank int32) {
	if r == nil || o == nil {
		return
	}
	base := r.nextID
	for _, s := range o.Spans() {
		s.ID += base
		if s.Parent != NoParent {
			s.Parent += base
		}
		if setRank {
			s.Rank = rank
		}
		if len(r.spans) < r.cap {
			r.spans = append(r.spans, s)
		} else {
			r.spans[r.next] = s
			r.next = (r.next + 1) % r.cap
			r.wrapped = true
			r.dropped++
		}
	}
	// IDs dropped inside o (ring overflow) still consume ID space so
	// later merges cannot collide with rebased parent links.
	r.nextID = base + o.nextID
	r.dropped += o.dropped
	for n, v := range o.adds {
		if r.adds == nil {
			r.adds = map[string]int64{}
		}
		r.adds[n] += v
	}
	for n, v := range o.maxes {
		if r.maxes == nil {
			r.maxes = map[string]int64{}
		}
		if v > r.maxes[n] {
			r.maxes[n] = v
		}
	}
}

// Reset drops all spans and counters but keeps the capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	r.next = 0
	r.wrapped = false
	r.dropped = 0
	r.nextID = 0
	r.adds = nil
	r.maxes = nil
}
