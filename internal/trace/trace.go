// Package trace is the structured accounting spine of the CARE
// reproduction. Every subsystem that used to keep a private ledger —
// Safeguard's per-activation phase timings (Figure 9), the checkpoint
// store's modelled I/O charges, the fault-injection campaign's outcome
// and latency counters (Tables 2-4), the cluster scheduler's per-rank
// stall attribution (Figure 10) — emits typed spans and counters into a
// Recorder instead, and the report layers derive their tables from one
// aggregation API.
//
// Spans are stamped on two clocks at once: the machine's virtual clock
// (retired dynamic instructions, exactly reproducible for any worker
// count) and wall time (the measured or modelled duration of the work
// inside the span). A nil *Recorder is the disabled recorder: every
// method is a nil-safe no-op that performs no allocation, so hot paths
// (the CPU step loop, the campaign trial loop) can call it
// unconditionally.
package trace

import (
	"fmt"
	"time"
)

// Kind identifies what a span measures.
type Kind uint8

// Span kinds. The Diagnose..Rollback block mirrors the phases of one
// Safeguard activation (paper Algorithm 1 / Figure 9); an Activation
// span is their parent.
const (
	// KindUnknown is the zero Kind; no subsystem emits it.
	KindUnknown Kind = iota
	// KindActivation is one Safeguard activation; its Outcome attribute
	// is the safeguard outcome, PC/Addr locate the fault, and Wall is
	// the end-to-end recovery time.
	KindActivation
	// KindDiagnose: PC -> source key -> recovery-table entry.
	KindDiagnose
	// KindLoad: decode the table + dlopen the recovery library.
	KindLoad
	// KindFetch: kernel-argument retrieval via debug info.
	KindFetch
	// KindKernel: recovery-kernel execution.
	KindKernel
	// KindPatch: operand update (plus the scope check).
	KindPatch
	// KindRollback: checkpoint restore performed by the escalation
	// chain; Wall includes the modelled snapshot read and requeue.
	KindRollback
	// KindCheckpointSave is one snapshot write; Wall is the modelled
	// write cost and Val the snapshot size in bytes.
	KindCheckpointSave
	// KindCheckpointRestore is one snapshot read-back; StartDyn is the
	// pre-restore clock and EndDyn the (earlier) restored clock, making
	// the virtual-time rewind visible in the trace.
	KindCheckpointRestore
	// KindTrap is a machine-level trap delivery stamp (emitted by the
	// CPU when tracing is enabled on it).
	KindTrap
	// KindTrial is one fault-injection trial (or coverage attempt); for
	// fired soft failures StartDyn..EndDyn is the manifestation window,
	// so EndDyn-StartDyn is the crash latency in dynamic instructions.
	// Val counts the trial's fired faults.
	KindTrial
	// KindRankStall is one rank's recovery stall in a parallel job;
	// Wall is the summed Safeguard time attributed to that rank.
	KindRankStall
	// KindJob is one parallel-job execution; Wall is the job's virtual
	// time and EndDyn the slowest rank's instruction count.
	KindJob
	// KindDomainRewind is one domain-scoped partial rollback: as a
	// checkpoint-store span it records the memory swap (Val = domain
	// bytes, Outcome = domain name); as a Safeguard phase span (child of
	// an activation) it carries the stage's wall cost with Val holding
	// the machine.DomainID.
	KindDomainRewind

	numKinds // sentinel; keep last
)

var kindNames = [...]string{
	KindUnknown:           "unknown",
	KindActivation:        "activation",
	KindDiagnose:          "diagnose",
	KindLoad:              "load",
	KindFetch:             "fetch",
	KindKernel:            "kernel",
	KindPatch:             "patch",
	KindRollback:          "rollback",
	KindCheckpointSave:    "checkpoint-save",
	KindCheckpointRestore: "checkpoint-restore",
	KindTrap:              "trap",
	KindTrial:             "trial",
	KindRankStall:         "rank-stall",
	KindJob:               "job",
	KindDomainRewind:      "domain-rewind",
}

// String names the kind; out-of-range values render as "unknown(N)"
// instead of panicking.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("unknown(%d)", uint8(k))
}

// KindFromString inverts String for the named kinds (JSONL decoding).
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return KindUnknown, false
}

// NoParent marks a root span.
const NoParent int32 = -1

// Span is one traced interval (or instantaneous stamp, when
// StartDyn == EndDyn and Wall == 0).
//
// Dyn stamps are on the owning machine's virtual clock and are exactly
// reproducible; Wall durations are measured (Safeguard phases) or
// modelled (checkpoint I/O, requeue) and are the only nondeterministic
// field — determinism tests scrub them.
type Span struct {
	Kind Kind
	// ID is assigned by the Recorder in emission order; Parent links a
	// phase span to its activation (NoParent for roots). Merging
	// recorders rebases both consistently.
	ID     int32
	Parent int32
	// StartDyn/EndDyn stamp the span on the virtual clock (retired
	// dynamic instructions of the CPU the work belongs to).
	StartDyn uint64
	EndDyn   uint64
	// Wall is the measured or modelled duration of the span.
	Wall time.Duration
	// PC and Addr locate a fault (activation and trap spans).
	PC   uint64
	Addr uint64
	// Outcome is a small free-form attribute: the safeguard outcome of
	// an activation, the injection outcome of a trial, the signal of a
	// trap stamp.
	Outcome string
	// Rank attributes the span to a cluster rank or trial index
	// (assigned by Recorder.MergeAs for merged sub-traces).
	Rank int32
	// Val is a kind-specific magnitude: snapshot bytes for checkpoint
	// spans, fired-fault count for trial spans.
	Val int64
}

// DynSpan returns the span's extent on the virtual clock. For
// checkpoint-restore spans (a rewind) it returns 0.
func (s Span) DynSpan() uint64 {
	if s.EndDyn < s.StartDyn {
		return 0
	}
	return s.EndDyn - s.StartDyn
}
