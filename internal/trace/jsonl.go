package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSONL export: one JSON object per line, so campaign traces can be
// post-processed offline with standard tooling (jq, pandas). The
// stream is: every retained span oldest-first, then every counter in
// sorted name order, then a trailing meta line with emission totals.
//
//	{"type":"span","kind":"activation","id":0,"parent":-1,...}
//	{"type":"counter","name":"safeguard.recovered","value":3}
//	{"type":"max","name":"safeguard.peak-recovery-bytes","value":9184}
//	{"type":"meta","spans":12,"emitted":12,"dropped":0}

type jsonlSpan struct {
	Type     string `json:"type"`
	Kind     string `json:"kind"`
	ID       int32  `json:"id"`
	Parent   int32  `json:"parent"`
	StartDyn uint64 `json:"start_dyn"`
	EndDyn   uint64 `json:"end_dyn"`
	WallNs   int64  `json:"wall_ns"`
	PC       uint64 `json:"pc,omitempty"`
	Addr     uint64 `json:"addr,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	Rank     int32  `json:"rank"`
	Val      int64  `json:"val,omitempty"`
}

type jsonlCounter struct {
	Type  string `json:"type"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type jsonlMeta struct {
	Type    string `json:"type"`
	Spans   int    `json:"spans"`
	Emitted int    `json:"emitted"`
	Dropped int    `json:"dropped"`
}

// WriteJSONL streams the recorder to w in the JSONL schema above. A
// nil recorder writes only the meta line, so piping a disabled trace
// still yields a parseable file.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range r.Spans() {
		if err := enc.Encode(jsonlSpan{
			Type: "span", Kind: s.Kind.String(), ID: s.ID, Parent: s.Parent,
			StartDyn: s.StartDyn, EndDyn: s.EndDyn, WallNs: int64(s.Wall),
			PC: s.PC, Addr: s.Addr, Outcome: s.Outcome, Rank: s.Rank, Val: s.Val,
		}); err != nil {
			return err
		}
	}
	for _, n := range r.CounterNames() {
		if err := enc.Encode(jsonlCounter{Type: "counter", Name: n, Value: r.Counter(n)}); err != nil {
			return err
		}
	}
	for _, n := range r.MaxNames() {
		if err := enc.Encode(jsonlCounter{Type: "max", Name: n, Value: r.MaxCounter(n)}); err != nil {
			return err
		}
	}
	if err := enc.Encode(jsonlMeta{Type: "meta", Spans: r.Len(), Emitted: r.Emitted(), Dropped: r.Dropped()}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadJSONL parses a stream written by WriteJSONL back into a
// Recorder (ring capacity = number of spans read, minimum 1). Span IDs
// are taken from the stream, preserving parent links, and the meta
// line's emission totals restore the ID allocator and drop count — so a
// recorder that round-trips through JSONL merges exactly like the
// original (Merge rebases later IDs by the emitted total, not just by
// the retained spans). The shard coordinator's byte-identity contract
// depends on this fidelity.
func ReadJSONL(rd io.Reader) (*Recorder, error) {
	var spans []Span
	adds := map[string]int64{}
	maxes := map[string]int64{}
	var meta jsonlMeta
	sawMeta := false
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		switch head.Type {
		case "span":
			var js jsonlSpan
			if err := json.Unmarshal(raw, &js); err != nil {
				return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
			}
			k, ok := KindFromString(js.Kind)
			if !ok {
				k = KindUnknown
			}
			spans = append(spans, Span{
				Kind: k, ID: js.ID, Parent: js.Parent,
				StartDyn: js.StartDyn, EndDyn: js.EndDyn, Wall: time.Duration(js.WallNs),
				PC: js.PC, Addr: js.Addr, Outcome: js.Outcome, Rank: js.Rank, Val: js.Val,
			})
		case "counter", "max":
			var jc jsonlCounter
			if err := json.Unmarshal(raw, &jc); err != nil {
				return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
			}
			if head.Type == "counter" {
				adds[jc.Name] = jc.Value
			} else {
				maxes[jc.Name] = jc.Value
			}
		case "meta":
			if err := json.Unmarshal(raw, &meta); err != nil {
				return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
			}
			sawMeta = true
		default:
			return nil, fmt.Errorf("trace: jsonl line %d: unknown record type %q", line, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawMeta {
		return nil, fmt.Errorf("trace: jsonl stream has no meta line (truncated?)")
	}
	cap := len(spans)
	if cap < 1 {
		cap = 1
	}
	r := New(cap)
	var maxID int32 = -1
	for _, s := range spans {
		r.spans = append(r.spans, s)
		if s.ID > maxID {
			maxID = s.ID
		}
	}
	r.nextID = maxID + 1
	// Emission totals from the meta line trump the retained-span count:
	// IDs dropped by the writer's ring still consume ID space, and the
	// drop tally must survive the round trip for Merge to keep both
	// consistent downstream.
	if int32(meta.Emitted) > r.nextID {
		r.nextID = int32(meta.Emitted)
	}
	r.dropped = meta.Dropped
	for n, v := range adds {
		r.Add(n, v)
	}
	for n, v := range maxes {
		r.Max(n, v)
	}
	return r, nil
}
