package trace

import "time"

// Breakdown is the per-kind aggregation of a span set: how much wall
// (or modelled) time each kind of work consumed, how many spans of the
// kind there were, and how much virtual time they covered. The report
// layers (Figure 9's preparation-vs-kernel split, Figure 10's job
// comparison, the checkpoint I/O columns) are all views over a
// Breakdown.
type Breakdown struct {
	WallByKind  map[Kind]time.Duration
	CountByKind map[Kind]int
	DynByKind   map[Kind]uint64
}

// Aggregate folds a span set into a Breakdown.
func Aggregate(spans []Span) *Breakdown {
	b := &Breakdown{
		WallByKind:  map[Kind]time.Duration{},
		CountByKind: map[Kind]int{},
		DynByKind:   map[Kind]uint64{},
	}
	for _, s := range spans {
		b.WallByKind[s.Kind] += s.Wall
		b.CountByKind[s.Kind]++
		b.DynByKind[s.Kind] += s.DynSpan()
	}
	return b
}

// Wall returns the summed wall time of the given kinds.
func (b *Breakdown) Wall(kinds ...Kind) time.Duration {
	var d time.Duration
	for _, k := range kinds {
		d += b.WallByKind[k]
	}
	return d
}

// Count returns the summed span count of the given kinds.
func (b *Breakdown) Count(kinds ...Kind) int {
	n := 0
	for _, k := range kinds {
		n += b.CountByKind[k]
	}
	return n
}

// PhaseKinds are the Safeguard activation phases in chain order.
var PhaseKinds = []Kind{KindDiagnose, KindLoad, KindFetch, KindKernel, KindPatch, KindRollback}

// RecoveryTotal is the summed wall time of every activation phase —
// the denominator of the Figure 9 ratio.
func (b *Breakdown) RecoveryTotal() time.Duration { return b.Wall(PhaseKinds...) }

// PrepTime is the preparation share of recovery: everything except
// kernel execution and checkpoint rollback. (Rollback is restoration
// work, not preparation — including it would skew the Figure 9 ratio.)
func (b *Breakdown) PrepTime() time.Duration {
	return b.Wall(KindDiagnose, KindLoad, KindFetch, KindPatch)
}

// PrepFraction is the Figure 9 headline: the fraction of total
// recovery time spent preparing (the paper reports >98%).
func (b *Breakdown) PrepFraction() float64 {
	total := b.RecoveryTotal()
	if total == 0 {
		return 0
	}
	return float64(b.PrepTime()) / float64(total)
}

// Delta is one kind's row of a Compare: the wall time and span count
// on each side and their difference (B - A).
type Delta struct {
	Kind   Kind
	WallA  time.Duration
	WallB  time.Duration
	Diff   time.Duration
	CountA int
	CountB int
}

// Compare lines two breakdowns up kind by kind (union of kinds, in
// Kind order) — the derivation behind "faulty job vs baseline job"
// sections: the Figure 10 delta is Compare(base, faulty) rows for
// KindJob and KindRankStall rather than a recomputed bespoke struct.
func Compare(a, b *Breakdown) []Delta {
	var out []Delta
	for k := Kind(0); k < numKinds; k++ {
		ca, cb := a.CountByKind[k], b.CountByKind[k]
		wa, wb := a.WallByKind[k], b.WallByKind[k]
		if ca == 0 && cb == 0 && wa == 0 && wb == 0 {
			continue
		}
		out = append(out, Delta{Kind: k, WallA: wa, WallB: wb, Diff: wb - wa, CountA: ca, CountB: cb})
	}
	return out
}

// DeltaFor returns the delta row for one kind (zero row when absent).
func DeltaFor(deltas []Delta, k Kind) Delta {
	for _, d := range deltas {
		if d.Kind == k {
			return d
		}
	}
	return Delta{Kind: k}
}
