package trace

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func TestEmitAndSpansOrder(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		id := r.Emit(Span{Kind: KindTrial, StartDyn: uint64(i), EndDyn: uint64(i + 1), Parent: NoParent})
		if id != int32(i) {
			t.Fatalf("span %d got ID %d", i, id)
		}
	}
	spans := r.Spans()
	if len(spans) != 5 || r.Emitted() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d emitted=%d dropped=%d", len(spans), r.Emitted(), r.Dropped())
	}
	for i, s := range spans {
		if s.ID != int32(i) || s.StartDyn != uint64(i) {
			t.Fatalf("span %d out of order: %+v", i, s)
		}
	}
}

func TestRingDropsOldestKeepsCounters(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Emit(Span{Kind: KindTrap, StartDyn: uint64(i), Parent: NoParent})
		r.Add("traps", 1)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest-first: the survivors are emissions 6..9.
	for i, s := range spans {
		if want := uint64(6 + i); s.StartDyn != want {
			t.Fatalf("span %d has StartDyn %d, want %d", i, s.StartDyn, want)
		}
	}
	if r.Dropped() != 6 || r.Emitted() != 10 {
		t.Fatalf("dropped=%d emitted=%d, want 6/10", r.Dropped(), r.Emitted())
	}
	if r.Counter("traps") != 10 {
		t.Fatalf("counter degraded with ring drops: %d", r.Counter("traps"))
	}
}

func TestMergeRebasesIDsAndParents(t *testing.T) {
	a := New(16)
	actA := a.Emit(Span{Kind: KindActivation, Parent: NoParent})
	a.Emit(Span{Kind: KindKernel, Parent: actA})
	a.Add("n", 1)
	a.Max("peak", 5)

	b := New(16)
	actB := b.Emit(Span{Kind: KindActivation, Parent: NoParent})
	b.Emit(Span{Kind: KindDiagnose, Parent: actB})
	b.Add("n", 2)
	b.Max("peak", 3)

	a.MergeAs(b, 7)
	spans := a.Spans()
	if len(spans) != 4 {
		t.Fatalf("merged span count %d, want 4", len(spans))
	}
	// b's activation was rebased past a's IDs and its child follows it.
	if spans[2].ID != 2 || spans[2].Kind != KindActivation || spans[2].Rank != 7 {
		t.Fatalf("rebased activation: %+v", spans[2])
	}
	if spans[3].Parent != spans[2].ID || spans[3].Rank != 7 {
		t.Fatalf("child lost its parent link: %+v", spans[3])
	}
	// a's own spans keep Rank untouched by MergeAs.
	if spans[0].Rank != 0 {
		t.Fatalf("pre-merge span rank mutated: %+v", spans[0])
	}
	if a.Counter("n") != 3 {
		t.Fatalf("additive counter merge: %d", a.Counter("n"))
	}
	if a.MaxCounter("peak") != 5 {
		t.Fatalf("max counter merge: %d", a.MaxCounter("peak"))
	}
}

func TestMergeDeterministicAcrossGrouping(t *testing.T) {
	// Merging [t0, t1, t2] one by one equals merging [t0] then [t1+t2]
	// pre-merged — the property the campaign's trial-ordered merge
	// relies on.
	mk := func(i int) *Recorder {
		r := New(8)
		id := r.Emit(Span{Kind: KindTrial, StartDyn: uint64(i), Parent: NoParent})
		r.Emit(Span{Kind: KindTrap, Parent: id})
		r.Add("outcome.Benign", 1)
		return r
	}
	flat := New(64)
	for i := 0; i < 3; i++ {
		flat.MergeAs(mk(i), int32(i))
	}
	grouped := New(64)
	grouped.MergeAs(mk(0), 0)
	sub := New(64)
	sub.MergeAs(mk(1), 1)
	sub.MergeAs(mk(2), 2)
	grouped.Merge(sub)
	if !reflect.DeepEqual(flat.Spans(), grouped.Spans()) {
		t.Fatalf("span streams differ:\n%+v\nvs\n%+v", flat.Spans(), grouped.Spans())
	}
	if flat.Counter("outcome.Benign") != grouped.Counter("outcome.Benign") {
		t.Fatal("counters differ across merge grouping")
	}
}

func TestNilRecorderIsNoOpWithoutAllocations(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(Span{Kind: KindTrap})
		r.Add("x", 1)
		r.Max("y", 2)
		_ = r.Counter("x")
		_ = r.Enabled()
		_ = r.Len()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocates %.1f times per op set", allocs)
	}
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if got := r.Emit(Span{}); got != NoParent {
		t.Fatalf("nil Emit returned %d", got)
	}
	if r.Spans() != nil || r.CounterNames() != nil {
		t.Fatal("nil recorder returned non-nil views")
	}
}

func TestAggregateAndPrepFraction(t *testing.T) {
	r := New(32)
	act := r.Emit(Span{Kind: KindActivation, Wall: 100, Parent: NoParent})
	r.Emit(Span{Kind: KindDiagnose, Wall: 40, Parent: act})
	r.Emit(Span{Kind: KindLoad, Wall: 30, Parent: act})
	r.Emit(Span{Kind: KindFetch, Wall: 20, Parent: act})
	r.Emit(Span{Kind: KindKernel, Wall: 2, Parent: act})
	r.Emit(Span{Kind: KindPatch, Wall: 8, Parent: act})
	r.Emit(Span{Kind: KindRollback, Wall: 500, Parent: act})
	b := Aggregate(r.Spans())
	if got := b.RecoveryTotal(); got != 600 {
		t.Fatalf("RecoveryTotal %v, want 600", got)
	}
	// Prep excludes kernel AND rollback.
	if got := b.PrepTime(); got != 98 {
		t.Fatalf("PrepTime %v, want 98", got)
	}
	if got := b.PrepFraction(); got != 98.0/600.0 {
		t.Fatalf("PrepFraction %v", got)
	}
	if b.Count(KindActivation) != 1 || b.Wall(KindActivation) != 100 {
		t.Fatalf("activation aggregation: %+v", b)
	}
}

func TestCompare(t *testing.T) {
	a := Aggregate([]Span{{Kind: KindJob, Wall: 1000}})
	b := Aggregate([]Span{{Kind: KindJob, Wall: 1250}, {Kind: KindRankStall, Wall: 250, Rank: 0}})
	deltas := Compare(a, b)
	job := DeltaFor(deltas, KindJob)
	if job.Diff != 250 || job.WallA != 1000 || job.WallB != 1250 {
		t.Fatalf("job delta %+v", job)
	}
	stall := DeltaFor(deltas, KindRankStall)
	if stall.CountA != 0 || stall.CountB != 1 || stall.Diff != 250 {
		t.Fatalf("stall delta %+v", stall)
	}
	if missing := DeltaFor(deltas, KindKernel); missing.Diff != 0 || missing.Kind != KindKernel {
		t.Fatalf("missing-kind delta %+v", missing)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(16)
	act := r.Emit(Span{
		Kind: KindActivation, Parent: NoParent, StartDyn: 42, EndDyn: 42,
		Wall: 1500 * time.Nanosecond, PC: 0x1000, Addr: 0x7eee0000,
		Outcome: "recovered", Rank: 3, Val: 0,
	})
	r.Emit(Span{Kind: KindKernel, Parent: act, Wall: 25, StartDyn: 42, EndDyn: 42, Rank: 3})
	r.Emit(Span{Kind: KindCheckpointSave, Parent: NoParent, Wall: 99, Val: 4096})
	r.Add("safeguard.recovered", 1)
	r.Add("campaign.outcome.Benign", 7)
	r.Max("safeguard.peak-recovery-bytes", 9184)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Spans(), back.Spans()) {
		t.Fatalf("spans did not round-trip:\n%+v\nvs\n%+v", r.Spans(), back.Spans())
	}
	if back.Counter("campaign.outcome.Benign") != 7 || back.MaxCounter("safeguard.peak-recovery-bytes") != 9184 {
		t.Fatal("counters did not round-trip")
	}
}

func TestJSONLNilAndErrors(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("nil recorder stream did not parse: %v", err)
	}
	if back.Len() != 0 {
		t.Fatalf("nil stream produced %d spans", back.Len())
	}
	if _, err := ReadJSONL(bytes.NewBufferString("{\"type\":\"span\"}\n")); err == nil {
		t.Fatal("truncated stream (no meta) parsed without error")
	}
	if _, err := ReadJSONL(bytes.NewBufferString("not json\n")); err == nil {
		t.Fatal("garbage stream parsed without error")
	}
}

func TestKindStringHardened(t *testing.T) {
	if KindKernel.String() != "kernel" {
		t.Fatalf("kernel kind renders as %q", KindKernel.String())
	}
	if got := Kind(200).String(); got != "unknown(200)" {
		t.Fatalf("out-of-range kind renders as %q", got)
	}
	if k, ok := KindFromString("rank-stall"); !ok || k != KindRankStall {
		t.Fatalf("KindFromString(rank-stall) = %v, %v", k, ok)
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Fatal("KindFromString accepted a bogus name")
	}
}

func TestReset(t *testing.T) {
	r := New(4)
	r.Emit(Span{Kind: KindTrap})
	r.Add("a", 1)
	r.Reset()
	if r.Len() != 0 || r.Emitted() != 0 || r.Counter("a") != 0 {
		t.Fatalf("reset left state behind: %+v", r)
	}
}
