package trace

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// shardTrialRec builds the i'th synthetic per-trial recorder: a small
// ring (so some trials overflow and exercise the dropped/emitted meta
// fidelity), a parent-linked span tree, wall times, and per-trial
// counters.
func shardTrialRec(i int) *Recorder {
	r := New(4)
	act := r.Emit(Span{Kind: KindActivation, Parent: NoParent, StartDyn: uint64(i), Wall: time.Duration(i) * time.Microsecond})
	for j := 0; j < i%6; j++ {
		r.Emit(Span{Kind: KindTrap, Parent: act, StartDyn: uint64(10*i + j), PC: uint64(100 + j), Outcome: "sigsegv"})
	}
	r.Emit(Span{Kind: KindTrial, Parent: NoParent, StartDyn: uint64(i), EndDyn: uint64(i + 1), Outcome: "SoftFailure", Val: int64(i % 3)})
	r.Add("campaign.outcome.SoftFailure", 1)
	r.Add("campaign.latency-sum", int64(i))
	r.Max("campaign.peak", int64(i%7))
	return r
}

// shardRangeFor is the contiguous trial partition the campaign
// coordinator uses: shard s of S owns [s*n/S, (s+1)*n/S).
func shardRangeFor(n, shards, s int) (int, int) {
	return s * n / shards, (s + 1) * n / shards
}

// TestShardJSONLMergeByteIdentical is the shard-boundary property: N
// per-trial recorders split into disjoint contiguous shards, each shard
// merged in trial-index order and exported as JSONL, then decoded and
// merged shard-by-shard, must reproduce the single-recorder JSONL
// byte-for-byte — spans, counter totals, high-water marks, and the meta
// emission totals alike — for any shard count.
func TestShardJSONLMergeByteIdentical(t *testing.T) {
	const nTrials = 23
	single := New(1024)
	for i := 0; i < nTrials; i++ {
		single.MergeAs(shardTrialRec(i), int32(i))
	}
	var want bytes.Buffer
	if err := single.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 3, 5, 8, nTrials} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			merged := New(1024)
			for s := 0; s < shards; s++ {
				lo, hi := shardRangeFor(nTrials, shards, s)
				rec := New(1024)
				for i := lo; i < hi; i++ {
					rec.MergeAs(shardTrialRec(i), int32(i))
				}
				var stream bytes.Buffer
				if err := rec.WriteJSONL(&stream); err != nil {
					t.Fatal(err)
				}
				back, err := ReadJSONL(&stream)
				if err != nil {
					t.Fatal(err)
				}
				// Rank attribution already happened per trial, so the
				// shard stream merges rank-preserving.
				merged.Merge(back)
			}
			var got bytes.Buffer
			if err := merged.WriteJSONL(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("sharded JSONL differs from single-recorder JSONL\nwant %d bytes, got %d", want.Len(), got.Len())
			}
			if merged.Emitted() != single.Emitted() || merged.Dropped() != single.Dropped() {
				t.Fatalf("emission totals differ: emitted %d/%d dropped %d/%d",
					merged.Emitted(), single.Emitted(), merged.Dropped(), single.Dropped())
			}
		})
	}
}

// TestReadJSONLRestoresEmissionTotals pins the fidelity contract the
// property above depends on: a recorder whose ring dropped spans keeps
// its ID allocator and drop count across a JSONL round trip, so merging
// the decoded recorder rebases exactly like merging the original.
func TestReadJSONLRestoresEmissionTotals(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Emit(Span{Kind: KindTrap, StartDyn: uint64(i), Parent: NoParent})
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Emitted() != 5 || back.Dropped() != 3 || back.Len() != 2 {
		t.Fatalf("round trip lost totals: emitted=%d dropped=%d len=%d", back.Emitted(), back.Dropped(), back.Len())
	}
	a, b := New(64), New(64)
	a.Merge(r)
	b.Merge(back)
	if a.Emitted() != b.Emitted() || a.Dropped() != b.Dropped() {
		t.Fatalf("post-merge totals diverge: emitted %d/%d dropped %d/%d", a.Emitted(), b.Emitted(), a.Dropped(), b.Dropped())
	}
	if next := a.Emit(Span{Kind: KindTrial, Parent: NoParent}); next != b.Emit(Span{Kind: KindTrial, Parent: NoParent}) {
		t.Fatalf("next assigned ID diverges after merge")
	}
}
