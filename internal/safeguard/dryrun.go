package safeguard

import (
	"fmt"

	"care/internal/machine"
	"care/internal/rtable"
	"care/internal/trace"
)

// ComputeAddress runs the recovery kernel registered for the
// instruction at code index idx of the unit's image against the CPU's
// *current* (un-faulted) state, and returns the effective address the
// kernel computes. ok is false when the instruction has no kernel.
//
// This is the verification surface for CARE's central invariant: on an
// uncorrupted execution, a recovery kernel must recompute exactly the
// effective address its instruction is about to dereference — the
// property that makes the §3.4 coverage-scope check sound.
func (sg *Safeguard) ComputeAddress(c *machine.CPU, u *Unit, idx int) (machine.Word, bool, error) {
	key, okKey := u.Image.Prog.Debug.KeyAt(idx)
	if !okKey || (key.Line == 0 && key.Col == 0) {
		return 0, false, nil
	}
	table, err := sg.loadTable(u)
	if err != nil {
		return 0, false, err
	}
	entry, ok := table.LookupSource(key)
	if !ok {
		return 0, false, nil
	}
	lib, err := sg.loadLib(u)
	if err != nil {
		return 0, true, err
	}
	trap := &machine.Trap{Img: u.Image, Idx: idx, PC: u.Image.Prog.AddrOf(idx)}
	args, okArgs := sg.fetchParams(c, trap, entry)
	if !okArgs {
		return 0, true, fmt.Errorf("safeguard: parameters unavailable for %s at idx %d", entry.Symbol, idx)
	}
	addr, err := sg.runKernel(c, lib, entry.Symbol, args)
	if err != nil {
		return 0, true, err
	}
	return addr, true, nil
}

// NewForVerification builds a Safeguard over the units without
// installing a trap handler (for ComputeAddress-based checks).
func NewForVerification(units []*Unit, cfg Config) *Safeguard {
	sg := &Safeguard{
		cfg:          cfg,
		units:        map[*machine.Image]*Unit{},
		rec:          trace.New(cfg.TraceCap),
		cachedTables: map[*Unit]*rtable.Table{},
		cachedLibs:   map[*Unit]*machine.Program{},
	}
	for _, u := range units {
		sg.units[u.Image] = u
	}
	return sg
}
