package safeguard_test

import (
	"testing"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/machine"
	"care/internal/safeguard"
)

// chainRun executes one fault scenario through the escalation chain:
// run clean past the manual checkpoint, corrupt the protected load's
// index register so the access goes wild *inside the heap domain*
// (bit 30 stays well below the heap/lib boundary), and let the chain
// resolve it. persistent re-corrupts on every execution of the target,
// like a genuine bug; otherwise the register is corrupted once (but
// stays corrupt until the program overwrites it).
func chainRun(t *testing.T, bin *core.Binary, cfg safeguard.Config, withStore, persistent bool, tier machine.InterpTier) (*core.Process, machine.RunStatus) {
	t.Helper()
	target, _ := protectedFloatLoad(t, bin)
	pc := core.ProcessConfig{App: bin, Protected: true, Safeguard: cfg, Tier: tier}
	if withStore {
		pc.Checkpoint = checkpoint.NewStore(checkpoint.CostModel{})
		pc.CheckpointEveryResults = 1
	}
	p, err := core.NewProcess(pc)
	if err != nil {
		t.Fatal(err)
	}
	// Clean prefix, then a full save so every live domain has a
	// generation to rewind to before the first fault.
	p.CPU.Run(2_000)
	if withStore {
		p.Store.Save(p.CPU, 1)
	}
	injected := false
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if c.PC == target && (persistent || !injected) && c.Dyn > 2_000 {
			injected = true
			mi := img.Prog.Code[(target-img.Base())/8]
			c.R[mi.Index] ^= 1 << 30
		}
	}
	st := p.Run(0)
	if !injected {
		t.Fatal("injection site never reached")
	}
	return p, st
}

// outcomes flattens the event log for sequence assertions.
func outcomes(p *core.Process) []safeguard.Outcome {
	var out []safeguard.Outcome
	for _, ev := range p.SG.Stats().Events {
		out = append(out, ev.Outcome)
	}
	return out
}

func requireSequence(t *testing.T, p *core.Process, want []safeguard.Outcome) {
	t.Helper()
	got := outcomes(p)
	if len(got) != len(want) {
		t.Fatalf("outcome sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outcome sequence %v, want %v", got, want)
		}
	}
}

// TestEscalationStageOrder is the chain's contract, as a table over
// configurations: kernel recompute preempts every later stage, the
// heuristic bit-bucket preempts the domain rewind, the domain rewind
// preempts whole-process rollback, rollback preempts kill, and each
// budget hands over to the next stage exactly when exhausted. (The
// induction stage sits inside the kernel phase — its placement is
// pinned by the induction-recovery tests.)
func TestEscalationStageOrder(t *testing.T) {
	armored := buildHPCCG(t, false)
	bare := buildHPCCG(t, true)
	fullChain := safeguard.Policy{DomainRewind: true, Rollback: true}

	t.Run("kernel-preempts-rewind", func(t *testing.T) {
		// With recovery artifacts every trap resolves in the kernel
		// stage; the armed rewind/rollback stages never fire.
		p, st := chainRun(t, armored, safeguard.Config{Policy: fullChain}, true, false, machine.TierSuperblock)
		if st != machine.StatusExited {
			t.Fatalf("armored run ended %v", st)
		}
		for _, o := range outcomes(p) {
			if o != safeguard.Recovered {
				t.Fatalf("outcome %s under the armored chain, want %s", o, safeguard.Recovered)
			}
		}
		if p.SG.DomainRewinds() != 0 || p.SG.Rollbacks() != 0 {
			t.Fatalf("kernel-stage recovery leaked into later stages: %d rewinds, %d rollbacks",
				p.SG.DomainRewinds(), p.SG.Rollbacks())
		}
	})

	t.Run("heuristic-preempts-rewind", func(t *testing.T) {
		cfg := safeguard.Config{Heuristic: true, Policy: fullChain}
		p, _ := chainRun(t, bare, cfg, true, false, machine.TierSuperblock)
		for _, o := range outcomes(p) {
			if o != safeguard.HeuristicPatched {
				t.Fatalf("outcome %s with the heuristic armed, want %s", o, safeguard.HeuristicPatched)
			}
		}
		if p.SG.DomainRewinds() != 0 || p.SG.Rollbacks() != 0 {
			t.Fatalf("heuristic stage fell through: %d rewinds, %d rollbacks",
				p.SG.DomainRewinds(), p.SG.Rollbacks())
		}
	})

	t.Run("rewind-then-rollback-then-kill", func(t *testing.T) {
		// A persistent heap-domain bug: two rewinds (memory-only, so the
		// corrupt register immediately re-faults), then — the per-domain
		// budget spent and never reset — two full rollbacks, then kill
		// with the patch stages' verdict.
		p, st := chainRun(t, bare, safeguard.Config{Policy: fullChain}, true, true, machine.TierSuperblock)
		if st == machine.StatusExited {
			t.Fatal("persistent bug exited cleanly")
		}
		requireSequence(t, p, []safeguard.Outcome{
			safeguard.DomainRewound, safeguard.DomainRewound,
			safeguard.RolledBack, safeguard.RolledBack,
			safeguard.NoDebugKey,
		})
		for _, ev := range p.SG.Stats().Events[:2] {
			if ev.Domain != machine.DomainHeap {
				t.Errorf("rewind attributed to %v, want %v", ev.Domain, machine.DomainHeap)
			}
			if ev.DomainRewind <= 0 || ev.Total() < ev.DomainRewind {
				t.Errorf("rewind timing not charged: %+v", ev)
			}
		}
		if p.SG.DomainRewinds() != 2 || p.SG.Rollbacks() != 2 {
			t.Fatalf("budgets: %d rewinds / %d rollbacks, want 2 / 2",
				p.SG.DomainRewinds(), p.SG.Rollbacks())
		}
	})

	t.Run("rewind-exhaustion-without-rollback-kills", func(t *testing.T) {
		p, st := chainRun(t, bare, safeguard.Config{Policy: safeguard.Policy{DomainRewind: true}}, true, true, machine.TierSuperblock)
		if st == machine.StatusExited {
			t.Fatal("persistent bug exited cleanly")
		}
		requireSequence(t, p, []safeguard.Outcome{
			safeguard.DomainRewound, safeguard.DomainRewound, safeguard.NoDebugKey,
		})
		if p.SG.Rollbacks() != 0 {
			t.Fatalf("%d rollbacks with the rollback stage disabled", p.SG.Rollbacks())
		}
	})

	t.Run("retry-budget-skips-patching-not-rewind", func(t *testing.T) {
		// The circuit breaker skips the *patch* stages; the rewind stage
		// still gets its shot, and only when its budget is also spent
		// does the exhaustion verdict reach the kill.
		pol := safeguard.Policy{DomainRewind: true, MaxDomainRewinds: 1, MaxTrapsPerPC: 1}
		p, st := chainRun(t, bare, safeguard.Config{Policy: pol}, true, true, machine.TierSuperblock)
		if st == machine.StatusExited {
			t.Fatal("persistent bug exited cleanly")
		}
		requireSequence(t, p, []safeguard.Outcome{
			safeguard.DomainRewound, safeguard.RetryBudgetExhausted,
		})
	})
}

// TestEscalationChainTierIdentity: the chain's decisions derive from
// the virtual machine state only, so the full escalation sequence is
// identical on every interpreter tier.
func TestEscalationChainTierIdentity(t *testing.T) {
	bin := buildHPCCG(t, true)
	cfg := safeguard.Config{Policy: safeguard.Policy{DomainRewind: true, Rollback: true}}
	type run struct {
		seq      []safeguard.Outcome
		domains  []machine.DomainID
		rewinds  int
		rollback int
		dyn      uint64
	}
	runs := map[machine.InterpTier]run{}
	for _, tier := range []machine.InterpTier{machine.TierSuperblock, machine.TierBlock, machine.TierStep} {
		p, _ := chainRun(t, bin, cfg, true, true, tier)
		r := run{seq: outcomes(p), rewinds: p.SG.DomainRewinds(), rollback: p.SG.Rollbacks(), dyn: p.CPU.Dyn}
		for _, ev := range p.SG.Stats().Events {
			r.domains = append(r.domains, ev.Domain)
		}
		runs[tier] = r
	}
	base := runs[machine.TierSuperblock]
	for tier, r := range runs {
		if len(r.seq) != len(base.seq) || r.rewinds != base.rewinds || r.rollback != base.rollback || r.dyn != base.dyn {
			t.Fatalf("tier %v diverges from superblock: %+v vs %+v", tier, r, base)
		}
		for i := range base.seq {
			if r.seq[i] != base.seq[i] || r.domains[i] != base.domains[i] {
				t.Fatalf("tier %v event %d: %s/%v vs %s/%v", tier, i,
					r.seq[i], r.domains[i], base.seq[i], base.domains[i])
			}
		}
	}
}

// TestUnwiredStoreDiagnostic: arming the rollback or rewind stages
// without wiring a checkpoint store is a misconfiguration the chain
// must surface (once) instead of silently killing.
func TestUnwiredStoreDiagnostic(t *testing.T) {
	bin := buildHPCCG(t, true)
	cfg := safeguard.Config{Policy: safeguard.Policy{DomainRewind: true, Rollback: true}}
	p, st := chainRun(t, bin, cfg, false, true, machine.TierSuperblock)
	if st == machine.StatusExited {
		t.Fatal("storeless chain exited cleanly")
	}
	if got := p.SG.Trace().Counter(safeguard.CounterRollbackUnwired); got != 1 {
		t.Fatalf("%s = %d, want exactly 1", safeguard.CounterRollbackUnwired, got)
	}
	if p.SG.DomainRewinds() != 0 || p.SG.Rollbacks() != 0 {
		t.Fatal("storeless chain claims to have rewound or rolled back")
	}
	requireSequence(t, p, []safeguard.Outcome{safeguard.NoDebugKey})
}

// TestBudgetCountersLogged: Attach surfaces the *effective* escalation
// budgets as high-water trace counters, so a campaign trace alone
// documents the policy it ran under.
func TestBudgetCountersLogged(t *testing.T) {
	bin := buildHPCCG(t, true)
	p, err := core.NewProcess(core.ProcessConfig{
		App: bin, Protected: true,
		Safeguard: safeguard.Config{
			Policy: safeguard.Policy{Rollback: true, MaxRollbacks: 5, DomainRewind: true},
		},
		Checkpoint: checkpoint.NewStore(checkpoint.CostModel{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SG.Trace().MaxCounter(safeguard.CounterMaxRollbacksBudget); got != 5 {
		t.Errorf("%s = %d, want 5", safeguard.CounterMaxRollbacksBudget, got)
	}
	// Zero defaults to 2, and the trace records the defaulted value.
	if got := p.SG.Trace().MaxCounter(safeguard.CounterMaxDomainRewindsBudget); got != 2 {
		t.Errorf("%s = %d, want the defaulted 2", safeguard.CounterMaxDomainRewindsBudget, got)
	}
}

// TestPolicyValidate is the shared flag-validation point: negative
// budgets are rejected with a descriptive error, zero and positive
// values pass.
func TestPolicyValidate(t *testing.T) {
	for _, tc := range []struct {
		pol safeguard.Policy
		ok  bool
	}{
		{safeguard.Policy{}, true},
		{safeguard.Policy{MaxRollbacks: 3, MaxDomainRewinds: 1, MaxTrapsPerPC: 8, StormTraps: 4}, true},
		{safeguard.Policy{MaxRollbacks: -1}, false},
		{safeguard.Policy{MaxDomainRewinds: -2}, false},
		{safeguard.Policy{MaxTrapsPerPC: -1}, false},
		{safeguard.Policy{StormTraps: -1}, false},
	} {
		err := tc.pol.Validate()
		if tc.ok && err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", tc.pol, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Validate(%+v) accepted a negative budget", tc.pol)
		}
	}
}
