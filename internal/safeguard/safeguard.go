// Package safeguard implements CARE's runtime system: a SIGSEGV handler
// (installed on the simulated CPU the way the paper's library is
// LD_PRELOADed into a process) that diagnoses a crashing memory access,
// locates its recovery kernel through the lazily-loaded Recovery Table,
// fetches the kernel's arguments from the stalled process via debug
// information, executes the kernel against live process memory,
// patches the faulting operand with the recomputed address, and resumes
// the process at the faulting instruction (the paper's Algorithm 1).
package safeguard

import (
	"fmt"
	"math"
	"time"

	"care/internal/checkpoint"
	"care/internal/debuginfo"
	"care/internal/hostenv"
	"care/internal/machine"
	"care/internal/rtable"
	"care/internal/trace"
)

// Unit is the recovery data shipped alongside one protected image: the
// encoded Recovery Table and the encoded recovery-library "shared
// object". Both stay as opaque bytes until a fault occurs.
type Unit struct {
	Image      *machine.Image
	TableBytes []byte
	LibBytes   []byte
}

// Outcome classifies one Safeguard activation.
type Outcome string

// Activation outcomes.
const (
	// Recovered: the operand was patched and execution resumed.
	Recovered Outcome = "recovered"
	// NoDebugKey: the faulting instruction carries no source key
	// (frame/prologue traffic or unprotected image).
	NoDebugKey Outcome = "no-debug-key"
	// NoKernel: no recovery-table entry for the key (direct accesses,
	// real program bugs).
	NoKernel Outcome = "no-kernel"
	// ParamUnavailable: a kernel argument had no valid location at the
	// faulting PC (optimised away) or its frame slot was unreadable.
	ParamUnavailable Outcome = "param-unavailable"
	// KernelFault: the kernel itself faulted (its inputs were
	// contaminated in a way that breaks a cloned load).
	KernelFault Outcome = "kernel-fault"
	// OutOfScope: the kernel recomputed exactly the faulting address,
	// proving the corruption hit a kernel input — CARE's SDC guard.
	OutOfScope Outcome = "out-of-scope"
	// WrongSignal: the trap was not a SIGSEGV (not handled).
	WrongSignal Outcome = "wrong-signal"
	// HeuristicPatched: LetGo-style fallback redirected the access to a
	// bit bucket (only in Heuristic mode; may introduce SDCs).
	HeuristicPatched Outcome = "heuristic-patched"
	// RecoveredInduction: a corrupted induction variable was
	// reconstructed from an affine sibling (Figure-11 extension).
	RecoveredInduction Outcome = "recovered-induction"
	// DomainRewound: no patch stage applied, so the escalation chain
	// rewound the faulting access's memory domain to its latest
	// consistent snapshot generation and resumed in place, keeping every
	// other domain's progress (Policy.DomainRewind).
	DomainRewound Outcome = "domain-rewound"
	// RolledBack: no patch stage applied, so the escalation chain
	// restored the latest checkpoint snapshot and resumed from its
	// step (Policy.Rollback).
	RolledBack Outcome = "rolled-back"
	// RecoveryStorm: the storm detector saw Policy.StormTraps traps at
	// this PC within Policy.StormWindow dynamic instructions — patching
	// is not making progress — and no rollback was available.
	RecoveryStorm Outcome = "recovery-storm"
	// RetryBudgetExhausted: more than Policy.MaxTrapsPerPC traps were
	// handled at this PC and no rollback was available.
	RetryBudgetExhausted Outcome = "retry-budget-exhausted"
	// DefenseDetected: a detection-only defense pass (PRESAGE, SFI)
	// raised a deterministic SIGTRAP via care_detect. There is no
	// kernel to recompute — the check proves corruption but cannot
	// repair it — so the activation enters the escalation chain
	// directly at the domain-rewind/rollback stages; without a wired
	// checkpoint store the detection is fail-stop.
	DefenseDetected Outcome = "defense-detected"
)

// Event records one activation for the recovery-time analysis
// (Figure 9: >98% of recovery time is preparation, not the kernel).
type Event struct {
	PC      machine.Word
	Addr    machine.Word
	Outcome Outcome
	// Phase timings.
	Diagnose time.Duration // PC->key->table entry
	Load     time.Duration // decode table + dlopen recovery library
	Fetch    time.Duration // argument retrieval via debug info
	Kernel   time.Duration // recovery-kernel execution
	Patch    time.Duration // operand update
	// DomainRewind is the domain-swap cost of a DomainRewound
	// activation: the live rewind time plus the cost model's modelled
	// memory-copy charge. Domain names the rewound domain.
	DomainRewind time.Duration
	Domain       machine.DomainID
	// Rollback is the checkpoint-restore cost of a RolledBack
	// activation: the live restore time plus the cost model's snapshot
	// read and requeue charges.
	Rollback time.Duration
}

// Total returns the end-to-end recovery time of the event.
func (e Event) Total() time.Duration {
	return e.Diagnose + e.Load + e.Fetch + e.Kernel + e.Patch + e.DomainRewind + e.Rollback
}

// Prep returns the preparation share of the event: everything but
// kernel execution and checkpoint rollback. (Rollback and domain
// rewinds are restoration work, not preparation — including them would
// skew the Figure 9 ratio for escalation-chain policies.)
func (e Event) Prep() time.Duration {
	return e.Total() - e.Kernel - e.Rollback - e.DomainRewind
}

// Stats aggregates Safeguard activity. It is derived on demand from the
// safeguard's trace (see Safeguard.Stats), not maintained as a separate
// ledger.
type Stats struct {
	Activations   int
	Recovered     int
	Unrecoverable int
	// RolledBack counts activations resolved by restoring a checkpoint
	// snapshot (neither an in-place recovery nor a kill).
	RolledBack int
	// DomainRewinds counts activations resolved by rewinding one memory
	// domain in place.
	DomainRewinds int
	// Storms counts recovery-storm detector trips.
	Storms int
	Events []Event
	// IdleFootprintBytes is the steady-state memory held while no fault
	// is being handled: the undecoded table/library bytes (the
	// reproduction's analogue of the paper's fixed 27MB, which was
	// mostly resident LLVM/protobuf code).
	IdleFootprintBytes int
	// PeakRecoveryBytes is the largest transient footprint observed
	// during a repair (decoded table + decoded library code).
	PeakRecoveryBytes int
}

// Config tunes Safeguard; the zero value is the paper's configuration.
type Config struct {
	// Eager keeps the decoded table and recovery library resident
	// instead of reloading per fault (ablation: latency vs footprint).
	Eager bool
	// PatchBase always patches the base register instead of preferring
	// the index register (ablation of the paper's §3.4 default).
	PatchBase bool
	// Heuristic enables a LetGo/RCV-style fallback: when proper
	// recovery is impossible, redirect the access to a zero-filled
	// bit-bucket page and continue (may introduce SDCs; ablation).
	Heuristic bool
	// HandleBus also attempts recovery for SIGBUS (off in the paper).
	HandleBus bool
	// InductionRecovery enables the Figure-11 extension: when the
	// scope check proves a kernel input contaminated, attempt to
	// reconstruct a corrupted induction variable from an affine sibling
	// before giving up. Off by default (the paper lists it as future
	// work).
	InductionRecovery bool
	// MaxKernelSteps bounds recovery-kernel execution (0 = 1<<20).
	MaxKernelSteps uint64
	// TraceCap is the span capacity of the safeguard's trace recorder
	// (0 = trace.DefaultSpanCap). Counters stay exact past the cap; only
	// per-span detail is dropped oldest-first.
	TraceCap int
	// Policy configures the escalating recovery chain (retry budgets,
	// storm detection, checkpoint rollback). The zero value is the
	// paper's one-shot behaviour.
	Policy Policy
}

// Trace counter names charged by the safeguard.
const (
	CounterActivations   = "safeguard.activations"
	CounterRecovered     = "safeguard.recovered"
	CounterUnrecoverable = "safeguard.unrecoverable"
	// CounterDetected counts SIGTRAP activations raised by a
	// detection-only defense (charged at handler entry, before the
	// escalation chain decides the activation's final outcome).
	CounterDetected      = "safeguard.detected"
	CounterRolledBack    = "safeguard.rolled-back"
	CounterDomainRewinds = "safeguard.domain-rewinds"
	CounterStorms        = "safeguard.storms"
	CounterIdleFootprint = "safeguard.idle-footprint-bytes"
	// CounterDomainRewindInconsistent counts rewinds refused by the
	// cross-domain consistency proofs (each one escalated instead).
	CounterDomainRewindInconsistent = "safeguard.domain-rewind.inconsistent"
	// CounterRollbackUnwired flags a misconfiguration: a rollback or
	// domain-rewind stage was enabled but no checkpoint store was wired
	// (UseCheckpoints never called), so escalation fell through.
	CounterRollbackUnwired = "safeguard.rollback.unwired"
	// CounterPeakRecovery is a high-water mark (Recorder.MaxCounter).
	CounterPeakRecovery = "safeguard.peak-recovery-bytes"
	// CounterMaxRollbacksBudget / CounterMaxDomainRewindsBudget surface
	// the *effective* escalation budgets (after zero-value defaulting)
	// into the trace. High-water marks, not additive: merging per-trial
	// traces must not sum identical budget values.
	CounterMaxRollbacksBudget     = "safeguard.policy.max-rollbacks"
	CounterMaxDomainRewindsBudget = "safeguard.policy.max-domain-rewinds"

	// Per-phase wall-time totals in nanoseconds. These duplicate the
	// phase spans in counter form so the Figure 9 ratio stays exact even
	// when a long run overflows the span ring.
	CounterDiagnoseNs     = "safeguard.diagnose-ns"
	CounterLoadNs         = "safeguard.load-ns"
	CounterFetchNs        = "safeguard.fetch-ns"
	CounterKernelNs       = "safeguard.kernel-ns"
	CounterPatchNs        = "safeguard.patch-ns"
	CounterDomainRewindNs = "safeguard.domain-rewind-ns"
	CounterRollbackNs     = "safeguard.rollback-ns"
)

// DomainRewindCounter names the per-domain rewind tally for d.
func DomainRewindCounter(d machine.DomainID) string {
	return "safeguard.domain-rewind." + d.String()
}

// PhaseNsCounters maps each activation-phase span kind to the additive
// counter holding its total wall time in nanoseconds.
var PhaseNsCounters = map[trace.Kind]string{
	trace.KindDiagnose:     CounterDiagnoseNs,
	trace.KindLoad:         CounterLoadNs,
	trace.KindFetch:        CounterFetchNs,
	trace.KindKernel:       CounterKernelNs,
	trace.KindPatch:        CounterPatchNs,
	trace.KindDomainRewind: CounterDomainRewindNs,
	trace.KindRollback:     CounterRollbackNs,
}

// Safeguard is the runtime attached to one process. All accounting —
// activation events with their phase timings, outcome tallies, the
// footprint figures — lives on its trace recorder; Stats and Events are
// views derived from it.
type Safeguard struct {
	cfg   Config
	units map[*machine.Image]*Unit
	rec   *trace.Recorder

	cachedTables map[*Unit]*rtable.Table
	cachedLibs   map[*Unit]*machine.Program
	bitBucket    machine.Word

	// store backs the rollback stage (UseCheckpoints); restores are
	// counted on the trace against Policy.MaxRollbacks.
	store *checkpoint.Store
	// pcTraps tracks per-PC trap pressure for the retry budget and the
	// recovery-storm detector.
	pcTraps map[machine.Word]*pcState
	// domainRewinds tallies rewinds per domain against
	// Policy.MaxDomainRewinds. Cumulative for the process lifetime —
	// deliberately not reset by a full rollback, so a domain that keeps
	// re-faulting cannot ping-pong between rewind and rollback forever.
	domainRewinds [machine.NumDomains]int
	// unwiredWarned makes the rollback-unwired diagnostic one-shot per
	// safeguard.
	unwiredWarned bool
}

// Attach installs Safeguard as the process's SIGSEGV handler (the
// LD_PRELOAD constructor analogue) and returns it. Units list the
// protected images with their recovery data.
func Attach(cpu *machine.CPU, units []*Unit, cfg Config) *Safeguard {
	sg := &Safeguard{
		cfg:          cfg,
		units:        map[*machine.Image]*Unit{},
		rec:          trace.New(cfg.TraceCap),
		cachedTables: map[*Unit]*rtable.Table{},
		cachedLibs:   map[*Unit]*machine.Program{},
	}
	for _, u := range units {
		sg.units[u.Image] = u
		sg.rec.Add(CounterIdleFootprint, int64(len(u.TableBytes)+len(u.LibBytes)))
	}
	// Surface the effective (default-resolved) escalation budgets into
	// the trace so campaign reports can see what the chain was actually
	// allowed to do.
	if cfg.Policy.Rollback {
		sg.rec.Max(CounterMaxRollbacksBudget, int64(cfg.Policy.maxRollbacks()))
	}
	if cfg.Policy.DomainRewind {
		sg.rec.Max(CounterMaxDomainRewindsBudget, int64(cfg.Policy.maxDomainRewinds()))
	}
	cpu.Handler = sg.handle
	return sg
}

// Trace exposes the safeguard's recorder: one activation span (with
// phase-timing child spans) per handled trap, plus the outcome and
// footprint counters. Campaign and cluster layers merge it into their
// own traces.
func (sg *Safeguard) Trace() *trace.Recorder { return sg.rec }

// noteRecoveryFootprint records the transient decode footprint of one
// repair.
func (sg *Safeguard) noteRecoveryFootprint(table *rtable.Table, lib *machine.Program) {
	n := 0
	if table != nil {
		for _, e := range table.Entries {
			n += 16 + len(e.Symbol) + len(e.Func)
			for _, p := range e.Params {
				n += len(p.Name) + 1
			}
		}
	}
	if lib != nil {
		n += len(lib.Code) * 64 // struct-encoded instructions
		n += len(lib.GlobalInit)
	}
	sg.rec.Max(CounterPeakRecovery, int64(n))
}

// record writes one resolved activation to the trace: the outcome
// counters, an activation span stamped at dyn on the virtual clock, and
// a child span per non-zero phase. Event is only transient scratch
// inside the handler; the trace is the ledger.
func (sg *Safeguard) record(dyn uint64, e Event) {
	sg.rec.Add(CounterActivations, 1)
	switch e.Outcome {
	case Recovered, RecoveredInduction:
		sg.rec.Add(CounterRecovered, 1)
	case RolledBack:
		sg.rec.Add(CounterRolledBack, 1)
	case DomainRewound:
		sg.rec.Add(CounterDomainRewinds, 1)
		sg.rec.Add(DomainRewindCounter(e.Domain), 1)
	default:
		sg.rec.Add(CounterUnrecoverable, 1)
	}
	act := sg.rec.Emit(trace.Span{
		Kind: trace.KindActivation, Parent: trace.NoParent,
		StartDyn: dyn, EndDyn: dyn,
		Wall: e.Total(), PC: uint64(e.PC), Addr: uint64(e.Addr),
		Outcome: string(e.Outcome),
	})
	for _, ph := range [...]struct {
		kind trace.Kind
		d    time.Duration
	}{
		{trace.KindDiagnose, e.Diagnose},
		{trace.KindLoad, e.Load},
		{trace.KindFetch, e.Fetch},
		{trace.KindKernel, e.Kernel},
		{trace.KindPatch, e.Patch},
		{trace.KindDomainRewind, e.DomainRewind},
		{trace.KindRollback, e.Rollback},
	} {
		if ph.d == 0 {
			continue
		}
		sg.rec.Add(PhaseNsCounters[ph.kind], ph.d.Nanoseconds())
		sp := trace.Span{
			Kind: ph.kind, Parent: act,
			StartDyn: dyn, EndDyn: dyn, Wall: ph.d,
		}
		if ph.kind == trace.KindDomainRewind {
			// The phase span names its domain (Val carries the DomainID),
			// so Events can round-trip the attribution.
			sp.Val = int64(e.Domain)
			sp.Outcome = e.Domain.String()
		}
		sg.rec.Emit(sp)
	}
}

// Events reconstructs the activation records from the trace, oldest
// first (the detail behind Stats; truncated to the recorder's span
// capacity when a very long run overflows the ring).
func (sg *Safeguard) Events() []Event {
	var events []Event
	byID := map[int32]int{}
	for _, s := range sg.rec.Spans() {
		switch s.Kind {
		case trace.KindActivation:
			byID[s.ID] = len(events)
			events = append(events, Event{
				PC: machine.Word(s.PC), Addr: machine.Word(s.Addr),
				Outcome: Outcome(s.Outcome),
			})
		case trace.KindDiagnose, trace.KindLoad, trace.KindFetch,
			trace.KindKernel, trace.KindPatch, trace.KindDomainRewind,
			trace.KindRollback:
			i, ok := byID[s.Parent]
			if !ok {
				continue // parent activation dropped from the ring
			}
			ev := &events[i]
			switch s.Kind {
			case trace.KindDiagnose:
				ev.Diagnose += s.Wall
			case trace.KindLoad:
				ev.Load += s.Wall
			case trace.KindFetch:
				ev.Fetch += s.Wall
			case trace.KindKernel:
				ev.Kernel += s.Wall
			case trace.KindPatch:
				ev.Patch += s.Wall
			case trace.KindDomainRewind:
				ev.DomainRewind += s.Wall
				ev.Domain = machine.DomainID(s.Val)
			case trace.KindRollback:
				ev.Rollback += s.Wall
			}
		}
	}
	return events
}

// Stats derives the aggregate view from the trace. The tallies come
// from counters (exact regardless of ring drops); Events carries the
// retained per-activation detail.
func (sg *Safeguard) Stats() Stats {
	return Stats{
		Activations:        int(sg.rec.Counter(CounterActivations)),
		Recovered:          int(sg.rec.Counter(CounterRecovered)),
		Unrecoverable:      int(sg.rec.Counter(CounterUnrecoverable)),
		RolledBack:         int(sg.rec.Counter(CounterRolledBack)),
		DomainRewinds:      int(sg.rec.Counter(CounterDomainRewinds)),
		Storms:             int(sg.rec.Counter(CounterStorms)),
		Events:             sg.Events(),
		IdleFootprintBytes: int(sg.rec.Counter(CounterIdleFootprint)),
		PeakRecoveryBytes:  int(sg.rec.MaxCounter(CounterPeakRecovery)),
	}
}

// handle is the signal handler (paper Algorithm 1, wrapped in the
// escalation chain: kernel recompute → induction repair → heuristic
// bit-bucket → domain rewind → checkpoint rollback → kill).
func (sg *Safeguard) handle(c *machine.CPU, t *machine.Trap) machine.TrapAction {
	ev := Event{PC: t.PC, Addr: t.Addr}
	if t.Sig == machine.SigTRAP {
		// A detection-only defense fired (care_detect). The check can
		// prove corruption but not repair it — no recovery-table entry,
		// no kernel — so skip the patch stages and enter the escalation
		// chain directly at its domain-rewind/rollback stages. Without a
		// wired checkpoint store this is a fail-stop kill.
		sg.rec.Add(CounterDetected, 1)
		ev.Outcome = DefenseDetected
		return sg.escalate(c, t, ev)
	}
	if t.Sig != machine.SigSEGV && !(sg.cfg.HandleBus && t.Sig == machine.SigBUS) {
		ev.Outcome = WrongSignal
		sg.record(c.Dyn, ev)
		return machine.TrapKill
	}

	// Circuit breakers: when the retry budget or the storm detector
	// trips, patching at this PC has stopped making progress — skip the
	// patch stages entirely and escalate to rollback/kill.
	if skip, why := sg.noteTrap(c, t); skip {
		ev.Outcome = why
		return sg.escalate(c, t, ev)
	}

	// Phase 1: diagnose — map the faulting PC to a source key and a
	// recovery-table entry (dladdr + line table + MD5 + table lookup).
	t0 := time.Now()
	unit := sg.units[t.Img]
	var key debuginfo.Key
	var haveKey bool
	if unit != nil && t.Img != nil {
		key, haveKey = t.Img.Prog.Debug.KeyAt(t.Idx)
		if haveKey && key.Line == 0 && key.Col == 0 {
			haveKey = false // frame traffic carries no source key
		}
	}
	if !haveKey {
		ev.Diagnose = time.Since(t0)
		ev.Outcome = NoDebugKey
		return sg.fail(c, t, ev)
	}
	table, err := sg.loadTable(unit)
	if err != nil {
		ev.Diagnose = time.Since(t0)
		ev.Outcome = NoKernel
		return sg.fail(c, t, ev)
	}
	entry, ok := table.LookupSource(key)
	ev.Diagnose = time.Since(t0)
	if !ok {
		ev.Outcome = NoKernel
		return sg.fail(c, t, ev)
	}

	// Phase 2: load the recovery library (dlopen analogue).
	t1 := time.Now()
	lib, err := sg.loadLib(unit)
	ev.Load = time.Since(t1)
	if err != nil {
		ev.Outcome = NoKernel
		return sg.fail(c, t, ev)
	}
	sg.noteRecoveryFootprint(table, lib)

	// Phase 3: fetch kernel arguments from the stalled process using
	// the DW_AT_location-style loclists.
	t2 := time.Now()
	args, argOK := sg.fetchParams(c, t, entry)
	ev.Fetch = time.Since(t2)
	if !argOK {
		ev.Outcome = ParamUnavailable
		return sg.fail(c, t, ev)
	}

	// Phase 4: execute the kernel against live process memory.
	t3 := time.Now()
	addr, kerr := sg.runKernel(c, lib, entry.Symbol, args)
	ev.Kernel = time.Since(t3)
	if kerr != nil {
		ev.Outcome = KernelFault
		return sg.fail(c, t, ev)
	}

	// Phase 5: coverage-scope check + operand patch. If the kernel
	// recomputes the very address that faulted, its inputs were
	// contaminated: repairing would just re-execute the same wild
	// access, so CARE declares the fault unrecoverable instead of
	// risking an SDC.
	t4 := time.Now()
	if addr == t.Addr {
		// The kernel's inputs were contaminated. The Figure-11
		// extension can still reconstruct a corrupted induction
		// variable from an intact sibling.
		if sg.cfg.InductionRecovery {
			if addr2, ok := sg.tryInductionRecovery(c, t, entry, lib, args); ok {
				sg.patch(c, t, addr2)
				ev.Patch = time.Since(t4)
				ev.Outcome = RecoveredInduction
				sg.record(c.Dyn, ev)
				sg.release()
				return machine.TrapResume
			}
		}
		ev.Patch = time.Since(t4)
		ev.Outcome = OutOfScope
		return sg.fail(c, t, ev)
	}
	sg.patch(c, t, addr)
	ev.Patch = time.Since(t4)
	ev.Outcome = Recovered
	sg.record(c.Dyn, ev)
	sg.release()
	return machine.TrapResume
}

// fail continues the chain after an in-place repair stage failed: the
// heuristic bit-bucket stage, then escalation (rollback/kill).
func (sg *Safeguard) fail(c *machine.CPU, t *machine.Trap, ev Event) machine.TrapAction {
	if sg.cfg.Heuristic && t.Instr != nil && t.Instr.Op.IsMemAccess() {
		if sg.heuristicPatch(c, t) {
			ev.Outcome = HeuristicPatched
			sg.record(c.Dyn, ev)
			// Release per-fault state on this resume path too;
			// otherwise the decoded table and recovery library stay
			// resident in non-Eager mode and skew the footprint
			// accounting.
			sg.release()
			return machine.TrapResume
		}
	}
	return sg.escalate(c, t, ev)
}

// loadTable decodes the unit's recovery table. The decode is cached so
// the stages of one activation share it; release drops it again in
// non-Eager mode once the activation resolves.
func (sg *Safeguard) loadTable(u *Unit) (*rtable.Table, error) {
	if tb := sg.cachedTables[u]; tb != nil {
		return tb, nil
	}
	tb, err := rtable.Decode(u.TableBytes)
	if err != nil {
		return nil, err
	}
	sg.cachedTables[u] = tb
	return tb, nil
}

// loadLib decodes the unit's recovery library (cached like loadTable).
func (sg *Safeguard) loadLib(u *Unit) (*machine.Program, error) {
	if p := sg.cachedLibs[u]; p != nil {
		return p, nil
	}
	p, err := machine.DecodeProgram(u.LibBytes)
	if err != nil {
		return nil, err
	}
	sg.cachedLibs[u] = p
	return p, nil
}

// release drops per-fault state in lazy mode (the paper frees the
// library right after each repair to keep the footprint fixed).
func (sg *Safeguard) release() {
	if !sg.cfg.Eager {
		for k := range sg.cachedTables {
			delete(sg.cachedTables, k)
		}
		for k := range sg.cachedLibs {
			delete(sg.cachedLibs, k)
		}
	}
}

// fetchParams retrieves the kernel arguments from the trapped context.
func (sg *Safeguard) fetchParams(c *machine.CPU, t *machine.Trap, e *rtable.Entry) ([]machine.Word, bool) {
	dbg := t.Img.Prog.Debug
	args := make([]machine.Word, 0, len(e.Params))
	for _, p := range e.Params {
		loc, ok := dbg.Lookup(e.Func, p.Name, t.Idx)
		if !ok {
			return nil, false
		}
		switch loc.Kind {
		case debuginfo.LocReg:
			args = append(args, c.R[loc.Reg])
		case debuginfo.LocFReg:
			args = append(args, math.Float64bits(c.F[loc.Reg]))
		case debuginfo.LocFPOff:
			v, f := c.Mem.Read(c.R[machine.FP] + machine.Word(loc.Off))
			if f != nil {
				return nil, false
			}
			args = append(args, v)
		default:
			return nil, false
		}
	}
	return args, true
}

// retSentinel is the fake return address pushed under a kernel call; the
// sub-CPU halts cleanly when control returns to it.
const retSentinel machine.Word = 0x0000_7eee_0000_0000

// runKernel executes a recovery kernel on a scratch CPU sharing the
// process's memory (signal-handler-on-altstack semantics). It returns
// the recomputed effective address.
func (sg *Safeguard) runKernel(c *machine.CPU, lib *machine.Program, symbol string, args []machine.Word) (machine.Word, error) {
	entry, ok := lib.FuncEntry(symbol)
	if !ok {
		return 0, fmt.Errorf("safeguard: kernel symbol %q not found", symbol)
	}
	// Probe the address space instead of trusting a flag: a checkpoint
	// rollback can restore a memory image from either side of the first
	// mapping, so the scratch stack may or may not exist by now.
	scratchBase := machine.ScratchStackTop - machine.ScratchStackSize
	if c.Mem.Find(scratchBase) == nil {
		if _, err := c.Mem.Map(scratchBase, machine.ScratchStackSize, "sigaltstack"); err != nil {
			return 0, err
		}
	}
	libImg, err := machine.Load(c.Mem, lib)
	if err != nil {
		return 0, err
	}
	defer libImg.Unload(c.Mem)

	sub := machine.NewCPU(c.Mem, hostenv.NewEnv())
	// Inherit the interpreter tier so forcing the legacy Step loop
	// (-interp step) covers recovery-kernel execution too; the kernel
	// returns through the StopPC sentinel identically on every tier.
	sub.Tier = c.Tier
	// The kernel may call back into simple application functions, so
	// the whole process image list is visible.
	sub.Images = append(append([]*machine.Image{}, c.Images...), libImg)
	sub.R[machine.SP] = machine.ScratchStackTop
	sub.R[machine.FP] = machine.ScratchStackTop
	for _, a := range args {
		sub.R[machine.SP] -= 8
		if f := c.Mem.Write(sub.R[machine.SP], a); f != nil {
			return 0, f
		}
	}
	sub.R[machine.SP] -= 8
	if f := c.Mem.Write(sub.R[machine.SP], retSentinel); f != nil {
		return 0, f
	}
	sub.PC = entry
	sub.StopPC, sub.StopPCSet = retSentinel, true
	limit := sg.cfg.MaxKernelSteps
	if limit == 0 {
		limit = 1 << 20
	}
	switch sub.Run(limit) {
	case machine.StatusExited:
		return sub.R[machine.R0], nil
	case machine.StatusTrapped:
		return 0, sub.PendingTrap
	default:
		return 0, fmt.Errorf("safeguard: kernel did not finish (%v)", sub.Status)
	}
}

// patch updates the faulting instruction's memory operand so that its
// effective address becomes addr. Following the paper's §3.4 rule, the
// index register is updated by default (it is recomputed more often and
// thus more likely corrupted); the base register is the fallback when
// the delta is not scale-divisible, or the default in PatchBase mode.
func (sg *Safeguard) patch(c *machine.CPU, t *machine.Trap, addr machine.Word) {
	mo, ok := machine.DecodeMemOperand(t.Instr)
	if !ok {
		return
	}
	if mo.Index != machine.NoReg && !sg.cfg.PatchBase {
		delta := int64(addr - c.R[mo.Base] - machine.Word(mo.Disp))
		if mo.Scale != 0 && delta%int64(mo.Scale) == 0 {
			c.R[mo.Index] = machine.Word(delta / int64(mo.Scale))
			return
		}
	}
	if mo.Index != machine.NoReg {
		c.R[mo.Base] = addr - c.R[mo.Index]*machine.Word(mo.Scale) - machine.Word(mo.Disp)
		return
	}
	c.R[mo.Base] = addr - machine.Word(mo.Disp)
}

// heuristicPatch redirects an unrecoverable access to a zero-filled
// bit-bucket page and resumes — the LetGo-style strategy the paper
// compares against, which trades crashes for potential SDCs.
func (sg *Safeguard) heuristicPatch(c *machine.CPU, t *machine.Trap) bool {
	if sg.bitBucket == 0 {
		b, err := c.Mem.Alloc(4096)
		if err != nil {
			return false
		}
		sg.bitBucket = b
	}
	mo, ok := machine.DecodeMemOperand(t.Instr)
	if !ok {
		return false
	}
	if mo.Index != machine.NoReg {
		c.R[mo.Index] = 0
	}
	c.R[mo.Base] = sg.bitBucket - machine.Word(mo.Disp)
	return true
}

// CoverageRate returns the fraction of SIGSEGV activations recovered.
func (s Stats) CoverageRate() float64 {
	if s.Activations == 0 {
		return 0
	}
	return float64(s.Recovered) / float64(s.Activations)
}
