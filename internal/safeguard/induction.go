package safeguard

import (
	"math"

	"care/internal/debuginfo"
	"care/internal/machine"
	"care/internal/rtable"
)

// tryInductionRecovery implements the paper's Figure-11 future-work
// extension. It runs when the coverage-scope check has proven that some
// kernel input is contaminated (the kernel reproduced the faulting
// address). For each parameter carrying affine equivalences
//
//	p = pInit + (q - qInit) * pStep / qStep
//
// it reconstructs p from its sibling induction variable q. Under the
// single-fault model the reconstruction is sound: if the relation is
// intact (reconstructed == fetched) this parameter was not the corrupted
// one; if it differs, q and the auxiliaries are uncorrupted (a fault in
// q could not have produced this kernel's faulting address) and the
// reconstructed value is the true p. Re-running the kernel with the
// repaired parameter then yields the correct address; Safeguard patches
// the operand AND writes the repaired value back to the variable's home
// so the loop continues with consistent state.
func (sg *Safeguard) tryInductionRecovery(c *machine.CPU, t *machine.Trap,
	entry *rtable.Entry, lib *machine.Program, args []machine.Word) (machine.Word, bool) {
	for pi, p := range entry.Params {
		if p.IsFloat || len(p.Equivs) == 0 {
			continue
		}
		for _, eq := range p.Equivs {
			q, ok := sg.fetchRef(c, t, entry.Func, rtable.NameRef(eq.Other))
			if !ok {
				continue
			}
			pInit, ok := sg.fetchRef(c, t, entry.Func, eq.PInit)
			if !ok {
				continue
			}
			qInit, ok := sg.fetchRef(c, t, entry.Func, eq.QInit)
			if !ok {
				continue
			}
			pStep, ok := sg.fetchRef(c, t, entry.Func, eq.PStep)
			if !ok {
				continue
			}
			qStep, ok := sg.fetchRef(c, t, entry.Func, eq.QStep)
			if !ok || qStep == 0 {
				continue
			}
			num := (int64(q) - int64(qInit)) * int64(pStep)
			if num%int64(qStep) != 0 {
				continue // relation cannot hold exactly; bad candidate
			}
			rec := machine.Word(pInit + machine.Word(num/int64(qStep)))
			if rec == args[pi] {
				continue // relation intact: this parameter is clean
			}
			// Hypothesis: parameter pi was the corrupted value. Re-run
			// the kernel with the reconstruction.
			retry := append([]machine.Word(nil), args...)
			retry[pi] = rec
			addr, err := sg.runKernel(c, lib, entry.Symbol, retry)
			if err != nil || addr == t.Addr {
				continue
			}
			// Repair the variable's home so the loop itself continues
			// with the correct induction state, not just this access.
			sg.repairVar(c, t, entry.Func, p.Name, rec)
			return addr, true
		}
	}
	return 0, false
}

// fetchRef resolves a ValRef against the stalled process.
func (sg *Safeguard) fetchRef(c *machine.CPU, t *machine.Trap, fn string, r rtable.ValRef) (machine.Word, bool) {
	if r.IsConst {
		return machine.Word(r.Const), true
	}
	loc, ok := t.Img.Prog.Debug.Lookup(fn, r.Name, t.Idx)
	if !ok {
		return 0, false
	}
	switch loc.Kind {
	case debuginfo.LocReg:
		return c.R[loc.Reg], true
	case debuginfo.LocFReg:
		return math.Float64bits(c.F[loc.Reg]), true
	case debuginfo.LocFPOff:
		v, f := c.Mem.Read(c.R[machine.FP] + machine.Word(loc.Off))
		if f != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// repairVar writes a reconstructed value back to a variable's home.
func (sg *Safeguard) repairVar(c *machine.CPU, t *machine.Trap, fn, name string, v machine.Word) {
	loc, ok := t.Img.Prog.Debug.Lookup(fn, name, t.Idx)
	if !ok {
		return
	}
	switch loc.Kind {
	case debuginfo.LocReg:
		c.R[loc.Reg] = v
	case debuginfo.LocFReg:
		c.F[loc.Reg] = math.Float64frombits(v)
	case debuginfo.LocFPOff:
		_ = c.Mem.Write(c.R[machine.FP]+machine.Word(loc.Off), v)
	}
}
