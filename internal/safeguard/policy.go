package safeguard

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"care/internal/checkpoint"
	"care/internal/machine"
)

// Policy configures the escalating recovery chain. The zero value is
// the paper's one-shot Safeguard: any activation that cannot patch the
// operand kills the process. Enabling stages layers recoveries instead:
//
//	kernel recompute → induction repair → heuristic bit-bucket →
//	domain rewind → checkpoint rollback → kill
//
// (induction and heuristic stages are enabled by the existing
// Config.InductionRecovery and Config.Heuristic flags; Policy adds the
// rollback stage and the circuit breakers that decide when to stop
// patching and escalate.)
type Policy struct {
	// Rollback enables the checkpoint-rollback stage: when no patch
	// stage applies, restore the latest snapshot of the store wired via
	// Safeguard.UseCheckpoints and resume from the snapshot step. The
	// modelled snapshot-read and requeue costs of the store's CostModel
	// are charged into the activation's Event.Rollback phase.
	Rollback bool
	// MaxRollbacks bounds snapshot restores per process, so a
	// deterministically recurring trap (a genuine program bug) cannot
	// rollback-loop forever. 0 means 2.
	MaxRollbacks int
	// DomainRewind enables the domain-rewind stage, tried before
	// whole-process rollback: attribute the faulting access to a memory
	// domain, rewind just that domain to its latest consistent snapshot
	// generation, and resume in place — registers, PC, and every other
	// domain keep their progress. A rewind the consistency proofs refuse
	// (machine.ErrDomainInconsistent) falls through to rollback/kill.
	DomainRewind bool
	// MaxDomainRewinds bounds rewinds *per domain*; past the budget the
	// chain escalates to whole-process rollback. The tallies are
	// cumulative for the process lifetime (a full rollback does not
	// reset them), so a recurrently faulting domain cannot ping-pong the
	// chain forever. 0 means 2.
	MaxDomainRewinds int
	// MaxTrapsPerPC is the per-PC retry budget: once more than this
	// many traps have been handled at one PC, patch stages are skipped
	// and the chain escalates straight to rollback/kill. 0 disables the
	// budget (the paper's runtime has none).
	MaxTrapsPerPC int
	// StormTraps and StormWindow form the recovery-storm detector:
	// StormTraps traps at the same PC within StormWindow dynamic
	// instructions mean patching is not making progress (each repair
	// immediately re-faults), so the chain stops patching and
	// escalates. StormTraps 0 disables the detector; StormWindow 0
	// defaults to 4096 instructions.
	StormTraps  int
	StormWindow uint64
}

func (p Policy) maxRollbacks() int {
	if p.MaxRollbacks == 0 {
		return 2
	}
	return p.MaxRollbacks
}

func (p Policy) maxDomainRewinds() int {
	if p.MaxDomainRewinds == 0 {
		return 2
	}
	return p.MaxDomainRewinds
}

// NeedsStore reports whether the policy has a stage that consumes a
// checkpoint store. Campaign and cluster layers use it to decide when
// to wire one (and when warm-start snapshot reuse is unsafe).
func (p Policy) NeedsStore() bool { return p.Rollback || p.DomainRewind }

// Validate rejects unusable budget values. It is the single validation
// point shared by the care-inject and care-cluster flag parsers;
// negative budgets would silently read as "unlimited" in the
// escalation chain's comparisons.
func (p Policy) Validate() error {
	switch {
	case p.MaxRollbacks < 0:
		return fmt.Errorf("safeguard: MaxRollbacks %d is negative (0 means the default of %d)", p.MaxRollbacks, Policy{}.maxRollbacks())
	case p.MaxDomainRewinds < 0:
		return fmt.Errorf("safeguard: MaxDomainRewinds %d is negative (0 means the default of %d)", p.MaxDomainRewinds, Policy{}.maxDomainRewinds())
	case p.MaxTrapsPerPC < 0:
		return fmt.Errorf("safeguard: MaxTrapsPerPC %d is negative (0 disables the budget)", p.MaxTrapsPerPC)
	case p.StormTraps < 0:
		return fmt.Errorf("safeguard: StormTraps %d is negative (0 disables the detector)", p.StormTraps)
	}
	return nil
}

func (p Policy) stormWindow() uint64 {
	if p.StormWindow == 0 {
		return 4096
	}
	return p.StormWindow
}

// pcState tracks trap pressure at one PC for the retry budget and the
// storm detector.
type pcState struct {
	traps  int      // total traps handled at this PC (monotonic)
	recent []uint64 // Dyn at the most recent traps (ring of StormTraps)
}

// UseCheckpoints wires a checkpoint store into the rollback stage.
// Callers save an initial snapshot (and typically install a
// checkpoint.AutoSave cadence) so Latest() is never empty when a fault
// arrives.
func (sg *Safeguard) UseCheckpoints(st *checkpoint.Store) { sg.store = st }

// noteTrap records a handled trap at t.PC and reports whether the
// policy's circuit breakers demand skipping the patch stages, along
// with the outcome that classifies the escalation.
func (sg *Safeguard) noteTrap(c *machine.CPU, t *machine.Trap) (skip bool, why Outcome) {
	pol := sg.cfg.Policy
	if pol.MaxTrapsPerPC == 0 && pol.StormTraps == 0 {
		return false, ""
	}
	if sg.pcTraps == nil {
		sg.pcTraps = map[machine.Word]*pcState{}
	}
	st := sg.pcTraps[t.PC]
	if st == nil {
		st = &pcState{}
		sg.pcTraps[t.PC] = st
	}
	st.traps++
	if pol.StormTraps > 0 {
		st.recent = append(st.recent, c.Dyn)
		if len(st.recent) > pol.StormTraps {
			st.recent = st.recent[1:]
		}
		if len(st.recent) == pol.StormTraps &&
			st.recent[len(st.recent)-1]-st.recent[0] <= pol.stormWindow() {
			sg.rec.Add(CounterStorms, 1)
			return true, RecoveryStorm
		}
	}
	if pol.MaxTrapsPerPC > 0 && st.traps > pol.MaxTrapsPerPC {
		return true, RetryBudgetExhausted
	}
	return false, ""
}

// escalate is the tail of the chain: the domain-rewind stage, then the
// checkpoint-rollback stage, then kill. ev.Outcome carries the failure
// (or circuit-breaker verdict) that brought the chain here; a
// successful rewind or rollback overwrites it.
func (sg *Safeguard) escalate(c *machine.CPU, t *machine.Trap, ev Event) machine.TrapAction {
	pol := sg.cfg.Policy
	if pol.NeedsStore() && sg.store == nil {
		sg.noteUnwiredStore()
	}
	if pol.DomainRewind && sg.store != nil {
		if act, ok := sg.tryDomainRewind(c, t, ev); ok {
			return act
		}
	}
	if pol.Rollback && sg.store != nil && sg.Rollbacks() < pol.maxRollbacks() {
		if snap := sg.store.Latest(); snap != nil {
			t0 := time.Now()
			rd, err := sg.store.Restore(c, snap)
			if err == nil {
				// The restored memory predates this handler's transient
				// mappings; re-probe the scratch stack and re-allocate
				// the bit bucket on next use.
				sg.bitBucket = 0
				// A rollback resets the storm windows: execution resumes
				// from a known-good state, so earlier trap bursts no
				// longer describe the current trajectory. Total per-PC
				// counts stay (the retry budget is cumulative).
				for _, st := range sg.pcTraps {
					st.recent = st.recent[:0]
				}
				// Charge the modelled snapshot read plus the requeue
				// delay of the store's cost model on top of the live
				// restore time, so policy comparisons see the I/O a real
				// rollback would pay.
				ev.Rollback = time.Since(t0) + rd + sg.store.Model.RequeueDelay
				ev.Outcome = RolledBack
				sg.record(c.Dyn, ev)
				sg.release()
				return machine.TrapResume
			}
		}
	}
	sg.record(c.Dyn, ev)
	sg.release()
	return machine.TrapKill
}

// rewindableDomain reports whether a domain is a legal rewind target.
// Code is read-only (never snapshotted); the scratch stack is transient
// recovery-runtime state that no checkpoint governs.
func rewindableDomain(d machine.DomainID) bool {
	return d != machine.DomainCode && d != machine.DomainScratch
}

// tryDomainRewind is the domain-rewind escalation stage: attribute the
// faulting access to a domain, rewind that domain to its latest
// consistent generation, and resume at the faulting instruction with
// registers and every other domain untouched. Nothing is replayed — the
// access re-executes and recovery relies on the rewound memory no
// longer steering it wild. Returns ok=false (stage skipped, chain
// continues to rollback/kill) when the domain has no snapshot, its
// per-domain budget is spent, or the consistency proofs refuse the
// rewind. Storm windows are deliberately NOT reset: a rewind that fails
// to stop the trap burst must still trip the detector.
func (sg *Safeguard) tryDomainRewind(c *machine.CPU, t *machine.Trap, ev Event) (machine.TrapAction, bool) {
	pol := sg.cfg.Policy
	d := c.Mem.FaultDomain(t.Addr)
	if !rewindableDomain(d) || sg.domainRewinds[d] >= pol.maxDomainRewinds() {
		return 0, false
	}
	if sg.store.LatestDomain(d) == nil {
		return 0, false
	}
	t0 := time.Now()
	rd, err := sg.store.RestoreDomain(c, d)
	if err != nil {
		if errors.Is(err, machine.ErrDomainInconsistent) {
			sg.rec.Add(CounterDomainRewindInconsistent, 1)
		}
		return 0, false
	}
	sg.domainRewinds[d]++
	// The rewound image predates the bit bucket only if the bucket lives
	// in the rewound domain (it is heap-allocated); drop the cached
	// address so the heuristic stage re-allocates instead of writing
	// into a stale epoch.
	if d == machine.DomainHeap {
		sg.bitBucket = 0
	}
	ev.DomainRewind = time.Since(t0) + rd
	ev.Domain = d
	ev.Outcome = DomainRewound
	sg.record(c.Dyn, ev)
	sg.release()
	return machine.TrapResume, true
}

// unwiredWarnOnce keeps the stderr diagnostic to one line per process
// even when many safeguards are misconfigured the same way (campaign
// trials construct one per attempt).
var unwiredWarnOnce sync.Once

// noteUnwiredStore records the rollback-enabled-but-no-store
// misconfiguration: once per safeguard on the trace, once per process
// on stderr.
func (sg *Safeguard) noteUnwiredStore() {
	if sg.unwiredWarned {
		return
	}
	sg.unwiredWarned = true
	sg.rec.Add(CounterRollbackUnwired, 1)
	unwiredWarnOnce.Do(func() {
		fmt.Fprintln(os.Stderr, "safeguard: rollback/domain-rewind stage enabled but no checkpoint store wired (UseCheckpoints not called); escalation will fall through to kill")
	})
}

// Rollbacks reports how many checkpoint rollbacks this process has
// performed (counter-backed, so it is exact past the span ring).
func (sg *Safeguard) Rollbacks() int { return int(sg.rec.Counter(CounterRolledBack)) }

// DomainRewinds reports how many domain rewinds this process has
// performed across all domains.
func (sg *Safeguard) DomainRewinds() int { return int(sg.rec.Counter(CounterDomainRewinds)) }
