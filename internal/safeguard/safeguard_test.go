package safeguard_test

import (
	"time"

	"testing"

	"care/internal/core"
	"care/internal/machine"
	"care/internal/safeguard"
	"care/internal/workloads"
)

// TestKernelsRecomputeTrueAddresses is CARE's central invariant,
// verified exhaustively on an uncorrupted run: at every dynamic
// execution of a protected memory access (sampled per static site), the
// recovery kernel — fed only by the values Safeguard would fetch via
// debug info — must recompute exactly the effective address the
// instruction is about to dereference. This is what makes the §3.4
// scope check ("kernel address == faulting address ⇒ inputs were
// contaminated") sound, and what guarantees a successful patch restores
// the semantically correct address.
func TestKernelsRecomputeTrueAddresses(t *testing.T) {
	for _, wname := range []string{"HPCCG", "GTC-P"} {
		for _, opt := range []int{0, 1} {
			w, err := workloads.Get(wname)
			if err != nil {
				t.Fatal(err)
			}
			bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: opt, Defenses: []string{"care"}})
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.NewProcess(core.ProcessConfig{App: bin})
			if err != nil {
				t.Fatal(err)
			}
			unit := &safeguard.Unit{Image: p.App, TableBytes: bin.RecoveryTable, LibBytes: bin.RecoveryLib}
			sg := safeguard.NewForVerification([]*safeguard.Unit{unit}, safeguard.Config{Eager: true})

			checked := map[int]int{}
			checks, mismatches := 0, 0
			const perSite = 2
			p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
				// The next instruction is about to execute; if it is a
				// protected access its address registers are final.
				ni := img.Prog.IndexOf(c.PC)
				if ni < 0 {
					return
				}
				next := &img.Prog.Code[ni]
				if !next.Op.IsMemAccess() || next.Line == 0 || checked[ni] >= perSite {
					return
				}
				actual := next.EffectiveAddr(&c.R)
				computed, ok, err := sg.ComputeAddress(c, unit, ni)
				if err != nil {
					t.Errorf("%s O%d idx %d (%s): %v", wname, opt, ni, machine.Disassemble(next), err)
					checked[ni] = perSite
					return
				}
				if !ok {
					return // no kernel for this access (direct/skipped)
				}
				checked[ni]++
				checks++
				if computed != actual {
					mismatches++
					t.Errorf("%s O%d idx %d (%s): kernel computed 0x%x, instruction accesses 0x%x",
						wname, opt, ni, machine.Disassemble(next), computed, actual)
				}
			}
			if st := p.Run(0); st != machine.StatusExited {
				t.Fatalf("%s O%d: %v (%v)", wname, opt, st, p.CPU.PendingTrap)
			}
			if checks < 5 {
				t.Fatalf("%s O%d: only %d kernel checks performed", wname, opt, checks)
			}
			t.Logf("%s O%d: %d kernel dry-runs across %d sites, %d mismatches",
				wname, opt, checks, len(checked), mismatches)
		}
	}
}

// TestIdleSafeguardIsInvisible verifies the §5.2 claim mechanically: a
// protected fault-free run never activates Safeguard and produces
// identical output and instruction counts.
func TestIdleSafeguardIsInvisible(t *testing.T) {
	w, err := workloads.Get("miniMD")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 0, Defenses: []string{"care"}})
	if err != nil {
		t.Fatal(err)
	}
	run := func(protected bool) (*core.Process, uint64) {
		p, err := core.NewProcess(core.ProcessConfig{App: bin, Protected: protected})
		if err != nil {
			t.Fatal(err)
		}
		if st := p.Run(0); st != machine.StatusExited {
			t.Fatal(st)
		}
		return p, p.CPU.Dyn
	}
	pu, du := run(false)
	pp, dp := run(true)
	if du != dp {
		t.Fatalf("instruction counts differ: %d vs %d", du, dp)
	}
	if pp.SG.Stats().Activations != 0 {
		t.Fatalf("safeguard activated %d times on a fault-free run", pp.SG.Stats().Activations)
	}
	ru, rp := pu.Results(), pp.Results()
	for i := range ru {
		if ru[i] != rp[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

// TestRecoveryIsIdempotentAcrossRepeatedFaults: a fault whose value
// feeds several memory accesses triggers several recoveries (§5.3); the
// handler must survive repeated activation in one run.
func TestRecoveryStatsAccumulate(t *testing.T) {
	w, err := workloads.Get("HPCCG")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 0, Defenses: []string{"care"}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProcess(core.ProcessConfig{App: bin, Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the same index register at two different protected loads.
	var targets []machine.Word
	for i := range bin.Prog.Code {
		in := &bin.Prog.Code[i]
		if in.Op == machine.MFLoad && in.Index != machine.NoReg && in.Line != 0 {
			targets = append(targets, bin.Prog.AddrOf(i))
			if len(targets) == 2 {
				break
			}
		}
	}
	if len(targets) < 2 {
		t.Skip("not enough protected float loads")
	}
	injected := map[machine.Word]bool{}
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		for _, tgt := range targets {
			if c.PC == tgt && !injected[tgt] && c.Dyn > 1000 {
				injected[tgt] = true
				mi := img.Prog.Code[(tgt-img.Base())/8]
				c.R[mi.Index] ^= 1 << 42
			}
		}
	}
	st := p.Run(0)
	if st != machine.StatusExited {
		t.Fatalf("%v (%v)", st, p.CPU.PendingTrap)
	}
	if p.SG.Stats().Recovered != 2 {
		t.Fatalf("recovered %d faults, want 2 (events %+v)", p.SG.Stats().Recovered, p.SG.Stats().Events)
	}
	for _, ev := range p.SG.Stats().Events {
		if ev.Total() <= 0 || ev.Prep() <= 0 {
			t.Errorf("degenerate event timing: %+v", ev)
		}
	}
}

// TestEventPrepExcludesKernelAndRollback is the regression test for the
// Figure 9 preparation ratio: Prep() must exclude both the kernel
// execution time and the checkpoint-rollback time. (An earlier version
// computed Total()-Kernel, silently counting the rollback restore as
// "preparation" and skewing the ratio for escalation-chain policies.)
func TestEventPrepExcludesKernelAndRollback(t *testing.T) {
	ev := safeguard.Event{
		Diagnose: 10, Load: 20, Fetch: 30, Patch: 40,
		Kernel:   500,
		Rollback: 7000,
	}
	if got, want := ev.Total(), time.Duration(7600); got != want {
		t.Fatalf("Total() = %v, want %v", got, want)
	}
	if got, want := ev.Prep(), time.Duration(100); got != want {
		t.Fatalf("Prep() = %v, want %v (must exclude Kernel and Rollback)", got, want)
	}
}
