package safeguard_test

import (
	"testing"

	"care/internal/core"
	"care/internal/ir"
	"care/internal/irbuild"
	"care/internal/machine"
	"care/internal/rtable"
	"care/internal/safeguard"
)

// buildTwoInductionLoop constructs the Figure-11 situation: a loop with
// two lockstep induction variables,
//
//	i  = 0, 1, 2, ...        (counter)
//	ix = 5, 8, 11, ...       (strided index: ix = 5 + 3*i)
//
// where the protected access data[ix] depends only on ix. When ix is
// corrupted, the plain CARE kernel recomputes the same wild address
// (out of scope); the extension reconstructs ix from i.
func buildTwoInductionLoop() *ir.Module {
	m := ir.NewModule("figure11")
	data := m.AddGlobal(&ir.Global{Name: "data", Size: 64 * 8})
	b := ir.NewBuilder(m)
	fb := irbuild.New(b)
	fb.NewFunc("main", ir.I64)
	entry := m.Func("main").Entry()

	fb.ForN(irbuild.I(0), irbuild.I(64), 1, func(j ir.Value) {
		fb.NewLine()
		fb.StoreAt(fb.IToF(j), data, j)
	})
	pre := fb.Blk

	header := fb.NewBlock("loop")
	body := fb.NewBlock("body")
	done := fb.NewBlock("done")
	fb.Br(header)
	_ = entry

	fb.SetBlock(header)
	i := fb.Phi(ir.I64)
	ix := fb.Phi(ir.I64)
	sum := fb.Phi(ir.F64)
	c := fb.ICmp(ir.OpICmpSLT, i, irbuild.I(12))
	fb.CondBr(c, body, done)

	fb.SetBlock(body)
	fb.NewLine()
	v := fb.LoadAt(ir.F64, data, ix) // protected access on ix
	ns := fb.FAdd(sum, v)
	in := fb.Add(i, irbuild.I(1))
	ixn := fb.Add(ix, irbuild.I(3))
	fb.Br(header)

	ir.AddIncoming(i, irbuild.I(0), pre)
	ir.AddIncoming(i, in, body)
	ir.AddIncoming(ix, irbuild.I(5), pre)
	ir.AddIncoming(ix, ixn, body)
	ir.AddIncoming(sum, irbuild.F(0), pre)
	ir.AddIncoming(sum, ns, body)

	fb.SetBlock(done)
	fb.Result(sum)
	fb.Ret(irbuild.I(0))
	if err := ir.VerifyModule(m); err != nil {
		panic(err)
	}
	return m
}

// corruptIxParam finds the protected load, reads its kernel's first
// integer parameter location (the ix phi), and installs a hook that
// flips its sign bit in its frame slot mid-run.
func armIxCorruption(t *testing.T, bin *core.Binary, p *core.Process) *bool {
	t.Helper()
	li := -1
	for i := range bin.Prog.Code {
		in := &bin.Prog.Code[i]
		if in.Op == machine.MFLoad && in.Index != machine.NoReg && in.Line != 0 {
			li = i
		}
	}
	if li < 0 {
		t.Fatal("no protected load")
	}
	key, _ := bin.Prog.Debug.KeyAt(li)
	tab, err := rtable.Decode(bin.RecoveryTable)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := tab.LookupSource(key)
	if !ok {
		t.Fatal("no table entry for protected load")
	}
	var ixName string
	for _, prm := range entry.Params {
		if !prm.IsFloat && len(prm.Equivs) > 0 {
			ixName = prm.Name
		}
	}
	if ixName == "" {
		t.Fatalf("no parameter with equivalences in %+v", entry.Params)
	}
	target := bin.Prog.AddrOf(li)
	corrupted := new(bool)
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if *corrupted || c.PC != target || c.Dyn < 400 {
			return
		}
		loc, ok := bin.Prog.Debug.Lookup(entry.Func, ixName, li)
		if !ok {
			t.Errorf("no location for %s", ixName)
			*corrupted = true
			return
		}
		switch loc.Kind {
		case 3: // LocFPOff
			a := c.R[machine.FP] + machine.Word(loc.Off)
			v, f := c.Mem.Read(a)
			if f != nil {
				return
			}
			_ = c.Mem.Write(a, v^(1<<33))
		case 1: // LocReg
			c.R[loc.Reg] ^= 1 << 33
		}
		*corrupted = true
	}
	return corrupted
}

func TestInductionRecoveryExtension(t *testing.T) {
	// Golden.
	gbin, err := core.Build(buildTwoInductionLoop(), core.BuildOptions{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := core.NewProcess(core.ProcessConfig{App: gbin})
	if err != nil {
		t.Fatal(err)
	}
	if st := gp.Run(0); st != machine.StatusExited {
		t.Fatal(st)
	}
	golden := append([]float64(nil), gp.Results()...)

	bin, err := core.Build(buildTwoInductionLoop(), core.BuildOptions{OptLevel: 0, Defenses: []string{"care"}})
	if err != nil {
		t.Fatal(err)
	}
	if bin.DefenseStats["care"].NumEquivalences == 0 {
		t.Fatal("Armor found no induction equivalences")
	}

	// Without the extension: the corrupted induction variable is out of
	// scope and the process dies.
	p1, err := core.NewProcess(core.ProcessConfig{App: bin, Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	c1 := armIxCorruption(t, bin, p1)
	st1 := p1.Run(0)
	if !*c1 {
		t.Fatal("corruption never fired (baseline)")
	}
	if st1 != machine.StatusTrapped {
		t.Fatalf("baseline: expected death, got %v (events %+v)", st1, p1.SG.Stats().Events)
	}
	sawScope := false
	for _, ev := range p1.SG.Stats().Events {
		if ev.Outcome == safeguard.OutOfScope {
			sawScope = true
		}
	}
	if !sawScope {
		t.Fatalf("baseline died for the wrong reason: %+v", p1.SG.Stats().Events)
	}

	// With the extension: ix is reconstructed from i, the access is
	// repaired, ix's home is fixed, and the run finishes with golden
	// output.
	p2, err := core.NewProcess(core.ProcessConfig{
		App: bin, Protected: true,
		Safeguard: safeguard.Config{InductionRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	c2 := armIxCorruption(t, bin, p2)
	st2 := p2.Run(0)
	if !*c2 {
		t.Fatal("corruption never fired (extension)")
	}
	if st2 != machine.StatusExited {
		t.Fatalf("extension: %v (events %+v)", st2, p2.SG.Stats().Events)
	}
	sawInduction := false
	for _, ev := range p2.SG.Stats().Events {
		if ev.Outcome == safeguard.RecoveredInduction {
			sawInduction = true
		}
	}
	if !sawInduction {
		t.Fatalf("no induction recovery recorded: %+v", p2.SG.Stats().Events)
	}
	got := p2.Results()
	if len(got) != len(golden) || got[0] != golden[0] {
		t.Fatalf("results %v != golden %v", got, golden)
	}
}
