package safeguard_test

import (
	"testing"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/defense"
	"care/internal/machine"
	"care/internal/safeguard"
	"care/internal/workloads"
)

// buildHPCCG compiles the HPCCG workload once per call (O0, optionally
// without CARE artifacts).
func buildHPCCG(t *testing.T, noArmor bool) *core.Binary {
	t.Helper()
	w, err := workloads.Get("HPCCG")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 0, Defenses: defense.If(!noArmor, "care")})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// protectedFloatLoad finds a protected indexed float load to corrupt.
func protectedFloatLoad(t *testing.T, bin *core.Binary) (machine.Word, machine.MInstr) {
	t.Helper()
	for i := range bin.Prog.Code {
		in := &bin.Prog.Code[i]
		if in.Op == machine.MFLoad && in.Index != machine.NoReg && in.Line != 0 {
			return bin.Prog.AddrOf(i), *in
		}
	}
	t.Skip("no protected indexed float load")
	return 0, machine.MInstr{}
}

// goldenRun executes an unprotected process to completion.
func goldenRun(t *testing.T, bin *core.Binary) ([]float64, uint64) {
	t.Helper()
	p, err := core.NewProcess(core.ProcessConfig{App: bin})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Run(0); st != machine.StatusExited {
		t.Fatalf("golden run: %v", st)
	}
	return p.Results(), p.CPU.Dyn
}

// TestHandleBusClassification covers the Config.HandleBus switch: a
// misaligned access (SIGBUS) is classified WrongSignal and kills the
// process by default; with HandleBus the same fault goes through the
// full recovery pipeline, the operand patch restores the true address,
// and the run completes with golden output.
func TestHandleBusClassification(t *testing.T) {
	bin := buildHPCCG(t, false)
	golden, _ := goldenRun(t, bin)
	target, _ := protectedFloatLoad(t, bin)

	run := func(handleBus bool) (*core.Process, machine.RunStatus) {
		p, err := core.NewProcess(core.ProcessConfig{
			App: bin, Protected: true,
			Safeguard: safeguard.Config{HandleBus: handleBus},
		})
		if err != nil {
			t.Fatal(err)
		}
		injected := false
		p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
			if c.PC == target && !injected && c.Dyn > 1000 {
				injected = true
				// Bit 0 of the base register: the access stays inside
				// the mapped segment but loses its 8-byte alignment.
				mi := img.Prog.Code[(target-img.Base())/8]
				c.R[mi.Base] ^= 1
			}
		}
		st := p.Run(0)
		if !injected {
			t.Fatal("injection site never reached")
		}
		return p, st
	}

	// Default configuration: SIGBUS is not CARE's signal.
	p, st := run(false)
	if st == machine.StatusExited {
		t.Fatal("unhandled SIGBUS still exited cleanly")
	}
	if n := len(p.SG.Stats().Events); n != 1 {
		t.Fatalf("%d events for one SIGBUS, want 1", n)
	}
	if got := p.SG.Stats().Events[0].Outcome; got != safeguard.WrongSignal {
		t.Fatalf("outcome %s, want %s", got, safeguard.WrongSignal)
	}
	if p.SG.Stats().Recovered != 0 || p.SG.Stats().Unrecoverable != 1 {
		t.Fatalf("stats %+v, want 0 recovered / 1 unrecoverable", p.SG.Stats())
	}

	// HandleBus: same fault, full recovery.
	p, st = run(true)
	if st != machine.StatusExited {
		t.Fatalf("HandleBus run ended %v (%v)", st, p.CPU.PendingTrap)
	}
	if p.SG.Stats().Recovered != 1 {
		t.Fatalf("stats %+v, want 1 recovered", p.SG.Stats())
	}
	if got := p.SG.Stats().Events[0].Outcome; got != safeguard.Recovered {
		t.Fatalf("outcome %s, want %s", got, safeguard.Recovered)
	}
	res := p.Results()
	if len(res) != len(golden) {
		t.Fatalf("%d results, want %d", len(res), len(golden))
	}
	for i := range golden {
		if res[i] != golden[i] {
			t.Fatalf("result %d = %v, want %v (patch restored the wrong address)", i, res[i], golden[i])
		}
	}
}

// TestHeuristicBitBucket covers the Config.Heuristic fallback on a
// binary with no recovery artifacts: proper recovery is impossible
// (NoDebugKey), so the bit-bucket patch keeps the process alive at the
// price of a potential SDC, and the accounting books it as patched but
// not properly recovered.
func TestHeuristicBitBucket(t *testing.T) {
	bin := buildHPCCG(t, true)
	golden, dyn := goldenRun(t, bin)
	target, _ := protectedFloatLoad(t, bin)

	p, err := core.NewProcess(core.ProcessConfig{
		App: bin, Protected: true,
		Safeguard: safeguard.Config{Heuristic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if c.PC == target && !injected && c.Dyn > 1000 {
			injected = true
			mi := img.Prog.Code[(target-img.Base())/8]
			c.R[mi.Index] ^= 1 << 42
		}
	}
	st := p.Run(8 * dyn)
	if !injected {
		t.Fatal("injection site never reached")
	}
	if st != machine.StatusExited {
		t.Fatalf("heuristic run ended %v (%v)", st, p.CPU.PendingTrap)
	}
	if p.SG.Stats().Activations == 0 {
		t.Fatal("fault never trapped")
	}
	patched := 0
	for _, ev := range p.SG.Stats().Events {
		if ev.Outcome != safeguard.HeuristicPatched {
			t.Fatalf("outcome %s, want %s (events %+v)", ev.Outcome, safeguard.HeuristicPatched, p.SG.Stats().Events)
		}
		patched++
	}
	// Heuristic patches keep the process alive but are not proper
	// recoveries: they land in the Unrecoverable counter.
	if p.SG.Stats().Recovered != 0 || p.SG.Stats().Unrecoverable != patched {
		t.Fatalf("stats %+v, want 0 recovered / %d unrecoverable", p.SG.Stats(), patched)
	}
	if len(p.Results()) != len(golden) {
		t.Fatalf("%d results, want %d (bit bucket did not keep the run alive)", len(p.Results()), len(golden))
	}
}

// TestRollbackStageRestoresGolden covers the chain's rollback stage: on
// a binary without recovery artifacts every patch stage fails, so the
// policy restores the initial snapshot; the transient fault does not
// recur, and the run completes with golden output.
func TestRollbackStageRestoresGolden(t *testing.T) {
	bin := buildHPCCG(t, true)
	golden, _ := goldenRun(t, bin)
	target, _ := protectedFloatLoad(t, bin)

	p, err := core.NewProcess(core.ProcessConfig{
		App: bin, Protected: true,
		Safeguard: safeguard.Config{
			Policy: safeguard.Policy{Rollback: true},
		},
		Checkpoint:             checkpoint.NewStore(checkpoint.DefaultCostModel()),
		CheckpointEveryResults: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if c.PC == target && !injected && c.Dyn > 1000 {
			injected = true
			mi := img.Prog.Code[(target-img.Base())/8]
			c.R[mi.Index] ^= 1 << 42
		}
	}
	st := p.Run(0)
	if st != machine.StatusExited {
		t.Fatalf("rollback run ended %v (%v)", st, p.CPU.PendingTrap)
	}
	if p.SG.Rollbacks() != 1 || p.SG.Stats().RolledBack != 1 {
		t.Fatalf("rollbacks=%d stats=%+v, want exactly one rollback", p.SG.Rollbacks(), p.SG.Stats())
	}
	ev := p.SG.Stats().Events[len(p.SG.Stats().Events)-1]
	if ev.Outcome != safeguard.RolledBack {
		t.Fatalf("outcome %s, want %s", ev.Outcome, safeguard.RolledBack)
	}
	// The rollback phase must charge the modelled snapshot read and
	// requeue delay, and Total() must include it.
	if ev.Rollback <= 0 || ev.Total() < ev.Rollback {
		t.Fatalf("rollback timing not charged: %+v", ev)
	}
	res := p.Results()
	if len(res) != len(golden) {
		t.Fatalf("%d results, want %d", len(res), len(golden))
	}
	for i := range golden {
		if res[i] != golden[i] {
			t.Fatalf("result %d = %v, want %v (restored run diverged)", i, res[i], golden[i])
		}
	}
}

// TestRollbackBudgetStopsLoop: a deterministic bug re-faults after
// every restore, so the chain must stop at Policy.MaxRollbacks and kill
// instead of rolling back forever.
func TestRollbackBudgetStopsLoop(t *testing.T) {
	bin := buildHPCCG(t, true)
	target, _ := protectedFloatLoad(t, bin)

	p, err := core.NewProcess(core.ProcessConfig{
		App: bin, Protected: true,
		Safeguard: safeguard.Config{
			Policy: safeguard.Policy{Rollback: true, MaxRollbacks: 2},
		},
		Checkpoint: checkpoint.NewStore(checkpoint.CostModel{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// No once-flag: the corruption recurs on every execution of the
	// target, like a genuine program bug.
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if c.PC == target && c.Dyn > 1000 {
			mi := img.Prog.Code[(target-img.Base())/8]
			c.R[mi.Index] ^= 1 << 42
		}
	}
	st := p.Run(0)
	if st == machine.StatusExited {
		t.Fatal("deterministic bug exited cleanly")
	}
	if p.SG.Rollbacks() != 2 {
		t.Fatalf("%d rollbacks, want exactly MaxRollbacks=2", p.SG.Rollbacks())
	}
	last := p.SG.Stats().Events[len(p.SG.Stats().Events)-1]
	if last.Outcome == safeguard.RolledBack {
		t.Fatalf("last event is still a rollback: %+v", p.SG.Stats().Events)
	}
}

// TestRetryBudgetEscalates covers Policy.MaxTrapsPerPC on a protected
// binary: the first traps at a PC recover normally; once the budget is
// spent the chain skips patching and (without rollback) kills.
func TestRetryBudgetEscalates(t *testing.T) {
	bin := buildHPCCG(t, false)
	target, _ := protectedFloatLoad(t, bin)

	p, err := core.NewProcess(core.ProcessConfig{
		App: bin, Protected: true,
		Safeguard: safeguard.Config{
			Policy: safeguard.Policy{MaxTrapsPerPC: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if c.PC == target && c.Dyn > 1000 {
			mi := img.Prog.Code[(target-img.Base())/8]
			c.R[mi.Index] ^= 1 << 42
		}
	}
	st := p.Run(0)
	if st == machine.StatusExited {
		t.Fatal("persistent corruption exited cleanly")
	}
	evs := p.SG.Stats().Events
	if len(evs) != 3 {
		t.Fatalf("%d events, want 2 recoveries + 1 escalation: %+v", len(evs), evs)
	}
	for _, ev := range evs[:2] {
		if ev.Outcome != safeguard.Recovered {
			t.Fatalf("pre-budget outcome %s, want %s", ev.Outcome, safeguard.Recovered)
		}
	}
	if evs[2].Outcome != safeguard.RetryBudgetExhausted {
		t.Fatalf("post-budget outcome %s, want %s", evs[2].Outcome, safeguard.RetryBudgetExhausted)
	}
}

// TestStormDetectorTrips covers the recovery-storm breaker: repeated
// traps at one PC within the dynamic-instruction window stop the
// patching loop even when each individual patch "succeeds".
func TestStormDetectorTrips(t *testing.T) {
	bin := buildHPCCG(t, false)
	target, _ := protectedFloatLoad(t, bin)

	p, err := core.NewProcess(core.ProcessConfig{
		App: bin, Protected: true,
		Safeguard: safeguard.Config{
			Policy: safeguard.Policy{StormTraps: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if c.PC == target && c.Dyn > 1000 {
			mi := img.Prog.Code[(target-img.Base())/8]
			c.R[mi.Index] ^= 1 << 42
		}
	}
	st := p.Run(0)
	if st == machine.StatusExited {
		t.Fatal("storming run exited cleanly")
	}
	if p.SG.Stats().Storms != 1 {
		t.Fatalf("storms=%d, want 1 (events %+v)", p.SG.Stats().Storms, p.SG.Stats().Events)
	}
	last := p.SG.Stats().Events[len(p.SG.Stats().Events)-1]
	if last.Outcome != safeguard.RecoveryStorm {
		t.Fatalf("outcome %s, want %s", last.Outcome, safeguard.RecoveryStorm)
	}
}
