package experiments

import (
	"fmt"
	"strings"
	"time"

	"care/internal/checkpoint"
	"care/internal/faultinject"
	"care/internal/parallel"
	"care/internal/safeguard"
	"care/internal/workloads"
)

// PolicySpec names one Safeguard configuration in the escalation-policy
// study.
type PolicySpec struct {
	Name      string
	Safeguard safeguard.Config
	// CheckpointEveryResults / CheckpointModel configure the rollback
	// stage's snapshot cadence and I/O pricing (only consulted when
	// Safeguard.Policy.Rollback is set).
	CheckpointEveryResults int
	CheckpointModel        checkpoint.CostModel
}

// DefaultPolicySpecs is the study's standard four-way comparison:
//
//   - kill-on-failure: the paper's one-shot Safeguard — kernel recompute
//     or die.
//   - heuristic: recompute, then the LetGo-style bit-bucket patch (keeps
//     the process alive at the risk of SDCs).
//   - rollback-chain: recompute → induction repair → checkpoint rollback,
//     with the retry budget and storm detector armed, and snapshot I/O
//     priced by the default cost model.
//   - domain-rewind-chain: the rollback chain with the domain-rewind
//     stage in front of whole-process rollback — rewind only the
//     faulting domain's memory, keeping registers and every other
//     domain's progress.
func DefaultPolicySpecs() []PolicySpec {
	return []PolicySpec{
		{Name: "kill-on-failure"},
		{Name: "heuristic", Safeguard: safeguard.Config{Heuristic: true}},
		{
			Name: "rollback-chain",
			Safeguard: safeguard.Config{
				InductionRecovery: true,
				Policy: safeguard.Policy{
					Rollback:      true,
					MaxTrapsPerPC: 8,
					StormTraps:    4,
				},
			},
			CheckpointEveryResults: 1,
			CheckpointModel:        checkpoint.DefaultCostModel(),
		},
		DomainRewindSpec(safeguard.Policy{}),
	}
}

// DomainRewindSpec builds the domain-rewind-chain policy arm from a base
// policy (zero value = the study defaults): the full escalation chain
// with the domain-rewind stage enabled in front of whole-process
// rollback. The caller's budget fields (MaxRollbacks, MaxDomainRewinds)
// pass through; Rollback and DomainRewind are forced on and the circuit
// breakers default to the rollback-chain arm's settings so the two
// chains differ only in the extra stage.
func DomainRewindSpec(pol safeguard.Policy) PolicySpec {
	pol.Rollback = true
	pol.DomainRewind = true
	if pol.MaxTrapsPerPC == 0 {
		pol.MaxTrapsPerPC = 8
	}
	if pol.StormTraps == 0 {
		pol.StormTraps = 4
	}
	return PolicySpec{
		Name: "domain-rewind-chain",
		Safeguard: safeguard.Config{
			InductionRecovery: true,
			Policy:            pol,
		},
		CheckpointEveryResults: 1,
		CheckpointModel:        checkpoint.DefaultCostModel(),
	}
}

// PolicyRow is one (workload, policy) cell of the study.
type PolicyRow struct {
	Workload string
	Policy   string
	Res      *faultinject.CoverageResult
}

// PolicyStudy compares recovery policies on identical fault campaigns:
// every policy examines the same injections (the trial set depends only
// on (seed, attempt index) and on the pre-trap execution, which no
// policy influences), so differences in recovery rate, SDC count and
// modelled stall are attributable to the policy alone. faultsPerTrial
// arms that many independent faults per trial (<=1 = single-fault).
// Cells run concurrently on up to opts.Workers goroutines and rows come
// back in (names, specs) order for any worker count; opts.Tier selects
// the interpreter tier every trial runs on (results are bit-identical
// across tiers and worker counts).
func PolicyStudy(names []string, trials, faultsPerTrial int, model faultinject.Model,
	seed int64, opt int, p workloads.Params, specs []PolicySpec, opts StudyOptions) ([]PolicyRow, error) {
	if len(specs) == 0 {
		specs = DefaultPolicySpecs()
	}
	rows := make([]PolicyRow, len(names)*len(specs))
	err := parallel.ForEach(len(rows), opts.Workers, func(i int) error {
		name, spec := names[i/len(specs)], specs[i%len(specs)]
		bin, err := BuildWorkload(name, p, opt, []string{"care"})
		if err != nil {
			return err
		}
		exp := &faultinject.CoverageExperiment{
			App:                    bin,
			Trials:                 trials,
			FaultsPerTrial:         faultsPerTrial,
			Model:                  model,
			Seed:                   seed,
			Safeguard:              spec.Safeguard,
			CheckpointEveryResults: spec.CheckpointEveryResults,
			CheckpointModel:        spec.CheckpointModel,
			Workers:                opts.Workers,
			Tier:                   opts.Tier,
		}
		res, err := exp.Run()
		if err != nil && res == nil {
			return fmt.Errorf("%s/%s: %w", name, spec.Name, err)
		}
		rows[i] = PolicyRow{Workload: name, Policy: spec.Name, Res: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatPolicyStudy renders the escalation-policy comparison — every
// column is derived from each cell's merged trace counters (so a trace
// file alone reproduces the table). Stall is the summed recovery time
// of every recovered trial; CkptIO the modelled checkpoint-write time
// the policy paid for; LostDyn the virtual-clock work whole-process
// rollbacks discarded (domain rewinds discard none — the comparison the
// domain-rewind arm exists to make).
func FormatPolicyStudy(rows []PolicyRow) string {
	var sb strings.Builder
	sb.WriteString("Escalation-policy study — recovery rate vs SDC vs stall vs lost work\n")
	fmt.Fprintf(&sb, "%-10s %-19s %5s %5s %4s %9s %7s %6s %12s %9s %12s\n",
		"Workload", "Policy", "SEGV", "Recov", "SDC", "Coverage", "Rollbk", "DomRw", "Stall", "LostDyn", "CkptIO")
	for _, r := range rows {
		cnt := func(name string) int64 { return r.Res.Trace.Counter(name) }
		segv := cnt(faultinject.CounterExamined)
		recov := cnt(faultinject.CounterRecovered)
		cov := 0.0
		if segv > 0 {
			cov = 100 * float64(recov) / float64(segv)
		}
		stall := time.Duration(cnt(faultinject.CounterStallNs))
		ckptIO := time.Duration(cnt(checkpoint.CounterWriteNs))
		fmt.Fprintf(&sb, "%-10s %-19s %5d %5d %4d %8.1f%% %7d %6d %12s %9d %12s\n",
			r.Workload, r.Policy, segv, recov, cnt(faultinject.CounterSDC), cov,
			cnt(safeguard.CounterRolledBack), cnt(safeguard.CounterDomainRewinds),
			stall.Round(time.Microsecond), cnt(checkpoint.CounterLostDyn),
			ckptIO.Round(time.Microsecond))
	}
	return sb.String()
}
