package experiments

import (
	"fmt"
	"strings"
	"time"

	"care/internal/checkpoint"
	"care/internal/faultinject"
	"care/internal/parallel"
	"care/internal/safeguard"
	"care/internal/workloads"
)

// PolicySpec names one Safeguard configuration in the escalation-policy
// study.
type PolicySpec struct {
	Name      string
	Safeguard safeguard.Config
	// CheckpointEveryResults / CheckpointModel configure the rollback
	// stage's snapshot cadence and I/O pricing (only consulted when
	// Safeguard.Policy.Rollback is set).
	CheckpointEveryResults int
	CheckpointModel        checkpoint.CostModel
}

// DefaultPolicySpecs is the study's standard three-way comparison:
//
//   - kill-on-failure: the paper's one-shot Safeguard — kernel recompute
//     or die.
//   - heuristic: recompute, then the LetGo-style bit-bucket patch (keeps
//     the process alive at the risk of SDCs).
//   - rollback-chain: recompute → induction repair → checkpoint rollback,
//     with the retry budget and storm detector armed, and snapshot I/O
//     priced by the default cost model.
func DefaultPolicySpecs() []PolicySpec {
	return []PolicySpec{
		{Name: "kill-on-failure"},
		{Name: "heuristic", Safeguard: safeguard.Config{Heuristic: true}},
		{
			Name: "rollback-chain",
			Safeguard: safeguard.Config{
				InductionRecovery: true,
				Policy: safeguard.Policy{
					Rollback:      true,
					MaxTrapsPerPC: 8,
					StormTraps:    4,
				},
			},
			CheckpointEveryResults: 1,
			CheckpointModel:        checkpoint.DefaultCostModel(),
		},
	}
}

// PolicyRow is one (workload, policy) cell of the study.
type PolicyRow struct {
	Workload string
	Policy   string
	Res      *faultinject.CoverageResult
}

// PolicyStudy compares recovery policies on identical fault campaigns:
// every policy examines the same injections (the trial set depends only
// on (seed, attempt index) and on the pre-trap execution, which no
// policy influences), so differences in recovery rate, SDC count and
// modelled stall are attributable to the policy alone. faultsPerTrial
// arms that many independent faults per trial (<=1 = single-fault).
// Cells run concurrently on up to workers goroutines and rows come back
// in (names, specs) order for any worker count.
func PolicyStudy(names []string, trials, faultsPerTrial int, model faultinject.Model,
	seed int64, opt int, p workloads.Params, specs []PolicySpec, workers int) ([]PolicyRow, error) {
	if len(specs) == 0 {
		specs = DefaultPolicySpecs()
	}
	rows := make([]PolicyRow, len(names)*len(specs))
	err := parallel.ForEach(len(rows), workers, func(i int) error {
		name, spec := names[i/len(specs)], specs[i%len(specs)]
		bin, err := BuildWorkload(name, p, opt, true)
		if err != nil {
			return err
		}
		exp := &faultinject.CoverageExperiment{
			App:                    bin,
			Trials:                 trials,
			FaultsPerTrial:         faultsPerTrial,
			Model:                  model,
			Seed:                   seed,
			Safeguard:              spec.Safeguard,
			CheckpointEveryResults: spec.CheckpointEveryResults,
			CheckpointModel:        spec.CheckpointModel,
			Workers:                workers,
		}
		res, err := exp.Run()
		if err != nil && res == nil {
			return fmt.Errorf("%s/%s: %w", name, spec.Name, err)
		}
		rows[i] = PolicyRow{Workload: name, Policy: spec.Name, Res: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatPolicyStudy renders the escalation-policy comparison. Stall is
// the summed recovery time of every recovered trial plus the modelled
// checkpoint I/O the policy paid for — the wall-clock price of staying
// alive.
func FormatPolicyStudy(rows []PolicyRow) string {
	var sb strings.Builder
	sb.WriteString("Escalation-policy study — recovery rate vs SDC vs modelled stall\n")
	fmt.Fprintf(&sb, "%-10s %-16s %6s %10s %5s %9s %9s %12s %12s\n",
		"Workload", "Policy", "SEGV", "Recovered", "SDC", "Coverage", "Rollback", "Stall", "CkptIO")
	for _, r := range rows {
		var stall time.Duration
		for _, t := range r.Res.TrialRecoveryTimes {
			stall += t
		}
		fmt.Fprintf(&sb, "%-10s %-16s %6d %10d %5d %8.1f%% %9d %12s %12s\n",
			r.Workload, r.Policy, r.Res.SigsegvTrials, r.Res.Recovered, r.Res.SDCs(),
			100*r.Res.Coverage(), r.Res.Rollbacks,
			stall.Round(time.Microsecond), r.Res.CheckpointIO.Round(time.Microsecond))
	}
	return sb.String()
}
