package experiments

import (
	"strings"
	"testing"

	"care/internal/faultinject"
	"care/internal/workloads"
)

// TestPolicyStudyRollbackBeatsKill is the study's acceptance criterion:
// on the same campaign (identical injections, same examined trials),
// the escalation chain with rollback recovers strictly more trials than
// the paper's kill-on-failure runtime on at least one workload, without
// adding silent data corruptions.
func TestPolicyStudyRollbackBeatsKill(t *testing.T) {
	names := []string{"HPCCG", "GTC-P"}
	rows, err := PolicyStudy(names, 20, 1, faultinject.SingleBit, 7, 0,
		workloads.Params{}, DefaultPolicySpecs(), StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[string]PolicyRow{}
	for _, r := range rows {
		byCell[r.Workload+"/"+r.Policy] = r
	}
	improved := false
	for _, name := range names {
		kill := byCell[name+"/kill-on-failure"].Res
		chain := byCell[name+"/rollback-chain"].Res
		if kill == nil || chain == nil {
			t.Fatalf("%s: missing policy rows", name)
		}
		if kill.SigsegvTrials != chain.SigsegvTrials {
			t.Errorf("%s: trial sets diverge between policies: %d vs %d SIGSEGV trials",
				name, kill.SigsegvTrials, chain.SigsegvTrials)
		}
		if chain.Recovered < kill.Recovered {
			t.Errorf("%s: rollback chain recovered fewer trials (%d) than kill-on-failure (%d)",
				name, chain.Recovered, kill.Recovered)
		}
		if chain.Recovered > kill.Recovered && chain.SDCs() <= kill.SDCs() {
			improved = true
		}
	}
	if !improved {
		for _, r := range rows {
			t.Logf("%s/%s: segv=%d recovered=%d sdc=%d rollbacks=%d",
				r.Workload, r.Policy, r.Res.SigsegvTrials, r.Res.Recovered, r.Res.SDCs(), r.Res.Rollbacks)
		}
		t.Fatal("rollback chain did not strictly improve recovery on any workload without adding SDCs")
	}
}

// TestPolicyStudyWorkerDeterminism: the whole policy grid is identical
// whether it runs serially or with 8 workers (the trial sets, outcomes
// and counters all derive from (seed, attempt index) only).
func TestPolicyStudyWorkerDeterminism(t *testing.T) {
	run := func(workers int) []PolicyRow {
		rows, err := PolicyStudy([]string{"HPCCG"}, 8, 2, faultinject.SingleBit, 5, 0,
			workloads.Params{}, nil, StudyOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial, par := run(1), run(8)
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		a, b := serial[i].Res, par[i].Res
		if a.Attempts != b.Attempts || a.SigsegvTrials != b.SigsegvTrials ||
			a.Recovered != b.Recovered || a.CleanRecovered != b.CleanRecovered ||
			a.Rollbacks != b.Rollbacks || a.CheckpointIO != b.CheckpointIO ||
			len(a.Events) != len(b.Events) {
			t.Errorf("%s/%s differs between workers=1 and workers=8:\n%+v\nvs\n%+v",
				serial[i].Workload, serial[i].Policy, a, b)
		}
		for j := range a.Events {
			if a.Events[j].Outcome != b.Events[j].Outcome {
				t.Errorf("%s/%s event %d outcome %s vs %s", serial[i].Workload,
					serial[i].Policy, j, a.Events[j].Outcome, b.Events[j].Outcome)
			}
		}
	}
}

func TestFormatPolicyStudy(t *testing.T) {
	rows, err := PolicyStudy([]string{"HPCCG"}, 5, 1, faultinject.SingleBit, 9, 0,
		workloads.Params{}, nil, StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatPolicyStudy(rows)
	for _, want := range []string{"Escalation-policy study", "kill-on-failure", "heuristic", "rollback-chain", "domain-rewind-chain"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
