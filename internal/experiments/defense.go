package experiments

import (
	"fmt"
	"strings"
	"time"

	"care/internal/blas"
	"care/internal/core"
	"care/internal/defense"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/safeguard"
	"care/internal/workloads"
)

// DefenseArm is one bake-off configuration: a display name plus the
// defense list it builds with (nil = the undefended baseline).
type DefenseArm struct {
	Name     string
	Defenses []string
}

// DefenseArms returns the bake-off grid: no defense, CARE repair, the
// two detection rivals, and the repair+detect composition.
func DefenseArms() []DefenseArm {
	return []DefenseArm{
		{"none", nil},
		{"care", []string{"care"}},
		{"presage", []string{"presage"}},
		{"sfi", []string{"sfi"}},
		{"care+presage", []string{"care", "presage"}},
	}
}

// DefenseCell is one (workload, arm) result of the bake-off.
type DefenseCell struct {
	Workload string
	Arm      string
	// Res is the arm's injection campaign. Every deterministic figure
	// below derives from its merged trace, so cells are bit-identical
	// across worker counts.
	Res *faultinject.CampaignResult
	// CodeInstrs is the built image size in machine instructions;
	// growth is reported against the workload's none arm.
	CodeInstrs int
	// InsertedInstrs sums the IR check instructions the arm's detection
	// passes added; Kernels counts a repair pass's recovery kernels.
	InsertedInstrs int
	Kernels        int
	// Rates holds the wall-measured golden-run throughput per
	// interpreter tier in Minstr/s. Wall-based: reported beside the
	// deterministic columns but excluded from every determinism claim
	// (nil when the study runs with rates disabled).
	Rates map[machine.InterpTier]float64
}

// Detected counts fail-stop trials: soft failures whose symptom is the
// deterministic SIGTRAP of a detection pass.
func (c *DefenseCell) Detected() int {
	return c.Res.Symptoms[machine.SigTRAP]
}

// Crashes counts undetected soft failures (raw SIGSEGV/SIGBUS/...).
func (c *DefenseCell) Crashes() int {
	return c.Res.Outcomes[faultinject.SoftFailure] - c.Detected()
}

// Recovered counts Safeguard repairs across the campaign (activation
// outcomes recovered / recovered-induction, from the merged trace).
func (c *DefenseCell) Recovered() int {
	return int(c.Res.Trace.Counter(safeguard.CounterRecovered))
}

// Coverage is the arm's protection ratio: faults it repaired or
// flagged over all faults that needed attention (repaired + flagged +
// undetected crashes + SDCs). The undefended arm scores 0 by
// construction.
func (c *DefenseCell) Coverage() float64 {
	good := c.Recovered() + c.Detected()
	bad := c.Crashes() + c.Res.Outcomes[faultinject.SDC]
	if good+bad == 0 {
		return 0
	}
	return float64(good) / float64(good+bad)
}

// SDCRate is the silent-data-corruption fraction of the campaign.
func (c *DefenseCell) SDCRate() float64 {
	return float64(c.Res.Outcomes[faultinject.SDC]) / float64(c.Res.N)
}

// buildDefenseTarget builds one workload under one defense list.
// "BLAS" is the shared-library target: the BLAS library plus the
// sblat1 driver, both defended.
func buildDefenseTarget(name string, p workloads.Params, opt int, defenses []string) (*core.Binary, []*core.Binary, error) {
	if name == "BLAS" {
		lib, err := core.BuildLib(blas.Library(), opt, 0, defenses)
		if err != nil {
			return nil, nil, fmt.Errorf("BLAS lib: %w", err)
		}
		drv, err := core.Build(blas.Sblat1(5), core.BuildOptions{OptLevel: opt, Defenses: defenses}, lib)
		if err != nil {
			return nil, nil, fmt.Errorf("BLAS driver: %w", err)
		}
		return drv, []*core.Binary{lib}, nil
	}
	bin, err := BuildWorkload(name, p, opt, defenses)
	return bin, nil, err
}

// DefenseNames returns the bake-off's default target list: the five
// evaluated mini-apps plus the BLAS library driver.
func DefenseNames() []string {
	return append(EvaluatedNames(), "BLAS")
}

// DefenseStudy runs the rival-defense bake-off: every arm of
// DefenseArms builds every named workload and faces an identical
// warm-started injection campaign (same seed, same fault model, same
// trial RNG streams), so the arms differ only in the defense under
// test. Defended arms run with the Safeguard attached; no checkpoint
// store is wired, so a detection trap is a fail-stop and CARE repairs
// in place — the paper's configurations. Cells come back in (names,
// arms) order and are bit-identical for every opts.Workers value.
// opts.Traced additionally keeps machine-level trap stamps.
//
// measureRates adds the wall-clock golden-run throughput per
// interpreter tier (DefenseCell.Rates) — wall-based and excluded from
// the determinism contract; leave it off for byte-diff runs.
func DefenseStudy(names []string, n int, model faultinject.Model, seed int64, opt int, p workloads.Params, opts StudyOptions, measureRates bool) ([]DefenseCell, error) {
	return DefenseStudyArms(names, DefenseArms(), n, model, seed, opt, p, opts, measureRates)
}

// DefenseStudyArms is DefenseStudy over an explicit arm list — the
// care-inject -defense path runs a single caller-chosen arm through it.
func DefenseStudyArms(names []string, arms []DefenseArm, n int, model faultinject.Model, seed int64, opt int, p workloads.Params, opts StudyOptions, measureRates bool) ([]DefenseCell, error) {
	cells := make([]DefenseCell, 0, len(names)*len(arms))
	for _, name := range names {
		for _, arm := range arms {
			app, libs, err := buildDefenseTarget(name, p, opt, arm.Defenses)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, arm.Name, err)
			}
			cell := DefenseCell{
				Workload:   name,
				Arm:        arm.Name,
				CodeInstrs: len(app.Prog.Code),
			}
			for _, b := range append([]*core.Binary{app}, libs...) {
				for _, s := range b.DefenseStats {
					cell.InsertedInstrs += s.InsertedInstrs
					cell.Kernels += s.NumKernels
				}
			}
			res, err := (&faultinject.Campaign{
				App: app, Libs: libs, N: n, Model: model, Seed: seed,
				Workers: opts.Workers, Trace: opts.Traced,
				WarmStart: opts.WarmStart, SnapEvery: opts.SnapEvery,
				Tier:      opts.Tier,
				Protected: app.Defended(),
				Safeguard: opts.Safeguard,
				Store:     opts.Store,
				StoreKey:  CampaignKey("campaign", name, p, opt, arm.Defenses, seed, opts),
			}).Run()
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, arm.Name, err)
			}
			cell.Res = res
			if measureRates {
				cell.Rates = map[machine.InterpTier]float64{}
				for _, tier := range machine.Tiers() {
					rate, err := goldenRate(app, libs, tier)
					if err != nil {
						return nil, fmt.Errorf("%s/%s %s: %w", name, arm.Name, tier, err)
					}
					cell.Rates[tier] = rate
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// DefenseBuildRow is one (workload, pass) line of the care-compile
// -defense build table.
type DefenseBuildRow struct {
	Workload string
	Stats    defense.Stats
	// CodeInstrs and CompileTime describe the whole binary (repeated on
	// every pass row of a multi-pass build).
	CodeInstrs  int
	CompileTime time.Duration
}

// DefenseBuildStudy builds every workload under one defense list and
// reports per-pass instrumentation statistics — the policy-agnostic
// counterpart of ArmorStudy's Table 8.
func DefenseBuildStudy(defenses []string, opt int, p workloads.Params, evaluatedOnly bool) ([]DefenseBuildRow, error) {
	ws := workloads.All()
	if evaluatedOnly {
		ws = workloads.Evaluated()
	}
	var rows []DefenseBuildRow
	for _, w := range ws {
		bin, err := core.Build(w.Module(p), core.BuildOptions{OptLevel: opt, Defenses: defenses})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		for _, name := range defenses {
			rows = append(rows, DefenseBuildRow{
				Workload:    w.Name,
				Stats:       bin.DefenseStats[name],
				CodeInstrs:  len(bin.Prog.Code),
				CompileTime: bin.CompileTime,
			})
		}
	}
	return rows, nil
}

// FormatDefenseBuild renders the per-pass build statistics.
func FormatDefenseBuild(rows []DefenseBuildRow) string {
	var sb strings.Builder
	sb.WriteString("Defense build statistics per pass\n")
	fmt.Fprintf(&sb, "%-10s %-9s %9s %10s %8s %7s %8s %10s %14s\n",
		"Workload", "Pass", "Accesses", "Protected", "Skipped", "Checks", "Kernels", "CodeInstr", "PassTime")
	for _, r := range rows {
		s := r.Stats
		fmt.Fprintf(&sb, "%-10s %-9s %9d %10d %8d %7d %8d %10d %14s\n",
			r.Workload, s.Pass, s.NumMemAccesses, s.Protected, s.Skipped,
			s.InsertedInstrs, s.NumKernels, r.CodeInstrs,
			s.TotalTime.Round(time.Microsecond))
	}
	return sb.String()
}

// goldenRate measures one fault-free run's throughput in Minstr/s on
// the given tier (wall-based; report-only).
func goldenRate(app *core.Binary, libs []*core.Binary, tier machine.InterpTier) (float64, error) {
	proc, err := core.NewProcess(core.ProcessConfig{App: app, Libs: libs, Tier: tier})
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	status := proc.Run(0)
	elapsed := time.Since(t0)
	if status != machine.StatusExited {
		return 0, fmt.Errorf("golden run ended %v", status)
	}
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(proc.CPU.Dyn) / 1e6 / elapsed.Seconds(), nil
}

// FormatDefenseStudy renders the bake-off. The outcome and cost tables
// are fully deterministic (trace-derived); the throughput table is
// wall-measured and flagged as such.
func FormatDefenseStudy(cells []DefenseCell) string {
	var sb strings.Builder
	sb.WriteString("Rival-defense bake-off — identical campaigns per arm\n")
	fmt.Fprintf(&sb, "%-10s %-13s %7s %7s %9s %6s %5s %10s %9s %7s\n",
		"Workload", "Defense", "Benign", "Crash", "Detected", "SDC", "Hang", "Recovered", "Coverage", "SDC%")
	none := map[string]*DefenseCell{}
	for i := range cells {
		if cells[i].Arm == "none" {
			none[cells[i].Workload] = &cells[i]
		}
	}
	for i := range cells {
		c := &cells[i]
		o := c.Res.Outcomes
		fmt.Fprintf(&sb, "%-10s %-13s %7d %7d %9d %6d %5d %10d %8.1f%% %6.2f%%\n",
			c.Workload, c.Arm, o[faultinject.Benign], c.Crashes(), c.Detected(),
			o[faultinject.SDC], o[faultinject.Hang], c.Recovered(),
			100*c.Coverage(), 100*c.SDCRate())
	}
	sb.WriteString("\nStatic and dynamic cost per arm (vs the none arm)\n")
	fmt.Fprintf(&sb, "%-10s %-13s %10s %8s %12s %8s %8s %8s\n",
		"Workload", "Defense", "CodeInstr", "Growth%", "GoldenDyn", "DynOvh%", "Kernels", "Checks")
	for i := range cells {
		c := &cells[i]
		growth, dynOvh := 0.0, 0.0
		if b := none[c.Workload]; b != nil {
			if b.CodeInstrs > 0 {
				growth = 100 * (float64(c.CodeInstrs)/float64(b.CodeInstrs) - 1)
			}
			if b.Res.GoldenDyn > 0 {
				dynOvh = 100 * (float64(c.Res.GoldenDyn)/float64(b.Res.GoldenDyn) - 1)
			}
		}
		fmt.Fprintf(&sb, "%-10s %-13s %10d %7.1f%% %12d %7.1f%% %8d %8d\n",
			c.Workload, c.Arm, c.CodeInstrs, growth, c.Res.GoldenDyn, dynOvh,
			c.Kernels, c.InsertedInstrs)
	}
	if len(cells) > 0 && cells[0].Rates != nil {
		sb.WriteString("\nGolden-run throughput, Minstr/s per tier (wall-measured — excluded from determinism)\n")
		fmt.Fprintf(&sb, "%-10s %-13s", "Workload", "Defense")
		for _, tier := range machine.Tiers() {
			fmt.Fprintf(&sb, " %12s", tier)
		}
		sb.WriteByte('\n')
		for i := range cells {
			c := &cells[i]
			fmt.Fprintf(&sb, "%-10s %-13s", c.Workload, c.Arm)
			for _, tier := range machine.Tiers() {
				fmt.Fprintf(&sb, " %12.2f", c.Rates[tier])
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
