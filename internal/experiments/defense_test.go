package experiments

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"care/internal/faultinject"
	"care/internal/trace"
	"care/internal/workloads"
)

func defenseCell(t *testing.T, cells []DefenseCell, workload, arm string) *DefenseCell {
	t.Helper()
	for i := range cells {
		if cells[i].Workload == workload && cells[i].Arm == arm {
			return &cells[i]
		}
	}
	t.Fatalf("no cell %s/%s", workload, arm)
	return nil
}

func TestDefenseStudySmoke(t *testing.T) {
	cells, err := DefenseStudy([]string{"HPCCG"}, 60, faultinject.SingleBit, 5, 0,
		workloads.Params{}, StudyOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(DefenseArms()) {
		t.Fatalf("%d cells for %d arms", len(cells), len(DefenseArms()))
	}
	none := defenseCell(t, cells, "HPCCG", "none")
	if none.Recovered() != 0 || none.Detected() != 0 || none.Coverage() != 0 {
		t.Fatalf("undefended arm reports protection: %+v", none)
	}
	care := defenseCell(t, cells, "HPCCG", "care")
	if care.Recovered() == 0 {
		t.Fatalf("care arm recovered nothing (outcomes %v)", care.Res.Outcomes)
	}
	if care.Kernels == 0 {
		t.Fatal("care arm built no kernels")
	}
	for _, arm := range []string{"presage", "sfi"} {
		c := defenseCell(t, cells, "HPCCG", arm)
		if c.Detected() == 0 {
			t.Fatalf("%s arm detected nothing (outcomes %v symptoms %v)", arm, c.Res.Outcomes, c.Res.Symptoms)
		}
		if c.InsertedInstrs == 0 {
			t.Fatalf("%s arm inserted no checks", arm)
		}
		if c.CodeInstrs <= none.CodeInstrs {
			t.Fatalf("%s arm shows no binary growth", arm)
		}
	}
	both := defenseCell(t, cells, "HPCCG", "care+presage")
	if both.Kernels == 0 || both.InsertedInstrs == 0 {
		t.Fatalf("care+presage arm missing kernels (%d) or checks (%d)", both.Kernels, both.InsertedInstrs)
	}
	out := FormatDefenseStudy(cells)
	for _, want := range []string{"bake-off", "none", "care+presage", "sfi", "Coverage", "Growth%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Minstr/s") {
		t.Error("rate table rendered although rates were disabled")
	}
}

var wallScrub = regexp.MustCompile(`"wall_ns":-?\d+`)
var nsCounterScrub = regexp.MustCompile(`("name":"[a-z.-]+-ns","value":)-?\d+`)

// scrubTrace renders a trace with the wall-measured fields zeroed —
// the same scrub the CI byte-diffs apply.
func scrubTrace(t *testing.T, rec *trace.Recorder) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	s := wallScrub.ReplaceAllString(buf.String(), `"wall_ns":0`)
	return nsCounterScrub.ReplaceAllString(s, "${1}0")
}

// TestDefenseStudyWorkerDeterminism pins the acceptance criterion:
// every arm's campaign — including the safeguard activity merged into
// its trace — is bit-identical across worker counts once the
// wall-measured fields are scrubbed.
func TestDefenseStudyWorkerDeterminism(t *testing.T) {
	run := func(workers int) []DefenseCell {
		cells, err := DefenseStudy([]string{"HPCCG"}, 30, faultinject.SingleBit, 7, 0,
			workloads.Params{}, StudyOptions{Workers: workers, Traced: true}, false)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	serial, par := run(1), run(6)
	if FormatDefenseStudy(serial) != FormatDefenseStudy(par) {
		t.Fatalf("report differs between workers=1 and workers=6:\n%s\nvs\n%s",
			FormatDefenseStudy(serial), FormatDefenseStudy(par))
	}
	for i := range serial {
		a, b := scrubTrace(t, serial[i].Res.Trace), scrubTrace(t, par[i].Res.Trace)
		if a != b {
			t.Fatalf("%s/%s: scrubbed trace differs between worker counts",
				serial[i].Workload, serial[i].Arm)
		}
	}
}

// TestDefenseStudyBLASTarget covers the shared-library arm of the
// bake-off grid (library + driver both defended).
func TestDefenseStudyBLASTarget(t *testing.T) {
	cells, err := DefenseStudy([]string{"BLAS"}, 20, faultinject.SingleBit, 9, 0,
		workloads.Params{}, StudyOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	care := defenseCell(t, cells, "BLAS", "care")
	if care.Kernels == 0 {
		t.Fatal("BLAS care arm built no kernels")
	}
	sfi := defenseCell(t, cells, "BLAS", "sfi")
	if sfi.InsertedInstrs == 0 {
		t.Fatal("BLAS sfi arm inserted no checks")
	}
}
