package experiments

import (
	"reflect"
	"strings"
	"testing"

	"care/internal/faultinject"
	"care/internal/safeguard"
	"care/internal/workloads"
)

func TestOutcomeStudyAndFormat(t *testing.T) {
	rows, err := OutcomeStudy([]string{"HPCCG"}, 25, 1, faultinject.SingleBit, 1, 0, workloads.Params{}, StudyOptions{Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatOutcomeTables(rows)
	for _, want := range []string{"Table 2-style", "Table 3-style", "Table 4-style", "HPCCG"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestOutcomeStudyWorkerDeterminism asserts the study level of the
// determinism guarantee: the whole multi-workload study is identical
// whether it runs serially or with per-CPU workers.
func TestOutcomeStudyWorkerDeterminism(t *testing.T) {
	names := []string{"HPCCG", "miniMD"}
	serial, err := OutcomeStudy(names, 20, 1, faultinject.SingleBit, 3, 0, workloads.Params{}, StudyOptions{Workers: 1, Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := OutcomeStudy(names, 20, 1, faultinject.SingleBit, 3, 0, workloads.Params{}, StudyOptions{Workers: 8, Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("study differs between workers=1 and workers=8:\n%+v\nvs\n%+v", serial, par)
	}
}

func TestCensusStudyCoversAllWorkloads(t *testing.T) {
	rows := CensusStudy(workloads.Params{})
	if len(rows) != len(workloads.All()) {
		t.Fatalf("%d census rows for %d workloads", len(rows), len(workloads.All()))
	}
	out := FormatCensus(rows)
	for _, w := range workloads.All() {
		if !strings.Contains(out, w.Name) {
			t.Errorf("census missing %s", w.Name)
		}
	}
}

func TestArmorStudyEvaluatedSet(t *testing.T) {
	rows, err := ArmorStudy(0, workloads.Params{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workloads.Evaluated()) {
		t.Fatalf("%d rows, want %d", len(rows), len(workloads.Evaluated()))
	}
	for _, r := range rows {
		if r.Kernels == 0 || r.TableBytes == 0 || r.LibBytes == 0 {
			t.Errorf("%s: empty artifacts %+v", r.Workload, r)
		}
	}
	if !strings.Contains(FormatArmor(rows), "Table 8-style") {
		t.Error("format header missing")
	}
}

func TestCoverageStudySmoke(t *testing.T) {
	rows, err := CoverageStudy([]string{"HPCCG"}, 10, faultinject.SingleBit, 2, workloads.Params{}, safeguard.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // O0 and O1
		t.Fatalf("%d coverage rows", len(rows))
	}
	out := FormatCoverage(rows)
	if !strings.Contains(out, "average coverage") {
		t.Error("missing average line")
	}
}

func TestBLASStudySmoke(t *testing.T) {
	row, err := BLASStudy(10, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.LibKernels == 0 || row.DriverKernels == 0 {
		t.Fatalf("missing kernels: %+v", row)
	}
	if !strings.Contains(FormatBLAS(row), "libblas") {
		t.Error("format missing libblas row")
	}
}

func TestNameHelpers(t *testing.T) {
	if len(EvaluatedNames()) != 4 {
		t.Errorf("evaluated names: %v", EvaluatedNames())
	}
	if len(AllNames()) != 5 {
		t.Errorf("all names: %v", AllNames())
	}
}
