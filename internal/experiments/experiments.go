// Package experiments contains the drivers that regenerate every table
// and figure of the paper's evaluation. The cmd/ tools, the repository
// benchmarks and the EXPERIMENTS.md report generator all call into this
// package so that one implementation backs every way of reproducing a
// number.
package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"care/internal/armor"
	"care/internal/blas"
	"care/internal/checkpoint"
	"care/internal/cluster"
	"care/internal/core"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/parallel"
	"care/internal/safeguard"
	"care/internal/shard"
	"care/internal/store"
	"care/internal/trace"
	"care/internal/workloads"
)

// BuildWorkload compiles a named workload with the given defense list
// (nil = undefended; see internal/defense for the registered passes).
func BuildWorkload(name string, p workloads.Params, opt int, defenses []string) (*core.Binary, error) {
	w, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	return core.Build(w.Module(p), core.BuildOptions{OptLevel: opt, Defenses: defenses})
}

// OutcomeRow is one workload's row of Tables 2+3+4 (or 10+11 under the
// double-bit model).
type OutcomeRow struct {
	Workload string
	Res      *faultinject.CampaignResult
}

// StudyOptions bundles the execution knobs shared by the study runners:
// how wide to run, whether to keep traces, and whether campaigns
// warm-start their trials from golden-run snapshots. The zero value is
// the paper's serial-equivalent cold configuration (all-CPU workers,
// tracing off, cold trials).
type StudyOptions struct {
	// Workers bounds concurrent goroutines (<=0 = one per CPU). Results
	// are identical for every value.
	Workers int
	// Traced enables the per-campaign trace recorder (Row.Res.Trace),
	// which stays bit-identical for any worker count and warm-start
	// setting.
	Traced bool
	// WarmStart clones campaign trials from golden-run snapshots
	// (faultinject.Campaign.WarmStart); results stay bit-identical.
	WarmStart bool
	// SnapEvery is the snapshot cadence in retired instructions
	// (0 = TotalDyn/64+1).
	SnapEvery uint64
	// Tier selects the interpreter tier trial processes run on
	// (superblock, block or step); results stay bit-identical on every
	// tier (the CI smoke diffs them).
	Tier machine.InterpTier
	// Domains attributes each memory-symptom soft failure to the
	// isolation domain of its faulting address
	// (faultinject.Campaign.Domains); FormatOutcomeTables then appends
	// the crash-geography table.
	Domains bool
	// Shards > 1 routes campaigns through the shard coordinator
	// (shard.RunCampaign / shard.RunCoverage): the trial index space
	// splits into contiguous shards that run in worker subprocesses
	// (ShardExec argv; empty = in-process shards), and results merge in
	// trial order — bit-identical to the single-process run for every
	// shard x worker combination.
	Shards    int
	ShardExec []string
	// Progress, when non-nil, receives (done, total) heartbeats — trial
	// counts for campaigns, exited-rank counts for parallel jobs. Never
	// part of any trace or table.
	Progress func(done, total int)
	// Safeguard, CheckpointEveryResults and CheckpointModel configure
	// the per-rank recovery runtime of ParallelStudy jobs (zero value =
	// the paper's one-shot Safeguard with no checkpoint store). Studies
	// that take an explicit safeguard.Config parameter ignore these.
	Safeguard              safeguard.Config
	CheckpointEveryResults int
	CheckpointModel        checkpoint.CostModel
	// Store, when non-nil, is the persistent content-addressed artifact
	// store: campaigns consult it for a cached golden-run profile
	// (keyed by CampaignKey) before profiling, populate it on a miss,
	// and — in subprocess shard mode — ship snapshot segments to
	// workers as blob references instead of inline payloads. Study
	// results, traces included, are byte-identical with or without it.
	Store *store.Store
}

// CampaignKey derives the store cache key for one study campaign: the
// exact (workload, build options, defense list, seed, snapshot
// cadence) tuple the golden-run profile depends on. The CLIs reuse it
// to seal campaign traces under the same index entry.
func CampaignKey(kind, workload string, p workloads.Params, opt int, defenses []string, seed int64, opts StudyOptions) store.Key {
	pj, err := json.Marshal(p)
	if err != nil {
		// workloads.Params is a plain value type; Marshal cannot fail.
		panic(fmt.Sprintf("experiments: marshal params: %v", err))
	}
	return store.Key{
		Kind:      kind,
		Workload:  workload,
		Params:    string(pj),
		OptLevel:  opt,
		Defenses:  defenses,
		Seed:      seed,
		SnapEvery: opts.SnapEvery,
		WarmStart: opts.WarmStart,
	}
}

// OutcomeStudy runs the §2 manifestation study (Tables 2, 3, 4 / 10, 11).
// Workloads build and run concurrently on up to opts.Workers goroutines,
// and each campaign spreads its trials over the same worker budget; rows
// come back in names order and every campaign seeds per-trial RNGs from
// (seed, trial), so the study is deterministic for any worker count and
// for warm or cold starts. faults arms that many independent faults per
// trial (<=1 = the paper's single-fault model).
func OutcomeStudy(names []string, n, faults int, model faultinject.Model, seed int64, opt int, p workloads.Params, opts StudyOptions) ([]OutcomeRow, error) {
	rows := make([]OutcomeRow, len(names))
	err := parallel.ForEach(len(names), opts.Workers, func(i int) error {
		name := names[i]
		bin, err := BuildWorkload(name, p, opt, nil)
		if err != nil {
			return err
		}
		c := &faultinject.Campaign{
			App: bin, N: n, FaultsPerTrial: faults, Model: model, Seed: seed,
			Workers: opts.Workers, Trace: opts.Traced,
			WarmStart: opts.WarmStart, SnapEvery: opts.SnapEvery,
			Tier: opts.Tier, Domains: opts.Domains,
			Shards: opts.Shards, ShardExec: opts.ShardExec, Progress: opts.Progress,
			Store: opts.Store, StoreKey: CampaignKey("campaign", name, p, opt, nil, seed, opts),
		}
		var res *faultinject.CampaignResult
		if opts.Shards > 1 {
			res, err = shard.RunCampaign(c, shard.BuildSpec{Workload: name, Params: p, OptLevel: opt})
		} else {
			res, err = c.Run()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows[i] = OutcomeRow{Workload: name, Res: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatOutcomeTables renders Tables 2, 3 and 4 for the rows.
func FormatOutcomeTables(rows []OutcomeRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2-style — overall outcomes (%s)\n", rows[0].Res.Model)
	fmt.Fprintf(&sb, "%-10s %8s %13s %8s %6s\n", "Workload", "Benign", "SoftFailure", "SDC", "Hang")
	for _, r := range rows {
		o := r.Res.Outcomes
		fmt.Fprintf(&sb, "%-10s %8d %13d %8d %6d\n", r.Workload,
			o[faultinject.Benign], o[faultinject.SoftFailure], o[faultinject.SDC], o[faultinject.Hang])
	}
	fmt.Fprintf(&sb, "\nTable 3-style — soft-failure symptoms\n")
	fmt.Fprintf(&sb, "%-10s %9s %8s %9s %7s\n", "Workload", "SIGSEGV", "SIGBUS", "SIGABRT", "Other")
	for _, r := range rows {
		s := r.Res.Symptoms
		other := s[machine.SigFPE] + s[machine.SigILL] + s[machine.SigTRAP]
		fmt.Fprintf(&sb, "%-10s %9d %8d %9d %7d\n", r.Workload,
			s[machine.SigSEGV], s[machine.SigBUS], s[machine.SigABRT], other)
	}
	fmt.Fprintf(&sb, "\nTable 4-style — manifestation latency (dynamic instructions)\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s\n", "Workload", "<=10", "11-50", "51-400", ">400")
	for _, r := range rows {
		b := r.Res.LatencyBuckets()
		tot := b[0] + b[1] + b[2] + b[3]
		if tot == 0 {
			tot = 1
		}
		fmt.Fprintf(&sb, "%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", r.Workload,
			pct(b[0], tot), pct(b[1], tot), pct(b[2], tot), pct(b[3], tot))
	}
	haveDomains := false
	for _, r := range rows {
		if len(r.Res.ByDomain) > 0 {
			haveDomains = true
			break
		}
	}
	if haveDomains {
		fmt.Fprintf(&sb, "\nCrash geography — memory-symptom faults by isolation domain\n")
		fmt.Fprintf(&sb, "%-10s", "Workload")
		for d := machine.DomainID(0); d < machine.NumDomains; d++ {
			fmt.Fprintf(&sb, " %8s", d)
		}
		sb.WriteByte('\n')
		for _, r := range rows {
			fmt.Fprintf(&sb, "%-10s", r.Workload)
			for d := machine.DomainID(0); d < machine.NumDomains; d++ {
				fmt.Fprintf(&sb, " %8d", r.Res.ByDomain[d])
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func pct(a, b int) float64 { return 100 * float64(a) / float64(b) }

// CensusStudy computes Table 5 for all workloads. The per-workload
// censuses are independent pure analyses, so they run one per CPU.
func CensusStudy(p workloads.Params) []armor.CensusRow {
	ws := workloads.All()
	rows := make([]armor.CensusRow, len(ws))
	parallel.ForEach(len(ws), 0, func(i int) error {
		rows[i] = armor.Census(ws[i].Module(p))
		return nil
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].Module < rows[j].Module })
	return rows
}

// FormatCensus renders Table 5.
func FormatCensus(rows []armor.CensusRow) string {
	var sb strings.Builder
	sb.WriteString("Table 5-style — address-computation census\n")
	fmt.Fprintf(&sb, "%-10s %12s %12s %12s\n", "Workload", "MemAccesses", "MultiOp%", "AvgOps")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12d %11.2f%% %12.2f\n", r.Module, r.MemAccesses, r.PctMulti(), r.AvgOps())
	}
	return sb.String()
}

// ArmorRow is one Table 8 row.
type ArmorRow struct {
	Workload    string
	Kernels     int
	AvgInstrs   float64
	CompileTime time.Duration
	ArmorTime   time.Duration
	LivenessPct float64
	TableBytes  int
	LibBytes    int
}

// ArmorStudy builds every evaluated workload with CARE and reports the
// Table 8 statistics.
func ArmorStudy(opt int, p workloads.Params, evaluatedOnly bool) ([]ArmorRow, error) {
	ws := workloads.All()
	if evaluatedOnly {
		ws = workloads.Evaluated()
	}
	rows := make([]ArmorRow, len(ws))
	err := parallel.ForEach(len(ws), 0, func(i int) error {
		w := ws[i]
		bin, err := core.Build(w.Module(p), core.BuildOptions{OptLevel: opt, Defenses: []string{"care"}})
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		s := bin.DefenseStats["care"]
		lp := 0.0
		if s.TotalTime > 0 {
			lp = 100 * float64(s.AnalysisTime) / float64(s.TotalTime)
		}
		rows[i] = ArmorRow{
			Workload:    w.Name,
			Kernels:     s.NumKernels,
			AvgInstrs:   s.AvgKernelInstrs(),
			CompileTime: bin.CompileTime,
			ArmorTime:   s.TotalTime,
			LivenessPct: lp,
			TableBytes:  len(bin.RecoveryTable),
			LibBytes:    len(bin.RecoveryLib),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatArmor renders Table 8.
func FormatArmor(rows []ArmorRow) string {
	var sb strings.Builder
	sb.WriteString("Table 8-style — recovery-kernel statistics\n")
	fmt.Fprintf(&sb, "%-10s %8s %10s %14s %14s %10s %10s\n",
		"Workload", "Kernels", "AvgInstrs", "Compile", "Armor", "Table(B)", "Lib(B)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8d %10.2f %14s %14s %10d %10d\n",
			r.Workload, r.Kernels, r.AvgInstrs, r.CompileTime.Round(time.Microsecond),
			r.ArmorTime.Round(time.Microsecond), r.TableBytes, r.LibBytes)
	}
	return sb.String()
}

// CoverageRow is one bar of Figure 7/9/12.
type CoverageRow struct {
	Workload string
	OptLevel int
	Res      *faultinject.CoverageResult
}

// CoverageStudy runs the §5.2/§5.3 evaluation over the named workloads
// at both optimisation levels. The (workload, opt-level) grid cells run
// concurrently on up to workers goroutines (<=0 means one per CPU),
// each spreading its injection attempts over the same budget; rows come
// back in (names, opt) order regardless of the worker count.
func CoverageStudy(names []string, trials int, model faultinject.Model, seed int64, p workloads.Params, cfg safeguard.Config, workers int) ([]CoverageRow, error) {
	opts := []int{0, 1}
	rows := make([]CoverageRow, len(names)*len(opts))
	err := parallel.ForEach(len(rows), workers, func(i int) error {
		name, opt := names[i/len(opts)], opts[i%len(opts)]
		bin, err := BuildWorkload(name, p, opt, []string{"care"})
		if err != nil {
			return err
		}
		exp := &faultinject.CoverageExperiment{
			App: bin, Trials: trials, Model: model, Seed: seed, Safeguard: cfg, Workers: workers,
		}
		res, err := exp.Run()
		if err != nil && res == nil {
			return fmt.Errorf("%s O%d: %w", name, opt, err)
		}
		rows[i] = CoverageRow{Workload: name, OptLevel: opt, Res: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatCoverage renders Figures 7 and 9 as a table.
func FormatCoverage(rows []CoverageRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 7/9-style — fault coverage and recovery time\n")
	fmt.Fprintf(&sb, "%-10s %4s %8s %10s %10s %12s %9s\n",
		"Workload", "Opt", "SEGV", "Recovered", "Coverage", "MeanRecTime", "Prep%")
	var totCov float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s  O%d %8d %10d %9.1f%% %12s %8.1f%%\n",
			r.Workload, r.OptLevel, r.Res.SigsegvTrials, r.Res.Recovered,
			100*r.Res.Coverage(), r.Res.MeanRecoveryTime().Round(time.Microsecond),
			100*r.Res.PrepFraction())
		totCov += r.Res.Coverage()
	}
	fmt.Fprintf(&sb, "average coverage: %.2f%%\n", 100*totCov/float64(len(rows)))
	return sb.String()
}

// ParallelRow is one Figure 10 pair.
type ParallelRow struct {
	Workload string
	Base     *cluster.JobResult
	Faulty   *cluster.JobResult
}

// ParallelStudy reproduces Figure 10: each evaluated workload runs as an
// N-rank job with and without a CARE-recoverable fault at rank 0.
// opts.WarmStart/SnapEvery speed up the recoverable-injection search
// that precedes each job, Tier selects the interpreter tier for both
// the search and every rank, and opts.Safeguard (with the checkpoint
// cadence/model) configures each rank's recovery chain — e.g. the
// domain-rewind escalation stage.
func ParallelStudy(names []string, ranks, threads, opt int, p workloads.Params, seed int64, opts StudyOptions) ([]ParallelRow, error) {
	var rows []ParallelRow
	for _, name := range names {
		bin, err := BuildWorkload(name, p, opt, []string{"care"})
		if err != nil {
			return nil, err
		}
		inj, err := cluster.FindRecoverableInjection(bin, seed,
			cluster.SearchOptions{
				WarmStart: opts.WarmStart, SnapEvery: opts.SnapEvery, Tier: opts.Tier,
				Shards: opts.Shards, ShardExec: opts.ShardExec,
				Build: shard.BuildSpec{Workload: name, Params: p, OptLevel: opt, Defenses: []string{"care"}},
				Store: opts.Store,
			})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		cfg := cluster.Config{
			Workload: name, Ranks: ranks, ThreadsPerRank: threads, Protected: true, Tier: opts.Tier,
			Safeguard:              opts.Safeguard,
			CheckpointEveryResults: opts.CheckpointEveryResults,
			CheckpointModel:        opts.CheckpointModel,
			Workers:                opts.Workers,
			Progress:               opts.Progress,
		}
		base, err := cluster.RunJob(cfg, bin, nil)
		if err != nil {
			return nil, err
		}
		faulty, err := cluster.RunJob(cfg, bin, inj)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ParallelRow{Workload: name, Base: base, Faulty: faulty})
	}
	return rows, nil
}

// FormatParallel renders Figure 10. Every number in the table is
// derived from the two job traces: the job durations and the recovery
// stall come out of the KindJob / KindRankStall rows of a
// trace.Compare between the baseline and faulty runs, so the report is
// a view over the trace spine rather than a recomputation.
func FormatParallel(rows []ParallelRow) string {
	var sb strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "Figure 10-style — parallel jobs on %d ranks (%d cores)\n",
			rows[0].Base.Ranks, rows[0].Base.Cores)
	}
	fmt.Fprintf(&sb, "%-10s %14s %14s %12s %10s %12s %9s\n",
		"Workload", "Normal", "Fault+CARE", "Stall", "Delta%", "@60s-job", "Survived")
	for _, r := range rows {
		deltas := trace.Compare(
			trace.Aggregate(r.Base.Trace.Spans()),
			trace.Aggregate(r.Faulty.Trace.Spans()))
		job := trace.DeltaFor(deltas, trace.KindJob)
		stall := trace.DeltaFor(deltas, trace.KindRankStall)
		d := 0.0
		if job.WallA > 0 {
			d = float64(job.Diff) / float64(job.WallA) * 100
		}
		// The stall is an absolute cost; scaled to a realistic job
		// length (the paper's jobs run minutes) it vanishes.
		at60 := float64(stall.WallB) / float64(60*time.Second) * 100
		fmt.Fprintf(&sb, "%-10s %14s %14s %12s %9.3f%% %11.5f%% %9v\n",
			r.Workload, job.WallA.Round(time.Microsecond),
			job.WallB.Round(time.Microsecond),
			stall.WallB.Round(time.Microsecond), d, at60, r.Faulty.Completed)
	}
	return sb.String()
}

// CRStudy reproduces the §5.4 checkpoint/restart comparison for GTC-P.
func CRStudy(intervals []int, steps, faultStep int, p workloads.Params) ([]*cluster.CRResult, error) {
	w, err := workloads.Get("GTC-P")
	if err != nil {
		return nil, err
	}
	p.Steps = steps
	var out []*cluster.CRResult
	for _, iv := range intervals {
		r, err := cluster.RunCheckpointRestart(w, p, 0, iv, faultStep, checkpoint.DefaultCostModel(), 1)
		if err != nil {
			return nil, fmt.Errorf("interval %d: %w", iv, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatCR renders the C/R comparison.
func FormatCR(rows []*cluster.CRResult, careStall time.Duration) string {
	var sb strings.Builder
	sb.WriteString("§5.4-style — checkpoint/restart recovery cost (GTC-P)\n")
	fmt.Fprintf(&sb, "%-9s %6s %12s %10s %10s %12s %14s\n",
		"Interval", "Ckpts", "CkptIO", "Requeue", "Read", "Recompute", "RecoveryTotal")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9d %6d %12s %10s %10s %12s %14s\n",
			r.Interval, r.Checkpoints, r.CheckpointIO.Round(time.Microsecond),
			r.Requeue.Round(time.Millisecond), r.RestartRead.Round(time.Microsecond),
			r.Recompute.Round(time.Microsecond), r.RecoveryTotal.Round(time.Microsecond))
	}
	if careStall > 0 {
		fmt.Fprintf(&sb, "CARE recovery stall for the same class of fault: %s\n", careStall.Round(time.Microsecond))
	}
	return sb.String()
}

// BLASRow is Table 9.
type BLASRow struct {
	LibKernels    int
	DriverKernels int
	LibCompile    time.Duration
	LibArmor      time.Duration
	DriverCompile time.Duration
	DriverArmor   time.Duration
	Coverage      float64
	MeanRecovery  time.Duration
	SigsegvTrials int
}

// BLASStudy reproduces Table 9 (§5.5).
func BLASStudy(trials int, opt int, seed int64) (*BLASRow, error) {
	lib, err := core.BuildLib(blas.Library(), opt, 0, []string{"care"})
	if err != nil {
		return nil, err
	}
	drv, err := core.Build(blas.Sblat1(5), core.BuildOptions{OptLevel: opt, Defenses: []string{"care"}}, lib)
	if err != nil {
		return nil, err
	}
	exp := &faultinject.CoverageExperiment{
		App: drv, Libs: []*core.Binary{lib},
		TargetImages: []string{"sblat1", "libblas"},
		Trials:       trials, Seed: seed,
	}
	res, err := exp.Run()
	if err != nil && res == nil {
		return nil, err
	}
	return &BLASRow{
		LibKernels:    lib.DefenseStats["care"].NumKernels,
		DriverKernels: drv.DefenseStats["care"].NumKernels,
		LibCompile:    lib.CompileTime,
		LibArmor:      lib.DefenseStats["care"].TotalTime,
		DriverCompile: drv.CompileTime,
		DriverArmor:   drv.DefenseStats["care"].TotalTime,
		Coverage:      res.Coverage(),
		MeanRecovery:  res.MeanRecoveryTime(),
		SigsegvTrials: res.SigsegvTrials,
	}, nil
}

// FormatBLAS renders Table 9.
func FormatBLAS(r *BLASRow) string {
	var sb strings.Builder
	sb.WriteString("Table 9-style — BLAS / sblat1\n")
	fmt.Fprintf(&sb, "%-8s %9s %14s %14s\n", "", "Kernels", "Compile", "Armor")
	fmt.Fprintf(&sb, "%-8s %9d %14s %14s\n", "libblas", r.LibKernels, r.LibCompile.Round(time.Microsecond), r.LibArmor.Round(time.Microsecond))
	fmt.Fprintf(&sb, "%-8s %9d %14s %14s\n", "sblat1", r.DriverKernels, r.DriverCompile.Round(time.Microsecond), r.DriverArmor.Round(time.Microsecond))
	fmt.Fprintf(&sb, "coverage %.2f%% over %d SIGSEGV trials, mean recovery %s\n",
		100*r.Coverage, r.SigsegvTrials, r.MeanRecovery.Round(time.Microsecond))
	return sb.String()
}

// EvaluatedNames returns the §5 workload names.
func EvaluatedNames() []string {
	var names []string
	for _, w := range workloads.Evaluated() {
		names = append(names, w.Name)
	}
	return names
}

// AllNames returns every workload name.
func AllNames() []string {
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	return names
}

// BLASStudy2 is BLASStudy with an explicit Safeguard configuration
// (used by the induction-recovery extension benchmark).
func BLASStudy2(trials, opt int, seed int64, cfg safeguard.Config) (*BLASRow, error) {
	lib, err := core.BuildLib(blas.Library(), opt, 0, []string{"care"})
	if err != nil {
		return nil, err
	}
	drv, err := core.Build(blas.Sblat1(5), core.BuildOptions{OptLevel: opt, Defenses: []string{"care"}}, lib)
	if err != nil {
		return nil, err
	}
	exp := &faultinject.CoverageExperiment{
		App: drv, Libs: []*core.Binary{lib},
		TargetImages: []string{"sblat1", "libblas"},
		Trials:       trials, Seed: seed, Safeguard: cfg,
	}
	res, err := exp.Run()
	if err != nil && res == nil {
		return nil, err
	}
	return &BLASRow{
		LibKernels:    lib.DefenseStats["care"].NumKernels,
		DriverKernels: drv.DefenseStats["care"].NumKernels,
		Coverage:      res.Coverage(),
		MeanRecovery:  res.MeanRecoveryTime(),
		SigsegvTrials: res.SigsegvTrials,
	}, nil
}
