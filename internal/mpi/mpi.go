// Package mpi provides the message-passing substrate for multi-rank
// runs: blocking collectives (allreduce, barrier) with deterministic
// rank-ordered reduction, and a round-robin scheduler that interleaves
// the rank CPUs, parking them while a collective is incomplete — the
// OpenMPI stand-in for the paper's 3072-core experiments.
package mpi

import (
	"fmt"
	"sort"

	"care/internal/hostenv"
	"care/internal/machine"
)

// World owns the collective state of an N-rank job. Collectives are
// pipelined: a fast rank that consumed instance k may arrive at instance
// k+1 while slower ranks are still parked on k, so instances are keyed
// by a per-rank sequence number (an MPI implementation's per-
// communicator operation count).
type World struct {
	N int

	rankSeq   []uint64
	instances map[uint64]*collInstance
	// Seq is the lowest completed-and-garbage-collected sequence number
	// (diagnostics).
	Seq uint64
}

type collInstance struct {
	kind     string
	arrived  map[int]float64
	ready    bool
	result   float64
	consumed int
}

// NewWorld creates the collective state for n ranks.
func NewWorld(n int) *World {
	return &World{N: n, rankSeq: make([]uint64, n), instances: map[uint64]*collInstance{}}
}

// Env returns rank r's host environment wired to this world.
func (w *World) Env(r int) *hostenv.Env {
	return &hostenv.Env{Rank: r, Size: w.N, Coll: (*coll)(w)}
}

// coll adapts World to hostenv.Collectives.
type coll World

func (c *coll) op(kind string, rank int, v float64) (float64, bool) {
	w := (*World)(c)
	seq := w.rankSeq[rank]
	inst := w.instances[seq]
	if inst == nil {
		inst = &collInstance{kind: kind, arrived: map[int]float64{}}
		w.instances[seq] = inst
	}
	if inst.kind != kind {
		panic(fmt.Sprintf("mpi: mismatched collectives at seq %d: %s vs %s", seq, inst.kind, kind))
	}
	if _, dup := inst.arrived[rank]; !dup {
		inst.arrived[rank] = v
	}
	if !inst.ready && len(inst.arrived) == w.N {
		// Deterministic rank-ordered reduction.
		ranks := make([]int, 0, w.N)
		for r := range inst.arrived {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		s := 0.0
		for _, r := range ranks {
			s += inst.arrived[r]
		}
		inst.result = s
		inst.ready = true
	}
	if !inst.ready {
		return 0, false
	}
	w.rankSeq[rank] = seq + 1
	inst.consumed++
	if inst.consumed == w.N {
		delete(w.instances, seq)
		w.Seq = seq + 1
	}
	return inst.result, true
}

// AllreduceSum implements hostenv.Collectives.
func (c *coll) AllreduceSum(rank int, v float64) (float64, bool) {
	return c.op("allreduce", rank, v)
}

// Barrier implements hostenv.Collectives.
func (c *coll) Barrier(rank int) bool {
	_, ok := c.op("barrier", rank, 0)
	return ok
}

// RankState is the scheduler's view of one rank.
type RankState struct {
	CPU *machine.CPU
	// Done marks normal exit; Dead marks an unhandled trap.
	Done bool
	Dead bool
}

// RunResult summarises a world execution.
type RunResult struct {
	// Completed is true when every rank exited normally.
	Completed bool
	// DeadRank is the first rank that died (-1 if none).
	DeadRank int
	// DeadTrap is its fatal trap.
	DeadTrap *machine.Trap
	// MaxDyn is the maximum retired-instruction count across ranks —
	// the job's virtual completion time in instruction units.
	MaxDyn uint64
	// TotalDyn sums instructions across ranks.
	TotalDyn uint64
}

// Run interleaves the rank CPUs round-robin with the given quantum until
// all ranks exit, one dies, or no rank can make progress. A dead rank
// makes the collectives unsatisfiable, so the run stops as soon as every
// surviving rank is parked (the MPI job-kill behaviour the paper's C/R
// baseline suffers).
func Run(w *World, cpus []*machine.CPU, quantum uint64) (*RunResult, error) {
	if len(cpus) != w.N {
		return nil, fmt.Errorf("mpi: %d cpus for %d ranks", len(cpus), w.N)
	}
	if quantum == 0 {
		quantum = 50_000
	}
	res := &RunResult{DeadRank: -1}
	for {
		running := 0
		blocked := 0
		exited := 0
		progressed := false
		for r, c := range cpus {
			switch c.Status {
			case machine.StatusExited:
				exited++
				continue
			case machine.StatusTrapped:
				if res.DeadRank == -1 {
					res.DeadRank = r
					res.DeadTrap = c.PendingTrap
				}
				continue
			case machine.StatusBlocked:
				c.Unblock()
			}
			before := c.Dyn
			c.Run(quantum)
			if c.Dyn != before || c.Status == machine.StatusExited {
				progressed = true
			}
			switch c.Status {
			case machine.StatusBlocked:
				blocked++
			case machine.StatusExited:
				exited++
			case machine.StatusTrapped:
				if res.DeadRank == -1 {
					res.DeadRank = r
					res.DeadTrap = c.PendingTrap
				}
			default:
				running++
			}
		}
		if exited == w.N {
			res.Completed = true
			break
		}
		if res.DeadRank >= 0 && running == 0 {
			break // surviving ranks are parked on a dead collective
		}
		if !progressed && running == 0 && blocked > 0 && res.DeadRank == -1 {
			return nil, fmt.Errorf("mpi: deadlock with %d ranks blocked, %d exited", blocked, exited)
		}
	}
	for _, c := range cpus {
		if c.Dyn > res.MaxDyn {
			res.MaxDyn = c.Dyn
		}
		res.TotalDyn += c.Dyn
	}
	return res, nil
}
