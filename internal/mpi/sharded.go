package mpi

import (
	"fmt"

	"care/internal/hostenv"
	"care/internal/machine"
	"care/internal/parallel"
)

// Sharded execution: RunSharded drives the same World as Run, but runs
// every live rank's quantum concurrently on a bounded worker pool and
// batches collective traffic into a serial exchange phase between
// supersteps — one reduction pass per superstep instead of per-rank
// wakeups, which is what lets a 512-rank job use the whole machine.
//
// The result is identical to Run's, not merely equivalent: a blocked
// host call parks the CPU *before* the instruction retires (the call
// re-issues after unblocking), so a rank's retirement sequence depends
// only on its own program and the collective results it consumes — and
// those are rank-ordered sums, independent of arrival order. Deferring
// arrivals to the exchange phase therefore shifts only scheduling, not
// one architectural bit. TestRunShardedMatchesRun pins this.

// rankColl is one rank's lock-free proxy onto the shared World. The
// rank goroutine touches it alone during a superstep; the exchange
// phase (single-threaded, after the pool joins) is the only other
// toucher. The superstep barrier orders the two.
type rankColl struct {
	// pending is an arrival the exchange has not yet forwarded.
	pendingKind string
	pendingVal  float64
	hasPending  bool
	// sent marks an arrival forwarded and awaiting its result.
	sent bool
	// ready/result is the published collective result, not yet consumed.
	ready  bool
	result float64
	// consumed tells the exchange to apply this rank's consumption
	// bookkeeping (sequence advance, instance retirement).
	consumed bool
}

// op is the rank-side half of the collective: consume a published
// result if one is waiting, otherwise record the arrival for the next
// exchange and park.
func (p *rankColl) op(kind string, v float64) (float64, bool) {
	if p.ready {
		p.ready = false
		p.consumed = true
		return p.result, true
	}
	if !p.hasPending && !p.sent {
		p.pendingKind, p.pendingVal, p.hasPending = kind, v, true
	}
	return 0, false
}

func (p *rankColl) AllreduceSum(_ int, v float64) (float64, bool) { return p.op("allreduce", v) }
func (p *rankColl) Barrier(_ int) bool                            { _, ok := p.op("barrier", 0); return ok }

// arrive records rank's value at its current collective instance
// without consuming — the exchange-phase half of coll.op.
func (w *World) arrive(kind string, rank int, v float64) {
	seq := w.rankSeq[rank]
	inst := w.instances[seq]
	if inst == nil {
		inst = &collInstance{kind: kind, arrived: map[int]float64{}}
		w.instances[seq] = inst
	}
	if inst.kind != kind {
		panic(fmt.Sprintf("mpi: mismatched collectives at seq %d: %s vs %s", seq, inst.kind, kind))
	}
	if _, dup := inst.arrived[rank]; !dup {
		inst.arrived[rank] = v
	}
	if !inst.ready && len(inst.arrived) == w.N {
		// Deterministic rank-ordered reduction, as in coll.op.
		s := 0.0
		for r := 0; r < w.N; r++ {
			s += inst.arrived[r]
		}
		inst.result = s
		inst.ready = true
	}
}

// resultFor reports rank's current instance result, if complete.
func (w *World) resultFor(rank int) (float64, bool) {
	inst := w.instances[w.rankSeq[rank]]
	if inst == nil || !inst.ready {
		return 0, false
	}
	return inst.result, true
}

// consume advances rank past its current instance and retires the
// instance once every rank has consumed it.
func (w *World) consume(rank int) {
	seq := w.rankSeq[rank]
	inst := w.instances[seq]
	w.rankSeq[rank] = seq + 1
	inst.consumed++
	if inst.consumed == w.N {
		delete(w.instances, seq)
		w.Seq = seq + 1
	}
}

// RunSharded executes the world with superstep parallelism: each
// superstep gives every live rank one quantum on a pool of up to
// workers goroutines (<=0 = one per CPU), then a serial exchange phase
// batches the superstep's collective arrivals, completes instances, and
// publishes results. The RunResult is identical to Run's on the same
// world; only wall-clock differs. Each rank's hostenv Coll is pointed
// at its proxy for the duration and restored on return. progress, when
// non-nil, is called after every superstep with (ranksExited, ranks) —
// heartbeat reporting only.
func RunSharded(w *World, cpus []*machine.CPU, quantum uint64, workers int, progress func(done, total int)) (*RunResult, error) {
	if len(cpus) != w.N {
		return nil, fmt.Errorf("mpi: %d cpus for %d ranks", len(cpus), w.N)
	}
	if quantum == 0 {
		quantum = 50_000
	}
	proxies := make([]*rankColl, w.N)
	restore := make([]hostenv.Collectives, w.N)
	for r, c := range cpus {
		proxies[r] = &rankColl{}
		restore[r] = c.Env.Coll
		c.Env.Coll = proxies[r]
	}
	defer func() {
		for r, c := range cpus {
			c.Env.Coll = restore[r]
		}
	}()

	res := &RunResult{DeadRank: -1}
	for {
		progressed := false
		// Superstep: one quantum per live rank, in parallel. Dyn deltas
		// are read after the pool joins.
		before := make([]uint64, w.N)
		_ = parallel.ForEach(w.N, workers, func(r int) error {
			c := cpus[r]
			before[r] = c.Dyn
			switch c.Status {
			case machine.StatusExited, machine.StatusTrapped:
				return nil
			case machine.StatusBlocked:
				c.Unblock()
			}
			c.Run(quantum)
			return nil
		})
		running, blocked, exited := 0, 0, 0
		for r, c := range cpus {
			switch c.Status {
			case machine.StatusExited:
				exited++
				if c.Dyn != before[r] {
					progressed = true
				}
			case machine.StatusTrapped:
				if res.DeadRank == -1 {
					res.DeadRank = r
					res.DeadTrap = c.PendingTrap
				}
			case machine.StatusBlocked:
				blocked++
				if c.Dyn != before[r] {
					progressed = true
				}
			default:
				running++
				progressed = true
			}
		}
		// Exchange: apply consumptions, then forward arrivals, then
		// publish completed results — a batched reduction per superstep
		// instead of per-rank collective wakeups.
		published := false
		for r := range proxies {
			if proxies[r].consumed {
				proxies[r].consumed = false
				proxies[r].sent = false
				w.consume(r)
				progressed = true
			}
		}
		for r, p := range proxies {
			if p.hasPending {
				w.arrive(p.pendingKind, r, p.pendingVal)
				p.hasPending = false
				p.sent = true
				progressed = true
			}
		}
		for r, p := range proxies {
			if p.sent && !p.ready {
				if v, ok := w.resultFor(r); ok {
					p.ready, p.result = true, v
					published = true
				}
			}
		}
		awaiting := false
		for _, p := range proxies {
			awaiting = awaiting || p.ready
		}
		if progress != nil {
			progress(exited, w.N)
		}
		if exited == w.N {
			res.Completed = true
			break
		}
		if res.DeadRank >= 0 && running == 0 && !awaiting {
			break // survivors are parked on collectives the dead rank starves
		}
		if !progressed && !published && !awaiting && running == 0 && blocked > 0 && res.DeadRank == -1 {
			return nil, fmt.Errorf("mpi: deadlock with %d ranks blocked, %d exited", blocked, exited)
		}
	}
	for _, c := range cpus {
		if c.Dyn > res.MaxDyn {
			res.MaxDyn = c.Dyn
		}
		res.TotalDyn += c.Dyn
	}
	return res, nil
}
