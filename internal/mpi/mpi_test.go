package mpi

import (
	"testing"

	"care/internal/core"
	"care/internal/ir"
	"care/internal/irbuild"
	"care/internal/machine"
)

// buildAllreduceProgram: each rank contributes (rank+1) in `rounds`
// consecutive allreduces, checking the result each time, then emits it.
func buildAllreduceProgram(rounds int) *ir.Module {
	m := ir.NewModule("mpitest")
	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	rank := fb.HostCall("mpi_rank", ir.I64)
	mine := fb.IToF(fb.Add(rank, irbuild.I(1)))
	for r := 0; r < rounds; r++ {
		sum := fb.HostCall("mpi_allreduce_sum_f64", ir.F64, mine)
		fb.Result(sum)
		fb.HostCall("mpi_barrier", ir.Void)
	}
	fb.Ret(irbuild.I(0))
	if err := ir.VerifyModule(m); err != nil {
		panic(err)
	}
	return m
}

func runWorld(t *testing.T, n, rounds int, quantum uint64) (*RunResult, []*core.Process) {
	t.Helper()
	bin, err := core.Build(buildAllreduceProgram(rounds), core.BuildOptions{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(n)
	cpus := make([]*machine.CPU, n)
	procs := make([]*core.Process, n)
	for r := 0; r < n; r++ {
		p, err := core.NewProcess(core.ProcessConfig{App: bin, Env: w.Env(r)})
		if err != nil {
			t.Fatal(err)
		}
		procs[r] = p
		cpus[r] = p.CPU
	}
	res, err := Run(w, cpus, quantum)
	if err != nil {
		t.Fatal(err)
	}
	return res, procs
}

func TestAllreduceSumsAllRanks(t *testing.T) {
	res, procs := runWorld(t, 5, 3, 0)
	if !res.Completed {
		t.Fatalf("world did not complete: %+v", res)
	}
	want := float64(1 + 2 + 3 + 4 + 5)
	for r, p := range procs {
		if len(p.Results()) != 3 {
			t.Fatalf("rank %d emitted %d results", r, len(p.Results()))
		}
		for _, v := range p.Results() {
			if v != want {
				t.Fatalf("rank %d saw allreduce = %v, want %v", r, v, want)
			}
		}
	}
}

// TestSchedulingInvariance: results must not depend on the scheduler
// quantum (the determinism property campaign comparisons rely on).
func TestSchedulingInvariance(t *testing.T) {
	_, pa := runWorld(t, 4, 5, 100)
	_, pb := runWorld(t, 4, 5, 50_000)
	for r := range pa {
		ra, rb := pa[r].Results(), pb[r].Results()
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("rank %d result %d differs across quanta: %v vs %v", r, i, ra[i], rb[i])
			}
		}
	}
}

func TestSingleRankWorld(t *testing.T) {
	res, procs := runWorld(t, 1, 2, 0)
	if !res.Completed || procs[0].Results()[0] != 1 {
		t.Fatalf("single rank world broken: %+v %v", res, procs[0].Results())
	}
}

func TestDeadRankParksSurvivors(t *testing.T) {
	bin, err := core.Build(buildAllreduceProgram(2), core.BuildOptions{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(3)
	cpus := make([]*machine.CPU, 3)
	for r := 0; r < 3; r++ {
		p, err := core.NewProcess(core.ProcessConfig{App: bin, Env: w.Env(r)})
		if err != nil {
			t.Fatal(err)
		}
		cpus[r] = p.CPU
	}
	// Kill rank 1 almost immediately: corrupt its PC to unmapped code.
	fired := false
	cpus[1].AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if !fired && c.Dyn > 20 {
			fired = true
			c.PC = 0x1234
		}
	}
	res, err := Run(w, cpus, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("world completed despite a dead rank")
	}
	if res.DeadRank != 1 {
		t.Fatalf("dead rank = %d", res.DeadRank)
	}
	if res.DeadTrap == nil || res.DeadTrap.Sig != machine.SigILL {
		t.Fatalf("dead trap = %v", res.DeadTrap)
	}
}

func TestMismatchedCollectivePanics(t *testing.T) {
	w := NewWorld(2)
	c := (*coll)(w)
	if _, ok := c.AllreduceSum(0, 1.0); ok {
		t.Fatal("lone arrival completed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched collective kinds accepted")
		}
	}()
	c.Barrier(1) // rank 1 calls a barrier while rank 0 is in allreduce
}

func TestPipelinedCollectives(t *testing.T) {
	// A fast rank can consume instance k and arrive at k+1 before slow
	// ranks consumed k.
	w := NewWorld(2)
	c := (*coll)(w)
	if _, ok := c.AllreduceSum(0, 1); ok {
		t.Fatal("premature completion")
	}
	v, ok := c.AllreduceSum(1, 2) // completes instance 0 for rank 1
	if !ok || v != 3 {
		t.Fatalf("rank1 instance0: %v %v", v, ok)
	}
	// Rank 1 races ahead to instance 1.
	if _, ok := c.AllreduceSum(1, 10); ok {
		t.Fatal("instance1 completed with one rank")
	}
	// Rank 0 retries instance 0 and gets the old result.
	v, ok = c.AllreduceSum(0, 1)
	if !ok || v != 3 {
		t.Fatalf("rank0 instance0 retry: %v %v", v, ok)
	}
	// Now rank 0 arrives at instance 1 and completes it.
	v, ok = c.AllreduceSum(0, 20)
	if !ok || v != 30 {
		t.Fatalf("rank0 instance1: %v %v", v, ok)
	}
	v, ok = c.AllreduceSum(1, 10)
	if !ok || v != 30 {
		t.Fatalf("rank1 instance1 retry: %v %v", v, ok)
	}
}
