// Package irbuild layers structured control flow over the raw ir.Builder
// so that workload front ends read like the C/Fortran loops they model.
// Loops are built with proper SSA phis for the induction variable and
// any loop-carried values — exactly what clang produces after mem2reg —
// which is what gives the O1 pipeline real induction variables to keep
// in registers (the property CARE's evaluation hinges on).
package irbuild

import (
	"fmt"

	"care/internal/ir"
)

// FB is a function-building context.
type FB struct {
	*ir.Builder
}

// New wraps a builder positioned inside a function.
func New(b *ir.Builder) *FB { return &FB{Builder: b} }

// I is shorthand for an integer constant.
func I(v int64) *ir.Const { return ir.ConstInt(v) }

// F is shorthand for a float constant.
func F(v float64) *ir.Const { return ir.ConstFloat(v) }

// For builds `for i = lo; i < hi; i += step` with loop-carried values.
// body receives the induction variable and the current carried values
// and returns their next-iteration values (same arity). For returns the
// carried values after the loop.
func (fb *FB) For(lo, hi ir.Value, step int64, carried []ir.Value, body func(i ir.Value, c []ir.Value) []ir.Value) []ir.Value {
	pre := fb.Blk
	header := fb.NewBlock("for")
	bodyB := fb.NewBlock("body")
	exit := fb.NewBlock("endfor")
	fb.Br(header)

	fb.SetBlock(header)
	iphi := fb.Phi(ir.I64)
	phis := make([]*ir.Instr, len(carried))
	cvals := make([]ir.Value, len(carried))
	for k, cv := range carried {
		phis[k] = fb.Phi(cv.Type())
		cvals[k] = phis[k]
	}
	cond := fb.ICmp(ir.OpICmpSLT, iphi, hi)
	fb.CondBr(cond, bodyB, exit)

	fb.SetBlock(bodyB)
	next := body(iphi, cvals)
	if len(next) != len(carried) {
		panic(fmt.Sprintf("irbuild: For body returned %d values, want %d", len(next), len(carried)))
	}
	latch := fb.Blk
	inext := fb.Add(iphi, I(step))
	fb.Br(header)

	ir.AddIncoming(iphi, lo, pre)
	ir.AddIncoming(iphi, inext, latch)
	for k := range carried {
		ir.AddIncoming(phis[k], carried[k], pre)
		ir.AddIncoming(phis[k], next[k], latch)
	}
	fb.SetBlock(exit)
	out := make([]ir.Value, len(carried))
	for k := range phis {
		out[k] = phis[k]
	}
	return out
}

// ForN is For with no carried values.
func (fb *FB) ForN(lo, hi ir.Value, step int64, body func(i ir.Value)) {
	fb.For(lo, hi, step, nil, func(i ir.Value, _ []ir.Value) []ir.Value {
		body(i)
		return nil
	})
}

// If builds an if/else whose branches produce values; the returned
// values are join phis. Either branch function may create further
// blocks.
func (fb *FB) If(cond ir.Value, then func() []ir.Value, els func() []ir.Value) []ir.Value {
	thenB := fb.NewBlock("then")
	elseB := fb.NewBlock("else")
	join := fb.NewBlock("endif")
	fb.CondBr(cond, thenB, elseB)

	fb.SetBlock(thenB)
	tv := then()
	thenEnd := fb.Blk
	fb.Br(join)

	fb.SetBlock(elseB)
	var ev []ir.Value
	if els != nil {
		ev = els()
	}
	elseEnd := fb.Blk
	fb.Br(join)

	if len(tv) != len(ev) {
		panic(fmt.Sprintf("irbuild: If branches returned %d vs %d values", len(tv), len(ev)))
	}
	fb.SetBlock(join)
	out := make([]ir.Value, len(tv))
	for k := range tv {
		p := fb.Phi(tv[k].Type())
		ir.AddIncoming(p, tv[k], thenEnd)
		ir.AddIncoming(p, ev[k], elseEnd)
		out[k] = p
	}
	return out
}

// IfThen builds a value-less conditional.
func (fb *FB) IfThen(cond ir.Value, then func()) {
	fb.If(cond, func() []ir.Value { then(); return nil }, func() []ir.Value { return nil })
}

// Select returns cond ? a : b via an if/else join.
func (fb *FB) Select(cond, a, b ir.Value) ir.Value {
	return fb.If(cond,
		func() []ir.Value { return []ir.Value{a} },
		func() []ir.Value { return []ir.Value{b} })[0]
}

// Min returns min(a, b) for integers.
func (fb *FB) Min(a, b ir.Value) ir.Value {
	return fb.Select(fb.ICmp(ir.OpICmpSLE, a, b), a, b)
}

// Max returns max(a, b) for integers.
func (fb *FB) Max(a, b ir.Value) ir.Value {
	return fb.Select(fb.ICmp(ir.OpICmpSGE, a, b), a, b)
}

// LoadAt loads a[idx] with the given element kind.
func (fb *FB) LoadAt(t ir.Type, base, idx ir.Value) ir.Value {
	return fb.Load(t, fb.GEP(base, idx, 8))
}

// StoreAt stores v to a[idx].
func (fb *FB) StoreAt(v, base, idx ir.Value) {
	fb.Store(v, fb.GEP(base, idx, 8))
}

// AddF accumulates a[idx] += v.
func (fb *FB) AddF(base, idx, v ir.Value) {
	p := fb.GEP(base, idx, 8)
	old := fb.Load(ir.F64, p)
	fb.Store(fb.FAdd(old, v), p)
}

// Malloc allocates n 8-byte words on the simulated heap.
func (fb *FB) Malloc(words int64) ir.Value {
	return fb.HostCall("malloc", ir.Ptr, I(words*8))
}

// MallocN allocates a runtime-sized array of n words.
func (fb *FB) MallocN(words ir.Value) ir.Value {
	return fb.HostCall("malloc", ir.Ptr, fb.Mul(words, I(8)))
}

// Result emits one value of the program's result stream.
func (fb *FB) Result(v ir.Value) {
	if v.Type() != ir.F64 {
		v = fb.IToF(v)
	}
	fb.HostCall("result_f64", ir.Void, v)
}

// Assert aborts with the given code when cond (an i64 boolean) is false.
// Workloads use it the way the mini-apps use assert(): a corrupted state
// that violates an invariant manifests as SIGABRT.
func (fb *FB) Assert(cond ir.Value, code int64) {
	fb.IfThen(fb.ICmp(ir.OpICmpEQ, cond, I(0)), func() {
		fb.HostCall("abort", ir.Void, I(code))
	})
}

// Sqrt calls the sqrt host intrinsic.
func (fb *FB) Sqrt(v ir.Value) ir.Value { return fb.HostCall("sqrt", ir.F64, v) }
