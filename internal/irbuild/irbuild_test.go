package irbuild

import (
	"testing"

	"care/internal/interp"
	"care/internal/ir"
)

// run interprets a module's main and returns its result stream.
func run(t *testing.T, m *ir.Module) []float64 {
	t.Helper()
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := interp.Run(1<<24, m)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return res
}

func newMain(name string) (*ir.Module, *FB) {
	m := ir.NewModule(name)
	fb := New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	return m, fb
}

func TestForAccumulates(t *testing.T) {
	m, fb := newMain("t")
	out := fb.For(I(0), I(10), 1, []ir.Value{I(0)}, func(i ir.Value, c []ir.Value) []ir.Value {
		return []ir.Value{fb.Add(c[0], i)}
	})
	fb.Result(out[0])
	fb.Ret(I(0))
	if res := run(t, m); res[0] != 45 {
		t.Fatalf("sum 0..9 = %v", res[0])
	}
}

func TestForWithStep(t *testing.T) {
	m, fb := newMain("t")
	out := fb.For(I(0), I(10), 3, []ir.Value{I(0)}, func(i ir.Value, c []ir.Value) []ir.Value {
		return []ir.Value{fb.Add(c[0], I(1))}
	})
	fb.Result(out[0])
	fb.Ret(I(0))
	if res := run(t, m); res[0] != 4 { // 0,3,6,9
		t.Fatalf("iterations = %v", res[0])
	}
}

func TestForZeroTrips(t *testing.T) {
	m, fb := newMain("t")
	out := fb.For(I(5), I(5), 1, []ir.Value{F(7)}, func(i ir.Value, c []ir.Value) []ir.Value {
		return []ir.Value{F(0)}
	})
	fb.Result(out[0])
	fb.Ret(I(0))
	if res := run(t, m); res[0] != 7 {
		t.Fatalf("zero-trip loop must keep the initial value, got %v", res[0])
	}
}

func TestNestedLoopsCarry(t *testing.T) {
	m, fb := newMain("t")
	out := fb.For(I(0), I(3), 1, []ir.Value{I(0)}, func(i ir.Value, c []ir.Value) []ir.Value {
		return fb.For(I(0), I(4), 1, c, func(j ir.Value, c []ir.Value) []ir.Value {
			return []ir.Value{fb.Add(c[0], I(1))}
		})
	})
	fb.Result(out[0])
	fb.Ret(I(0))
	if res := run(t, m); res[0] != 12 {
		t.Fatalf("3x4 = %v", res[0])
	}
}

func TestIfJoinsValues(t *testing.T) {
	for _, c := range []struct {
		x    int64
		want float64
	}{{3, 30}, {8, 80}} {
		m, fb := newMain("t")
		cond := fb.ICmp(ir.OpICmpSLT, I(c.x), I(5))
		v := fb.If(cond,
			func() []ir.Value { return []ir.Value{I(30)} },
			func() []ir.Value { return []ir.Value{I(80)} })
		fb.Result(v[0])
		fb.Ret(I(0))
		if res := run(t, m); res[0] != c.want {
			t.Fatalf("x=%d: %v, want %v", c.x, res[0], c.want)
		}
	}
}

func TestSelectMinMax(t *testing.T) {
	m, fb := newMain("t")
	fb.Result(fb.Min(I(3), I(9)))
	fb.Result(fb.Max(I(3), I(9)))
	fb.Result(fb.Min(I(-4), I(-9)))
	fb.Ret(I(0))
	res := run(t, m)
	if res[0] != 3 || res[1] != 9 || res[2] != -9 {
		t.Fatalf("min/max: %v", res)
	}
}

func TestAssertAborts(t *testing.T) {
	m, fb := newMain("t")
	fb.Assert(fb.ICmp(ir.OpICmpSLT, I(10), I(5)), 99) // false -> abort
	fb.Ret(I(0))
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(1<<20, m); err == nil {
		t.Fatal("failed assert did not abort")
	}
}

func TestAssertPassesWhenTrue(t *testing.T) {
	m, fb := newMain("t")
	fb.Assert(fb.ICmp(ir.OpICmpSLT, I(1), I(5)), 99)
	fb.Result(I(1))
	fb.Ret(I(0))
	if res := run(t, m); res[0] != 1 {
		t.Fatal("assert true aborted")
	}
}

func TestLoadStoreHelpers(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal(&ir.Global{Name: "g", Size: 8 * 8})
	fb := New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	fb.StoreAt(F(2.5), g, I(3))
	fb.AddF(g, I(3), F(1.5))
	fb.Result(fb.LoadAt(ir.F64, g, I(3)))
	fb.Ret(I(0))
	if res := run(t, m); res[0] != 4 {
		t.Fatalf("AddF result %v", res[0])
	}
}

func TestMallocAndResultIntConversion(t *testing.T) {
	m, fb := newMain("t")
	p := fb.Malloc(4)
	fb.StoreAt(I(11), p, I(2))
	fb.Result(fb.LoadAt(ir.I64, p, I(2))) // int result converted to float
	fb.Ret(I(0))
	if res := run(t, m); res[0] != 11 {
		t.Fatalf("got %v", res[0])
	}
}

func TestForBodyArityChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch not caught")
		}
	}()
	_, fb := newMain("t")
	fb.For(I(0), I(3), 1, []ir.Value{I(0)}, func(i ir.Value, c []ir.Value) []ir.Value {
		return nil // wrong arity
	})
}
