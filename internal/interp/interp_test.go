package interp

import (
	"errors"
	"testing"

	"care/internal/ir"
	"care/internal/irbuild"
	"care/internal/machine"
)

func TestRunSimpleProgram(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	out := fb.For(irbuild.I(0), irbuild.I(5), 1, []ir.Value{irbuild.F(0)},
		func(i ir.Value, c []ir.Value) []ir.Value {
			return []ir.Value{fb.FAdd(c[0], fb.IToF(i))}
		})
	fb.Result(out[0])
	fb.Ret(irbuild.I(0))
	res, err := Run(0, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 10 {
		t.Fatalf("res %v", res)
	}
}

func TestStepLimit(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop) // infinite
	env := newEnvT(t, m)
	_, err := env.RunMain(10_000)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func newEnvT(t *testing.T, mods ...*ir.Module) *Interp {
	t.Helper()
	it, err := New(nil, mods...)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestMemoryFaultSurfaces(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	bad := fb.Add(irbuild.I(0x123450000), irbuild.I(8))
	// Forge a pointer via arithmetic: load must fault.
	gep := fb.GEP(fb.HostCall("malloc", ir.Ptr, irbuild.I(8)), bad, 8)
	fb.Result(fb.Load(ir.F64, gep))
	fb.Ret(irbuild.I(0))
	it := newEnvT(t, m)
	_, err := it.RunMain(0)
	var f *machine.Fault
	if !errors.As(err, &f) || f.Sig != machine.SigSEGV {
		t.Fatalf("err = %v", err)
	}
}

func TestDivideByZeroFault(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	z := fb.Sub(irbuild.I(5), irbuild.I(5))
	fb.Result(fb.SDiv(irbuild.I(10), z))
	fb.Ret(irbuild.I(0))
	it := newEnvT(t, m)
	_, err := it.RunMain(0)
	var f *machine.Fault
	if !errors.As(err, &f) || f.Sig != machine.SigFPE {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossModuleLinking(t *testing.T) {
	lib := ir.NewModule("lib")
	fbl := irbuild.New(ir.NewBuilder(lib))
	dbl := fbl.NewFunc("dbl", ir.I64, ir.Param("x", ir.I64))
	fbl.Ret(fbl.Mul(dbl.Params[0], irbuild.I(2)))

	app := ir.NewModule("app")
	decl := &ir.Func{Name: "dbl", RetType: ir.I64, Module: app}
	decl.Params = []*ir.Arg{ir.Param("x", ir.I64)}
	decl.Params[0].Fn = decl
	app.Funcs = append(app.Funcs, decl)
	fba := irbuild.New(ir.NewBuilder(app))
	fba.NewFunc("main", ir.I64)
	fba.Result(fba.Call(decl, irbuild.I(21)))
	fba.Ret(irbuild.I(0))

	res, err := Run(0, app, lib)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 {
		t.Fatalf("cross-module call = %v", res[0])
	}
}

func TestGlobalInitialisation(t *testing.T) {
	m := ir.NewModule("t")
	gi := m.AddGlobal(&ir.Global{Name: "gi", Size: 3 * 8, InitI64: []int64{5, 6, 7}})
	gf := m.AddGlobal(&ir.Global{Name: "gf", Size: 2 * 8, InitF64: []float64{1.5, -2.5}})
	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	fb.Result(fb.LoadAt(ir.I64, gi, irbuild.I(2)))
	fb.Result(fb.LoadAt(ir.F64, gf, irbuild.I(1)))
	fb.Ret(irbuild.I(0))
	res, err := Run(0, m)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 7 || res[1] != -2.5 {
		t.Fatalf("globals %v", res)
	}
}

func TestAllocaIsPerCallScratch(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	b := fb.Builder
	f := b.NewFunc("bump", ir.I64)
	cell := fb.Alloca(8)
	fb.Store(irbuild.I(9), cell)
	fb.Ret(fb.Load(ir.I64, cell))

	fb.NewFunc("main", ir.I64)
	fb.Result(fb.Call(f))
	fb.Result(fb.Call(f))
	fb.Ret(irbuild.I(0))
	res, err := Run(0, m)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 9 || res[1] != 9 {
		t.Fatalf("alloca results %v", res)
	}
}

func TestStepsCounted(t *testing.T) {
	m := ir.NewModule("t")
	fb := irbuild.New(ir.NewBuilder(m))
	fb.NewFunc("main", ir.I64)
	fb.Result(irbuild.F(1))
	fb.Ret(irbuild.I(0))
	it := newEnvT(t, m)
	if _, err := it.RunMain(0); err != nil {
		t.Fatal(err)
	}
	if it.Steps() == 0 {
		t.Fatal("no steps counted")
	}
}
