// Package interp is a direct interpreter for the mini-IR. It exists for
// differential testing: a workload executed by the interpreter and by
// the compiled machine program must produce bit-identical result
// streams, which pins down compiler bugs independently of the CARE
// machinery.
package interp

import (
	"fmt"
	"math"

	"care/internal/hostenv"
	"care/internal/ir"
	"care/internal/machine"
)

// Word mirrors the machine word; floats are bit-punned.
type Word = uint64

// ErrLimit is returned when the step budget is exhausted.
var ErrLimit = fmt.Errorf("interp: step limit exceeded")

// Interp executes IR modules directly.
type Interp struct {
	Env *hostenv.Env
	Mem *machine.Memory

	mods    []*ir.Module
	funcs   map[string]*ir.Func
	globals map[string]Word

	steps  uint64
	limit  uint64
	allocs Word // bump pointer within the interpreter stack segment
	stack  *machine.Segment
}

// New builds an interpreter over one or more modules (later modules
// provide definitions for earlier declarations, like a link line).
func New(env *hostenv.Env, mods ...*ir.Module) (*Interp, error) {
	if env == nil {
		env = hostenv.NewEnv()
	}
	it := &Interp{
		Env:     env,
		Mem:     machine.NewMemory(),
		mods:    mods,
		funcs:   map[string]*ir.Func{},
		globals: map[string]Word{},
	}
	base := machine.AppGlobalBase
	for _, m := range mods {
		for _, f := range m.Funcs {
			if len(f.Blocks) > 0 {
				it.funcs[f.Name] = f
			}
		}
		var size int64
		for _, g := range m.Globals {
			if !g.Extern {
				size += g.Size
			}
		}
		if size > 0 {
			seg, err := it.Mem.Map(base, int(size), m.Name+".data")
			if err != nil {
				return nil, err
			}
			var off Word
			for _, g := range m.Globals {
				if g.Extern {
					continue
				}
				it.globals[g.Name] = base + off
				for i, v := range g.InitI64 {
					if werr := it.Mem.Write(base+off+Word(8*i), Word(v)); werr != nil {
						return nil, werr
					}
				}
				for i, v := range g.InitF64 {
					if werr := it.Mem.WriteFloat(base+off+Word(8*i), v); werr != nil {
						return nil, werr
					}
				}
				off += Word(g.Size)
			}
			_ = seg
			base += Word(size) + machine.LibStride
		}
	}
	st, err := it.Mem.Map(machine.StackTop-machine.DefaultStackSize, machine.DefaultStackSize, "interp-stack")
	if err != nil {
		return nil, err
	}
	it.stack = st
	it.allocs = machine.StackTop - machine.DefaultStackSize
	return it, nil
}

// RunMain executes main with the given step limit (0 = 1<<32).
func (it *Interp) RunMain(limit uint64) (int64, error) {
	if limit == 0 {
		limit = 1 << 32
	}
	it.limit = limit
	f, ok := it.funcs["main"]
	if !ok {
		return 0, fmt.Errorf("interp: no main")
	}
	v, err := it.call(f, nil)
	return int64(v), err
}

// Steps reports executed IR instructions.
func (it *Interp) Steps() uint64 { return it.steps }

type exitError struct{ code Word }

func (e exitError) Error() string { return fmt.Sprintf("exit(%d)", e.code) }

func (it *Interp) call(f *ir.Func, args []Word) (Word, error) {
	vals := map[ir.Value]Word{}
	for i, p := range f.Params {
		vals[p] = args[i]
	}
	blk := f.Entry()
	var prev *ir.Block
	for {
		// Evaluate phis as a parallel assignment.
		var phiVals []Word
		var phis []*ir.Instr
		for _, in := range blk.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			found := false
			for k, pb := range in.Blocks {
				if pb == prev {
					v, err := it.eval(vals, in.Ops[k])
					if err != nil {
						return 0, err
					}
					phiVals = append(phiVals, v)
					phis = append(phis, in)
					found = true
					break
				}
			}
			if !found {
				return 0, fmt.Errorf("interp: %s: phi %%%s has no incoming from %v", f.Name, in.Name, prevName(prev))
			}
		}
		for i, p := range phis {
			vals[p] = phiVals[i]
			it.steps++
		}
		for _, in := range blk.Instrs[len(phis):] {
			it.steps++
			if it.steps > it.limit {
				return 0, ErrLimit
			}
			switch in.Op {
			case ir.OpBr:
				prev, blk = blk, in.Blocks[0]
			case ir.OpCondBr:
				c, err := it.eval(vals, in.Ops[0])
				if err != nil {
					return 0, err
				}
				if c != 0 {
					prev, blk = blk, in.Blocks[0]
				} else {
					prev, blk = blk, in.Blocks[1]
				}
			case ir.OpRet:
				if len(in.Ops) == 1 {
					return it.eval(vals, in.Ops[0])
				}
				return 0, nil
			default:
				v, err := it.exec(vals, in)
				if err != nil {
					return 0, err
				}
				if in.Typ != ir.Void {
					vals[in] = v
				}
				continue
			}
			break // branched
		}
	}
}

func prevName(b *ir.Block) string {
	if b == nil {
		return "<entry>"
	}
	return b.Name
}

func (it *Interp) eval(vals map[ir.Value]Word, v ir.Value) (Word, error) {
	switch x := v.(type) {
	case *ir.Const:
		if x.Typ == ir.F64 {
			return math.Float64bits(x.F), nil
		}
		return Word(x.I), nil
	case *ir.Global:
		a, ok := it.globals[x.Name]
		if !ok {
			return 0, fmt.Errorf("interp: unresolved global %s", x.Name)
		}
		return a, nil
	default:
		w, ok := vals[v]
		if !ok {
			return 0, fmt.Errorf("interp: use of undefined value %s", v.Ref())
		}
		return w, nil
	}
}

func (it *Interp) exec(vals map[ir.Value]Word, in *ir.Instr) (Word, error) {
	get := func(i int) (Word, error) { return it.eval(vals, in.Ops[i]) }
	geti := func(i int) (int64, error) { w, err := get(i); return int64(w), err }
	getf := func(i int) (float64, error) { w, err := get(i); return math.Float64frombits(w), err }

	switch {
	case in.Op.IsIntBinary() || in.Op.IsICmp():
		a, err := geti(0)
		if err != nil {
			return 0, err
		}
		b, err := geti(1)
		if err != nil {
			return 0, err
		}
		switch in.Op {
		case ir.OpAdd:
			return Word(a + b), nil
		case ir.OpSub:
			return Word(a - b), nil
		case ir.OpMul:
			return Word(a * b), nil
		case ir.OpSDiv:
			if b == 0 || (a == math.MinInt64 && b == -1) {
				return 0, &machine.Fault{Sig: machine.SigFPE}
			}
			return Word(a / b), nil
		case ir.OpSRem:
			if b == 0 || (a == math.MinInt64 && b == -1) {
				return 0, &machine.Fault{Sig: machine.SigFPE}
			}
			return Word(a % b), nil
		case ir.OpAnd:
			return Word(a & b), nil
		case ir.OpOr:
			return Word(a | b), nil
		case ir.OpXor:
			return Word(a ^ b), nil
		case ir.OpShl:
			return Word(a << (uint64(b) & 63)), nil
		case ir.OpAShr:
			return Word(a >> (uint64(b) & 63)), nil
		case ir.OpICmpEQ:
			return bw(a == b), nil
		case ir.OpICmpNE:
			return bw(a != b), nil
		case ir.OpICmpSLT:
			return bw(a < b), nil
		case ir.OpICmpSLE:
			return bw(a <= b), nil
		case ir.OpICmpSGT:
			return bw(a > b), nil
		case ir.OpICmpSGE:
			return bw(a >= b), nil
		}
	case in.Op.IsFloatBinary() || in.Op.IsFCmp():
		a, err := getf(0)
		if err != nil {
			return 0, err
		}
		b, err := getf(1)
		if err != nil {
			return 0, err
		}
		switch in.Op {
		case ir.OpFAdd:
			return math.Float64bits(a + b), nil
		case ir.OpFSub:
			return math.Float64bits(a - b), nil
		case ir.OpFMul:
			return math.Float64bits(a * b), nil
		case ir.OpFDiv:
			return math.Float64bits(a / b), nil
		case ir.OpFCmpOEQ:
			return bw(a == b), nil
		case ir.OpFCmpONE:
			return bw(a != b), nil
		case ir.OpFCmpOLT:
			return bw(a < b), nil
		case ir.OpFCmpOLE:
			return bw(a <= b), nil
		case ir.OpFCmpOGT:
			return bw(a > b), nil
		case ir.OpFCmpOGE:
			return bw(a >= b), nil
		}
	}

	switch in.Op {
	case ir.OpIToF:
		a, err := geti(0)
		if err != nil {
			return 0, err
		}
		return math.Float64bits(float64(a)), nil
	case ir.OpFToI:
		a, err := getf(0)
		if err != nil {
			return 0, err
		}
		return Word(int64(a)), nil
	case ir.OpAlloca:
		a := it.allocs
		it.allocs += Word(in.Size)
		if it.allocs > machine.StackTop {
			return 0, fmt.Errorf("interp: alloca overflow")
		}
		return a, nil
	case ir.OpGEP:
		base, err := get(0)
		if err != nil {
			return 0, err
		}
		idx, err := geti(1)
		if err != nil {
			return 0, err
		}
		return base + Word(idx*in.Size), nil
	case ir.OpLoad:
		a, err := get(0)
		if err != nil {
			return 0, err
		}
		w, f := it.Mem.Read(a)
		if f != nil {
			return 0, f
		}
		return w, nil
	case ir.OpStore:
		v, err := get(0)
		if err != nil {
			return 0, err
		}
		a, err := get(1)
		if err != nil {
			return 0, err
		}
		if f := it.Mem.Write(a, v); f != nil {
			return 0, f
		}
		return 0, nil
	case ir.OpCall:
		args := make([]Word, len(in.Ops))
		for i := range in.Ops {
			w, err := get(i)
			if err != nil {
				return 0, err
			}
			args[i] = w
		}
		if in.Callee != nil {
			callee := in.Callee
			if len(callee.Blocks) == 0 {
				def, ok := it.funcs[callee.Name]
				if !ok {
					return 0, fmt.Errorf("interp: unresolved function %s", callee.Name)
				}
				callee = def
			}
			return it.call(callee, args)
		}
		res, st, err := it.Env.Call(in.Host, args, it.Mem.HostContext())
		if err != nil {
			return 0, err
		}
		if st == hostenv.Exit {
			return 0, exitError{res}
		}
		return res, nil
	}
	return 0, fmt.Errorf("interp: cannot execute %s", in.Op)
}

func bw(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// Run is a convenience wrapper: interpret main of the modules and return
// the result stream.
func Run(limit uint64, mods ...*ir.Module) ([]float64, error) {
	env := hostenv.NewEnv()
	it, err := New(env, mods...)
	if err != nil {
		return nil, err
	}
	if _, err := it.RunMain(limit); err != nil {
		if _, isExit := err.(exitError); !isExit {
			return nil, err
		}
	}
	return env.Results, nil
}
