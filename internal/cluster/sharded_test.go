package cluster

import (
	"reflect"
	"runtime"
	"testing"

	"care/internal/core"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/mpi"
	"care/internal/trace"
	"care/internal/workloads"
)

// rankFleet builds one world's worth of rank processes, mirroring
// RunJob's creation loop, so tests can drive the schedulers directly.
func rankFleet(t *testing.T, bin *core.Binary, ranks int, protected bool) (*mpi.World, []*machine.CPU, []*core.Process) {
	t.Helper()
	world := mpi.NewWorld(ranks)
	cpus := make([]*machine.CPU, ranks)
	procs := make([]*core.Process, ranks)
	for r := 0; r < ranks; r++ {
		p, err := core.NewProcess(core.ProcessConfig{App: bin, Protected: protected, Env: world.Env(r)})
		if err != nil {
			t.Fatal(err)
		}
		procs[r] = p
		cpus[r] = p.CPU
	}
	return world, cpus, procs
}

// TestRunShardedMatchesRun pins the scheduler-equivalence contract: the
// superstep scheduler with batched collective exchange produces the
// same RunResult, per-rank retirement counts, and per-rank result
// streams as the round-robin scheduler — a blocked collective parks a
// rank before the instruction retires, and reductions are rank-ordered
// sums, so batching arrivals shifts only wall-clock scheduling.
func TestRunShardedMatchesRun(t *testing.T) {
	bin := buildEval(t, "HPCCG", 0, false)
	for _, workers := range []int{1, 4} {
		w1, cpus1, procs1 := rankFleet(t, bin, 6, false)
		r1, err := mpi.Run(w1, cpus1, 0)
		if err != nil {
			t.Fatal(err)
		}
		w2, cpus2, procs2 := rankFleet(t, bin, 6, false)
		r2, err := mpi.RunSharded(w2, cpus2, 0, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("workers=%d: RunResult differs:\n%+v\nvs\n%+v", workers, r2, r1)
		}
		for r := range cpus1 {
			if cpus1[r].Dyn != cpus2[r].Dyn {
				t.Fatalf("workers=%d: rank %d retired %d vs %d", workers, r, cpus2[r].Dyn, cpus1[r].Dyn)
			}
			if !reflect.DeepEqual(procs1[r].Results(), procs2[r].Results()) {
				t.Fatalf("workers=%d: rank %d results differ", workers, r)
			}
		}
	}
}

// TestRunShardedDeadRankMatchesRun: a rank killed by an injected fault
// starves the collectives identically under both schedulers — same dead
// rank, same survivor retirement counts.
func TestRunShardedDeadRankMatchesRun(t *testing.T) {
	// Same recipe as TestUnprotectedParallelJobDies: search on the
	// protected build for a SIGSEGV-producing injection, then arm it on
	// an unprotected fleet — the test compares schedulers, not recovery,
	// but it needs a dead rank to compare.
	pbin := buildEval(t, "HPCCG", 0, true)
	inj, err := FindRecoverableInjection(pbin, 2002, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bin := buildEval(t, "HPCCG", 0, false)
	w1, cpus1, _ := rankFleet(t, bin, 4, false)
	faultinject.Arm(cpus1[0], inj.Trigger, inj.Bits)
	r1, err := mpi.Run(w1, cpus1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DeadRank < 0 {
		t.Skip("this particular fault was benign without protection") // possible but rare
	}
	w2, cpus2, _ := rankFleet(t, bin, 4, false)
	faultinject.Arm(cpus2[0], inj.Trigger, inj.Bits)
	r2, err := mpi.RunSharded(w2, cpus2, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("dead-rank RunResult differs:\n%+v\nvs\n%+v", r2, r1)
	}
	for r := range cpus1 {
		if cpus1[r].Dyn != cpus2[r].Dyn {
			t.Fatalf("rank %d retired %d vs %d", r, cpus2[r].Dyn, cpus1[r].Dyn)
		}
	}
}

// TestClusterPaperScale runs the paper's 512-rank cluster shape (x 6
// threads = 3072 reported cores) on a small per-rank problem, checking
// completion, superstep progress reporting, and that the per-rank trace
// ring stays bounded (the wide-job TraceCap clamp).
func TestClusterPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("512-rank job")
	}
	w, err := workloads.Get("HPCCG")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{NX: 3, NY: 3, NZ: 3, Steps: 3}),
		core.BuildOptions{OptLevel: 1, Defenses: []string{"care"}})
	if err != nil {
		t.Fatal(err)
	}
	var beats int
	cfg := Config{
		Workload: "HPCCG", Ranks: 512, Protected: true,
		Progress: func(done, total int) {
			beats++
			if total != 512 {
				t.Errorf("progress total = %d, want 512", total)
			}
		},
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := RunJob(cfg, bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if !res.Completed {
		t.Fatalf("512-rank job did not complete: %+v", res)
	}
	if res.Cores != 512*6 {
		t.Errorf("cores = %d, want 3072", res.Cores)
	}
	if beats == 0 {
		t.Error("progress callback never fired")
	}
	// The trace must hold the job's spans without one ring per rank
	// ballooning: at TraceCap 1024 per rank the merged job recorder
	// cannot have retained more spans than the default cap allows.
	if res.Trace.Len() > trace.DefaultSpanCap {
		t.Errorf("job trace retained %d spans, cap is %d", res.Trace.Len(), trace.DefaultSpanCap)
	}
	if grew := after.HeapAlloc - before.HeapAlloc; grew > 2<<30 {
		t.Errorf("512-rank job grew the heap by %d bytes; per-rank state is not bounded", grew)
	}
}
