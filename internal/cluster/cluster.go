// Package cluster reproduces the paper's parallel-job experiments
// (§5.4, Figure 10): an N-rank MPI job (N ranks x T threads = "cores"),
// a CARE-recoverable fault injected into rank 0, and the comparison
// against the Checkpoint/Restart baseline (checkpoint every 20/50/75
// steps) that motivates CARE's near-zero recovery cost.
//
// Job time is virtual: retired instructions scaled by NsPerInstr, plus
// wall-measured Safeguard recovery time (which stalls every rank at the
// next collective, exactly as a real recovery stalls the job at its
// next barrier).
package cluster

import (
	"encoding/json"
	"fmt"
	"time"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/mpi"
	"care/internal/parallel"
	"care/internal/profiler"
	"care/internal/safeguard"
	"care/internal/shard"
	"care/internal/store"
	"care/internal/trace"
	"care/internal/workloads"
)

// Config describes a parallel job.
type Config struct {
	// Workload names the mini-app; Params sizes the per-rank problem
	// (weak scaling).
	Workload string
	Params   workloads.Params
	OptLevel int
	// Ranks is the number of MPI processes; ThreadsPerRank only scales
	// the reported core count (512 x 6 = 3072 in the paper).
	Ranks          int
	ThreadsPerRank int
	// NsPerInstr converts retired instructions to virtual time
	// (default 1ns).
	NsPerInstr float64
	// Protected attaches Safeguard to every rank.
	Protected bool
	// Safeguard tunes the runtime on every rank (zero value = paper
	// one-shot configuration). When Safeguard.Policy needs a checkpoint
	// store (Rollback or DomainRewind), each rank gets its own (initial
	// snapshot at _start, cadence below) so the chain's rewind and
	// rollback stages can restore.
	Safeguard safeguard.Config
	// CheckpointEveryResults is the per-rank snapshot cadence for the
	// rollback stage (observable results between snapshots; 0 keeps only
	// the _start snapshot).
	CheckpointEveryResults int
	// CheckpointModel prices the rollback stage's snapshot I/O.
	CheckpointModel checkpoint.CostModel
	// Seed drives the search for a recoverable injection.
	Seed int64
	// Quantum is the scheduler slice (default 50k instructions).
	Quantum uint64
	// Tier selects the interpreter tier every rank runs on
	// (superblock, block or step). Rank results and trace spans are
	// identical on every tier — only Span.Wall differs — matching the
	// care-inject knob (the CI smoke diffs a wall-scrubbed JSONL).
	Tier machine.InterpTier
	// Workers bounds the goroutines simulating ranks each superstep
	// (<=0 = one per CPU). The JobResult is identical for every value:
	// the superstep scheduler batches collective reductions between
	// parallel rank slices (mpi.RunSharded), so 512 ranks use the whole
	// machine without changing one architectural bit.
	Workers int
	// Progress, when non-nil, is invoked after each scheduler superstep
	// with (ranksExited, ranks) — heartbeat reporting only, never part
	// of the job trace.
	Progress func(done, total int)
}

func (c Config) nsPerInstr() float64 {
	if c.NsPerInstr == 0 {
		return 1
	}
	return c.NsPerInstr
}

// JobResult summarises one job execution.
type JobResult struct {
	Completed bool
	Ranks     int
	Cores     int
	// MaxDyn is the slowest rank's instruction count.
	MaxDyn   uint64
	TotalDyn uint64
	// VirtualTime = MaxDyn * NsPerInstr + RecoveryStall.
	VirtualTime time.Duration
	// RecoveryStall is the wall-measured Safeguard time summed across
	// ranks (in the §5.4 setup only rank 0 is injected, so this is rank
	// 0's stall). Derived from the job trace's rank-stall spans.
	RecoveryStall time.Duration
	// PerRankStall attributes the stall to each rank.
	PerRankStall []time.Duration
	// Recoveries counts successful Safeguard repairs across ranks.
	Recoveries int
	// Rollbacks counts checkpoint restores performed by the escalation
	// chain; their modelled cost is part of RecoveryStall.
	Rollbacks int
	// DomainRewinds counts domain-scoped partial rollbacks performed by
	// the escalation chain; their (much smaller) cost is part of
	// RecoveryStall too.
	DomainRewinds int
	// Injected reports whether the armed fault fired.
	Injected bool
	// DeadRank is the rank that died (-1 when none).
	DeadRank int
	// Trace is the job's merged recorder: every rank's safeguard and
	// checkpoint spans (Rank-attributed), one KindRankStall span per
	// stalled rank, and a KindJob summary span whose Wall is the job's
	// virtual time. Figure 10 report sections derive from comparing the
	// traces of a faulty and a baseline job (trace.Compare).
	Trace *trace.Recorder
}

// Injection pins a specific fault for rank 0.
type Injection struct {
	Trigger faultinject.Trigger
	Bits    []int
}

// SearchOptions tunes FindRecoverableInjection.
type SearchOptions struct {
	// WarmStart clones the search's injection attempts from golden-run
	// snapshots (faultinject.CoverageExperiment.WarmStart); the found
	// injection is identical either way.
	WarmStart bool
	// SnapEvery is the snapshot cadence (0 = TotalDyn/64+1).
	SnapEvery uint64
	// Tier selects the interpreter tier the search attempts run on;
	// the found injection is identical on every tier.
	Tier machine.InterpTier
	// Shards > 1 routes each search attempt wave through the shard
	// coordinator (shard.RunCoverage); the found injection is identical
	// for any shard count. ShardExec is the worker subprocess argv
	// (empty = in-process shards), and Build must then describe how a
	// worker rebuilds the search binary.
	Shards    int
	ShardExec []string
	Build     shard.BuildSpec
	// Store caches the search's golden-run profile across runs and
	// attempts (each attempt reuses the same binary, so after the first
	// attempt populates the entry the rest are cache hits), keyed from
	// Build plus the attempt seed. Nil disables.
	Store *store.Store
}

// FindRecoverableInjection searches (deterministically) for an injection
// that CARE recovers on a single-rank run of the binary — the §5.4
// setup injects only CARE-recoverable faults.
func FindRecoverableInjection(bin *core.Binary, seed int64, opts SearchOptions) (*Injection, error) {
	for attempt := 0; attempt < 8; attempt++ {
		exp := &faultinject.CoverageExperiment{
			App: bin, Trials: 4, Seed: seed + int64(attempt),
			MaxAttempts: 400, RecordInjections: true,
			WarmStart: opts.WarmStart, SnapEvery: opts.SnapEvery,
			Tier: opts.Tier,
		}
		if opts.Store != nil {
			pj, _ := json.Marshal(opts.Build.Params)
			exp.Store = opts.Store
			exp.StoreKey = store.Key{
				Kind: "coverage", Workload: opts.Build.Workload, Params: string(pj),
				OptLevel: opts.Build.OptLevel, Defenses: opts.Build.Defenses,
				Seed: exp.Seed, SnapEvery: opts.SnapEvery, WarmStart: opts.WarmStart,
			}
		}
		var res *faultinject.CoverageResult
		var err error
		if opts.Shards > 1 {
			exp.Shards, exp.ShardExec = opts.Shards, opts.ShardExec
			res, err = shard.RunCoverage(exp, opts.Build)
		} else {
			res, err = exp.Run()
		}
		if res != nil && len(res.RecoveredInjections) > 0 {
			ri := res.RecoveredInjections[0]
			return &Injection{Trigger: ri.Trigger, Bits: ri.Bits}, nil
		}
		if err != nil && res == nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cluster: no recoverable injection found")
}

// RunJob executes the parallel job, optionally injecting the fault into
// rank 0.
func RunJob(cfg Config, bin *core.Binary, inj *Injection) (*JobResult, error) {
	if cfg.Ranks <= 0 {
		// Match the care-cluster CLI default (ROADMAP item 2 reconciled
		// these; the paper's evaluated shape is -ranks 512).
		cfg.Ranks = 8
	}
	if cfg.ThreadsPerRank <= 0 {
		cfg.ThreadsPerRank = 6
	}
	if cfg.Protected && cfg.Safeguard.TraceCap == 0 && cfg.Ranks >= 64 {
		// Bound per-rank trace memory at wide rank counts: counters stay
		// exact past the ring, only per-span detail drops oldest-first,
		// so a 512-rank job runs in bounded RSS. Narrow jobs keep the
		// deeper default ring.
		cfg.Safeguard.TraceCap = 1024
	}
	world := mpi.NewWorld(cfg.Ranks)
	cpus := make([]*machine.CPU, cfg.Ranks)
	procs := make([]*core.Process, cfg.Ranks)
	// Process creation dominates startup at 512 ranks (each rank maps
	// and initialises its own image), so it fans out on the same pool
	// the scheduler uses; creation order cannot matter because ranks
	// only interact through collectives, which none has reached yet.
	err := parallel.ForEach(cfg.Ranks, cfg.Workers, func(r int) error {
		pcfg := core.ProcessConfig{
			App:       bin,
			Protected: cfg.Protected,
			Safeguard: cfg.Safeguard,
			Env:       world.Env(r),
			Tier:      cfg.Tier,
		}
		if cfg.Protected && cfg.Safeguard.Policy.NeedsStore() {
			pcfg.Checkpoint = checkpoint.NewStore(cfg.CheckpointModel)
			pcfg.CheckpointEveryResults = cfg.CheckpointEveryResults
		}
		p, err := core.NewProcess(pcfg)
		if err != nil {
			return err
		}
		procs[r] = p
		cpus[r] = p.CPU
		return nil
	})
	if err != nil {
		return nil, err
	}
	var armed *faultinject.Armed
	if inj != nil {
		armed = faultinject.Arm(cpus[0], inj.Trigger, inj.Bits)
	}
	mres, err := mpi.RunSharded(world, cpus, cfg.Quantum, cfg.Workers, cfg.Progress)
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Completed: mres.Completed,
		Ranks:     cfg.Ranks,
		Cores:     cfg.Ranks * cfg.ThreadsPerRank,
		MaxDyn:    mres.MaxDyn,
		TotalDyn:  mres.TotalDyn,
		DeadRank:  mres.DeadRank,
		Injected:  armed == nil || armed.Fired,
	}
	// Fold every rank's safeguard/checkpoint trace into the job trace
	// with rank attribution, and attribute each rank's stall (the
	// Safeguard time that parks the rank until the next collective) as a
	// KindRankStall span.
	rec := trace.New(trace.DefaultSpanCap)
	out.PerRankStall = make([]time.Duration, cfg.Ranks)
	for r, p := range procs {
		sg := p.SG
		if sg == nil {
			continue
		}
		rec.MergeAs(sg.Trace(), int32(r))
		if p.Store != nil {
			rec.MergeAs(p.Store.Trace(), int32(r))
		}
		var stall time.Duration
		for _, ev := range sg.Events() {
			switch ev.Outcome {
			case safeguard.Recovered, safeguard.RecoveredInduction,
				safeguard.HeuristicPatched, safeguard.DomainRewound,
				safeguard.RolledBack:
				stall += ev.Total()
			}
		}
		out.PerRankStall[r] = stall
		if stall > 0 {
			rec.Emit(trace.Span{
				Kind: trace.KindRankStall, Parent: trace.NoParent,
				Wall: stall, Rank: int32(r),
			})
		}
	}
	// Derive the summary tallies from the job trace.
	out.Rollbacks = int(rec.Counter(safeguard.CounterRolledBack))
	out.DomainRewinds = int(rec.Counter(safeguard.CounterDomainRewinds))
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.KindRankStall:
			out.RecoveryStall += s.Wall
		case trace.KindActivation:
			switch safeguard.Outcome(s.Outcome) {
			case safeguard.Recovered, safeguard.RecoveredInduction, safeguard.HeuristicPatched:
				out.Recoveries++
			}
		}
	}
	out.VirtualTime = time.Duration(float64(out.MaxDyn)*cfg.nsPerInstr()) + out.RecoveryStall
	rec.Emit(trace.Span{
		Kind: trace.KindJob, Parent: trace.NoParent,
		EndDyn: out.MaxDyn, Wall: out.VirtualTime,
		Outcome: fmt.Sprintf("completed=%v", out.Completed),
	})
	out.Trace = rec
	return out, nil
}

// CRResult is the Checkpoint/Restart baseline cost for one fault.
type CRResult struct {
	Interval int
	// StepVirtual is the virtual time of one application step.
	StepVirtual time.Duration
	// Checkpoints written before the fault and their modelled I/O cost.
	Checkpoints  int
	CheckpointIO time.Duration
	// Recovery cost components (the paper's 14.4/25.9/37.6s trio for
	// GTC-P at intervals 20/50/75).
	Requeue      time.Duration
	RestartRead  time.Duration
	RecomputeDyn uint64
	Recompute    time.Duration
	// Total recovery time (requeue + read + recompute).
	RecoveryTotal time.Duration
	// Verified is true when the restarted run reproduced the golden
	// result stream (a real restore, not just a cost model).
	Verified bool
	// Trace is the run's checkpoint-store recorder (one span per
	// save/restore plus the I/O counters the costs above derive from).
	Trace *trace.Recorder
}

// RunCheckpointRestart measures the C/R baseline: run the workload
// checkpointing every interval steps, kill it at faultStep (a soft
// failure without CARE kills the job), restore the latest checkpoint and
// re-execute to completion — verifying output — while charging modelled
// requeue and I/O costs.
func RunCheckpointRestart(w *workloads.Workload, p workloads.Params, opt int,
	interval, faultStep int, model checkpoint.CostModel, nsPerInstr float64) (*CRResult, error) {
	if nsPerInstr == 0 {
		nsPerInstr = 1
	}
	bin, err := core.Build(w.Module(p), core.BuildOptions{OptLevel: opt})
	if err != nil {
		return nil, err
	}
	prof, err := profiler.Run(bin, nil, 0)
	if err != nil {
		return nil, err
	}
	resultsPerStep := w.ResultsPerStep
	if resultsPerStep <= 0 {
		resultsPerStep = 1
	}

	proc, err := core.NewProcess(core.ProcessConfig{App: bin})
	if err != nil {
		return nil, err
	}
	store := checkpoint.NewStore(model)
	res := &CRResult{Interval: interval}

	// Drive the run in quanta, checkpointing at step boundaries and
	// killing the process at faultStep.
	step := 0
	var faultDyn uint64
	killed := false
	for {
		st := proc.CPU.Run(10_000)
		newStep := len(proc.Results()) / resultsPerStep
		for step < newStep {
			step++
			if step%interval == 0 {
				store.Save(proc.CPU, step)
			}
			if step == faultStep {
				killed = true
				faultDyn = proc.CPU.Dyn
				break
			}
		}
		if killed || st != machine.StatusLimit {
			break
		}
	}
	if !killed {
		return nil, fmt.Errorf("cluster: fault step %d never reached (run ended at step %d)", faultStep, step)
	}
	res.Checkpoints = store.Saves()
	res.CheckpointIO = store.ModeledWriteTime()
	res.Trace = store.Trace()

	// Restart: requeue, read the checkpoint, re-execute.
	res.Requeue = model.RequeueDelay
	snap := store.Latest()
	if snap == nil {
		// No checkpoint yet: restart from scratch.
		proc2, err := core.NewProcess(core.ProcessConfig{App: bin})
		if err != nil {
			return nil, err
		}
		st := proc2.Run(0)
		if st != machine.StatusExited {
			return nil, fmt.Errorf("cluster: scratch restart failed: %v", st)
		}
		res.RecomputeDyn = faultDyn
		res.Verified = sameFloats(proc2.Results(), prof.Golden)
	} else {
		rd, err := store.Restore(proc.CPU, snap)
		if err != nil {
			return nil, err
		}
		res.RestartRead = rd
		before := proc.CPU.Dyn
		st := proc.CPU.Run(0)
		if st != machine.StatusExited {
			return nil, fmt.Errorf("cluster: restored run failed: %v (%v)", st, proc.CPU.PendingTrap)
		}
		// Lost work: from the checkpoint to the fault point.
		res.RecomputeDyn = faultDyn - before
		res.Verified = sameFloats(proc.Results(), prof.Golden)
	}
	res.Recompute = time.Duration(float64(res.RecomputeDyn) * nsPerInstr)
	res.RecoveryTotal = res.Requeue + res.RestartRead + res.Recompute

	// One step's virtual time, for scaling commentary.
	stepsTotal := len(prof.Golden) / resultsPerStep
	if stepsTotal > 0 {
		res.StepVirtual = time.Duration(float64(prof.TotalDyn) * nsPerInstr / float64(stepsTotal))
	}
	return res, nil
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
