package cluster

import (
	"testing"
	"time"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/defense"
	"care/internal/machine"
	"care/internal/workloads"
)

func buildEval(t testing.TB, name string, opt int, protected bool) *core.Binary {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: opt, Defenses: defense.If(protected, "care")})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestFaultFreeParallelJob(t *testing.T) {
	bin := buildEval(t, "HPCCG", 0, true)
	cfg := Config{Workload: "HPCCG", Ranks: 4, ThreadsPerRank: 6, Protected: true}
	res, err := RunJob(cfg, bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("fault-free job did not complete: %+v", res)
	}
	if res.Cores != 24 {
		t.Errorf("cores = %d, want 24", res.Cores)
	}
	if res.Recoveries != 0 || res.RecoveryStall != 0 {
		t.Errorf("fault-free job saw recoveries: %+v", res)
	}
}

func TestParallelJobSurvivesInjectedFault(t *testing.T) {
	// A bigger per-rank problem so the job's virtual time dwarfs the
	// recovery stall, as the paper's minutes-long jobs do.
	w, err := workloads.Get("HPCCG")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{NX: 6, NY: 6, NZ: 5, Steps: 25}),
		core.BuildOptions{OptLevel: 0, Defenses: []string{"care"}})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := FindRecoverableInjection(bin, 1001, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workload: "HPCCG", Ranks: 2, ThreadsPerRank: 6, Protected: true}
	base, err := RunJob(cfg, bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The faulty job charges the *wall-measured* recovery stall into its
	// virtual time, so the delta is noisy under load; take the best of a
	// few attempts before judging the Figure 10 claim.
	frac := 1.0
	for attempt := 0; attempt < 3 && frac > 0.10; attempt++ {
		faulty, err := RunJob(cfg, bin, inj)
		if err != nil {
			t.Fatal(err)
		}
		if !faulty.Injected {
			t.Fatal("injection never fired in the parallel run")
		}
		if !faulty.Completed {
			t.Fatalf("CARE-protected job died: %+v", faulty)
		}
		if faulty.Recoveries == 0 {
			t.Fatalf("no recovery recorded on rank 0: %+v", faulty)
		}
		// Figure 10: the delay must be tiny relative to job time.
		delay := faulty.VirtualTime - base.VirtualTime
		if delay < 0 {
			delay = -delay
		}
		frac = float64(delay) / float64(base.VirtualTime)
		t.Logf("base=%v faulty=%v stall=%v (delta %.3f%%)", base.VirtualTime, faulty.VirtualTime, faulty.RecoveryStall, 100*frac)
	}
	if frac > 0.10 {
		t.Errorf("fault+CARE delayed the job by %.1f%%; paper reports almost no delay", 100*frac)
	}
}

func TestUnprotectedParallelJobDies(t *testing.T) {
	pbin := buildEval(t, "HPCCG", 0, true)
	inj, err := FindRecoverableInjection(pbin, 2002, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ubin := buildEval(t, "HPCCG", 0, false)
	cfg := Config{Workload: "HPCCG", Ranks: 4, Protected: false}
	res, err := RunJob(cfg, ubin, inj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Skip("this particular fault was benign without protection") // possible but rare
	}
	if res.DeadRank != 0 {
		t.Errorf("expected rank 0 to die, got %d", res.DeadRank)
	}
}

func TestCheckpointRestartBaseline(t *testing.T) {
	w, err := workloads.Get("GTC-P")
	if err != nil {
		t.Fatal(err)
	}
	params := workloads.Params{Steps: 40, NParticles: 60}
	var prev time.Duration
	for _, interval := range []int{5, 10, 20} {
		res, err := RunCheckpointRestart(w, params, 0, interval, 33, checkpoint.DefaultCostModel(), 1)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		if !res.Verified {
			t.Fatalf("interval %d: restored run did not reproduce golden output", interval)
		}
		if res.Checkpoints == 0 {
			t.Fatalf("interval %d: no checkpoints written", interval)
		}
		t.Logf("interval=%d ckpts=%d io=%v requeue=%v read=%v recompute=%v (dyn %d) total=%v",
			interval, res.Checkpoints, res.CheckpointIO, res.Requeue,
			res.RestartRead, res.Recompute, res.RecomputeDyn, res.RecoveryTotal)
		if prev != 0 && res.RecoveryTotal < prev {
			t.Errorf("recovery cost did not grow with checkpoint interval: %v then %v", prev, res.RecoveryTotal)
		}
		prev = res.RecoveryTotal
	}
}

// TestClusterTierEquivalence is care-cluster's side of the interpreter
// contract: a protected multi-rank job with an injected fault produces
// the same deterministic JobResult fields and the same trace spans on
// every tier. Only wall-measured times (Span.Wall and the stall fields
// derived from it) may differ — the CI smoke diffs the exported JSONL
// after scrubbing wall_ns the same way.
func TestClusterTierEquivalence(t *testing.T) {
	bin := buildEval(t, "HPCCG", 0, true)
	inj, err := FindRecoverableInjection(bin, 1001, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(tier machine.InterpTier) *JobResult {
		res, err := RunJob(Config{Workload: "HPCCG", Ranks: 2, ThreadsPerRank: 6, Protected: true, Tier: tier}, bin, inj)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	step := run(machine.TierStep)
	for _, tier := range []machine.InterpTier{machine.TierSuperblock, machine.TierBlock} {
		fast := run(tier)
		if fast.Completed != step.Completed || fast.Ranks != step.Ranks ||
			fast.Cores != step.Cores || fast.MaxDyn != step.MaxDyn ||
			fast.TotalDyn != step.TotalDyn || fast.Recoveries != step.Recoveries ||
			fast.Rollbacks != step.Rollbacks || fast.Injected != step.Injected ||
			fast.DeadRank != step.DeadRank {
			t.Fatalf("%v job result differs from step:\n%+v\nvs\n%+v", tier, fast, step)
		}
		fs, ss := fast.Trace.Spans(), step.Trace.Spans()
		if len(fs) != len(ss) {
			t.Fatalf("%v span count %d, step %d", tier, len(fs), len(ss))
		}
		for i := range fs {
			a, b := fs[i], ss[i]
			a.Wall, b.Wall = 0, 0
			if a != b {
				t.Errorf("%v span %d differs (Wall scrubbed):\n %+v\n %+v", tier, i, a, b)
			}
		}
	}
}
