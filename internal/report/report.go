// Package report renders human-readable summaries of stored campaign
// traces — offline, from the JSONL export alone, with no workload
// execution. It backs care-report's -trace-in and -diff modes: the
// former summarises one trace (span kinds, trial outcomes, counters,
// Merkle seal), the latter compares two traces leaf-by-leaf and names
// the first diverging trial index.
package report

import (
	"fmt"
	"sort"
	"strings"

	"care/internal/store"
	"care/internal/trace"
)

// RenderTrace summarises one recorded trace: span population by kind,
// the trial-outcome histogram, the deterministic counters, and the
// trace's Merkle seal. Wall-clock fields are deliberately omitted so
// rendering the same campaign twice yields byte-identical output (the
// CI store-determinism job diffs exactly that).
func RenderTrace(rec *trace.Recorder) string {
	var sb strings.Builder
	spans := rec.Spans()
	fmt.Fprintf(&sb, "spans: %d recorded (%d emitted, %d dropped)\n",
		rec.Len(), rec.Emitted(), rec.Dropped())

	// Span population by kind, with the virtual-clock extent summed.
	type kindRow struct {
		name string
		n    int
		dyn  uint64
	}
	byKind := map[string]*kindRow{}
	outcomes := map[string]int{}
	trials := 0
	var firstRank, lastRank int32
	for _, s := range spans {
		r := byKind[s.Kind.String()]
		if r == nil {
			r = &kindRow{name: s.Kind.String()}
			byKind[s.Kind.String()] = r
		}
		r.n++
		r.dyn += s.DynSpan()
		if s.Kind == trace.KindTrial {
			if trials == 0 || s.Rank < firstRank {
				firstRank = s.Rank
			}
			if trials == 0 || s.Rank > lastRank {
				lastRank = s.Rank
			}
			trials++
			outcomes[s.Outcome]++
		}
	}
	kinds := make([]*kindRow, 0, len(byKind))
	for _, r := range byKind {
		kinds = append(kinds, r)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].name < kinds[j].name })
	sb.WriteString("\nkind                 count          dyn\n")
	for _, r := range kinds {
		fmt.Fprintf(&sb, "%-18s %7d %12d\n", r.name, r.n, r.dyn)
	}

	if trials > 0 {
		fmt.Fprintf(&sb, "\ntrials: %d (ranks %d..%d)\n", trials, firstRank, lastRank)
		names := make([]string, 0, len(outcomes))
		for n := range outcomes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			o := n
			if o == "" {
				o = "(none)"
			}
			fmt.Fprintf(&sb, "  %-24s %7d\n", o, outcomes[n])
		}
	}

	// Deterministic counters only: "-ns"-suffixed names carry measured
	// wall time and would break the render-twice byte-diff.
	var det []string
	for _, n := range rec.CounterNames() {
		if !strings.HasSuffix(n, "-ns") {
			det = append(det, n)
		}
	}
	if len(det) > 0 {
		sb.WriteString("\ncounters (deterministic):\n")
		for _, n := range det {
			fmt.Fprintf(&sb, "  %-36s %12d\n", n, rec.Counter(n))
		}
	}

	seal := store.Seal(rec)
	fmt.Fprintf(&sb, "\nseal: root %s (%d leaves)\n", seal.Root, len(seal.Leaves))
	return sb.String()
}

// leafName names a leaf for diff output: the trial index it covers, or
// the tail/counters marker.
func leafName(l store.LeafSeal) string {
	switch {
	case l.Rank == -1:
		return "non-trial tail"
	case l.Rank == -2:
		return "counter tables"
	case l.Rank == -3:
		return "(absent)"
	default:
		return fmt.Sprintf("trial %d", l.Rank)
	}
}

// RenderDiff seals two traces and reports where they first diverge.
// Equal roots mean the scrubbed JSONL exports are byte-identical; a
// differing leaf names the first diverging trial index without
// re-executing anything.
func RenderDiff(a, b *trace.Recorder) string {
	sa, sb := store.Seal(a), store.Seal(b)
	var out strings.Builder
	fmt.Fprintf(&out, "a: %d spans, root %s (%d leaves)\n", a.Len(), sa.Root, len(sa.Leaves))
	fmt.Fprintf(&out, "b: %d spans, root %s (%d leaves)\n", b.Len(), sb.Root, len(sb.Leaves))
	if sa.Root == sb.Root {
		out.WriteString("traces identical (equal Merkle roots)\n")
		return out.String()
	}
	i, la, lb := store.FirstDivergence(sa, sb)
	if i < 0 {
		// Roots differ but every common leaf matches: impossible unless
		// the seals were built inconsistently; say so rather than lie.
		out.WriteString("traces differ (roots disagree, no leaf divergence found)\n")
		return out.String()
	}
	fmt.Fprintf(&out, "traces differ: first divergence at leaf %d\n", i)
	fmt.Fprintf(&out, "  a: %s (%d spans, %s)\n", leafName(la), la.Spans, shortHash(la.Hash))
	fmt.Fprintf(&out, "  b: %s (%d spans, %s)\n", leafName(lb), lb.Spans, shortHash(lb.Hash))
	if la.Rank >= 0 && la.Rank == lb.Rank {
		fmt.Fprintf(&out, "first diverging trial index: %d\n", la.Rank)
	}
	return out.String()
}

// FormatInventory renders the store inventory (care-report -store): one
// row per cached golden-run entry, with its seal root when the trace
// was stored too.
func FormatInventory(entries []store.Entry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "store entries: %d\n", len(entries))
	if len(entries) == 0 {
		return sb.String()
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Key, entries[j].Key
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.ID() < b.ID()
	})
	sb.WriteString("kind      workload   opt seed  snaps warm  defenses      seal\n")
	for _, e := range entries {
		k := e.Key
		defs := strings.Join(k.Defenses, ",")
		if defs == "" {
			defs = "-"
		}
		seal := "-"
		if e.Seal != nil {
			seal = shortHash(e.Seal.Root)
		}
		fmt.Fprintf(&sb, "%-9s %-10s %3d %5d %5d %-5t %-13s %s\n",
			k.Kind, k.Workload, k.OptLevel, k.Seed, e.Snaps, k.WarmStart, defs, seal)
	}
	return sb.String()
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "-"
	}
	return h
}
