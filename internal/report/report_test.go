package report

import (
	"strings"
	"testing"
	"time"

	"care/internal/store"
	"care/internal/trace"
)

// campaignRec builds a synthetic campaign-shaped trace: per-trial
// activation+trial span pairs, a tail job span, and counters. mutate
// lets a test perturb one trial's chunk.
func campaignRec(trials int, mutate func(i int, rec *trace.Recorder)) *trace.Recorder {
	rec := trace.New(trials*4 + 8)
	for i := 0; i < trials; i++ {
		id := rec.Emit(trace.Span{Kind: trace.KindActivation, Parent: trace.NoParent,
			StartDyn: uint64(i * 100), EndDyn: uint64(i*100 + 40), Wall: time.Duration(i) * time.Millisecond,
			Outcome: "recovered", Rank: int32(i)})
		rec.Emit(trace.Span{Kind: trace.KindDiagnose, Parent: id,
			StartDyn: uint64(i * 100), EndDyn: uint64(i*100 + 10), Rank: int32(i)})
		if mutate != nil {
			mutate(i, rec)
		}
		rec.Emit(trace.Span{Kind: trace.KindTrial, Parent: trace.NoParent,
			StartDyn: uint64(i * 100), EndDyn: uint64(i*100 + 90),
			Outcome: "masked", Rank: int32(i), Val: 1})
	}
	rec.Emit(trace.Span{Kind: trace.KindJob, Parent: trace.NoParent, EndDyn: uint64(trials * 100)})
	rec.Add("campaign.trials", int64(trials))
	rec.Add("checkpoint.write-ns", 123456)
	return rec
}

func TestRenderTraceDeterministic(t *testing.T) {
	a := campaignRec(4, nil)
	// Same campaign, different measured wall times and timing counters:
	// the render must be byte-identical.
	b := campaignRec(4, nil)
	b.Add("checkpoint.write-ns", 999999)
	ra, rb := RenderTrace(a), RenderTrace(b)
	if ra != rb {
		t.Fatalf("render differs across wall-time noise:\n%s\nvs\n%s", ra, rb)
	}
	for _, want := range []string{"trial", "trials: 4 (ranks 0..3)", "masked", "campaign.trials", "seal: root "} {
		if !strings.Contains(ra, want) {
			t.Fatalf("render missing %q:\n%s", want, ra)
		}
	}
	if strings.Contains(ra, "write-ns") {
		t.Fatalf("render leaked a wall-time counter:\n%s", ra)
	}
}

func TestRenderDiffIdentical(t *testing.T) {
	out := RenderDiff(campaignRec(3, nil), campaignRec(3, nil))
	if !strings.Contains(out, "traces identical") {
		t.Fatalf("identical traces not reported as such:\n%s", out)
	}
}

func TestRenderDiffNamesTrialIndex(t *testing.T) {
	a := campaignRec(5, nil)
	b := campaignRec(5, func(i int, rec *trace.Recorder) {
		if i == 2 {
			rec.Emit(trace.Span{Kind: trace.KindRollback, Parent: trace.NoParent,
				StartDyn: 200, EndDyn: 230, Rank: 2})
		}
	})
	out := RenderDiff(a, b)
	if !strings.Contains(out, "first diverging trial index: 2") {
		t.Fatalf("diff did not name trial 2:\n%s", out)
	}
	if !strings.Contains(out, "traces differ") {
		t.Fatalf("diff did not report divergence:\n%s", out)
	}
}

func TestRenderDiffCounterLeaf(t *testing.T) {
	a := campaignRec(2, nil)
	b := campaignRec(2, nil)
	b.Add("campaign.extra", 7)
	out := RenderDiff(a, b)
	if !strings.Contains(out, "counter tables") {
		t.Fatalf("counter-only divergence not attributed to the counters leaf:\n%s", out)
	}
}

func TestFormatInventory(t *testing.T) {
	entries := []store.Entry{
		{Key: store.Key{Kind: "campaign", Workload: "HPCCG", Seed: 9, WarmStart: true}, Snaps: 12,
			Seal: &store.TraceSeal{Root: "abcdef0123456789"}},
		{Key: store.Key{Kind: "coverage", Workload: "CG", Seed: 5, Defenses: []string{"care"}}},
	}
	out := FormatInventory(entries)
	for _, want := range []string{"store entries: 2", "HPCCG", "abcdef012345", "care", "coverage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inventory missing %q:\n%s", want, out)
		}
	}
	if FormatInventory(nil) != "store entries: 0\n" {
		t.Fatal("empty inventory renders wrong")
	}
}
