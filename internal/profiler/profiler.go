// Package profiler is the reproduction's stand-in for Intel Pin in the
// paper's §5.1 methodology: it runs a binary once while counting how
// often every static instruction executes, so that the fault injector
// can pick a static instruction weighted by its dynamic frequency and a
// uniform occurrence index — approximating a uniformly random dynamic
// instruction without tracing.
package profiler

import (
	"fmt"

	"care/internal/core"
	"care/internal/machine"
)

// Profile is the result of a profiling (golden) run.
type Profile struct {
	// TotalDyn is the retired dynamic instruction count.
	TotalDyn uint64
	// Counts holds per-static-instruction execution counts, per image,
	// keyed by the image's program name.
	Counts map[string][]uint64
	// Golden is the fault-free result stream.
	Golden []float64
	// ExitCode of the golden run.
	ExitCode uint64
}

// Run executes the binary (with optional extra library binaries) to
// completion with profiling enabled. limit bounds the run (0 = none).
func Run(app *core.Binary, libs []*core.Binary, limit uint64) (*Profile, error) {
	p, err := core.NewProcess(core.ProcessConfig{App: app, Libs: libs})
	if err != nil {
		return nil, err
	}
	p.CPU.Profile = true
	st := p.Run(limit)
	if st != machine.StatusExited {
		return nil, fmt.Errorf("profiler: golden run did not exit: %v (trap %v)", st, p.CPU.PendingTrap)
	}
	prof := &Profile{
		TotalDyn: p.CPU.Dyn,
		Counts:   map[string][]uint64{},
		Golden:   append([]float64(nil), p.Results()...),
		ExitCode: p.CPU.ExitCode,
	}
	for img, cnts := range p.CPU.Counts {
		prof.Counts[img.Prog.Name] = cnts
	}
	return prof, nil
}
