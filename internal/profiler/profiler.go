// Package profiler is the reproduction's stand-in for Intel Pin in the
// paper's §5.1 methodology: it runs a binary once while counting how
// often every static instruction executes, so that the fault injector
// can pick a static instruction weighted by its dynamic frequency and a
// uniform occurrence index — approximating a uniformly random dynamic
// instruction without tracing.
package profiler

import (
	"fmt"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/machine"
)

// SnapPoint is one golden-run machine snapshot, captured at a periodic
// dyn cadence so that fault-injection trials can warm-start from the
// nearest snapshot before their injection point instead of re-executing
// the shared prefix. The snapshot's memory image is frozen
// copy-on-write, so one SnapPoint is safely shared by every concurrent
// trial that clones it.
type SnapPoint struct {
	// Dyn is the retired-instruction count at capture time (equal to
	// State.CPU.Dyn; duplicated for cheap eligibility scans).
	Dyn uint64
	// State is the full machine snapshot (memory, registers, host
	// environment output streams).
	State *checkpoint.Snapshot
	// Counts is the per-static-instruction execution count at capture
	// time, per image name — the occurrence-trigger position a trial
	// resuming here must pre-seed its arming hook with.
	Counts map[string][]uint64
}

// Profile is the result of a profiling (golden) run.
type Profile struct {
	// TotalDyn is the retired dynamic instruction count.
	TotalDyn uint64
	// Counts holds per-static-instruction execution counts, per image,
	// keyed by the image's program name.
	Counts map[string][]uint64
	// Golden is the fault-free result stream.
	Golden []float64
	// ExitCode of the golden run.
	ExitCode uint64
	// Snaps are the periodic golden-run snapshots in ascending Dyn
	// order (empty unless the profile was taken with RunWithSnapshots).
	Snaps []SnapPoint
}

// NearestSnap returns the latest snapshot strictly before dyn, or nil.
// Strictness matters: a snapshot taken at exactly dyn has already
// retired (uncorrupted) the instruction an AtDyn=dyn fault targets.
func (p *Profile) NearestSnap(dyn uint64) *SnapPoint {
	var best *SnapPoint
	for i := range p.Snaps {
		if p.Snaps[i].Dyn >= dyn {
			break
		}
		best = &p.Snaps[i]
	}
	return best
}

// Run executes the binary (with optional extra library binaries) to
// completion with profiling enabled. limit bounds the run (0 = none).
func Run(app *core.Binary, libs []*core.Binary, limit uint64) (*Profile, error) {
	return RunWithSnapshots(app, libs, limit, 0)
}

// RunWithSnapshots is Run plus periodic machine snapshots: every
// snapEvery retired instructions the golden process is checkpointed
// (frozen copy-on-write, so each capture costs O(segments), with the
// byte copying deferred to the segments the run actually dirties before
// the next capture). snapEvery == 0 disables capture; the profile is
// then identical to Run's.
func RunWithSnapshots(app *core.Binary, libs []*core.Binary, limit, snapEvery uint64) (*Profile, error) {
	p, err := core.NewProcess(core.ProcessConfig{App: app, Libs: libs})
	if err != nil {
		return nil, err
	}
	p.CPU.Profile = true
	prof := &Profile{Counts: map[string][]uint64{}}
	if snapEvery > 0 {
		copyCounts := func(c *machine.CPU) map[string][]uint64 {
			m := make(map[string][]uint64, len(c.Counts))
			for img, cnts := range c.Counts {
				m[img.Prog.Name] = append([]uint64(nil), cnts...)
			}
			return m
		}
		remove := p.CPU.AddAfterStep(func(c *machine.CPU, _ *machine.Image, _ int, _ *machine.MInstr) {
			if c.Dyn%snapEvery == 0 {
				prof.Snaps = append(prof.Snaps, SnapPoint{
					Dyn:    c.Dyn,
					State:  checkpoint.Capture(c, 0),
					Counts: copyCounts(c),
				})
			}
		})
		defer remove()
	}
	st := p.Run(limit)
	if st != machine.StatusExited {
		return nil, fmt.Errorf("profiler: golden run did not exit: %v (trap %v)", st, p.CPU.PendingTrap)
	}
	prof.TotalDyn = p.CPU.Dyn
	prof.Golden = append([]float64(nil), p.Results()...)
	prof.ExitCode = p.CPU.ExitCode
	for img, cnts := range p.CPU.Counts {
		prof.Counts[img.Prog.Name] = cnts
	}
	return prof, nil
}
