package ir

import (
	"fmt"
	"strings"
)

// String renders the module in an LLVM-flavoured textual form. The form
// is for humans and golden tests; there is no parser.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		ext := ""
		if g.Extern {
			ext = " extern"
		}
		fmt.Fprintf(&sb, "@%s = global [%d bytes]%s\n", g.Name, g.Size, ext)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function.
func (f *Func) String() string {
	var sb strings.Builder
	var ps []string
	for _, p := range f.Params {
		ps = append(ps, fmt.Sprintf("%s %%%s", p.Typ, p.Name))
	}
	kernel := ""
	if f.Kernel {
		kernel = " ; recovery kernel"
	}
	fmt.Fprintf(&sb, "\nfunc %s @%s(%s)%s {\n", f.RetType, f.Name, strings.Join(ps, ", "), kernel)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders a single instruction.
func (i *Instr) String() string {
	var sb strings.Builder
	if i.Typ != Void {
		fmt.Fprintf(&sb, "%%%s = ", i.Name)
	}
	switch i.Op {
	case OpAlloca:
		fmt.Fprintf(&sb, "alloca %d", i.Size)
	case OpGEP:
		fmt.Fprintf(&sb, "gep %s, %s x %d", i.Ops[0].Ref(), i.Ops[1].Ref(), i.Size)
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", i.Typ, i.Ops[0].Ref())
	case OpStore:
		fmt.Fprintf(&sb, "store %s, %s", i.Ops[0].Ref(), i.Ops[1].Ref())
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s ", i.Typ)
		for k := range i.Ops {
			if k > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, %s]", i.Ops[k].Ref(), i.Blocks[k].Name)
		}
	case OpBr:
		fmt.Fprintf(&sb, "br %s", i.Blocks[0].Name)
	case OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, %s, %s", i.Ops[0].Ref(), i.Blocks[0].Name, i.Blocks[1].Name)
	case OpRet:
		if len(i.Ops) == 0 {
			sb.WriteString("ret")
		} else {
			fmt.Fprintf(&sb, "ret %s", i.Ops[0].Ref())
		}
	case OpCall:
		target := i.Host
		if i.Callee != nil {
			target = i.Callee.Name
		}
		var as []string
		for _, a := range i.Ops {
			as = append(as, a.Ref())
		}
		fmt.Fprintf(&sb, "call @%s(%s)", target, strings.Join(as, ", "))
	default:
		var as []string
		for _, a := range i.Ops {
			as = append(as, a.Ref())
		}
		fmt.Fprintf(&sb, "%s %s", i.Op, strings.Join(as, ", "))
	}
	if !i.Loc.IsZero() {
		fmt.Fprintf(&sb, "  ; !%s", i.Loc)
	}
	return sb.String()
}
