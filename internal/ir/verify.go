package ir

import "fmt"

// VerifyModule checks structural well-formedness of every function in the
// module and returns the first problem found.
func VerifyModule(m *Module) error {
	seen := map[string]bool{}
	for _, f := range m.Funcs {
		if seen[f.Name] {
			return fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		seen[f.Name] = true
		if len(f.Blocks) == 0 {
			continue // extern declaration, resolved at link time
		}
		if err := VerifyFunc(f); err != nil {
			return fmt.Errorf("ir: %s: %w", f.Name, err)
		}
	}
	return nil
}

// VerifyFunc checks a single function: block termination, operand
// arities and types, phi placement/consistency, and SSA dominance
// (every use is dominated by its definition).
func VerifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("function has no blocks")
	}
	f.Renumber()
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	names := map[string]bool{}
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			return fmt.Errorf("block %s is not terminated", b.Name)
		}
		for ii, in := range b.Instrs {
			if in.Op.IsTerminator() && ii != len(b.Instrs)-1 {
				return fmt.Errorf("block %s: terminator %s not at end", b.Name, in.Op)
			}
			if in.Op == OpPhi {
				if prevNonPhi(b, ii) {
					return fmt.Errorf("block %s: phi %%%s after non-phi", b.Name, in.Name)
				}
			}
			if in.Typ != Void {
				if in.Name == "" {
					return fmt.Errorf("unnamed value-producing %s in %s", in.Op, b.Name)
				}
				if names[in.Name] {
					return fmt.Errorf("duplicate SSA name %%%s", in.Name)
				}
				names[in.Name] = true
			}
			if err := verifyInstr(f, b, in, blockSet); err != nil {
				return err
			}
		}
	}
	return verifyDominance(f)
}

func prevNonPhi(b *Block, ii int) bool {
	for i := 0; i < ii; i++ {
		if b.Instrs[i].Op != OpPhi {
			return true
		}
	}
	return false
}

func verifyInstr(f *Func, b *Block, in *Instr, blocks map[*Block]bool) error {
	ctx := func(format string, args ...any) error {
		return fmt.Errorf("%s: %s: %s", b.Name, in.Op, fmt.Sprintf(format, args...))
	}
	wantOps := func(n int) error {
		if len(in.Ops) != n {
			return ctx("want %d operands, have %d", n, len(in.Ops))
		}
		return nil
	}
	intLike := func(t Type) bool { return t == I64 || t == Ptr }
	switch {
	case in.Op.IsIntBinary():
		if err := wantOps(2); err != nil {
			return err
		}
		for _, o := range in.Ops {
			if !intLike(o.Type()) {
				return ctx("integer op with %s operand", o.Type())
			}
		}
	case in.Op.IsFloatBinary():
		if err := wantOps(2); err != nil {
			return err
		}
		for _, o := range in.Ops {
			if o.Type() != F64 {
				return ctx("float op with %s operand", o.Type())
			}
		}
		if in.Typ != F64 {
			return ctx("float op with %s result", in.Typ)
		}
	case in.Op.IsICmp():
		if err := wantOps(2); err != nil {
			return err
		}
		for _, o := range in.Ops {
			if !intLike(o.Type()) {
				return ctx("icmp with %s operand", o.Type())
			}
		}
	case in.Op.IsFCmp():
		if err := wantOps(2); err != nil {
			return err
		}
		for _, o := range in.Ops {
			if o.Type() != F64 {
				return ctx("fcmp with %s operand", o.Type())
			}
		}
	case in.Op == OpIToF:
		if err := wantOps(1); err != nil {
			return err
		}
		if !intLike(in.Ops[0].Type()) {
			return ctx("itof of %s", in.Ops[0].Type())
		}
	case in.Op == OpFToI:
		if err := wantOps(1); err != nil {
			return err
		}
		if in.Ops[0].Type() != F64 {
			return ctx("ftoi of %s", in.Ops[0].Type())
		}
	case in.Op == OpAlloca:
		if in.Size <= 0 || in.Size%8 != 0 {
			return ctx("bad alloca size %d", in.Size)
		}
	case in.Op == OpGEP:
		if err := wantOps(2); err != nil {
			return err
		}
		if in.Ops[0].Type() != Ptr {
			return ctx("gep base is %s, not ptr", in.Ops[0].Type())
		}
		if !intLike(in.Ops[1].Type()) {
			return ctx("gep index is %s", in.Ops[1].Type())
		}
		if in.Size <= 0 {
			return ctx("gep elem size %d", in.Size)
		}
	case in.Op == OpLoad:
		if err := wantOps(1); err != nil {
			return err
		}
		if in.Ops[0].Type() != Ptr {
			return ctx("load of non-ptr %s", in.Ops[0].Type())
		}
	case in.Op == OpStore:
		if err := wantOps(2); err != nil {
			return err
		}
		if in.Ops[1].Type() != Ptr {
			return ctx("store to non-ptr %s", in.Ops[1].Type())
		}
	case in.Op == OpPhi:
		if len(in.Ops) == 0 || len(in.Ops) != len(in.Blocks) {
			return ctx("phi incoming mismatch: %d values, %d blocks", len(in.Ops), len(in.Blocks))
		}
		preds := f.Preds()[b]
		if len(preds) != len(in.Blocks) {
			return ctx("phi has %d incomings for %d predecessors", len(in.Blocks), len(preds))
		}
		for _, pb := range in.Blocks {
			if !containsBlock(preds, pb) {
				return ctx("phi incoming from non-predecessor %s", pb.Name)
			}
		}
	case in.Op == OpBr:
		if len(in.Blocks) != 1 || !blocks[in.Blocks[0]] {
			return ctx("bad branch target")
		}
	case in.Op == OpCondBr:
		if err := wantOps(1); err != nil {
			return err
		}
		if len(in.Blocks) != 2 || !blocks[in.Blocks[0]] || !blocks[in.Blocks[1]] {
			return ctx("bad condbr targets")
		}
	case in.Op == OpRet:
		if f.RetType == Void && len(in.Ops) != 0 {
			return ctx("ret with value in void function")
		}
		if f.RetType != Void && len(in.Ops) != 1 {
			return ctx("ret without value in non-void function")
		}
	case in.Op == OpCall:
		if in.Callee == nil && in.Host == "" {
			return ctx("call without target")
		}
		if in.Callee != nil {
			if len(in.Ops) != len(in.Callee.Params) {
				return ctx("call to %s with %d args, want %d", in.Callee.Name, len(in.Ops), len(in.Callee.Params))
			}
			for ai, a := range in.Ops {
				if a.Type() != in.Callee.Params[ai].Typ && !(a.Type() == Ptr && in.Callee.Params[ai].Typ == I64) &&
					!(a.Type() == I64 && in.Callee.Params[ai].Typ == Ptr) {
					return ctx("call arg %d is %s, want %s", ai, a.Type(), in.Callee.Params[ai].Typ)
				}
			}
		}
	default:
		return ctx("unknown opcode")
	}
	return nil
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// verifyDominance checks that every instruction operand that is itself an
// instruction dominates its use (phi uses are checked at the incoming
// edge's predecessor terminator).
func verifyDominance(f *Func) error {
	dom := Dominators(f)
	for _, b := range f.Blocks {
		for ii, in := range b.Instrs {
			for oi, op := range in.Ops {
				def, ok := op.(*Instr)
				if !ok {
					continue
				}
				if def.Parent == nil || def.Parent.Fn != f {
					return fmt.Errorf("%s: %%%s uses value %s from another function", b.Name, in.Name, def.Ref())
				}
				var useBlock *Block
				var usePos int
				if in.Op == OpPhi {
					useBlock = in.Blocks[oi]
					usePos = len(useBlock.Instrs) // end of predecessor
				} else {
					useBlock = b
					usePos = ii
				}
				if !dominatesPos(dom, def, useBlock, usePos) {
					return fmt.Errorf("%s: use of %%%s in %%%s(%s) not dominated by def",
						b.Name, def.Name, in.Name, in.Op)
				}
			}
		}
	}
	return nil
}

func dominatesPos(dom map[*Block]*Block, def *Instr, useBlock *Block, usePos int) bool {
	if def.Parent == useBlock {
		for i := 0; i < usePos; i++ {
			if useBlock.Instrs[i] == def {
				return true
			}
		}
		return false
	}
	// Walk the dominator tree upward from useBlock.
	for b := dom[useBlock]; b != nil; {
		if b == def.Parent {
			return true
		}
		nb := dom[b]
		if nb == b {
			break
		}
		b = nb
	}
	return false
}

// Dominators computes the immediate-dominator map using the simple
// iterative algorithm (Cooper/Harvey/Kennedy). The entry block maps to
// itself. Unreachable blocks are absent from the result.
func Dominators(f *Func) map[*Block]*Block {
	f.Renumber()
	// Reverse postorder over reachable blocks.
	var rpo []*Block
	state := map[*Block]int{}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		state[b] = 1
		for _, s := range b.Succs() {
			if state[s] == 0 {
				dfs(s)
			}
		}
		rpo = append(rpo, b)
	}
	entry := f.Entry()
	if entry == nil {
		return nil
	}
	dfs(entry)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	order := map[*Block]int{}
	for i, b := range rpo {
		order[b] = i
	}
	idom := map[*Block]*Block{entry: entry}
	preds := f.Preds()
	intersect := func(a, b *Block) *Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range preds[b] {
				if _, ok := idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom == nil {
				continue
			}
			if idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}
