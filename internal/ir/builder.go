package ir

import "fmt"

// Builder constructs functions instruction by instruction, assigning SSA
// names and debug locations automatically. A fresh "source line" is
// started with NewLine; all instructions emitted on the same line get
// increasing column numbers, mirroring how clang emits several IR
// instructions per source statement.
type Builder struct {
	Mod *Module
	Fn  *Func
	Blk *Block

	line int32
	col  int32
}

// NewBuilder returns a builder appending to the given module.
func NewBuilder(m *Module) *Builder { return &Builder{Mod: m} }

// NewFunc starts a new function and positions the builder at a fresh
// entry block. The file component of debug locations is the function
// name prefixed with the module name, which makes (file,line,col) keys
// unique per function by construction.
func (b *Builder) NewFunc(name string, ret Type, params ...*Arg) *Func {
	f := &Func{
		Name:    name,
		File:    b.Mod.Name + "/" + name,
		RetType: ret,
		Module:  b.Mod,
	}
	for i, p := range params {
		p.Index = i
		p.Fn = f
		if p.Name == "" {
			p.Name = fmt.Sprintf("arg%d", i)
		}
	}
	f.Params = params
	b.Mod.Funcs = append(b.Mod.Funcs, f)
	b.Fn = f
	b.line = 0
	b.col = 0
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	return f
}

// Param is a convenience constructor for function parameters.
func Param(name string, t Type) *Arg { return &Arg{Name: name, Typ: t} }

// NewBlock appends a new block to the current function without changing
// the insertion point.
func (b *Builder) NewBlock(name string) *Block {
	blk := &Block{Name: fmt.Sprintf("%s%d", name, len(b.Fn.Blocks)), Fn: b.Fn}
	b.Fn.Blocks = append(b.Fn.Blocks, blk)
	return blk
}

// SetBlock moves the insertion point to the end of blk.
func (b *Builder) SetBlock(blk *Block) { b.Blk = blk }

// NewLine starts a new debug source line; subsequent instructions share
// the line with increasing columns.
func (b *Builder) NewLine() {
	b.line++
	b.col = 0
}

func (b *Builder) nextLoc() Loc {
	if b.line == 0 {
		b.line = 1
	}
	b.col++
	return Loc{Line: b.line, Col: b.col}
}

func (b *Builder) emit(in *Instr) *Instr {
	if b.Blk == nil {
		panic("ir: builder has no current block")
	}
	if t := b.Blk.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: emitting %s after terminator in %s/%s", in.Op, b.Fn.Name, b.Blk.Name))
	}
	if in.Typ != Void && in.Name == "" {
		in.Name = fmt.Sprintf("v%d", b.Fn.nameSeq)
		b.Fn.nameSeq++
	}
	in.Parent = b.Blk
	in.Loc = b.nextLoc()
	b.Blk.Instrs = append(b.Blk.Instrs, in)
	return in
}

func (b *Builder) binary(op Op, t Type, x, y Value) *Instr {
	return b.emit(&Instr{Op: op, Typ: t, Ops: []Value{x, y}})
}

// Add emits x+y.
func (b *Builder) Add(x, y Value) *Instr { return b.binary(OpAdd, x.Type(), x, y) }

// Sub emits x-y.
func (b *Builder) Sub(x, y Value) *Instr { return b.binary(OpSub, x.Type(), x, y) }

// Mul emits x*y.
func (b *Builder) Mul(x, y Value) *Instr { return b.binary(OpMul, I64, x, y) }

// SDiv emits x/y (signed; traps on division by zero at run time).
func (b *Builder) SDiv(x, y Value) *Instr { return b.binary(OpSDiv, I64, x, y) }

// SRem emits x%y (signed).
func (b *Builder) SRem(x, y Value) *Instr { return b.binary(OpSRem, I64, x, y) }

// And emits x&y.
func (b *Builder) And(x, y Value) *Instr { return b.binary(OpAnd, I64, x, y) }

// Or emits x|y.
func (b *Builder) Or(x, y Value) *Instr { return b.binary(OpOr, I64, x, y) }

// Xor emits x^y.
func (b *Builder) Xor(x, y Value) *Instr { return b.binary(OpXor, I64, x, y) }

// Shl emits x<<y.
func (b *Builder) Shl(x, y Value) *Instr { return b.binary(OpShl, I64, x, y) }

// AShr emits x>>y (arithmetic).
func (b *Builder) AShr(x, y Value) *Instr { return b.binary(OpAShr, I64, x, y) }

// FAdd emits x+y for floats.
func (b *Builder) FAdd(x, y Value) *Instr { return b.binary(OpFAdd, F64, x, y) }

// FSub emits x-y for floats.
func (b *Builder) FSub(x, y Value) *Instr { return b.binary(OpFSub, F64, x, y) }

// FMul emits x*y for floats.
func (b *Builder) FMul(x, y Value) *Instr { return b.binary(OpFMul, F64, x, y) }

// FDiv emits x/y for floats.
func (b *Builder) FDiv(x, y Value) *Instr { return b.binary(OpFDiv, F64, x, y) }

// ICmp emits an integer comparison with the given predicate opcode.
func (b *Builder) ICmp(op Op, x, y Value) *Instr {
	if !op.IsICmp() {
		panic("ir: ICmp with non-icmp op " + op.String())
	}
	return b.binary(op, I64, x, y)
}

// FCmp emits a float comparison with the given predicate opcode.
func (b *Builder) FCmp(op Op, x, y Value) *Instr {
	if !op.IsFCmp() {
		panic("ir: FCmp with non-fcmp op " + op.String())
	}
	return b.binary(op, I64, x, y)
}

// IToF emits an int-to-float conversion.
func (b *Builder) IToF(x Value) *Instr {
	return b.emit(&Instr{Op: OpIToF, Typ: F64, Ops: []Value{x}})
}

// FToI emits a float-to-int (truncating) conversion.
func (b *Builder) FToI(x Value) *Instr {
	return b.emit(&Instr{Op: OpFToI, Typ: I64, Ops: []Value{x}})
}

// Alloca reserves size bytes of the frame and yields their address.
func (b *Builder) Alloca(size int64) *Instr {
	if size <= 0 || size%8 != 0 {
		panic("ir: alloca size must be a positive multiple of 8")
	}
	return b.emit(&Instr{Op: OpAlloca, Typ: Ptr, Size: size})
}

// GEP emits base + index*elemSize.
func (b *Builder) GEP(base Value, index Value, elemSize int64) *Instr {
	if elemSize <= 0 {
		panic("ir: gep element size must be positive")
	}
	return b.emit(&Instr{Op: OpGEP, Typ: Ptr, Ops: []Value{base, index}, Size: elemSize})
}

// Load emits a typed load from ptr.
func (b *Builder) Load(t Type, ptr Value) *Instr {
	if t != I64 && t != F64 && t != Ptr {
		panic("ir: load of non-scalar type")
	}
	return b.emit(&Instr{Op: OpLoad, Typ: t, Ops: []Value{ptr}})
}

// Store emits a store of val to ptr.
func (b *Builder) Store(val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Typ: Void, Ops: []Value{val, ptr}})
}

// Phi emits an (initially empty) phi node; add incomings with AddIncoming.
func (b *Builder) Phi(t Type) *Instr {
	return b.emit(&Instr{Op: OpPhi, Typ: t})
}

// AddIncoming appends an incoming (value, predecessor) pair to a phi.
func AddIncoming(phi *Instr, v Value, from *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Ops = append(phi.Ops, v)
	phi.Blocks = append(phi.Blocks, from)
}

// Br emits an unconditional branch.
func (b *Builder) Br(dst *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Typ: Void, Blocks: []*Block{dst}})
}

// CondBr emits a conditional branch (nonzero cond takes ifTrue).
func (b *Builder) CondBr(cond Value, ifTrue, ifFalse *Block) *Instr {
	return b.emit(&Instr{Op: OpCondBr, Typ: Void, Ops: []Value{cond}, Blocks: []*Block{ifTrue, ifFalse}})
}

// Ret emits a return; v may be nil for void functions.
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Typ: Void}
	if v != nil {
		in.Ops = []Value{v}
	}
	return b.emit(in)
}

// Call emits a direct call to callee.
func (b *Builder) Call(callee *Func, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Typ: callee.RetType, Callee: callee, Ops: args})
}

// HostCall emits a call to a host (simulated OS / runtime) function.
func (b *Builder) HostCall(name string, ret Type, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Typ: ret, Host: name, Ops: args})
}
