package ir

import "testing"

// buildLoop constructs:
//
//	entry: base = x+1; br loop
//	loop:  i = phi [0,entry],[inext,body]; c = i<10; condbr c, body, exit
//	body:  use = base+i; inext = i+1; local = use*2 (local-only); br loop
//	exit:  ret base
func buildLoop(t *testing.T) (f *Func, base, i, use, local, inext *Instr) {
	t.Helper()
	m := NewModule("t")
	b := NewBuilder(m)
	f = b.NewFunc("f", I64, Param("x", I64))
	entry := f.Entry()
	loop := b.NewBlock("loop")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	base = b.Add(f.Params[0], ConstInt(1))
	b.Br(loop)
	b.SetBlock(loop)
	i = b.Phi(I64)
	c := b.ICmp(OpICmpSLT, i, ConstInt(10))
	b.CondBr(c, body, exit)
	b.SetBlock(body)
	use = b.Add(base, i)
	local = b.Mul(use, ConstInt(2))
	_ = local
	inext = b.Add(i, ConstInt(1))
	b.Br(loop)
	AddIncoming(i, ConstInt(0), entry)
	AddIncoming(i, inext, body)
	b.SetBlock(exit)
	b.Ret(base)
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return
}

func TestLivenessThroughLoop(t *testing.T) {
	f, base, i, use, _, inext := buildLoop(t)
	l := ComputeLiveness(f)
	// base is live everywhere up to the final ret, including at `use`.
	if !l.LiveAt(base, use) {
		t.Error("base should be live at its use in the loop body")
	}
	// base is live at the terminator of the loop header (used in exit).
	header := f.Blocks[1]
	if !l.LiveAt(base, header.Instrs[len(header.Instrs)-1]) {
		t.Error("base should be live at the loop header terminator")
	}
	// The phi i is live at `use` (used by inext right after).
	if !l.LiveAt(i, use) {
		t.Error("i should be live at use")
	}
	// inext is NOT live at `use` (defined later in the block).
	if l.LiveAt(inext, use) {
		t.Error("inext cannot be live before its definition")
	}
}

func TestLivenessDeadAfterLastUse(t *testing.T) {
	f, _, _, use, local, inext := buildLoop(t)
	l := ComputeLiveness(f)
	// `local` has no uses at all: not live anywhere after definition.
	if l.LiveAt(local, inext) {
		t.Error("unused value reported live")
	}
	// `use` is consumed by `local` immediately; it is dead at inext.
	if l.LiveAt(use, inext) {
		t.Error("use should be dead after its last consumer")
	}
}

func TestHasNonLocalUse(t *testing.T) {
	f, base, i, use, local, inext := buildLoop(t)
	l := ComputeLiveness(f)
	if !l.HasNonLocalUse(base) {
		t.Error("base is used in body and exit: non-local")
	}
	if !l.HasNonLocalUse(inext) {
		t.Error("inext feeds a phi: non-local")
	}
	if l.HasNonLocalUse(use) {
		t.Error("use is consumed only locally")
	}
	if l.HasNonLocalUse(local) {
		t.Error("local has no uses at all")
	}
	// The phi i is used in its own block (cmp) and in body: non-local.
	if !l.HasNonLocalUse(i) {
		t.Error("phi i has a use in another block")
	}
	_ = f
}

func TestLivenessLiveOutSets(t *testing.T) {
	f, base, i, _, _, inext := buildLoop(t)
	l := ComputeLiveness(f)
	entry := f.Blocks[0]
	body := f.Blocks[2]
	if !l.LiveOut(entry)[base] {
		t.Error("base must be live-out of entry")
	}
	// inext is live-out of body (phi use on the back edge).
	if !l.LiveOut(body)[inext] {
		t.Error("inext must be live-out of body (phi edge)")
	}
	// i is NOT live-in to entry.
	if l.LiveIn(entry)[i] {
		t.Error("phi cannot be live-in to entry")
	}
}

func TestLivenessArgs(t *testing.T) {
	f, base, _, use, _, _ := buildLoop(t)
	l := ComputeLiveness(f)
	x := f.Params[0]
	// x's only use is in entry (computing base): dead in the loop.
	if l.LiveAt(x, use) {
		t.Error("x should be dead in the loop body")
	}
	if l.HasNonLocalUse(x) {
		t.Error("x is used only in entry")
	}
	_ = base
}
