// Package ir implements a miniature SSA intermediate representation in
// the spirit of LLVM IR. It is the substrate on which the CARE front end
// (Armor) operates: programs are built with a Builder, analysed with the
// liveness and dominator analyses in this package, lowered to machine
// code by internal/compiler, and mined for recovery kernels by
// internal/armor.
//
// The IR is deliberately small: two scalar types (I64, F64) plus
// pointers, explicit Load/Store memory access, a single-index GEP for
// address arithmetic, phi nodes, and calls that are either direct
// (to another function in some module) or "host" calls into the
// simulated operating environment (I/O, malloc, MPI, abort, math).
package ir

import "fmt"

// Type is the type of an IR value.
type Type uint8

const (
	// Void is the type of instructions that produce no value.
	Void Type = iota
	// I64 is a 64-bit signed integer.
	I64
	// F64 is a 64-bit IEEE-754 float.
	F64
	// Ptr is a 64-bit pointer (an address in the simulated machine).
	Ptr
)

// String returns the LLVM-flavoured spelling of the type.
func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I64:
		return "i64"
	case F64:
		return "f64"
	case Ptr:
		return "ptr"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpInvalid is the zero Op; it never appears in a verified module.
	OpInvalid Op = iota

	// Integer binary arithmetic. Operands and result are I64
	// (or Ptr for pointer arithmetic produced by lowering).
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpAShr

	// Float binary arithmetic. Operands and result are F64.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons produce an I64 that is 0 or 1.
	OpICmpEQ
	OpICmpNE
	OpICmpSLT
	OpICmpSLE
	OpICmpSGT
	OpICmpSGE
	OpFCmpOEQ
	OpFCmpONE
	OpFCmpOLT
	OpFCmpOLE
	OpFCmpOGT
	OpFCmpOGE

	// Conversions.
	OpIToF // I64 -> F64
	OpFToI // F64 -> I64 (truncating)

	// Memory.
	OpAlloca // reserve Size bytes of stack; result Ptr
	OpGEP    // Ops[0]=base Ptr, Ops[1]=index I64; result = base + index*Size
	OpLoad   // Ops[0]=Ptr; result I64 or F64 according to Typ
	OpStore  // Ops[0]=value, Ops[1]=Ptr; no result

	// Control flow.
	OpPhi    // Ops[i] incoming from Blocks[i]
	OpBr     // unconditional branch to Blocks[0]
	OpCondBr // Ops[0]=cond (I64, nonzero=true); Blocks[0]=true, Blocks[1]=false
	OpRet    // optional Ops[0] return value
	OpCall   // direct or host call; Ops = arguments

	opMax
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmpEQ: "icmp eq", OpICmpNE: "icmp ne", OpICmpSLT: "icmp slt",
	OpICmpSLE: "icmp sle", OpICmpSGT: "icmp sgt", OpICmpSGE: "icmp sge",
	OpFCmpOEQ: "fcmp oeq", OpFCmpONE: "fcmp one", OpFCmpOLT: "fcmp olt",
	OpFCmpOLE: "fcmp ole", OpFCmpOGT: "fcmp ogt", OpFCmpOGE: "fcmp oge",
	OpIToF: "itof", OpFToI: "ftoi",
	OpAlloca: "alloca", OpGEP: "gep", OpLoad: "load", OpStore: "store",
	OpPhi: "phi", OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpCall: "call",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsIntBinary reports whether the opcode is an integer binary operation.
func (o Op) IsIntBinary() bool { return o >= OpAdd && o <= OpAShr }

// IsFloatBinary reports whether the opcode is a float binary operation.
func (o Op) IsFloatBinary() bool { return o >= OpFAdd && o <= OpFDiv }

// IsICmp reports whether the opcode is an integer comparison.
func (o Op) IsICmp() bool { return o >= OpICmpEQ && o <= OpICmpSGE }

// IsFCmp reports whether the opcode is a float comparison.
func (o Op) IsFCmp() bool { return o >= OpFCmpOEQ && o <= OpFCmpOGE }

// IsBinary reports whether the opcode is any two-operand computation
// (arithmetic or comparison). GEP is address arithmetic but is counted
// separately by the address-computation census.
func (o Op) IsBinary() bool {
	return o.IsIntBinary() || o.IsFloatBinary() || o.IsICmp() || o.IsFCmp()
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// Loc is a source location: the (line, column) half of the
// (file, line, column) debug key used by CARE. The file component lives
// on the enclosing function. A zero Loc means "no location".
type Loc struct {
	Line int32
	Col  int32
}

// IsZero reports whether the location is unset.
func (l Loc) IsZero() bool { return l.Line == 0 && l.Col == 0 }

func (l Loc) String() string { return fmt.Sprintf("%d:%d", l.Line, l.Col) }

// Value is anything that can appear as an instruction operand: constants,
// globals, function arguments and instructions that produce a result.
type Value interface {
	// Type returns the type of the value.
	Type() Type
	// Ref returns the short printed reference of the value
	// (e.g. "%v3", "@grid", "42").
	Ref() string
}

// Const is a compile-time constant of type I64, F64 or Ptr.
type Const struct {
	Typ Type
	I   int64   // value when Typ is I64 or Ptr
	F   float64 // value when Typ is F64
}

// ConstInt returns an I64 constant.
func ConstInt(v int64) *Const { return &Const{Typ: I64, I: v} }

// ConstFloat returns an F64 constant.
func ConstFloat(v float64) *Const { return &Const{Typ: F64, F: v} }

// Type implements Value.
func (c *Const) Type() Type { return c.Typ }

// Ref implements Value.
func (c *Const) Ref() string {
	if c.Typ == F64 {
		return fmt.Sprintf("%g", c.F)
	}
	return fmt.Sprintf("%d", c.I)
}

// Global is a module-level array of Size bytes, optionally initialised.
// Its address is assigned at load time; the compiler emits a relocation.
type Global struct {
	Name string
	Size int64 // in bytes; must be a multiple of 8
	// InitI64/InitF64 optionally provide initial words (at most one set).
	InitI64 []int64
	InitF64 []float64
	// Extern marks a global that is resolved against another image at
	// load time (used by recovery-kernel libraries that reference the
	// application's globals).
	Extern bool
}

// Type implements Value; a global evaluates to its address.
func (g *Global) Type() Type { return Ptr }

// Ref implements Value.
func (g *Global) Ref() string { return "@" + g.Name }

// Arg is a formal parameter of a function.
type Arg struct {
	Name  string
	Typ   Type
	Index int
	Fn    *Func
}

// Type implements Value.
func (a *Arg) Type() Type { return a.Typ }

// Ref implements Value.
func (a *Arg) Ref() string { return "%" + a.Name }

// Instr is a single IR instruction. Instructions that produce a value
// (Typ != Void) implement Value and are referenced by name.
type Instr struct {
	Op     Op
	Typ    Type    // result type; Void when no result
	Ops    []Value // operands
	Blocks []*Block
	// Size is the element size for OpGEP and the byte size for OpAlloca.
	Size int64
	// Callee is the target of a direct OpCall within the same module.
	Callee *Func
	// Host is the name of a host function for OpCall when Callee is nil.
	Host string
	// Name is the SSA name, unique within the function.
	Name string
	// Parent is the containing block.
	Parent *Block
	// Loc is the debug location (line, column); the file is
	// Parent.Fn.File.
	Loc Loc
	// ID is a dense per-function index assigned by Func.Renumber.
	ID int
}

// Type implements Value.
func (i *Instr) Type() Type { return i.Typ }

// Ref implements Value.
func (i *Instr) Ref() string { return "%" + i.Name }

// Func returns the function containing the instruction, or nil if the
// instruction is detached.
func (i *Instr) Func() *Func {
	if i.Parent == nil {
		return nil
	}
	return i.Parent.Fn
}

// IsMemAccess reports whether the instruction is a Load or Store, i.e.
// one of the crash-prone instructions CARE protects.
func (i *Instr) IsMemAccess() bool { return i.Op == OpLoad || i.Op == OpStore }

// PointerOperand returns the address operand of a Load or Store and true,
// or nil and false for other instructions.
func (i *Instr) PointerOperand() (Value, bool) {
	switch i.Op {
	case OpLoad:
		return i.Ops[0], true
	case OpStore:
		return i.Ops[1], true
	}
	return nil, false
}

// Block is a basic block: a straight-line instruction sequence ending in
// a terminator.
type Block struct {
	Name   string
	Fn     *Func
	Instrs []*Instr
	// Index is the position of the block within Fn.Blocks.
	Index int
}

// Terminator returns the final instruction of the block, or nil if the
// block is empty or unterminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Blocks
}

// Func is a function: a parameter list and a list of basic blocks, the
// first of which is the entry block.
type Func struct {
	Name    string
	File    string // debug "file" component of the CARE key
	Params  []*Arg
	RetType Type
	Blocks  []*Block
	Module  *Module
	// Kernel marks functions generated by Armor as recovery kernels.
	Kernel bool
	// nameSeq is the running counter for automatic SSA names.
	nameSeq int
}

// Entry returns the entry block, or nil for a declaration.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NumInstrs returns the total instruction count across all blocks.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Renumber assigns dense instruction IDs and block indices in layout
// order. Analyses (liveness, dominators) require a renumbered function.
func (f *Func) Renumber() {
	id := 0
	for bi, b := range f.Blocks {
		b.Index = bi
		b.Fn = f
		for _, in := range b.Instrs {
			in.ID = id
			in.Parent = b
			id++
		}
	}
}

// Preds returns the predecessor map of the function's CFG.
func (f *Func) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// Module is a translation unit: functions plus globals.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddGlobal appends a global, panicking on duplicate names (a programming
// error in workload builders).
func (m *Module) AddGlobal(g *Global) *Global {
	if m.Global(g.Name) != nil {
		panic("ir: duplicate global " + g.Name)
	}
	if g.Size%8 != 0 {
		panic("ir: global size not a multiple of 8: " + g.Name)
	}
	m.Globals = append(m.Globals, g)
	return g
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }
