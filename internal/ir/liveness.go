package ir

// Liveness holds the result of an SSA liveness analysis over one
// function. Armor consults it to decide which values are guaranteed to
// still be materialised (in a register or stack slot) at a memory-access
// instruction, and therefore eligible as recovery-kernel parameters.
type Liveness struct {
	Fn      *Func
	liveOut map[*Block]map[Value]bool
	liveIn  map[*Block]map[Value]bool
	pos     map[*Instr]int // position within parent block
	uses    map[Value][]*Instr
}

// ComputeLiveness runs the backward dataflow analysis. The function must
// verify (or at least be renumbered and in SSA form).
func ComputeLiveness(f *Func) *Liveness {
	f.Renumber()
	l := &Liveness{
		Fn:      f,
		liveOut: map[*Block]map[Value]bool{},
		liveIn:  map[*Block]map[Value]bool{},
		pos:     map[*Instr]int{},
		uses:    map[Value][]*Instr{},
	}
	trackable := func(v Value) bool {
		switch v.(type) {
		case *Instr, *Arg:
			return true
		}
		return false
	}
	// Per-block upward-exposed uses and defs; phi operands are uses on
	// the incoming edge (live-out of the predecessor, not live-in here).
	use := map[*Block]map[Value]bool{}
	def := map[*Block]map[Value]bool{}
	phiUse := map[*Block]map[Value]bool{} // keyed by predecessor
	for _, b := range f.Blocks {
		use[b] = map[Value]bool{}
		def[b] = map[Value]bool{}
		l.liveOut[b] = map[Value]bool{}
		l.liveIn[b] = map[Value]bool{}
		if phiUse[b] == nil {
			phiUse[b] = map[Value]bool{}
		}
	}
	for _, b := range f.Blocks {
		for ii, in := range b.Instrs {
			l.pos[in] = ii
			for oi, op := range in.Ops {
				if !trackable(op) {
					continue
				}
				l.uses[op] = append(l.uses[op], in)
				if in.Op == OpPhi {
					p := in.Blocks[oi]
					if phiUse[p] == nil {
						phiUse[p] = map[Value]bool{}
					}
					phiUse[p][op] = true
					continue
				}
				if d, ok := op.(*Instr); !ok || d.Parent != b {
					use[b][op] = true
				}
			}
			if in.Typ != Void {
				def[b][in] = true
			}
		}
	}
	// Fixpoint.
	for changed := true; changed; {
		changed = false
		for bi := len(f.Blocks) - 1; bi >= 0; bi-- {
			b := f.Blocks[bi]
			out := l.liveOut[b]
			n0 := len(out)
			for v := range phiUse[b] {
				out[v] = true
			}
			for _, s := range b.Succs() {
				for v := range l.liveIn[s] {
					out[v] = true
				}
			}
			in := l.liveIn[b]
			n1 := len(in)
			for v := range use[b] {
				in[v] = true
			}
			for v := range out {
				if !def[b][v] {
					in[v] = true
				}
			}
			if len(out) != n0 || len(in) != n1 {
				changed = true
			}
		}
	}
	return l
}

// LiveAt reports whether value v is live immediately at instruction at
// (i.e. v is defined by then and is used by at or by some later
// instruction along at least one path). Constants and globals are always
// "live" in the sense of availability, but LiveAt only answers for
// instructions and arguments; other values return false.
func (l *Liveness) LiveAt(v Value, at *Instr) bool {
	switch v.(type) {
	case *Instr, *Arg:
	default:
		return false
	}
	b := at.Parent
	p, ok := l.pos[at]
	if !ok || b == nil || b.Fn != l.Fn {
		return false
	}
	if d, isInstr := v.(*Instr); isInstr {
		if d.Parent == nil || d.Parent.Fn != l.Fn {
			return false
		}
		if d.Parent == b && l.pos[d] >= p {
			return false // not yet defined at this point
		}
	}
	// A (non-phi) use at position >= p within the block keeps v live.
	for i := p; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		if in.Op == OpPhi {
			continue
		}
		for _, op := range in.Ops {
			if op == v {
				return true
			}
		}
	}
	return l.liveOut[b][v]
}

// Uses returns the instructions that use v (phi users included).
func (l *Liveness) Uses(v Value) []*Instr { return l.uses[v] }

// HasNonLocalUse reports whether v has a use outside its defining block
// (phi uses count as non-local, since they occur on an edge). Arguments
// with any use in a non-entry block are non-local. The paper relies on
// this property to guarantee that machine-dependent lowering does not
// fold the value away, keeping it retrievable for recovery.
func (l *Liveness) HasNonLocalUse(v Value) bool {
	var home *Block
	switch d := v.(type) {
	case *Instr:
		home = d.Parent
	case *Arg:
		home = l.Fn.Entry()
	default:
		return false
	}
	for _, u := range l.uses[v] {
		if u.Op == OpPhi || u.Parent != home {
			return true
		}
	}
	return false
}

// LiveOut exposes the live-out set of a block (read-only use intended).
func (l *Liveness) LiveOut(b *Block) map[Value]bool { return l.liveOut[b] }

// LiveIn exposes the live-in set of a block (read-only use intended).
func (l *Liveness) LiveIn(b *Block) map[Value]bool { return l.liveIn[b] }
