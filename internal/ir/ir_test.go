package ir

import (
	"strings"
	"testing"
)

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{Void: "void", I64: "i64", F64: "f64", Ptr: "ptr"}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
}

func TestOpClassification(t *testing.T) {
	if !OpAdd.IsIntBinary() || OpAdd.IsFloatBinary() {
		t.Error("OpAdd misclassified")
	}
	if !OpFMul.IsFloatBinary() || OpFMul.IsIntBinary() {
		t.Error("OpFMul misclassified")
	}
	if !OpICmpSLT.IsICmp() || !OpICmpSLT.IsBinary() {
		t.Error("OpICmpSLT misclassified")
	}
	if !OpFCmpOGE.IsFCmp() {
		t.Error("OpFCmpOGE misclassified")
	}
	for _, op := range []Op{OpBr, OpCondBr, OpRet} {
		if !op.IsTerminator() {
			t.Errorf("%s not a terminator", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLoad, OpStore, OpPhi, OpCall} {
		if op.IsTerminator() {
			t.Errorf("%s wrongly a terminator", op)
		}
	}
	// Every op must have a distinct printable name.
	seen := map[string]Op{}
	for op := OpAdd; op < opMax; op++ {
		s := op.String()
		if strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestConstRefs(t *testing.T) {
	if ConstInt(-7).Ref() != "-7" {
		t.Errorf("ConstInt ref: %s", ConstInt(-7).Ref())
	}
	if ConstFloat(2.5).Ref() != "2.5" {
		t.Errorf("ConstFloat ref: %s", ConstFloat(2.5).Ref())
	}
	if ConstInt(1).Type() != I64 || ConstFloat(1).Type() != F64 {
		t.Error("const types wrong")
	}
}

func TestBuilderAutoNamesAndLocs(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", I64, Param("x", I64))
	v1 := b.Add(m.Funcs[0].Params[0], ConstInt(1))
	b.NewLine()
	v2 := b.Mul(v1, v1)
	b.Ret(v2)
	if v1.Name == "" || v2.Name == "" || v1.Name == v2.Name {
		t.Fatalf("bad auto names %q %q", v1.Name, v2.Name)
	}
	if v1.Loc.Line != 1 || v2.Loc.Line != 2 {
		t.Fatalf("locs: %v %v", v1.Loc, v2.Loc)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueLocsWithinFunction(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	f := b.NewFunc("f", Void)
	g := m.AddGlobal(&Global{Name: "g", Size: 64})
	for i := 0; i < 10; i++ {
		b.Store(ConstFloat(float64(i)), b.GEP(g, ConstInt(int64(i)), 8))
	}
	b.Ret(nil)
	seen := map[Loc]string{}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if prev, dup := seen[in.Loc]; dup {
				t.Fatalf("duplicate loc %v for %q and %q", in.Loc, prev, in.String())
			}
			seen[in.Loc] = in.String()
		}
	}
}

func TestPointerOperand(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", Void, Param("p", Ptr))
	p := m.Funcs[0].Params[0]
	ld := b.Load(F64, p)
	st := b.Store(ld, p)
	b.Ret(nil)
	if v, ok := ld.PointerOperand(); !ok || v != Value(p) {
		t.Error("load pointer operand wrong")
	}
	if v, ok := st.PointerOperand(); !ok || v != Value(p) {
		t.Error("store pointer operand wrong")
	}
	if _, ok := ld.Ops[0].(*Arg); !ok {
		t.Error("operand type lost")
	}
	add := b.Blk.Instrs[0]
	_ = add
	if !ld.IsMemAccess() || !st.IsMemAccess() {
		t.Error("IsMemAccess false negatives")
	}
}

func TestModuleAccessors(t *testing.T) {
	m := NewModule("t")
	g := m.AddGlobal(&Global{Name: "g", Size: 8})
	if m.Global("g") != g || m.Global("nope") != nil {
		t.Error("Global lookup broken")
	}
	b := NewBuilder(m)
	f := b.NewFunc("f", Void)
	b.Ret(nil)
	if m.Func("f") != f || m.Func("nope") != nil {
		t.Error("Func lookup broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate global not rejected")
		}
	}()
	m.AddGlobal(&Global{Name: "g", Size: 8})
}

func TestBuilderPanicsAfterTerminator(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", Void)
	b.Ret(nil)
	defer func() {
		if recover() == nil {
			t.Error("emit after terminator not rejected")
		}
	}()
	b.Add(ConstInt(1), ConstInt(2))
}

func TestPrinterRoundsKeyForms(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", F64, Param("p", Ptr), Param("i", I64))
	f := m.Funcs[0]
	gep := b.GEP(f.Params[0], f.Params[1], 8)
	v := b.Load(F64, gep)
	b.Ret(v)
	s := m.String()
	for _, want := range []string{"func f64 @f(ptr %p, i64 %i)", "gep %p, %i x 8", "load f64"} {
		if !strings.Contains(s, want) {
			t.Errorf("printout missing %q:\n%s", want, s)
		}
	}
}
