package ir

import (
	"strings"
	"testing"
)

// makeDiamond builds: entry -> (a | b) -> join with a phi at join.
func makeDiamond(t *testing.T) (*Module, *Func, *Instr) {
	t.Helper()
	m := NewModule("t")
	b := NewBuilder(m)
	f := b.NewFunc("f", I64, Param("c", I64))
	a := b.NewBlock("a")
	bb := b.NewBlock("b")
	join := b.NewBlock("join")
	b.CondBr(f.Params[0], a, bb)
	b.SetBlock(a)
	va := b.Add(f.Params[0], ConstInt(1))
	b.Br(join)
	b.SetBlock(bb)
	vb := b.Add(f.Params[0], ConstInt(2))
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(I64)
	AddIncoming(phi, va, a)
	AddIncoming(phi, vb, bb)
	b.Ret(phi)
	return m, f, phi
}

func TestVerifyAcceptsDiamond(t *testing.T) {
	m, _, _ := makeDiamond(t)
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsUnterminatedBlock(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", Void)
	b.Add(ConstInt(1), ConstInt(2)) // no terminator
	err := VerifyModule(m)
	if err == nil || !strings.Contains(err.Error(), "not terminated") {
		t.Fatalf("want unterminated error, got %v", err)
	}
}

func TestVerifyRejectsPhiIncomingMismatch(t *testing.T) {
	m, _, phi := makeDiamond(t)
	phi.Ops = phi.Ops[:1]
	phi.Blocks = phi.Blocks[:1]
	if err := VerifyModule(m); err == nil {
		t.Fatal("phi with missing incoming accepted")
	}
}

func TestVerifyRejectsUseBeforeDef(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", I64)
	// Build v = v2+1 where v2 is defined later in the same block.
	v2 := &Instr{Op: OpAdd, Typ: I64, Ops: []Value{ConstInt(1), ConstInt(2)}, Name: "late"}
	early := b.Add(v2, ConstInt(1)) // uses v2 before it exists
	_ = early
	v2.Parent = b.Blk
	b.Blk.Instrs = append(b.Blk.Instrs, v2)
	b.Ret(ConstInt(0))
	if err := VerifyModule(m); err == nil {
		t.Fatal("use-before-def accepted")
	}
}

func TestVerifyRejectsCrossBlockNonDominatingUse(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	f := b.NewFunc("f", I64, Param("c", I64))
	a := b.NewBlock("a")
	bb := b.NewBlock("b")
	join := b.NewBlock("join")
	b.CondBr(f.Params[0], a, bb)
	b.SetBlock(a)
	va := b.Add(f.Params[0], ConstInt(1))
	b.Br(join)
	b.SetBlock(bb)
	b.Br(join)
	b.SetBlock(join)
	// va does not dominate join (path through bb misses it).
	use := b.Add(va, ConstInt(1))
	b.Ret(use)
	if err := VerifyModule(m); err == nil {
		t.Fatal("non-dominating use accepted")
	}
}

func TestVerifyRejectsTypeErrors(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", Void, Param("x", F64))
	f := m.Funcs[0]
	// Int add of a float operand, built by hand to bypass the builder.
	in := &Instr{Op: OpAdd, Typ: I64, Ops: []Value{f.Params[0], ConstInt(1)}, Name: "bad"}
	in.Parent = b.Blk
	b.Blk.Instrs = append(b.Blk.Instrs, in)
	b.Ret(nil)
	if err := VerifyModule(m); err == nil {
		t.Fatal("float operand to int add accepted")
	}
}

func TestVerifySkipsDeclarations(t *testing.T) {
	m := NewModule("t")
	m.Funcs = append(m.Funcs, &Func{Name: "extern_thing", RetType: I64})
	b := NewBuilder(m)
	b.NewFunc("f", Void)
	b.Ret(nil)
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsDuplicateFunctions(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", Void)
	b.Ret(nil)
	b.NewFunc("f", Void)
	b.Ret(nil)
	if err := VerifyModule(m); err == nil {
		t.Fatal("duplicate function accepted")
	}
}

func TestDominators(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	f := b.NewFunc("f", Void, Param("c", I64))
	entry := f.Entry()
	loop := b.NewBlock("loop")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(loop)
	b.SetBlock(loop)
	b.CondBr(f.Params[0], body, exit)
	b.SetBlock(body)
	b.Br(loop)
	b.SetBlock(exit)
	b.Ret(nil)

	dom := Dominators(f)
	if dom[entry] != entry {
		t.Error("entry must self-dominate")
	}
	if dom[loop] != entry {
		t.Errorf("idom(loop) = %v", dom[loop].Name)
	}
	if dom[body] != loop || dom[exit] != loop {
		t.Errorf("idom(body)=%s idom(exit)=%s, want loop", dom[body].Name, dom[exit].Name)
	}
}

func TestVerifyRejectsRetMismatch(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	b.NewFunc("f", I64)
	b.Ret(nil) // void ret in i64 function
	if err := VerifyModule(m); err == nil {
		t.Fatal("void ret in value function accepted")
	}
}
