package store

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"care/internal/trace"
)

// Merkle sealing of campaign traces. Each trial's spans form one leaf
// (runTrial emits the KindTrial summary span last and MergeResults
// merges per-trial recorders in index order, so the span stream is a
// concatenation of per-trial chunks, each closed by its KindTrial
// span); trailing non-trial spans form a tail leaf and the counter
// tables a final leaf. Hashing scrubs exactly what the CI byte-diff
// scrubs — span wall times and "-ns"-suffixed counters — so two
// campaigns have equal roots if and only if their scrubbed JSONL
// exports are byte-identical, and the first differing leaf names the
// first diverging trial index.

// LeafSeal is one Merkle leaf: a per-trial span chunk, the non-trial
// tail (Rank -1), or the counters table (Rank -2).
type LeafSeal struct {
	// Rank is the trial index the leaf covers (the KindTrial span's
	// rank), or a negative marker for the tail/counters leaves.
	Rank int32 `json:"rank"`
	// Spans is the number of spans hashed into the leaf (0 for the
	// counters leaf).
	Spans int `json:"spans"`
	// Hash is the leaf's SHA-256 in hex.
	Hash string `json:"hash"`
}

// TraceSeal is a campaign trace's Merkle seal.
type TraceSeal struct {
	Root   string     `json:"root"`
	Leaves []LeafSeal `json:"leaves"`
}

// scrubbedCounter zeroes wall-clock counters, mirroring the CI scrub
// (`"-ns"`-suffixed names carry nondeterministic timings).
func scrubbedCounter(name string, v int64) int64 {
	if strings.HasSuffix(name, "-ns") {
		return 0
	}
	return v
}

// hashSpans digests one span chunk with Wall scrubbed to zero.
func hashSpans(spans []trace.Span) Hash {
	h := sha256.New()
	for _, s := range spans {
		fmt.Fprintf(h, "%s|%d|%d|%d|%d|0|%d|%d|%s|%d|%d\n",
			s.Kind.String(), s.ID, s.Parent, s.StartDyn, s.EndDyn,
			s.PC, s.Addr, s.Outcome, s.Rank, s.Val)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// Seal computes the Merkle seal of a recorder's trace.
func Seal(rec *trace.Recorder) TraceSeal {
	var leaves []LeafSeal
	var hashes []Hash
	spans := rec.Spans()
	start := 0
	for i, s := range spans {
		if s.Kind == trace.KindTrial {
			chunk := spans[start : i+1]
			h := hashSpans(chunk)
			leaves = append(leaves, LeafSeal{Rank: s.Rank, Spans: len(chunk), Hash: h.String()})
			hashes = append(hashes, h)
			start = i + 1
		}
	}
	if start < len(spans) {
		chunk := spans[start:]
		h := hashSpans(chunk)
		leaves = append(leaves, LeafSeal{Rank: -1, Spans: len(chunk), Hash: h.String()})
		hashes = append(hashes, h)
	}
	// Counters leaf: additive counters (scrubbed), high-water marks,
	// and the emission totals the meta line exports.
	ch := sha256.New()
	for _, n := range rec.CounterNames() {
		fmt.Fprintf(ch, "c|%s|%d\n", n, scrubbedCounter(n, rec.Counter(n)))
	}
	for _, n := range rec.MaxNames() {
		fmt.Fprintf(ch, "m|%s|%d\n", n, scrubbedCounter(n, rec.MaxCounter(n)))
	}
	fmt.Fprintf(ch, "meta|%d|%d|%d\n", rec.Len(), rec.Emitted(), rec.Dropped())
	var cl Hash
	ch.Sum(cl[:0])
	leaves = append(leaves, LeafSeal{Rank: -2, Hash: cl.String()})
	hashes = append(hashes, cl)
	return TraceSeal{Root: merkleRoot(hashes).String(), Leaves: leaves}
}

// merkleRoot folds leaf hashes pairwise (odd leaf promoted) to a root.
func merkleRoot(level []Hash) Hash {
	if len(level) == 0 {
		return HashBytes(nil)
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var out Hash
			h.Sum(out[:0])
			next = append(next, out)
		}
		level = next
	}
	return level[0]
}

// FirstDivergence locates the first leaf where two seals disagree.
// It returns the leaf index and the leaves themselves (whose Rank
// attributes the divergence to a trial), or (-1, …) when the seals
// match leaf-for-leaf.
func FirstDivergence(a, b TraceSeal) (int, LeafSeal, LeafSeal) {
	n := len(a.Leaves)
	if len(b.Leaves) < n {
		n = len(b.Leaves)
	}
	for i := 0; i < n; i++ {
		if a.Leaves[i].Hash != b.Leaves[i].Hash {
			return i, a.Leaves[i], b.Leaves[i]
		}
	}
	if len(a.Leaves) != len(b.Leaves) {
		if len(a.Leaves) > n {
			return n, a.Leaves[n], LeafSeal{Rank: -3}
		}
		return n, LeafSeal{Rank: -3}, b.Leaves[n]
	}
	return -1, LeafSeal{}, LeafSeal{}
}
