package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"care/internal/checkpoint"
	"care/internal/fbits"
	"care/internal/machine"
	"care/internal/profiler"
	"care/internal/trace"
)

// segRef is a content-addressed pointer to one memory segment: the
// manifest ships ChunkSize page hashes, the blob store holds the
// bytes. Identical pages — the untouched majority of a written COW
// segment across consecutive snapshots, or the same .text across
// campaigns — collapse to one blob each.
type segRef struct {
	Base   uint64   `json:"base"`
	Name   string   `json:"name"`
	Pages  []string `json:"pages,omitempty"`
	Len    int      `json:"len"`
	Domain uint8    `json:"domain,omitempty"`
}

// snapManifest is one golden-run snapshot with its memory image
// replaced by segment references.
type snapManifest struct {
	Dyn        uint64              `json:"dyn"`
	R          []uint64            `json:"r"`
	FBits      []uint64            `json:"f_bits"`
	PC         uint64              `json:"pc"`
	CPUDyn     uint64              `json:"cpu_dyn"`
	Step       int                 `json:"step"`
	HeapNext   uint64              `json:"heap_next"`
	Segs       []segRef            `json:"segs"`
	ResultBits []uint64            `json:"result_bits,omitempty"`
	Printed    []string            `json:"printed,omitempty"`
	Counts     map[string][]uint64 `json:"counts,omitempty"`
}

// profileManifest is a golden-run profile with every byte image
// hoisted into the blob store. The key is echoed so a loader can
// detect an index entry that was moved or overwritten with the wrong
// campaign's profile.
type profileManifest struct {
	Key        Key                 `json:"key"`
	TotalDyn   uint64              `json:"total_dyn"`
	Counts     map[string][]uint64 `json:"counts"`
	GoldenBits []uint64            `json:"golden_bits,omitempty"`
	ExitCode   uint64              `json:"exit_code"`
	Text       []segRef            `json:"text,omitempty"`
	Snaps      []snapManifest      `json:"snaps,omitempty"`
}

// TextImage is a sealed .text byte image offered for dedup alongside a
// profile (see machine.Program.CodeImage). The store records it in the
// manifest so an identical binary in a later campaign is a pure blob
// dedup hit; the loader does not need it to reconstruct the profile
// (code is re-derived from the build, exactly as memory.Restore keeps
// read-only segments in place).
type TextImage struct {
	Name string
	Data []byte
}

func (s *Store) manifestPath(id string) string {
	return filepath.Join(s.dir, "manifests", id+".json")
}

// PutProfile stores a golden-run profile under key: segment and .text
// bytes become blobs, the rest becomes a manifest. Frozen COW segments
// shared by consecutive snapshots are recognised by backing-array
// identity before hashing, so a mostly-idle segment is hashed once per
// profile, not once per snapshot.
func (s *Store) PutProfile(key Key, prof *profiler.Profile, text []TextImage) error {
	man := profileManifest{
		Key:        key,
		TotalDyn:   prof.TotalDyn,
		Counts:     prof.Counts,
		GoldenBits: fbits.Of(prof.Golden),
		ExitCode:   prof.ExitCode,
	}
	// seen caches pages-by-backing-array so aliased COW segments are
	// chunked and offered to the blob store once.
	type ref struct {
		pages []string
		len   int
	}
	seen := map[*byte]ref{}
	putSeg := func(base machine.Word, name string, data []byte, dom machine.DomainID) (segRef, error) {
		var r ref
		if len(data) > 0 {
			if c, ok := seen[&data[0]]; ok && c.len == len(data) {
				r = c
			} else {
				pages, err := s.PutChunked(data)
				if err != nil {
					return segRef{}, err
				}
				r = ref{pages: pages, len: len(data)}
				seen[&data[0]] = r
			}
		}
		return segRef{Base: uint64(base), Name: name, Pages: r.pages, Len: r.len, Domain: uint8(dom)}, nil
	}
	for _, t := range text {
		tr, err := putSeg(0, t.Name, t.Data, 0)
		if err != nil {
			return err
		}
		man.Text = append(man.Text, tr)
	}
	for i := range prof.Snaps {
		sp := &prof.Snaps[i]
		st := sp.State
		if st == nil || st.Mem == nil {
			return fmt.Errorf("store: snapshot %d has no memory image", i)
		}
		sm := snapManifest{
			Dyn:        sp.Dyn,
			R:          make([]uint64, machine.NumReg),
			FBits:      fbits.Of(st.CPU.F[:]),
			PC:         uint64(st.CPU.PC),
			CPUDyn:     st.CPU.Dyn,
			Step:       st.Step,
			HeapNext:   uint64(st.Mem.HeapNext),
			ResultBits: fbits.Of(st.EnvResults),
			Printed:    st.EnvPrinted,
			Counts:     sp.Counts,
		}
		for j, w := range st.CPU.R {
			sm.R[j] = uint64(w)
		}
		for _, seg := range st.Mem.Segs {
			sr, err := putSeg(seg.Base, seg.Name, seg.Data, seg.Domain)
			if err != nil {
				return err
			}
			sm.Segs = append(sm.Segs, sr)
		}
		man.Snaps = append(man.Snaps, sm)
	}
	b, err := json.Marshal(&man)
	if err != nil {
		return fmt.Errorf("store: marshal manifest: %w", err)
	}
	if err := atomicWrite(s.manifestPath(key.ID()), b); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	return nil
}

// GetProfile loads and verifies the profile cached under key. A clean
// miss (no manifest) returns (nil, nil) and counts a golden miss; any
// corruption — unreadable manifest, key mismatch, missing or
// tamper-failing blob — counts store.fallback and returns the error,
// and the caller runs cold. On a hit the reconstructed snapshots alias
// one byte slice per distinct blob, restoring the cross-snapshot COW
// sharing the original capture had (Restore maps segments
// copy-on-write, so the aliasing is safe to hand to concurrent trials).
func (s *Store) GetProfile(key Key) (*profiler.Profile, error) {
	b, err := os.ReadFile(s.manifestPath(key.ID()))
	if os.IsNotExist(err) {
		s.add(CounterGoldenMisses, 1)
		return nil, nil
	}
	if err != nil {
		s.add(CounterFallback, 1)
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	prof, err := s.decodeManifest(key, b)
	if err != nil {
		s.add(CounterFallback, 1)
		return nil, err
	}
	s.add(CounterGoldenHits, 1)
	return prof, nil
}

func (s *Store) decodeManifest(key Key, b []byte) (*profiler.Profile, error) {
	var man profileManifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("store: manifest for %s is not valid JSON: %w", key.ID(), err)
	}
	if man.Key.ID() != key.ID() {
		return nil, fmt.Errorf("store: manifest key mismatch (index entry for %q holds %q)", key.Workload, man.Key.Workload)
	}
	prof := &profiler.Profile{
		TotalDyn: man.TotalDyn,
		Counts:   man.Counts,
		Golden:   fbits.Floats(man.GoldenBits),
		ExitCode: man.ExitCode,
	}
	// pageCache dedups page fetches; segCache keys assembled segments by
	// their page list so segments shared across snapshots alias one
	// slice, as they did at capture time.
	pageCache := map[string][]byte{}
	segCache := map[string][]byte{}
	fetch := func(r segRef) ([]byte, error) {
		segKey := strings.Join(r.Pages, "")
		if data, ok := segCache[segKey]; ok && len(data) == r.Len {
			return data, nil
		}
		data, err := s.GetChunked(r.Pages, r.Len, pageCache)
		if err != nil {
			return nil, err
		}
		segCache[segKey] = data
		return data, nil
	}
	for i, sm := range man.Snaps {
		if len(sm.R) != machine.NumReg || len(sm.FBits) != machine.NumFReg {
			return nil, fmt.Errorf("store: snapshot %d has malformed register file", i)
		}
		st := &checkpoint.Snapshot{
			Mem:        &machine.Snapshot{HeapNext: machine.Word(sm.HeapNext)},
			Step:       sm.Step,
			EnvResults: fbits.Floats(sm.ResultBits),
			EnvPrinted: sm.Printed,
		}
		for j, w := range sm.R {
			st.CPU.R[j] = machine.Word(w)
		}
		copy(st.CPU.F[:], fbits.Floats(sm.FBits))
		st.CPU.PC = machine.Word(sm.PC)
		st.CPU.Dyn = sm.CPUDyn
		for _, r := range sm.Segs {
			data, err := fetch(r)
			if err != nil {
				return nil, err
			}
			st.Mem.Segs = append(st.Mem.Segs, machine.SegSnapshot{
				Base:   machine.Word(r.Base),
				Name:   r.Name,
				Data:   data,
				Domain: machine.DomainID(r.Domain),
			})
		}
		prof.Snaps = append(prof.Snaps, profiler.SnapPoint{Dyn: sm.Dyn, State: st, Counts: sm.Counts})
	}
	return prof, nil
}

func (s *Store) tracePath(id string) string { return filepath.Join(s.dir, "traces", id+".jsonl") }
func (s *Store) sealPath(id string) string  { return filepath.Join(s.dir, "seals", id+".json") }

// PutTrace exports a campaign trace into the store and seals it: the
// JSONL goes under traces/, the Merkle seal (root plus per-trial
// leaves) under seals/. The export is exactly what WriteJSONL renders,
// so a stored trace diffs byte-for-byte against a `-trace-out` file.
func (s *Store) PutTrace(key Key, rec *trace.Recorder) (TraceSeal, error) {
	seal := Seal(rec)
	id := key.ID()
	var jb bytes.Buffer
	if err := rec.WriteJSONL(&jb); err != nil {
		return seal, fmt.Errorf("store: render trace: %w", err)
	}
	if err := atomicWrite(s.tracePath(id), jb.Bytes()); err != nil {
		return seal, fmt.Errorf("store: write trace: %w", err)
	}
	sb, err := json.MarshalIndent(&seal, "", "  ")
	if err != nil {
		return seal, fmt.Errorf("store: marshal seal: %w", err)
	}
	if err := atomicWrite(s.sealPath(id), sb); err != nil {
		return seal, fmt.Errorf("store: write seal: %w", err)
	}
	s.add(CounterTraceSeals, 1)
	return seal, nil
}

// GetSeal loads a stored trace seal, or (zero, false) if absent or
// unreadable.
func (s *Store) GetSeal(key Key) (TraceSeal, bool) {
	b, err := os.ReadFile(s.sealPath(key.ID()))
	if err != nil {
		return TraceSeal{}, false
	}
	var seal TraceSeal
	if err := json.Unmarshal(b, &seal); err != nil {
		s.add(CounterFallback, 1)
		return TraceSeal{}, false
	}
	return seal, true
}

// Entry is one row of the store inventory (care-report -store).
type Entry struct {
	Key   Key
	Snaps int
	Seal  *TraceSeal
}

// List enumerates the store's manifests (sorted by index id) for the
// inventory listing. Unreadable entries are skipped — the inventory is
// advisory, the per-entry verification happens on load.
func (s *Store) List() ([]Entry, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "manifests", "*.json"))
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		var man profileManifest
		if err := json.Unmarshal(b, &man); err != nil {
			continue
		}
		e := Entry{Key: man.Key, Snaps: len(man.Snaps)}
		if seal, ok := s.GetSeal(man.Key); ok {
			e.Seal = &seal
		}
		out = append(out, e)
	}
	return out, nil
}
