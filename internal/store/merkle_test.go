package store

import (
	"testing"
	"time"

	"care/internal/trace"
)

// trialRec builds a recorder shaped like a merged campaign trace: per
// trial an activation span then the KindTrial summary span, all
// stamped with the trial's rank, followed by trailing counters.
func trialRec(trials int, mutate func(r *trace.Recorder, trial int)) *trace.Recorder {
	r := trace.New(4 * trials)
	for i := 0; i < trials; i++ {
		r.Emit(trace.Span{Kind: trace.KindActivation, StartDyn: uint64(100 * i), EndDyn: uint64(100*i + 10), Rank: int32(i), Wall: time.Duration(i) * time.Millisecond})
		if mutate != nil {
			mutate(r, i)
		}
		r.Emit(trace.Span{Kind: trace.KindTrial, StartDyn: uint64(100 * i), EndDyn: uint64(100*i + 90), Rank: int32(i), Outcome: "Masked"})
	}
	r.Add("campaign.outcome.masked", int64(trials))
	r.Add("checkpoint.write-ns", 123456)
	return r
}

func TestSealLeafPerTrial(t *testing.T) {
	seal := Seal(trialRec(3, nil))
	// 3 trial leaves + counters leaf.
	if len(seal.Leaves) != 4 {
		t.Fatalf("leaves = %d, want 4", len(seal.Leaves))
	}
	for i := 0; i < 3; i++ {
		if seal.Leaves[i].Rank != int32(i) || seal.Leaves[i].Spans != 2 {
			t.Fatalf("leaf %d = %+v", i, seal.Leaves[i])
		}
	}
	if seal.Leaves[3].Rank != -2 {
		t.Fatalf("final leaf = %+v, want counters leaf", seal.Leaves[3])
	}
}

func TestSealScrubsWallClock(t *testing.T) {
	a := Seal(trialRec(2, nil))
	b := Seal(trialRec(2, func(r *trace.Recorder, trial int) {
		// Same trace, different wall times — and a different value for a
		// "-ns" counter. Neither may perturb the seal.
		_ = trial
	}))
	slow := trace.New(8)
	for i := 0; i < 2; i++ {
		slow.Emit(trace.Span{Kind: trace.KindActivation, StartDyn: uint64(100 * i), EndDyn: uint64(100*i + 10), Rank: int32(i), Wall: time.Hour})
		slow.Emit(trace.Span{Kind: trace.KindTrial, StartDyn: uint64(100 * i), EndDyn: uint64(100*i + 90), Rank: int32(i), Outcome: "Masked"})
	}
	slow.Add("campaign.outcome.masked", 2)
	slow.Add("checkpoint.write-ns", 999999999)
	c := Seal(slow)
	if a.Root != b.Root || a.Root != c.Root {
		t.Fatalf("wall-clock noise changed the seal: %s / %s / %s", a.Root, b.Root, c.Root)
	}
}

func TestSealDetectsCounterDrift(t *testing.T) {
	a := Seal(trialRec(2, nil))
	r := trialRec(2, nil)
	r.Add("campaign.outcome.masked", 1)
	b := Seal(r)
	if a.Root == b.Root {
		t.Fatalf("non-timing counter drift not detected")
	}
	i, _, _ := FirstDivergence(a, b)
	if i != 2 {
		t.Fatalf("divergence leaf = %d, want counters leaf 2", i)
	}
}

func TestFirstDivergenceNamesTrial(t *testing.T) {
	a := Seal(trialRec(4, nil))
	b := Seal(trialRec(4, func(r *trace.Recorder, trial int) {
		if trial == 2 {
			r.Emit(trace.Span{Kind: trace.KindRollback, StartDyn: 205, EndDyn: 207, Rank: int32(trial)})
		}
	}))
	i, la, lb := FirstDivergence(a, b)
	if i != 2 {
		t.Fatalf("divergence at leaf %d, want 2", i)
	}
	if la.Rank != 2 || lb.Rank != 2 {
		t.Fatalf("diverging leaves attribute ranks %d/%d, want trial 2", la.Rank, lb.Rank)
	}
	if a.Root == b.Root {
		t.Fatalf("roots equal despite divergence")
	}
	if i, _, _ := FirstDivergence(a, a); i != -1 {
		t.Fatalf("self-divergence = %d, want -1", i)
	}
}

func TestSealTailLeaf(t *testing.T) {
	r := trialRec(1, nil)
	r.Emit(trace.Span{Kind: trace.KindJob, StartDyn: 500, EndDyn: 600, Rank: 0})
	seal := Seal(r)
	// trial leaf, tail leaf, counters leaf.
	if len(seal.Leaves) != 3 || seal.Leaves[1].Rank != -1 || seal.Leaves[1].Spans != 1 {
		t.Fatalf("leaves = %+v", seal.Leaves)
	}
}

func TestSealEmptyRecorder(t *testing.T) {
	a := Seal(trace.New(1))
	b := Seal(trace.New(1))
	if a.Root != b.Root || len(a.Leaves) != 1 {
		t.Fatalf("empty seal unstable: %+v vs %+v", a, b)
	}
}

func TestPutTraceAndGetSeal(t *testing.T) {
	s := openT(t)
	key := Key{Kind: "campaign", Workload: "HPCCG", Seed: 3}
	rec := trialRec(2, nil)
	seal, err := s.PutTrace(key, rec)
	if err != nil {
		t.Fatalf("PutTrace: %v", err)
	}
	got, ok := s.GetSeal(key)
	if !ok {
		t.Fatalf("GetSeal missed a stored seal")
	}
	if got.Root != seal.Root || len(got.Leaves) != len(seal.Leaves) {
		t.Fatalf("seal round trip mismatch: %+v vs %+v", got, seal)
	}
	if n := s.Counter(CounterTraceSeals); n != 1 {
		t.Fatalf("trace-seals = %d, want 1", n)
	}
	if _, ok := s.GetSeal(Key{Kind: "campaign", Workload: "other"}); ok {
		t.Fatalf("GetSeal hit an absent key")
	}
}
