// Package store is the persistent content-addressed artifact store
// (ROADMAP item 3): frozen copy-on-write snapshot segments and sealed
// .text images dedup by SHA-256 in a blob store, a golden-run profile
// becomes a keyed manifest of segment hashes, and campaign traces seal
// under a Merkle root with one leaf per trial — the "triangle" of
// blobs, manifests, and the keyed index.
//
// The store is an accelerator, never an authority: every blob is
// verified against its hash on load, and any mismatch, truncation, or
// missing entry degrades to a cold golden run (the caller re-derives
// everything from the deterministic substrate) with a store.fallback
// counter charged. A corrupt store can cost time; it cannot change a
// result. Store accounting therefore lives in the store's own
// trace.Recorder, reported on stderr by the CLIs — it is deliberately
// NOT merged into campaign traces, so store-on, store-off, cold, and
// cache-hit runs export byte-identical scrubbed campaign JSONL.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"care/internal/trace"
)

// Hash is a SHA-256 content address.
type Hash [sha256.Size]byte

// HashBytes addresses a byte image.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// String renders the address as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash inverts String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return h, fmt.Errorf("store: bad hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// Key identifies one cached golden-run entry: the exact campaign
// configuration whose profile (and snapshots) the entry reproduces. Two
// runs with equal Keys are guaranteed identical by the substrate's
// determinism, which is what makes the cache sound.
type Key struct {
	// Kind separates the index spaces ("campaign" or "coverage").
	Kind string `json:"kind"`
	// Workload is the registered workload name.
	Workload string `json:"workload"`
	// Params is the canonical JSON of the workload build parameters.
	Params string `json:"params"`
	// OptLevel and Defenses are the build options.
	OptLevel int      `json:"opt_level"`
	Defenses []string `json:"defenses,omitempty"`
	// Seed drives the campaign's randomness. The golden run itself does
	// not depend on it, but keying on it keeps one entry per campaign,
	// which is what the trace index is organised by.
	Seed int64 `json:"seed"`
	// SnapEvery and WarmStart pin the snapshot cadence: a warm entry
	// carries snapshots a cold one does not.
	SnapEvery uint64 `json:"snap_every,omitempty"`
	WarmStart bool   `json:"warm_start,omitempty"`
}

// ID is the key's index address: the SHA-256 of its canonical JSON.
func (k Key) ID() string {
	b, err := json.Marshal(k)
	if err != nil {
		// Key is a plain value struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("store: marshal key: %v", err))
	}
	return HashBytes(b).String()
}

// Store trace counters, charged on the store's private recorder (see
// the package comment for why they never enter campaign traces).
const (
	// CounterGoldenHits / CounterGoldenMisses count profile-cache
	// lookups: a hit skips the golden run (and the warm-start snapshot
	// pass) entirely.
	CounterGoldenHits   = "store.golden-hits"
	CounterGoldenMisses = "store.golden-misses"
	// CounterFallback counts corrupt or unverifiable entries that
	// degraded to a cold path (hash mismatch, truncated blob, missing
	// manifest segment, unreadable index).
	CounterFallback = "store.fallback"
	// CounterBlobPuts / CounterBytesWritten account for new blobs;
	// CounterBlobDedup / CounterBytesDeduped for writes the store
	// already held (the dedup win, on disk and on the shard wire).
	CounterBlobPuts     = "store.blob-puts"
	CounterBytesWritten = "store.bytes-written"
	CounterBlobDedup    = "store.blob-dedup-hits"
	CounterBytesDeduped = "store.bytes-deduped"
	// CounterBlobGets / CounterBytesRead account for verified loads.
	CounterBlobGets  = "store.blob-gets"
	CounterBytesRead = "store.bytes-read"
	// CounterTraceSeals counts campaign traces sealed into the store.
	CounterTraceSeals = "store.trace-seals"
)

// Store is a content-addressed artifact store rooted at a directory:
//
//	<dir>/blobs/<hh>/<hash>    segment and .text payloads
//	<dir>/manifests/<id>.json  golden-run profile manifests, by Key.ID
//	<dir>/traces/<id>.jsonl    sealed campaign trace exports
//	<dir>/seals/<id>.json      Merkle seals over the trace exports
//
// Methods are safe for concurrent use by one process, and writes are
// atomic (temp file + rename), so independent processes — e.g. shard
// workers racing on the same segment hash — can share one directory.
type Store struct {
	dir string
	mu  sync.Mutex
	rec *trace.Recorder
}

// Open roots a store at dir, creating the layout if needed.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"blobs", "manifests", "traces", "seals"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return &Store{dir: dir, rec: trace.New(1)}, nil
}

// Dir returns the store's root directory (shipped to shard workers so
// they fetch segment blobs by hash instead of full snapshot payloads).
func (s *Store) Dir() string { return s.dir }

// add charges a store counter under the lock.
func (s *Store) add(name string, v int64) {
	s.mu.Lock()
	s.rec.Add(name, v)
	s.mu.Unlock()
}

// AddFallback charges the corrupt-entry counter from callers that hit
// a store failure outside the store's own load paths (e.g. the shard
// coordinator abandoning wire dedup after a blob write error).
func (s *Store) AddFallback() { s.add(CounterFallback, 1) }

// Counter reads one store counter.
func (s *Store) Counter(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Counter(name)
}

// StatsLine renders the accounting summary the CLIs print on stderr —
// stderr, so stdout and the exported campaign JSONL stay byte-diffable
// against store-off runs (the same contract warm-start accounting
// follows).
func (s *Store) StatsLine() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("store.golden-hits=%d store.golden-misses=%d store.bytes-deduped=%d store.bytes-written=%d store.fallback=%d",
		s.rec.Counter(CounterGoldenHits), s.rec.Counter(CounterGoldenMisses),
		s.rec.Counter(CounterBytesDeduped), s.rec.Counter(CounterBytesWritten),
		s.rec.Counter(CounterFallback))
}

// blobPath maps a hash to its file, fanned out on the first byte so no
// directory grows unboundedly.
func (s *Store) blobPath(h Hash) string {
	hx := h.String()
	return filepath.Join(s.dir, "blobs", hx[:2], hx)
}

// PutBlob stores a byte image under its content address. If the store
// already holds the blob the write is skipped and counted as dedup —
// the common case once a segment has been seen by any prior run,
// campaign, or shard worker. Concurrent writers racing on one hash are
// safe: each writes a private temp file and the atomic rename makes the
// last one win with identical content.
func (s *Store) PutBlob(data []byte) (Hash, error) {
	h := HashBytes(data)
	path := s.blobPath(h)
	if fi, err := os.Stat(path); err == nil && fi.Size() == int64(len(data)) {
		s.add(CounterBlobDedup, 1)
		s.add(CounterBytesDeduped, int64(len(data)))
		return h, nil
	}
	if err := atomicWrite(path, data); err != nil {
		return h, fmt.Errorf("store: put blob %s: %w", h, err)
	}
	s.add(CounterBlobPuts, 1)
	s.add(CounterBytesWritten, int64(len(data)))
	return h, nil
}

// GetBlob loads and verifies a blob. A missing file, short read, or
// hash mismatch is an error — the caller degrades to its cold path and
// the store stays an accelerator, never an authority.
func (s *Store) GetBlob(h Hash) ([]byte, error) {
	data, err := os.ReadFile(s.blobPath(h))
	if err != nil {
		return nil, fmt.Errorf("store: blob %s: %w", h, err)
	}
	if HashBytes(data) != h {
		return nil, fmt.Errorf("store: blob %s fails verification (corrupt store?)", h)
	}
	s.add(CounterBlobGets, 1)
	s.add(CounterBytesRead, int64(len(data)))
	return data, nil
}

// ChunkSize is the fixed page granularity segment images are chunked
// at before entering the blob store. The machine's copy-on-write is
// whole-segment, so consecutive snapshots of a written segment are
// distinct multi-megabyte arrays that differ in a few spots; chunking
// lets the untouched pages dedup by content, which is most of the
// stored bytes and most of the verified-load cost on a cache hit.
const ChunkSize = 64 << 10

// PutChunked stores a byte image as fixed-size page blobs and returns
// the page hashes in order. Empty data yields no pages.
func (s *Store) PutChunked(data []byte) ([]string, error) {
	var pages []string
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		h, err := s.PutBlob(data[off:end])
		if err != nil {
			return nil, err
		}
		pages = append(pages, h.String())
	}
	return pages, nil
}

// GetChunked fetches, verifies and reassembles a chunked image. cache
// maps page hash to payload across calls, so a page shared by many
// snapshots is read and verified exactly once per load.
func (s *Store) GetChunked(pages []string, length int, cache map[string][]byte) ([]byte, error) {
	data := make([]byte, 0, length)
	for _, p := range pages {
		b, ok := cache[p]
		if !ok {
			h, err := ParseHash(p)
			if err != nil {
				return nil, err
			}
			if b, err = s.GetBlob(h); err != nil {
				return nil, err
			}
			cache[p] = b
		}
		data = append(data, b...)
	}
	if len(data) != length {
		return nil, fmt.Errorf("store: chunked image reassembles to %d bytes, manifest says %d", len(data), length)
	}
	return data, nil
}

// atomicWrite writes data to path via a same-directory temp file and
// rename, so readers (and racing writers, possibly in other processes)
// never observe a partial file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
