package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// The corruption matrix: every way a store can rot must degrade to a
// cold run (an error from GetProfile, with store.fallback charged) and
// never to a wrong profile. The store is an accelerator, not an
// authority.

func storedProfile(t *testing.T) (*Store, Key) {
	t.Helper()
	s := openT(t)
	key := Key{Kind: "campaign", Workload: "HPCCG", Seed: 7, WarmStart: true}
	if err := s.PutProfile(key, fakeProfile(), []TextImage{{Name: "app", Data: []byte("text-bytes")}}); err != nil {
		t.Fatalf("PutProfile: %v", err)
	}
	return s, key
}

// blobFiles returns every blob path in the store.
func blobFiles(t *testing.T, s *Store) []string {
	t.Helper()
	var files []string
	filepath.Walk(filepath.Join(s.Dir(), "blobs"), func(path string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if len(files) == 0 {
		t.Fatalf("store has no blobs")
	}
	return files
}

func wantFallback(t *testing.T, s *Store, key Key) {
	t.Helper()
	prof, err := s.GetProfile(key)
	if err == nil {
		t.Fatalf("corrupt store verified clean (profile=%v)", prof != nil)
	}
	if prof != nil {
		t.Fatalf("corrupt store returned a profile alongside error %v", err)
	}
	if n := s.Counter(CounterFallback); n == 0 {
		t.Fatalf("store.fallback not charged (err=%v)", err)
	}
	if n := s.Counter(CounterGoldenHits); n != 0 {
		t.Fatalf("corrupt load counted as golden hit")
	}
}

// snapBlobPath returns the path of a blob a snapshot segment actually
// references (the .text blob is dedup-only and never fetched on load,
// so corrupting it would not — and should not — trip verification).
func snapBlobPath(t *testing.T, s *Store, key Key) string {
	t.Helper()
	b, err := os.ReadFile(s.manifestPath(key.ID()))
	if err != nil {
		t.Fatal(err)
	}
	var man profileManifest
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	h, err := ParseHash(man.Snaps[0].Segs[0].Pages[0])
	if err != nil {
		t.Fatal(err)
	}
	return s.blobPath(h)
}

func TestCorruptTruncatedBlob(t *testing.T) {
	s, key := storedProfile(t)
	f := snapBlobPath(t, s, key)
	data, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	wantFallback(t, s, key)
}

func TestCorruptFlippedByte(t *testing.T) {
	s, key := storedProfile(t)
	for _, f := range blobFiles(t, s) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantFallback(t, s, key)
}

func TestCorruptMissingBlob(t *testing.T) {
	s, key := storedProfile(t)
	if err := os.Remove(snapBlobPath(t, s, key)); err != nil {
		t.Fatal(err)
	}
	wantFallback(t, s, key)
}

func TestCorruptManifestJSON(t *testing.T) {
	s, key := storedProfile(t)
	if err := os.WriteFile(s.manifestPath(key.ID()), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantFallback(t, s, key)
}

func TestCorruptManifestKeyMismatch(t *testing.T) {
	// An index entry renamed onto the wrong key — e.g. a manifest file
	// copied between stores — must fail the echoed-key check even
	// though every blob inside it verifies.
	s, key := storedProfile(t)
	other := Key{Kind: "campaign", Workload: "CG", Seed: 7, WarmStart: true}
	if err := os.Rename(s.manifestPath(key.ID()), s.manifestPath(other.ID())); err != nil {
		t.Fatal(err)
	}
	wantFallback(t, s, other)
}

func TestCorruptManifestMissingSegEntry(t *testing.T) {
	// A manifest whose segment list references a blob the store never
	// held (the "missing manifest entry" row of the matrix: index and
	// blobs out of sync).
	s, key := storedProfile(t)
	b, err := os.ReadFile(s.manifestPath(key.ID()))
	if err != nil {
		t.Fatal(err)
	}
	var man profileManifest
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	// Point one segment page at an address with no blob behind it.
	man.Snaps[0].Segs[0].Pages[0] = HashBytes([]byte("never-stored")).String()
	swapped, err := json.Marshal(&man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.manifestPath(key.ID()), swapped, 0o644); err != nil {
		t.Fatal(err)
	}
	wantFallback(t, s, key)
}

func TestConcurrentWritersSameHash(t *testing.T) {
	// Two shard workers racing PutBlob on the same segment hash (and on
	// the same manifest) must both succeed and leave a verifiable store.
	dir := t.TempDir()
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i * 7)
	}
	const writers = 8
	stores := make([]*Store, writers)
	for i := range stores {
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		stores[i] = s
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				if _, err := stores[i].PutBlob(data); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	check, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := check.GetBlob(HashBytes(data))
	if err != nil {
		t.Fatalf("blob unreadable after racing writers: %v", err)
	}
	if string(got) != string(data) {
		t.Fatalf("racing writers corrupted the blob")
	}
	// Accounting must balance: every one of the 128 puts is either a
	// fresh write or a dedup hit, never lost.
	var puts, dedups int64
	for _, s := range stores {
		puts += s.Counter(CounterBlobPuts)
		dedups += s.Counter(CounterBlobDedup)
	}
	if puts+dedups != writers*16 {
		t.Fatalf("puts(%d)+dedups(%d) != %d", puts, dedups, writers*16)
	}
	if puts == 0 {
		t.Fatalf("no writer recorded a fresh put")
	}
}

func TestConcurrentProfileWriters(t *testing.T) {
	// Racing whole-profile stores under one key (shards 1 and 4 sharing
	// a directory) must converge to one loadable entry.
	dir := t.TempDir()
	key := Key{Kind: "campaign", Workload: "HPCCG", Seed: 11, WarmStart: true}
	const writers = 4
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := Open(dir)
			if err == nil {
				err = s.PutProfile(key, fakeProfile(), nil)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.GetProfile(key)
	if err != nil || got == nil {
		t.Fatalf("GetProfile after racing writers: %v, %v", got, err)
	}
	sameProfile(t, got, fakeProfile())
}
