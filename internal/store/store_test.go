package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"care/internal/checkpoint"
	"care/internal/machine"
	"care/internal/profiler"
)

func openT(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestBlobRoundTripAndDedup(t *testing.T) {
	s := openT(t)
	data := []byte("the quick brown fault")
	h, err := s.PutBlob(data)
	if err != nil {
		t.Fatalf("PutBlob: %v", err)
	}
	if h != HashBytes(data) {
		t.Fatalf("PutBlob returned wrong hash")
	}
	got, err := s.GetBlob(h)
	if err != nil {
		t.Fatalf("GetBlob: %v", err)
	}
	if string(got) != string(data) {
		t.Fatalf("GetBlob = %q, want %q", got, data)
	}
	// Second put of identical content is a dedup hit, not a write.
	if _, err := s.PutBlob(data); err != nil {
		t.Fatalf("PutBlob again: %v", err)
	}
	if n := s.Counter(CounterBlobPuts); n != 1 {
		t.Fatalf("blob-puts = %d, want 1", n)
	}
	if n := s.Counter(CounterBlobDedup); n != 1 {
		t.Fatalf("blob-dedup-hits = %d, want 1", n)
	}
	if n := s.Counter(CounterBytesDeduped); n != int64(len(data)) {
		t.Fatalf("bytes-deduped = %d, want %d", n, len(data))
	}
	if n := s.Counter(CounterBytesRead); n != int64(len(data)) {
		t.Fatalf("bytes-read = %d, want %d", n, len(data))
	}
}

func TestHashStringRoundTrip(t *testing.T) {
	h := HashBytes([]byte("x"))
	back, err := ParseHash(h.String())
	if err != nil || back != h {
		t.Fatalf("ParseHash(%q) = %v, %v", h.String(), back, err)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatalf("ParseHash accepted junk")
	}
}

func TestKeyIDDistinguishesFields(t *testing.T) {
	base := Key{Kind: "campaign", Workload: "HPCCG", Params: `{"n":16}`, Seed: 9, SnapEvery: 0, WarmStart: true}
	ids := map[string]string{base.ID(): "base"}
	for name, k := range map[string]Key{
		"seed":     {Kind: "campaign", Workload: "HPCCG", Params: `{"n":16}`, Seed: 10, WarmStart: true},
		"workload": {Kind: "campaign", Workload: "CG", Params: `{"n":16}`, Seed: 9, WarmStart: true},
		"defense":  {Kind: "campaign", Workload: "HPCCG", Params: `{"n":16}`, Seed: 9, WarmStart: true, Defenses: []string{"care"}},
		"cadence":  {Kind: "campaign", Workload: "HPCCG", Params: `{"n":16}`, Seed: 9, WarmStart: true, SnapEvery: 500},
		"cold":     {Kind: "campaign", Workload: "HPCCG", Params: `{"n":16}`, Seed: 9},
		"opt":      {Kind: "campaign", Workload: "HPCCG", Params: `{"n":16}`, Seed: 9, WarmStart: true, OptLevel: 2},
		"kind":     {Kind: "coverage", Workload: "HPCCG", Params: `{"n":16}`, Seed: 9, WarmStart: true},
	} {
		if prev, dup := ids[k.ID()]; dup {
			t.Fatalf("key variant %q collides with %q", name, prev)
		}
		ids[k.ID()] = name
	}
	if base.ID() != (Key{Kind: "campaign", Workload: "HPCCG", Params: `{"n":16}`, Seed: 9, WarmStart: true}).ID() {
		t.Fatalf("equal keys produced different IDs")
	}
}

// fakeProfile builds a two-snapshot profile whose snapshots share one
// segment backing array (as frozen COW capture produces) and carry a
// NaN in the golden stream (the bit-exactness hazard fbits exists for).
func fakeProfile() *profiler.Profile {
	shared := []byte("shared-cow-segment-bytes")
	dirty1 := []byte("snap1-private")
	dirty2 := []byte("snap2-private-longer")
	mkSnap := func(dyn uint64, dirty []byte) profiler.SnapPoint {
		st := &checkpoint.Snapshot{
			Mem: &machine.Snapshot{
				HeapNext: 0x9000,
				Segs: []machine.SegSnapshot{
					{Base: 0x1000, Name: "app.data", Data: shared, Domain: 1},
					{Base: 0x2000, Name: "heap", Data: dirty, Domain: 2},
				},
			},
			Step:       int(dyn / 100),
			EnvResults: []float64{1.5, math.NaN()},
			EnvPrinted: []string{"iter"},
		}
		st.CPU.PC = machine.Word(0x40 + dyn)
		st.CPU.Dyn = dyn
		st.CPU.R[3] = 77
		st.CPU.F[2] = math.Inf(1)
		return profiler.SnapPoint{Dyn: dyn, State: st, Counts: map[string][]uint64{"app": {dyn, 2}}}
	}
	return &profiler.Profile{
		TotalDyn: 12345,
		Counts:   map[string][]uint64{"app": {5, 6, 7}},
		Golden:   []float64{3.25, math.NaN(), math.Inf(-1)},
		ExitCode: 0,
		Snaps:    []profiler.SnapPoint{mkSnap(100, dirty1), mkSnap(200, dirty2)},
	}
}

func sameProfile(t *testing.T, got, want *profiler.Profile) {
	t.Helper()
	if got.TotalDyn != want.TotalDyn || got.ExitCode != want.ExitCode {
		t.Fatalf("profile header mismatch: %+v vs %+v", got, want)
	}
	if len(got.Golden) != len(want.Golden) {
		t.Fatalf("golden len %d, want %d", len(got.Golden), len(want.Golden))
	}
	for i := range got.Golden {
		if math.Float64bits(got.Golden[i]) != math.Float64bits(want.Golden[i]) {
			t.Fatalf("golden[%d] bits differ", i)
		}
	}
	if len(got.Snaps) != len(want.Snaps) {
		t.Fatalf("snaps = %d, want %d", len(got.Snaps), len(want.Snaps))
	}
	for i := range got.Snaps {
		g, w := got.Snaps[i], want.Snaps[i]
		if g.Dyn != w.Dyn || g.State.Step != w.State.Step || g.State.CPU != w.State.CPU {
			t.Fatalf("snap %d header mismatch", i)
		}
		if g.State.Mem.HeapNext != w.State.Mem.HeapNext {
			t.Fatalf("snap %d heap mismatch", i)
		}
		if len(g.State.Mem.Segs) != len(w.State.Mem.Segs) {
			t.Fatalf("snap %d segs = %d, want %d", i, len(g.State.Mem.Segs), len(w.State.Mem.Segs))
		}
		for j := range g.State.Mem.Segs {
			gs, ws := g.State.Mem.Segs[j], w.State.Mem.Segs[j]
			if gs.Base != ws.Base || gs.Name != ws.Name || gs.Domain != ws.Domain || string(gs.Data) != string(ws.Data) {
				t.Fatalf("snap %d seg %d mismatch", i, j)
			}
		}
		if len(g.Counts["app"]) != len(w.Counts["app"]) {
			t.Fatalf("snap %d counts mismatch", i)
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	s := openT(t)
	key := Key{Kind: "campaign", Workload: "HPCCG", Seed: 1, WarmStart: true}
	prof := fakeProfile()
	text := []TextImage{{Name: "app", Data: []byte("packed-text-image")}}
	if err := s.PutProfile(key, prof, text); err != nil {
		t.Fatalf("PutProfile: %v", err)
	}
	// The shared segment must have been stored once: segments are
	// 2×shared (aliased) + 2 dirty + 1 text = 4 distinct blobs, and the
	// aliased copy is recognised by backing-array identity, not even
	// charged as a dedup hit.
	if n := s.Counter(CounterBlobPuts); n != 4 {
		t.Fatalf("blob-puts = %d, want 4", n)
	}
	got, err := s.GetProfile(key)
	if err != nil {
		t.Fatalf("GetProfile: %v", err)
	}
	if got == nil {
		t.Fatalf("GetProfile returned a miss for a stored key")
	}
	sameProfile(t, got, prof)
	// Cross-snapshot sharing must survive the round trip: both
	// snapshots' shared segment alias one backing array.
	a := got.Snaps[0].State.Mem.Segs[0].Data
	b := got.Snaps[1].State.Mem.Segs[0].Data
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatalf("shared segment was duplicated on load")
	}
	if n := s.Counter(CounterGoldenHits); n != 1 {
		t.Fatalf("golden-hits = %d, want 1", n)
	}
	// A second identical store of the profile is pure dedup.
	if err := s.PutProfile(key, prof, text); err != nil {
		t.Fatalf("PutProfile again: %v", err)
	}
	if n := s.Counter(CounterBlobPuts); n != 4 {
		t.Fatalf("blob-puts after re-put = %d, want 4", n)
	}
	if n := s.Counter(CounterBlobDedup); n != 4 {
		t.Fatalf("blob-dedup-hits after re-put = %d, want 4", n)
	}
}

func TestGetProfileCleanMiss(t *testing.T) {
	s := openT(t)
	prof, err := s.GetProfile(Key{Kind: "campaign", Workload: "nope"})
	if err != nil {
		t.Fatalf("clean miss should not error: %v", err)
	}
	if prof != nil {
		t.Fatalf("clean miss returned a profile")
	}
	if n := s.Counter(CounterGoldenMisses); n != 1 {
		t.Fatalf("golden-misses = %d, want 1", n)
	}
	if n := s.Counter(CounterFallback); n != 0 {
		t.Fatalf("fallback = %d, want 0 on a clean miss", n)
	}
}

func TestListInventory(t *testing.T) {
	s := openT(t)
	key := Key{Kind: "campaign", Workload: "HPCCG", Seed: 4, WarmStart: true}
	if err := s.PutProfile(key, fakeProfile(), nil); err != nil {
		t.Fatalf("PutProfile: %v", err)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(entries) != 1 || entries[0].Key.Workload != "HPCCG" || entries[0].Snaps != 2 {
		t.Fatalf("List = %+v", entries)
	}
	if entries[0].Seal != nil {
		t.Fatalf("entry has a seal before any trace was stored")
	}
}

func TestStoreSharedAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	key := Key{Kind: "campaign", Workload: "HPCCG", Seed: 2, WarmStart: true}
	if err := s1.PutProfile(key, fakeProfile(), nil); err != nil {
		t.Fatalf("PutProfile: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := s2.GetProfile(key)
	if err != nil || got == nil {
		t.Fatalf("GetProfile after reopen: %v, %v", got, err)
	}
	if n := s2.Counter(CounterGoldenHits); n != 1 {
		t.Fatalf("golden-hits = %d, want 1", n)
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	s := openT(t)
	if _, err := s.PutBlob([]byte("abc")); err != nil {
		t.Fatalf("PutBlob: %v", err)
	}
	var temps []string
	filepath.Walk(s.Dir(), func(path string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() && filepath.Base(path)[0] == '.' {
			temps = append(temps, path)
		}
		return nil
	})
	if len(temps) != 0 {
		t.Fatalf("temp files left behind: %v", temps)
	}
}
