// Package hostenv defines the "host" surface of the simulated execution
// environment: the small set of runtime services (heap allocation,
// output, math intrinsics, abort, MPI-style collectives) that IR
// programs may call. Both the IR interpreter and the simulated machine
// route host calls through an Env so that the two executions are
// observationally identical — the property the differential tests rely
// on.
package hostenv

import (
	"errors"
	"fmt"
	"math"
)

// Word is a 64-bit machine word. Floats are passed bit-punned via
// math.Float64bits.
type Word = uint64

// F converts a word to its float interpretation.
func F(w Word) float64 { return math.Float64frombits(w) }

// W converts a float to its word representation.
func W(f float64) Word { return math.Float64bits(f) }

// Context is the memory/allocation surface a host call may touch. It is
// implemented by the machine's process memory and by the interpreter's
// simple memory.
type Context interface {
	// ReadWord loads the 8-byte word at addr.
	ReadWord(addr Word) (Word, error)
	// WriteWord stores the 8-byte word v at addr.
	WriteWord(addr Word, v Word) error
	// Alloc carves a fresh heap allocation of n bytes and returns its
	// base address. Allocations are never freed (the workloads are
	// arena-style scientific codes).
	Alloc(n Word) (Word, error)
}

// ErrAbort is returned by the "abort" host call; executors translate it
// into a SIGABRT-style trap.
var ErrAbort = errors.New("hostenv: abort")

// DetectFault is returned by the "care_detect" host call when a
// detection-only defense pass (PRESAGE chain check, SFI bounds check)
// fires; executors translate it into a SIGTRAP-style trap carrying the
// suspect address so the recovery runtime can attribute the fault.
type DetectFault struct {
	// Addr is the address the failed check was guarding.
	Addr Word
}

// Error implements error.
func (d *DetectFault) Error() string {
	return fmt.Sprintf("hostenv: defense check failed guarding 0x%x", d.Addr)
}

// Status tells the executor how to proceed after a host call.
type Status uint8

const (
	// Done: the call completed; the result word is valid.
	Done Status = iota
	// Exit: the program requested termination with the result as code.
	Exit
	// Block: the call must wait for other ranks (collective); the
	// executor should yield to its scheduler and re-issue the call.
	Block
)

// Collectives is the hook through which a multi-rank scheduler provides
// MPI-style semantics. In single-rank mode (nil hook) collectives reduce
// over the local value only and halo exchange is a local copy.
type Collectives interface {
	// AllreduceSum contributes v and reports whether the result is
	// ready; when not ready the caller blocks and retries.
	AllreduceSum(rank int, v float64) (float64, bool)
	// Barrier reports whether all ranks have arrived.
	Barrier(rank int) bool
}

// Env is one rank's host environment.
type Env struct {
	Rank int
	Size int

	// Results accumulates values passed to the result_f64 host call, in
	// order. Fault-injection outcome classification compares Results
	// against a golden run: equal = benign, different = SDC.
	Results []float64
	// Printed accumulates print_* output lines (diagnostics only; not
	// part of the SDC comparison).
	Printed []string
	// MaxResults bounds Results so that a fault-crazed loop cannot
	// allocate unboundedly; 0 means the default of 1<<20.
	MaxResults int

	// Coll, when non-nil, provides multi-rank collectives.
	Coll Collectives
}

// NewEnv returns a single-rank environment.
func NewEnv() *Env { return &Env{Rank: 0, Size: 1} }

// Reset clears captured output so an Env can be reused across runs.
func (e *Env) Reset() {
	e.Results = e.Results[:0]
	e.Printed = e.Printed[:0]
}

// Signature describes a host function's arity; executors use it to
// marshal arguments.
type Signature struct {
	NArgs int
	// FloatArgs marks argument positions holding floats (word-punned).
	FloatArgs []bool
	// FloatRet marks a float (word-punned) result.
	FloatRet bool
}

// Signatures maps every supported host function to its signature. The
// compiler refuses calls to unknown host functions.
var Signatures = map[string]Signature{
	"malloc":      {NArgs: 1},
	"print_i64":   {NArgs: 1},
	"print_f64":   {NArgs: 1, FloatArgs: []bool{true}, FloatRet: false},
	"result_f64":  {NArgs: 1, FloatArgs: []bool{true}},
	"abort":       {NArgs: 1},
	"exit":        {NArgs: 1},
	"care_detect": {NArgs: 2},
	"sqrt":        {NArgs: 1, FloatArgs: []bool{true}, FloatRet: true},
	"fabs":        {NArgs: 1, FloatArgs: []bool{true}, FloatRet: true},
	"exp":         {NArgs: 1, FloatArgs: []bool{true}, FloatRet: true},
	"log":         {NArgs: 1, FloatArgs: []bool{true}, FloatRet: true},
	"sin":         {NArgs: 1, FloatArgs: []bool{true}, FloatRet: true},
	"cos":         {NArgs: 1, FloatArgs: []bool{true}, FloatRet: true},
	"floor":       {NArgs: 1, FloatArgs: []bool{true}, FloatRet: true},
	"pow":         {NArgs: 2, FloatArgs: []bool{true, true}, FloatRet: true},
	"fmin":        {NArgs: 2, FloatArgs: []bool{true, true}, FloatRet: true},
	"fmax":        {NArgs: 2, FloatArgs: []bool{true, true}, FloatRet: true},

	"mpi_rank":              {NArgs: 0},
	"mpi_size":              {NArgs: 0},
	"mpi_barrier":           {NArgs: 0},
	"mpi_allreduce_sum_f64": {NArgs: 1, FloatArgs: []bool{true}, FloatRet: true},
}

// SimpleMathFuncs lists the host calls Armor may treat as plain binary
// operators when extracting recovery kernels (they are pure and do not
// touch globals or arguments' memory).
var SimpleMathFuncs = map[string]bool{
	"sqrt": true, "fabs": true, "exp": true, "log": true, "sin": true,
	"cos": true, "floor": true, "pow": true, "fmin": true, "fmax": true,
}

// Call executes the named host function. It returns the result word, a
// status, and an error. ErrAbort signals a SIGABRT-style trap; other
// errors are executor bugs or memory faults raised by ctx.
func (e *Env) Call(name string, args []Word, ctx Context) (Word, Status, error) {
	switch name {
	case "malloc":
		a, err := ctx.Alloc(args[0])
		return a, Done, err
	case "print_i64":
		e.appendPrint(fmt.Sprintf("%d", int64(args[0])))
		return 0, Done, nil
	case "print_f64":
		e.appendPrint(fmt.Sprintf("%.17g", F(args[0])))
		return 0, Done, nil
	case "result_f64":
		max := e.MaxResults
		if max == 0 {
			max = 1 << 20
		}
		if len(e.Results) < max {
			e.Results = append(e.Results, F(args[0]))
		}
		return 0, Done, nil
	case "abort":
		return 0, Done, fmt.Errorf("%w (code %d)", ErrAbort, int64(args[0]))
	case "care_detect":
		// args[0] is the check's failure condition, args[1] the guarded
		// address. A zero condition is the (overwhelmingly common)
		// all-clear fast path.
		if args[0] != 0 {
			return 0, Done, &DetectFault{Addr: args[1]}
		}
		return 0, Done, nil
	case "exit":
		return args[0], Exit, nil
	case "sqrt":
		return W(math.Sqrt(F(args[0]))), Done, nil
	case "fabs":
		return W(math.Abs(F(args[0]))), Done, nil
	case "exp":
		return W(math.Exp(F(args[0]))), Done, nil
	case "log":
		return W(math.Log(F(args[0]))), Done, nil
	case "sin":
		return W(math.Sin(F(args[0]))), Done, nil
	case "cos":
		return W(math.Cos(F(args[0]))), Done, nil
	case "floor":
		return W(math.Floor(F(args[0]))), Done, nil
	case "pow":
		return W(math.Pow(F(args[0]), F(args[1]))), Done, nil
	case "fmin":
		return W(math.Min(F(args[0]), F(args[1]))), Done, nil
	case "fmax":
		return W(math.Max(F(args[0]), F(args[1]))), Done, nil
	case "mpi_rank":
		return Word(e.Rank), Done, nil
	case "mpi_size":
		return Word(e.Size), Done, nil
	case "mpi_barrier":
		if e.Coll == nil {
			return 0, Done, nil
		}
		if e.Coll.Barrier(e.Rank) {
			return 0, Done, nil
		}
		return 0, Block, nil
	case "mpi_allreduce_sum_f64":
		if e.Coll == nil {
			return args[0], Done, nil
		}
		if v, ok := e.Coll.AllreduceSum(e.Rank, F(args[0])); ok {
			return W(v), Done, nil
		}
		return 0, Block, nil
	}
	return 0, Done, fmt.Errorf("hostenv: unknown host function %q", name)
}

func (e *Env) appendPrint(s string) {
	if len(e.Printed) < 4096 {
		e.Printed = append(e.Printed, s)
	}
}
