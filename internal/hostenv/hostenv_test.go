package hostenv

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// fakeCtx is an in-memory Context.
type fakeCtx struct {
	mem  map[Word]Word
	next Word
}

func newFakeCtx() *fakeCtx { return &fakeCtx{mem: map[Word]Word{}, next: 0x1000} }

func (c *fakeCtx) ReadWord(a Word) (Word, error) { return c.mem[a], nil }
func (c *fakeCtx) WriteWord(a, v Word) error     { c.mem[a] = v; return nil }
func (c *fakeCtx) Alloc(n Word) (Word, error)    { a := c.next; c.next += n; return a, nil }

func TestMathIntrinsicsMatchGoMath(t *testing.T) {
	env := NewEnv()
	ctx := newFakeCtx()
	unary := map[string]func(float64) float64{
		"sqrt": math.Sqrt, "fabs": math.Abs, "exp": math.Exp, "log": math.Log,
		"sin": math.Sin, "cos": math.Cos, "floor": math.Floor,
	}
	for name, ref := range unary {
		name, ref := name, ref
		prop := func(x float64) bool {
			got, st, err := env.Call(name, []Word{W(x)}, ctx)
			if err != nil || st != Done {
				return false
			}
			want := ref(x)
			return F(got) == want || (math.IsNaN(F(got)) && math.IsNaN(want))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	binary := map[string]func(a, b float64) float64{
		"pow": math.Pow, "fmin": math.Min, "fmax": math.Max,
	}
	for name, ref := range binary {
		name, ref := name, ref
		prop := func(x, y float64) bool {
			got, _, err := env.Call(name, []Word{W(x), W(y)}, ctx)
			if err != nil {
				return false
			}
			want := ref(x, y)
			return F(got) == want || (math.IsNaN(F(got)) && math.IsNaN(want))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSignaturesCoverAllHandledCalls(t *testing.T) {
	env := NewEnv()
	ctx := newFakeCtx()
	for name, sig := range Signatures {
		args := make([]Word, sig.NArgs)
		for i := range args {
			args[i] = W(0.5) // valid for both int and float slots
		}
		_, _, err := env.Call(name, args, ctx)
		var det *DetectFault
		if err != nil && !errors.Is(err, ErrAbort) && !errors.As(err, &det) {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, _, err := env.Call("no_such_fn", nil, ctx); err == nil {
		t.Error("unknown host function accepted")
	}
}

func TestSimpleMathSubsetOfSignatures(t *testing.T) {
	for name := range SimpleMathFuncs {
		if _, ok := Signatures[name]; !ok {
			t.Errorf("simple math func %s has no signature", name)
		}
	}
}

func TestResultsAndPrints(t *testing.T) {
	env := NewEnv()
	ctx := newFakeCtx()
	for i := 0; i < 5; i++ {
		if _, _, err := env.Call("result_f64", []Word{W(float64(i))}, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if len(env.Results) != 5 || env.Results[3] != 3 {
		t.Fatalf("results %v", env.Results)
	}
	env.Call("print_i64", []Word{Word(42)}, ctx)
	env.Call("print_f64", []Word{W(2.5)}, ctx)
	if len(env.Printed) != 2 || env.Printed[0] != "42" {
		t.Fatalf("printed %v", env.Printed)
	}
	env.Reset()
	if len(env.Results) != 0 || len(env.Printed) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestResultsBounded(t *testing.T) {
	env := NewEnv()
	env.MaxResults = 10
	ctx := newFakeCtx()
	for i := 0; i < 100; i++ {
		env.Call("result_f64", []Word{W(1)}, ctx)
	}
	if len(env.Results) != 10 {
		t.Fatalf("results grew to %d", len(env.Results))
	}
}

func TestAbortAndExit(t *testing.T) {
	env := NewEnv()
	ctx := newFakeCtx()
	_, _, err := env.Call("abort", []Word{Word(7)}, ctx)
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("abort err = %v", err)
	}
	code, st, err := env.Call("exit", []Word{Word(3)}, ctx)
	if err != nil || st != Exit || code != 3 {
		t.Fatalf("exit: %v %v %v", code, st, err)
	}
}

func TestMallocRoutesToContext(t *testing.T) {
	env := NewEnv()
	ctx := newFakeCtx()
	a1, _, err := env.Call("malloc", []Word{64}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, _ := env.Call("malloc", []Word{64}, ctx)
	if a2 <= a1 {
		t.Fatal("allocator not advancing")
	}
}

func TestSingleRankCollectivesAreIdentity(t *testing.T) {
	env := NewEnv()
	ctx := newFakeCtx()
	v, st, err := env.Call("mpi_allreduce_sum_f64", []Word{W(3.5)}, ctx)
	if err != nil || st != Done || F(v) != 3.5 {
		t.Fatalf("allreduce: %v %v %v", F(v), st, err)
	}
	if _, st, _ := env.Call("mpi_barrier", nil, ctx); st != Done {
		t.Fatal("single-rank barrier blocked")
	}
	if r, _, _ := env.Call("mpi_rank", nil, ctx); r != 0 {
		t.Fatal("rank not 0")
	}
	if s, _, _ := env.Call("mpi_size", nil, ctx); s != 1 {
		t.Fatal("size not 1")
	}
}
