package faultinject

import (
	"bytes"
	"reflect"
	"testing"

	"care/internal/core"
	"care/internal/ir"
	"care/internal/profiler"
	"care/internal/safeguard"
	"care/internal/trace"
)

// jsonlBytes serialises a recorder the way the CLI tools do; warm and
// cold campaign exports must compare byte-for-byte equal.
func jsonlBytes(t *testing.T, r *trace.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// scrubWarmStart strips the one field a warm campaign is allowed to add;
// everything else must be bit-identical to the cold run.
func scrubWarmStart(r *CampaignResult) *CampaignResult {
	c := *r
	c.WarmStart = nil
	return &c
}

// tinyBinary builds a ~250-dynamic-instruction workload (sum of 0..39
// reported through result_f64) so the cadence-1 sweep can afford one
// snapshot per retired instruction.
func tinyBinary(t testing.TB) *core.Binary {
	t.Helper()
	m := ir.NewModule("tinysum")
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	entry := m.Func("main").Entry()
	loop := b.NewBlock("loop")
	body := b.NewBlock("body")
	done := b.NewBlock("done")
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(ir.I64)
	s := b.Phi(ir.F64)
	c := b.ICmp(ir.OpICmpSLT, i, ir.ConstInt(40))
	b.CondBr(c, body, done)
	b.SetBlock(body)
	fi := b.IToF(i)
	s2 := b.FAdd(s, fi)
	in := b.Add(i, ir.ConstInt(1))
	b.Br(loop)
	ir.AddIncoming(i, ir.ConstInt(0), entry)
	ir.AddIncoming(i, in, body)
	ir.AddIncoming(s, ir.ConstFloat(0), entry)
	ir.AddIncoming(s, s2, body)
	b.SetBlock(done)
	b.HostCall("result_f64", ir.Void, s)
	b.Ret(ir.ConstInt(0))
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(m, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestWarmStartCampaignEquivalence is the warm-start contract: the same
// seed produces a bit-identical CampaignResult — including the exported
// trace JSONL — with warm-start on or off, for any worker count. Only
// the WarmStart accounting field may differ.
func TestWarmStartCampaignEquivalence(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	run := func(warm bool, workers int) *CampaignResult {
		res, err := (&Campaign{
			App: bin, N: 24, Model: SingleBit, Seed: 11,
			Workers: workers, Trace: true, WarmStart: warm,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run(false, 1)
	if cold.WarmStart != nil {
		t.Fatal("cold campaign reports warm-start stats")
	}
	coldJSON := jsonlBytes(t, cold.Trace)
	for _, workers := range []int{1, 4} {
		warm := run(true, workers)
		if warm.WarmStart == nil {
			t.Fatalf("workers=%d: warm campaign has no warm-start stats", workers)
		}
		if warm.WarmStart.Snapshots == 0 || warm.WarmStart.WarmTrials == 0 || warm.WarmStart.SkippedDyn == 0 {
			t.Fatalf("workers=%d: warm campaign skipped nothing: %+v", workers, warm.WarmStart)
		}
		if !reflect.DeepEqual(scrubWarmStart(warm), cold) {
			t.Fatalf("workers=%d: warm result differs from cold:\n%+v\nvs\n%+v",
				workers, scrubWarmStart(warm), cold)
		}
		if !bytes.Equal(jsonlBytes(t, warm.Trace), coldJSON) {
			t.Fatalf("workers=%d: warm trace JSONL differs from cold", workers)
		}
	}
}

// TestWarmStartSnapshotCadences sweeps the snapshot cadence across its
// edge cases on a tiny workload: one snapshot per instruction, a prime
// stride, and a stride past the end of the run (zero snapshots, so every
// trial falls back to a cold start). All must reproduce the cold result.
func TestWarmStartSnapshotCadences(t *testing.T) {
	bin := tinyBinary(t)
	run := func(warm bool, every uint64) *CampaignResult {
		res, err := (&Campaign{
			App: bin, N: 16, Model: SingleBit, Seed: 7,
			Workers: 4, Trace: true, WarmStart: warm, SnapEvery: every,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run(false, 0)
	coldJSON := jsonlBytes(t, cold.Trace)
	for _, every := range []uint64{1, 7, 1 << 40} {
		warm := run(true, every)
		if !reflect.DeepEqual(scrubWarmStart(warm), cold) {
			t.Fatalf("cadence %d: warm result differs from cold:\n%+v\nvs\n%+v",
				every, scrubWarmStart(warm), cold)
		}
		if !bytes.Equal(jsonlBytes(t, warm.Trace), coldJSON) {
			t.Fatalf("cadence %d: warm trace JSONL differs from cold", every)
		}
		switch {
		case every == 1 && warm.WarmStart.WarmTrials == 0:
			t.Fatal("cadence 1 warm-started no trial")
		case every == 1<<40 && warm.WarmStart.Snapshots != 0:
			t.Fatalf("cadence past TotalDyn captured %d snapshots", warm.WarmStart.Snapshots)
		}
	}
}

// TestWarmStartMultiFaultEquivalence extends the contract to the
// multi-fault model, where the snapshot must be chosen against the
// *earliest* armed target — a later fault's snapshot would skip past the
// first corruption point.
func TestWarmStartMultiFaultEquivalence(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	run := func(warm bool) *CampaignResult {
		res, err := (&Campaign{
			App: bin, N: 16, Model: SingleBit, Seed: 13,
			FaultsPerTrial: 3, Workers: 4, Trace: true, WarmStart: warm,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold, warm := run(false), run(true)
	if !reflect.DeepEqual(scrubWarmStart(warm), cold) {
		t.Fatalf("multi-fault warm result differs from cold:\n%+v\nvs\n%+v",
			scrubWarmStart(warm), cold)
	}
	if !bytes.Equal(jsonlBytes(t, warm.Trace), jsonlBytes(t, cold.Trace)) {
		t.Fatal("multi-fault warm trace JSONL differs from cold")
	}
	if warm.WarmStart.WarmTrials == 0 {
		t.Fatal("multi-fault campaign warm-started no trial")
	}
	// Every fault of every trial must still fire at (or after) its own
	// target — a snapshot past the earliest target would make that fault
	// unfirable.
	for _, inj := range warm.Injections {
		for _, fp := range inj.Faults {
			if fp.Fired && fp.Dyn < fp.TargetDyn {
				t.Errorf("fault fired at dyn %d before its target %d", fp.Dyn, fp.TargetDyn)
			}
		}
	}
}

// TestNearestSnapStrictlyPrecedes pins the eligibility rule: a snapshot
// taken at exactly the target dyn has already retired the target
// instruction uncorrupted, so only strictly earlier snapshots qualify.
func TestNearestSnapStrictlyPrecedes(t *testing.T) {
	p := &profiler.Profile{Snaps: []profiler.SnapPoint{{Dyn: 10}, {Dyn: 20}, {Dyn: 30}}}
	for _, tc := range []struct {
		dyn  uint64
		want uint64 // 0 = nil
	}{
		{5, 0}, {10, 0}, {11, 10}, {20, 10}, {30, 20}, {31, 30}, {1 << 30, 30},
	} {
		got := p.NearestSnap(tc.dyn)
		switch {
		case tc.want == 0 && got != nil:
			t.Errorf("NearestSnap(%d) = snapshot at %d, want nil", tc.dyn, got.Dyn)
		case tc.want != 0 && (got == nil || got.Dyn != tc.want):
			t.Errorf("NearestSnap(%d) = %v, want snapshot at %d", tc.dyn, got, tc.want)
		}
	}
}

// TestWarmStartCoverageEquivalence asserts the §5 coverage path under
// warm start: occurrence-triggered faults fire on exactly the same
// retirement as cold thanks to the pre-seeded occurrence counters, so
// every logical field matches (only wall-clock timings may differ).
func TestWarmStartCoverageEquivalence(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	run := func(warm bool) *CoverageResult {
		res, err := (&CoverageExperiment{
			App: bin, Trials: 12, Model: SingleBit, Seed: 21,
			RecordInjections: true, Workers: 4, WarmStart: warm,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold, warm := run(false), run(true)
	scrub := func(r *CoverageResult) CoverageResult {
		c := *r
		c.Events = nil
		c.TrialRecoveryTimes = nil
		c.Trace = nil // compared separately, with Wall times scrubbed
		return c
	}
	if a, b := scrub(warm), scrub(cold); !reflect.DeepEqual(a, b) {
		t.Fatalf("warm coverage differs from cold:\n%+v\nvs\n%+v", a, b)
	}
	requireTraceSkeletonEqual(t, warm.Trace, cold.Trace)
}

// TestWarmStartCoverageRollbackGuard pins the rollback interaction:
// warm start is silently ignored when the policy checkpoints processes
// at _start (a mid-run clone cannot reproduce that store), and the
// result still matches the cold rollback run exactly.
func TestWarmStartCoverageRollbackGuard(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	run := func(warm bool) *CoverageResult {
		res, err := (&CoverageExperiment{
			App: bin, Trials: 6, Model: SingleBit, Seed: 31,
			Safeguard: safeguard.Config{
				Policy: safeguard.Policy{Rollback: true, MaxTrapsPerPC: 8, StormTraps: 4},
			},
			CheckpointEveryResults: 1,
			Workers:                4,
			WarmStart:              warm,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold, warm := run(false), run(true)
	scrub := func(r *CoverageResult) CoverageResult {
		c := *r
		c.Events = nil
		c.TrialRecoveryTimes = nil
		c.Trace = nil
		return c
	}
	if a, b := scrub(warm), scrub(cold); !reflect.DeepEqual(a, b) {
		t.Fatalf("rollback coverage differs with warm-start requested:\n%+v\nvs\n%+v", a, b)
	}
	requireTraceSkeletonEqual(t, warm.Trace, cold.Trace)
}
