package faultinject

import (
	"reflect"
	"testing"

	"care/internal/checkpoint"
	"care/internal/machine"
	"care/internal/safeguard"
)

// TestDomainRewindCoverageTierWorkerDeterminism pins the domain-rewind
// escalation chain's campaign guarantee: the same multi-fault campaign
// is bit-identical (in every logical field, span skeleton and counter)
// across worker counts and across all three interpreter tiers — the
// same contract the CI smoke checks end to end on the care-inject
// trace files.
func TestDomainRewindCoverageTierWorkerDeterminism(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	run := func(workers int, tier machine.InterpTier) *CoverageResult {
		res, err := (&CoverageExperiment{
			App: bin, Trials: 8, FaultsPerTrial: 2, Model: SingleBit, Seed: 31,
			Safeguard: safeguard.Config{
				InductionRecovery: true,
				Policy: safeguard.Policy{
					Rollback: true, DomainRewind: true,
					MaxTrapsPerPC: 8, StormTraps: 4,
				},
			},
			CheckpointEveryResults: 1,
			CheckpointModel:        checkpoint.DefaultCostModel(),
			Workers:                workers,
			Tier:                   tier,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scrub := func(r *CoverageResult) CoverageResult {
		c := *r
		c.Events = nil
		c.TrialRecoveryTimes = nil
		c.Trace = nil // compared separately, with Wall times scrubbed
		return c
	}
	base := run(1, machine.TierSuperblock)
	if base.DomainRewinds == 0 {
		t.Fatal("campaign exercised no domain rewinds; the determinism check is vacuous")
	}
	if base.Trace.Counter(safeguard.CounterDomainRewinds) != int64(base.DomainRewinds) {
		t.Fatalf("DomainRewinds %d disagrees with its trace counter %d",
			base.DomainRewinds, base.Trace.Counter(safeguard.CounterDomainRewinds))
	}
	for _, tc := range []struct {
		name    string
		workers int
		tier    machine.InterpTier
	}{
		{"workers-8/superblock", 8, machine.TierSuperblock},
		{"workers-1/block", 1, machine.TierBlock},
		{"workers-8/step", 8, machine.TierStep},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := run(tc.workers, tc.tier)
			if a, b := scrub(base), scrub(got); !reflect.DeepEqual(a, b) {
				t.Fatalf("logical fields differ from workers=1/superblock:\n%+v\nvs\n%+v", a, b)
			}
			requireTraceSkeletonEqual(t, base.Trace, got.Trace)
			if len(base.Events) != len(got.Events) {
				t.Fatalf("event count differs: %d vs %d", len(base.Events), len(got.Events))
			}
			for i := range base.Events {
				if base.Events[i].Outcome != got.Events[i].Outcome ||
					base.Events[i].Domain != got.Events[i].Domain {
					t.Errorf("event %d: %s/%v vs %s/%v", i,
						base.Events[i].Outcome, base.Events[i].Domain,
						got.Events[i].Outcome, got.Events[i].Domain)
				}
			}
		})
	}
}

// TestCampaignDomainAttribution: with Domains armed, every fired
// memory-symptom soft failure lands in exactly one per-domain counter,
// and ByDomain mirrors the counters.
func TestCampaignDomainAttribution(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	res, err := (&Campaign{
		App: bin, N: 60, Model: SingleBit, Seed: 17, Domains: true, Trace: true,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	memSymptoms := 0
	for _, inj := range res.Injections {
		if inj.Outcome == SoftFailure && inj.Image != "" &&
			(inj.Signal == machine.SigSEGV || inj.Signal == machine.SigBUS) {
			memSymptoms++
		}
	}
	attributed := 0
	for d, n := range res.ByDomain {
		if n <= 0 {
			t.Errorf("domain %v carries a non-positive count %d", d, n)
		}
		if got := res.Trace.Counter(domainCounter(d)); got != int64(n) {
			t.Errorf("ByDomain[%v] = %d but counter %s = %d", d, n, domainCounter(d), got)
		}
		attributed += n
	}
	if attributed != memSymptoms {
		t.Errorf("%d faults attributed to domains, want every one of the %d memory-symptom soft failures",
			attributed, memSymptoms)
	}
	if memSymptoms == 0 {
		t.Fatal("campaign produced no memory-symptom faults; attribution check is vacuous")
	}
}
