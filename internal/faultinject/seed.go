package faultinject

// splitmix64 is the finalizer of Vigna's SplitMix64 generator — a
// cheap, high-quality 64-bit mixer whose output is equidistributed over
// consecutive inputs. It is the standard tool for spawning independent
// RNG streams from (seed, index) pairs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// TrialSeed derives the RNG seed for one trial of a campaign from the
// campaign seed and the trial index. Each trial seeding its own
// math/rand source from this value is what makes campaigns
// order-independent: trial i draws the same (target, bits) whether it
// runs first on one goroutine or last on sixteen.
//
// The derivation mixes both inputs through splitmix64 so that adjacent
// campaign seeds and adjacent trial indices produce uncorrelated
// streams (a plain seed+i would hand trial i of campaign s the same
// stream as trial i-1 of campaign s+1).
func TrialSeed(seed int64, trial uint64) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ splitmix64(trial+0x632BE59BD9B4E019)))
}
