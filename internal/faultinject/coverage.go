package faultinject

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"care/internal/checkpoint"
	"care/internal/core"
	"care/internal/machine"
	"care/internal/parallel"
	"care/internal/profiler"
	"care/internal/safeguard"
	"care/internal/store"
	"care/internal/trace"
)

// CoverageExperiment reproduces the paper's §5.2/§5.3 evaluation: inject
// faults into profiled application instructions, keep the injections
// that manifest as SIGSEGV, and measure Safeguard's recovery rate
// (Figure 7 / Figure 12) and recovery time (Figure 9 / Table 9).
type CoverageExperiment struct {
	// App is a CARE-protected build.
	App *core.Binary
	// Libs are linked (possibly protected) library binaries.
	Libs []*core.Binary
	// TargetImages restricts injection to the named images; empty means
	// the application image only (the paper's §5 setup — recovering
	// library faults requires the library to be built with CARE, §5.5).
	TargetImages []string
	// Trials is the number of SIGSEGV-leading injections to examine.
	Trials int
	// MaxAttempts bounds total injections tried (default 40x Trials).
	MaxAttempts int
	// FaultsPerTrial arms this many independent faults per attempt (the
	// multi-fault model); <=1 is the paper's single-fault setup.
	FaultsPerTrial int
	// Model selects the bit-flip model.
	Model Model
	// Seed drives the randomness.
	Seed int64
	// Safeguard configures the runtime (zero = paper configuration).
	// When Safeguard.Policy.Rollback is set, every attempt's process
	// gets its own checkpoint store: an initial snapshot at _start plus
	// one every CheckpointEveryResults result values.
	Safeguard safeguard.Config
	// CheckpointEveryResults is the snapshot cadence for the rollback
	// stage, in result values (0 = initial snapshot only).
	CheckpointEveryResults int
	// CheckpointModel prices the rollback stage's snapshot I/O (zero
	// value = free I/O; pass checkpoint.DefaultCostModel() for a
	// parallel-filesystem share).
	CheckpointModel checkpoint.CostModel
	// HangFactor multiplies the golden dynamic count (default 4).
	HangFactor uint64
	// RecordInjections retains the (trigger, bits) of recovered trials
	// so callers (e.g. the cluster experiment) can replay them.
	RecordInjections bool
	// Workers is the number of goroutines running injection attempts
	// concurrently; <=0 means one per available CPU. Attempt i derives
	// its RNG from (Seed, i) and results merge in attempt order, so
	// every field except the wall-clock recovery timings is identical
	// for every worker count.
	Workers int
	// Trace additionally stamps machine-level trap deliveries into each
	// examined attempt's trace (machine.CPU.Trace). Safeguard activation
	// spans and checkpoint I/O spans are always recorded.
	Trace bool
	// WarmStart clones each attempt from the latest golden-run snapshot
	// whose execution counts precede every armed occurrence trigger,
	// pre-seeding the arming hook with the snapshot's counts so faults
	// fire at exactly the dyn they would in a cold run. Ignored when the
	// policy needs a checkpoint store (Rollback or DomainRewind): those
	// stages checkpoint each process at _start, which a mid-run clone
	// cannot reproduce.
	WarmStart bool
	// SnapEvery is the snapshot cadence in retired instructions
	// (warm-start only; 0 picks TotalDyn/64+1).
	SnapEvery uint64
	// Tier selects the interpreter tier every attempt runs on (results
	// are identical on every tier; see Campaign.Tier).
	Tier machine.InterpTier
	// Shards splits the attempt index space across the internal/shard
	// coordinator's workers (subprocesses when ShardExec is set,
	// in-process otherwise). Run itself stays single-process; callers
	// route Shards > 1 experiments through shard.RunCoverage. The
	// in-order merge with early stop makes the sharded result identical
	// to a single-process run for any shard layout. <=1 disables.
	Shards int
	// ShardExec is the worker argv for subprocess shards; empty means
	// in-process shards. Read by the shard coordinator, ignored by Run.
	ShardExec []string
	// Progress, when non-nil, is invoked after each completed attempt
	// with (done, total) for the range being run; reporting only, never
	// recorded in traces. May be called concurrently.
	Progress func(done, total int)
	// Store and StoreKey cache the golden-run profile across runs,
	// exactly as on Campaign: a verified hit skips the golden passes, a
	// miss or corrupt entry runs cold and repopulates. The key's
	// cadence fields are pinned from the experiment's effective
	// warm-start (which the Safeguard policy can suppress), so entries
	// with and without snapshots never collide.
	Store    *store.Store
	StoreKey store.Key
}

// RecordedInjection identifies a replayable injection.
type RecordedInjection struct {
	Trigger Trigger
	Bits    []int
}

// CoverageResult aggregates the experiment.
type CoverageResult struct {
	Workload string
	OptLevel int
	Model    Model

	// Attempts is the number of injections performed; SigsegvTrials of
	// them raised SIGSEGV and were examined.
	Attempts      int
	SigsegvTrials int
	// Recovered counts trials whose process ran to completion.
	Recovered int
	// CleanRecovered counts recovered trials with golden output; the
	// difference is faults that also corrupted a non-address data path.
	CleanRecovered int
	// FailureOutcomes histograms the Safeguard outcome that terminated
	// each unrecovered trial.
	FailureOutcomes map[safeguard.Outcome]int
	// Events collects every Safeguard activation across trials.
	Events []safeguard.Event
	// TrialRecoveryTimes is the summed recovery time per recovered
	// trial (a single fault can require several activations, §5.3).
	TrialRecoveryTimes []time.Duration
	// ActivationsPerRecovery distribution (how many repairs per fault).
	ActivationsPerRecovery []int
	// RecoveredInjections replays recovered trials (only populated when
	// the experiment sets RecordInjections and arms one fault per
	// trial).
	RecoveredInjections []RecordedInjection
	// Rollbacks counts checkpoint-rollback activations across examined
	// trials (escalation-chain policies only). Derived from the merged
	// trace's safeguard counters.
	Rollbacks int
	// DomainRewinds counts domain-rewind activations across examined
	// trials (Policy.DomainRewind only). Derived like Rollbacks.
	DomainRewinds int
	// CheckpointIO is the modelled snapshot-write time accumulated by
	// examined trials' rollback-stage checkpoint stores. Derived from
	// the merged trace's checkpoint counters.
	CheckpointIO time.Duration
	// Trace is the merged recorder of every examined trial (safeguard
	// activations with phase spans, checkpoint I/O spans), merged in
	// attempt order with Rank carrying the attempt index. Wall times in
	// it are measured, so determinism comparisons scrub it.
	Trace *trace.Recorder
}

// Coverage is the Figure 7 metric: recovered / examined SIGSEGV trials.
func (r *CoverageResult) Coverage() float64 {
	if r.SigsegvTrials == 0 {
		return 0
	}
	return float64(r.Recovered) / float64(r.SigsegvTrials)
}

// SDCs counts recovered trials whose output diverged from the golden
// run — the injections that survived recovery as silent data corruption.
func (r *CoverageResult) SDCs() int { return r.Recovered - r.CleanRecovered }

// MeanRecoveryTime is the Figure 9 metric.
func (r *CoverageResult) MeanRecoveryTime() time.Duration {
	if len(r.TrialRecoveryTimes) == 0 {
		return 0
	}
	var s time.Duration
	for _, t := range r.TrialRecoveryTimes {
		s += t
	}
	return s / time.Duration(len(r.TrialRecoveryTimes))
}

// PrepFraction is the fraction of recovery time spent preparing —
// outside kernel execution and checkpoint rollback (the paper reports
// >98%). It is derived from the merged trace's per-phase counters, so
// it stays exact even when the span ring has dropped old activations.
func (r *CoverageResult) PrepFraction() float64 {
	phase := func(k trace.Kind) time.Duration {
		return time.Duration(r.Trace.Counter(safeguard.PhaseNsCounters[k]))
	}
	prep := phase(trace.KindDiagnose) + phase(trace.KindLoad) +
		phase(trace.KindFetch) + phase(trace.KindPatch)
	total := prep + phase(trace.KindKernel) + phase(trace.KindRollback) +
		phase(trace.KindDomainRewind)
	if total == 0 {
		return 0
	}
	return float64(prep) / float64(total)
}

// Coverage-level trace counters, charged deterministically at merge
// time (the attempt merge order is worker-count independent). The
// policy study reads its recovery/SDC/stall columns from these, so a
// trace file alone reproduces the comparison table.
const (
	// CounterExamined counts examined SIGSEGV trials.
	CounterExamined = "coverage.examined"
	// CounterRecovered counts trials whose process ran to completion.
	CounterRecovered = "coverage.recovered"
	// CounterSDC counts recovered trials with corrupted output.
	CounterSDC = "coverage.sdc"
	// CounterStallNs sums per-trial recovery stall (wall-clock based, so
	// determinism comparisons scrub it like every other -ns counter).
	CounterStallNs = "coverage.stall-ns"
)

// sampler draws (image, static index) weighted by execution count.
type sampler struct {
	images  []string
	starts  []uint64 // cumulative count boundaries per image
	offsets [][]uint64
	counts  map[string][]uint64
	total   uint64
}

func newSampler(prof *profiler.Profile, targets []string) (*sampler, error) {
	s := &sampler{counts: map[string][]uint64{}}
	for _, name := range targets {
		cnts, ok := prof.Counts[name]
		if !ok {
			return nil, fmt.Errorf("faultinject: image %q has no profile", name)
		}
		// Per-image cumulative offsets for binary-search-free sampling.
		cum := make([]uint64, len(cnts)+1)
		for i, c := range cnts {
			cum[i+1] = cum[i] + c
		}
		if cum[len(cnts)] == 0 {
			continue
		}
		s.images = append(s.images, name)
		s.starts = append(s.starts, s.total)
		s.offsets = append(s.offsets, cum)
		s.counts[name] = cnts
		s.total += cum[len(cnts)]
	}
	if s.total == 0 {
		return nil, fmt.Errorf("faultinject: target images %v executed no instructions in the golden run; nothing to inject into (degenerate workload parameters?)", targets)
	}
	return s, nil
}

// draw picks an (image, index, occurrence) triple equivalent to a
// uniformly random dynamic instruction of the target images.
func (s *sampler) draw(rng *rand.Rand) (string, int, uint64) {
	r := uint64(rng.Int63n(int64(s.total)))
	// Find the image.
	ii := 0
	for ii+1 < len(s.images) && r >= s.starts[ii+1] {
		ii++
	}
	r -= s.starts[ii]
	// Binary search the instruction.
	cum := s.offsets[ii]
	lo, hi := 0, len(cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= r {
			lo = mid
		} else {
			hi = mid
		}
	}
	occ := r - cum[lo] + 1
	return s.images[ii], lo, occ
}

// warmSnapFor picks the latest profile snapshot that precedes every
// armed occurrence trigger, returning it with the per-spec occurrence
// seeds (how often each spec's static instruction had retired by the
// snapshot). A snapshot is only eligible while the seed is strictly
// below the trigger occurrence — at equality the target retirement has
// already happened, uncorrupted. Returns (nil, nil) when no snapshot is
// eligible (cold start).
func warmSnapFor(prof *profiler.Profile, specs []ArmSpec) (*profiler.SnapPoint, []uint64) {
	if len(prof.Snaps) == 0 {
		return nil, nil
	}
	countAt := func(sp *profiler.SnapPoint, trig Trigger) uint64 {
		cnts := sp.Counts[trig.Image]
		if trig.StaticIdx >= len(cnts) {
			return 0
		}
		return cnts[trig.StaticIdx]
	}
	for i := len(prof.Snaps) - 1; i >= 0; i-- {
		sp := &prof.Snaps[i]
		ok := true
		for _, s := range specs {
			if countAt(sp, s.Trigger) >= s.Trigger.Occurrence {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		seed := make([]uint64, len(specs))
		for si, s := range specs {
			seed[si] = countAt(sp, s.Trigger)
		}
		return sp, seed
	}
	return nil, nil
}

// AttemptResult is the outcome of one injection attempt — the unit the
// in-order merge consumes and the shard coordinator ships between
// processes. Every field except RecTime is on the deterministic virtual
// clock, so an attempt is identical wherever it ran.
type AttemptResult struct {
	// Index is the attempt's position in the [0, MaxAttempts) space;
	// the merge consumes attempts strictly in Index order.
	Index int
	// Counted reports whether the attempt produced an examined SIGSEGV
	// trial (the injection fired, Safeguard activated, and the first
	// symptom was SIGSEGV).
	Counted bool
	Events  []safeguard.Event
	// Trace is the examined trial's recorder: the safeguard trace merged
	// with the checkpoint store's (when the rollback stage ran).
	Trace *trace.Recorder
	// Recovered/Clean/RecTime/Activations describe a recovered trial;
	// Failure is the terminating Safeguard outcome of an unrecovered one.
	Recovered   bool
	Clean       bool
	RecTime     time.Duration
	Activations int
	Failure     safeguard.Outcome
	Rec         RecordedInjection
}

// runAttempt performs the i'th injection attempt against a fresh
// protected process. All randomness derives from (e.Seed, i), so
// attempts are independent and may run concurrently.
func (e *CoverageExperiment) runAttempt(i int, prof *profiler.Profile, smp *sampler, hang uint64) (AttemptResult, error) {
	rng := rand.New(rand.NewSource(TrialSeed(e.Seed, uint64(i))))
	k := e.FaultsPerTrial
	if k <= 0 {
		k = 1
	}
	specs := make([]ArmSpec, k)
	for j := range specs {
		img, idx, occ := smp.draw(rng)
		specs[j] = ArmSpec{
			Trigger: Trigger{Image: img, StaticIdx: idx, Occurrence: occ},
			Bits:    pickBits(rng, e.Model),
		}
	}
	cfg := core.ProcessConfig{
		App: e.App, Libs: e.Libs, Protected: true, Safeguard: e.Safeguard,
		Tier: e.Tier,
	}
	if e.Safeguard.Policy.NeedsStore() {
		cfg.Checkpoint = checkpoint.NewStore(e.CheckpointModel)
		cfg.CheckpointEveryResults = e.CheckpointEveryResults
	}
	// Warm start: the latest snapshot at which every armed occurrence
	// trigger still lies ahead. The snapshot's per-instruction counts
	// pre-seed the arming hook so each fault fires on exactly the same
	// retirement as in a cold run.
	snap, seed := warmSnapFor(prof, specs)
	var p *core.Process
	var err error
	if snap != nil {
		p, err = core.NewProcessFromSnapshot(cfg, snap.State)
	} else {
		p, err = core.NewProcess(cfg)
	}
	if err != nil {
		return AttemptResult{}, err
	}
	var cpuRec *trace.Recorder
	if e.Trace {
		cpuRec = trace.New(1024)
		p.CPU.Trace = cpuRec
	}
	armed := armAllSeeded(p.CPU, specs, seed)
	limit := hang * prof.TotalDyn
	if snap != nil {
		// The fault-free golden prefix retires one instruction per step,
		// so the skipped prefix maps one-for-one onto budget.
		limit -= snap.Dyn
	}
	status := p.Run(limit)
	a := AttemptResult{Index: i}
	fired := false
	for _, st := range armed {
		fired = fired || st.Fired
	}
	if !fired {
		return a, nil // program finished before any occurrence came up
	}
	sg := p.SG
	events := sg.Events()
	if len(events) == 0 {
		return a, nil // fault did not manifest as a trap Safeguard saw
	}
	if events[0].Outcome == safeguard.WrongSignal {
		return a, nil // crashed with a non-SIGSEGV symptom
	}
	a.Counted = true
	a.Events = events
	a.Trace = trace.New(trace.DefaultSpanCap)
	a.Trace.Merge(sg.Trace())
	a.Trace.Merge(cpuRec)
	if p.Store != nil {
		a.Trace.Merge(p.Store.Trace())
	}
	if status != machine.StatusExited {
		// Unrecovered: attribute to the last activation's outcome.
		a.Failure = events[len(events)-1].Outcome
		return a, nil
	}
	a.Recovered = true
	if sameResults(p.Results(), prof.Golden) {
		a.Clean = true
		if k == 1 {
			a.Rec = RecordedInjection{Trigger: specs[0].Trigger, Bits: specs[0].Bits}
		}
	}
	for _, ev := range events {
		switch ev.Outcome {
		case safeguard.Recovered, safeguard.RecoveredInduction,
			safeguard.DomainRewound, safeguard.RolledBack:
			a.RecTime += ev.Total()
			a.Activations++
		}
	}
	return a, nil
}

// MergeAttempt folds one attempt into the result, mirroring the serial
// loop. The attempt's trace merges in attempt order with Rank carrying
// the attempt index; Rollbacks and CheckpointIO re-derive from the
// merged counters rather than being tallied separately. Exposed for the
// shard coordinator, which consumes shipped attempts in index order.
func (res *CoverageResult) MergeAttempt(a *AttemptResult, record bool) {
	res.Attempts++
	if !a.Counted {
		return
	}
	res.SigsegvTrials++
	res.Events = append(res.Events, a.Events...)
	res.Trace.MergeAs(a.Trace, int32(res.Attempts-1))
	res.Trace.Add(CounterExamined, 1)
	res.Rollbacks = int(res.Trace.Counter(safeguard.CounterRolledBack))
	res.DomainRewinds = int(res.Trace.Counter(safeguard.CounterDomainRewinds))
	res.CheckpointIO = time.Duration(res.Trace.Counter(checkpoint.CounterWriteNs))
	if !a.Recovered {
		res.FailureOutcomes[a.Failure]++
		return
	}
	res.Recovered++
	res.Trace.Add(CounterRecovered, 1)
	res.Trace.Add(CounterStallNs, a.RecTime.Nanoseconds())
	if !a.Clean {
		res.Trace.Add(CounterSDC, 1)
	}
	if a.Clean {
		res.CleanRecovered++
		if record && (a.Rec.Trigger.Image != "" || a.Rec.Trigger.AtDyn > 0) {
			res.RecoveredInjections = append(res.RecoveredInjections, a.Rec)
		}
	}
	res.TrialRecoveryTimes = append(res.TrialRecoveryTimes, a.RecTime)
	res.ActivationsPerRecovery = append(res.ActivationsPerRecovery, a.Activations)
}

// Run executes the experiment: injection attempts run speculatively in
// chunks on a pool of Workers goroutines and merge in attempt-index
// order until enough SIGSEGV trials have been examined. Speculative
// attempts beyond the stopping point are discarded, so every field of
// the CoverageResult except the wall-clock recovery timings is
// identical for every worker count.
func (e *CoverageExperiment) Run() (*CoverageResult, error) {
	prof, err := e.Prepare()
	if err != nil {
		return nil, err
	}
	return e.runProfiled(prof)
}

// Prepare validates the experiment and performs its golden pass (plus
// the warm-start snapshot pass when it applies), returning the profile
// attempts run against. The shard coordinator calls this once and ships
// the profile to every worker; Run calls it implicitly.
func (e *CoverageExperiment) Prepare() (*profiler.Profile, error) {
	if e.Trials <= 0 {
		return nil, fmt.Errorf("faultinject: coverage Trials must be positive")
	}
	if err := e.Safeguard.Policy.Validate(); err != nil {
		return nil, err
	}
	warm := e.WarmStart && !e.Safeguard.Policy.NeedsStore()
	key := effectiveKey(e.StoreKey, warm, e.SnapEvery)
	if prof := consultStore(e.Store, key); prof != nil {
		return prof, nil
	}
	prof, err := profiler.Run(e.App, e.Libs, 0)
	if err != nil {
		return nil, err
	}
	if warm {
		every := e.SnapEvery
		if every == 0 {
			every = prof.TotalDyn/64 + 1
		}
		sprof, err := profiler.RunWithSnapshots(e.App, e.Libs, 0, every)
		if err != nil {
			return nil, err
		}
		if sprof.TotalDyn != prof.TotalDyn {
			return nil, fmt.Errorf("faultinject: snapshot pass retired %d dyn, golden run %d; workload is nondeterministic and cannot warm-start",
				sprof.TotalDyn, prof.TotalDyn)
		}
		prof = sprof
	}
	populateStore(e.Store, key, prof, e.App, e.Libs)
	return prof, nil
}

// AttemptBudget is the experiment's attempt index space [0, budget):
// MaxAttempts, or the 40x Trials default. The shard coordinator
// partitions this space into waves.
func (e *CoverageExperiment) AttemptBudget() int {
	if e.MaxAttempts > 0 {
		return e.MaxAttempts
	}
	return 40 * e.Trials
}

// NewResult returns an empty CoverageResult ready for MergeAttempt —
// the coordinator-side accumulator of a sharded experiment.
func (e *CoverageExperiment) NewResult() *CoverageResult {
	return &CoverageResult{
		Workload:        e.App.Name,
		OptLevel:        e.App.Prog.OptLevel,
		Model:           e.Model,
		FailureOutcomes: map[safeguard.Outcome]int{},
		Trace:           trace.New(trace.DefaultSpanCap),
	}
}

// RunAttemptRange executes attempts [lo, hi) of the experiment's index
// space against a prepared profile on a pool of Workers goroutines.
// Attempt i derives its RNG from (Seed, i), so a range run on any
// process yields the same AttemptResults the full experiment would —
// the primitive a shard worker serves.
func (e *CoverageExperiment) RunAttemptRange(prof *profiler.Profile, lo, hi int) ([]AttemptResult, error) {
	if lo < 0 || hi < lo || hi > e.AttemptBudget() {
		return nil, fmt.Errorf("faultinject: attempt range [%d,%d) outside budget [0,%d)", lo, hi, e.AttemptBudget())
	}
	hang := e.HangFactor
	if hang == 0 {
		hang = 4
	}
	targets := e.TargetImages
	if len(targets) == 0 {
		targets = []string{e.App.Name}
	}
	smp, err := newSampler(prof, targets)
	if err != nil {
		return nil, err
	}
	atts := make([]AttemptResult, hi-lo)
	var done atomic.Int64
	err = parallel.ForEach(hi-lo, e.Workers, func(j int) error {
		a, err := e.runAttempt(lo+j, prof, smp, hang)
		if err != nil {
			return err
		}
		atts[j] = a
		if e.Progress != nil {
			e.Progress(int(done.Add(1)), hi-lo)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return atts, nil
}

// runProfiled runs the experiment against an already-profiled golden
// run (split out so degenerate profiles are testable directly).
func (e *CoverageExperiment) runProfiled(prof *profiler.Profile) (*CoverageResult, error) {
	maxAttempts := e.AttemptBudget()
	res := e.NewResult()
	workers := parallel.Workers(e.Workers, maxAttempts)
	// Chunked speculation: each wave runs a few attempts per worker, and
	// the in-order merge stops consuming once enough SIGSEGV trials have
	// been seen, wasting at most one wave of extra attempts.
	chunk := 4 * workers
	for base := 0; base < maxAttempts && res.SigsegvTrials < e.Trials; base += chunk {
		hi := base + chunk
		if hi > maxAttempts {
			hi = maxAttempts
		}
		atts, err := e.RunAttemptRange(prof, base, hi)
		if err != nil {
			return nil, err
		}
		for i := range atts {
			if res.SigsegvTrials >= e.Trials {
				break // speculative overshoot; discard to stay deterministic
			}
			res.MergeAttempt(&atts[i], e.RecordInjections)
		}
	}
	if res.SigsegvTrials < e.Trials {
		return res, fmt.Errorf("faultinject: only %d/%d SIGSEGV trials after %d attempts",
			res.SigsegvTrials, e.Trials, res.Attempts)
	}
	return res, nil
}
