package faultinject

import (
	"testing"

	"care/internal/core"
	"care/internal/defense"
	"care/internal/machine"
	"care/internal/safeguard"
	"care/internal/workloads"
)

func buildWorkload(t testing.TB, name string, opt int, protected bool) *core.Binary {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: opt, Defenses: defense.If(protected, "care")})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestCampaignHPCCG(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	c := &Campaign{App: bin, N: 120, Model: SingleBit, Seed: 42}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Outcomes {
		total += n
	}
	if total != c.N {
		t.Fatalf("outcome total %d != N %d", total, c.N)
	}
	if res.Outcomes[SoftFailure] == 0 {
		t.Fatal("no soft failures observed; injection is not reaching address paths")
	}
	if res.Outcomes[Benign] == 0 {
		t.Error("no benign outcomes; fault model too aggressive")
	}
	if res.Symptoms[machine.SigSEGV] == 0 {
		t.Fatal("no SIGSEGV symptoms")
	}
	segvFrac := float64(res.Symptoms[machine.SigSEGV]) / float64(res.Outcomes[SoftFailure])
	if segvFrac < 0.5 {
		t.Errorf("SIGSEGV fraction %.2f of soft failures; paper reports >0.72", segvFrac)
	}
	b := res.LatencyBuckets()
	t.Logf("outcomes=%v symptoms=%v latency buckets=%v", res.Outcomes, res.Symptoms, b)
	if b[0]+b[1] == 0 {
		t.Error("no low-latency manifestations; paper reports >83% within 50 instructions")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	run := func() *CampaignResult {
		res, err := (&Campaign{App: bin, N: 30, Model: SingleBit, Seed: 7}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Injections {
		ia, ib := a.Injections[i], b.Injections[i]
		if ia.TargetDyn != ib.TargetDyn || !sliceEq(ia.Bits, ib.Bits) || ia.StaticIdx != ib.StaticIdx {
			t.Fatalf("injection %d differs across identical campaigns: %+v vs %+v", i, ia, ib)
		}
		if ia.Outcome != ib.Outcome || ia.Signal != ib.Signal || ia.Latency != ib.Latency {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, ia, ib)
		}
	}
}

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDoubleBitFlipsTwoBits(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	res, err := (&Campaign{App: bin, N: 20, Model: DoubleBit, Seed: 9}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range res.Injections {
		if len(inj.Bits) != 2 || inj.Bits[0] == inj.Bits[1] {
			t.Fatalf("double-bit injection has bits %v", inj.Bits)
		}
	}
}

func TestCoverageHPCCG(t *testing.T) {
	for _, opt := range []int{0, 1} {
		bin := buildWorkload(t, "HPCCG", opt, true)
		exp := &CoverageExperiment{App: bin, Trials: 40, Model: SingleBit, Seed: 4242}
		res, err := exp.Run()
		if err != nil {
			t.Fatalf("O%d: %v (res=%+v)", opt, err, res)
		}
		cov := res.Coverage()
		t.Logf("O%d: attempts=%d segv=%d recovered=%d clean=%d coverage=%.1f%% meanRec=%v prep=%.1f%% failures=%v",
			opt, res.Attempts, res.SigsegvTrials, res.Recovered, res.CleanRecovered,
			100*cov, res.MeanRecoveryTime(), 100*res.PrepFraction(), res.FailureOutcomes)
		if cov < 0.4 {
			t.Errorf("O%d: coverage %.2f is far below the paper's band", opt, cov)
		}
		if res.Recovered > 0 && res.PrepFraction() < 0.5 {
			t.Errorf("O%d: prep fraction %.2f; paper reports >0.98", opt, res.PrepFraction())
		}
	}
}

func TestHeuristicModeIncreasesSurvivalButRisksSDC(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	base, err := (&CoverageExperiment{App: bin, Trials: 25, Seed: 77}).Run()
	if err != nil {
		t.Fatal(err)
	}
	heur, err := (&CoverageExperiment{App: bin, Trials: 25, Seed: 77,
		Safeguard: safeguard.Config{Heuristic: true}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if heur.Recovered < base.Recovered {
		t.Errorf("heuristic mode recovered fewer trials (%d) than faithful mode (%d)", heur.Recovered, base.Recovered)
	}
	// The LetGo-style fallback must show SDCs that faithful CARE avoids.
	heurSDC := heur.Recovered - heur.CleanRecovered
	baseSDC := base.Recovered - base.CleanRecovered
	t.Logf("faithful: %d recovered (%d SDC); heuristic: %d recovered (%d SDC)",
		base.Recovered, baseSDC, heur.Recovered, heurSDC)
}

// TestFaultSiteSkew reproduces the paper's §2.1.2 observation: faults in
// FPU (float) destinations skew toward SDCs/benign outcomes, while ALU
// (integer) destinations — which feed address computations — produce
// nearly all the soft failures.
func TestFaultSiteSkew(t *testing.T) {
	bin := buildWorkload(t, "miniMD", 0, false)
	res, err := (&Campaign{App: bin, N: 250, Model: SingleBit, Seed: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	alu := res.ByDest[machine.DestIntReg]
	fpu := res.ByDest[machine.DestFloatReg]
	if alu == nil || fpu == nil {
		t.Fatalf("missing dest breakdown: %v", res.ByDest)
	}
	aluSoft := float64(alu[SoftFailure]) / float64(total(alu))
	fpuSoft := float64(fpu[SoftFailure]) / float64(total(fpu))
	t.Logf("ALU: %v (soft %.2f)  FPU: %v (soft %.2f)  mem: %v",
		alu, aluSoft, fpu, fpuSoft, res.ByDest[machine.DestMemory])
	if aluSoft <= fpuSoft {
		t.Errorf("ALU soft-failure rate %.2f not above FPU %.2f", aluSoft, fpuSoft)
	}
}

func total(m map[Outcome]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// TestPropagationTracking exercises the §2 trace analysis: injections
// with TrackPropagation report how far the fault spread, and crashing
// injections show propagation consistent with their latency.
func TestPropagationTracking(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	res, err := (&Campaign{App: bin, N: 40, Model: SingleBit, Seed: 13, TrackPropagation: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	anyProp := false
	for _, inj := range res.Injections {
		if inj.PropagationWrites > 0 {
			anyProp = true
		}
		if inj.Outcome == SoftFailure && inj.Latency > 3 && inj.PropagationWrites == 0 {
			t.Errorf("soft failure with latency %d but no recorded propagation: %+v", inj.Latency, inj)
		}
	}
	if !anyProp {
		t.Fatal("no injection showed any propagation")
	}
	// Tracking must not change outcomes (shadow state only).
	base, err := (&Campaign{App: bin, N: 40, Model: SingleBit, Seed: 13}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Injections {
		if base.Injections[i].Outcome != res.Injections[i].Outcome {
			t.Fatalf("tracking changed outcome %d: %v vs %v", i,
				base.Injections[i].Outcome, res.Injections[i].Outcome)
		}
	}
}
