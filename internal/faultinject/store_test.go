package faultinject

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"

	"care/internal/store"
	"care/internal/trace"
)

// The campaign-level store contract: store-on, store-off, cold, and
// cache-hit runs produce byte-identical scrubbed campaign JSONL, and a
// corrupt store degrades to the cold path with store.fallback charged —
// the result is still identical, only slower.

var storeWallRe = regexp.MustCompile(`"wall_ns":-?[0-9]+`)
var storeNsCounterRe = regexp.MustCompile(`("name":"[a-z.-]+-ns","value":)-?[0-9]+`)

func scrubbedJSONL(t testing.TB, rec *trace.Recorder) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	s := storeWallRe.ReplaceAllString(buf.String(), `"wall_ns":0`)
	return storeNsCounterRe.ReplaceAllString(s, "${1}0")
}

func openStoreAt(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCampaignStoreCacheHit(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	key := store.Key{Kind: "campaign", Workload: "HPCCG", Seed: 9}
	base := func() *Campaign {
		return &Campaign{App: bin, N: 24, Model: SingleBit, Seed: 9, Workers: 2, Trace: true, WarmStart: true}
	}
	cold, err := base().Run()
	if err != nil {
		t.Fatal(err)
	}
	wantJSONL := scrubbedJSONL(t, cold.Trace)

	dir := t.TempDir()
	// First store-on run: a miss that populates the entry.
	s1 := openStoreAt(t, dir)
	c1 := base()
	c1.Store, c1.StoreKey = s1, key
	res1, err := c1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := s1.Counter(store.CounterGoldenMisses); n != 1 {
		t.Fatalf("first run golden-misses = %d, want 1", n)
	}
	if n := s1.Counter(store.CounterGoldenHits); n != 0 {
		t.Fatalf("first run golden-hits = %d, want 0", n)
	}
	if got := scrubbedJSONL(t, res1.Trace); got != wantJSONL {
		t.Fatalf("store-on (miss) JSONL differs from store-off (%d vs %d bytes)", len(got), len(wantJSONL))
	}

	// Second identical run: a pure cache hit that skips the golden run.
	s2 := openStoreAt(t, dir)
	c2 := base()
	c2.Store, c2.StoreKey = s2, key
	res2, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Counter(store.CounterGoldenHits); n != 1 {
		t.Fatalf("second run golden-hits = %d, want 1", n)
	}
	if n := s2.Counter(store.CounterGoldenMisses); n != 0 {
		t.Fatalf("second run golden-misses = %d, want 0", n)
	}
	if got := scrubbedJSONL(t, res2.Trace); got != wantJSONL {
		t.Fatalf("cache-hit JSONL differs from cold (%d vs %d bytes)", len(got), len(wantJSONL))
	}
	// The non-trace result fields must match too.
	a, b := *cold, *res2
	a.Trace, b.Trace = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cache-hit result differs from cold:\n%+v\nvs\n%+v", b, a)
	}
	// And the seals agree, which is the same statement via Merkle.
	if sa, sb := store.Seal(cold.Trace), store.Seal(res2.Trace); sa.Root != sb.Root {
		t.Fatalf("cold and cache-hit trace seals differ: %s vs %s", sa.Root, sb.Root)
	}
}

func TestCampaignStoreCorruptionFallsBackToCold(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	key := store.Key{Kind: "campaign", Workload: "HPCCG", Seed: 13}
	base := func() *Campaign {
		return &Campaign{App: bin, N: 16, Model: SingleBit, Seed: 13, Trace: true, WarmStart: true}
	}
	cold, err := base().Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s1 := openStoreAt(t, dir)
	c1 := base()
	c1.Store, c1.StoreKey = s1, key
	if _, err := c1.Run(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in every blob: the next run must detect the mismatch,
	// fall back to a cold golden run, and still produce the exact
	// result.
	filepath.Walk(filepath.Join(dir, "blobs"), func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		b[len(b)/3] ^= 0x20
		return os.WriteFile(path, b, 0o644)
	})
	s2 := openStoreAt(t, dir)
	c2 := base()
	c2.Store, c2.StoreKey = s2, key
	res2, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Counter(store.CounterFallback); n == 0 {
		t.Fatal("corrupt store did not charge store.fallback")
	}
	if n := s2.Counter(store.CounterGoldenHits); n != 0 {
		t.Fatal("corrupt store counted a golden hit")
	}
	if want, got := scrubbedJSONL(t, cold.Trace), scrubbedJSONL(t, res2.Trace); got != want {
		t.Fatalf("fallback run JSONL differs from cold (%d vs %d bytes)", len(got), len(want))
	}
}

func TestCoverageStoreCacheHit(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	key := store.Key{Kind: "coverage", Workload: "HPCCG", Defenses: []string{"care"}, Seed: 5}
	base := func() *CoverageExperiment {
		return &CoverageExperiment{App: bin, Trials: 4, Model: SingleBit, Seed: 5, Workers: 2}
	}
	plain, err := base().Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s1 := openStoreAt(t, dir)
	e1 := base()
	e1.Store, e1.StoreKey = s1, key
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	if n := s1.Counter(store.CounterGoldenMisses); n != 1 {
		t.Fatalf("first coverage run golden-misses = %d, want 1", n)
	}
	s2 := openStoreAt(t, dir)
	e2 := base()
	e2.Store, e2.StoreKey = s2, key
	res, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Counter(store.CounterGoldenHits); n != 1 {
		t.Fatalf("second coverage run golden-hits = %d, want 1", n)
	}
	if plain.Recovered != res.Recovered || plain.SigsegvTrials != res.SigsegvTrials || plain.Attempts != res.Attempts {
		t.Fatalf("cache-hit coverage differs: %+v vs %+v", res, plain)
	}
}

// TestCampaignStoreKeySeparatesCadence: a cold entry and a warm entry
// under the same campaign key must not collide (the effective key pins
// WarmStart/SnapEvery).
func TestCampaignStoreKeySeparatesCadence(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	key := store.Key{Kind: "campaign", Workload: "HPCCG", Seed: 21}
	dir := t.TempDir()

	s1 := openStoreAt(t, dir)
	cold := &Campaign{App: bin, N: 8, Seed: 21, Store: s1, StoreKey: key}
	if _, err := cold.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := openStoreAt(t, dir)
	warm := &Campaign{App: bin, N: 8, Seed: 21, WarmStart: true, Store: s2, StoreKey: key}
	res, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The warm run must NOT have hit the cold entry (which has no
	// snapshots): it misses, runs its own golden passes, and warm-starts.
	if n := s2.Counter(store.CounterGoldenHits); n != 0 {
		t.Fatalf("warm run hit the cold entry (golden-hits = %d)", n)
	}
	if res.WarmStart == nil || res.WarmStart.Snapshots == 0 {
		t.Fatalf("warm run lost its snapshots: %+v", res.WarmStart)
	}
	// And now a second warm run hits its own entry.
	s3 := openStoreAt(t, dir)
	warm2 := &Campaign{App: bin, N: 8, Seed: 21, WarmStart: true, Store: s3, StoreKey: key}
	res2, err := warm2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := s3.Counter(store.CounterGoldenHits); n != 1 {
		t.Fatalf("second warm run golden-hits = %d, want 1", n)
	}
	if res2.WarmStart == nil || res2.WarmStart.Snapshots != res.WarmStart.Snapshots {
		t.Fatalf("cached warm entry lost snapshots: %+v vs %+v", res2.WarmStart, res.WarmStart)
	}
}
