package faultinject

import (
	"reflect"
	"strings"
	"testing"

	"care/internal/profiler"
	"care/internal/safeguard"
	"care/internal/trace"
)

// traceSkeleton extracts the deterministic portion of a recorder: its
// spans with the wall-clock durations zeroed, plus both counter maps.
// Coverage-path traces carry measured Wall times — both in Span.Wall and
// in the "*-ns" duration counters — which are the only fields allowed to
// differ across worker counts.
func traceSkeleton(r *trace.Recorder) (spans []trace.Span, adds, maxes map[string]int64) {
	spans = r.Spans()
	for i := range spans {
		spans[i].Wall = 0
	}
	adds = make(map[string]int64)
	for _, n := range r.CounterNames() {
		if strings.HasSuffix(n, "-ns") {
			continue
		}
		adds[n] = r.Counter(n)
	}
	maxes = make(map[string]int64)
	for _, n := range r.MaxNames() {
		maxes[n] = r.MaxCounter(n)
	}
	return spans, adds, maxes
}

// requireTraceSkeletonEqual fails the test unless two recorders agree on
// every deterministic field (span skeletons and counters).
func requireTraceSkeletonEqual(t *testing.T, a, b *trace.Recorder) {
	t.Helper()
	aSp, aAdd, aMax := traceSkeleton(a)
	bSp, bAdd, bMax := traceSkeleton(b)
	if !reflect.DeepEqual(aSp, bSp) {
		t.Fatalf("trace span skeletons differ:\n%+v\nvs\n%+v", aSp, bSp)
	}
	if !reflect.DeepEqual(aAdd, bAdd) {
		t.Fatalf("trace counters differ:\n%v\nvs\n%v", aAdd, bAdd)
	}
	if !reflect.DeepEqual(aMax, bMax) {
		t.Fatalf("trace max-counters differ:\n%v\nvs\n%v", aMax, bMax)
	}
}

// TestCampaignWorkerDeterminism is the contract of the parallel
// campaign engine: the same Seed produces a bit-identical
// CampaignResult for Workers=1 and Workers=8, under both fault models
// and with propagation tracking on.
func TestCampaignWorkerDeterminism(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	for _, tc := range []struct {
		name  string
		model Model
		track bool
	}{
		{"single-bit", SingleBit, false},
		{"double-bit", DoubleBit, false},
		{"single-bit/track-propagation", SingleBit, true},
		{"double-bit/track-propagation", DoubleBit, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) *CampaignResult {
				res, err := (&Campaign{
					App: bin, N: 24, Model: tc.model, Seed: 11,
					TrackPropagation: tc.track, Workers: workers,
					Trace: true,
				}).Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, par := run(1), run(8)
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("result differs between workers=1 and workers=8:\n%+v\nvs\n%+v", serial, par)
			}
		})
	}
}

// TestMultiFaultCampaignWorkerDeterminism extends the contract to the
// multi-fault model: K independent faults per trial, still bit-identical
// for any worker count, with every trial recording its K fault points.
func TestMultiFaultCampaignWorkerDeterminism(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	run := func(workers int) *CampaignResult {
		res, err := (&Campaign{
			App: bin, N: 24, Model: SingleBit, Seed: 13,
			FaultsPerTrial: 3, Workers: workers, Trace: true,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, par := run(1), run(8)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("multi-fault result differs between workers=1 and workers=8:\n%+v\nvs\n%+v", serial, par)
	}
	anyFired := false
	for _, inj := range serial.Injections {
		if len(inj.Faults) != 3 {
			t.Fatalf("injection records %d fault points, want 3: %+v", len(inj.Faults), inj)
		}
		for _, fp := range inj.Faults {
			if fp.Fired {
				anyFired = true
				if fp.Dyn < fp.TargetDyn {
					t.Errorf("fault fired at dyn %d before its target %d", fp.Dyn, fp.TargetDyn)
				}
			}
		}
	}
	if !anyFired {
		t.Fatal("no fault of any trial fired; campaign is degenerate")
	}
}

// TestMultiFaultCoverageRollbackDeterminism pins the full escalation
// chain under the multi-fault model: rollback-enabled coverage runs are
// bit-identical (in every logical field) across worker counts.
func TestMultiFaultCoverageRollbackDeterminism(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	run := func(workers int) *CoverageResult {
		res, err := (&CoverageExperiment{
			App: bin, Trials: 8, FaultsPerTrial: 2, Model: SingleBit, Seed: 31,
			Safeguard: safeguard.Config{
				InductionRecovery: true,
				Policy:            safeguard.Policy{Rollback: true, MaxTrapsPerPC: 8, StormTraps: 4},
			},
			CheckpointEveryResults: 1,
			Workers:                workers,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, par := run(1), run(8)
	scrub := func(r *CoverageResult) CoverageResult {
		c := *r
		c.Events = nil
		c.TrialRecoveryTimes = nil
		c.Trace = nil // compared separately, with Wall times scrubbed
		return c
	}
	if a, b := scrub(serial), scrub(par); !reflect.DeepEqual(a, b) {
		t.Fatalf("logical fields differ between workers=1 and workers=8:\n%+v\nvs\n%+v", a, b)
	}
	requireTraceSkeletonEqual(t, serial.Trace, par.Trace)
	if len(serial.Events) != len(par.Events) {
		t.Fatalf("event count differs: %d vs %d", len(serial.Events), len(par.Events))
	}
	for i := range serial.Events {
		if serial.Events[i].Outcome != par.Events[i].Outcome {
			t.Errorf("event %d outcome %s vs %s", i, serial.Events[i].Outcome, par.Events[i].Outcome)
		}
	}
}

// TestCampaignSeedsDiffer guards against a degenerate seed derivation:
// two campaigns with different seeds must draw different injections.
func TestCampaignSeedsDiffer(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	run := func(seed int64) *CampaignResult {
		res, err := (&Campaign{App: bin, N: 24, Model: SingleBit, Seed: seed, Workers: 4}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	same := true
	for i := range a.Injections {
		if a.Injections[i].TargetDyn != b.Injections[i].TargetDyn ||
			!sliceEq(a.Injections[i].Bits, b.Injections[i].Bits) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("campaigns with seeds 1 and 2 drew identical injections")
	}
}

// TestCoverageWorkerDeterminism asserts the coverage experiment's
// guarantee: every logical field is identical for any worker count
// (only the wall-clock recovery timings may differ).
func TestCoverageWorkerDeterminism(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	run := func(workers int) *CoverageResult {
		res, err := (&CoverageExperiment{
			App: bin, Trials: 15, Model: SingleBit, Seed: 21,
			RecordInjections: true, Workers: workers,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, par := run(1), run(8)
	// Strip the wall-clock fields; everything else must match exactly.
	scrub := func(r *CoverageResult) CoverageResult {
		c := *r
		c.Events = nil
		c.TrialRecoveryTimes = nil
		c.Trace = nil // compared separately, with Wall times scrubbed
		return c
	}
	if a, b := scrub(serial), scrub(par); !reflect.DeepEqual(a, b) {
		t.Fatalf("logical fields differ between workers=1 and workers=8:\n%+v\nvs\n%+v", a, b)
	}
	requireTraceSkeletonEqual(t, serial.Trace, par.Trace)
	if len(serial.Events) != len(par.Events) {
		t.Fatalf("event count differs: %d vs %d", len(serial.Events), len(par.Events))
	}
	if len(serial.TrialRecoveryTimes) != len(par.TrialRecoveryTimes) {
		t.Fatalf("recovery-time count differs: %d vs %d",
			len(serial.TrialRecoveryTimes), len(par.TrialRecoveryTimes))
	}
}

// TestCampaignZeroDynError is the regression test for the
// rand.Int63n(0) panic: a golden run that retires no instructions must
// produce a descriptive error, not a panic.
func TestCampaignZeroDynError(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	c := &Campaign{App: bin, N: 5, Seed: 1}
	res, err := c.runProfiled(&profiler.Profile{TotalDyn: 0})
	if err == nil {
		t.Fatalf("expected error for TotalDyn=0, got %+v", res)
	}
	if !strings.Contains(err.Error(), "retired no instructions") {
		t.Fatalf("undescriptive error: %v", err)
	}
}

// TestCoverageZeroCountsError covers the same degenerate-profile
// pattern in the coverage sampler: target images with zero executed
// instructions must error descriptively instead of panicking in draw.
func TestCoverageZeroCountsError(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	e := &CoverageExperiment{App: bin, Trials: 5, Seed: 1}
	res, err := e.runProfiled(&profiler.Profile{
		TotalDyn: 100,
		Counts:   map[string][]uint64{bin.Name: make([]uint64, 8)},
	})
	if err == nil {
		t.Fatalf("expected error for zero-count profile, got %+v", res)
	}
	if !strings.Contains(err.Error(), "no instructions") {
		t.Fatalf("undescriptive error: %v", err)
	}
	// A profile that lacks the image entirely errors too.
	if _, err := e.runProfiled(&profiler.Profile{TotalDyn: 100}); err == nil {
		t.Fatal("expected error for profile without target image")
	}
}

// TestLatencyOnlyWhenObserved audits the Table 3/4 inputs: every
// recorded latency and symptom must come from a soft failure whose
// injection actually fired, so the counts line up exactly with the
// fired soft-failure injections.
func TestLatencyOnlyWhenObserved(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	res, err := (&Campaign{App: bin, N: 80, Model: SingleBit, Seed: 17}).Run()
	if err != nil {
		t.Fatal(err)
	}
	firedSoft := 0
	for _, inj := range res.Injections {
		// A fired injection always records the image it corrupted.
		if inj.Outcome == SoftFailure && inj.Image != "" {
			firedSoft++
		}
	}
	if len(res.Latencies) != firedSoft {
		t.Errorf("%d latencies recorded for %d fired soft failures", len(res.Latencies), firedSoft)
	}
	symptoms := 0
	for _, n := range res.Symptoms {
		symptoms += n
	}
	if symptoms != firedSoft {
		t.Errorf("%d symptoms recorded for %d fired soft failures", symptoms, firedSoft)
	}
}

// TestTrialSeedStreams sanity-checks the splitmix64 derivation: the
// per-trial seeds of one campaign are collision-free over a large
// range, and adjacent campaign seeds do not share shifted streams.
func TestTrialSeedStreams(t *testing.T) {
	seen := map[int64]uint64{}
	for i := uint64(0); i < 100000; i++ {
		s := TrialSeed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("TrialSeed(42, %d) == TrialSeed(42, %d) == %d", i, j, s)
		}
		seen[s] = i
	}
	for i := uint64(0); i < 1000; i++ {
		if TrialSeed(1, i+1) == TrialSeed(2, i) {
			t.Fatalf("campaign seeds 1 and 2 share a shifted stream at trial %d", i)
		}
	}
}
