// Package faultinject implements the paper's two fault-injection
// methodologies:
//
//   - the §2 manifestation study: flip a bit in the destination operand
//     of a uniformly random dynamic instruction, track the outcome
//     (benign / soft failure / SDC / hang), the crash symptom, and the
//     manifestation latency in dynamic instructions (Tables 2, 3, 4,
//     and the appendix Tables 10, 11);
//   - the §5 evaluation: select a static application instruction
//     weighted by its profiled execution count plus a uniform occurrence
//     index, keep the injections that raise SIGSEGV, and measure how
//     many Safeguard recovers and how fast (Figures 7, 9, 12; Table 9).
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"care/internal/core"
	"care/internal/machine"
	"care/internal/parallel"
	"care/internal/profiler"
	"care/internal/safeguard"
	"care/internal/store"
	"care/internal/taint"
	"care/internal/trace"
)

// Model selects the bit-flip fault model.
type Model int

// Fault models.
const (
	// SingleBit flips one uniformly random bit (the paper's primary,
	// conservative model).
	SingleBit Model = iota
	// DoubleBit flips two distinct random bits (the appendix model).
	DoubleBit
)

// String names the model.
func (m Model) String() string {
	if m == DoubleBit {
		return "double-bit-flip"
	}
	return "single-bit-flip"
}

// Outcome classifies an injection (Table 2 columns).
type Outcome int

// Injection outcomes.
const (
	// Benign: the program completed with golden output.
	Benign Outcome = iota
	// SoftFailure: the program crashed with a hardware trap.
	SoftFailure
	// SDC: the program completed but its output differs.
	SDC
	// Hang: the program exceeded its step budget.
	Hang
)

var outcomeNames = [...]string{"Benign", "SoftFailure", "SDC", "Hang"}

// String names the outcome; out-of-range values render as "unknown(N)"
// instead of panicking.
func (o Outcome) String() string {
	if o >= 0 && int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("unknown(%d)", int(o))
}

// allOutcomes enumerates the outcome classes (counter derivation).
var allOutcomes = [...]Outcome{Benign, SoftFailure, SDC, Hang}

// allSignals enumerates the crash-symptom classes. SIGTRAP is the
// deterministic detection trap of a detection-only defense pass
// (fail-stop when no checkpoint store is wired).
var allSignals = [...]machine.Signal{
	machine.SigSEGV, machine.SigBUS, machine.SigFPE,
	machine.SigABRT, machine.SigILL, machine.SigTRAP,
}

// allDests enumerates the destination-operand classes.
var allDests = [...]machine.DestKind{
	machine.DestIntReg, machine.DestFloatReg, machine.DestMemory,
}

// Trace counter names charged per campaign trial. The merged campaign
// trace carries one of each per observation; the CampaignResult maps
// are derived from them.
func outcomeCounter(o Outcome) string { return "campaign.outcome." + o.String() }
func symptomCounter(s machine.Signal) string {
	return "campaign.symptom." + s.String()
}
func destCounter(k machine.DestKind, o Outcome) string {
	return "campaign.dest." + DestName(k) + "." + o.String()
}
func domainCounter(d machine.DomainID) string {
	return "campaign.domain." + d.String()
}

// FaultPoint records one armed fault of a multi-fault trial.
type FaultPoint struct {
	// TargetDyn is the dynamic instruction the fault was armed for.
	TargetDyn uint64
	// Bits lists the flipped bit positions.
	Bits []int
	// Fired reports whether the flip landed; Dyn is the retirement
	// count at which it did.
	Fired bool
	Dyn   uint64
}

// Injection describes one performed injection and its result. Under
// the multi-fault model (Campaign.FaultsPerTrial > 1) the top-level
// target/bits/destination fields describe the *last fired* fault — the
// proximate corruption the latency is measured from — and Faults lists
// every armed fault of the trial.
type Injection struct {
	// TargetDyn is the dynamic instruction index after which the flip
	// was applied.
	TargetDyn uint64
	// Image and StaticIdx identify the corrupted instruction.
	Image     string
	StaticIdx int
	// Bits lists the flipped bit positions.
	Bits []int
	// Dest is the corrupted destination kind.
	Dest machine.DestKind
	// Faults lists every armed fault of a multi-fault trial (only
	// populated when the campaign arms more than one fault per trial).
	Faults []FaultPoint

	Outcome Outcome
	// Signal is the crash symptom for SoftFailure.
	Signal machine.Signal
	// Latency is the dynamic-instruction distance from injection to
	// crash (SoftFailure only).
	Latency uint64
	// PropagationWrites counts tainted destination writes between the
	// injection and the end of the run (only when the campaign enables
	// TrackPropagation — the §2 trace analysis).
	PropagationWrites int
	// TaintedMemWords is the contaminated-memory footprint at the end.
	TaintedMemWords int
}

// corrupt flips the chosen bits in the destination operand of the
// just-retired instruction — "the fault is injected at the point right
// after the instruction is executed" (§2.1.1).
func corrupt(c *machine.CPU, in *machine.MInstr, bits []int) (machine.DestKind, bool) {
	kind, ok := in.HasDest()
	if !ok {
		return 0, false
	}
	var mask machine.Word
	for _, b := range bits {
		mask |= 1 << uint(b)
	}
	switch kind {
	case machine.DestIntReg:
		rd := in.Rd
		if in.Op == machine.MHost {
			rd = machine.R0
		}
		c.R[rd] ^= mask
	case machine.DestFloatReg:
		c.F[in.Fd] = math.Float64frombits(math.Float64bits(c.F[in.Fd]) ^ mask)
	case machine.DestMemory:
		var addr machine.Word
		switch in.Op {
		case machine.MStore, machine.MFStore:
			addr = in.EffectiveAddr(&c.R)
		case machine.MPush, machine.MFPush:
			addr = c.R[machine.SP]
		}
		v, f := c.Mem.Read(addr)
		if f != nil {
			return kind, false
		}
		if f := c.Mem.Write(addr, v^mask); f != nil {
			return kind, false
		}
	}
	return kind, true
}

// Armed reports one armed fault: whether it fired, and where. If the
// triggering instruction has no destination, the next instruction with
// one is corrupted.
type Armed struct {
	Fired     bool
	Dyn       uint64
	Image     string
	StaticIdx int
	Dest      machine.DestKind
	// OnFire, when set before the run, is invoked right after the
	// corruption is applied (the taint tracker seeds there).
	OnFire func(c *machine.CPU, in *machine.MInstr)
}

// TriggerKind selects how the injection point is specified.
type Trigger struct {
	// AtDyn fires after the AtDyn'th dynamic instruction retires
	// (1-based) when >0.
	AtDyn uint64
	// Image/StaticIdx/Occurrence fire after the instruction at
	// StaticIdx of the named image retires for the Occurrence'th time
	// (1-based), when Image != "".
	Image      string
	StaticIdx  int
	Occurrence uint64
}

// ArmSpec pairs a trigger with the bit positions to flip — one fault of
// a (possibly multi-fault) injection plan.
type ArmSpec struct {
	Trigger Trigger
	Bits    []int
}

// Arm installs a single injection hook on the CPU: after the
// instruction matching the trigger retires, flip the given bits in its
// destination.
func Arm(cpu *machine.CPU, trig Trigger, bits []int) *Armed {
	return ArmAll(cpu, []ArmSpec{{Trigger: trig, Bits: bits}})[0]
}

// ArmAll arms several independent faults on one CPU through a single
// retire hook (the multi-fault model: K transient upsets per run).
// Specs fire independently, in spec order when several trigger on the
// same retirement. The hook composes with other retire hooks via
// machine.AddAfterStep and stays installed until every spec has fired —
// a fired fault never re-fires (a transient upset happens once), while
// unfired faults remain armed even if a checkpoint rollback rewinds the
// dynamic-instruction clock past their trigger.
func ArmAll(cpu *machine.CPU, specs []ArmSpec) []*Armed {
	return armAllSeeded(cpu, specs, nil)
}

// armAllSeeded is ArmAll with pre-seeded occurrence counters: a
// warm-started process resumes mid-run, so the retire hook never sees
// the skipped prefix's retirements and seed[si] must carry how many
// times spec si's static instruction already retired in it. A nil seed
// is the cold start. The states backing is allocated as one block and
// the occurrence counters only when some spec needs them (the campaign
// hot path is all AtDyn triggers).
func armAllSeeded(cpu *machine.CPU, specs []ArmSpec, seed []uint64) []*Armed {
	backing := make([]Armed, len(specs))
	states := make([]*Armed, len(specs))
	for i := range states {
		states[i] = &backing[i]
	}
	if len(specs) == 0 {
		return states
	}
	var occ []uint64
	for i := range specs {
		if specs[i].Trigger.AtDyn == 0 {
			occ = make([]uint64, len(specs))
			copy(occ, seed)
			break
		}
	}
	live := len(specs)
	var remove func()
	remove = cpu.AddAfterStep(func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		for si := range specs {
			st := states[si]
			if st.Fired {
				continue
			}
			trig := specs[si].Trigger
			triggered := false
			if trig.AtDyn > 0 {
				triggered = c.Dyn >= trig.AtDyn
			} else {
				if img.Prog.Name == trig.Image && idx == trig.StaticIdx {
					occ[si]++
				}
				triggered = occ[si] >= trig.Occurrence && occ[si] > 0
			}
			if !triggered {
				continue
			}
			kind, ok := corrupt(c, in, specs[si].Bits)
			if !ok {
				continue // no destination; try the next retiring instruction
			}
			st.Fired = true
			st.Dyn = c.Dyn
			st.Image = img.Prog.Name
			st.StaticIdx = idx
			st.Dest = kind
			live--
			if st.OnFire != nil {
				st.OnFire(c, in)
			}
		}
		if live == 0 {
			remove()
		}
	})
	return states
}

// pickBits draws the flip positions for the model.
func pickBits(rng *rand.Rand, model Model) []int {
	b0 := rng.Intn(64)
	if model == SingleBit {
		return []int{b0}
	}
	b1 := rng.Intn(63)
	if b1 >= b0 {
		b1++
	}
	return []int{b0, b1}
}

// Campaign is a §2-style manifestation study over one binary.
type Campaign struct {
	// App is an unprotected build of the workload.
	App *core.Binary
	// Libs are linked library binaries (optional).
	Libs []*core.Binary
	// N is the number of injections (one per run).
	N int
	// FaultsPerTrial is the multi-fault model: every trial arms this
	// many independent faults, each with its own uniformly random
	// dynamic target and bit choice drawn from the trial's RNG stream
	// (so campaigns stay bit-identical across worker counts). <=1 means
	// the paper's single-fault-per-run model.
	FaultsPerTrial int
	// Model selects single or double bit flips.
	Model Model
	// Seed drives all randomness.
	Seed int64
	// HangFactor multiplies the golden instruction count for the hang
	// budget (default 4).
	HangFactor uint64
	// TrackPropagation attaches a taint tracker to every injected run,
	// reproducing the paper's §2 fault-propagation trace analysis
	// (slower: every instruction pays the shadow-state update).
	TrackPropagation bool
	// Workers is the number of goroutines running trials concurrently;
	// <=0 means one per available CPU. Each trial derives its own RNG
	// from (Seed, trial index), so the CampaignResult is identical for
	// every worker count.
	Workers int
	// Trace additionally wires each trial CPU's trap stamps into the
	// per-trial trace (machine.CPU.Trace). The trial counters and the
	// per-trial summary span are always recorded; this only adds the
	// machine-level trap detail, at a small per-trap cost. The merged
	// trace stays bit-identical across worker counts either way.
	Trace bool
	// WarmStart clones each trial from the latest golden-run snapshot
	// strictly before its earliest injection target instead of
	// re-executing the shared prefix from _start. The campaign result —
	// including the exported trace JSONL — is bit-identical to a cold
	// campaign for every worker count (the skipped prefix is
	// deterministic and fault-free); only CampaignResult.WarmStart,
	// which lives beside the trace, records the shortcut.
	WarmStart bool
	// SnapEvery is the snapshot cadence in retired instructions
	// (warm-start only). 0 picks TotalDyn/64+1: at most 64 snapshots,
	// bounding the frozen-image memory while capping the re-executed
	// prefix at ~1/64 of the run per trial.
	SnapEvery uint64
	// Tier selects the interpreter tier every trial runs on
	// (superblock, block or step; the zero value is the fused
	// superblock default). The campaign result — including the
	// exported trace JSONL — is bit-identical on every tier; the CI
	// smoke diffs them.
	Tier machine.InterpTier
	// Domains attributes each memory-symptom soft failure (SIGSEGV or
	// SIGBUS) to the isolation domain of its faulting address,
	// populating CampaignResult.ByDomain — the crash-geography view the
	// domain-rewind policy acts on.
	Domains bool
	// Protected attaches the Safeguard runtime to every trial process,
	// so defended binaries (CARE repair, PRESAGE/SFI detection) run
	// their recovery machinery under injection. Each trial merges the
	// safeguard's own trace — activation spans plus the
	// recovered/detected/unrecoverable counters — into its recorder, so
	// the campaign trace stays bit-identical across worker counts.
	Protected bool
	// Safeguard tunes the attached runtime (zero value = the paper's
	// one-shot configuration; Protected only).
	Safeguard safeguard.Config
	// Shards splits the trial index space into this many contiguous
	// shards executed by the internal/shard coordinator — in worker
	// subprocesses (ShardExec) or in-process — and merged in trial-index
	// order, so the result is byte-identical to a single-process run.
	// Campaign.Run itself always runs single-process; callers route
	// Shards > 1 campaigns through shard.RunCampaign (the CLIs and
	// experiments do). <=1 means no sharding.
	Shards int
	// ShardExec is the worker argv for subprocess shards (e.g.
	// {"care-inject", "-shard-serve"}); empty means in-process shards.
	// Read by the shard coordinator, ignored by Run.
	ShardExec []string
	// Progress, when non-nil, is invoked after every completed trial
	// with (done, total) for the range being run. It may be called
	// concurrently from worker goroutines and must not touch the trial
	// results; it exists only for heartbeat reporting and never alters
	// the campaign outcome or trace.
	Progress func(done, total int)
	// Store, when non-nil, caches the golden-run profile (and its
	// warm-start snapshots) under StoreKey: Prepare consults the store
	// first and a verified hit skips both golden passes entirely; a
	// miss runs cold and populates the entry. Corruption degrades to
	// the cold path (the store charges its own fallback counter) — the
	// campaign result, including the exported trace JSONL, is
	// byte-identical with the store on, off, cold, or cache-hit.
	Store *store.Store
	// StoreKey identifies this campaign's cache entry; it must pin
	// every input the golden run depends on (workload, build options,
	// defenses) plus the snapshot cadence. Ignored when Store is nil or
	// the key's Workload is empty (an unkeyed campaign never touches
	// the index).
	StoreKey store.Key
}

// WarmStartStats accounts for the work a warm-started campaign skipped.
// It deliberately lives on the CampaignResult rather than the trace:
// WriteJSONL exports every counter, and the warm-start contract is that
// warm and cold trace exports diff byte-for-byte clean. The CLI surfaces
// SkippedDyn as the campaign.warmstart.skipped-dyn figure on stderr.
type WarmStartStats struct {
	// Snapshots is how many golden-run snapshots were captured.
	Snapshots int
	// WarmTrials counts trials that cloned a snapshot (the rest had an
	// injection target before the first snapshot and started cold).
	WarmTrials int
	// SkippedDyn totals the golden-prefix instructions the warm trials
	// did not re-execute (the campaign.warmstart.skipped-dyn counter).
	SkippedDyn uint64
}

// CampaignResult aggregates a campaign (Tables 2-4 rows).
type CampaignResult struct {
	Workload string
	Model    Model
	N        int
	// Outcomes, Symptoms, Latencies and ByDest are derived from the
	// merged trace (counters and per-trial spans), not tallied
	// separately; see runProfiled.
	Outcomes   map[Outcome]int
	Symptoms   map[machine.Signal]int
	Latencies  []uint64
	Injections []Injection
	GoldenDyn  uint64
	// ByDest breaks outcomes down by the corrupted destination kind —
	// the paper's §2.1.2 observation that FPU faults skew to SDCs while
	// ALU (integer/address) faults skew to soft failures.
	ByDest map[machine.DestKind]map[Outcome]int
	// ByDomain attributes memory-symptom soft failures to the isolation
	// domain of the faulting address (Campaign.Domains only).
	ByDomain map[machine.DomainID]int
	// Trace is the per-trial recorders merged in trial-index order, with
	// Rank carrying the trial index: one KindTrial span per trial (plus
	// KindTrap stamps when Campaign.Trace is set) and the outcome /
	// symptom / destination counters. Every field in it is derived from
	// the deterministic virtual clock, so it is bit-identical for every
	// worker count.
	Trace *trace.Recorder
	// WarmStart accounts for the skipped golden-prefix work (nil unless
	// the campaign ran with Campaign.WarmStart). It is the one field a
	// warm/cold equivalence comparison must scrub; see WarmStartStats
	// for why it is not a trace counter.
	WarmStart *WarmStartStats
}

// destName names a destination kind for reports.
func DestName(k machine.DestKind) string {
	switch k {
	case machine.DestIntReg:
		return "ALU(int)"
	case machine.DestFloatReg:
		return "FPU(float)"
	case machine.DestMemory:
		return "memory"
	}
	return "?"
}

// LatencyBuckets returns the Table 4 distribution: counts of soft
// failures manifesting within <=10, 11-50, 51-400 and >400 dynamic
// instructions.
func (r *CampaignResult) LatencyBuckets() [4]int {
	var b [4]int
	for _, l := range r.Latencies {
		switch {
		case l <= 10:
			b[0]++
		case l <= 50:
			b[1]++
		case l <= 400:
			b[2]++
		default:
			b[3]++
		}
	}
	return b
}

// TrialResult is the outcome of one campaign trial — the unit the
// ordered merge consumes and the shard coordinator ships between
// processes. Every field is derived from the trial's deterministic
// virtual clock, so a TrialResult is identical wherever the trial ran.
type TrialResult struct {
	// Index is the trial's position in the campaign's [0, N) index
	// space; MergeResults consumes results in Index order.
	Index int
	// Inj is the injection record.
	Inj Injection
	// Fired reports whether any armed flip actually landed; latency and
	// symptom statistics are only meaningful for fired trials.
	Fired bool
	// SkippedDyn is the golden-prefix length the trial warm-started
	// past (0 for a cold trial).
	SkippedDyn uint64
	// Rec is the trial's recorder: outcome/symptom/destination counters
	// plus a KindTrial summary span (and trap stamps when Campaign.Trace
	// is set). Merged into the campaign trace in trial-index order.
	Rec *trace.Recorder
}

// runTrial executes the i'th injection of the campaign against a fresh
// process. All randomness comes from a trial-local RNG derived from
// (c.Seed, i), so trials are independent and may run concurrently.
func (c *Campaign) runTrial(i int, prof *profiler.Profile, hang uint64) (TrialResult, error) {
	rng := rand.New(rand.NewSource(TrialSeed(c.Seed, uint64(i))))
	k := c.FaultsPerTrial
	if k <= 0 {
		k = 1
	}
	specs := make([]ArmSpec, k)
	for j := range specs {
		target := uint64(rng.Int63n(int64(prof.TotalDyn))) + 1
		specs[j] = ArmSpec{Trigger: Trigger{AtDyn: target}, Bits: pickBits(rng, c.Model)}
	}
	// Warm start: resume from the latest golden snapshot strictly before
	// the earliest armed target. Everything up to that target is the
	// deterministic fault-free golden prefix, so the resumed process is
	// bit-identical to a cold one at the moment the first fault can fire.
	var snap *profiler.SnapPoint
	if len(prof.Snaps) > 0 {
		minTarget := specs[0].Trigger.AtDyn
		for _, s := range specs[1:] {
			if s.Trigger.AtDyn < minTarget {
				minTarget = s.Trigger.AtDyn
			}
		}
		snap = prof.NearestSnap(minTarget)
	}
	cfg := core.ProcessConfig{
		App: c.App, Libs: c.Libs, Tier: c.Tier,
		Protected: c.Protected, Safeguard: c.Safeguard,
	}
	var p *core.Process
	var err error
	if snap != nil {
		p, err = core.NewProcessFromSnapshot(cfg, snap.State)
	} else {
		p, err = core.NewProcess(cfg)
	}
	if err != nil {
		return TrialResult{}, err
	}
	// An unprotected campaign trial emits at most one trap stamp (the
	// process dies at its first trap) plus the summary span; a 4-slot
	// ring never drops and keeps the per-trial footprint small. A
	// protected trial additionally absorbs the safeguard's activation
	// and phase spans, so it gets a deeper ring.
	capSpans := 4
	if c.Protected {
		capSpans = 256
	}
	rec := trace.New(capSpans)
	if c.Trace {
		p.CPU.Trace = rec
	}
	armed := ArmAll(p.CPU, specs)
	var tracker *taint.Tracker
	if c.TrackPropagation {
		tracker = taint.Attach(p.CPU)
		for _, st := range armed {
			st.OnFire = func(cc *machine.CPU, in *machine.MInstr) {
				tracker.MarkDest(cc, in)
			}
		}
	}
	// The budget is shared with the skipped prefix: in the golden prefix
	// every step retires, so a cold trial reaching the snapshot point has
	// spent exactly snap.Dyn of its budget. Charging it here keeps the
	// Hang classification bit-identical between warm and cold runs.
	limit := hang * prof.TotalDyn
	var skipped uint64
	if snap != nil {
		skipped = snap.Dyn
		limit -= skipped
	}
	status := p.Run(limit)
	// Fold the safeguard's private trace (activations, phase spans, the
	// recovered/detected counters) into the trial recorder so campaign
	// merges see recovery outcomes alongside injection outcomes.
	if p.SG != nil {
		rec.Merge(p.SG.Trace())
	}
	// last is the most recently fired fault — the proximate corruption
	// the manifestation latency is measured from.
	var last *Armed
	lastIdx := -1
	for j, st := range armed {
		if st.Fired && (last == nil || st.Dyn >= last.Dyn) {
			last, lastIdx = st, j
		}
	}
	inj := Injection{TargetDyn: specs[0].Trigger.AtDyn, Bits: specs[0].Bits}
	if k > 1 {
		inj.Faults = make([]FaultPoint, k)
		for j := range specs {
			inj.Faults[j] = FaultPoint{
				TargetDyn: specs[j].Trigger.AtDyn,
				Bits:      specs[j].Bits,
				Fired:     armed[j].Fired,
				Dyn:       armed[j].Dyn,
			}
		}
	}
	if tracker != nil {
		inj.PropagationWrites = tracker.TaintedWrites
		inj.TaintedMemWords = tracker.TaintedMemWords()
	}
	if last != nil {
		inj.TargetDyn, inj.Bits = specs[lastIdx].Trigger.AtDyn, specs[lastIdx].Bits
		inj.Image, inj.StaticIdx, inj.Dest = last.Image, last.StaticIdx, last.Dest
	}
	switch status {
	case machine.StatusTrapped:
		inj.Outcome = SoftFailure
		inj.Signal = p.CPU.PendingTrap.Sig
		if last != nil {
			inj.Latency = p.CPU.Dyn - last.Dyn
		}
	case machine.StatusExited:
		if sameResults(p.Results(), prof.Golden) && p.CPU.ExitCode == prof.ExitCode {
			inj.Outcome = Benign
		} else {
			inj.Outcome = SDC
		}
	case machine.StatusLimit:
		inj.Outcome = Hang
	default:
		return TrialResult{}, fmt.Errorf("faultinject: unexpected run status %v", status)
	}
	fired := last != nil
	// Charge the trial's observations to its trace. All values are on
	// the deterministic virtual clock (no wall time), so merged campaign
	// traces compare bit-identically across worker counts.
	rec.Add(outcomeCounter(inj.Outcome), 1)
	if inj.Outcome == SoftFailure && fired {
		rec.Add(symptomCounter(inj.Signal), 1)
		if c.Domains && (inj.Signal == machine.SigSEGV || inj.Signal == machine.SigBUS) {
			rec.Add(domainCounter(p.CPU.Mem.FaultDomain(p.CPU.PendingTrap.Addr)), 1)
		}
	}
	if fired {
		rec.Add(destCounter(inj.Dest, inj.Outcome), 1)
	}
	var startDyn uint64
	var nFired int64
	for _, st := range armed {
		if st.Fired {
			nFired++
		}
	}
	if last != nil {
		startDyn = last.Dyn
	}
	rec.Emit(trace.Span{
		Kind: trace.KindTrial, Parent: trace.NoParent,
		StartDyn: startDyn, EndDyn: p.CPU.Dyn,
		Outcome: inj.Outcome.String(), Val: nFired,
	})
	return TrialResult{Index: i, Inj: inj, Fired: fired, Rec: rec, SkippedDyn: skipped}, nil
}

// Run executes the campaign: N independent trials on a pool of Workers
// goroutines, merged in trial-index order so the result is identical
// for every worker count (including Workers=1).
func (c *Campaign) Run() (*CampaignResult, error) {
	prof, err := c.Prepare()
	if err != nil {
		return nil, err
	}
	return c.runProfiled(prof)
}

// Prepare validates the campaign and performs its golden pass (plus the
// warm-start snapshot pass when enabled), returning the profile trials
// run against. The shard coordinator calls this once and ships the
// profile to every worker, so shards skip the golden-run replay; Run
// calls it implicitly.
func (c *Campaign) Prepare() (*profiler.Profile, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("faultinject: campaign N must be positive")
	}
	key := effectiveKey(c.StoreKey, c.WarmStart, c.SnapEvery)
	if prof := consultStore(c.Store, key); prof != nil {
		return prof, nil
	}
	prof, err := profiler.Run(c.App, c.Libs, 0)
	if err != nil {
		return nil, err
	}
	if c.WarmStart {
		// Second golden pass, now capturing snapshots: the default
		// cadence needs TotalDyn, and taking it from a separate run
		// keeps the first (profiling) pass identical to a cold
		// campaign's. The extra golden run is one trial's worth of work
		// amortised over N warm trials.
		every := c.SnapEvery
		if every == 0 {
			every = prof.TotalDyn/64 + 1
		}
		sprof, err := profiler.RunWithSnapshots(c.App, c.Libs, 0, every)
		if err != nil {
			return nil, err
		}
		if sprof.TotalDyn != prof.TotalDyn {
			return nil, fmt.Errorf("faultinject: snapshot pass retired %d dyn, golden run %d; workload is nondeterministic and cannot warm-start",
				sprof.TotalDyn, prof.TotalDyn)
		}
		prof = sprof
	}
	populateStore(c.Store, key, prof, c.App, c.Libs)
	return prof, nil
}

// effectiveKey pins the snapshot cadence onto a cache key from the
// campaign's own fields, so an entry with snapshots can never be
// confused with one without — even if the caller filled the key
// inconsistently.
func effectiveKey(key store.Key, warm bool, snapEvery uint64) store.Key {
	key.WarmStart = warm
	if warm {
		key.SnapEvery = snapEvery
	} else {
		key.SnapEvery = 0
	}
	return key
}

// consultStore returns the cached golden-run profile for key, or nil
// when there is no store, no usable key, a clean miss, or a corrupt
// entry (the store charges golden-misses / store.fallback itself; the
// caller always degrades to the cold path).
func consultStore(s *store.Store, key store.Key) *profiler.Profile {
	if s == nil || key.Workload == "" {
		return nil
	}
	prof, err := s.GetProfile(key)
	if err != nil || prof == nil {
		return nil
	}
	return prof
}

// populateStore caches a freshly derived profile, offering the sealed
// .text images of the app and its libraries for blob dedup. Store
// errors are deliberately non-fatal: a read-only or full store costs
// the next run a cache miss, never this run its result.
func populateStore(s *store.Store, key store.Key, prof *profiler.Profile, app *core.Binary, libs []*core.Binary) {
	if s == nil || key.Workload == "" {
		return
	}
	var text []store.TextImage
	for _, b := range append([]*core.Binary{app}, libs...) {
		if b != nil && b.Prog != nil {
			if img := b.Prog.CodeImage(); len(img) > 0 {
				text = append(text, store.TextImage{Name: b.Prog.Name, Data: img})
			}
		}
	}
	_ = s.PutProfile(key, prof, text)
}

// runProfiled runs the campaign against an already-profiled golden run
// (split out so degenerate profiles are testable without a workload
// that actually retires zero instructions).
func (c *Campaign) runProfiled(prof *profiler.Profile) (*CampaignResult, error) {
	trials, err := c.RunTrialRange(prof, 0, c.N)
	if err != nil {
		return nil, err
	}
	return c.MergeResults(prof, trials)
}

// RunTrialRange executes trials [lo, hi) of the campaign's [0, N) index
// space against a prepared profile, on a pool of Workers goroutines.
// Each trial derives its RNG from (Seed, index), so a range run on any
// process yields the same TrialResults the full campaign would — this
// is the primitive a shard worker serves.
func (c *Campaign) RunTrialRange(prof *profiler.Profile, lo, hi int) ([]TrialResult, error) {
	if prof.TotalDyn == 0 {
		return nil, fmt.Errorf("faultinject: golden run of %q retired no instructions; nothing to inject into (degenerate workload parameters?)", c.App.Name)
	}
	if lo < 0 || hi < lo || hi > c.N {
		return nil, fmt.Errorf("faultinject: trial range [%d,%d) outside campaign [0,%d)", lo, hi, c.N)
	}
	hang := c.HangFactor
	if hang == 0 {
		hang = 4
	}
	trials := make([]TrialResult, hi-lo)
	var done atomic.Int64
	err := parallel.ForEach(hi-lo, c.Workers, func(j int) error {
		t, err := c.runTrial(lo+j, prof, hang)
		if err != nil {
			return err
		}
		trials[j] = t
		if c.Progress != nil {
			c.Progress(int(done.Add(1)), hi-lo)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trials, nil
}

// MergeResults folds trial results — covering exactly [0, N) in index
// order, whether produced by one RunTrialRange call or concatenated
// from per-shard ranges — into the CampaignResult. All report maps are
// derived from the merged trace, so a sharded merge is byte-identical
// to a single-process one.
func (c *Campaign) MergeResults(prof *profiler.Profile, trials []TrialResult) (*CampaignResult, error) {
	if len(trials) != c.N {
		return nil, fmt.Errorf("faultinject: merging %d trial results, campaign has %d", len(trials), c.N)
	}
	for i := range trials {
		if trials[i].Index != i {
			return nil, fmt.Errorf("faultinject: trial result %d carries index %d; results must arrive in index order", i, trials[i].Index)
		}
	}
	// The merged trace must retain every trial's summary span (plus trap
	// stamps when Trace is set) for the latency derivation below.
	capSpans := 4 * c.N
	if capSpans < trace.DefaultSpanCap {
		capSpans = trace.DefaultSpanCap
	}
	res := &CampaignResult{
		Workload:  c.App.Name,
		Model:     c.Model,
		N:         c.N,
		Outcomes:  map[Outcome]int{},
		Symptoms:  map[machine.Signal]int{},
		GoldenDyn: prof.TotalDyn,
		ByDest:    map[machine.DestKind]map[Outcome]int{},
		Trace:     trace.New(capSpans),
	}
	if c.WarmStart {
		res.WarmStart = &WarmStartStats{Snapshots: len(prof.Snaps)}
	}
	res.Injections = make([]Injection, 0, c.N)
	for i := range trials {
		res.Trace.MergeAs(trials[i].Rec, int32(i))
		res.Injections = append(res.Injections, trials[i].Inj)
		if res.WarmStart != nil && trials[i].SkippedDyn > 0 {
			res.WarmStart.WarmTrials++
			res.WarmStart.SkippedDyn += trials[i].SkippedDyn
		}
	}
	// Derive the report maps from the merged counters. Only observed
	// classes get a key, mirroring the map-increment behaviour the
	// tables (and their tests) expect. Symptoms and per-destination
	// splits count fired trials only: an unfired trap has neither a
	// measured latency nor an attributable symptom.
	for _, o := range allOutcomes {
		if n := res.Trace.Counter(outcomeCounter(o)); n > 0 {
			res.Outcomes[o] = int(n)
		}
	}
	for _, s := range allSignals {
		if n := res.Trace.Counter(symptomCounter(s)); n > 0 {
			res.Symptoms[s] = int(n)
		}
	}
	for _, k := range allDests {
		for _, o := range allOutcomes {
			if n := res.Trace.Counter(destCounter(k, o)); n > 0 {
				if res.ByDest[k] == nil {
					res.ByDest[k] = map[Outcome]int{}
				}
				res.ByDest[k][o] = int(n)
			}
		}
	}
	if c.Domains {
		for d := machine.DomainID(0); d < machine.NumDomains; d++ {
			if n := res.Trace.Counter(domainCounter(d)); n > 0 {
				if res.ByDomain == nil {
					res.ByDomain = map[machine.DomainID]int{}
				}
				res.ByDomain[d] = int(n)
			}
		}
	}
	// Manifestation latencies come from the fired soft-failure trial
	// spans, in merge (= trial) order: the span covers last-fired-fault
	// to crash on the virtual clock (Table 4's buckets).
	for _, s := range res.Trace.Spans() {
		if s.Kind == trace.KindTrial && s.Val > 0 && s.Outcome == SoftFailure.String() {
			res.Latencies = append(res.Latencies, s.DynSpan())
		}
	}
	return res, nil
}

func sameResults(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
