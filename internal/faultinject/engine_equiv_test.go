package faultinject

import (
	"bytes"
	"reflect"
	"testing"

	"care/internal/machine"
	"care/internal/safeguard"
)

// TestCampaignEngineEquivalence is the fast tiers' end-to-end contract:
// a campaign run on the superblock or block engine is bit-identical —
// every result field and the exported trace JSONL — to the same
// campaign forced onto the legacy per-instruction Step loop, across
// worker counts and under the multi-fault model.
func TestCampaignEngineEquivalence(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	for _, tc := range []struct {
		name   string
		faults int
	}{
		{"single-fault", 1},
		{"multi-fault", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(tier machine.InterpTier, workers int) *CampaignResult {
				res, err := (&Campaign{
					App: bin, N: 24, FaultsPerTrial: tc.faults,
					Model: SingleBit, Seed: 7, Workers: workers,
					Trace: true, Tier: tier,
				}).Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			step := run(machine.TierStep, 1)
			var sj bytes.Buffer
			if err := step.Trace.WriteJSONL(&sj); err != nil {
				t.Fatal(err)
			}
			for _, tier := range []machine.InterpTier{machine.TierSuperblock, machine.TierBlock} {
				fast := run(tier, 8)
				if !reflect.DeepEqual(fast, step) {
					t.Fatalf("campaign result differs between %v engine and step loop:\n%+v\nvs\n%+v", tier, fast, step)
				}
				var fj bytes.Buffer
				if err := fast.Trace.WriteJSONL(&fj); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fj.Bytes(), sj.Bytes()) {
					t.Fatalf("trace JSONL differs between %v engine and step loop", tier)
				}
			}
		})
	}
}

// TestCampaignEngineEquivalenceWarmStart extends the contract to
// warm-started campaigns: snapshot clones (Memory.Restore bumps the
// inline-cache generation) must not perturb results either.
func TestCampaignEngineEquivalenceWarmStart(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	run := func(tier machine.InterpTier) *CampaignResult {
		res, err := (&Campaign{
			App: bin, N: 16, Model: SingleBit, Seed: 19, Workers: 4,
			Trace: true, WarmStart: true, Tier: tier,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	step := run(machine.TierStep)
	for _, tier := range []machine.InterpTier{machine.TierSuperblock, machine.TierBlock} {
		if fast := run(tier); !reflect.DeepEqual(fast, step) {
			t.Fatalf("warm-start campaign differs between %v engine and step loop:\n%+v\nvs\n%+v", tier, fast, step)
		}
	}
}

// TestCoverageEngineEquivalence pins the protected path: Safeguard
// recovery (trap handlers, recovery-kernel sub-CPUs riding the StopPC
// sentinel, checkpoint rollback restores) must classify every trial
// identically on every interpreter tier.
func TestCoverageEngineEquivalence(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	run := func(tier machine.InterpTier) *CoverageResult {
		res, err := (&CoverageExperiment{
			App: bin, Trials: 8, Model: SingleBit, Seed: 31,
			Safeguard: safeguard.Config{
				InductionRecovery: true,
				Policy:            safeguard.Policy{Rollback: true, MaxTrapsPerPC: 8, StormTraps: 4},
			},
			CheckpointEveryResults: 1,
			Workers:                4,
			Tier:                   tier,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scrub := func(r *CoverageResult) CoverageResult {
		c := *r
		c.Events = nil
		c.TrialRecoveryTimes = nil
		c.Trace = nil // compared separately, with Wall times scrubbed
		return c
	}
	step := run(machine.TierStep)
	for _, tier := range []machine.InterpTier{machine.TierSuperblock, machine.TierBlock} {
		fast := run(tier)
		if a, b := scrub(fast), scrub(step); !reflect.DeepEqual(a, b) {
			t.Fatalf("coverage logical fields differ between %v engine and step loop:\n%+v\nvs\n%+v", tier, a, b)
		}
		requireTraceSkeletonEqual(t, fast.Trace, step.Trace)
		if len(fast.Events) != len(step.Events) {
			t.Fatalf("event count differs: %d vs %d", len(fast.Events), len(step.Events))
		}
		for i := range fast.Events {
			if fast.Events[i].Outcome != step.Events[i].Outcome {
				t.Errorf("event %d outcome %s vs %s", i, fast.Events[i].Outcome, step.Events[i].Outcome)
			}
		}
	}
}
