package faultinject

import (
	"bytes"
	"reflect"
	"testing"

	"care/internal/safeguard"
)

// TestCampaignEngineEquivalence is the block engine's end-to-end
// contract: a campaign run on the block-predecoded interpreter is
// bit-identical — every result field and the exported trace JSONL — to
// the same campaign forced onto the legacy per-instruction Step loop,
// across worker counts and under the multi-fault model.
func TestCampaignEngineEquivalence(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	for _, tc := range []struct {
		name   string
		faults int
	}{
		{"single-fault", 1},
		{"multi-fault", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(stepLoop bool, workers int) *CampaignResult {
				res, err := (&Campaign{
					App: bin, N: 24, FaultsPerTrial: tc.faults,
					Model: SingleBit, Seed: 7, Workers: workers,
					Trace: true, StepLoop: stepLoop,
				}).Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			block := run(false, 8)
			step := run(true, 1)
			if !reflect.DeepEqual(block, step) {
				t.Fatalf("campaign result differs between block engine and step loop:\n%+v\nvs\n%+v", block, step)
			}
			var bj, sj bytes.Buffer
			if err := block.Trace.WriteJSONL(&bj); err != nil {
				t.Fatal(err)
			}
			if err := step.Trace.WriteJSONL(&sj); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bj.Bytes(), sj.Bytes()) {
				t.Fatal("trace JSONL differs between block engine and step loop")
			}
		})
	}
}

// TestCampaignEngineEquivalenceWarmStart extends the contract to
// warm-started campaigns: snapshot clones (Memory.Restore bumps the
// inline-cache generation) must not perturb results either.
func TestCampaignEngineEquivalenceWarmStart(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, false)
	run := func(stepLoop bool) *CampaignResult {
		res, err := (&Campaign{
			App: bin, N: 16, Model: SingleBit, Seed: 19, Workers: 4,
			Trace: true, WarmStart: true, StepLoop: stepLoop,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	block, step := run(false), run(true)
	if !reflect.DeepEqual(block, step) {
		t.Fatalf("warm-start campaign differs between engines:\n%+v\nvs\n%+v", block, step)
	}
}

// TestCoverageEngineEquivalence pins the protected path: Safeguard
// recovery (trap handlers, recovery-kernel sub-CPUs riding the StopPC
// sentinel, checkpoint rollback restores) must classify every trial
// identically on both interpreter loops.
func TestCoverageEngineEquivalence(t *testing.T) {
	bin := buildWorkload(t, "HPCCG", 0, true)
	run := func(stepLoop bool) *CoverageResult {
		res, err := (&CoverageExperiment{
			App: bin, Trials: 8, Model: SingleBit, Seed: 31,
			Safeguard: safeguard.Config{
				InductionRecovery: true,
				Policy:            safeguard.Policy{Rollback: true, MaxTrapsPerPC: 8, StormTraps: 4},
			},
			CheckpointEveryResults: 1,
			Workers:                4,
			StepLoop:               stepLoop,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	block, step := run(false), run(true)
	scrub := func(r *CoverageResult) CoverageResult {
		c := *r
		c.Events = nil
		c.TrialRecoveryTimes = nil
		c.Trace = nil // compared separately, with Wall times scrubbed
		return c
	}
	if a, b := scrub(block), scrub(step); !reflect.DeepEqual(a, b) {
		t.Fatalf("coverage logical fields differ between engines:\n%+v\nvs\n%+v", a, b)
	}
	requireTraceSkeletonEqual(t, block.Trace, step.Trace)
	if len(block.Events) != len(step.Events) {
		t.Fatalf("event count differs: %d vs %d", len(block.Events), len(step.Events))
	}
	for i := range block.Events {
		if block.Events[i].Outcome != step.Events[i].Outcome {
			t.Errorf("event %d outcome %s vs %s", i, block.Events[i].Outcome, step.Events[i].Outcome)
		}
	}
}
