package faultinject

import (
	"fmt"
	"testing"
)

// BenchmarkCampaignWorkers measures campaign throughput as the worker
// pool widens; the workers=1 case is the old serial engine's cost.
// Every variant computes the identical CampaignResult.
func BenchmarkCampaignWorkers(b *testing.B) {
	bin := buildWorkload(b, "HPCCG", 0, false)
	const n = 64
	for _, w := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := (&Campaign{App: bin, N: n, Model: SingleBit, Seed: 1, Workers: w}).Run()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Injections) != n {
					b.Fatalf("%d injections", len(res.Injections))
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkCampaignWorkersTracked is the same sweep with the §2 taint
// tracker attached — the heaviest per-trial configuration, where the
// pool pays off most.
func BenchmarkCampaignWorkersTracked(b *testing.B) {
	bin := buildWorkload(b, "HPCCG", 0, false)
	const n = 32
	for _, w := range []int{1, 0} {
		name := "workers=1"
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := (&Campaign{App: bin, N: n, Model: SingleBit, Seed: 1,
					TrackPropagation: true, Workers: w}).Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkCampaignWarmStart is the headline warm-start comparison:
// the identical campaign run cold (every trial replays the golden
// prefix from _start) and warm (trials clone the nearest golden
// snapshot), at the default cadence. Warm must be measurably faster;
// the computed CampaignResult is bit-identical either way. ReportAllocs
// doubles as the per-trial allocation guard (run with -benchmem).
func BenchmarkCampaignWarmStart(b *testing.B) {
	bin := buildWorkload(b, "HPCCG", 0, false)
	const n = 64
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := (&Campaign{
					App: bin, N: n, Model: SingleBit, Seed: 1, WarmStart: warm,
				}).Run()
				if err != nil {
					b.Fatal(err)
				}
				if warm && res.WarmStart.SkippedDyn == 0 {
					b.Fatal("warm campaign skipped nothing")
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkCoverageWorkers measures the §5 coverage experiment under
// the chunked speculative pool.
func BenchmarkCoverageWorkers(b *testing.B) {
	bin := buildWorkload(b, "HPCCG", 0, true)
	for _, w := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := (&CoverageExperiment{App: bin, Trials: 20, Seed: 1, Workers: w}).Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Attempts)/b.Elapsed().Seconds(), "attempts/s")
			}
		})
	}
}
