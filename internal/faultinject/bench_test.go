package faultinject

import (
	"fmt"
	"testing"

	"care/internal/core"
	"care/internal/store"
	"care/internal/workloads"
)

// BenchmarkCampaignWorkers measures campaign throughput as the worker
// pool widens; the workers=1 case is the old serial engine's cost.
// Every variant computes the identical CampaignResult.
func BenchmarkCampaignWorkers(b *testing.B) {
	bin := buildWorkload(b, "HPCCG", 0, false)
	const n = 64
	for _, w := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := (&Campaign{App: bin, N: n, Model: SingleBit, Seed: 1, Workers: w}).Run()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Injections) != n {
					b.Fatalf("%d injections", len(res.Injections))
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkCampaignWorkersTracked is the same sweep with the §2 taint
// tracker attached — the heaviest per-trial configuration, where the
// pool pays off most.
func BenchmarkCampaignWorkersTracked(b *testing.B) {
	bin := buildWorkload(b, "HPCCG", 0, false)
	const n = 32
	for _, w := range []int{1, 0} {
		name := "workers=1"
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := (&Campaign{App: bin, N: n, Model: SingleBit, Seed: 1,
					TrackPropagation: true, Workers: w}).Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkCampaignWarmStart is the headline warm-start comparison:
// the identical campaign run cold (every trial replays the golden
// prefix from _start) and warm (trials clone the nearest golden
// snapshot), at the default cadence. Warm must be measurably faster;
// the computed CampaignResult is bit-identical either way. ReportAllocs
// doubles as the per-trial allocation guard (run with -benchmem).
func BenchmarkCampaignWarmStart(b *testing.B) {
	bin := buildWorkload(b, "HPCCG", 0, false)
	const n = 64
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := (&Campaign{
					App: bin, N: n, Model: SingleBit, Seed: 1, WarmStart: warm,
				}).Run()
				if err != nil {
					b.Fatal(err)
				}
				if warm && res.WarmStart.SkippedDyn == 0 {
					b.Fatal("warm campaign skipped nothing")
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkCampaignStoreHit is the artifact-store headline: the same
// warm-start campaign run cold (the golden run executes and captures
// its snapshot cadence every iteration) and against a pre-populated
// content-addressed store, where Prepare is a pure cache hit that
// loads the verified profile instead of executing the golden run. The
// computed CampaignResult is bit-identical either way (pinned by
// TestCampaignStoreCacheHit); only the preparation cost differs. The
// workload runs a longer CG solve (Steps 160) than the default test size — the
// store trades verified page reads for golden-run execution, so its
// win scales with golden-run length (the paper's golden runs are
// minutes, not milliseconds).
func BenchmarkCampaignStoreHit(b *testing.B) {
	w, err := workloads.Get("HPCCG")
	if err != nil {
		b.Fatal(err)
	}
	p := workloads.Params{Steps: 160}
	bin, err := core.Build(w.Module(p), core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const n = 8
	key := store.Key{Kind: "campaign", Workload: "HPCCG", Params: `{"Steps":160}`, Seed: 1}
	dir := b.TempDir()
	seedStore, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	// Populate the entry once, outside the timed region.
	warm := &Campaign{App: bin, N: n, Model: SingleBit, Seed: 1, WarmStart: true,
		Store: seedStore, StoreKey: key}
	if _, err := warm.Prepare(); err != nil {
		b.Fatal(err)
	}
	for _, hit := range []bool{false, true} {
		name := "cold"
		if hit {
			name = "hit"
		}
		b.Run(name, func(b *testing.B) {
			st, err := store.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				c := &Campaign{App: bin, N: n, Model: SingleBit, Seed: 1, WarmStart: true}
				if hit {
					c.Store, c.StoreKey = st, key
				}
				res, err := c.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.WarmStart == nil || res.WarmStart.Snapshots == 0 {
					b.Fatal("campaign lost its snapshots")
				}
			}
			if hit {
				if got := st.Counter(store.CounterGoldenHits); got != int64(b.N) {
					b.Fatalf("golden-hits = %d, want %d", got, b.N)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkCoverageWorkers measures the §5 coverage experiment under
// the chunked speculative pool.
func BenchmarkCoverageWorkers(b *testing.B) {
	bin := buildWorkload(b, "HPCCG", 0, true)
	for _, w := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := (&CoverageExperiment{App: bin, Trials: 20, Seed: 1, Workers: w}).Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Attempts)/b.Elapsed().Seconds(), "attempts/s")
			}
		})
	}
}
