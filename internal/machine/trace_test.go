package machine

import (
	"strings"
	"testing"

	"care/internal/trace"
)

func TestTrapEmitsTraceSpan(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 42},
		{Op: MLoad, Rd: R2, Base: R1, Index: NoReg}, // load from unmapped 42
		{Op: MHalt},
	})
	cpu.Trace = trace.New(16)
	if st := cpu.Run(10); st != StatusTrapped {
		t.Fatalf("status %v", st)
	}
	spans := cpu.Trace.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d trap spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Kind != trace.KindTrap || s.Outcome != "SIGSEGV" {
		t.Fatalf("trap span %+v", s)
	}
	if s.Addr != 42 || s.PC != cpu.PendingTrap.PC {
		t.Fatalf("trap span location %+v vs trap %+v", s, cpu.PendingTrap)
	}
	if s.StartDyn != cpu.Dyn || s.EndDyn != cpu.Dyn {
		t.Fatalf("trap stamp not on the virtual clock: %+v dyn=%d", s, cpu.Dyn)
	}
}

func TestTrapSpanPrecedesHandler(t *testing.T) {
	// The stamp is emitted before the handler runs, so even recovered
	// traps leave a trace record.
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 42},
		{Op: MLoad, Rd: R2, Base: R1, Index: NoReg},
		{Op: MHalt, Ra: R2},
	})
	cpu.Trace = trace.New(16)
	cpu.Handler = func(c *CPU, tr *Trap) TrapAction {
		c.PC += 8 // skip the faulting load
		c.R[R2] = 7
		return TrapResume
	}
	if st := cpu.Run(10); st != StatusExited || cpu.ExitCode != 7 {
		t.Fatalf("status %v exit %d", st, cpu.ExitCode)
	}
	if cpu.Trace.Len() != 1 {
		t.Fatalf("recovered trap left %d spans, want 1", cpu.Trace.Len())
	}
}

func TestStepWithNilTraceDoesNotAllocate(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 1},
		{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 1},
		{Op: MJmp, Target: AppCodeBase + 8},
	})
	cpu.Run(64) // warm the image cache
	cpu.Status = StatusRunning
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			cpu.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("step path allocates %.2f per 64 steps with tracing disabled", allocs)
	}
}

func TestRunStatusStringHardened(t *testing.T) {
	if StatusTrapped.String() != "trapped" {
		t.Fatalf("StatusTrapped renders as %q", StatusTrapped)
	}
	if got := RunStatus(99).String(); got != "unknown(99)" {
		t.Fatalf("out-of-range status renders as %q", got)
	}
}

func TestCondStringHardened(t *testing.T) {
	if CondLE.String() != "le" {
		t.Fatalf("CondLE renders as %q", CondLE)
	}
	if got := Cond(42).String(); !strings.HasPrefix(got, "unknown(") {
		t.Fatalf("out-of-range cond renders as %q", got)
	}
}

func BenchmarkStepTraceOff(b *testing.B) {
	cpu := benchLoopCPU(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Step()
	}
}

func BenchmarkStepTraceOn(b *testing.B) {
	cpu := benchLoopCPU(b)
	cpu.Trace = trace.New(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Step()
	}
}

func benchLoopCPU(b *testing.B) *CPU {
	b.Helper()
	p := &Program{
		Name:     "bench-loop",
		CodeBase: AppCodeBase,
		Code: []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 0},
			{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 1},
			{Op: MJmp, Target: AppCodeBase + 8},
		},
		Funcs: []FuncSym{{Name: "_start", Entry: 0}},
	}
	mem := NewMemory()
	img, err := Load(mem, p)
	if err != nil {
		b.Fatal(err)
	}
	cpu := NewCPU(mem, nil)
	cpu.Attach(img)
	if err := cpu.InitStack(); err != nil {
		b.Fatal(err)
	}
	if err := cpu.Start(img, "_start"); err != nil {
		b.Fatal(err)
	}
	cpu.Run(16)
	cpu.Status = StatusRunning
	return cpu
}
