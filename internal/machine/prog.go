package machine

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"care/internal/debuginfo"
)

// FuncSym is a function symbol: name plus entry code index.
type FuncSym struct {
	Name  string
	Entry int
}

// GlobalSym describes a global in the image's data segment. Extern
// globals live in another image; their absolute address was baked in at
// compile time (the images are prelinked), so they occupy no space here.
type GlobalSym struct {
	Name   string
	Off    Word // offset within the image's global segment
	Size   Word
	Extern bool
	Addr   Word // absolute address (base+off, or the extern target)
}

// Program is a compiled image: machine code, an initial data segment,
// symbol tables and debug information. Programs are position-dependent:
// CodeBase/GlobalBase were fixed at compile time.
type Program struct {
	Name       string
	CodeBase   Word
	GlobalBase Word
	Code       []MInstr
	Funcs      []FuncSym
	GlobalInit []byte
	Globals    []GlobalSym
	Debug      *debuginfo.Info
	// OptLevel records the optimisation level the image was built with.
	OptLevel int
}

// EndAddr returns one past the last code address.
func (p *Program) EndAddr() Word { return p.CodeBase + Word(8*len(p.Code)) }

// AddrOf returns the absolute address of code index idx.
func (p *Program) AddrOf(idx int) Word { return p.CodeBase + Word(8*idx) }

// IndexOf returns the code index of an absolute address within this
// program, or -1.
func (p *Program) IndexOf(addr Word) int {
	if addr < p.CodeBase || addr >= p.EndAddr() || (addr-p.CodeBase)%8 != 0 {
		return -1
	}
	return int((addr - p.CodeBase) / 8)
}

// FuncEntry returns the absolute entry address of a named function.
func (p *Program) FuncEntry(name string) (Word, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return p.AddrOf(f.Entry), true
		}
	}
	return 0, false
}

// GlobalAddr returns the absolute address of a named global.
func (p *Program) GlobalAddr(name string) (Word, bool) {
	for _, g := range p.Globals {
		if g.Name == name {
			return g.Addr, true
		}
	}
	return 0, false
}

// Encode serialises the program (the "shared object file" of the
// reproduction — recovery libraries are shipped and lazily loaded in
// this form).
func (p *Program) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("machine: encode program: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeProgram deserialises a program image.
func DecodeProgram(b []byte) (*Program, error) {
	var p Program
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("machine: decode program: %w", err)
	}
	return &p, nil
}

// Image is a program mapped into a process: its code range responds to
// instruction fetches and its globals occupy a data segment.
type Image struct {
	Prog      *Program
	GlobalSeg *Segment
}

// Base returns the image's code base address.
func (im *Image) Base() Word { return im.Prog.CodeBase }

// End returns one past the image's last code address.
func (im *Image) End() Word { return im.Prog.EndAddr() }

// Contains reports whether the absolute address is inside this image's
// code — the dladdr() analogue Safeguard uses to attribute a faulting
// PC to the right image (and thus line table).
func (im *Image) Contains(pc Word) bool { return pc >= im.Base() && pc < im.End() }

// Load maps a program into memory: its globals segment is created and
// initialised. The returned Image can be attached to a CPU.
func Load(mem *Memory, p *Program) (*Image, error) {
	im := &Image{Prog: p}
	if len(p.GlobalInit) > 0 {
		seg, err := mem.Map(p.GlobalBase, len(p.GlobalInit), p.Name+".data")
		if err != nil {
			return nil, err
		}
		copy(seg.Data, p.GlobalInit)
		im.GlobalSeg = seg
	}
	return im, nil
}

// Unload removes the image's data segment from memory (the dlclose
// analogue; Safeguard unloads the recovery library after each repair to
// keep the steady-state footprint fixed).
func (im *Image) Unload(mem *Memory) {
	if im.GlobalSeg != nil {
		mem.Unmap(im.GlobalSeg)
		im.GlobalSeg = nil
	}
}
