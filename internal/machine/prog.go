package machine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"

	"care/internal/debuginfo"
)

// FuncSym is a function symbol: name plus entry code index.
type FuncSym struct {
	Name  string
	Entry int
}

// GlobalSym describes a global in the image's data segment. Extern
// globals live in another image; their absolute address was baked in at
// compile time (the images are prelinked), so they occupy no space here.
type GlobalSym struct {
	Name   string
	Off    Word // offset within the image's global segment
	Size   Word
	Extern bool
	Addr   Word // absolute address (base+off, or the extern target)
}

// Program is a compiled image: machine code, an initial data segment,
// symbol tables and debug information. Programs are position-dependent:
// CodeBase/GlobalBase were fixed at compile time.
type Program struct {
	Name       string
	CodeBase   Word
	GlobalBase Word
	Code       []MInstr
	Funcs      []FuncSym
	GlobalInit []byte
	Globals    []GlobalSym
	Debug      *debuginfo.Info
	// OptLevel records the optimisation level the image was built with.
	OptLevel int

	// codeBytes is the packed byte image of Code, built once by
	// SealCode and shared read-only by every process that loads this
	// program. It is unexported (and so outside the gob encoding): the
	// compiler seals programs it emits and DecodeProgram seals decoded
	// ones, both before any concurrent use.
	codeBytes []byte

	// ublocks is the predecoded µop plan built lazily (and once) by
	// plan(); like codeBytes it is unexported, outside the gob encoding,
	// and shared read-only by every process executing this program.
	planOnce sync.Once
	ublocks  *blockPlan
}

// EndAddr returns one past the last code address.
func (p *Program) EndAddr() Word { return p.CodeBase + Word(8*len(p.Code)) }

// AddrOf returns the absolute address of code index idx.
func (p *Program) AddrOf(idx int) Word { return p.CodeBase + Word(8*idx) }

// IndexOf returns the code index of an absolute address within this
// program, or -1.
func (p *Program) IndexOf(addr Word) int {
	if addr < p.CodeBase || addr >= p.EndAddr() || (addr-p.CodeBase)%8 != 0 {
		return -1
	}
	return int((addr - p.CodeBase) / 8)
}

// FuncEntry returns the absolute entry address of a named function.
func (p *Program) FuncEntry(name string) (Word, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return p.AddrOf(f.Entry), true
		}
	}
	return 0, false
}

// GlobalAddr returns the absolute address of a named global.
func (p *Program) GlobalAddr(name string) (Word, bool) {
	for _, g := range p.Globals {
		if g.Name == name {
			return g.Addr, true
		}
	}
	return 0, false
}

// Encode serialises the program (the "shared object file" of the
// reproduction — recovery libraries are shipped and lazily loaded in
// this form).
func (p *Program) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("machine: encode program: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeProgram deserialises a program image.
func DecodeProgram(b []byte) (*Program, error) {
	var p Program
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("machine: decode program: %w", err)
	}
	p.SealCode()
	return &p, nil
}

// packCode renders the instruction stream as the canonical 8-byte
// encoding backing the image's .text segment (opcode and register
// operands in the high bytes, the low immediate bits below). The exact
// packing only matters in that it is deterministic: data loads that
// stray into code read these bytes, and stores to them fault.
func packCode(code []MInstr) []byte {
	b := make([]byte, 8*len(code))
	for i := range code {
		in := &code[i]
		w := uint64(in.Op)<<56 | uint64(in.Rd)<<48 | uint64(in.Ra)<<40 |
			uint64(in.Rb)<<32 | uint64(uint32(in.Imm))
		binary.LittleEndian.PutUint64(b[8*i:], w)
	}
	return b
}

// SealCode builds the program's packed code image so that every Load
// shares one read-only backing array. It must be called before the
// program is loaded concurrently (the compiler and DecodeProgram both
// seal); Load of an unsealed program falls back to a private packing.
func (p *Program) SealCode() {
	if p.codeBytes == nil && len(p.Code) > 0 {
		p.codeBytes = packCode(p.Code)
	}
}

// CodeImage returns the program's packed code image, sealing it first
// if needed. The bytes are the canonical content of the binary's .text
// segment — what the content-addressed store dedups sealed code by —
// and must be treated as read-only (they back every live mapping).
func (p *Program) CodeImage() []byte {
	p.SealCode()
	return p.codeBytes
}

// Image is a program mapped into a process: its code range responds to
// instruction fetches and its globals occupy a data segment.
type Image struct {
	Prog      *Program
	GlobalSeg *Segment
	// CodeSeg is the read-only .text mapping (stores to it fault).
	CodeSeg *Segment
}

// Base returns the image's code base address.
func (im *Image) Base() Word { return im.Prog.CodeBase }

// End returns one past the image's last code address.
func (im *Image) End() Word { return im.Prog.EndAddr() }

// Contains reports whether the absolute address is inside this image's
// code — the dladdr() analogue Safeguard uses to attribute a faulting
// PC to the right image (and thus line table).
func (im *Image) Contains(pc Word) bool { return pc >= im.Base() && pc < im.End() }

// Load maps a program into memory without copying its image: the code
// range becomes a read-only .text segment aliasing the program's sealed
// byte image (shared by every process of the binary; stores to it
// fault), and the globals segment maps the initial data copy-on-write,
// materialising a private copy only when the process first stores to
// it. The returned Image can be attached to a CPU.
func Load(mem *Memory, p *Program) (*Image, error) {
	im := &Image{Prog: p}
	if len(p.Code) > 0 {
		code := p.codeBytes
		if code == nil {
			// Unsealed (hand-assembled test programs): pack privately
			// rather than racing to cache on the shared Program.
			code = packCode(p.Code)
		}
		seg, err := mem.MapShared(p.CodeBase, code, p.Name+".text")
		if err != nil {
			return nil, err
		}
		im.CodeSeg = seg
	}
	if len(p.GlobalInit) > 0 {
		seg, err := mem.MapCOW(p.GlobalBase, p.GlobalInit, p.Name+".data")
		if err != nil {
			if im.CodeSeg != nil {
				mem.Unmap(im.CodeSeg)
			}
			return nil, err
		}
		im.GlobalSeg = seg
	}
	return im, nil
}

// Unload removes the image's segments from memory (the dlclose
// analogue; Safeguard unloads the recovery library after each repair to
// keep the steady-state footprint fixed).
func (im *Image) Unload(mem *Memory) {
	if im.GlobalSeg != nil {
		mem.Unmap(im.GlobalSeg)
		im.GlobalSeg = nil
	}
	if im.CodeSeg != nil {
		mem.Unmap(im.CodeSeg)
		im.CodeSeg = nil
	}
}
