package machine

import (
	"testing"
	"testing/quick"
)

func TestMapOverlapRejected(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map(0x1000, 0x1000, "a"); err != nil {
		t.Fatal(err)
	}
	for _, base := range []Word{0x1000, 0x1800, 0x0800, 0x1ff8} {
		if _, err := m.Map(base, 0x1000, "b"); err == nil {
			t.Errorf("overlap at 0x%x accepted", base)
		}
	}
	if _, err := m.Map(0x2000, 0x1000, "c"); err != nil {
		t.Errorf("adjacent map rejected: %v", err)
	}
}

func TestMapRejectsNonCanonical(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map(1<<49, 0x1000, "high"); err == nil {
		t.Error("non-canonical base accepted")
	}
	if _, err := m.Map(AddrMask-8, 0x1000, "wrap"); err == nil {
		t.Error("range crossing the canonical limit accepted")
	}
	if _, err := m.Map(0x1000, 0, "empty"); err == nil {
		t.Error("empty segment accepted")
	}
}

func TestReadWriteFaults(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map(0x10000, 0x1000, "seg"); err != nil {
		t.Fatal(err)
	}
	// Unmapped -> SIGSEGV.
	if _, f := m.Read(0x9000); f == nil || f.Sig != SigSEGV {
		t.Errorf("unmapped read fault = %v", f)
	}
	if f := m.Write(0x11000, 1); f == nil || f.Sig != SigSEGV {
		t.Errorf("past-end write fault = %v", f)
	}
	// Straddling the end -> SIGSEGV.
	if _, f := m.Read(0x10ffc); f == nil || f.Sig != SigSEGV {
		t.Errorf("straddling read fault = %v", f)
	}
	// Misaligned but mapped -> SIGBUS.
	if _, f := m.Read(0x10004); f == nil || f.Sig != SigBUS {
		t.Errorf("misaligned read fault = %v", f)
	}
	// Aligned mapped -> ok.
	if f := m.Write(0x10008, 0xdead); f != nil {
		t.Fatalf("valid write faulted: %v", f)
	}
	if v, f := m.Read(0x10008); f != nil || v != 0xdead {
		t.Fatalf("read back %x, %v", v, f)
	}
}

// TestMemoryReadWriteProperty: any aligned word written within a mapped
// segment reads back identically; float round-trips preserve bits.
func TestMemoryReadWriteProperty(t *testing.T) {
	m := NewMemory()
	const base, size = 0x40000, 1 << 14
	if _, err := m.Map(base, size, "prop"); err != nil {
		t.Fatal(err)
	}
	prop := func(off uint16, v Word) bool {
		addr := base + Word(off)*8%size
		if f := m.Write(addr, v); f != nil {
			return false
		}
		got, f := m.Read(addr)
		return f == nil && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	fprop := func(off uint16, v float64) bool {
		addr := base + Word(off)*8%size
		if f := m.WriteFloat(addr, v); f != nil {
			return false
		}
		got, f := m.ReadFloat(addr)
		if f != nil {
			return false
		}
		// NaN payloads must round-trip bit-exactly.
		w1, _ := m.Read(addr)
		if e := m.WriteFloat(addr, got); e != nil {
			return false
		}
		w2, _ := m.Read(addr)
		return w1 == w2
	}
	if err := quick.Check(fprop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocGuardGaps(t *testing.T) {
	m := NewMemory()
	a, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatal("heap not growing")
	}
	if b-a < 64+HeapGuard {
		t.Errorf("allocations too close: gap %d", b-a)
	}
	// The gap must be unmapped.
	if _, f := m.Read(a + 64); f == nil || f.Sig != SigSEGV {
		t.Error("guard gap is mapped")
	}
}

func TestUnmapRemovesSegment(t *testing.T) {
	m := NewMemory()
	s, err := m.Map(0x50000, 0x1000, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	if f := m.Write(0x50000, 1); f != nil {
		t.Fatal(f)
	}
	m.Unmap(s)
	if _, f := m.Read(0x50000); f == nil {
		t.Fatal("read from unmapped segment succeeded")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := NewMemory()
	if _, err := m.Alloc(256); err != nil {
		t.Fatal(err)
	}
	a, _ := m.Alloc(128)
	for i := Word(0); i < 16; i++ {
		if f := m.Write(a+8*i, i*i); f != nil {
			t.Fatal(f)
		}
	}
	sn := m.Snapshot()
	// Mutate after the snapshot.
	for i := Word(0); i < 16; i++ {
		_ = m.Write(a+8*i, 0xffff)
	}
	b, _ := m.Alloc(64) // new segment after snapshot
	_ = b
	m.Restore(sn)
	for i := Word(0); i < 16; i++ {
		v, f := m.Read(a + 8*i)
		if f != nil || v != i*i {
			t.Fatalf("restored word %d = %x (%v)", i, v, f)
		}
	}
	// The post-snapshot segment must be gone.
	if _, f := m.Read(b); f == nil {
		t.Error("post-snapshot segment survived restore")
	}
	// And the heap pointer rolled back: the next Alloc reuses b's spot.
	c, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Errorf("heap pointer not restored: got 0x%x want 0x%x", c, b)
	}
	if sn.Bytes() <= 0 {
		t.Error("snapshot reports no size")
	}
}

func TestFindCacheCoherent(t *testing.T) {
	m := NewMemory()
	s1, _ := m.Map(0x10000, 0x1000, "s1")
	_, _ = m.Map(0x20000, 0x1000, "s2")
	if m.Find(0x10800) != s1 {
		t.Fatal("find miss")
	}
	// The cached segment must not shadow lookups elsewhere.
	if got := m.Find(0x20000); got == nil || got.Name != "s2" {
		t.Fatal("cache shadowed another segment")
	}
	m.Unmap(s1)
	if m.Find(0x10800) != nil {
		t.Fatal("stale cache after unmap")
	}
}
