package machine

import (
	"testing"

	"care/internal/debuginfo"
	"care/internal/hostenv"
)

// benchLoop assembles a tight counted loop touching memory: the
// steady-state instruction mix of the simulated machine.
func benchLoop(tb testing.TB, n int64) *CPU {
	tb.Helper()
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0},                                // i
		{Op: MMovImm, Rd: R4, Imm: 0x30000},                          // base
		{Op: MLoad, Rd: R2, Base: R4, Index: R1, Scale: 8, Disp: 0},  // idx 2
		{Op: MAdd, Rd: R2, Ra: R2, UseImm: true, Imm: 3},             //
		{Op: MStore, Base: R4, Index: R1, Scale: 8, Disp: 0, Ra: R2}, //
		{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 1},             //
		{Op: MAnd, Rd: R1, Ra: R1, UseImm: true, Imm: 255},           // wrap
		{Op: MSet, Cond: CondLT, Rd: R3, Ra: R1, Rb: R5},             //
		{Op: MJnz, Ra: R3, Target: AppCodeBase + 8*2},                //
		{Op: MHalt, Ra: R1},
	}
	p := &Program{Name: "bench", CodeBase: AppCodeBase, Code: code,
		Funcs: []FuncSym{{Name: "_start", Entry: 0}}, Debug: debuginfo.New()}
	mem := NewMemory()
	img, err := Load(mem, p)
	if err != nil {
		tb.Fatal(err)
	}
	cpu := NewCPU(mem, hostenv.NewEnv())
	cpu.Attach(img)
	if err := cpu.InitStack(); err != nil {
		tb.Fatal(err)
	}
	if _, err := mem.Map(0x30000, 256*8, "data"); err != nil {
		tb.Fatal(err)
	}
	if err := cpu.Start(img, "_start"); err != nil {
		tb.Fatal(err)
	}
	cpu.R[R5] = Word(n) // loop bound (never reached; And wraps)
	return cpu
}

// BenchmarkCPUStepThroughput measures the interpreter's steady-state
// instructions/second — the constant behind every campaign's runtime —
// on all three tiers: the fused superblock engine (the default), the
// per-µop block engine, and the legacy per-instruction Step loop the
// fast tiers deoptimize to under hooks.
func BenchmarkCPUStepThroughput(b *testing.B) {
	for _, tier := range Tiers() {
		b.Run(tier.String(), func(b *testing.B) {
			cpu := benchLoop(b, 1<<62)
			cpu.Tier = tier
			b.ResetTimer()
			cpu.Run(uint64(b.N))
			b.StopTimer()
			if cpu.Status == StatusTrapped {
				b.Fatalf("trap: %v", cpu.PendingTrap)
			}
			b.ReportMetric(float64(cpu.Dyn)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkMemoryAccess measures the segmented-memory fast path.
func BenchmarkMemoryAccess(b *testing.B) {
	m := NewMemory()
	if _, err := m.Map(0x40000, 1<<16, "seg"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := Word(0x40000 + (i*8)&(1<<16-8))
		if f := m.Write(addr, Word(i)); f != nil {
			b.Fatal(f)
		}
		if _, f := m.Read(addr); f != nil {
			b.Fatal(f)
		}
	}
}

// BenchmarkSnapshotRestore measures the checkpoint substrate's copy cost.
func BenchmarkSnapshotRestore(b *testing.B) {
	m := NewMemory()
	for i := 0; i < 8; i++ {
		if _, err := m.Alloc(1 << 16); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := m.Snapshot()
		m.Restore(sn)
	}
	b.ReportMetric(float64(m.MappedBytes()), "bytes")
}
