package machine

import "fmt"

// InterpTier selects which dispatch level Run uses when no step hooks
// are installed. The zero value is the fastest tier, so fresh CPUs and
// zero-valued configs get the default engine; every tier is
// bit-identical in results (the differential suites and the CI smokes
// enforce it), so the knob exists for that check and for timing
// comparisons.
type InterpTier uint8

const (
	// TierSuperblock (the default) runs the fused engine: fallthrough
	// chains retire under a single budget/Dyn accounting check and
	// branches linked at predecode jump straight to the successor µop.
	TierSuperblock InterpTier = iota
	// TierBlock runs the per-µop block-predecoded loop (one dispatch,
	// one budget charge and one PC update per instruction).
	TierBlock
	// TierStep forces the legacy per-instruction Step loop — the
	// reference semantics every faster tier must reproduce bit for bit.
	TierStep
)

var tierNames = [...]string{"superblock", "block", "step"}

// String renders the tier the way the -interp CLI flags spell it.
func (t InterpTier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("unknown(%d)", uint8(t))
}

// ParseInterpTier parses a -interp flag value.
func ParseInterpTier(s string) (InterpTier, error) {
	for i, n := range tierNames {
		if s == n {
			return InterpTier(i), nil
		}
	}
	return TierSuperblock, fmt.Errorf("machine: unknown interpreter tier %q (want superblock, block or step)", s)
}

// Tiers lists every interpreter tier, fastest first — the order the
// differential tests sweep.
func Tiers() []InterpTier { return []InterpTier{TierSuperblock, TierBlock, TierStep} }
