//go:build !(amd64 || arm64)

package machine

import "encoding/binary"

// Portable little-endian accessors for hosts where the unsafe
// single-move form is not known to be safe (alignment or byte order).
func leLoad(b []byte, off Word) Word {
	return binary.LittleEndian.Uint64(b[off:])
}

func leStore(b []byte, off, v Word) {
	binary.LittleEndian.PutUint64(b[off:], v)
}
