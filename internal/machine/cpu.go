package machine

import (
	"errors"
	"fmt"
	"math"

	"care/internal/hostenv"
	"care/internal/trace"
)

// RunStatus reports why the CPU stopped.
type RunStatus uint8

// Run statuses.
const (
	// StatusRunning: the CPU can still step.
	StatusRunning RunStatus = iota
	// StatusExited: the program called exit/halt; ExitCode is valid.
	StatusExited
	// StatusTrapped: an unhandled (or handler-killed) trap occurred;
	// PendingTrap is valid. The process is dead.
	StatusTrapped
	// StatusBlocked: a collective host call is waiting on other ranks.
	StatusBlocked
	// StatusLimit: the step budget given to Run was exhausted.
	StatusLimit
)

var runStatusNames = [...]string{"running", "exited", "trapped", "blocked", "limit"}

// String renders the status; out-of-range values render as
// "unknown(N)" instead of panicking.
func (s RunStatus) String() string {
	if int(s) < len(runStatusNames) {
		return runStatusNames[s]
	}
	return fmt.Sprintf("unknown(%d)", uint8(s))
}

// Trap describes a fault delivered to the process.
type Trap struct {
	Sig   Signal
	PC    Word
	Addr  Word // faulting data address (SEGV/BUS)
	Img   *Image
	Idx   int // code index within Img
	Instr *MInstr
}

// Error implements error.
func (t *Trap) Error() string {
	return fmt.Sprintf("%s: pc=0x%x addr=0x%x", t.Sig, t.PC, t.Addr)
}

// TrapAction is a trap handler's verdict.
type TrapAction uint8

// Trap actions.
const (
	// TrapKill terminates the process (default signal disposition).
	TrapKill TrapAction = iota
	// TrapResume re-executes the faulting instruction with the (possibly
	// patched) context.
	TrapResume
)

// TrapHandler is the software signal handler hook; Safeguard installs
// one. The handler may mutate the CPU's registers and memory.
type TrapHandler func(c *CPU, t *Trap) TrapAction

// StepHook is invoked right after an instruction retires; the fault
// injector uses it to corrupt destination operands "right after the
// instruction is executed" (paper §2.1.1).
type StepHook func(c *CPU, img *Image, idx int, in *MInstr)

// CPU is one simulated hardware thread plus its process context
// (images, memory, host environment).
type CPU struct {
	Mem *Memory
	Env *hostenv.Env

	R [NumReg]Word
	F [NumFReg]float64

	PC     Word
	Images []*Image
	cur    *Image

	// Dyn counts retired dynamic instructions.
	Dyn uint64
	// ExitCode is valid after StatusExited.
	ExitCode Word

	// Handler, when non-nil, receives traps before they kill the
	// process.
	Handler TrapHandler

	// Profile enables per-static-instruction execution counting.
	Profile bool
	// Counts[img][idx] is the execution count of static instruction idx
	// of image img (populated when Profile is set).
	Counts map[*Image][]uint64

	// BeforeStep, when non-nil, runs before an instruction executes
	// (registers still hold the operand values the instruction will
	// read). Taint tracking uses it to apply propagation rules.
	BeforeStep StepHook
	// AfterStep, when non-nil, runs after every retired instruction.
	AfterStep StepHook
	// afterHooks are additional retire hooks installed with
	// AddAfterStep; they run after AfterStep, in installation order.
	// Removed hooks leave nil slots so installation order is stable.
	afterHooks []StepHook

	// StopPC, when StopPCSet, exits the CPU cleanly when control
	// reaches that address. Safeguard uses it as the return-address
	// sentinel when calling a recovery kernel (the libffi analogue).
	StopPC    Word
	StopPCSet bool

	// Status is the current run status.
	Status RunStatus
	// PendingTrap is the fatal trap after StatusTrapped.
	PendingTrap *Trap

	// Trace, when non-nil, receives a KindTrap stamp for every trap the
	// CPU delivers (before any handler runs). It is nil by default so
	// the step path pays nothing when tracing is off.
	Trace *trace.Recorder

	// Tier selects the interpreter loop Run uses when no hooks are
	// installed: the fused superblock engine (the zero-value default),
	// the per-µop block engine, or the legacy Step loop. Campaigns
	// expose it (-interp) so the faster tiers' bit-identity can be
	// checked end to end; results must not depend on it.
	Tier InterpTier

	// afterLive counts the non-nil entries of afterHooks, so Run's
	// block-engine eligibility check is O(1) instead of scanning the
	// (append-only, nil-holed) hook slice every iteration.
	afterLive int

	// ics holds this CPU's per-image memory inline caches (one slot
	// per memory µop of the image's plan). Strictly per-CPU: plans are
	// shared across processes, cache contents must not be.
	ics map[*Image][]icEntry
	// stackIC is the dedicated stack-segment inline cache shared by
	// every stack-traffic µop (call/ret/push/pop): SP stays inside one
	// segment for essentially a whole run, so one slot per CPU hits
	// where per-µop slots would each warm separately. Validated by the
	// same Memory generation check as the per-µop slots, so Unmap and
	// snapshot Restore invalidate it identically.
	stackIC icEntry
	// curPlan/curICs/curCounts cache the current image's derived state
	// (µop plan, inline-cache slots, profile counts slice) so the hot
	// loops pay the map lookups only on image switch. Invalidated by
	// setCur.
	curPlan   *blockPlan
	curICs    []icEntry
	curCounts []uint64

	hostArgBuf [8]Word
}

// AddAfterStep installs an additional retire hook without disturbing
// AfterStep or previously-installed hooks, and returns a function that
// removes exactly this hook. Several subsystems observe retirement at
// once (fault injectors arming independent faults, the checkpoint
// cadence, tracers), so hooks must compose rather than overwrite each
// other.
func (c *CPU) AddAfterStep(h StepHook) (remove func()) {
	c.afterHooks = append(c.afterHooks, h)
	c.afterLive++
	i := len(c.afterHooks) - 1
	return func() {
		if c.afterHooks[i] != nil {
			c.afterHooks[i] = nil
			c.afterLive--
		}
	}
}

// Context is the architectural state a trap handler may capture and
// later restore to roll the CPU back to an earlier point of its
// trap loop (registers, program counter, retired-instruction count).
// Memory is deliberately not part of a Context; pair it with a
// Memory.Snapshot for a full checkpoint.
type Context struct {
	R   [NumReg]Word
	F   [NumFReg]float64
	PC  Word
	Dyn uint64
}

// Context captures the CPU's architectural state.
func (c *CPU) Context() Context {
	return Context{R: c.R, F: c.F, PC: c.PC, Dyn: c.Dyn}
}

// SetContext restores architectural state captured by Context and
// re-arms the trap loop: the pending trap (if any) is discarded, the
// run status returns to StatusRunning, and the current-image cache is
// invalidated so the next Step refetches from the restored PC. A trap
// handler that calls SetContext and returns TrapResume resumes
// execution at the restored PC instead of re-executing the faulting
// instruction.
func (c *CPU) SetContext(ctx Context) {
	c.R = ctx.R
	c.F = ctx.F
	c.PC = ctx.PC
	c.Dyn = ctx.Dyn
	c.Status = StatusRunning
	c.PendingTrap = nil
	c.setCur(nil)
}

// NewCPU creates a CPU over the given memory and host environment.
func NewCPU(mem *Memory, env *hostenv.Env) *CPU {
	if env == nil {
		env = hostenv.NewEnv()
	}
	return &CPU{Mem: mem, Env: env, Status: StatusRunning}
}

// Attach adds a loaded image to the process.
func (c *CPU) Attach(im *Image) { c.Images = append(c.Images, im) }

// Detach removes an image (dlclose).
func (c *CPU) Detach(im *Image) {
	for i, x := range c.Images {
		if x == im {
			c.Images = append(c.Images[:i], c.Images[i+1:]...)
			break
		}
	}
	if c.cur == im {
		c.setCur(nil)
	}
	delete(c.ics, im)
}

// FindImage returns the image whose code contains pc (dladdr).
func (c *CPU) FindImage(pc Word) *Image {
	for _, im := range c.Images {
		if im.Contains(pc) {
			return im
		}
	}
	return nil
}

// InitStack maps the main stack and points SP at its top.
func (c *CPU) InitStack() error {
	_, err := c.Mem.Map(StackTop-DefaultStackSize, DefaultStackSize, "stack")
	if err != nil {
		return err
	}
	c.R[SP] = StackTop
	c.R[FP] = StackTop
	return nil
}

// Start positions the CPU at the named function of the image (normally
// "_start" of the main executable).
func (c *CPU) Start(im *Image, fn string) error {
	entry, ok := im.Prog.FuncEntry(fn)
	if !ok {
		return fmt.Errorf("machine: no function %q in %s", fn, im.Prog.Name)
	}
	c.PC = entry
	c.Status = StatusRunning
	return nil
}

func (c *CPU) trap(t *Trap) {
	if c.Trace != nil {
		c.Trace.Emit(trace.Span{
			Kind: trace.KindTrap, Parent: trace.NoParent,
			StartDyn: c.Dyn, EndDyn: c.Dyn,
			PC: t.PC, Addr: t.Addr, Outcome: t.Sig.String(),
		})
	}
	if c.Handler != nil {
		if c.Handler(c, t) == TrapResume {
			return // retry same PC
		}
	}
	c.Status = StatusTrapped
	c.PendingTrap = t
}

// Step executes one instruction. It updates Status; callers loop on
// StatusRunning.
func (c *CPU) Step() {
	img := c.cur
	if img == nil || !img.Contains(c.PC) {
		img = c.FindImage(c.PC)
		if img == nil {
			c.trap(&Trap{Sig: SigILL, PC: c.PC})
			return
		}
		c.setCur(img)
	}
	idx := int((c.PC - img.Base()) >> 3)
	in := &img.Prog.Code[idx]
	if c.BeforeStep != nil {
		c.BeforeStep(c, img, idx, in)
	}
	nextPC := c.PC + 8

	// src2 is the second ALU operand (Rb or the immediate), fetched up
	// front as a plain value: the ALU cases are the hottest in the
	// dispatch and a per-instruction closure cost an indirect call on
	// every one of them. The Rb bound check keeps instructions that
	// leave Rb at NoReg from indexing out of the register file.
	var src2 Word
	if in.UseImm {
		src2 = Word(in.Imm)
	} else if in.Rb < NumReg {
		src2 = c.R[in.Rb]
	}

	switch in.Op {
	case MNop:
	case MMovImm:
		c.R[in.Rd] = Word(in.Imm)
	case MMov:
		c.R[in.Rd] = c.R[in.Ra]
	case MAdd:
		c.R[in.Rd] = c.R[in.Ra] + src2
	case MSub:
		c.R[in.Rd] = c.R[in.Ra] - src2
	case MMul:
		c.R[in.Rd] = Word(int64(c.R[in.Ra]) * int64(src2))
	case MDiv:
		d := int64(src2)
		n := int64(c.R[in.Ra])
		if d == 0 || (n == math.MinInt64 && d == -1) {
			c.trap(&Trap{Sig: SigFPE, PC: c.PC, Img: img, Idx: idx, Instr: in})
			return
		}
		c.R[in.Rd] = Word(n / d)
	case MRem:
		d := int64(src2)
		n := int64(c.R[in.Ra])
		if d == 0 || (n == math.MinInt64 && d == -1) {
			c.trap(&Trap{Sig: SigFPE, PC: c.PC, Img: img, Idx: idx, Instr: in})
			return
		}
		c.R[in.Rd] = Word(n % d)
	case MAnd:
		c.R[in.Rd] = c.R[in.Ra] & src2
	case MOr:
		c.R[in.Rd] = c.R[in.Ra] | src2
	case MXor:
		c.R[in.Rd] = c.R[in.Ra] ^ src2
	case MShl:
		c.R[in.Rd] = c.R[in.Ra] << (src2 & 63)
	case MShr:
		c.R[in.Rd] = Word(int64(c.R[in.Ra]) >> (src2 & 63))
	case MFMovImm:
		c.F[in.Fd] = math.Float64frombits(Word(in.Imm))
	case MFMov:
		c.F[in.Fd] = c.F[in.Fa]
	case MFAdd:
		c.F[in.Fd] = c.F[in.Fa] + c.F[in.Fb]
	case MFSub:
		c.F[in.Fd] = c.F[in.Fa] - c.F[in.Fb]
	case MFMul:
		c.F[in.Fd] = c.F[in.Fa] * c.F[in.Fb]
	case MFDiv:
		c.F[in.Fd] = c.F[in.Fa] / c.F[in.Fb]
	case MCvtIF:
		c.F[in.Fd] = float64(int64(c.R[in.Ra]))
	case MCvtFI:
		c.R[in.Rd] = Word(int64(c.F[in.Fa]))
	case MBitIF:
		c.F[in.Fd] = math.Float64frombits(c.R[in.Ra])
	case MBitFI:
		c.R[in.Rd] = math.Float64bits(c.F[in.Fa])
	case MSet:
		a, b := int64(c.R[in.Ra]), int64(src2)
		c.R[in.Rd] = boolWord(cmpInt(in.Cond, a, b))
	case MFSet:
		c.R[in.Rd] = boolWord(cmpFloat(in.Cond, c.F[in.Fa], c.F[in.Fb]))
	case MLea:
		c.R[in.Rd] = in.EffectiveAddr(&c.R)
	case MLoad:
		v, f := c.Mem.Read(in.EffectiveAddr(&c.R))
		if f != nil {
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
		c.R[in.Rd] = v
	case MFLoad:
		v, f := c.Mem.Read(in.EffectiveAddr(&c.R))
		if f != nil {
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
		c.F[in.Fd] = math.Float64frombits(v)
	case MStore:
		if f := c.Mem.Write(in.EffectiveAddr(&c.R), c.R[in.Ra]); f != nil {
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
	case MFStore:
		if f := c.Mem.Write(in.EffectiveAddr(&c.R), math.Float64bits(c.F[in.Fa])); f != nil {
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
	case MJmp:
		nextPC = in.Target
	case MJnz:
		if c.R[in.Ra] != 0 {
			nextPC = in.Target
		}
	case MJz:
		if c.R[in.Ra] == 0 {
			nextPC = in.Target
		}
	case MCall:
		c.R[SP] -= 8
		if f := c.Mem.Write(c.R[SP], nextPC); f != nil {
			c.R[SP] += 8
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
		nextPC = in.Target
	case MRet:
		ra, f := c.Mem.Read(c.R[SP])
		if f != nil {
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
		c.R[SP] += 8
		nextPC = ra
	case MPush:
		c.R[SP] -= 8
		if f := c.Mem.Write(c.R[SP], c.R[in.Ra]); f != nil {
			c.R[SP] += 8
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
	case MPop:
		v, f := c.Mem.Read(c.R[SP])
		if f != nil {
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
		c.R[SP] += 8
		c.R[in.Rd] = v
	case MFPush:
		c.R[SP] -= 8
		if f := c.Mem.Write(c.R[SP], math.Float64bits(c.F[in.Fa])); f != nil {
			c.R[SP] += 8
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
	case MFPop:
		v, f := c.Mem.Read(c.R[SP])
		if f != nil {
			c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
			return
		}
		c.R[SP] += 8
		c.F[in.Fd] = math.Float64frombits(v)
	case MHost:
		args := c.hostArgBuf[:in.HostArgs]
		for i := 0; i < in.HostArgs; i++ {
			v, f := c.Mem.Read(c.R[SP] + Word(8*(in.HostArgs-1-i)))
			if f != nil {
				c.trap(&Trap{Sig: f.Sig, PC: c.PC, Addr: f.Addr, Img: img, Idx: idx, Instr: in})
				return
			}
			args[i] = v
		}
		res, st, err := c.Env.Call(in.Host, args, c.Mem.HostContext())
		if err != nil {
			sig := SigSEGV
			var addr Word
			var det *hostenv.DetectFault
			if errors.Is(err, hostenv.ErrAbort) {
				sig = SigABRT
			} else if errors.As(err, &det) {
				sig, addr = SigTRAP, det.Addr
			} else if f, ok := err.(*Fault); ok {
				sig = f.Sig
			}
			c.trap(&Trap{Sig: sig, PC: c.PC, Addr: addr, Img: img, Idx: idx, Instr: in})
			return
		}
		switch st {
		case hostenv.Block:
			c.Status = StatusBlocked
			return // PC unchanged; the call re-issues after unblocking
		case hostenv.Exit:
			c.Status = StatusExited
			c.ExitCode = res
			return
		}
		c.R[R0] = res
	case MAbort:
		c.trap(&Trap{Sig: SigABRT, PC: c.PC, Img: img, Idx: idx, Instr: in})
		return
	case MHalt:
		c.Status = StatusExited
		c.ExitCode = c.R[in.Ra]
		return
	default:
		c.trap(&Trap{Sig: SigILL, PC: c.PC, Img: img, Idx: idx, Instr: in})
		return
	}

	c.Dyn++
	if c.Profile {
		cnts := c.curCounts
		if cnts == nil {
			cnts = c.countsFor(img)
			c.curCounts = cnts
		}
		cnts[idx]++
	}
	c.PC = nextPC
	if c.StopPCSet && c.PC == c.StopPC {
		c.Status = StatusExited
		c.ExitCode = c.R[R0]
		return
	}
	if c.AfterStep != nil {
		c.AfterStep(c, img, idx, in)
	}
	for i := 0; i < len(c.afterHooks); i++ {
		if h := c.afterHooks[i]; h != nil {
			h(c, img, idx, in)
		}
	}
}

// Run steps the CPU until it exits, traps, blocks, or retires `limit`
// additional instructions (0 means no limit). It returns the status.
//
// When no step hooks are installed (and Tier is not TierStep), Run
// executes through the predecoded engines — the fused superblock loop
// by default, or the per-µop block loop under TierBlock — which batch
// budget and Dyn accounting and materialise PC lazily; see engine.go.
// The budget is charged per attempted instruction on every tier — a
// trapped-and-resumed instruction consumes budget without retiring —
// so hang classifications and checkpoint cadences are identical
// whichever loop executes. Hook-installation state is re-checked every
// iteration: a trap handler that installs a hook mid-run deopts Run to
// the Step loop at the next block boundary.
func (c *CPU) Run(limit uint64) RunStatus {
	if c.Status == StatusLimit {
		// A budget pause is resumable (schedulers slice with it).
		c.Status = StatusRunning
	}
	var budget uint64 = math.MaxUint64
	if limit > 0 {
		budget = limit
	}
	for c.Status == StatusRunning {
		if budget == 0 {
			c.Status = StatusLimit
			break
		}
		if c.Tier != TierStep && c.BeforeStep == nil && c.AfterStep == nil && c.afterLive == 0 {
			var n uint64
			var punt bool
			if c.Tier == TierBlock {
				n, punt = c.runBlocks(budget)
			} else {
				n, punt = c.runSuper(budget)
			}
			budget -= n
			if !punt {
				continue
			}
			// A µop punted: run exactly one legacy Step for it (host
			// calls, abort/halt, malformed operands), then re-dispatch.
			if budget == 0 {
				c.Status = StatusLimit
				break
			}
		}
		budget--
		c.Step()
	}
	return c.Status
}

// Unblock marks a blocked CPU runnable again (after its collective
// completed).
func (c *CPU) Unblock() {
	if c.Status == StatusBlocked {
		c.Status = StatusRunning
	}
}

func boolWord(b bool) Word {
	if b {
		return 1
	}
	return 0
}

func cmpInt(cond Cond, a, b int64) bool {
	switch cond {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	}
	return false
}

func cmpFloat(cond Cond, a, b float64) bool {
	switch cond {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	}
	return false
}
