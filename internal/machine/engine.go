// Block-predecoded execution engine. Run's hot path no longer
// interprets MInstr records one Step at a time: at first use each
// Program is predecoded into a dense µop array (one µop per
// instruction, so any PC — including a corrupted, misaligned one — maps
// onto it with the same base+offset arithmetic Step uses) with operand
// kinds resolved up front: the src2 immediate-vs-register choice
// becomes two µop opcodes, absent index registers disappear, and the
// rare instructions the fast loop does not carry (host calls,
// abort/halt, malformed operands) become uPunt µops that fall back to
// the legacy Step for exactly one instruction.
//
// The engine preserves Step-loop semantics bit for bit — campaign
// results and trace JSONL must not change:
//
//   - the step budget is charged per attempted instruction (a trapped
//     and resumed instruction consumes budget without retiring),
//   - Dyn counts retirements only, and is materialized before any trap
//     is delivered so handlers and trace stamps see the exact count,
//   - the architectural PC is lazy inside a block but recomputed
//     exactly (preserving misalignment) for every trap, stop, punt and
//     image exit — precise PC→kernel mapping is the point of CARE,
//   - StopPC is compared after every retirement, so mid-block sentinel
//     hits exit on the same dynamic instruction as the Step loop.
//
// Eligibility is re-checked by Run before every runBlocks call: any
// installed BeforeStep/AfterStep hook (fault arming, taint, checkpoint
// cadences, snapshot capture) deopts to the per-instruction loop, and a
// hook installed mid-run by a trap handler takes effect at the next
// block boundary because traps always return to Run's dispatch loop.
//
// Loads and stores go through per-µop memory inline caches: each
// memory-access µop owns one icEntry slot per CPU remembering the last
// *Segment it hit, revalidated with a generation check plus one range
// compare. The slots live on the CPU (Programs and their µop plans are
// shared read-only by every concurrent process of a binary); Memory.gen
// bumps whenever a segment is removed or replaced (Unmap, Restore), so
// rollbacks and dlclose invalidate every cache at once.
package machine

import (
	"encoding/binary"
	"math"
)

// uopOp is a predecoded micro-operation opcode. ALU and Set operations
// come in RR (src2 = register) and RI (src2 = immediate) forms so the
// per-instruction src2 selection of the Step loop disappears; memory
// operations come in with-index and without-index forms.
type uopOp uint8

const (
	// uPunt delegates the instruction to the legacy Step path: host
	// calls, abort, halt, unknown opcodes, and operands Step would
	// fault (or panic) on. Punting keeps the engine's semantics exactly
	// Step's without duplicating the rare cases.
	uPunt uopOp = iota
	uNop
	uMovImm
	uMov
	uAddRR
	uAddRI
	uSubRR
	uSubRI
	uMulRR
	uMulRI
	uDivRR
	uDivRI
	uRemRR
	uRemRI
	uAndRR
	uAndRI
	uOrRR
	uOrRI
	uXorRR
	uXorRI
	uShlRR
	uShlRI
	uShrRR
	uShrRI
	uFMovImm
	uFMov
	uFAdd
	uFSub
	uFMul
	uFDiv
	uCvtIF
	uCvtFI
	uBitIF
	uBitFI
	uSetRR
	uSetRI
	uFSet
	uLea
	uLeaX
	uJmp
	uJnz
	uJz

	// Memory-access µops (each owns an inline-cache slot). Keep these
	// contiguous: usesIC tests the range.
	uLoad
	uLoadX
	uFLoad
	uFLoadX
	uStore
	uStoreX
	uFStore
	uFStoreX
	uCall
	uRet
	uPush
	uPop
	uFPush
	uFPop
)

// usesIC reports whether the µop dereferences memory and owns an
// inline-cache slot.
func (o uopOp) usesIC() bool { return o >= uLoad && o <= uFPop }

// uop is one predecoded micro-operation. d/a/b index the integer or
// float register file depending on the opcode (for loads and stores, a
// is the base register, b the index register, and d the data register).
// All register fields are validated < NumReg at predecode time, so the
// interpreter masks with &15 and pays no bounds checks.
type uop struct {
	op    uopOp
	d     uint8
	a     uint8
	b     uint8
	scale uint8
	cond  Cond
	// ic is the CPU-local inline-cache slot of a memory µop (-1
	// otherwise).
	ic int32
	// imm is the immediate or displacement.
	imm int64
	// target is the absolute branch target of uJmp/uJnz/uJz/uCall.
	target Word
}

// blockPlan is the predecoded form of a Program's code: µops 1:1 with
// Code, plus the number of inline-cache slots its memory µops claimed.
// A plan is immutable after construction and shared by every CPU.
type blockPlan struct {
	uops []uop
	nIC  int
}

// plan returns the program's predecoded plan, building it on first use.
// Safe for concurrent callers (campaign trials share Programs).
func (p *Program) plan() *blockPlan {
	p.planOnce.Do(func() { p.ublocks = predecode(p) })
	return p.ublocks
}

func predecode(p *Program) *blockPlan {
	pl := &blockPlan{uops: make([]uop, len(p.Code))}
	for i := range p.Code {
		u := predecodeOne(&p.Code[i])
		if u.op.usesIC() {
			u.ic = int32(pl.nIC)
			pl.nIC++
		}
		pl.uops[i] = u
	}
	return pl
}

func okR(r Reg) bool  { return r < NumReg }
func okF(f FReg) bool { return f < NumFReg }

// predecodeOne lowers one MInstr to a µop, resolving operand kinds. Any
// instruction the fast loop cannot (or should not) carry — host calls,
// abort/halt, operands the Step loop would panic on — lowers to uPunt.
func predecodeOne(in *MInstr) uop {
	punt := uop{op: uPunt, ic: -1}
	u := uop{ic: -1}

	// alu resolves src2 exactly like Step: the immediate when UseImm,
	// Rb when valid, and constant zero when Rb is absent (NoReg).
	alu := func(rr, ri uopOp) uop {
		if !okR(in.Rd) || !okR(in.Ra) {
			return punt
		}
		u.d, u.a = uint8(in.Rd), uint8(in.Ra)
		switch {
		case in.UseImm:
			u.op, u.imm = ri, in.Imm
		case okR(in.Rb):
			u.op, u.b = rr, uint8(in.Rb)
		default:
			u.op, u.imm = ri, 0
		}
		return u
	}
	// mem lowers a memory operand: data is the value register (dest for
	// loads, source for stores), already validated by the caller.
	mem := func(noIdx, withIdx uopOp, data uint8) uop {
		if !okR(in.Base) {
			return punt
		}
		u.d, u.a, u.imm = data, uint8(in.Base), in.Disp
		switch {
		case in.Index == NoReg:
			u.op = noIdx
		case okR(in.Index):
			u.op, u.b, u.scale = withIdx, uint8(in.Index), in.Scale
		default:
			return punt
		}
		return u
	}
	fbin := func(op uopOp) uop {
		if !okF(in.Fd) || !okF(in.Fa) || !okF(in.Fb) {
			return punt
		}
		u.op, u.d, u.a, u.b = op, uint8(in.Fd), uint8(in.Fa), uint8(in.Fb)
		return u
	}
	jump := func(op uopOp) uop {
		u.op, u.target = op, in.Target
		return u
	}

	switch in.Op {
	case MNop:
		u.op = uNop
		return u
	case MMovImm:
		if !okR(in.Rd) {
			return punt
		}
		u.op, u.d, u.imm = uMovImm, uint8(in.Rd), in.Imm
		return u
	case MMov:
		if !okR(in.Rd) || !okR(in.Ra) {
			return punt
		}
		u.op, u.d, u.a = uMov, uint8(in.Rd), uint8(in.Ra)
		return u
	case MAdd:
		return alu(uAddRR, uAddRI)
	case MSub:
		return alu(uSubRR, uSubRI)
	case MMul:
		return alu(uMulRR, uMulRI)
	case MDiv:
		return alu(uDivRR, uDivRI)
	case MRem:
		return alu(uRemRR, uRemRI)
	case MAnd:
		return alu(uAndRR, uAndRI)
	case MOr:
		return alu(uOrRR, uOrRI)
	case MXor:
		return alu(uXorRR, uXorRI)
	case MShl:
		return alu(uShlRR, uShlRI)
	case MShr:
		return alu(uShrRR, uShrRI)
	case MFMovImm:
		if !okF(in.Fd) {
			return punt
		}
		u.op, u.d, u.imm = uFMovImm, uint8(in.Fd), in.Imm
		return u
	case MFMov:
		if !okF(in.Fd) || !okF(in.Fa) {
			return punt
		}
		u.op, u.d, u.a = uFMov, uint8(in.Fd), uint8(in.Fa)
		return u
	case MFAdd:
		return fbin(uFAdd)
	case MFSub:
		return fbin(uFSub)
	case MFMul:
		return fbin(uFMul)
	case MFDiv:
		return fbin(uFDiv)
	case MCvtIF:
		if !okF(in.Fd) || !okR(in.Ra) {
			return punt
		}
		u.op, u.d, u.a = uCvtIF, uint8(in.Fd), uint8(in.Ra)
		return u
	case MCvtFI:
		if !okR(in.Rd) || !okF(in.Fa) {
			return punt
		}
		u.op, u.d, u.a = uCvtFI, uint8(in.Rd), uint8(in.Fa)
		return u
	case MBitIF:
		if !okF(in.Fd) || !okR(in.Ra) {
			return punt
		}
		u.op, u.d, u.a = uBitIF, uint8(in.Fd), uint8(in.Ra)
		return u
	case MBitFI:
		if !okR(in.Rd) || !okF(in.Fa) {
			return punt
		}
		u.op, u.d, u.a = uBitFI, uint8(in.Rd), uint8(in.Fa)
		return u
	case MSet:
		u.cond = in.Cond
		return alu(uSetRR, uSetRI)
	case MFSet:
		if !okR(in.Rd) || !okF(in.Fa) || !okF(in.Fb) {
			return punt
		}
		u.op, u.cond = uFSet, in.Cond
		u.d, u.a, u.b = uint8(in.Rd), uint8(in.Fa), uint8(in.Fb)
		return u
	case MLea:
		if !okR(in.Rd) {
			return punt
		}
		return mem(uLea, uLeaX, uint8(in.Rd))
	case MLoad:
		if !okR(in.Rd) {
			return punt
		}
		return mem(uLoad, uLoadX, uint8(in.Rd))
	case MFLoad:
		if !okF(in.Fd) {
			return punt
		}
		return mem(uFLoad, uFLoadX, uint8(in.Fd))
	case MStore:
		if !okR(in.Ra) {
			return punt
		}
		return mem(uStore, uStoreX, uint8(in.Ra))
	case MFStore:
		if !okF(in.Fa) {
			return punt
		}
		return mem(uFStore, uFStoreX, uint8(in.Fa))
	case MJmp:
		return jump(uJmp)
	case MJnz, MJz:
		if !okR(in.Ra) {
			return punt
		}
		u.a = uint8(in.Ra)
		if in.Op == MJnz {
			return jump(uJnz)
		}
		return jump(uJz)
	case MCall:
		return jump(uCall)
	case MRet:
		u.op = uRet
		return u
	case MPush:
		if !okR(in.Ra) {
			return punt
		}
		u.op, u.d = uPush, uint8(in.Ra)
		return u
	case MPop:
		if !okR(in.Rd) {
			return punt
		}
		u.op, u.d = uPop, uint8(in.Rd)
		return u
	case MFPush:
		if !okF(in.Fa) {
			return punt
		}
		u.op, u.d = uFPush, uint8(in.Fa)
		return u
	case MFPop:
		if !okF(in.Fd) {
			return punt
		}
		u.op, u.d = uFPop, uint8(in.Fd)
		return u
	}
	// MHost, MAbort, MHalt, unknown opcodes.
	return punt
}

// icEntry is one per-CPU memory inline cache: the last segment a µop's
// access hit, valid while the Memory generation matches.
type icEntry struct {
	seg *Segment
	gen uint64
}

// icsFor returns this CPU's inline-cache slots for an image, allocating
// them on first use (one slot per memory µop of the image's program).
func (c *CPU) icsFor(img *Image, n int) []icEntry {
	if e, ok := c.ics[img]; ok {
		return e
	}
	if c.ics == nil {
		c.ics = map[*Image][]icEntry{}
	}
	e := make([]icEntry, n)
	c.ics[img] = e
	return e
}

// icLoad reads an aligned word through an inline cache. The fast path
// is one generation compare plus one range compare against the cached
// segment; everything else falls to icLoadSlow.
func icLoad(m *Memory, e *icEntry, addr Word) (Word, *Fault) {
	if s := e.seg; s != nil && e.gen == m.gen && len(s.Data) >= 8 {
		if off := addr - s.Base; off <= Word(len(s.Data)-8) {
			if addr&7 != 0 {
				return 0, &Fault{Sig: SigBUS, Addr: addr}
			}
			return binary.LittleEndian.Uint64(s.Data[off:]), nil
		}
	}
	return icLoadSlow(m, e, addr)
}

// icLoadSlow is the miss path: Memory.Read semantics plus a cache
// refill. Fault priorities match Read exactly (unmapped/short SEGV
// before misaligned BUS).
func icLoadSlow(m *Memory, e *icEntry, addr Word) (Word, *Fault) {
	s := m.Find(addr)
	if s == nil || addr+8 > s.End() {
		return 0, &Fault{Sig: SigSEGV, Addr: addr}
	}
	if addr&7 != 0 {
		return 0, &Fault{Sig: SigBUS, Addr: addr}
	}
	e.seg, e.gen = s, m.gen
	return binary.LittleEndian.Uint64(s.Data[addr-s.Base:]), nil
}

// icStore writes an aligned word through an inline cache. Read-only and
// copy-on-write segments always take the slow path (fault / first-store
// materialization), matching Memory.Write.
func icStore(m *Memory, e *icEntry, addr, v Word) *Fault {
	if s := e.seg; s != nil && e.gen == m.gen && !s.ro && !s.cow && len(s.Data) >= 8 {
		if off := addr - s.Base; off <= Word(len(s.Data)-8) {
			if addr&7 != 0 {
				return &Fault{Sig: SigBUS, Addr: addr}
			}
			binary.LittleEndian.PutUint64(s.Data[off:], v)
			return nil
		}
	}
	return icStoreSlow(m, e, addr, v)
}

func icStoreSlow(m *Memory, e *icEntry, addr, v Word) *Fault {
	s := m.Find(addr)
	if s == nil || addr+8 > s.End() || s.ro {
		return &Fault{Sig: SigSEGV, Addr: addr}
	}
	if addr&7 != 0 {
		return &Fault{Sig: SigBUS, Addr: addr}
	}
	if s.cow {
		s.materialize()
	}
	e.seg, e.gen = s, m.gen
	binary.LittleEndian.PutUint64(s.Data[addr-s.Base:], v)
	return nil
}

// setCur switches the CPU's current-image cache, dropping the per-image
// derived caches (µop plan, inline-cache slots, profile counts slice).
func (c *CPU) setCur(img *Image) {
	c.cur = img
	c.curPlan = nil
	c.curICs = nil
	c.curCounts = nil
}

// countsFor returns (allocating if needed) the profile-counts slice of
// an image — the one c.Counts[img] map lookup the hot paths now pay
// only on image switch.
func (c *CPU) countsFor(img *Image) []uint64 {
	if c.Counts == nil {
		c.Counts = map[*Image][]uint64{}
	}
	cnts := c.Counts[img]
	if cnts == nil {
		cnts = make([]uint64, len(img.Prog.Code))
		c.Counts[img] = cnts
	}
	return cnts
}

// blockTrap materializes the lazy architectural state and delivers a
// trap from the block engine, mirroring the Trap a Step at pc would
// have raised.
func (c *CPU) blockTrap(pc Word, done uint64, img *Image, idx int, sig Signal, addr Word) {
	c.PC = pc
	c.Dyn += done
	c.trap(&Trap{Sig: sig, PC: pc, Addr: addr, Img: img, Idx: idx, Instr: &img.Prog.Code[idx]})
}

// stopExit materializes state and exits cleanly at the StopPC sentinel
// (same disposition as the Step loop: ExitCode from R0).
func (c *CPU) stopExit(pc Word, done uint64) {
	c.Status = StatusExited
	c.ExitCode = c.R[R0]
	c.PC = pc
	c.Dyn += done
}

// runBlocks executes predecoded code starting at c.PC, following taken
// branches for as long as control stays inside the current image, until
// the status changes, a trap is delivered, the budget is consumed, the
// PC leaves the image, or a uPunt µop needs the legacy path. It returns
// the budget consumed (one per attempted instruction, exactly like the
// Step loop charges) and whether the instruction now at c.PC must be
// executed by Step.
//
// Callers guarantee budget > 0 and that no step hooks are installed.
func (c *CPU) runBlocks(budget uint64) (uint64, bool) {
	img := c.cur
	if img == nil || !img.Contains(c.PC) {
		img = c.FindImage(c.PC)
		if img == nil {
			c.trap(&Trap{Sig: SigILL, PC: c.PC})
			return 1, false
		}
		c.setCur(img)
	}
	plan := c.curPlan
	if plan == nil {
		plan = img.Prog.plan()
		c.curPlan = plan
	}
	ics := c.curICs
	if ics == nil && plan.nIC > 0 {
		ics = c.icsFor(img, plan.nIC)
		c.curICs = ics
	}
	var cnts []uint64
	if c.Profile {
		cnts = c.curCounts
		if cnts == nil {
			cnts = c.countsFor(img)
			c.curCounts = cnts
		}
	}
	m := c.Mem
	uops := plan.uops
	base := img.Base()
	pc := c.PC
	stop, stopSet := c.StopPC, c.StopPCSet
	var done uint64

	for {
		if done >= budget {
			break
		}
		idx := int((pc - base) >> 3)
		if uint(idx) >= uint(len(uops)) {
			break // control left the image; Run re-resolves (or traps)
		}
		u := &uops[idx]
		switch u.op {
		case uPunt:
			c.PC = pc
			c.Dyn += done
			return done, true
		case uNop:
		case uMovImm:
			c.R[u.d&15] = Word(u.imm)
		case uMov:
			c.R[u.d&15] = c.R[u.a&15]
		case uAddRR:
			c.R[u.d&15] = c.R[u.a&15] + c.R[u.b&15]
		case uAddRI:
			c.R[u.d&15] = c.R[u.a&15] + Word(u.imm)
		case uSubRR:
			c.R[u.d&15] = c.R[u.a&15] - c.R[u.b&15]
		case uSubRI:
			c.R[u.d&15] = c.R[u.a&15] - Word(u.imm)
		case uMulRR:
			c.R[u.d&15] = Word(int64(c.R[u.a&15]) * int64(c.R[u.b&15]))
		case uMulRI:
			c.R[u.d&15] = Word(int64(c.R[u.a&15]) * u.imm)
		case uDivRR, uDivRI, uRemRR, uRemRI:
			d := u.imm
			if u.op == uDivRR || u.op == uRemRR {
				d = int64(c.R[u.b&15])
			}
			n := int64(c.R[u.a&15])
			if d == 0 || (n == math.MinInt64 && d == -1) {
				c.blockTrap(pc, done, img, idx, SigFPE, 0)
				return done + 1, false
			}
			if u.op == uDivRR || u.op == uDivRI {
				c.R[u.d&15] = Word(n / d)
			} else {
				c.R[u.d&15] = Word(n % d)
			}
		case uAndRR:
			c.R[u.d&15] = c.R[u.a&15] & c.R[u.b&15]
		case uAndRI:
			c.R[u.d&15] = c.R[u.a&15] & Word(u.imm)
		case uOrRR:
			c.R[u.d&15] = c.R[u.a&15] | c.R[u.b&15]
		case uOrRI:
			c.R[u.d&15] = c.R[u.a&15] | Word(u.imm)
		case uXorRR:
			c.R[u.d&15] = c.R[u.a&15] ^ c.R[u.b&15]
		case uXorRI:
			c.R[u.d&15] = c.R[u.a&15] ^ Word(u.imm)
		case uShlRR:
			c.R[u.d&15] = c.R[u.a&15] << (c.R[u.b&15] & 63)
		case uShlRI:
			c.R[u.d&15] = c.R[u.a&15] << (Word(u.imm) & 63)
		case uShrRR:
			c.R[u.d&15] = Word(int64(c.R[u.a&15]) >> (c.R[u.b&15] & 63))
		case uShrRI:
			c.R[u.d&15] = Word(int64(c.R[u.a&15]) >> (Word(u.imm) & 63))
		case uFMovImm:
			c.F[u.d&15] = math.Float64frombits(Word(u.imm))
		case uFMov:
			c.F[u.d&15] = c.F[u.a&15]
		case uFAdd:
			c.F[u.d&15] = c.F[u.a&15] + c.F[u.b&15]
		case uFSub:
			c.F[u.d&15] = c.F[u.a&15] - c.F[u.b&15]
		case uFMul:
			c.F[u.d&15] = c.F[u.a&15] * c.F[u.b&15]
		case uFDiv:
			c.F[u.d&15] = c.F[u.a&15] / c.F[u.b&15]
		case uCvtIF:
			c.F[u.d&15] = float64(int64(c.R[u.a&15]))
		case uCvtFI:
			c.R[u.d&15] = Word(int64(c.F[u.a&15]))
		case uBitIF:
			c.F[u.d&15] = math.Float64frombits(c.R[u.a&15])
		case uBitFI:
			c.R[u.d&15] = math.Float64bits(c.F[u.a&15])
		case uSetRR:
			c.R[u.d&15] = boolWord(cmpInt(u.cond, int64(c.R[u.a&15]), int64(c.R[u.b&15])))
		case uSetRI:
			c.R[u.d&15] = boolWord(cmpInt(u.cond, int64(c.R[u.a&15]), u.imm))
		case uFSet:
			c.R[u.d&15] = boolWord(cmpFloat(u.cond, c.F[u.a&15], c.F[u.b&15]))
		case uLea:
			c.R[u.d&15] = c.R[u.a&15] + Word(u.imm)
		case uLeaX:
			c.R[u.d&15] = c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
		case uJmp:
			done++
			if cnts != nil {
				cnts[idx]++
			}
			pc = u.target
			if stopSet && pc == stop {
				c.stopExit(pc, done)
				return done, false
			}
			continue
		case uJnz, uJz:
			if (c.R[u.a&15] != 0) == (u.op == uJnz) {
				done++
				if cnts != nil {
					cnts[idx]++
				}
				pc = u.target
				if stopSet && pc == stop {
					c.stopExit(pc, done)
					return done, false
				}
				continue
			}
		case uLoad:
			addr := c.R[u.a&15] + Word(u.imm)
			v, flt := icLoad(m, &ics[u.ic], addr)
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[u.d&15] = v
		case uLoadX:
			addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
			v, flt := icLoad(m, &ics[u.ic], addr)
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[u.d&15] = v
		case uFLoad:
			addr := c.R[u.a&15] + Word(u.imm)
			v, flt := icLoad(m, &ics[u.ic], addr)
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.F[u.d&15] = math.Float64frombits(v)
		case uFLoadX:
			addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
			v, flt := icLoad(m, &ics[u.ic], addr)
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.F[u.d&15] = math.Float64frombits(v)
		case uStore:
			addr := c.R[u.a&15] + Word(u.imm)
			if flt := icStore(m, &ics[u.ic], addr, c.R[u.d&15]); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
		case uStoreX:
			addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
			if flt := icStore(m, &ics[u.ic], addr, c.R[u.d&15]); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
		case uFStore:
			addr := c.R[u.a&15] + Word(u.imm)
			if flt := icStore(m, &ics[u.ic], addr, math.Float64bits(c.F[u.d&15])); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
		case uFStoreX:
			addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
			if flt := icStore(m, &ics[u.ic], addr, math.Float64bits(c.F[u.d&15])); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
		case uCall:
			// The stack write commits SP only on success, so a faulting
			// call leaves SP exactly where the Step loop's restore does.
			sp := c.R[SP] - 8
			if flt := icStore(m, &ics[u.ic], sp, pc+8); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] = sp
			done++
			if cnts != nil {
				cnts[idx]++
			}
			pc = u.target
			if stopSet && pc == stop {
				c.stopExit(pc, done)
				return done, false
			}
			continue
		case uRet:
			ra, flt := icLoad(m, &ics[u.ic], c.R[SP])
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] += 8
			done++
			if cnts != nil {
				cnts[idx]++
			}
			pc = ra
			if stopSet && pc == stop {
				c.stopExit(pc, done)
				return done, false
			}
			continue
		case uPush:
			sp := c.R[SP] - 8
			if flt := icStore(m, &ics[u.ic], sp, c.R[u.d&15]); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] = sp
		case uPop:
			v, flt := icLoad(m, &ics[u.ic], c.R[SP])
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] += 8
			c.R[u.d&15] = v
		case uFPush:
			sp := c.R[SP] - 8
			if flt := icStore(m, &ics[u.ic], sp, math.Float64bits(c.F[u.d&15])); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] = sp
		case uFPop:
			v, flt := icLoad(m, &ics[u.ic], c.R[SP])
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] += 8
			c.F[u.d&15] = math.Float64frombits(v)
		}

		// Fallthrough retirement.
		done++
		if cnts != nil {
			cnts[idx]++
		}
		pc += 8
		if stopSet && pc == stop {
			c.stopExit(pc, done)
			return done, false
		}
	}
	c.PC = pc
	c.Dyn += done
	return done, false
}
