// Block-predecoded execution engine. Run's hot path no longer
// interprets MInstr records one Step at a time: at first use each
// Program is predecoded into a dense µop array (one µop per
// instruction, so any PC — including a corrupted, misaligned one — maps
// onto it with the same base+offset arithmetic Step uses) with operand
// kinds resolved up front: the src2 immediate-vs-register choice
// becomes two µop opcodes, absent index registers disappear, and the
// rare instructions the fast loop does not carry (host calls,
// abort/halt, malformed operands) become uPunt µops that fall back to
// the legacy Step for exactly one instruction.
//
// The engine preserves Step-loop semantics bit for bit — campaign
// results and trace JSONL must not change:
//
//   - the step budget is charged per attempted instruction (a trapped
//     and resumed instruction consumes budget without retiring),
//   - Dyn counts retirements only, and is materialized before any trap
//     is delivered so handlers and trace stamps see the exact count,
//   - the architectural PC is lazy inside a block but recomputed
//     exactly (preserving misalignment) for every trap, stop, punt and
//     image exit — precise PC→kernel mapping is the point of CARE,
//   - StopPC is compared after every retirement, so mid-block sentinel
//     hits exit on the same dynamic instruction as the Step loop.
//
// On top of the per-µop loop (runBlocks, the TierBlock path) sits a
// third dispatch level (runSuper, the default TierSuperblock path):
// predecode resolves in-image Jmp/Jnz/Jz/Call targets to µop indices
// (uop.tidx) so taken branches jump straight to the successor µop, and
// computes per-index fallthrough-run lengths (blockPlan.runLen) so each
// straight-line chain retires under ONE budget/Dyn accounting check
// instead of one per instruction. Because runLen is indexed per µop, a
// chain entered mid-way — a multi-predecessor leader reached by a
// linked branch — simply pays its accounting check at the entry point,
// while single-predecessor leaders reached by fallthrough are fused
// into the running chain with no check at all. Branch targets that
// cannot be linked (outside the image, mid-instruction, or landing on
// a punting µop) are demoted at predecode: the branch materialises the
// PC and returns to Run's dispatch, exactly like an image exit.
//
// Eligibility is re-checked by Run before every engine call: any
// installed BeforeStep/AfterStep hook (fault arming, taint, checkpoint
// cadences, snapshot capture) deopts to the per-instruction loop, and a
// hook installed mid-run by a trap handler takes effect at the next
// block boundary because traps always return to Run's dispatch loop.
//
// Loads and stores go through per-µop memory inline caches: each
// memory-access µop owns one icEntry slot per CPU remembering the last
// *Segment it hit, revalidated with a generation check plus one range
// compare. Stack-traffic µops (call/ret/push/pop) instead share one
// dedicated per-CPU stack-segment slot (CPU.stackIC): SP stays inside
// one segment for essentially a whole run, so a single hot slot beats
// many separately-warmed ones. The slots live on the CPU (Programs and
// their µop plans are shared read-only by every concurrent process of
// a binary); Memory.gen bumps whenever a segment is removed or
// replaced (Unmap, Restore), so rollbacks and dlclose invalidate every
// cache — including the stack slot — at once.
package machine

import (
	"encoding/binary"
	"math"
)

// uopOp is a predecoded micro-operation opcode. ALU and Set operations
// come in RR (src2 = register) and RI (src2 = immediate) forms so the
// per-instruction src2 selection of the Step loop disappears; memory
// operations come in with-index and without-index forms.
type uopOp uint8

const (
	// uPunt delegates the instruction to the legacy Step path: host
	// calls, abort, halt, unknown opcodes, and operands Step would
	// fault (or panic) on. Punting keeps the engine's semantics exactly
	// Step's without duplicating the rare cases.
	uPunt uopOp = iota
	uNop
	uMovImm
	uMov
	uAddRR
	uAddRI
	uSubRR
	uSubRI
	uMulRR
	uMulRI
	uDivRR
	uDivRI
	uRemRR
	uRemRI
	uAndRR
	uAndRI
	uOrRR
	uOrRI
	uXorRR
	uXorRI
	uShlRR
	uShlRI
	uShrRR
	uShrRI
	uFMovImm
	uFMov
	uFAdd
	uFSub
	uFMul
	uFDiv
	uCvtIF
	uCvtFI
	uBitIF
	uBitFI
	uSetRR
	uSetRI
	uFSet
	uLea
	uLeaX
	uJmp
	uJnz
	uJz

	// Memory-access µops (each owns an inline-cache slot). Keep these
	// contiguous: usesIC tests the range.
	uLoad
	uLoadX
	uFLoad
	uFLoadX
	uStore
	uStoreX
	uFStore
	uFStoreX

	// Stack-traffic µops. Keep these contiguous too: they dereference
	// memory through SP and share the CPU's dedicated stack-segment
	// inline cache instead of owning per-µop slots.
	uCall
	uRet
	uPush
	uPop
	uFPush
	uFPop

	// Fused superinstructions: two adjacent µops retired by one dispatch.
	// These opcodes never appear in blockPlan.uops (the per-µop stream the
	// block tier and the disassembler read) — predecode's fusion pass
	// writes them only into the wide superblock stream (blockPlan.fuops),
	// picking the pairs that dominate compiled code: the O0 spill/reload
	// idiom (store+load, load+load and their float forms), address-compute
	// feeding memory, and the O1 copy/FP chains. Naming reads first-then-
	// second: uPStLd is "store, then load".
	uPStLd
	uPLdLd
	uPLdSt
	uPFStFLd
	uPFLdFLd
	uPFStLd
	uPStFLd
	uPFLdFSt
	uPLdFLdX
	uPFLdXFSt
	uPFLdXLd
	uPLdLdX
	uPLdXLd
	uPLdSetI
	uPLdSetR
	uPSetISt
	uPSetRSt
	uPAddRSt
	uPAddISt
	uPLdAddR
	uPLdAddI
	uPMovFMov
	uPAddIMov
	uPFMulFAdd
	uPAddRLd
	uPFLdXFMul
	uPFAddAddI
)

// usesIC reports whether the µop dereferences memory through an
// explicit address operand and owns a per-µop inline-cache slot.
func (o uopOp) usesIC() bool { return o >= uLoad && o <= uFStoreX }

// isControlOp reports whether the µop ends a fallthrough chain: it
// either transfers control or punts to the legacy Step loop. Exactly
// these µops have runLen 0 and are handled by runSuper's control
// dispatch.
func isControlOp(o uopOp) bool {
	switch o {
	case uPunt, uJmp, uJnz, uJz, uCall, uRet:
		return true
	}
	return false
}

// uop is one predecoded micro-operation. d/a/b index the integer or
// float register file depending on the opcode (for loads and stores, a
// is the base register, b the index register, and d the data register).
// All register fields are validated < NumReg at predecode time, so the
// interpreter masks with &15 and pays no bounds checks.
type uop struct {
	op    uopOp
	d     uint8
	a     uint8
	b     uint8
	scale uint8
	cond  Cond
	// ic is the CPU-local inline-cache slot of a memory µop (-1
	// otherwise; stack-traffic µops use the shared stack slot).
	ic int32
	// tidx is the linked branch target of uJmp/uJnz/uJz/uCall as a µop
	// index, resolved at predecode so taken branches re-enter the µop
	// array directly. -1 when the µop is not a branch or the branch was
	// demoted to dispatch-return (target outside the image, mid-
	// instruction, or landing on a punting µop).
	tidx int32
	// imm is the immediate or displacement.
	imm int64
	// target is the absolute branch target of uJmp/uJnz/uJz/uCall.
	target Word
}

// fuop is one entry of the superblock tier's wide µop stream: the µop
// at its index (same fields as uop) plus, when predecode fused it with
// its fallthrough successor, the second µop's operands (d2/a2/b2/s2/
// cond2/ic2/imm2) under a uP* superinstruction opcode. The stream is
// overlap-encoded — every index that STARTS a fusible pair carries the
// fused form, and the second µop's index still holds its plain single
// form — so a linked branch entering mid-chain (or a chain clamped by
// budget or StopPC between the two halves) executes the exact same
// µop sequence, just with one fewer dispatch when the pair is intact.
// The block tier keeps the compact uop array; only runSuper pays the
// wider stride.
type fuop struct {
	op             uopOp
	d, a, b, scale uint8
	cond           Cond
	d2, a2, b2, s2 uint8
	cond2          Cond
	ic, ic2        int32
	tidx           int32
	imm, imm2      int64
	target         Word
}

// fusePair maps an adjacent µop pair to its superinstruction, or uPunt
// when the pair stays unfused. The table is the dynamically hottest
// pairs of the compiled workloads: O0 leans on frame-slot traffic
// (store+load and friends are the spill/reload idiom around every
// expression), O1 on copy coalescing and load-compute chains.
func fusePair(a, b uopOp) uopOp {
	const k = 1 << 8
	switch uint16(a)*k + uint16(b) {
	case uint16(uStore)*k + uint16(uLoad):
		return uPStLd
	case uint16(uLoad)*k + uint16(uLoad):
		return uPLdLd
	case uint16(uLoad)*k + uint16(uStore):
		return uPLdSt
	case uint16(uFStore)*k + uint16(uFLoad):
		return uPFStFLd
	case uint16(uFLoad)*k + uint16(uFLoad):
		return uPFLdFLd
	case uint16(uFStore)*k + uint16(uLoad):
		return uPFStLd
	case uint16(uStore)*k + uint16(uFLoad):
		return uPStFLd
	case uint16(uFLoad)*k + uint16(uFStore):
		return uPFLdFSt
	case uint16(uLoad)*k + uint16(uFLoadX):
		return uPLdFLdX
	case uint16(uFLoadX)*k + uint16(uFStore):
		return uPFLdXFSt
	case uint16(uFLoadX)*k + uint16(uLoad):
		return uPFLdXLd
	case uint16(uLoad)*k + uint16(uLoadX):
		return uPLdLdX
	case uint16(uLoadX)*k + uint16(uLoad):
		return uPLdXLd
	case uint16(uLoad)*k + uint16(uSetRI):
		return uPLdSetI
	case uint16(uLoad)*k + uint16(uSetRR):
		return uPLdSetR
	case uint16(uSetRI)*k + uint16(uStore):
		return uPSetISt
	case uint16(uSetRR)*k + uint16(uStore):
		return uPSetRSt
	case uint16(uAddRR)*k + uint16(uStore):
		return uPAddRSt
	case uint16(uAddRI)*k + uint16(uStore):
		return uPAddISt
	case uint16(uLoad)*k + uint16(uAddRR):
		return uPLdAddR
	case uint16(uLoad)*k + uint16(uAddRI):
		return uPLdAddI
	case uint16(uMov)*k + uint16(uFMov):
		return uPMovFMov
	case uint16(uAddRI)*k + uint16(uMov):
		return uPAddIMov
	case uint16(uFMul)*k + uint16(uFAdd):
		return uPFMulFAdd
	case uint16(uAddRR)*k + uint16(uLoad):
		return uPAddRLd
	case uint16(uFLoadX)*k + uint16(uFMul):
		return uPFLdXFMul
	case uint16(uFAdd)*k + uint16(uAddRI):
		return uPFAddAddI
	}
	return uPunt
}

// blockPlan is the predecoded form of a Program's code: µops 1:1 with
// Code, the number of inline-cache slots its memory µops claimed, and
// the superblock metadata — runLen[i] is the length of the straight-
// line fallthrough chain starting at µop i (the number of consecutive
// non-control, non-punt µops from i; 0 exactly when µop i is a control
// op). Per-index lengths make mid-chain entry exact: a linked branch
// landing on a multi-predecessor leader just starts its accounting
// there. fuops is the wide, pair-fused stream runSuper executes (1:1
// indices with uops). A plan is immutable after construction and
// shared by every CPU.
type blockPlan struct {
	uops   []uop
	fuops  []fuop
	runLen []int32
	nIC    int
}

// plan returns the program's predecoded plan, building it on first use.
// Safe for concurrent callers (campaign trials share Programs).
func (p *Program) plan() *blockPlan {
	p.planOnce.Do(func() { p.ublocks = predecode(p) })
	return p.ublocks
}

func predecode(p *Program) *blockPlan {
	n := len(p.Code)
	pl := &blockPlan{uops: make([]uop, n), runLen: make([]int32, n)}
	for i := range p.Code {
		u := predecodeOne(&p.Code[i])
		u.tidx = -1
		if u.op.usesIC() {
			u.ic = int32(pl.nIC)
			pl.nIC++
		}
		pl.uops[i] = u
	}
	// Second pass: link branch targets (a forward target's µop must be
	// lowered before it can be classified).
	for i := range pl.uops {
		u := &pl.uops[i]
		switch u.op {
		case uJmp, uJnz, uJz, uCall:
			if t, _ := linkTarget(p, pl.uops, u.target); t >= 0 {
				u.tidx = t
			}
		}
	}
	// Fallthrough-run lengths, computed backwards so each index holds
	// the rest-of-chain count from that point.
	for i := n - 1; i >= 0; i-- {
		if isControlOp(pl.uops[i].op) {
			continue // runLen 0
		}
		if i == n-1 {
			pl.runLen[i] = 1
		} else {
			pl.runLen[i] = pl.runLen[i+1] + 1
		}
	}
	// Fourth pass: widen into the superblock stream and overlap-encode
	// fused pairs. runLen >= 2 guarantees both halves are plain chain
	// µops of the same chain (never control, punt, or the chain's end).
	pl.fuops = make([]fuop, n)
	for i := range pl.uops {
		u := &pl.uops[i]
		pl.fuops[i] = fuop{op: u.op, d: u.d, a: u.a, b: u.b, scale: u.scale,
			cond: u.cond, ic: u.ic, ic2: -1, tidx: u.tidx, imm: u.imm, target: u.target}
	}
	for i := 0; i+1 < n; i++ {
		if pl.runLen[i] < 2 {
			continue
		}
		if f := fusePair(pl.uops[i].op, pl.uops[i+1].op); f != uPunt {
			v, fu := &pl.uops[i+1], &pl.fuops[i]
			fu.op = f
			fu.d2, fu.a2, fu.b2, fu.s2 = v.d, v.a, v.b, v.scale
			fu.cond2, fu.ic2, fu.imm2 = v.cond, v.ic, v.imm
		}
	}
	return pl
}

// Demotion reasons, shared by linkTarget's classification and the
// disassembler's annotations.
const (
	demoteOutsideImage = "target-outside-image"
	demoteMidInstr     = "target-mid-instruction"
	demotePunts        = "target-punts"
)

// linkTarget resolves an absolute branch target to a µop index, or
// explains why the branch must demote to dispatch-return: targets
// outside the image (cross-image or wild), targets landing between
// instruction boundaries (only a PC-carrying dispatch round-trip
// preserves the misalignment a trap must report), and targets landing
// on punting µops (those must reach the legacy Step loop with an exact
// PC).
func linkTarget(p *Program, uops []uop, target Word) (int32, string) {
	off := target - p.CodeBase // underflows huge for target < CodeBase
	if off >= Word(8*len(uops)) {
		return -1, demoteOutsideImage
	}
	if off&7 != 0 {
		return -1, demoteMidInstr
	}
	idx := int32(off >> 3)
	if uops[idx].op == uPunt {
		return -1, demotePunts
	}
	return idx, ""
}

func okR(r Reg) bool  { return r < NumReg }
func okF(f FReg) bool { return f < NumFReg }

// predecodeOne lowers one MInstr to a µop, resolving operand kinds. Any
// instruction the fast loop cannot (or should not) carry — host calls,
// abort/halt, operands the Step loop would panic on — lowers to uPunt.
func predecodeOne(in *MInstr) uop {
	punt := uop{op: uPunt, ic: -1}
	u := uop{ic: -1}

	// alu resolves src2 exactly like Step: the immediate when UseImm,
	// Rb when valid, and constant zero when Rb is absent (NoReg).
	alu := func(rr, ri uopOp) uop {
		if !okR(in.Rd) || !okR(in.Ra) {
			return punt
		}
		u.d, u.a = uint8(in.Rd), uint8(in.Ra)
		switch {
		case in.UseImm:
			u.op, u.imm = ri, in.Imm
		case okR(in.Rb):
			u.op, u.b = rr, uint8(in.Rb)
		default:
			u.op, u.imm = ri, 0
		}
		return u
	}
	// mem lowers a memory operand: data is the value register (dest for
	// loads, source for stores), already validated by the caller.
	mem := func(noIdx, withIdx uopOp, data uint8) uop {
		if !okR(in.Base) {
			return punt
		}
		u.d, u.a, u.imm = data, uint8(in.Base), in.Disp
		switch {
		case in.Index == NoReg:
			u.op = noIdx
		case okR(in.Index):
			u.op, u.b, u.scale = withIdx, uint8(in.Index), in.Scale
		default:
			return punt
		}
		return u
	}
	fbin := func(op uopOp) uop {
		if !okF(in.Fd) || !okF(in.Fa) || !okF(in.Fb) {
			return punt
		}
		u.op, u.d, u.a, u.b = op, uint8(in.Fd), uint8(in.Fa), uint8(in.Fb)
		return u
	}
	jump := func(op uopOp) uop {
		u.op, u.target = op, in.Target
		return u
	}

	switch in.Op {
	case MNop:
		u.op = uNop
		return u
	case MMovImm:
		if !okR(in.Rd) {
			return punt
		}
		u.op, u.d, u.imm = uMovImm, uint8(in.Rd), in.Imm
		return u
	case MMov:
		if !okR(in.Rd) || !okR(in.Ra) {
			return punt
		}
		u.op, u.d, u.a = uMov, uint8(in.Rd), uint8(in.Ra)
		return u
	case MAdd:
		return alu(uAddRR, uAddRI)
	case MSub:
		return alu(uSubRR, uSubRI)
	case MMul:
		return alu(uMulRR, uMulRI)
	case MDiv:
		return alu(uDivRR, uDivRI)
	case MRem:
		return alu(uRemRR, uRemRI)
	case MAnd:
		return alu(uAndRR, uAndRI)
	case MOr:
		return alu(uOrRR, uOrRI)
	case MXor:
		return alu(uXorRR, uXorRI)
	case MShl:
		return alu(uShlRR, uShlRI)
	case MShr:
		return alu(uShrRR, uShrRI)
	case MFMovImm:
		if !okF(in.Fd) {
			return punt
		}
		u.op, u.d, u.imm = uFMovImm, uint8(in.Fd), in.Imm
		return u
	case MFMov:
		if !okF(in.Fd) || !okF(in.Fa) {
			return punt
		}
		u.op, u.d, u.a = uFMov, uint8(in.Fd), uint8(in.Fa)
		return u
	case MFAdd:
		return fbin(uFAdd)
	case MFSub:
		return fbin(uFSub)
	case MFMul:
		return fbin(uFMul)
	case MFDiv:
		return fbin(uFDiv)
	case MCvtIF:
		if !okF(in.Fd) || !okR(in.Ra) {
			return punt
		}
		u.op, u.d, u.a = uCvtIF, uint8(in.Fd), uint8(in.Ra)
		return u
	case MCvtFI:
		if !okR(in.Rd) || !okF(in.Fa) {
			return punt
		}
		u.op, u.d, u.a = uCvtFI, uint8(in.Rd), uint8(in.Fa)
		return u
	case MBitIF:
		if !okF(in.Fd) || !okR(in.Ra) {
			return punt
		}
		u.op, u.d, u.a = uBitIF, uint8(in.Fd), uint8(in.Ra)
		return u
	case MBitFI:
		if !okR(in.Rd) || !okF(in.Fa) {
			return punt
		}
		u.op, u.d, u.a = uBitFI, uint8(in.Rd), uint8(in.Fa)
		return u
	case MSet:
		u.cond = in.Cond
		return alu(uSetRR, uSetRI)
	case MFSet:
		if !okR(in.Rd) || !okF(in.Fa) || !okF(in.Fb) {
			return punt
		}
		u.op, u.cond = uFSet, in.Cond
		u.d, u.a, u.b = uint8(in.Rd), uint8(in.Fa), uint8(in.Fb)
		return u
	case MLea:
		if !okR(in.Rd) {
			return punt
		}
		return mem(uLea, uLeaX, uint8(in.Rd))
	case MLoad:
		if !okR(in.Rd) {
			return punt
		}
		return mem(uLoad, uLoadX, uint8(in.Rd))
	case MFLoad:
		if !okF(in.Fd) {
			return punt
		}
		return mem(uFLoad, uFLoadX, uint8(in.Fd))
	case MStore:
		if !okR(in.Ra) {
			return punt
		}
		return mem(uStore, uStoreX, uint8(in.Ra))
	case MFStore:
		if !okF(in.Fa) {
			return punt
		}
		return mem(uFStore, uFStoreX, uint8(in.Fa))
	case MJmp:
		return jump(uJmp)
	case MJnz, MJz:
		if !okR(in.Ra) {
			return punt
		}
		u.a = uint8(in.Ra)
		if in.Op == MJnz {
			return jump(uJnz)
		}
		return jump(uJz)
	case MCall:
		return jump(uCall)
	case MRet:
		u.op = uRet
		return u
	case MPush:
		if !okR(in.Ra) {
			return punt
		}
		u.op, u.d = uPush, uint8(in.Ra)
		return u
	case MPop:
		if !okR(in.Rd) {
			return punt
		}
		u.op, u.d = uPop, uint8(in.Rd)
		return u
	case MFPush:
		if !okF(in.Fa) {
			return punt
		}
		u.op, u.d = uFPush, uint8(in.Fa)
		return u
	case MFPop:
		if !okF(in.Fd) {
			return punt
		}
		u.op, u.d = uFPop, uint8(in.Fd)
		return u
	}
	// MHost, MAbort, MHalt, unknown opcodes.
	return punt
}

// icEntry is one per-CPU memory inline cache: the last segment a µop's
// access hit, valid while the Memory generation matches.
// icEntry is one memory inline cache slot. Beyond the cached segment
// and the generation that validates it, the slot precomputes the hit
// test as three words — base, rlen (len(Data)-7, so off < rlen
// validates an aligned 8-byte access) and wlen (rlen when the segment
// is writable in place, 0 for read-only or still-copy-on-write
// segments, whose stores must take the slow path) — so runSuper's
// dispatch cases can open-code the hit path in a handful of compares.
// (The engine loop is past the compiler's big-function threshold, so
// even tiny helpers stay out-of-line there; the open-coded form is the
// only way the hit path costs what it should.) Reads and writes go
// through seg.Data on every access rather than a cached slice, so a
// copy-on-write materialisation — which swaps Data under the same
// Segment — is picked up immediately; Data's length never changes, so
// rlen stays exact.
type icEntry struct {
	seg  *Segment
	gen  uint64
	base Word
	rlen Word
	wlen Word
}

// fill installs a segment in the slot. Callers guarantee the access
// that found s succeeded, so len(s.Data) >= 8.
func (e *icEntry) fill(s *Segment, gen uint64) {
	e.seg, e.gen, e.base = s, gen, s.Base
	e.rlen = Word(len(s.Data) - 7)
	if s.ro || s.cow {
		e.wlen = 0
	} else {
		e.wlen = e.rlen
	}
}

// icsFor returns this CPU's inline-cache slots for an image, allocating
// them on first use (one slot per memory µop of the image's program).
func (c *CPU) icsFor(img *Image, n int) []icEntry {
	if e, ok := c.ics[img]; ok {
		return e
	}
	if c.ics == nil {
		c.ics = map[*Image][]icEntry{}
	}
	e := make([]icEntry, n)
	c.ics[img] = e
	return e
}

// icLoad reads an aligned word through an inline cache. The fast path
// is one generation compare plus one range compare against the cached
// segment; everything else falls to icLoadSlow.
func icLoad(m *Memory, e *icEntry, addr Word) (Word, *Fault) {
	if s := e.seg; s != nil && e.gen == m.gen && len(s.Data) >= 8 {
		if off := addr - s.Base; off <= Word(len(s.Data)-8) {
			if addr&7 != 0 {
				return 0, &Fault{Sig: SigBUS, Addr: addr}
			}
			return binary.LittleEndian.Uint64(s.Data[off:]), nil
		}
	}
	return icLoadSlow(m, e, addr)
}

// icLoadSlow is the miss path: Memory.Read semantics plus a cache
// refill. Fault priorities match Read exactly (unmapped/short SEGV
// before misaligned BUS).
func icLoadSlow(m *Memory, e *icEntry, addr Word) (Word, *Fault) {
	s := m.Find(addr)
	if s == nil || addr+8 > s.End() {
		return 0, &Fault{Sig: SigSEGV, Addr: addr}
	}
	if addr&7 != 0 {
		return 0, &Fault{Sig: SigBUS, Addr: addr}
	}
	e.fill(s, m.gen)
	return binary.LittleEndian.Uint64(s.Data[addr-s.Base:]), nil
}

// icStore writes an aligned word through an inline cache. Read-only and
// copy-on-write segments always take the slow path (fault / first-store
// materialization), matching Memory.Write.
func icStore(m *Memory, e *icEntry, addr, v Word) *Fault {
	if s := e.seg; s != nil && e.gen == m.gen && !s.ro && !s.cow && len(s.Data) >= 8 {
		if off := addr - s.Base; off <= Word(len(s.Data)-8) {
			if addr&7 != 0 {
				return &Fault{Sig: SigBUS, Addr: addr}
			}
			binary.LittleEndian.PutUint64(s.Data[off:], v)
			return nil
		}
	}
	return icStoreSlow(m, e, addr, v)
}

func icStoreSlow(m *Memory, e *icEntry, addr, v Word) *Fault {
	s := m.Find(addr)
	if s == nil || addr+8 > s.End() || s.ro {
		return &Fault{Sig: SigSEGV, Addr: addr}
	}
	if addr&7 != 0 {
		return &Fault{Sig: SigBUS, Addr: addr}
	}
	if s.cow {
		s.materialize()
	}
	e.fill(s, m.gen)
	binary.LittleEndian.PutUint64(s.Data[addr-s.Base:], v)
	return nil
}

// setCur switches the CPU's current-image cache, dropping the per-image
// derived caches (µop plan, inline-cache slots, profile counts slice).
func (c *CPU) setCur(img *Image) {
	c.cur = img
	c.curPlan = nil
	c.curICs = nil
	c.curCounts = nil
}

// countsFor returns (allocating if needed) the profile-counts slice of
// an image — the one c.Counts[img] map lookup the hot paths now pay
// only on image switch.
func (c *CPU) countsFor(img *Image) []uint64 {
	if c.Counts == nil {
		c.Counts = map[*Image][]uint64{}
	}
	cnts := c.Counts[img]
	if cnts == nil {
		cnts = make([]uint64, len(img.Prog.Code))
		c.Counts[img] = cnts
	}
	return cnts
}

// blockTrap materializes the lazy architectural state and delivers a
// trap from the block engine, mirroring the Trap a Step at pc would
// have raised.
func (c *CPU) blockTrap(pc Word, done uint64, img *Image, idx int, sig Signal, addr Word) {
	c.PC = pc
	c.Dyn += done
	c.trap(&Trap{Sig: sig, PC: pc, Addr: addr, Img: img, Idx: idx, Instr: &img.Prog.Code[idx]})
}

// stopExit materializes state and exits cleanly at the StopPC sentinel
// (same disposition as the Step loop: ExitCode from R0).
func (c *CPU) stopExit(pc Word, done uint64) {
	c.Status = StatusExited
	c.ExitCode = c.R[R0]
	c.PC = pc
	c.Dyn += done
}

// runBlocks executes predecoded code starting at c.PC, following taken
// branches for as long as control stays inside the current image, until
// the status changes, a trap is delivered, the budget is consumed, the
// PC leaves the image, or a uPunt µop needs the legacy path. It returns
// the budget consumed (one per attempted instruction, exactly like the
// Step loop charges) and whether the instruction now at c.PC must be
// executed by Step.
//
// Callers guarantee budget > 0 and that no step hooks are installed.
func (c *CPU) runBlocks(budget uint64) (uint64, bool) {
	img := c.cur
	if img == nil || !img.Contains(c.PC) {
		img = c.FindImage(c.PC)
		if img == nil {
			c.trap(&Trap{Sig: SigILL, PC: c.PC})
			return 1, false
		}
		c.setCur(img)
	}
	plan := c.curPlan
	if plan == nil {
		plan = img.Prog.plan()
		c.curPlan = plan
	}
	ics := c.curICs
	if ics == nil && plan.nIC > 0 {
		ics = c.icsFor(img, plan.nIC)
		c.curICs = ics
	}
	var cnts []uint64
	if c.Profile {
		cnts = c.curCounts
		if cnts == nil {
			cnts = c.countsFor(img)
			c.curCounts = cnts
		}
	}
	m := c.Mem
	uops := plan.uops
	sIC := &c.stackIC
	base := img.Base()
	pc := c.PC
	stop, stopSet := c.StopPC, c.StopPCSet
	var done uint64

	for {
		if done >= budget {
			break
		}
		idx := int((pc - base) >> 3)
		if uint(idx) >= uint(len(uops)) {
			break // control left the image; Run re-resolves (or traps)
		}
		u := &uops[idx]
		switch u.op {
		case uPunt:
			c.PC = pc
			c.Dyn += done
			return done, true
		case uNop:
		case uMovImm:
			c.R[u.d&15] = Word(u.imm)
		case uMov:
			c.R[u.d&15] = c.R[u.a&15]
		case uAddRR:
			c.R[u.d&15] = c.R[u.a&15] + c.R[u.b&15]
		case uAddRI:
			c.R[u.d&15] = c.R[u.a&15] + Word(u.imm)
		case uSubRR:
			c.R[u.d&15] = c.R[u.a&15] - c.R[u.b&15]
		case uSubRI:
			c.R[u.d&15] = c.R[u.a&15] - Word(u.imm)
		case uMulRR:
			c.R[u.d&15] = Word(int64(c.R[u.a&15]) * int64(c.R[u.b&15]))
		case uMulRI:
			c.R[u.d&15] = Word(int64(c.R[u.a&15]) * u.imm)
		case uDivRR, uDivRI, uRemRR, uRemRI:
			d := u.imm
			if u.op == uDivRR || u.op == uRemRR {
				d = int64(c.R[u.b&15])
			}
			n := int64(c.R[u.a&15])
			if d == 0 || (n == math.MinInt64 && d == -1) {
				c.blockTrap(pc, done, img, idx, SigFPE, 0)
				return done + 1, false
			}
			if u.op == uDivRR || u.op == uDivRI {
				c.R[u.d&15] = Word(n / d)
			} else {
				c.R[u.d&15] = Word(n % d)
			}
		case uAndRR:
			c.R[u.d&15] = c.R[u.a&15] & c.R[u.b&15]
		case uAndRI:
			c.R[u.d&15] = c.R[u.a&15] & Word(u.imm)
		case uOrRR:
			c.R[u.d&15] = c.R[u.a&15] | c.R[u.b&15]
		case uOrRI:
			c.R[u.d&15] = c.R[u.a&15] | Word(u.imm)
		case uXorRR:
			c.R[u.d&15] = c.R[u.a&15] ^ c.R[u.b&15]
		case uXorRI:
			c.R[u.d&15] = c.R[u.a&15] ^ Word(u.imm)
		case uShlRR:
			c.R[u.d&15] = c.R[u.a&15] << (c.R[u.b&15] & 63)
		case uShlRI:
			c.R[u.d&15] = c.R[u.a&15] << (Word(u.imm) & 63)
		case uShrRR:
			c.R[u.d&15] = Word(int64(c.R[u.a&15]) >> (c.R[u.b&15] & 63))
		case uShrRI:
			c.R[u.d&15] = Word(int64(c.R[u.a&15]) >> (Word(u.imm) & 63))
		case uFMovImm:
			c.F[u.d&15] = math.Float64frombits(Word(u.imm))
		case uFMov:
			c.F[u.d&15] = c.F[u.a&15]
		case uFAdd:
			c.F[u.d&15] = c.F[u.a&15] + c.F[u.b&15]
		case uFSub:
			c.F[u.d&15] = c.F[u.a&15] - c.F[u.b&15]
		case uFMul:
			c.F[u.d&15] = c.F[u.a&15] * c.F[u.b&15]
		case uFDiv:
			c.F[u.d&15] = c.F[u.a&15] / c.F[u.b&15]
		case uCvtIF:
			c.F[u.d&15] = float64(int64(c.R[u.a&15]))
		case uCvtFI:
			c.R[u.d&15] = Word(int64(c.F[u.a&15]))
		case uBitIF:
			c.F[u.d&15] = math.Float64frombits(c.R[u.a&15])
		case uBitFI:
			c.R[u.d&15] = math.Float64bits(c.F[u.a&15])
		case uSetRR:
			c.R[u.d&15] = boolWord(cmpInt(u.cond, int64(c.R[u.a&15]), int64(c.R[u.b&15])))
		case uSetRI:
			c.R[u.d&15] = boolWord(cmpInt(u.cond, int64(c.R[u.a&15]), u.imm))
		case uFSet:
			c.R[u.d&15] = boolWord(cmpFloat(u.cond, c.F[u.a&15], c.F[u.b&15]))
		case uLea:
			c.R[u.d&15] = c.R[u.a&15] + Word(u.imm)
		case uLeaX:
			c.R[u.d&15] = c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
		case uJmp:
			done++
			if cnts != nil {
				cnts[idx]++
			}
			pc = u.target
			if stopSet && pc == stop {
				c.stopExit(pc, done)
				return done, false
			}
			continue
		case uJnz, uJz:
			if (c.R[u.a&15] != 0) == (u.op == uJnz) {
				done++
				if cnts != nil {
					cnts[idx]++
				}
				pc = u.target
				if stopSet && pc == stop {
					c.stopExit(pc, done)
					return done, false
				}
				continue
			}
		case uLoad:
			addr := c.R[u.a&15] + Word(u.imm)
			v, flt := icLoad(m, &ics[u.ic], addr)
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[u.d&15] = v
		case uLoadX:
			addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
			v, flt := icLoad(m, &ics[u.ic], addr)
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[u.d&15] = v
		case uFLoad:
			addr := c.R[u.a&15] + Word(u.imm)
			v, flt := icLoad(m, &ics[u.ic], addr)
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.F[u.d&15] = math.Float64frombits(v)
		case uFLoadX:
			addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
			v, flt := icLoad(m, &ics[u.ic], addr)
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.F[u.d&15] = math.Float64frombits(v)
		case uStore:
			addr := c.R[u.a&15] + Word(u.imm)
			if flt := icStore(m, &ics[u.ic], addr, c.R[u.d&15]); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
		case uStoreX:
			addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
			if flt := icStore(m, &ics[u.ic], addr, c.R[u.d&15]); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
		case uFStore:
			addr := c.R[u.a&15] + Word(u.imm)
			if flt := icStore(m, &ics[u.ic], addr, math.Float64bits(c.F[u.d&15])); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
		case uFStoreX:
			addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
			if flt := icStore(m, &ics[u.ic], addr, math.Float64bits(c.F[u.d&15])); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
		case uCall:
			// The stack write commits SP only on success, so a faulting
			// call leaves SP exactly where the Step loop's restore does.
			sp := c.R[SP] - 8
			if flt := icStore(m, sIC, sp, pc+8); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] = sp
			done++
			if cnts != nil {
				cnts[idx]++
			}
			pc = u.target
			if stopSet && pc == stop {
				c.stopExit(pc, done)
				return done, false
			}
			continue
		case uRet:
			ra, flt := icLoad(m, sIC, c.R[SP])
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] += 8
			done++
			if cnts != nil {
				cnts[idx]++
			}
			pc = ra
			if stopSet && pc == stop {
				c.stopExit(pc, done)
				return done, false
			}
			continue
		case uPush:
			sp := c.R[SP] - 8
			if flt := icStore(m, sIC, sp, c.R[u.d&15]); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] = sp
		case uPop:
			v, flt := icLoad(m, sIC, c.R[SP])
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] += 8
			c.R[u.d&15] = v
		case uFPush:
			sp := c.R[SP] - 8
			if flt := icStore(m, sIC, sp, math.Float64bits(c.F[u.d&15])); flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] = sp
		case uFPop:
			v, flt := icLoad(m, sIC, c.R[SP])
			if flt != nil {
				c.blockTrap(pc, done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] += 8
			c.F[u.d&15] = math.Float64frombits(v)
		}

		// Fallthrough retirement.
		done++
		if cnts != nil {
			cnts[idx]++
		}
		pc += 8
		if stopSet && pc == stop {
			c.stopExit(pc, done)
			return done, false
		}
	}
	c.PC = pc
	c.Dyn += done
	return done, false
}

// superTrap delivers a trap from µop entry+i of a fused chain: the i
// preceding µops of the chain retired (their profile counts are settled
// here — the happy path batches them), the faulting one did not.
func (c *CPU) superTrap(base Word, entry, i int, done uint64, img *Image, sig Signal, addr Word, cnts []uint64) {
	if cnts != nil {
		for j := entry; j < entry+i; j++ {
			cnts[j]++
		}
	}
	c.blockTrap(base+Word(8*(entry+i)), done+uint64(i), img, entry+i, sig, addr)
}

// runSuper executes predecoded code starting at c.PC on the superblock
// tier: each straight-line fallthrough chain retires under a single
// budget/Dyn accounting check (clamped at the remaining budget and the
// stop sentinel up front, so the chain body pays no per-µop budget, PC
// or StopPC bookkeeping), branches linked at predecode jump straight
// to the successor µop index without re-entering the dispatch
// prologue, and the chain body runs from the pair-fused wide stream
// (blockPlan.fuops), so the hottest adjacent µop pairs retire under
// one dispatch. Memory accesses take the manually-inlined icTry/icPut
// hit paths against a generation hoisted for the whole invocation.
// Semantics are bit-identical to runBlocks and the Step loop: traps
// materialise the exact PC and Dyn mid-chain, StopPC exits on the same
// retirement, the budget is charged per attempted instruction, and
// demoted branches return to Run's dispatch with the exact target PC.
// A pair whose second half falls past the chain clamp (budget or stop
// sentinel between the two halves) executes its first half alone — the
// overlap encoding keeps every µop boundary addressable.
//
// A misaligned (corrupted) PC delegates to runBlocks: chain execution
// tracks µop indices and cannot carry the sub-instruction bias a
// lazily-materialised trap PC must preserve, while the per-µop loop
// round-trips it exactly.
//
// Callers guarantee budget > 0 and that no step hooks are installed.
func (c *CPU) runSuper(budget uint64) (uint64, bool) {
	img := c.cur
	if img == nil || !img.Contains(c.PC) {
		img = c.FindImage(c.PC)
		if img == nil {
			c.trap(&Trap{Sig: SigILL, PC: c.PC})
			return 1, false
		}
		c.setCur(img)
	}
	base := img.Base()
	if (c.PC-base)&7 != 0 {
		return c.runBlocks(budget)
	}
	plan := c.curPlan
	if plan == nil {
		plan = img.Prog.plan()
		c.curPlan = plan
	}
	ics := c.curICs
	if ics == nil && plan.nIC > 0 {
		ics = c.icsFor(img, plan.nIC)
		c.curICs = ics
	}
	var cnts []uint64
	if c.Profile {
		cnts = c.curCounts
		if cnts == nil {
			cnts = c.countsFor(img)
			c.curCounts = cnts
		}
	}
	m := c.Mem
	gen := m.gen // stable: every gen bump (Unmap/Restore) exits the engine first
	fuops := plan.fuops
	runs := plan.runLen
	sIC := &c.stackIC
	idx := int((c.PC - base) >> 3)

	// stopIdx is the StopPC sentinel as a µop index (-1 when unset, or
	// when the sentinel is misaligned or outside this image — such a hit
	// can only happen where a PC materialises, and those exits compare
	// the exact address below).
	stopIdx := -1
	if c.StopPCSet {
		if off := c.StopPC - base; off&7 == 0 && off>>3 < Word(len(fuops)) {
			stopIdx = int(off >> 3)
		}
	}
	var done uint64

	for {
		if uint(idx) >= uint(len(fuops)) {
			// Fell off the end of the image; Run re-resolves (or traps).
			pc := base + Word(8*idx)
			if c.StopPCSet && pc == c.StopPC {
				c.stopExit(pc, done)
				return done, false
			}
			c.PC = pc
			c.Dyn += done
			return done, false
		}
		if done >= budget {
			break
		}
		if n := int(runs[idx]); n > 0 {
			if rem := budget - done; uint64(n) > rem {
				n = int(rem)
			}
			if stopIdx > idx && stopIdx < idx+n {
				n = stopIdx - idx
			}
			entry := idx
			chain := fuops[entry : entry+n]
			for i := 0; i < n; i++ {
				u := &chain[i]
				switch u.op {
				case uNop:
				case uMovImm:
					c.R[u.d&15] = Word(u.imm)
				case uMov:
					c.R[u.d&15] = c.R[u.a&15]
				case uAddRR:
					c.R[u.d&15] = c.R[u.a&15] + c.R[u.b&15]
				case uAddRI:
					c.R[u.d&15] = c.R[u.a&15] + Word(u.imm)
				case uSubRR:
					c.R[u.d&15] = c.R[u.a&15] - c.R[u.b&15]
				case uSubRI:
					c.R[u.d&15] = c.R[u.a&15] - Word(u.imm)
				case uMulRR:
					c.R[u.d&15] = Word(int64(c.R[u.a&15]) * int64(c.R[u.b&15]))
				case uMulRI:
					c.R[u.d&15] = Word(int64(c.R[u.a&15]) * u.imm)
				case uDivRR, uDivRI, uRemRR, uRemRI:
					d := u.imm
					if u.op == uDivRR || u.op == uRemRR {
						d = int64(c.R[u.b&15])
					}
					nn := int64(c.R[u.a&15])
					if d == 0 || (nn == math.MinInt64 && d == -1) {
						c.superTrap(base, entry, i, done, img, SigFPE, 0, cnts)
						return done + uint64(i) + 1, false
					}
					if u.op == uDivRR || u.op == uDivRI {
						c.R[u.d&15] = Word(nn / d)
					} else {
						c.R[u.d&15] = Word(nn % d)
					}
				case uAndRR:
					c.R[u.d&15] = c.R[u.a&15] & c.R[u.b&15]
				case uAndRI:
					c.R[u.d&15] = c.R[u.a&15] & Word(u.imm)
				case uOrRR:
					c.R[u.d&15] = c.R[u.a&15] | c.R[u.b&15]
				case uOrRI:
					c.R[u.d&15] = c.R[u.a&15] | Word(u.imm)
				case uXorRR:
					c.R[u.d&15] = c.R[u.a&15] ^ c.R[u.b&15]
				case uXorRI:
					c.R[u.d&15] = c.R[u.a&15] ^ Word(u.imm)
				case uShlRR:
					c.R[u.d&15] = c.R[u.a&15] << (c.R[u.b&15] & 63)
				case uShlRI:
					c.R[u.d&15] = c.R[u.a&15] << (Word(u.imm) & 63)
				case uShrRR:
					c.R[u.d&15] = Word(int64(c.R[u.a&15]) >> (c.R[u.b&15] & 63))
				case uShrRI:
					c.R[u.d&15] = Word(int64(c.R[u.a&15]) >> (Word(u.imm) & 63))
				case uFMovImm:
					c.F[u.d&15] = math.Float64frombits(Word(u.imm))
				case uFMov:
					c.F[u.d&15] = c.F[u.a&15]
				case uFAdd:
					c.F[u.d&15] = c.F[u.a&15] + c.F[u.b&15]
				case uFSub:
					c.F[u.d&15] = c.F[u.a&15] - c.F[u.b&15]
				case uFMul:
					c.F[u.d&15] = c.F[u.a&15] * c.F[u.b&15]
				case uFDiv:
					c.F[u.d&15] = c.F[u.a&15] / c.F[u.b&15]
				case uCvtIF:
					c.F[u.d&15] = float64(int64(c.R[u.a&15]))
				case uCvtFI:
					c.R[u.d&15] = Word(int64(c.F[u.a&15]))
				case uBitIF:
					c.F[u.d&15] = math.Float64frombits(c.R[u.a&15])
				case uBitFI:
					c.R[u.d&15] = math.Float64bits(c.F[u.a&15])
				case uSetRR:
					c.R[u.d&15] = boolWord(cmpInt(u.cond, int64(c.R[u.a&15]), int64(c.R[u.b&15])))
				case uSetRI:
					c.R[u.d&15] = boolWord(cmpInt(u.cond, int64(c.R[u.a&15]), u.imm))
				case uFSet:
					c.R[u.d&15] = boolWord(cmpFloat(u.cond, c.F[u.a&15], c.F[u.b&15]))
				case uLea:
					c.R[u.d&15] = c.R[u.a&15] + Word(u.imm)
				case uLeaX:
					c.R[u.d&15] = c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
				case uLoad:
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
				case uLoadX:
					addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
				case uFLoad:
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.F[u.d&15] = math.Float64frombits(v)
				case uFLoadX:
					addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.F[u.d&15] = math.Float64frombits(v)
				case uStore:
					addr := c.R[u.a&15] + Word(u.imm)
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.wlen {
						leStore(e.seg.Data, addr-e.base, c.R[u.d&15])
					} else if flt := icStoreSlow(m, e, addr, c.R[u.d&15]); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
				case uStoreX:
					addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.wlen {
						leStore(e.seg.Data, addr-e.base, c.R[u.d&15])
					} else if flt := icStoreSlow(m, e, addr, c.R[u.d&15]); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
				case uFStore:
					addr := c.R[u.a&15] + Word(u.imm)
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.wlen {
						leStore(e.seg.Data, addr-e.base, math.Float64bits(c.F[u.d&15]))
					} else if flt := icStoreSlow(m, e, addr, math.Float64bits(c.F[u.d&15])); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
				case uFStoreX:
					addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.wlen {
						leStore(e.seg.Data, addr-e.base, math.Float64bits(c.F[u.d&15]))
					} else if flt := icStoreSlow(m, e, addr, math.Float64bits(c.F[u.d&15])); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
				case uPush:
					sp := c.R[SP] - 8
					if e := sIC; e.gen == gen && sp&7 == 0 && sp-e.base < e.wlen {
						leStore(e.seg.Data, sp-e.base, c.R[u.d&15])
					} else if flt := icStoreSlow(m, e, sp, c.R[u.d&15]); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
					c.R[SP] = sp
				case uPop:
					var v Word
					if e := sIC; e.gen == gen && c.R[SP]&7 == 0 && c.R[SP]-e.base < e.rlen {
						v = leLoad(e.seg.Data, c.R[SP]-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, c.R[SP]); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[SP] += 8
					c.R[u.d&15] = v
				case uFPush:
					sp := c.R[SP] - 8
					if e := sIC; e.gen == gen && sp&7 == 0 && sp-e.base < e.wlen {
						leStore(e.seg.Data, sp-e.base, math.Float64bits(c.F[u.d&15]))
					} else if flt := icStoreSlow(m, e, sp, math.Float64bits(c.F[u.d&15])); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
					c.R[SP] = sp
				case uFPop:
					var v Word
					if e := sIC; e.gen == gen && c.R[SP]&7 == 0 && c.R[SP]-e.base < e.rlen {
						v = leLoad(e.seg.Data, c.R[SP]-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, c.R[SP]); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[SP] += 8
					c.F[u.d&15] = math.Float64frombits(v)

				// Fused pairs. Every case executes its first half exactly
				// like the single case above, then — only when the second
				// half is still inside the clamped chain — the second half,
				// recomputing nothing across the halves that the program
				// could observe: second-half addresses and operands are read
				// after the first half commits, traps report the exact half
				// that faulted, and a pair split by the clamp retires its
				// first half alone (the successor index re-enters as a
				// single µop next time around).
				case uPStLd: // store ; load — the O0 spill/reload idiom
					addr := c.R[u.a&15] + Word(u.imm)
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.wlen {
						leStore(e.seg.Data, addr-e.base, c.R[u.d&15])
					} else if flt := icStoreSlow(m, e, addr, c.R[u.d&15]); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.R[u.d2&15] = v
						i++
					}
				case uPLdLd: // load ; load
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v2 Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v2 = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v2, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.R[u.d2&15] = v2
						i++
					}
				case uPLdSt: // load ; store
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.wlen {
							leStore(e.seg.Data, a2-e.base, c.R[u.d2&15])
						} else if flt := icStoreSlow(m, e, a2, c.R[u.d2&15]); flt != nil {
							c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 2, false
						}
						i++
					}
				case uPFStFLd: // fstore ; fload
					addr := c.R[u.a&15] + Word(u.imm)
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.wlen {
						leStore(e.seg.Data, addr-e.base, math.Float64bits(c.F[u.d&15]))
					} else if flt := icStoreSlow(m, e, addr, math.Float64bits(c.F[u.d&15])); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.F[u.d2&15] = math.Float64frombits(v)
						i++
					}
				case uPFLdFLd: // fload ; fload
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.F[u.d&15] = math.Float64frombits(v)
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v2 Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v2 = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v2, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.F[u.d2&15] = math.Float64frombits(v2)
						i++
					}
				case uPFStLd: // fstore ; load
					addr := c.R[u.a&15] + Word(u.imm)
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.wlen {
						leStore(e.seg.Data, addr-e.base, math.Float64bits(c.F[u.d&15]))
					} else if flt := icStoreSlow(m, e, addr, math.Float64bits(c.F[u.d&15])); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.R[u.d2&15] = v
						i++
					}
				case uPStFLd: // store ; fload
					addr := c.R[u.a&15] + Word(u.imm)
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.wlen {
						leStore(e.seg.Data, addr-e.base, c.R[u.d&15])
					} else if flt := icStoreSlow(m, e, addr, c.R[u.d&15]); flt != nil {
						c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
						return done + uint64(i) + 1, false
					}
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.F[u.d2&15] = math.Float64frombits(v)
						i++
					}
				case uPFLdFSt: // fload ; fstore
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.F[u.d&15] = math.Float64frombits(v)
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.wlen {
							leStore(e.seg.Data, a2-e.base, math.Float64bits(c.F[u.d2&15]))
						} else if flt := icStoreSlow(m, e, a2, math.Float64bits(c.F[u.d2&15])); flt != nil {
							c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 2, false
						}
						i++
					}
				case uPLdFLdX: // load ; floadX
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
					if i+1 < n {
						a2 := c.R[u.a2&15] + c.R[u.b2&15]*Word(u.s2) + Word(u.imm2)
						var v2 Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v2 = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v2, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.F[u.d2&15] = math.Float64frombits(v2)
						i++
					}
				case uPFLdXFSt: // floadX ; fstore
					addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.F[u.d&15] = math.Float64frombits(v)
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.wlen {
							leStore(e.seg.Data, a2-e.base, math.Float64bits(c.F[u.d2&15]))
						} else if flt := icStoreSlow(m, e, a2, math.Float64bits(c.F[u.d2&15])); flt != nil {
							c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 2, false
						}
						i++
					}
				case uPFLdXLd: // floadX ; load
					addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.F[u.d&15] = math.Float64frombits(v)
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v2 Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v2 = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v2, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.R[u.d2&15] = v2
						i++
					}
				case uPLdLdX: // load ; loadX
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
					if i+1 < n {
						a2 := c.R[u.a2&15] + c.R[u.b2&15]*Word(u.s2) + Word(u.imm2)
						var v2 Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v2 = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v2, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.R[u.d2&15] = v2
						i++
					}
				case uPLdXLd: // loadX ; load
					addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v2 Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v2 = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v2, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.R[u.d2&15] = v2
						i++
					}
				case uPLdSetI, uPLdSetR: // load ; set
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
					if i+1 < n {
						s2 := u.imm2
						if u.op == uPLdSetR {
							s2 = int64(c.R[u.b2&15])
						}
						c.R[u.d2&15] = boolWord(cmpInt(u.cond2, int64(c.R[u.a2&15]), s2))
						i++
					}
				case uPSetISt, uPSetRSt: // set ; store
					s1 := u.imm
					if u.op == uPSetRSt {
						s1 = int64(c.R[u.b&15])
					}
					c.R[u.d&15] = boolWord(cmpInt(u.cond, int64(c.R[u.a&15]), s1))
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.wlen {
							leStore(e.seg.Data, a2-e.base, c.R[u.d2&15])
						} else if flt := icStoreSlow(m, e, a2, c.R[u.d2&15]); flt != nil {
							c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 2, false
						}
						i++
					}
				case uPAddRSt, uPAddISt: // add ; store
					if u.op == uPAddRSt {
						c.R[u.d&15] = c.R[u.a&15] + c.R[u.b&15]
					} else {
						c.R[u.d&15] = c.R[u.a&15] + Word(u.imm)
					}
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.wlen {
							leStore(e.seg.Data, a2-e.base, c.R[u.d2&15])
						} else if flt := icStoreSlow(m, e, a2, c.R[u.d2&15]); flt != nil {
							c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 2, false
						}
						i++
					}
				case uPLdAddR, uPLdAddI: // load ; add
					addr := c.R[u.a&15] + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.R[u.d&15] = v
					if i+1 < n {
						if u.op == uPLdAddR {
							c.R[u.d2&15] = c.R[u.a2&15] + c.R[u.b2&15]
						} else {
							c.R[u.d2&15] = c.R[u.a2&15] + Word(u.imm2)
						}
						i++
					}
				case uPMovFMov: // mov ; fmov — O1 copy coalescing
					c.R[u.d&15] = c.R[u.a&15]
					if i+1 < n {
						c.F[u.d2&15] = c.F[u.a2&15]
						i++
					}
				case uPAddIMov: // addI ; mov
					c.R[u.d&15] = c.R[u.a&15] + Word(u.imm)
					if i+1 < n {
						c.R[u.d2&15] = c.R[u.a2&15]
						i++
					}
				case uPFMulFAdd: // fmul ; fadd
					c.F[u.d&15] = c.F[u.a&15] * c.F[u.b&15]
					if i+1 < n {
						c.F[u.d2&15] = c.F[u.a2&15] + c.F[u.b2&15]
						i++
					}
				case uPAddRLd: // addR ; load
					c.R[u.d&15] = c.R[u.a&15] + c.R[u.b&15]
					if i+1 < n {
						a2 := c.R[u.a2&15] + Word(u.imm2)
						var v Word
						if e := &ics[u.ic2]; e.gen == gen && a2&7 == 0 && a2-e.base < e.rlen {
							v = leLoad(e.seg.Data, a2-e.base)
						} else {
							var flt *Fault
							if v, flt = icLoadSlow(m, e, a2); flt != nil {
								c.superTrap(base, entry, i+1, done, img, flt.Sig, flt.Addr, cnts)
								return done + uint64(i) + 2, false
							}
						}
						c.R[u.d2&15] = v
						i++
					}
				case uPFLdXFMul: // floadX ; fmul
					addr := c.R[u.a&15] + c.R[u.b&15]*Word(u.scale) + Word(u.imm)
					var v Word
					if e := &ics[u.ic]; e.gen == gen && addr&7 == 0 && addr-e.base < e.rlen {
						v = leLoad(e.seg.Data, addr-e.base)
					} else {
						var flt *Fault
						if v, flt = icLoadSlow(m, e, addr); flt != nil {
							c.superTrap(base, entry, i, done, img, flt.Sig, flt.Addr, cnts)
							return done + uint64(i) + 1, false
						}
					}
					c.F[u.d&15] = math.Float64frombits(v)
					if i+1 < n {
						c.F[u.d2&15] = c.F[u.a2&15] * c.F[u.b2&15]
						i++
					}
				case uPFAddAddI: // fadd ; addI
					c.F[u.d&15] = c.F[u.a&15] + c.F[u.b&15]
					if i+1 < n {
						c.R[u.d2&15] = c.R[u.a2&15] + Word(u.imm2)
						i++
					}
				}
			}
			if cnts != nil {
				for j := entry; j < entry+n; j++ {
					cnts[j]++
				}
			}
			done += uint64(n)
			idx = entry + n
			if idx == stopIdx {
				c.stopExit(base+Word(8*idx), done)
				return done, false
			}
			// An unclamped chain always lands on a runLen-0 µop (its
			// terminating branch/call/punt — runLen has no cap), so fall
			// straight into the control switch instead of paying another
			// outer-loop dispatch round; the clamped cases (budget, end of
			// image) still take the loop prologue.
			if done < budget && uint(idx) < uint(len(fuops)) {
				goto control
			}
			continue
		}

		// runLen is 0: idx sits on a control (or punting) µop.
	control:
		u := &fuops[idx]
		switch u.op {
		case uPunt:
			c.PC = base + Word(8*idx)
			c.Dyn += done
			return done, true
		case uJmp:
			done++
			if cnts != nil {
				cnts[idx]++
			}
			if t := int(u.tidx); t >= 0 {
				idx = t
				if idx == stopIdx {
					c.stopExit(base+Word(8*idx), done)
					return done, false
				}
				continue
			}
			// Demoted at predecode: materialise the exact target PC and
			// return to Run's dispatch (which re-resolves or traps).
			pc := u.target
			if c.StopPCSet && pc == c.StopPC {
				c.stopExit(pc, done)
				return done, false
			}
			c.PC = pc
			c.Dyn += done
			return done, false
		case uJnz, uJz:
			done++
			if cnts != nil {
				cnts[idx]++
			}
			if (c.R[u.a&15] != 0) != (u.op == uJnz) {
				// Not taken: plain fallthrough retirement.
				idx++
				if idx == stopIdx {
					c.stopExit(base+Word(8*idx), done)
					return done, false
				}
				continue
			}
			if t := int(u.tidx); t >= 0 {
				idx = t
				if idx == stopIdx {
					c.stopExit(base+Word(8*idx), done)
					return done, false
				}
				continue
			}
			pc := u.target
			if c.StopPCSet && pc == c.StopPC {
				c.stopExit(pc, done)
				return done, false
			}
			c.PC = pc
			c.Dyn += done
			return done, false
		case uCall:
			// The stack write commits SP only on success, so a faulting
			// call leaves SP exactly where the Step loop's restore does.
			sp := c.R[SP] - 8
			if e := sIC; e.gen == gen && sp&7 == 0 && sp-e.base < e.wlen {
				leStore(e.seg.Data, sp-e.base, base+Word(8*idx)+8)
			} else if flt := icStoreSlow(m, e, sp, base+Word(8*idx)+8); flt != nil {
				c.blockTrap(base+Word(8*idx), done, img, idx, flt.Sig, flt.Addr)
				return done + 1, false
			}
			c.R[SP] = sp
			done++
			if cnts != nil {
				cnts[idx]++
			}
			if t := int(u.tidx); t >= 0 {
				idx = t
				if idx == stopIdx {
					c.stopExit(base+Word(8*idx), done)
					return done, false
				}
				continue
			}
			pc := u.target
			if c.StopPCSet && pc == c.StopPC {
				c.stopExit(pc, done)
				return done, false
			}
			c.PC = pc
			c.Dyn += done
			return done, false
		case uRet:
			var ra Word
			if e := sIC; e.gen == gen && c.R[SP]&7 == 0 && c.R[SP]-e.base < e.rlen {
				ra = leLoad(e.seg.Data, c.R[SP]-e.base)
			} else {
				var flt *Fault
				if ra, flt = icLoadSlow(m, e, c.R[SP]); flt != nil {
					c.blockTrap(base+Word(8*idx), done, img, idx, flt.Sig, flt.Addr)
					return done + 1, false
				}
			}
			c.R[SP] += 8
			done++
			if cnts != nil {
				cnts[idx]++
			}
			// The return address is computed, so it links at runtime: re-
			// enter the µop array when it stays aligned inside this image,
			// else fall out to dispatch with the exact PC (which also
			// covers corrupted return addresses — the misaligned-PC
			// delegation above takes over on re-entry).
			if off := ra - base; off&7 == 0 && off>>3 < Word(len(fuops)) {
				idx = int(off >> 3)
				if idx == stopIdx {
					c.stopExit(ra, done)
					return done, false
				}
				continue
			}
			if c.StopPCSet && ra == c.StopPC {
				c.stopExit(ra, done)
				return done, false
			}
			c.PC = ra
			c.Dyn += done
			return done, false
		}
	}
	c.PC = base + Word(8*idx)
	c.Dyn += done
	return done, false
}
