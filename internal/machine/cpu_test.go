package machine

import (
	"math"
	"testing"

	"care/internal/debuginfo"
	"care/internal/hostenv"
)

// asm assembles a raw program at the conventional app base and returns
// a ready-to-step CPU.
func asm(t *testing.T, code []MInstr) (*CPU, *Image) {
	t.Helper()
	p := &Program{
		Name:     "asm",
		CodeBase: AppCodeBase,
		Code:     code,
		Funcs:    []FuncSym{{Name: "_start", Entry: 0}},
		Debug:    debuginfo.New(),
	}
	mem := NewMemory()
	img, err := Load(mem, p)
	if err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(mem, hostenv.NewEnv())
	cpu.Attach(img)
	if err := cpu.InitStack(); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Start(img, "_start"); err != nil {
		t.Fatal(err)
	}
	return cpu, img
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   MOp
		a, b int64
		want int64
	}{
		{MAdd, 5, 3, 8},
		{MSub, 5, 3, 2},
		{MMul, -4, 6, -24},
		{MDiv, -7, 2, -3}, // C-style truncation
		{MRem, -7, 2, -1},
		{MAnd, 0b1100, 0b1010, 0b1000},
		{MOr, 0b1100, 0b1010, 0b1110},
		{MXor, 0b1100, 0b1010, 0b0110},
		{MShl, 3, 4, 48},
		{MShr, -16, 2, -4},
	}
	for _, c := range cases {
		cpu, _ := asm(t, []MInstr{
			{Op: MMovImm, Rd: R1, Imm: c.a},
			{Op: MMovImm, Rd: R2, Imm: c.b},
			{Op: c.op, Rd: R3, Ra: R1, Rb: R2},
			{Op: MHalt, Ra: R3},
		})
		if st := cpu.Run(100); st != StatusExited {
			t.Fatalf("%s: %v", c.op, st)
		}
		if int64(cpu.ExitCode) != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, int64(cpu.ExitCode), c.want)
		}
	}
}

func TestImmediateOperand(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 10},
		{Op: MMul, Rd: R1, Ra: R1, UseImm: true, Imm: -3},
		{Op: MHalt, Ra: R1},
	})
	cpu.Run(10)
	if int64(cpu.ExitCode) != -30 {
		t.Fatalf("got %d", int64(cpu.ExitCode))
	}
}

func TestDivideByZeroRaisesSIGFPE(t *testing.T) {
	for _, op := range []MOp{MDiv, MRem} {
		cpu, _ := asm(t, []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 42},
			{Op: MMovImm, Rd: R2, Imm: 0},
			{Op: op, Rd: R3, Ra: R1, Rb: R2},
			{Op: MHalt, Ra: R3},
		})
		if st := cpu.Run(10); st != StatusTrapped || cpu.PendingTrap.Sig != SigFPE {
			t.Fatalf("%s/0: %v %v", op, st, cpu.PendingTrap)
		}
	}
	// INT64_MIN / -1 overflows.
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: math.MinInt64},
		{Op: MMovImm, Rd: R2, Imm: -1},
		{Op: MDiv, Rd: R3, Ra: R1, Rb: R2},
		{Op: MHalt},
	})
	if st := cpu.Run(10); st != StatusTrapped || cpu.PendingTrap.Sig != SigFPE {
		t.Fatalf("MIN/-1: %v %v", st, cpu.PendingTrap)
	}
}

func TestFloatOps(t *testing.T) {
	bits := func(f float64) int64 { return int64(math.Float64bits(f)) }
	cpu, _ := asm(t, []MInstr{
		{Op: MFMovImm, Fd: 1, Imm: bits(2.5)},
		{Op: MFMovImm, Fd: 2, Imm: bits(4.0)},
		{Op: MFMul, Fd: 3, Fa: 1, Fb: 2},
		{Op: MFSub, Fd: 3, Fa: 3, Fb: 1}, // 10 - 2.5
		{Op: MCvtFI, Rd: R0, Fa: 3},
		{Op: MHalt, Ra: R0},
	})
	cpu.Run(10)
	if cpu.ExitCode != 7 {
		t.Fatalf("float pipeline got %d", cpu.ExitCode)
	}
	if cpu.F[3] != 7.5 {
		t.Fatalf("f3 = %v", cpu.F[3])
	}
}

func TestBitMoves(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: int64(math.Float64bits(3.25))},
		{Op: MBitIF, Fd: 4, Ra: R1},
		{Op: MBitFI, Rd: R2, Fa: 4},
		{Op: MHalt, Ra: R2},
	})
	cpu.Run(10)
	if math.Float64frombits(uint64(cpu.ExitCode)) != 3.25 {
		t.Fatal("bit moves lossy")
	}
}

func TestMemoryOperandAddressing(t *testing.T) {
	cpu2, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0x30000}, // base
		{Op: MMovImm, Rd: R2, Imm: 3},       // index
		{Op: MMovImm, Rd: R3, Imm: 0xabcd},  // value
		{Op: MStore, Base: R1, Index: R2, Scale: 8, Disp: 16, Ra: R3},
		{Op: MLoad, Rd: R4, Base: R1, Index: NoReg, Disp: 40}, // 3*8+16
		{Op: MHalt, Ra: R4},
	})
	if _, err := cpu2.Mem.Map(0x30000, 0x1000, "data"); err != nil {
		t.Fatal(err)
	}
	if st := cpu2.Run(10); st != StatusExited {
		t.Fatalf("%v %v", st, cpu2.PendingTrap)
	}
	if cpu2.ExitCode != 0xabcd {
		t.Fatalf("loaded %x", cpu2.ExitCode)
	}
}

func TestLoadFaultReportsAddress(t *testing.T) {
	cpu, img := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0x123456789},
		{Op: MLoad, Rd: R2, Base: R1, Index: NoReg, Disp: 8, Line: 3, Col: 1},
		{Op: MHalt},
	})
	st := cpu.Run(10)
	if st != StatusTrapped {
		t.Fatalf("status %v", st)
	}
	tr := cpu.PendingTrap
	if tr.Sig != SigSEGV || tr.Addr != 0x123456791 {
		t.Fatalf("trap %+v", tr)
	}
	if tr.Img != img || tr.Idx != 1 {
		t.Fatalf("trap attribution %+v", tr)
	}
	if tr.Instr.Op != MLoad {
		t.Fatal("trap instruction wrong")
	}
}

func TestHandlerPatchAndResume(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0xdead0000}, // bad base
		{Op: MLoad, Rd: R2, Base: R1, Index: NoReg},
		{Op: MHalt, Ra: R2},
	})
	if _, err := cpu.Mem.Map(0x60000, 0x1000, "good"); err != nil {
		t.Fatal(err)
	}
	if f := cpu.Mem.Write(0x60000, 777); f != nil {
		t.Fatal(f)
	}
	calls := 0
	cpu.Handler = func(c *CPU, tr *Trap) TrapAction {
		calls++
		c.R[R1] = 0x60000 // repair the base register
		return TrapResume
	}
	if st := cpu.Run(10); st != StatusExited {
		t.Fatalf("%v", st)
	}
	if calls != 1 || cpu.ExitCode != 777 {
		t.Fatalf("calls=%d exit=%d", calls, cpu.ExitCode)
	}
}

func TestHandlerKillPropagates(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0xdead0000},
		{Op: MLoad, Rd: R2, Base: R1, Index: NoReg},
		{Op: MHalt},
	})
	cpu.Handler = func(c *CPU, tr *Trap) TrapAction { return TrapKill }
	if st := cpu.Run(10); st != StatusTrapped {
		t.Fatalf("%v", st)
	}
}

func TestCallRetAndStack(t *testing.T) {
	// _start: push 5; push 7; call f; add sp, 16; halt r0
	// f: prologue; r0 = arg0 - arg1; epilogue
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 5},
		{Op: MPush, Ra: R1}, // arg0 (deepest)
		{Op: MMovImm, Rd: R1, Imm: 7},
		{Op: MPush, Ra: R1},                               // arg1
		{Op: MCall, Target: AppCodeBase + 8*7, Sym: "f"},  // idx 4
		{Op: MAdd, Rd: SP, Ra: SP, UseImm: true, Imm: 16}, // idx 5
		{Op: MHalt, Ra: R0},                               // idx 6
		// f at idx 7:
		{Op: MPush, Ra: FP},
		{Op: MMov, Rd: FP, Ra: SP},
		{Op: MLoad, Rd: R1, Base: FP, Index: NoReg, Disp: 24}, // arg0
		{Op: MLoad, Rd: R2, Base: FP, Index: NoReg, Disp: 16}, // arg1
		{Op: MSub, Rd: R0, Ra: R1, Rb: R2},
		{Op: MMov, Rd: SP, Ra: FP},
		{Op: MPop, Rd: FP},
		{Op: MRet},
	}
	cpu, _ := asm(t, code)
	if st := cpu.Run(100); st != StatusExited {
		t.Fatalf("%v trap=%v pc=%x", st, cpu.PendingTrap, cpu.PC)
	}
	if int64(cpu.ExitCode) != -2 {
		t.Fatalf("5-7 = %d", int64(cpu.ExitCode))
	}
	if cpu.R[SP] != StackTop {
		t.Fatalf("stack imbalance: sp=0x%x", cpu.R[SP])
	}
}

func TestWildJumpRaisesSIGILL(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MJmp, Target: 0x1234},
		{Op: MHalt},
	})
	if st := cpu.Run(10); st != StatusTrapped || cpu.PendingTrap.Sig != SigILL {
		t.Fatalf("%v %v", st, cpu.PendingTrap)
	}
}

func TestAbortRaisesSIGABRT(t *testing.T) {
	cpu, _ := asm(t, []MInstr{{Op: MAbort}})
	if st := cpu.Run(10); st != StatusTrapped || cpu.PendingTrap.Sig != SigABRT {
		t.Fatalf("%v %v", st, cpu.PendingTrap)
	}
}

func TestConditionalBranches(t *testing.T) {
	// Compute max(3, 9) via set + jnz.
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 3},
		{Op: MMovImm, Rd: R2, Imm: 9},
		{Op: MSet, Cond: CondGT, Rd: R3, Ra: R1, Rb: R2},
		{Op: MJnz, Ra: R3, Target: AppCodeBase + 8*5},
		{Op: MMov, Rd: R1, Ra: R2}, // not taken path: r1 = r2
		{Op: MHalt, Ra: R1},        // idx 5
	}
	cpu, _ := asm(t, code)
	cpu.Run(10)
	if cpu.ExitCode != 9 {
		t.Fatalf("max = %d", cpu.ExitCode)
	}
}

func TestStopPC(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R0, Imm: 99},
		{Op: MJmp, Target: 0x7eee00000000},
		{Op: MHalt},
	})
	cpu.StopPC, cpu.StopPCSet = 0x7eee00000000, true
	if st := cpu.Run(10); st != StatusExited || cpu.ExitCode != 99 {
		t.Fatalf("%v exit=%d", st, cpu.ExitCode)
	}
}

func TestProfilingCounts(t *testing.T) {
	// Loop 5 times.
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0},
		{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 1}, // idx 1
		{Op: MSet, Cond: CondLT, Rd: R2, Ra: R1, UseImm: true, Imm: 5},
		{Op: MJnz, Ra: R2, Target: AppCodeBase + 8},
		{Op: MHalt, Ra: R1},
	}
	cpu, img := asm(t, code)
	cpu.Profile = true
	cpu.Run(100)
	if cpu.ExitCode != 5 {
		t.Fatalf("loop result %d", cpu.ExitCode)
	}
	cnts := cpu.Counts[img]
	if cnts[1] != 5 || cnts[0] != 1 {
		t.Fatalf("counts %v", cnts[:5])
	}
	total := uint64(0)
	for _, c := range cnts {
		total += c
	}
	if total != cpu.Dyn {
		t.Fatalf("profile total %d != dyn %d", total, cpu.Dyn)
	}
}

func TestHostCallMarshalling(t *testing.T) {
	// result_f64(1.5) via stack arg, then exit(0) via halt.
	code := []MInstr{
		{Op: MFMovImm, Fd: 1, Imm: int64(math.Float64bits(1.5))},
		{Op: MFPush, Fa: 1},
		{Op: MHost, Host: "result_f64", HostArgs: 1},
		{Op: MAdd, Rd: SP, Ra: SP, UseImm: true, Imm: 8},
		{Op: MHalt},
	}
	cpu, _ := asm(t, code)
	if st := cpu.Run(10); st != StatusExited {
		t.Fatalf("%v", st)
	}
	if len(cpu.Env.Results) != 1 || cpu.Env.Results[0] != 1.5 {
		t.Fatalf("results %v", cpu.Env.Results)
	}
}

func TestRunLimitIsResumable(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0},
		{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 1},
		{Op: MSet, Cond: CondLT, Rd: R2, Ra: R1, UseImm: true, Imm: 1000},
		{Op: MJnz, Ra: R2, Target: AppCodeBase + 8},
		{Op: MHalt, Ra: R1},
	}
	cpu, _ := asm(t, code)
	slices := 0
	for cpu.Run(100) == StatusLimit {
		slices++
		if slices > 1000 {
			t.Fatal("never finished")
		}
	}
	if cpu.Status != StatusExited || cpu.ExitCode != 1000 {
		t.Fatalf("%v %d", cpu.Status, cpu.ExitCode)
	}
	if slices < 5 {
		t.Fatalf("expected many slices, got %d", slices)
	}
}

func TestAfterStepHookFires(t *testing.T) {
	cpu, _ := asm(t, []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 1},
		{Op: MMovImm, Rd: R2, Imm: 2},
		{Op: MHalt},
	})
	var seen []MOp
	cpu.AfterStep = func(c *CPU, img *Image, idx int, in *MInstr) {
		seen = append(seen, in.Op)
	}
	cpu.Run(10)
	if len(seen) != 2 || seen[0] != MMovImm {
		t.Fatalf("hook saw %v", seen)
	}
}
