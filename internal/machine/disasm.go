package machine

import (
	"fmt"
	"strings"
)

// MemOperand describes the memory operand of a load/store as the
// disassembler (the capstone stand-in) reports it to Safeguard.
type MemOperand struct {
	Base  Reg
	Index Reg // NoReg when absent
	Scale uint8
	Disp  int64
	// IsStore distinguishes the write side.
	IsStore bool
	// IsFloat marks float loads/stores.
	IsFloat bool
}

// DecodeMemOperand inspects an instruction and, if it dereferences
// memory, returns its memory operand.
func DecodeMemOperand(in *MInstr) (MemOperand, bool) {
	if !in.Op.IsMemAccess() {
		return MemOperand{}, false
	}
	return MemOperand{
		Base:    in.Base,
		Index:   in.Index,
		Scale:   in.Scale,
		Disp:    in.Disp,
		IsStore: in.Op == MStore || in.Op == MFStore,
		IsFloat: in.Op == MFLoad || in.Op == MFStore,
	}, true
}

// Disassemble renders assembler text for one instruction.
func Disassemble(in *MInstr) string {
	mem := func() string {
		var sb strings.Builder
		sb.WriteString("[")
		sb.WriteString(in.Base.String())
		if in.Index != NoReg {
			fmt.Fprintf(&sb, "+%s*%d", in.Index, in.Scale)
		}
		if in.Disp != 0 {
			fmt.Fprintf(&sb, "%+d", in.Disp)
		}
		sb.WriteString("]")
		return sb.String()
	}
	src2 := func() string {
		if in.UseImm {
			return fmt.Sprintf("%d", in.Imm)
		}
		return in.Rb.String()
	}
	switch in.Op {
	case MNop:
		return "nop"
	case MMovImm:
		return fmt.Sprintf("movi %s, %d", in.Rd, in.Imm)
	case MMov:
		return fmt.Sprintf("mov %s, %s", in.Rd, in.Ra)
	case MAdd, MSub, MMul, MDiv, MRem, MAnd, MOr, MXor, MShl, MShr:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Ra, src2())
	case MFMovImm:
		return fmt.Sprintf("fmovi %s, bits(0x%x)", in.Fd, uint64(in.Imm))
	case MFMov:
		return fmt.Sprintf("fmov %s, %s", in.Fd, in.Fa)
	case MFAdd, MFSub, MFMul, MFDiv:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Fd, in.Fa, in.Fb)
	case MCvtIF:
		return fmt.Sprintf("cvtif %s, %s", in.Fd, in.Ra)
	case MCvtFI:
		return fmt.Sprintf("cvtfi %s, %s", in.Rd, in.Fa)
	case MBitIF:
		return fmt.Sprintf("bitif %s, %s", in.Fd, in.Ra)
	case MBitFI:
		return fmt.Sprintf("bitfi %s, %s", in.Rd, in.Fa)
	case MSet:
		return fmt.Sprintf("set.%s %s, %s, %s", in.Cond, in.Rd, in.Ra, src2())
	case MFSet:
		return fmt.Sprintf("fset.%s %s, %s, %s", in.Cond, in.Rd, in.Fa, in.Fb)
	case MLea:
		return fmt.Sprintf("lea %s, %s", in.Rd, mem())
	case MLoad:
		return fmt.Sprintf("load %s, %s", in.Rd, mem())
	case MFLoad:
		return fmt.Sprintf("fload %s, %s", in.Fd, mem())
	case MStore:
		return fmt.Sprintf("store %s, %s", mem(), in.Ra)
	case MFStore:
		return fmt.Sprintf("fstore %s, %s", mem(), in.Fa)
	case MJmp:
		return fmt.Sprintf("jmp 0x%x", in.Target)
	case MJnz:
		return fmt.Sprintf("jnz %s, 0x%x", in.Ra, in.Target)
	case MJz:
		return fmt.Sprintf("jz %s, 0x%x", in.Ra, in.Target)
	case MCall:
		return fmt.Sprintf("call 0x%x <%s>", in.Target, in.Sym)
	case MRet:
		return "ret"
	case MPush:
		return fmt.Sprintf("push %s", in.Ra)
	case MPop:
		return fmt.Sprintf("pop %s", in.Rd)
	case MFPush:
		return fmt.Sprintf("fpush %s", in.Fa)
	case MFPop:
		return fmt.Sprintf("fpop %s", in.Fd)
	case MHost:
		return fmt.Sprintf("host %s/%d", in.Host, in.HostArgs)
	case MAbort:
		return "abort"
	case MHalt:
		return fmt.Sprintf("halt %s", in.Ra)
	}
	return fmt.Sprintf("?%d", in.Op)
}

// DisassembleProgram renders the whole image with addresses and source
// keys, for debugging and documentation. The annotations explain how
// the engine tiers see each instruction:
//
//	; step             punts to the legacy per-instruction loop
//	                   (host calls, halt/abort, malformed operands)
//	; sb+N             leads a superblock of N fused fallthrough µops
//	; sb-entry         a linked branch lands here (chain re-entry point)
//	; linked           branch resolved to a µop index at predecode
//	; demoted(REASON)  branch returns to dispatch instead of linking
//	                   (target-outside-image, target-mid-instruction,
//	                   target-punts)
//
// so care-disasm output shows exactly why a region won't fuse.
func DisassembleProgram(p *Program) string {
	return DisassembleProgramAnnotated(p, nil)
}

// DisassembleProgramAnnotated is DisassembleProgram with a caller-chosen
// source-location annotator: when annotate returns a non-empty string
// for an instruction's (line, col) debug stamp, that string replaces the
// default `!line:col` marker. care-disasm uses it to label instructions
// a defense pass inserted (their reserved negative provenance columns
// map back to the pass name), keeping machine free of any dependency on
// the defense registry.
func DisassembleProgramAnnotated(p *Program, annotate func(line, col int32) string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %s (O%d) code@0x%x data@0x%x\n", p.Name, p.OptLevel, p.CodeBase, p.GlobalBase)
	fnAt := map[int]string{}
	for _, f := range p.Funcs {
		fnAt[f.Entry] = f.Name
	}
	plan := p.plan()
	entries := map[int]bool{}
	for i := range plan.uops {
		if t := plan.uops[i].tidx; t >= 0 {
			entries[int(t)] = true
		}
	}
	for i := range p.Code {
		if n, ok := fnAt[i]; ok {
			fmt.Fprintf(&sb, "\n%s:\n", n)
		}
		in := &p.Code[i]
		fmt.Fprintf(&sb, "  0x%08x  %-40s", p.AddrOf(i), Disassemble(in))
		u := &plan.uops[i]
		switch {
		case u.op == uPunt:
			sb.WriteString(" ; step")
		case u.op == uJmp || u.op == uJnz || u.op == uJz || u.op == uCall:
			if u.tidx >= 0 {
				sb.WriteString(" ; linked")
			} else if _, reason := linkTarget(p, plan.uops, u.target); reason != "" {
				fmt.Fprintf(&sb, " ; demoted(%s)", reason)
			}
		case plan.runLen[i] > 0 && (i == 0 || plan.runLen[i-1] == 0):
			fmt.Fprintf(&sb, " ; sb+%d", plan.runLen[i])
		}
		if entries[i] {
			sb.WriteString(" ; sb-entry")
		}
		mark := ""
		if annotate != nil {
			mark = annotate(in.Line, in.Col)
		}
		if mark != "" {
			fmt.Fprintf(&sb, " ; %s", mark)
		} else if in.Line != 0 || in.Col != 0 {
			fmt.Fprintf(&sb, " ; !%d:%d", in.Line, in.Col)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
