package machine

import (
	"fmt"
	"testing"

	"care/internal/debuginfo"
	"care/internal/hostenv"
	"care/internal/trace"
)

// fastTiers are the engine tiers the differential tests check against
// the Step-loop reference.
var fastTiers = []InterpTier{TierSuperblock, TierBlock}

// dualAsm assembles the same raw program twice: one CPU on the given
// engine tier, one forced onto the legacy Step loop. Separate Programs
// (and memories) keep the two runs fully independent.
func dualAsm(t *testing.T, code []MInstr, setup func(c *CPU), tier InterpTier) (fast, step *CPU) {
	t.Helper()
	mk := func() *CPU {
		p := &Program{
			Name:     "asm",
			CodeBase: AppCodeBase,
			Code:     append([]MInstr(nil), code...),
			Funcs:    []FuncSym{{Name: "_start", Entry: 0}},
			Debug:    debuginfo.New(),
		}
		mem := NewMemory()
		img, err := Load(mem, p)
		if err != nil {
			t.Fatal(err)
		}
		cpu := NewCPU(mem, hostenv.NewEnv())
		cpu.Attach(img)
		if err := cpu.InitStack(); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Start(img, "_start"); err != nil {
			t.Fatal(err)
		}
		if setup != nil {
			setup(cpu)
		}
		return cpu
	}
	fast = mk()
	fast.Tier = tier
	step = mk()
	step.Tier = TierStep
	return fast, step
}

// compareCPUs asserts the full architectural state of the two runs is
// identical: registers, PC, Dyn, status, exit code, pending trap, and
// every writable memory segment.
func compareCPUs(t *testing.T, block, step *CPU) {
	t.Helper()
	if block.R != step.R {
		t.Errorf("R mismatch:\n block %v\n step  %v", block.R, step.R)
	}
	if block.F != step.F {
		t.Errorf("F mismatch:\n block %v\n step  %v", block.F, step.F)
	}
	if block.PC != step.PC {
		t.Errorf("PC mismatch: block 0x%x step 0x%x", block.PC, step.PC)
	}
	if block.Dyn != step.Dyn {
		t.Errorf("Dyn mismatch: block %d step %d", block.Dyn, step.Dyn)
	}
	if block.Status != step.Status {
		t.Errorf("status mismatch: block %v step %v", block.Status, step.Status)
	}
	if block.ExitCode != step.ExitCode {
		t.Errorf("exit code mismatch: block %d step %d", block.ExitCode, step.ExitCode)
	}
	bt, st := block.PendingTrap, step.PendingTrap
	if (bt == nil) != (st == nil) {
		t.Fatalf("trap mismatch: block %v step %v", bt, st)
	}
	if bt != nil && (bt.Sig != st.Sig || bt.PC != st.PC || bt.Addr != st.Addr || bt.Idx != st.Idx) {
		t.Errorf("trap mismatch:\n block %+v\n step  %+v", bt, st)
	}
	bs, ss := block.Mem.Segments(), step.Mem.Segments()
	if len(bs) != len(ss) {
		t.Fatalf("segment count mismatch: block %d step %d", len(bs), len(ss))
	}
	for i := range bs {
		if bs[i].Base != ss[i].Base || len(bs[i].Data) != len(ss[i].Data) {
			t.Fatalf("segment %d layout mismatch", i)
		}
		if bs[i].ReadOnly() {
			continue
		}
		for j := range bs[i].Data {
			if bs[i].Data[j] != ss[i].Data[j] {
				t.Errorf("segment %s byte 0x%x differs: block %#x step %#x",
					bs[i].Name, bs[i].Base+Word(j), bs[i].Data[j], ss[i].Data[j])
				break
			}
		}
	}
}

// runDual drives every fast tier against a fresh Step-loop reference
// with the same budget and compares the final state.
func runDual(t *testing.T, code []MInstr, setup func(c *CPU), limit uint64) {
	t.Helper()
	for _, tier := range fastTiers {
		t.Run(tier.String(), func(t *testing.T) {
			fast, step := dualAsm(t, code, setup, tier)
			if got, want := fast.Run(limit), step.Run(limit); got != want {
				t.Errorf("run status: %v %v step %v", tier, got, want)
			}
			compareCPUs(t, fast, step)
		})
	}
}

// loopProgram is a memory-touching counted loop covering loads, stores,
// indexed addressing, ALU with immediates and registers, compare+branch
// and float traffic — the steady-state mix.
func loopProgram(n int64) []MInstr {
	return []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0},
		{Op: MMovImm, Rd: R4, Imm: 0x30000},
		{Op: MMovImm, Rd: R5, Imm: n},
		{Op: MLoad, Rd: R2, Base: R4, Index: R1, Scale: 8, Disp: 0}, // idx 3
		{Op: MAdd, Rd: R2, Ra: R2, UseImm: true, Imm: 3},
		{Op: MMul, Rd: R6, Ra: R2, Rb: R2},
		{Op: MStore, Base: R4, Index: R1, Scale: 8, Disp: 0, Ra: R6},
		{Op: MCvtIF, Fd: 1, Ra: R2},
		{Op: MFMul, Fd: 2, Fa: 1, Fb: 1},
		{Op: MFStore, Base: R4, Disp: 64, Fa: 2},
		{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 1},
		{Op: MAnd, Rd: R1, Ra: R1, UseImm: true, Imm: 7},
		{Op: MSub, Rd: R5, Ra: R5, UseImm: true, Imm: 1},
		{Op: MSet, Cond: CondGT, Rd: R3, Ra: R5, UseImm: true, Imm: 0},
		{Op: MJnz, Ra: R3, Target: AppCodeBase + 8*3},
		{Op: MHalt, Ra: R5},
	}
}

func mapData(t *testing.T) func(c *CPU) {
	return func(c *CPU) {
		t.Helper()
		if _, err := c.Mem.Map(0x30000, 256*8, "data"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineMatchesStepLoop(t *testing.T) {
	runDual(t, loopProgram(500), mapData(t), 0)
}

// TestEngineBudgetSweep pauses both engines at every budget around the
// loop boundary: StatusLimit must fire on the same dynamic instruction
// with the same lazily-materialised PC.
func TestEngineBudgetSweep(t *testing.T) {
	for limit := uint64(1); limit <= 40; limit++ {
		t.Run(fmt.Sprintf("limit%d", limit), func(t *testing.T) {
			runDual(t, loopProgram(500), mapData(t), limit)
		})
	}
}

// TestEngineResumesAfterLimit slices one run into many Run calls and
// checks the result equals a single uninterrupted run.
func TestEngineResumesAfterLimit(t *testing.T) {
	for _, tier := range fastTiers {
		t.Run(tier.String(), func(t *testing.T) {
			fast, step := dualAsm(t, loopProgram(200), mapData(t), tier)
			for fast.Status != StatusExited {
				fast.Run(7)
			}
			step.Run(0)
			compareCPUs(t, fast, step)
		})
	}
}

func TestEngineTrapParity(t *testing.T) {
	cases := []struct {
		name string
		code []MInstr
		sig  Signal
	}{
		{"segv-load", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 0x999000},
			{Op: MLoad, Rd: R2, Base: R1},
			{Op: MHalt},
		}, SigSEGV},
		{"segv-store-to-code", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: int64(AppCodeBase)},
			{Op: MStore, Base: R1, Ra: R1},
			{Op: MHalt},
		}, SigSEGV},
		{"bus-misaligned", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 0x30004},
			{Op: MLoad, Rd: R2, Base: R1},
			{Op: MHalt},
		}, SigBUS},
		{"fpe-div-zero", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 9},
			{Op: MMovImm, Rd: R2, Imm: 0},
			{Op: MDiv, Rd: R3, Ra: R1, Rb: R2},
			{Op: MHalt},
		}, SigFPE},
		{"fpe-rem-overflow", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: -0x8000000000000000},
			{Op: MMovImm, Rd: R2, Imm: -1},
			{Op: MRem, Rd: R3, Ra: R1, Rb: R2},
			{Op: MHalt},
		}, SigFPE},
		{"ill-wild-jump", []MInstr{
			{Op: MJmp, Target: 0x1234568},
			{Op: MHalt},
		}, SigILL},
		{"segv-stack-underflow", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: int64(StackTop)},
			{Op: MMov, Rd: SP, Ra: R1},
			{Op: MPop, Rd: R2},
			{Op: MHalt},
		}, SigSEGV},
		{"abort", []MInstr{
			{Op: MNop},
			{Op: MAbort},
		}, SigABRT},
	}
	for _, tc := range cases {
		for _, tier := range fastTiers {
			t.Run(tc.name+"/"+tier.String(), func(t *testing.T) {
				fast, step := dualAsm(t, tc.code, mapData(t), tier)
				fast.Run(0)
				step.Run(0)
				if fast.Status != StatusTrapped || fast.PendingTrap.Sig != tc.sig {
					t.Fatalf("%v engine: want %v trap, got %v (%v)", tier, tc.sig, fast.Status, fast.PendingTrap)
				}
				compareCPUs(t, fast, step)
			})
		}
	}
}

// TestEngineMisalignedTrapPC corrupts the return address with low bits
// set: the lazy PC must round-trip the misalignment exactly (a PC
// reconstructed as base+8*idx would silently re-align it).
func TestEngineMisalignedTrapPC(t *testing.T) {
	code := []MInstr{
		{Op: MCall, Target: AppCodeBase + 8*3}, // call f
		{Op: MHalt},
		{Op: MNop},
		// f: corrupt the saved return address, then return through it.
		{Op: MLoad, Rd: R1, Base: SP},
		{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 3},
		{Op: MStore, Base: SP, Ra: R1},
		{Op: MRet},
	}
	for _, tier := range fastTiers {
		t.Run(tier.String(), func(t *testing.T) {
			fast, step := dualAsm(t, code, nil, tier)
			fast.Run(0)
			step.Run(0)
			compareCPUs(t, fast, step)
			if fast.PC&7 != 3 {
				t.Fatalf("misaligned PC low bits lost: 0x%x", fast.PC)
			}
		})
	}
}

// TestEngineStopPCMidBlock plants the stop sentinel on a branch target
// in the middle of the hot loop: the block engine must exit on the same
// retirement as the Step loop, not at the next block boundary.
func TestEngineStopPCMidBlock(t *testing.T) {
	for _, stopIdx := range []int{3, 10, 15} {
		t.Run(fmt.Sprintf("idx%d", stopIdx), func(t *testing.T) {
			setup := func(c *CPU) {
				mapData(t)(c)
				c.StopPC = AppCodeBase + Word(8*stopIdx)
				c.StopPCSet = true
			}
			runDual(t, loopProgram(5), setup, 0)
		})
	}
}

// TestEngineDeoptOnHookInstall installs a retire hook from a trap
// handler mid-run: the engine must fall back to the Step loop at the
// block boundary so the hook sees every subsequent retirement.
func TestEngineDeoptOnHookInstall(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 5},
		{Op: MMovImm, Rd: R2, Imm: 0},
		{Op: MDiv, Rd: R3, Ra: R1, Rb: R2}, // idx 2: traps SIGFPE
		{Op: MAdd, Rd: R4, Ra: R4, UseImm: true, Imm: 1},
		{Op: MAdd, Rd: R4, Ra: R4, UseImm: true, Imm: 1},
		{Op: MHalt, Ra: R4},
	}
	run := func(tier InterpTier) (hookRetires int, c *CPU) {
		p := &Program{Name: "asm", CodeBase: AppCodeBase, Code: code,
			Funcs: []FuncSym{{Name: "_start", Entry: 0}}, Debug: debuginfo.New()}
		mem := NewMemory()
		img, err := Load(mem, p)
		if err != nil {
			t.Fatal(err)
		}
		c = NewCPU(mem, hostenv.NewEnv())
		c.Tier = tier
		c.Attach(img)
		if err := c.InitStack(); err != nil {
			t.Fatal(err)
		}
		if err := c.Start(img, "_start"); err != nil {
			t.Fatal(err)
		}
		c.Handler = func(cc *CPU, tr *Trap) TrapAction {
			cc.R[R2] = 1 // patch the divisor and resume
			cc.AddAfterStep(func(*CPU, *Image, int, *MInstr) { hookRetires++ })
			return TrapResume
		}
		c.Run(0)
		return hookRetires, c
	}
	gotStep, cs := run(TierStep)
	for _, tier := range fastTiers {
		gotFast, cf := run(tier)
		if gotFast != gotStep {
			t.Errorf("hook retirements differ: %v %d step %d", tier, gotFast, gotStep)
		}
		if gotFast == 0 {
			t.Error("mid-run hook never observed a retirement")
		}
		compareCPUs(t, cf, cs)
	}
}

// TestEngineRemoveHookReopts checks that removing the last retire hook
// returns Run to the block engine (afterLive bookkeeping), and that
// removing one twice does not corrupt the count.
func TestEngineRemoveHookReopts(t *testing.T) {
	c, _ := asm(t, loopProgram(50))
	if _, err := c.Mem.Map(0x30000, 256*8, "data"); err != nil {
		t.Fatal(err)
	}
	r1 := c.AddAfterStep(func(*CPU, *Image, int, *MInstr) {})
	r2 := c.AddAfterStep(func(*CPU, *Image, int, *MInstr) {})
	if c.afterLive != 2 {
		t.Fatalf("afterLive = %d, want 2", c.afterLive)
	}
	r1()
	r1() // double-remove must be idempotent
	r2()
	if c.afterLive != 0 {
		t.Fatalf("afterLive = %d after removals, want 0", c.afterLive)
	}
	if st := c.Run(0); st != StatusExited {
		t.Fatalf("run: %v", st)
	}
}

// TestEngineProfileCounts checks per-static-instruction counts are
// identical between engines (including the cached counts-slice path).
func TestEngineProfileCounts(t *testing.T) {
	for _, tier := range fastTiers {
		t.Run(tier.String(), func(t *testing.T) {
			fast, step := dualAsm(t, loopProgram(100), func(c *CPU) {
				mapData(t)(c)
				c.Profile = true
			}, tier)
			fast.Run(0)
			step.Run(0)
			compareCPUs(t, fast, step)
			bi, si := fast.Images[0], step.Images[0]
			bc, sc := fast.Counts[bi], step.Counts[si]
			if len(bc) != len(sc) {
				t.Fatalf("counts length: %v %d step %d", tier, len(bc), len(sc))
			}
			for i := range bc {
				if bc[i] != sc[i] {
					t.Errorf("counts[%d]: %v %d step %d", i, tier, bc[i], sc[i])
				}
			}
		})
	}
}

// TestEngineTraceSpansMatch compares the trap spans both engines stamp.
func TestEngineTraceSpansMatch(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0x40},
		{Op: MLoad, Rd: R2, Base: R1}, // SEGV at 0x40
		{Op: MHalt},
	}
	tiers := Tiers()
	recs := make([]*trace.Recorder, len(tiers))
	for i, tier := range tiers {
		c, _ := dualAsm(t, code, nil, tier)
		recs[i] = trace.New(8)
		c.Trace = recs[i]
		c.Run(0)
	}
	ref := recs[len(recs)-1].Spans() // step reference
	if len(ref) == 0 {
		t.Fatal("step loop stamped no spans")
	}
	for i, tier := range tiers[:len(tiers)-1] {
		got := recs[i].Spans()
		if len(got) != len(ref) {
			t.Fatalf("span counts: %v %d step %d", tier, len(got), len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Errorf("span %d differs:\n %v %+v\n step  %+v", j, tier, got[j], ref[j])
			}
		}
	}
}

// TestInlineCacheInvalidation exercises the generation counter: a cached
// segment must not satisfy accesses after Unmap or Restore swaps the
// mapping under it.
func TestInlineCacheInvalidation(t *testing.T) {
	// Loop reading 0x30000 forever; pause, remap, resume.
	code := []MInstr{
		{Op: MMovImm, Rd: R4, Imm: 0x30000},
		{Op: MLoad, Rd: R2, Base: R4}, // idx 1
		{Op: MJmp, Target: AppCodeBase + 8},
	}
	c, _ := asm(t, code)
	seg, err := c.Mem.Map(0x30000, 64, "data")
	if err != nil {
		t.Fatal(err)
	}
	if f := c.Mem.Write(0x30000, 11); f != nil {
		t.Fatal(f)
	}
	c.Run(10) // warm the inline cache
	if c.R[R2] != 11 {
		t.Fatalf("R2 = %d, want 11", c.R[R2])
	}

	// Unmap: the cached segment must stop matching and the access fault.
	c.Mem.Unmap(seg)
	c.Run(4)
	if c.Status != StatusTrapped || c.PendingTrap.Sig != SigSEGV {
		t.Fatalf("after unmap: %v (%v), want SIGSEGV", c.Status, c.PendingTrap)
	}

	// Remap with new contents: the retried access must see them.
	if _, err := c.Mem.Map(0x30000, 64, "data2"); err != nil {
		t.Fatal(err)
	}
	if f := c.Mem.Write(0x30000, 22); f != nil {
		t.Fatal(f)
	}
	c.Status = StatusRunning
	c.PendingTrap = nil
	c.Run(4)
	if c.R[R2] != 22 {
		t.Fatalf("R2 = %d after remap, want 22", c.R[R2])
	}
}

func TestInlineCacheSeesRestoredSnapshot(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R4, Imm: 0x30000},
		{Op: MLoad, Rd: R2, Base: R4},
		{Op: MMovImm, Rd: R3, Imm: 77},
		{Op: MStore, Base: R4, Ra: R3},
		{Op: MJmp, Target: AppCodeBase + 8},
	}
	c, _ := asm(t, code)
	if _, err := c.Mem.Map(0x30000, 64, "data"); err != nil {
		t.Fatal(err)
	}
	if f := c.Mem.Write(0x30000, 5); f != nil {
		t.Fatal(f)
	}
	sn := c.Mem.Snapshot()
	c.Run(10) // warms load+store caches; stores 77
	if v, _ := c.Mem.Read(0x30000); v != 77 {
		t.Fatalf("pre-restore value %d, want 77", v)
	}
	c.Mem.Restore(sn)
	// The restored segment is a different *Segment aliasing frozen
	// bytes; a stale cache hit would read 77 (or store through to the
	// snapshot). The next load must see the snapshot value.
	c.PC = AppCodeBase + 8
	c.Run(1)
	if c.R[R2] != 5 {
		t.Fatalf("R2 = %d after restore, want 5", c.R[R2])
	}
	// And the next store must COW-materialise, not dirty the snapshot.
	c.Run(2)
	if sn.Segs[len(sn.Segs)-1].Data == nil {
		t.Fatal("snapshot lost")
	}
	c.Mem.Restore(sn)
	if v, _ := c.Mem.Read(0x30000); v != 5 {
		t.Fatalf("snapshot dirtied: %d, want 5", v)
	}
}

// TestInlineCacheRespectsSnapshotFreeze pins the write-through bug the
// generation bump in Memory.Snapshot prevents: warm a store cache on a
// writable segment, snapshot (which flips the same *Segment to
// copy-on-write in place — no remap, no segment swap), then store
// again. The store must COW-materialize instead of taking a stale
// in-place hit that dirties the frozen bytes the snapshot aliases.
func TestInlineCacheRespectsSnapshotFreeze(t *testing.T) {
	for _, tier := range Tiers() {
		code := []MInstr{
			{Op: MMovImm, Rd: R4, Imm: 0x30000},
			{Op: MMovImm, Rd: R3, Imm: 1},
			{Op: MAdd, Rd: R3, Ra: R3, UseImm: true, Imm: 1}, // idx 2
			{Op: MStore, Base: R4, Ra: R3},
			{Op: MJmp, Target: AppCodeBase + 16},
		}
		c, _ := asm(t, code)
		c.Tier = tier
		if _, err := c.Mem.Map(0x30000, 64, "data"); err != nil {
			t.Fatal(err)
		}
		c.Run(6) // 0,1,2,3(store 2),4,2 — store cache is warm and writable
		sn := c.Mem.Snapshot()
		c.Run(3) // 3(store 3),4,2 — must materialize, not write through
		if v, _ := c.Mem.Read(0x30000); v != 3 {
			t.Fatalf("%v: live value %d, want 3", tier, v)
		}
		c.Mem.Restore(sn)
		if v, _ := c.Mem.Read(0x30000); v != 2 {
			t.Fatalf("%v: snapshot dirtied by post-freeze store: %d, want 2", tier, v)
		}
	}
}

// TestEnginePuntsHostCalls checks host calls (and the instructions
// around them) behave identically — they run through the legacy Step.
func TestEnginePuntsHostCalls(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 42},
		{Op: MPush, Ra: R1},
		{Op: MHost, Host: "print_i64", HostArgs: 1},
		{Op: MAdd, Rd: R2, Ra: R0, UseImm: true, Imm: 1},
		{Op: MHalt, Ra: R2},
	}
	runDual(t, code, nil, 0)
}

// TestPredecodePuntsMalformedOperands: instructions with out-of-range
// register fields must reach the legacy Step loop (and fail there the
// way they always did), not be silently executed with masked indices.
func TestPredecodePuntsMalformedOperands(t *testing.T) {
	in := MInstr{Op: MAdd, Rd: 200, Ra: R1}
	if u := predecodeOne(&in); u.op != uPunt {
		t.Errorf("Rd=200 predecoded to %d, want uPunt", u.op)
	}
	in = MInstr{Op: MLoad, Rd: R1, Base: 99}
	if u := predecodeOne(&in); u.op != uPunt {
		t.Errorf("Base=99 predecoded to %d, want uPunt", u.op)
	}
	in = MInstr{Op: MFAdd, Fd: 1, Fa: 31, Fb: 2}
	if u := predecodeOne(&in); u.op != uPunt {
		t.Errorf("Fa=31 predecoded to %d, want uPunt", u.op)
	}
	// NoReg Rb resolves to the RI form with src2 = 0, like Step.
	in = MInstr{Op: MAdd, Rd: R1, Ra: R2, Rb: NoReg}
	u := predecodeOne(&in)
	if u.op != uAddRI || u.imm != 0 {
		t.Errorf("NoReg Rb: got op %d imm %d, want uAddRI imm 0", u.op, u.imm)
	}
}

// TestEngineBudgetChargesTrapAttempts: a trapped-and-resumed instruction
// consumes budget without retiring on both engines, so StatusLimit hits
// at the same point.
func TestEngineBudgetChargesTrapAttempts(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 1},
		{Op: MMovImm, Rd: R2, Imm: 0},
		{Op: MDiv, Rd: R3, Ra: R1, Rb: R2}, // traps; handler resumes without fixing
		{Op: MHalt},
	}
	for limit := uint64(3); limit <= 8; limit++ {
		mk := func(tier InterpTier) *CPU {
			c, _ := asm(t, code)
			c.Tier = tier
			c.Handler = func(*CPU, *Trap) TrapAction { return TrapResume }
			return c
		}
		s := mk(TierStep)
		want := s.Run(limit)
		for _, tier := range fastTiers {
			f := mk(tier)
			if got := f.Run(limit); got != want {
				t.Fatalf("limit %d: %v %v step %v", limit, tier, got, want)
			}
			if f.Status != StatusLimit {
				t.Fatalf("limit %d: status %v, want limit", limit, f.Status)
			}
			compareCPUs(t, f, s)
		}
	}
}

// TestPredecodeBranchLinking checks the second predecode pass resolves
// well-formed in-image branch targets to µop indices and records
// fallthrough-run lengths for the superblock tier.
func TestPredecodeBranchLinking(t *testing.T) {
	p := &Program{Name: "asm", CodeBase: AppCodeBase, Code: []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 3},                    // 0: sb+2
		{Op: MSub, Rd: R1, Ra: R1, UseImm: true, Imm: 1}, // 1
		{Op: MJnz, Ra: R1, Target: AppCodeBase + 8},      // 2: links to 1
		{Op: MJmp, Target: AppCodeBase + 8*4},            // 3: links to 4
		{Op: MNop},                                       // 4
		{Op: MHalt},                                      // 5: punts
	}, Funcs: []FuncSym{{Name: "_start", Entry: 0}}, Debug: debuginfo.New()}
	plan := p.plan()
	if got := plan.uops[2].tidx; got != 1 {
		t.Errorf("jnz tidx = %d, want 1", got)
	}
	if got := plan.uops[3].tidx; got != 4 {
		t.Errorf("jmp tidx = %d, want 4", got)
	}
	wantRuns := []int32{2, 1, 0, 0, 1, 0}
	for i, want := range wantRuns {
		if plan.runLen[i] != want {
			t.Errorf("runLen[%d] = %d, want %d", i, plan.runLen[i], want)
		}
	}
}

// TestPredecodeBranchDemotion: branch targets that land mid-instruction,
// outside the image (above or below), or on a punting µop must demote
// the branch to dispatch-return at predecode — tidx stays -1 and
// linkTarget reports why — never a Go panic or a silently wrong link.
func TestPredecodeBranchDemotion(t *testing.T) {
	cases := []struct {
		name   string
		code   []MInstr
		idx    int // index of the branch under test
		reason string
	}{
		{"jmp-mid-instruction", []MInstr{
			{Op: MJmp, Target: AppCodeBase + 4},
			{Op: MHalt},
		}, 0, demoteMidInstr},
		{"jnz-mid-instruction", []MInstr{
			{Op: MJnz, Ra: R1, Target: AppCodeBase + 8 + 3},
			{Op: MHalt},
		}, 0, demoteMidInstr},
		{"jmp-above-image", []MInstr{
			{Op: MJmp, Target: AppCodeBase + 8*100},
			{Op: MHalt},
		}, 0, demoteOutsideImage},
		{"jz-below-image", []MInstr{
			{Op: MJz, Ra: R1, Target: AppCodeBase - 8},
			{Op: MHalt},
		}, 0, demoteOutsideImage},
		{"jmp-one-past-end", []MInstr{
			{Op: MJmp, Target: AppCodeBase + 8*2},
			{Op: MHalt},
		}, 0, demoteOutsideImage},
		{"call-cross-image", []MInstr{
			{Op: MCall, Target: LibCodeBase},
			{Op: MHalt},
		}, 0, demoteOutsideImage},
		{"jmp-onto-punting-uop", []MInstr{
			{Op: MJmp, Target: AppCodeBase + 8},
			{Op: MHost, Host: "print_i64", HostArgs: 0},
			{Op: MHalt},
		}, 0, demotePunts},
		{"call-onto-halt", []MInstr{
			{Op: MCall, Target: AppCodeBase + 8},
			{Op: MHalt},
		}, 0, demotePunts},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Program{Name: "asm", CodeBase: AppCodeBase, Code: tc.code,
				Funcs: []FuncSym{{Name: "_start", Entry: 0}}, Debug: debuginfo.New()}
			plan := p.plan()
			u := &plan.uops[tc.idx]
			if u.tidx != -1 {
				t.Fatalf("branch linked to %d, want demoted", u.tidx)
			}
			if _, reason := linkTarget(p, plan.uops, u.target); reason != tc.reason {
				t.Errorf("demotion reason %q, want %q", reason, tc.reason)
			}
		})
	}
}

// TestEngineDemotedBranchParity runs taken demoted branches end to end
// on every tier: the dispatch-return path must land on the exact target
// PC, so wild jumps trap identically, jumps onto punting µops fall back
// to Step identically, and mid-instruction targets carry the PC bias
// identically (that program loops forever on every tier, so it runs
// under a budget and parity is checked at StatusLimit).
func TestEngineDemotedBranchParity(t *testing.T) {
	cases := []struct {
		name  string
		code  []MInstr
		limit uint64
	}{
		{"taken-jnz-mid-instruction", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 1},
			{Op: MJnz, Ra: R1, Target: AppCodeBase + 4},
			{Op: MHalt},
		}, 50},
		{"taken-jz-below-image", []MInstr{
			{Op: MJz, Ra: R0, Target: AppCodeBase - 0x1000},
			{Op: MHalt},
		}, 0},
		{"taken-jmp-one-past-end", []MInstr{
			{Op: MJmp, Target: AppCodeBase + 8*2},
			{Op: MHalt},
		}, 0},
		{"taken-jmp-onto-host-call", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 7},
			{Op: MPush, Ra: R1},
			{Op: MJmp, Target: AppCodeBase + 8*4},
			{Op: MHalt},
			{Op: MHost, Host: "print_i64", HostArgs: 1},
			{Op: MAdd, Rd: R2, Ra: R0, UseImm: true, Imm: 1},
			{Op: MHalt, Ra: R2},
		}, 0},
		{"call-onto-abort", []MInstr{
			{Op: MCall, Target: AppCodeBase + 8*2},
			{Op: MHalt},
			{Op: MAbort},
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runDual(t, tc.code, nil, tc.limit)
		})
	}
}

// TestEngineStackICCallRet drives a call/ret ladder plus push/pop
// traffic through the shared stack-segment inline cache, including a
// StopPC planted on a ret target and a faulting call after SP is
// corrupted out of the stack segment.
func TestEngineStackICCallRet(t *testing.T) {
	ladder := []MInstr{
		{Op: MMovImm, Rd: R5, Imm: 40},
		{Op: MCall, Target: AppCodeBase + 8*5}, // idx 1: call f1
		{Op: MSub, Rd: R5, Ra: R5, UseImm: true, Imm: 1},
		{Op: MJnz, Ra: R5, Target: AppCodeBase + 8},
		{Op: MHalt, Ra: R6},
		// f1: push/pop around a nested call.
		{Op: MPush, Ra: R5},                    // idx 5
		{Op: MCall, Target: AppCodeBase + 8*9}, // call f2
		{Op: MPop, Rd: R5},
		{Op: MRet},
		// f2: leaf.
		{Op: MAdd, Rd: R6, Ra: R6, UseImm: true, Imm: 1}, // idx 9
		{Op: MRet},
	}
	t.Run("clean", func(t *testing.T) { runDual(t, ladder, nil, 0) })
	t.Run("budget-sweep", func(t *testing.T) {
		for limit := uint64(1); limit <= 30; limit += 3 {
			runDual(t, ladder, nil, limit)
		}
	})
	t.Run("stop-on-ret-target", func(t *testing.T) {
		runDual(t, ladder, func(c *CPU) {
			c.StopPC = AppCodeBase + 8*7 // pop after the nested call returns
			c.StopPCSet = true
		}, 0)
	})
	t.Run("call-faults-off-stack", func(t *testing.T) {
		runDual(t, []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 0x40},
			{Op: MMov, Rd: SP, Ra: R1}, // SP now points at unmapped memory
			{Op: MCall, Target: AppCodeBase + 8*4},
			{Op: MHalt},
			{Op: MRet},
		}, nil, 0)
	})
}
