package machine

import (
	"fmt"
	"testing"

	"care/internal/debuginfo"
	"care/internal/hostenv"
	"care/internal/trace"
)

// dualAsm assembles the same raw program twice: one CPU on the block
// engine, one forced onto the legacy Step loop. Separate Programs (and
// memories) keep the two runs fully independent.
func dualAsm(t *testing.T, code []MInstr, setup func(c *CPU)) (block, step *CPU) {
	t.Helper()
	mk := func() *CPU {
		p := &Program{
			Name:     "asm",
			CodeBase: AppCodeBase,
			Code:     append([]MInstr(nil), code...),
			Funcs:    []FuncSym{{Name: "_start", Entry: 0}},
			Debug:    debuginfo.New(),
		}
		mem := NewMemory()
		img, err := Load(mem, p)
		if err != nil {
			t.Fatal(err)
		}
		cpu := NewCPU(mem, hostenv.NewEnv())
		cpu.Attach(img)
		if err := cpu.InitStack(); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Start(img, "_start"); err != nil {
			t.Fatal(err)
		}
		if setup != nil {
			setup(cpu)
		}
		return cpu
	}
	block = mk()
	step = mk()
	step.StepLoop = true
	return block, step
}

// compareCPUs asserts the full architectural state of the two runs is
// identical: registers, PC, Dyn, status, exit code, pending trap, and
// every writable memory segment.
func compareCPUs(t *testing.T, block, step *CPU) {
	t.Helper()
	if block.R != step.R {
		t.Errorf("R mismatch:\n block %v\n step  %v", block.R, step.R)
	}
	if block.F != step.F {
		t.Errorf("F mismatch:\n block %v\n step  %v", block.F, step.F)
	}
	if block.PC != step.PC {
		t.Errorf("PC mismatch: block 0x%x step 0x%x", block.PC, step.PC)
	}
	if block.Dyn != step.Dyn {
		t.Errorf("Dyn mismatch: block %d step %d", block.Dyn, step.Dyn)
	}
	if block.Status != step.Status {
		t.Errorf("status mismatch: block %v step %v", block.Status, step.Status)
	}
	if block.ExitCode != step.ExitCode {
		t.Errorf("exit code mismatch: block %d step %d", block.ExitCode, step.ExitCode)
	}
	bt, st := block.PendingTrap, step.PendingTrap
	if (bt == nil) != (st == nil) {
		t.Fatalf("trap mismatch: block %v step %v", bt, st)
	}
	if bt != nil && (bt.Sig != st.Sig || bt.PC != st.PC || bt.Addr != st.Addr || bt.Idx != st.Idx) {
		t.Errorf("trap mismatch:\n block %+v\n step  %+v", bt, st)
	}
	bs, ss := block.Mem.Segments(), step.Mem.Segments()
	if len(bs) != len(ss) {
		t.Fatalf("segment count mismatch: block %d step %d", len(bs), len(ss))
	}
	for i := range bs {
		if bs[i].Base != ss[i].Base || len(bs[i].Data) != len(ss[i].Data) {
			t.Fatalf("segment %d layout mismatch", i)
		}
		if bs[i].ReadOnly() {
			continue
		}
		for j := range bs[i].Data {
			if bs[i].Data[j] != ss[i].Data[j] {
				t.Errorf("segment %s byte 0x%x differs: block %#x step %#x",
					bs[i].Name, bs[i].Base+Word(j), bs[i].Data[j], ss[i].Data[j])
				break
			}
		}
	}
}

// runDual drives both CPUs with the same budget and compares the final
// state.
func runDual(t *testing.T, code []MInstr, setup func(c *CPU), limit uint64) {
	t.Helper()
	block, step := dualAsm(t, code, setup)
	if got, want := block.Run(limit), step.Run(limit); got != want {
		t.Errorf("run status: block %v step %v", got, want)
	}
	compareCPUs(t, block, step)
}

// loopProgram is a memory-touching counted loop covering loads, stores,
// indexed addressing, ALU with immediates and registers, compare+branch
// and float traffic — the steady-state mix.
func loopProgram(n int64) []MInstr {
	return []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0},
		{Op: MMovImm, Rd: R4, Imm: 0x30000},
		{Op: MMovImm, Rd: R5, Imm: n},
		{Op: MLoad, Rd: R2, Base: R4, Index: R1, Scale: 8, Disp: 0}, // idx 3
		{Op: MAdd, Rd: R2, Ra: R2, UseImm: true, Imm: 3},
		{Op: MMul, Rd: R6, Ra: R2, Rb: R2},
		{Op: MStore, Base: R4, Index: R1, Scale: 8, Disp: 0, Ra: R6},
		{Op: MCvtIF, Fd: 1, Ra: R2},
		{Op: MFMul, Fd: 2, Fa: 1, Fb: 1},
		{Op: MFStore, Base: R4, Disp: 64, Fa: 2},
		{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 1},
		{Op: MAnd, Rd: R1, Ra: R1, UseImm: true, Imm: 7},
		{Op: MSub, Rd: R5, Ra: R5, UseImm: true, Imm: 1},
		{Op: MSet, Cond: CondGT, Rd: R3, Ra: R5, UseImm: true, Imm: 0},
		{Op: MJnz, Ra: R3, Target: AppCodeBase + 8*3},
		{Op: MHalt, Ra: R5},
	}
}

func mapData(t *testing.T) func(c *CPU) {
	return func(c *CPU) {
		t.Helper()
		if _, err := c.Mem.Map(0x30000, 256*8, "data"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineMatchesStepLoop(t *testing.T) {
	runDual(t, loopProgram(500), mapData(t), 0)
}

// TestEngineBudgetSweep pauses both engines at every budget around the
// loop boundary: StatusLimit must fire on the same dynamic instruction
// with the same lazily-materialised PC.
func TestEngineBudgetSweep(t *testing.T) {
	for limit := uint64(1); limit <= 40; limit++ {
		t.Run(fmt.Sprintf("limit%d", limit), func(t *testing.T) {
			runDual(t, loopProgram(500), mapData(t), limit)
		})
	}
}

// TestEngineResumesAfterLimit slices one run into many Run calls and
// checks the result equals a single uninterrupted run.
func TestEngineResumesAfterLimit(t *testing.T) {
	block, step := dualAsm(t, loopProgram(200), mapData(t))
	for block.Status != StatusExited {
		block.Run(7)
	}
	step.Run(0)
	compareCPUs(t, block, step)
}

func TestEngineTrapParity(t *testing.T) {
	cases := []struct {
		name string
		code []MInstr
		sig  Signal
	}{
		{"segv-load", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 0x999000},
			{Op: MLoad, Rd: R2, Base: R1},
			{Op: MHalt},
		}, SigSEGV},
		{"segv-store-to-code", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: int64(AppCodeBase)},
			{Op: MStore, Base: R1, Ra: R1},
			{Op: MHalt},
		}, SigSEGV},
		{"bus-misaligned", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 0x30004},
			{Op: MLoad, Rd: R2, Base: R1},
			{Op: MHalt},
		}, SigBUS},
		{"fpe-div-zero", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 9},
			{Op: MMovImm, Rd: R2, Imm: 0},
			{Op: MDiv, Rd: R3, Ra: R1, Rb: R2},
			{Op: MHalt},
		}, SigFPE},
		{"fpe-rem-overflow", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: -0x8000000000000000},
			{Op: MMovImm, Rd: R2, Imm: -1},
			{Op: MRem, Rd: R3, Ra: R1, Rb: R2},
			{Op: MHalt},
		}, SigFPE},
		{"ill-wild-jump", []MInstr{
			{Op: MJmp, Target: 0x1234568},
			{Op: MHalt},
		}, SigILL},
		{"segv-stack-underflow", []MInstr{
			{Op: MMovImm, Rd: R1, Imm: int64(StackTop)},
			{Op: MMov, Rd: SP, Ra: R1},
			{Op: MPop, Rd: R2},
			{Op: MHalt},
		}, SigSEGV},
		{"abort", []MInstr{
			{Op: MNop},
			{Op: MAbort},
		}, SigABRT},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			block, step := dualAsm(t, tc.code, mapData(t))
			block.Run(0)
			step.Run(0)
			if block.Status != StatusTrapped || block.PendingTrap.Sig != tc.sig {
				t.Fatalf("block engine: want %v trap, got %v (%v)", tc.sig, block.Status, block.PendingTrap)
			}
			compareCPUs(t, block, step)
		})
	}
}

// TestEngineMisalignedTrapPC corrupts the return address with low bits
// set: the lazy PC must round-trip the misalignment exactly (a PC
// reconstructed as base+8*idx would silently re-align it).
func TestEngineMisalignedTrapPC(t *testing.T) {
	code := []MInstr{
		{Op: MCall, Target: AppCodeBase + 8*3}, // call f
		{Op: MHalt},
		{Op: MNop},
		// f: corrupt the saved return address, then return through it.
		{Op: MLoad, Rd: R1, Base: SP},
		{Op: MAdd, Rd: R1, Ra: R1, UseImm: true, Imm: 3},
		{Op: MStore, Base: SP, Ra: R1},
		{Op: MRet},
	}
	block, step := dualAsm(t, code, nil)
	block.Run(0)
	step.Run(0)
	compareCPUs(t, block, step)
	if block.PC&7 != 3 {
		t.Fatalf("misaligned PC low bits lost: 0x%x", block.PC)
	}
}

// TestEngineStopPCMidBlock plants the stop sentinel on a branch target
// in the middle of the hot loop: the block engine must exit on the same
// retirement as the Step loop, not at the next block boundary.
func TestEngineStopPCMidBlock(t *testing.T) {
	for _, stopIdx := range []int{3, 10, 15} {
		t.Run(fmt.Sprintf("idx%d", stopIdx), func(t *testing.T) {
			setup := func(c *CPU) {
				mapData(t)(c)
				c.StopPC = AppCodeBase + Word(8*stopIdx)
				c.StopPCSet = true
			}
			runDual(t, loopProgram(5), setup, 0)
		})
	}
}

// TestEngineDeoptOnHookInstall installs a retire hook from a trap
// handler mid-run: the engine must fall back to the Step loop at the
// block boundary so the hook sees every subsequent retirement.
func TestEngineDeoptOnHookInstall(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 5},
		{Op: MMovImm, Rd: R2, Imm: 0},
		{Op: MDiv, Rd: R3, Ra: R1, Rb: R2}, // idx 2: traps SIGFPE
		{Op: MAdd, Rd: R4, Ra: R4, UseImm: true, Imm: 1},
		{Op: MAdd, Rd: R4, Ra: R4, UseImm: true, Imm: 1},
		{Op: MHalt, Ra: R4},
	}
	run := func(stepLoop bool) (hookRetires int, c *CPU) {
		p := &Program{Name: "asm", CodeBase: AppCodeBase, Code: code,
			Funcs: []FuncSym{{Name: "_start", Entry: 0}}, Debug: debuginfo.New()}
		mem := NewMemory()
		img, err := Load(mem, p)
		if err != nil {
			t.Fatal(err)
		}
		c = NewCPU(mem, hostenv.NewEnv())
		c.StepLoop = stepLoop
		c.Attach(img)
		if err := c.InitStack(); err != nil {
			t.Fatal(err)
		}
		if err := c.Start(img, "_start"); err != nil {
			t.Fatal(err)
		}
		c.Handler = func(cc *CPU, tr *Trap) TrapAction {
			cc.R[R2] = 1 // patch the divisor and resume
			cc.AddAfterStep(func(*CPU, *Image, int, *MInstr) { hookRetires++ })
			return TrapResume
		}
		c.Run(0)
		return hookRetires, c
	}
	gotBlock, cb := run(false)
	gotStep, cs := run(true)
	if gotBlock != gotStep {
		t.Errorf("hook retirements differ: block %d step %d", gotBlock, gotStep)
	}
	if gotBlock == 0 {
		t.Error("mid-run hook never observed a retirement")
	}
	compareCPUs(t, cb, cs)
}

// TestEngineRemoveHookReopts checks that removing the last retire hook
// returns Run to the block engine (afterLive bookkeeping), and that
// removing one twice does not corrupt the count.
func TestEngineRemoveHookReopts(t *testing.T) {
	c, _ := asm(t, loopProgram(50))
	if _, err := c.Mem.Map(0x30000, 256*8, "data"); err != nil {
		t.Fatal(err)
	}
	r1 := c.AddAfterStep(func(*CPU, *Image, int, *MInstr) {})
	r2 := c.AddAfterStep(func(*CPU, *Image, int, *MInstr) {})
	if c.afterLive != 2 {
		t.Fatalf("afterLive = %d, want 2", c.afterLive)
	}
	r1()
	r1() // double-remove must be idempotent
	r2()
	if c.afterLive != 0 {
		t.Fatalf("afterLive = %d after removals, want 0", c.afterLive)
	}
	if st := c.Run(0); st != StatusExited {
		t.Fatalf("run: %v", st)
	}
}

// TestEngineProfileCounts checks per-static-instruction counts are
// identical between engines (including the cached counts-slice path).
func TestEngineProfileCounts(t *testing.T) {
	block, step := dualAsm(t, loopProgram(100), func(c *CPU) {
		mapData(t)(c)
		c.Profile = true
	})
	block.Run(0)
	step.Run(0)
	compareCPUs(t, block, step)
	bi, si := block.Images[0], step.Images[0]
	bc, sc := block.Counts[bi], step.Counts[si]
	if len(bc) != len(sc) {
		t.Fatalf("counts length: block %d step %d", len(bc), len(sc))
	}
	for i := range bc {
		if bc[i] != sc[i] {
			t.Errorf("counts[%d]: block %d step %d", i, bc[i], sc[i])
		}
	}
}

// TestEngineTraceSpansMatch compares the trap spans both engines stamp.
func TestEngineTraceSpansMatch(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 0x40},
		{Op: MLoad, Rd: R2, Base: R1}, // SEGV at 0x40
		{Op: MHalt},
	}
	var recs [2]*trace.Recorder
	for i, stepLoop := range []bool{false, true} {
		block, _ := dualAsm(t, code, nil)
		block.StepLoop = stepLoop
		recs[i] = trace.New(8)
		block.Trace = recs[i]
		block.Run(0)
	}
	b, s := recs[0].Spans(), recs[1].Spans()
	if len(b) != len(s) || len(b) == 0 {
		t.Fatalf("span counts: block %d step %d", len(b), len(s))
	}
	for i := range b {
		if b[i] != s[i] {
			t.Errorf("span %d differs:\n block %+v\n step  %+v", i, b[i], s[i])
		}
	}
}

// TestInlineCacheInvalidation exercises the generation counter: a cached
// segment must not satisfy accesses after Unmap or Restore swaps the
// mapping under it.
func TestInlineCacheInvalidation(t *testing.T) {
	// Loop reading 0x30000 forever; pause, remap, resume.
	code := []MInstr{
		{Op: MMovImm, Rd: R4, Imm: 0x30000},
		{Op: MLoad, Rd: R2, Base: R4}, // idx 1
		{Op: MJmp, Target: AppCodeBase + 8},
	}
	c, _ := asm(t, code)
	seg, err := c.Mem.Map(0x30000, 64, "data")
	if err != nil {
		t.Fatal(err)
	}
	if f := c.Mem.Write(0x30000, 11); f != nil {
		t.Fatal(f)
	}
	c.Run(10) // warm the inline cache
	if c.R[R2] != 11 {
		t.Fatalf("R2 = %d, want 11", c.R[R2])
	}

	// Unmap: the cached segment must stop matching and the access fault.
	c.Mem.Unmap(seg)
	c.Run(4)
	if c.Status != StatusTrapped || c.PendingTrap.Sig != SigSEGV {
		t.Fatalf("after unmap: %v (%v), want SIGSEGV", c.Status, c.PendingTrap)
	}

	// Remap with new contents: the retried access must see them.
	if _, err := c.Mem.Map(0x30000, 64, "data2"); err != nil {
		t.Fatal(err)
	}
	if f := c.Mem.Write(0x30000, 22); f != nil {
		t.Fatal(f)
	}
	c.Status = StatusRunning
	c.PendingTrap = nil
	c.Run(4)
	if c.R[R2] != 22 {
		t.Fatalf("R2 = %d after remap, want 22", c.R[R2])
	}
}

func TestInlineCacheSeesRestoredSnapshot(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R4, Imm: 0x30000},
		{Op: MLoad, Rd: R2, Base: R4},
		{Op: MMovImm, Rd: R3, Imm: 77},
		{Op: MStore, Base: R4, Ra: R3},
		{Op: MJmp, Target: AppCodeBase + 8},
	}
	c, _ := asm(t, code)
	if _, err := c.Mem.Map(0x30000, 64, "data"); err != nil {
		t.Fatal(err)
	}
	if f := c.Mem.Write(0x30000, 5); f != nil {
		t.Fatal(f)
	}
	sn := c.Mem.Snapshot()
	c.Run(10) // warms load+store caches; stores 77
	if v, _ := c.Mem.Read(0x30000); v != 77 {
		t.Fatalf("pre-restore value %d, want 77", v)
	}
	c.Mem.Restore(sn)
	// The restored segment is a different *Segment aliasing frozen
	// bytes; a stale cache hit would read 77 (or store through to the
	// snapshot). The next load must see the snapshot value.
	c.PC = AppCodeBase + 8
	c.Run(1)
	if c.R[R2] != 5 {
		t.Fatalf("R2 = %d after restore, want 5", c.R[R2])
	}
	// And the next store must COW-materialise, not dirty the snapshot.
	c.Run(2)
	if sn.Segs[len(sn.Segs)-1].Data == nil {
		t.Fatal("snapshot lost")
	}
	c.Mem.Restore(sn)
	if v, _ := c.Mem.Read(0x30000); v != 5 {
		t.Fatalf("snapshot dirtied: %d, want 5", v)
	}
}

// TestEnginePuntsHostCalls checks host calls (and the instructions
// around them) behave identically — they run through the legacy Step.
func TestEnginePuntsHostCalls(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 42},
		{Op: MPush, Ra: R1},
		{Op: MHost, Host: "print_i64", HostArgs: 1},
		{Op: MAdd, Rd: R2, Ra: R0, UseImm: true, Imm: 1},
		{Op: MHalt, Ra: R2},
	}
	runDual(t, code, nil, 0)
}

// TestPredecodePuntsMalformedOperands: instructions with out-of-range
// register fields must reach the legacy Step loop (and fail there the
// way they always did), not be silently executed with masked indices.
func TestPredecodePuntsMalformedOperands(t *testing.T) {
	in := MInstr{Op: MAdd, Rd: 200, Ra: R1}
	if u := predecodeOne(&in); u.op != uPunt {
		t.Errorf("Rd=200 predecoded to %d, want uPunt", u.op)
	}
	in = MInstr{Op: MLoad, Rd: R1, Base: 99}
	if u := predecodeOne(&in); u.op != uPunt {
		t.Errorf("Base=99 predecoded to %d, want uPunt", u.op)
	}
	in = MInstr{Op: MFAdd, Fd: 1, Fa: 31, Fb: 2}
	if u := predecodeOne(&in); u.op != uPunt {
		t.Errorf("Fa=31 predecoded to %d, want uPunt", u.op)
	}
	// NoReg Rb resolves to the RI form with src2 = 0, like Step.
	in = MInstr{Op: MAdd, Rd: R1, Ra: R2, Rb: NoReg}
	u := predecodeOne(&in)
	if u.op != uAddRI || u.imm != 0 {
		t.Errorf("NoReg Rb: got op %d imm %d, want uAddRI imm 0", u.op, u.imm)
	}
}

// TestEngineBudgetChargesTrapAttempts: a trapped-and-resumed instruction
// consumes budget without retiring on both engines, so StatusLimit hits
// at the same point.
func TestEngineBudgetChargesTrapAttempts(t *testing.T) {
	code := []MInstr{
		{Op: MMovImm, Rd: R1, Imm: 1},
		{Op: MMovImm, Rd: R2, Imm: 0},
		{Op: MDiv, Rd: R3, Ra: R1, Rb: R2}, // traps; handler resumes without fixing
		{Op: MHalt},
	}
	for limit := uint64(3); limit <= 8; limit++ {
		mk := func(stepLoop bool) *CPU {
			c, _ := asm(t, code)
			c.StepLoop = stepLoop
			c.Handler = func(*CPU, *Trap) TrapAction { return TrapResume }
			return c
		}
		b, s := mk(false), mk(true)
		if got, want := b.Run(limit), s.Run(limit); got != want {
			t.Fatalf("limit %d: block %v step %v", limit, got, want)
		}
		if b.Status != StatusLimit {
			t.Fatalf("limit %d: status %v, want limit", limit, b.Status)
		}
		compareCPUs(t, b, s)
	}
}
