package machine

import (
	"testing"

	"care/internal/debuginfo"
)

// smallProg assembles a two-instruction program with an initialised
// global, the minimal image exercising both the shared .text and the
// copy-on-write .data mappings.
func smallProg(name string) *Program {
	return &Program{
		Name:     name,
		CodeBase: AppCodeBase,
		Code: []MInstr{
			{Op: MMovImm, Rd: R1, Imm: 7},
			{Op: MHalt, Ra: R1},
		},
		Funcs:      []FuncSym{{Name: "_start", Entry: 0}},
		GlobalBase: AppGlobalBase,
		GlobalInit: []byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0},
		Debug:      debuginfo.New(),
	}
}

// TestStoreToCodeFaults is the guard on the shared .text mapping: code
// is readable (a data load straying into .text sees the packed
// encoding, as on a real machine) but a store to it must fault with
// SIGSEGV rather than corrupt the image every process shares.
func TestStoreToCodeFaults(t *testing.T) {
	p := smallProg("app")
	p.SealCode()
	mem := NewMemory()
	img, err := Load(mem, p)
	if err != nil {
		t.Fatal(err)
	}
	if img.CodeSeg == nil || !img.CodeSeg.ReadOnly() {
		t.Fatal("code segment is not mapped read-only")
	}
	want, f := mem.Read(p.CodeBase)
	if f != nil {
		t.Fatalf("read from code faulted: %v", f)
	}
	if want == 0 {
		t.Fatal("code read back as zero; packing is empty")
	}
	if f := mem.Write(p.CodeBase, 0xdead); f == nil || f.Sig != SigSEGV {
		t.Fatalf("store to code fault = %v, want SIGSEGV", f)
	}
	if got, _ := mem.Read(p.CodeBase); got != want {
		t.Fatalf("faulting store mutated code: 0x%x -> 0x%x", want, got)
	}
}

// TestSharedCodeBacking asserts the zero-copy Load: every process of a
// sealed program maps the same .text backing array, while unsealed
// (hand-assembled) programs get private packings.
func TestSharedCodeBacking(t *testing.T) {
	p := smallProg("app")
	p.SealCode()
	m1, m2 := NewMemory(), NewMemory()
	i1, err := Load(m1, p)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := Load(m2, p)
	if err != nil {
		t.Fatal(err)
	}
	if &i1.CodeSeg.Data[0] != &i2.CodeSeg.Data[0] {
		t.Error("two loads of a sealed program do not share the code backing array")
	}
	u := smallProg("unsealed")
	j1, err := Load(NewMemory(), u)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Load(NewMemory(), u)
	if err != nil {
		t.Fatal(err)
	}
	if &j1.CodeSeg.Data[0] == &j2.CodeSeg.Data[0] {
		t.Error("loads of an unsealed program share a packing that was never published")
	}
}

// TestGlobalsCopyOnWrite asserts the .data mapping: loads alias the
// program's initial image until the first store, which materialises a
// private copy without touching the shared bytes other processes read.
func TestGlobalsCopyOnWrite(t *testing.T) {
	p := smallProg("app")
	p.SealCode()
	m1, m2 := NewMemory(), NewMemory()
	i1, err := Load(m1, p)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := Load(m2, p)
	if err != nil {
		t.Fatal(err)
	}
	if !i1.GlobalSeg.Shared() || &i1.GlobalSeg.Data[0] != &i2.GlobalSeg.Data[0] {
		t.Fatal("fresh loads do not share the initial globals image")
	}
	if f := m1.Write(p.GlobalBase, 99); f != nil {
		t.Fatal(f)
	}
	if i1.GlobalSeg.Shared() {
		t.Error("stored-to segment still reports shared")
	}
	if v, _ := m1.Read(p.GlobalBase); v != 99 {
		t.Errorf("writer reads %d, want 99", v)
	}
	if v, _ := m2.Read(p.GlobalBase); v != 1 {
		t.Errorf("sibling process reads %d after the other's store, want 1", v)
	}
	if p.GlobalInit[0] != 1 {
		t.Errorf("store leaked into Program.GlobalInit: %d", p.GlobalInit[0])
	}
}

// TestSnapshotRestoreCOW pins the freeze-alias-materialise cycle behind
// warm starts: a snapshot charges no copy, post-snapshot stores
// materialise privately, and any number of restores share the frozen
// bytes until each diverges.
func TestSnapshotRestoreCOW(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map(0x10000, 0x1000, "seg"); err != nil {
		t.Fatal(err)
	}
	if f := m.Write(0x10000, 1); f != nil {
		t.Fatal(f)
	}
	sn := m.Snapshot()
	if !m.Find(0x10000).Shared() {
		t.Fatal("snapshot did not freeze the live segment")
	}
	// Post-snapshot store: the live memory diverges, the snapshot holds.
	if f := m.Write(0x10000, 2); f != nil {
		t.Fatal(f)
	}
	r1, r2 := NewMemory(), NewMemory()
	r1.Restore(sn)
	r2.Restore(sn)
	if &r1.Find(0x10000).Data[0] != &r2.Find(0x10000).Data[0] {
		t.Error("two restores do not share the frozen backing array")
	}
	if v, _ := r1.Read(0x10000); v != 1 {
		t.Errorf("restored memory reads %d, want the snapshotted 1", v)
	}
	if f := r1.Write(0x10000, 3); f != nil {
		t.Fatal(f)
	}
	if v, _ := r2.Read(0x10000); v != 1 {
		t.Errorf("sibling restore reads %d after the other's store, want 1", v)
	}
	if v, _ := m.Read(0x10000); v != 2 {
		t.Errorf("live memory reads %d, want its diverged 2", v)
	}
	// Restoring a read-only-code memory keeps .text in place.
	p := smallProg("app")
	p.SealCode()
	mc := NewMemory()
	if _, err := Load(mc, p); err != nil {
		t.Fatal(err)
	}
	mc.Restore(sn)
	if mc.Find(p.CodeBase) == nil {
		t.Error("restore dropped the read-only code segment")
	}
	if v, _ := mc.Read(0x10000); v != 1 {
		t.Errorf("restore into a loaded memory reads %d, want 1", v)
	}
}

// TestStepAllocFree is the steady-state interpreter guard: stepping the
// bench loop must not allocate (the src2 closure this replaced cost one
// closure per ALU instruction).
func TestStepAllocFree(t *testing.T) {
	cpu := benchLoop(t, 1<<62)
	allocs := testing.AllocsPerRun(50, func() {
		if st := cpu.Run(1024); st != StatusLimit {
			t.Fatalf("status %v", st)
		}
	})
	if allocs != 0 {
		t.Errorf("step path allocates %.1f times per 1024-step run, want 0", allocs)
	}
}
