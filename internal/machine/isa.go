package machine

import "fmt"

// Reg is an integer register number. R15 is the stack pointer and R14
// the frame pointer by software convention; R0..R3 are caller-saved
// scratch registers used by O0 code and spills; R4..R13 are allocatable.
type Reg uint8

// Architectural integer registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	FP // R14
	SP // R15
	// NoReg marks an absent register (e.g. no index register).
	NoReg Reg = 0xff
)

// NumReg is the number of integer registers.
const NumReg = 16

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch r {
	case FP:
		return "fp"
	case SP:
		return "sp"
	case NoReg:
		return "-"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// FReg is a floating-point register number. F0..F3 are scratch, F4..F15
// allocatable.
type FReg uint8

// NumFReg is the number of float registers.
const NumFReg = 16

// NoFReg marks an absent float register.
const NoFReg FReg = 0xff

// String returns the assembler name of the float register.
func (f FReg) String() string {
	if f == NoFReg {
		return "-"
	}
	return fmt.Sprintf("f%d", uint8(f))
}

// Cond is a comparison predicate for MSet/MFSet.
type Cond uint8

// Comparison predicates.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the predicate mnemonic; out-of-range values render as
// "unknown(N)" instead of panicking.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("unknown(%d)", uint8(c))
}

// MOp is a machine opcode.
type MOp uint8

// Machine opcodes.
const (
	MNop MOp = iota

	MMovImm // Rd = Imm
	MMov    // Rd = Ra

	// Integer ALU: Rd = Ra <op> src2 where src2 is Rb or Imm (UseImm).
	MAdd
	MSub
	MMul
	MDiv // raises SIGFPE on divide-by-zero or INT64_MIN/-1
	MRem
	MAnd
	MOr
	MXor
	MShl
	MShr // arithmetic right shift

	MFMovImm // Fd = float64frombits(Imm)
	MFMov    // Fd = Fa
	MFAdd    // Fd = Fa + Fb
	MFSub
	MFMul
	MFDiv

	MCvtIF // Fd = float64(int64(Ra))
	MCvtFI // Rd = int64(trunc(Fa))
	MBitIF // Fd = float64frombits(Ra)
	MBitFI // Rd = float64bits(Fa)

	MSet  // Rd = 1 if Cond(Ra, src2) else 0 (signed)
	MFSet // Rd = 1 if Cond(Fa, Fb) else 0

	MLea    // Rd = Base + Index*Scale + Disp
	MLoad   // Rd = mem64[Base + Index*Scale + Disp]
	MFLoad  // Fd = mem64[ea] as float
	MStore  // mem64[ea] = Ra
	MFStore // mem64[ea] = Fa

	MJmp  // PC = Target
	MJnz  // if Ra != 0 { PC = Target }
	MJz   // if Ra == 0 { PC = Target }
	MCall // push return address; PC = Target (absolute)
	MRet  // PC = pop()

	MPush  // mem[--SP] = Ra
	MPop   // Rd = mem[SP++]
	MFPush // mem[--SP] = bits(Fa)
	MFPop  // Fd = frombits(mem[SP++])

	MHost  // host call by name; args on stack; result in R0
	MAbort // raise SIGABRT
	MHalt  // stop execution; exit code in Ra
)

var mopNames = [...]string{
	MNop: "nop", MMovImm: "movi", MMov: "mov",
	MAdd: "add", MSub: "sub", MMul: "mul", MDiv: "div", MRem: "rem",
	MAnd: "and", MOr: "or", MXor: "xor", MShl: "shl", MShr: "shr",
	MFMovImm: "fmovi", MFMov: "fmov", MFAdd: "fadd", MFSub: "fsub",
	MFMul: "fmul", MFDiv: "fdiv",
	MCvtIF: "cvtif", MCvtFI: "cvtfi", MBitIF: "bitif", MBitFI: "bitfi",
	MSet: "set", MFSet: "fset",
	MLea: "lea", MLoad: "load", MFLoad: "fload", MStore: "store", MFStore: "fstore",
	MJmp: "jmp", MJnz: "jnz", MJz: "jz", MCall: "call", MRet: "ret",
	MPush: "push", MPop: "pop", MFPush: "fpush", MFPop: "fpop",
	MHost: "host", MAbort: "abort", MHalt: "halt",
}

// String returns the opcode mnemonic.
func (o MOp) String() string {
	if int(o) < len(mopNames) && mopNames[o] != "" {
		return mopNames[o]
	}
	return fmt.Sprintf("mop(%d)", uint8(o))
}

// IsMemAccess reports whether the opcode dereferences a memory operand.
func (o MOp) IsMemAccess() bool {
	return o == MLoad || o == MFLoad || o == MStore || o == MFStore
}

// MInstr is one machine instruction. The encoding is struct-of-fields
// rather than bits; the Disassemble method renders assembler text.
type MInstr struct {
	Op MOp

	Rd, Ra, Rb Reg
	Fd, Fa, Fb FReg

	Cond   Cond
	Imm    int64
	UseImm bool

	// Memory operand (MLea/MLoad/MFLoad/MStore/MFStore):
	Base  Reg
	Index Reg // NoReg if absent
	Scale uint8
	Disp  int64

	// Target is the absolute address for MJmp/MJnz/MJz/MCall.
	Target Word
	// Sym is the symbolic name of a call target (informational).
	Sym string

	// Host call metadata.
	Host         string
	HostArgs     int
	HostFloatRet bool

	// Debug location (file on the containing function; see Program).
	Line, Col int32
}

// EffectiveAddr computes the memory operand's effective address given a
// register file.
func (i *MInstr) EffectiveAddr(r *[NumReg]Word) Word {
	ea := r[i.Base] + Word(i.Disp)
	if i.Index != NoReg {
		ea += r[i.Index] * Word(i.Scale)
	}
	return ea
}

// HasDest reports whether the instruction writes an integer register,
// float register, or memory — i.e. whether it has a "destination
// operand" in the fault-injection sense — and classifies it.
func (i *MInstr) HasDest() (kind DestKind, ok bool) {
	switch i.Op {
	case MMovImm, MMov, MAdd, MSub, MMul, MDiv, MRem, MAnd, MOr, MXor,
		MShl, MShr, MCvtFI, MBitFI, MSet, MFSet, MLea, MLoad, MPop:
		return DestIntReg, true
	case MFMovImm, MFMov, MFAdd, MFSub, MFMul, MFDiv, MCvtIF, MBitIF,
		MFLoad, MFPop:
		return DestFloatReg, true
	case MStore, MFStore, MPush, MFPush:
		return DestMemory, true
	case MHost:
		return DestIntReg, true // result lands in R0
	}
	return 0, false
}

// DestKind classifies an instruction's destination operand.
type DestKind uint8

// Destination kinds.
const (
	// DestIntReg writes Rd.
	DestIntReg DestKind = iota + 1
	// DestFloatReg writes Fd.
	DestFloatReg
	// DestMemory writes the memory word at the effective address (or at
	// the new SP for pushes).
	DestMemory
)
