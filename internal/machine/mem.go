// Package machine implements the simulated execution substrate that
// stands in for x86_64/Linux in this reproduction: a 64-bit register
// machine with CISC-style base+index*scale+disp memory operands, a
// sparse segmented address space that raises SIGSEGV/SIGBUS faults, a
// resumable trap mechanism (the analogue of POSIX signal handlers that
// may patch the interrupted context), and a disassembler used by the
// Safeguard runtime to identify the faulting operand.
package machine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"care/internal/hostenv"
)

// Word is a 64-bit machine word.
type Word = uint64

// Default address-space layout. All images are linked at fixed bases
// (prelinked, in effect), so no load-time relocation is needed and every
// process of the same binary sees identical addresses — which keeps
// fault-injection campaigns deterministic.
const (
	// AppCodeBase is where the main executable's code is mapped.
	AppCodeBase Word = 0x0000_0000_0040_0000
	// AppGlobalBase is where the main executable's globals live.
	AppGlobalBase Word = 0x0000_0000_1000_0000
	// LibCodeBase is the base for the first shared library; subsequent
	// libraries are spaced LibStride apart.
	LibCodeBase Word = 0x0000_4000_0000_0000
	// LibStride separates consecutive library images.
	LibStride Word = 0x0000_0000_1000_0000
	// HeapBase is the bottom of the simulated heap.
	HeapBase Word = 0x0000_2000_0000_0000
	// StackTop is the top of the main stack (stack grows down).
	StackTop Word = 0x0000_7fff_fff0_0000
	// DefaultStackSize is the main stack size in bytes.
	DefaultStackSize = 1 << 20
	// ScratchStackTop is the top of the signal-handler scratch stack
	// used when Safeguard executes a recovery kernel.
	ScratchStackTop Word = 0x0000_7fff_0000_0000
	// ScratchStackSize is the scratch stack size in bytes.
	ScratchStackSize = 64 << 10
	// HeapGuard is the unmapped gap left between heap allocations so
	// that modest address corruptions fall off the mapped space, as
	// they do between real mmap'd regions.
	HeapGuard Word = 4096
	// AddrMask is the canonical-address mask: addresses with any bit
	// above bit 47 set are never mappable (as on x86_64).
	AddrMask Word = (1 << 48) - 1
)

// Signal identifies a hardware-trap class, mirroring the POSIX signals
// the paper's fault study classifies crashes by.
type Signal uint8

const (
	// SigNone means no signal.
	SigNone Signal = iota
	// SigSEGV is an access to an unmapped address.
	SigSEGV
	// SigBUS is a misaligned access to a mapped address.
	SigBUS
	// SigFPE is an integer divide error.
	SigFPE
	// SigABRT is an abort (assertion failure or abort() host call).
	SigABRT
	// SigILL is an attempt to execute a non-code address.
	SigILL
	// SigTRAP is a deterministic detection trap raised by a
	// detection-only defense pass (PRESAGE chain check, SFI bounds
	// check) via the care_detect host call.
	SigTRAP
)

// String returns the conventional signal name.
func (s Signal) String() string {
	switch s {
	case SigNone:
		return "NONE"
	case SigSEGV:
		return "SIGSEGV"
	case SigBUS:
		return "SIGBUS"
	case SigFPE:
		return "SIGFPE"
	case SigABRT:
		return "SIGABRT"
	case SigILL:
		return "SIGILL"
	case SigTRAP:
		return "SIGTRAP"
	}
	return fmt.Sprintf("SIG(%d)", uint8(s))
}

// Fault describes a failed memory access.
type Fault struct {
	Sig  Signal
	Addr Word
}

// Error implements error.
func (f *Fault) Error() string { return fmt.Sprintf("%s at 0x%x", f.Sig, f.Addr) }

// Segment is a contiguous mapped region.
type Segment struct {
	Base Word
	Data []byte
	Name string
	// Domain is the isolation domain the segment belongs to, assigned
	// from the fixed address-space layout when the segment is mapped
	// (Map/MapShared/MapCOW all tag through insert).
	Domain DomainID
	// ro marks an immutable mapping (code/rodata): stores fault with
	// SIGSEGV, and snapshots neither copy nor restore the segment. The
	// backing Data may be shared by every process of the same binary.
	ro bool
	// cow marks Data as aliasing frozen bytes shared with a snapshot,
	// another process, or a program's initial image; the first store
	// materialises a private copy.
	cow bool
}

// End returns one past the last mapped byte.
func (s *Segment) End() Word { return s.Base + Word(len(s.Data)) }

// ReadOnly reports whether stores to the segment fault.
func (s *Segment) ReadOnly() bool { return s.ro }

// Shared reports whether the segment's bytes still alias frozen data
// (a snapshot, another process, or a program image). A read-only
// segment stays shared forever; a copy-on-write segment stops being
// shared at its first store.
func (s *Segment) Shared() bool { return s.ro || s.cow }

// materialize replaces aliased frozen bytes with a private copy; the
// copy-on-write fault path of a store.
func (s *Segment) materialize() {
	d := make([]byte, len(s.Data))
	copy(d, s.Data)
	s.Data = d
	s.cow = false
}

// Memory is a sparse, segmented 48-bit address space.
type Memory struct {
	segs []*Segment
	// heapNext is the bump pointer for Alloc.
	heapNext Word
	// cache holds the most recently hit segment (cheap 1-entry TLB).
	cache *Segment
	// gen is the mapping generation, bumped whenever a segment is
	// removed or replaced (Unmap, Restore). The execution engine's
	// per-instruction memory inline caches hold *Segment references
	// stamped with the generation they were filled at; a bump
	// invalidates every cache at once. Map never bumps: adding a
	// segment cannot make a cached (segment, generation) pair stale,
	// and COW materialisation keeps segment identity (only Data is
	// swapped), which the store fast path re-checks per access.
	gen uint64
}

// NewMemory returns an empty address space with the heap initialised.
func NewMemory() *Memory {
	return &Memory{heapNext: HeapBase, gen: 1}
}

// insert places a segment into the sorted list after range checks.
func (m *Memory) insert(s *Segment) error {
	base, size := s.Base, len(s.Data)
	if size <= 0 {
		return fmt.Errorf("machine: map %s: empty segment", s.Name)
	}
	if base&^AddrMask != 0 || (base+Word(size))&^AddrMask != 0 || base+Word(size) < base {
		return fmt.Errorf("machine: map %s: non-canonical range [0x%x,0x%x)", s.Name, base, base+Word(size))
	}
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].Base >= base })
	if i > 0 && m.segs[i-1].End() > base {
		return fmt.Errorf("machine: map %s at 0x%x overlaps %s", s.Name, base, m.segs[i-1].Name)
	}
	if i < len(m.segs) && m.segs[i].Base < base+Word(size) {
		return fmt.Errorf("machine: map %s at 0x%x overlaps %s", s.Name, base, m.segs[i].Name)
	}
	s.Domain = ClassifyDomain(base)
	m.segs = append(m.segs, nil)
	copy(m.segs[i+1:], m.segs[i:])
	m.segs[i] = s
	return nil
}

// Map adds a zeroed segment of size bytes at base. It returns an error
// if the range is non-canonical, empty, or overlaps an existing segment.
func (m *Memory) Map(base Word, size int, name string) (*Segment, error) {
	s := &Segment{Base: base, Data: make([]byte, size), Name: name}
	if err := m.insert(s); err != nil {
		return nil, err
	}
	return s, nil
}

// MapShared maps immutable bytes at base without copying them: the
// segment is read-only (stores fault with SIGSEGV) and its Data aliases
// the caller's slice, so every process of the same binary shares one
// backing array. The caller must never mutate data afterwards.
func (m *Memory) MapShared(base Word, data []byte, name string) (*Segment, error) {
	s := &Segment{Base: base, Data: data, Name: name, ro: true}
	if err := m.insert(s); err != nil {
		return nil, err
	}
	return s, nil
}

// MapCOW maps frozen bytes at base copy-on-write: reads see the shared
// data, and the first store materialises a private copy. The caller
// must never mutate data afterwards.
func (m *Memory) MapCOW(base Word, data []byte, name string) (*Segment, error) {
	s := &Segment{Base: base, Data: data, Name: name, cow: true}
	if err := m.insert(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Unmap removes a segment previously returned by Map.
func (m *Memory) Unmap(s *Segment) {
	for i, x := range m.segs {
		if x == s {
			m.segs = append(m.segs[:i], m.segs[i+1:]...)
			if m.cache == s {
				m.cache = nil
			}
			m.gen++
			return
		}
	}
}

// Find returns the segment containing addr, or nil.
func (m *Memory) Find(addr Word) *Segment {
	if c := m.cache; c != nil && addr >= c.Base && addr < c.End() {
		return c
	}
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].End() > addr })
	if i < len(m.segs) && m.segs[i].Base <= addr {
		m.cache = m.segs[i]
		return m.segs[i]
	}
	return nil
}

// Segments returns the mapped segments in address order (shared slice;
// callers must not mutate).
func (m *Memory) Segments() []*Segment { return m.segs }

// MappedBytes returns the total mapped size.
func (m *Memory) MappedBytes() int {
	n := 0
	for _, s := range m.segs {
		n += len(s.Data)
	}
	return n
}

// Read reads an 8-byte word; the access must be aligned and mapped.
func (m *Memory) Read(addr Word) (Word, *Fault) {
	s := m.Find(addr)
	if s == nil || addr+8 > s.End() {
		return 0, &Fault{Sig: SigSEGV, Addr: addr}
	}
	if addr&7 != 0 {
		return 0, &Fault{Sig: SigBUS, Addr: addr}
	}
	return binary.LittleEndian.Uint64(s.Data[addr-s.Base:]), nil
}

// Write writes an 8-byte word; the access must be aligned, mapped and
// writable (stores to read-only code segments fault like stores to
// unmapped memory — SIGSEGV, as a store through a corrupted pointer
// into .text would on a real machine).
func (m *Memory) Write(addr Word, v Word) *Fault {
	s := m.Find(addr)
	if s == nil || addr+8 > s.End() || s.ro {
		return &Fault{Sig: SigSEGV, Addr: addr}
	}
	if addr&7 != 0 {
		return &Fault{Sig: SigBUS, Addr: addr}
	}
	if s.cow {
		s.materialize()
	}
	binary.LittleEndian.PutUint64(s.Data[addr-s.Base:], v)
	return nil
}

// ReadFloat reads a word and reinterprets it as a float64.
func (m *Memory) ReadFloat(addr Word) (float64, *Fault) {
	w, f := m.Read(addr)
	return math.Float64frombits(w), f
}

// WriteFloat writes a float64's bit pattern.
func (m *Memory) WriteFloat(addr Word, v float64) *Fault {
	return m.Write(addr, math.Float64bits(v))
}

// Alloc implements the heap: a bump allocator leaving HeapGuard-byte
// unmapped gaps between allocations.
func (m *Memory) Alloc(n Word) (Word, error) {
	if n == 0 {
		n = 8
	}
	n = (n + 7) &^ 7
	base := m.heapNext
	if _, err := m.Map(base, int(n), fmt.Sprintf("heap@0x%x", base)); err != nil {
		return 0, err
	}
	m.heapNext = base + n + HeapGuard
	// Keep allocations 4 KiB aligned for a page-like layout.
	m.heapNext = (m.heapNext + 4095) &^ 4095
	return base, nil
}

// memContext adapts Memory to hostenv.Context.
type memContext struct{ m *Memory }

func (c memContext) ReadWord(addr Word) (Word, error) {
	w, f := c.m.Read(addr)
	if f != nil {
		return 0, f
	}
	return w, nil
}

func (c memContext) WriteWord(addr Word, v Word) error {
	if f := c.m.Write(addr, v); f != nil {
		return f
	}
	return nil
}

func (c memContext) Alloc(n Word) (Word, error) { return c.m.Alloc(n) }

// HostContext returns the hostenv.Context view of this memory.
func (m *Memory) HostContext() hostenv.Context { return memContext{m} }

// Snapshot serialises all segments and the heap pointer; Restore brings
// the memory back to that state. This is the substrate used by the
// checkpoint/restart baseline.
type Snapshot struct {
	Segs     []SegSnapshot
	HeapNext Word
}

// SegSnapshot is one segment's saved image.
type SegSnapshot struct {
	Base Word
	Name string
	Data []byte
	// Domain carries the segment's isolation domain, so the checkpoint
	// layer can build per-domain views of a full snapshot without
	// re-deriving the classification.
	Domain DomainID
}

// Snapshot captures the writable memory image by freezing it instead of
// copying it: every writable segment is flipped to copy-on-write and the
// snapshot aliases its bytes, so the capture is O(segments) and the data
// is copied only when (and if) the live memory stores to it again.
// Read-only code segments are excluded — they are immutable and shared
// by construction, exactly as ordinary checkpointing skips .text.
// Snapshots are therefore safe to Restore into many concurrent
// processes: all of them share the frozen bytes until they diverge.
func (m *Memory) Snapshot() *Snapshot {
	sn := &Snapshot{HeapNext: m.heapNext}
	// Freezing flips segments from writable to copy-on-write, which
	// invalidates any inline-cache slot that proved in-place
	// writability at fill time (icEntry.wlen), so it bumps the
	// generation exactly like Unmap and Restore. Snapshots are only
	// ever taken between engine invocations, so the engines' hoisted
	// generation stays sound.
	m.gen++
	for _, s := range m.segs {
		if s.ro {
			continue
		}
		s.cow = true
		sn.Segs = append(sn.Segs, SegSnapshot{Base: s.Base, Name: s.Name, Data: s.Data, Domain: s.Domain})
	}
	return sn
}

// Restore replaces the writable memory contents with the snapshot's.
// Read-only code segments are kept in place (code is immutable and not
// part of a snapshot); every restored segment aliases the snapshot's
// frozen bytes copy-on-write, so restoring into N processes shares one
// backing array until each process stores to it.
func (m *Memory) Restore(sn *Snapshot) {
	kept := m.segs[:0]
	for _, s := range m.segs {
		if s.ro {
			kept = append(kept, s)
		}
	}
	m.segs = kept
	m.cache = nil
	m.gen++
	m.heapNext = sn.HeapNext
	for _, s := range sn.Segs {
		// Re-derive the tag rather than trusting the snapshot: domains
		// are a pure function of the fixed layout, and hand-built
		// snapshots (tests, decoders) may not have filled the field.
		m.segs = append(m.segs, &Segment{Base: s.Base, Name: s.Name, Data: s.Data, Domain: ClassifyDomain(s.Base), cow: true})
	}
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].Base < m.segs[j].Base })
}

// Bytes returns the serialised size of a snapshot (for the C/R cost
// model).
func (sn *Snapshot) Bytes() int {
	n := 16
	for _, s := range sn.Segs {
		n += 16 + len(s.Name) + len(s.Data)
	}
	return n
}
