//go:build amd64 || arm64

package machine

import "unsafe"

// leLoad and leStore are the engine's open-coded inline-cache hit
// accessors. On little-endian hosts with cheap unaligned access they
// compile to a single 8-byte move — and, unlike binary.LittleEndian,
// they are small enough for the compiler to inline into the engine's
// dispatch loops, which sit past the big-function threshold that
// limits inlining to near-trivial callees. Callers guarantee
// off+8 <= len(b) (the icEntry rlen/wlen precomputation).
func leLoad(b []byte, off Word) Word {
	return *(*Word)(unsafe.Pointer(&b[off]))
}

func leStore(b []byte, off, v Word) {
	*(*Word)(unsafe.Pointer(&b[off])) = v
}
