package machine

import (
	"errors"
	"fmt"
)

// DomainID partitions the address space into isolation domains — the
// granularity at which the checkpoint layer captures and the safeguard
// escalation chain rewinds memory. Because every image is prelinked at
// a fixed base, a domain is a pure function of the address: the main
// executable's code and globals, the bump-allocated heap, the shared
// libraries (the BLAS "shared object" split), the signal-handler
// scratch stack, and the main stack each occupy a disjoint slice of the
// 48-bit space.
type DomainID uint8

// Memory domains, in address order.
const (
	// DomainCode is the main executable's code/rodata (read-only; never
	// part of a snapshot and never a rewind target).
	DomainCode DomainID = iota
	// DomainGlobals is the main executable's writable globals.
	DomainGlobals
	// DomainHeap is the bump-allocated heap.
	DomainHeap
	// DomainLib covers every shared-library image — code and globals of
	// linked libraries and the lazily-loaded recovery libraries alike.
	DomainLib
	// DomainScratch is the signal-handler scratch stack (sigaltstack):
	// transient recovery-runtime state that no checkpoint governs, so it
	// is excluded from consistency checks and never rewound.
	DomainScratch
	// DomainStack is the main stack.
	DomainStack

	// NumDomains is the domain count (array sizing).
	NumDomains
)

var domainNames = [...]string{
	DomainCode:    "code",
	DomainGlobals: "globals",
	DomainHeap:    "heap",
	DomainLib:     "lib",
	DomainScratch: "scratch",
	DomainStack:   "stack",
}

// String names the domain; out-of-range values render as "domain(N)".
func (d DomainID) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("domain(%d)", uint8(d))
}

// ClassifyDomain maps an address to the domain whose fixed layout range
// contains it. Unmapped (wild) addresses classify too: the prelinked
// bases and the HeapGuard gaps mean a modestly corrupted pointer stays
// inside the region it escaped from, which is what lets a trap's
// faulting address attribute the fault to a domain.
func ClassifyDomain(addr Word) DomainID {
	switch {
	case addr >= ScratchStackTop:
		return DomainStack
	case addr >= ScratchStackTop-ScratchStackSize:
		return DomainScratch
	case addr >= LibCodeBase:
		return DomainLib
	case addr >= HeapBase:
		return DomainHeap
	case addr >= AppGlobalBase:
		return DomainGlobals
	default:
		return DomainCode
	}
}

// FaultDomain attributes a faulting access to a domain: the resolved
// segment's tag when the address is mapped (SIGBUS misalignments,
// stores into read-only segments), else the fixed-layout classification
// of the wild address.
func (m *Memory) FaultDomain(addr Word) DomainID {
	if s := m.Find(addr); s != nil {
		return s.Domain
	}
	return ClassifyDomain(addr)
}

// SegLayout records one writable segment's identity at capture time.
// The census of every writable segment — not just the captured
// domain's — rides along with a domain snapshot so RestoreDomain can
// prove the rewind is still consistent with the rest of the address
// space.
type SegLayout struct {
	Base   Word
	Size   int
	Domain DomainID
}

// DomainSnapshot is one domain's frozen image: the domain's segments
// aliased copy-on-write (no bytes copied) plus the whole-space layout
// census taken at the same instant.
type DomainSnapshot struct {
	Domain DomainID
	Segs   []SegSnapshot
	// HeapNext is the bump pointer at capture (restored for DomainHeap
	// rewinds only, so discarded allocation epochs do not leak address
	// space).
	HeapNext Word
	Layout   []SegLayout
}

// Bytes returns the domain image size (for rewind cost models).
func (sn *DomainSnapshot) Bytes() int {
	n := 0
	for _, s := range sn.Segs {
		n += len(s.Data)
	}
	return n
}

// writableLayout censuses every non-read-only segment (scratch
// included; consumers decide what to check).
func (m *Memory) writableLayout() []SegLayout {
	var out []SegLayout
	for _, s := range m.segs {
		if s.ro {
			continue
		}
		out = append(out, SegLayout{Base: s.Base, Size: len(s.Data), Domain: s.Domain})
	}
	return out
}

// SnapshotDomain freezes one domain's writable segments copy-on-write
// and returns their aliased images — capturing a domain never copies or
// touches any other domain's bytes. Returns nil when the domain has no
// writable segments.
func (m *Memory) SnapshotDomain(d DomainID) *DomainSnapshot {
	sn := &DomainSnapshot{Domain: d, HeapNext: m.heapNext}
	for _, s := range m.segs {
		if s.ro || s.Domain != d {
			continue
		}
		s.cow = true
		sn.Segs = append(sn.Segs, SegSnapshot{Base: s.Base, Name: s.Name, Data: s.Data, Domain: s.Domain})
	}
	if len(sn.Segs) == 0 {
		return nil
	}
	// Freezing flips writability, invalidating inline-cache slots that
	// proved in-place writability — same rule as Snapshot.
	m.gen++
	sn.Layout = m.writableLayout()
	return sn
}

// DomainView extracts one domain's slice of a full snapshot, sharing
// the already-frozen segment aliases (no copying). Returns nil when the
// snapshot holds no segments of that domain.
func (sn *Snapshot) DomainView(d DomainID) *DomainSnapshot {
	v := &DomainSnapshot{Domain: d, HeapNext: sn.HeapNext}
	for _, s := range sn.Segs {
		v.Layout = append(v.Layout, SegLayout{Base: s.Base, Size: len(s.Data), Domain: s.Domain})
		if s.Domain == d {
			v.Segs = append(v.Segs, s)
		}
	}
	if len(v.Segs) == 0 {
		return nil
	}
	return v
}

// ErrDomainInconsistent reports a domain rewind that would desynchronise
// the address space — the caller must escalate (typically to a
// whole-process rollback) instead of proceeding.
var ErrDomainInconsistent = errors.New("machine: domain rewind inconsistent with current layout")

// RestoreDomain rewinds one domain's memory contents to the snapshot,
// leaving every other domain — and all architectural state — untouched.
// Two consistency proofs guard the swap:
//
//  1. every writable segment censused at capture (scratch excepted —
//     the signal-handler stack is transient runtime state) must still
//     be mapped with the same extent, so no pointer saved in the
//     rewound domain can dangle into a remapped region;
//  2. the rewound domain must contain no segment the capture did not
//     see, so pointers held by *other* domains into post-capture
//     allocations cannot silently survive into a stale epoch.
//
// Either violation returns ErrDomainInconsistent and changes nothing.
// Restored segments alias the frozen bytes copy-on-write; segment
// identity is preserved (only Data is swapped), so image handles into
// the segments stay valid.
func (m *Memory) RestoreDomain(sn *DomainSnapshot) error {
	if sn == nil || len(sn.Segs) == 0 {
		return fmt.Errorf("machine: no segments captured for domain rewind")
	}
	for _, l := range sn.Layout {
		if l.Domain == DomainScratch {
			continue
		}
		s := m.Find(l.Base)
		if s == nil || s.Base != l.Base || len(s.Data) != l.Size {
			return fmt.Errorf("%w: segment [0x%x,+%d) in %v domain was remapped since capture",
				ErrDomainInconsistent, l.Base, l.Size, l.Domain)
		}
	}
	captured := make(map[Word]int, len(sn.Segs))
	for _, l := range sn.Layout {
		if l.Domain == sn.Domain {
			captured[l.Base] = l.Size
		}
	}
	for _, s := range m.segs {
		if s.ro || s.Domain != sn.Domain {
			continue
		}
		if sz, ok := captured[s.Base]; !ok || sz != len(s.Data) {
			return fmt.Errorf("%w: %s at 0x%x postdates the %v-domain capture (stale allocation epoch)",
				ErrDomainInconsistent, s.Name, s.Base, sn.Domain)
		}
	}
	for i := range sn.Segs {
		ss := &sn.Segs[i]
		s := m.Find(ss.Base)
		s.Data = ss.Data
		s.cow = true
	}
	if sn.Domain == DomainHeap {
		m.heapNext = sn.HeapNext
	}
	// The cow flips invalidate write-proving inline caches, exactly as
	// Snapshot's freeze does.
	m.gen++
	return nil
}
