package machine

import (
	"errors"
	"testing"
)

// TestClassifyDomain pins the address-to-domain map over the fixed
// prelinked layout, including the boundary addresses (every region's
// base belongs to that region).
func TestClassifyDomain(t *testing.T) {
	cases := []struct {
		addr Word
		want DomainID
	}{
		{0, DomainCode},
		{AppCodeBase, DomainCode},
		{AppGlobalBase - 1, DomainCode},
		{AppGlobalBase, DomainGlobals},
		{HeapBase - 1, DomainGlobals},
		{HeapBase, DomainHeap},
		{HeapBase + (1 << 40), DomainHeap},
		{LibCodeBase - 1, DomainHeap},
		{LibCodeBase, DomainLib},
		{ScratchStackTop - ScratchStackSize - 1, DomainLib},
		{ScratchStackTop - ScratchStackSize, DomainScratch},
		{ScratchStackTop - 1, DomainScratch},
		{ScratchStackTop, DomainStack},
		{StackTop, DomainStack},
	}
	for _, tc := range cases {
		if got := ClassifyDomain(tc.addr); got != tc.want {
			t.Errorf("ClassifyDomain(0x%x) = %v, want %v", tc.addr, got, tc.want)
		}
	}
}

// TestSegmentDomainTags: Map tags every segment with its base's domain,
// and FaultDomain resolves through the segment tag for mapped addresses
// but falls back to the fixed-layout classification for wild ones.
func TestSegmentDomainTags(t *testing.T) {
	m := NewMemory()
	g, err := m.Map(AppGlobalBase, 0x100, "globals")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := m.Alloc(0x100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Domain != DomainGlobals {
		t.Errorf("globals segment tagged %v", g.Domain)
	}
	if s := m.Find(hb); s == nil || s.Domain != DomainHeap {
		t.Errorf("heap segment tagged %v", m.Find(hb).Domain)
	}
	if d := m.FaultDomain(hb + 8); d != DomainHeap {
		t.Errorf("FaultDomain(mapped heap) = %v", d)
	}
	if d := m.FaultDomain(HeapBase + (1 << 40)); d != DomainHeap {
		t.Errorf("FaultDomain(wild heap) = %v", d)
	}
	if d := m.FaultDomain(StackTop + 8); d != DomainStack {
		t.Errorf("FaultDomain(wild stack) = %v", d)
	}
}

// TestSnapshotDomainIsolation is the tentpole's core contract: capturing
// one domain copies no bytes (the snapshot aliases the frozen segments),
// and rewinding it restores exactly that domain's contents while every
// other domain keeps its post-capture progress.
func TestSnapshotDomainIsolation(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map(AppGlobalBase, 0x100, "globals"); err != nil {
		t.Fatal(err)
	}
	hb, err := m.Alloc(0x100)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.Write(AppGlobalBase, 1); f != nil {
		t.Fatal(f)
	}
	if f := m.Write(hb, 10); f != nil {
		t.Fatal(f)
	}

	gen0 := m.gen
	sn := m.SnapshotDomain(DomainGlobals)
	if sn == nil || sn.Domain != DomainGlobals || len(sn.Segs) != 1 {
		t.Fatalf("globals capture: %+v", sn)
	}
	if m.gen == gen0 {
		t.Error("SnapshotDomain did not invalidate inline caches (gen unchanged)")
	}
	if &sn.Segs[0].Data[0] != &m.Find(AppGlobalBase).Data[0] {
		t.Error("capture copied the globals bytes instead of aliasing them")
	}
	// The census must cover every writable segment, heap included.
	heapCensused := false
	for _, l := range sn.Layout {
		if l.Domain == DomainHeap && l.Base == hb {
			heapCensused = true
		}
	}
	if !heapCensused {
		t.Errorf("capture layout misses the heap segment: %+v", sn.Layout)
	}

	// Both domains diverge after the capture.
	if f := m.Write(AppGlobalBase, 2); f != nil {
		t.Fatal(f)
	}
	if f := m.Write(hb, 20); f != nil {
		t.Fatal(f)
	}
	gen1 := m.gen
	if err := m.RestoreDomain(sn); err != nil {
		t.Fatal(err)
	}
	if m.gen == gen1 {
		t.Error("RestoreDomain did not invalidate inline caches (gen unchanged)")
	}
	if v, _ := m.Read(AppGlobalBase); v != 1 {
		t.Errorf("rewound globals read %d, want the captured 1", v)
	}
	if v, _ := m.Read(hb); v != 20 {
		t.Errorf("heap value after a globals rewind = %d, want the live 20 (other domains must keep their progress)", v)
	}

	// Segment identity survives the rewind (image handles stay valid)
	// and the restored bytes are copy-on-write: a post-rewind store must
	// not corrupt the snapshot for a second rewind.
	if f := m.Write(AppGlobalBase, 3); f != nil {
		t.Fatal(f)
	}
	if err := m.RestoreDomain(sn); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read(AppGlobalBase); v != 1 {
		t.Errorf("second rewind reads %d, want 1 (restore did not re-freeze)", v)
	}

	// A domain with no writable segments has nothing to capture.
	if sn := m.SnapshotDomain(DomainStack); sn != nil {
		t.Errorf("empty-domain capture returned %+v, want nil", sn)
	}
	if err := m.RestoreDomain(nil); err == nil {
		t.Error("nil rewind succeeded")
	}
}

// TestRestoreDomainConsistencyGuards covers the two proofs that make a
// partial rewind safe: a post-capture allocation in the rewound domain
// (a stale allocation epoch) and a remapped segment anywhere in the
// writable census both refuse with ErrDomainInconsistent — except the
// scratch stack, which is transient recovery-runtime state and exempt.
func TestRestoreDomainConsistencyGuards(t *testing.T) {
	t.Run("stale-allocation-epoch", func(t *testing.T) {
		m := NewMemory()
		a, err := m.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if f := m.Write(a, 5); f != nil {
			t.Fatal(f)
		}
		sn := m.SnapshotDomain(DomainHeap)
		if _, err := m.Alloc(64); err != nil {
			t.Fatal(err)
		}
		err = m.RestoreDomain(sn)
		if !errors.Is(err, ErrDomainInconsistent) {
			t.Fatalf("rewind across an allocation epoch: %v, want ErrDomainInconsistent", err)
		}
		// A refused rewind must change nothing.
		if f := m.Write(a, 6); f != nil {
			t.Fatal(f)
		}
		if v, _ := m.Read(a); v != 6 {
			t.Errorf("refused rewind mutated memory: %d", v)
		}
	})

	t.Run("censused-segment-remapped", func(t *testing.T) {
		m := NewMemory()
		if _, err := m.Map(AppGlobalBase, 0x100, "globals"); err != nil {
			t.Fatal(err)
		}
		hb, err := m.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		sn := m.SnapshotDomain(DomainGlobals)
		m.Unmap(m.Find(hb))
		if err := m.RestoreDomain(sn); !errors.Is(err, ErrDomainInconsistent) {
			t.Fatalf("rewind with a censused segment unmapped: %v, want ErrDomainInconsistent", err)
		}
	})

	t.Run("scratch-exempt", func(t *testing.T) {
		m := NewMemory()
		if _, err := m.Map(AppGlobalBase, 0x100, "globals"); err != nil {
			t.Fatal(err)
		}
		scratch, err := m.Map(ScratchStackTop-ScratchStackSize, int(ScratchStackSize), "sigaltstack")
		if err != nil {
			t.Fatal(err)
		}
		if scratch.Domain != DomainScratch {
			t.Fatalf("scratch segment tagged %v", scratch.Domain)
		}
		sn := m.SnapshotDomain(DomainGlobals)
		m.Unmap(scratch)
		if err := m.RestoreDomain(sn); err != nil {
			t.Fatalf("scratch-stack churn blocked an unrelated rewind: %v", err)
		}
	})
}

// TestRestoreDomainHeapNext: a heap rewind also rewinds the bump
// pointer, so address space discarded with the stale epoch is reused
// instead of leaking.
func TestRestoreDomainHeapNext(t *testing.T) {
	m := NewMemory()
	a, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.Write(a, 5); f != nil {
		t.Fatal(f)
	}
	sn := m.SnapshotDomain(DomainHeap)
	b, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the post-capture allocation so the epoch guard passes; the
	// bump pointer still points past it.
	m.Unmap(m.Find(b))
	if f := m.Write(a, 6); f != nil {
		t.Fatal(f)
	}
	if err := m.RestoreDomain(sn); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read(a); v != 5 {
		t.Errorf("rewound heap reads %d, want 5", v)
	}
	b2, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b {
		t.Errorf("post-rewind allocation at 0x%x, want the rewound bump pointer 0x%x", b2, b)
	}
}

// TestDomainView: a full snapshot decomposes into per-domain views that
// alias the frozen segments (the checkpoint store builds its domain
// generations this way, so a full save must cost no extra copies).
func TestDomainView(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map(AppGlobalBase, 0x100, "globals"); err != nil {
		t.Fatal(err)
	}
	hb, err := m.Alloc(0x100)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.Write(hb, 7); f != nil {
		t.Fatal(f)
	}
	sn := m.Snapshot()
	v := sn.DomainView(DomainHeap)
	if v == nil || len(v.Segs) != 1 || v.Segs[0].Base != hb {
		t.Fatalf("heap view: %+v", v)
	}
	if v.HeapNext != sn.HeapNext {
		t.Errorf("heap view bump pointer 0x%x, want 0x%x", v.HeapNext, sn.HeapNext)
	}
	if len(v.Layout) != len(sn.Segs) {
		t.Errorf("view census covers %d segments, want all %d writable ones", len(v.Layout), len(sn.Segs))
	}
	if sn.DomainView(DomainStack) != nil {
		t.Error("view of an absent domain is non-nil")
	}
	// The view is a valid rewind source.
	if f := m.Write(hb, 8); f != nil {
		t.Fatal(f)
	}
	if err := m.RestoreDomain(v); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Read(hb); got != 7 {
		t.Errorf("view rewind reads %d, want 7", got)
	}
}
