// Package parallel provides the small deterministic fan-out primitive
// shared by the fault-injection campaign engine and the experiment
// drivers: run n independent units of work on a bounded worker pool,
// collect results by index, and report the lowest-index error.
//
// The helpers deliberately know nothing about what the units do; the
// determinism contract ("same inputs produce the same outputs for any
// worker count") is achieved by callers writing results into
// index-addressed slots and merging them in index order afterwards.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: non-positive means "one
// per available CPU" (runtime.GOMAXPROCS(0)), and the result is capped
// at n so tiny jobs do not spawn idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n >= 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach invokes fn(i) for every i in [0, n) using up to workers
// goroutines (resolved via Workers). Indices are claimed atomically, so
// the scheduling order is nondeterministic, but callers that write
// fn(i)'s result into slot i of a preallocated slice observe an
// index-ordered result set independent of the worker count.
//
// If any invocation returns an error, workers stop claiming new
// indices and ForEach returns the error with the lowest index — again
// independent of scheduling — so error reporting is deterministic too.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
