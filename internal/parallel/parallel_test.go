package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3, 100) = %d", got)
	}
	if got := Workers(16, 4); got != 4 {
		t.Errorf("Workers(16, 4) = %d, want 4 (capped at n)", got)
	}
	if got := Workers(3, 100); got != 3 {
		t.Errorf("Workers(3, 100) = %d, want 3", got)
	}
	if got := Workers(5, 0); got != 1 {
		t.Errorf("Workers(5, 0) = %d, want 1", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(500, workers, func(i int) error {
			if i == 7 || i == 250 || i == 400 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 7" {
			t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(100000, 4, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if n := ran.Load(); n == 100000 {
		t.Error("all indices ran despite an early error")
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-5, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
